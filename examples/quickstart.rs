//! Quickstart: solve a 7-point stencil system with BiCGStab running on a
//! simulated corner of the wafer-scale engine, and compare with the host
//! reference solver.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use wafer_stencil::prelude::*;

fn main() {
    // 1. Build a nonsymmetric convection–diffusion problem with a known
    //    solution on a 6×6×64 mesh, and Jacobi-scale it so the main
    //    diagonal is all ones (the form the wafer kernel stores).
    let mesh = Mesh3D::new(6, 6, 64);
    let problem = manufactured(mesh, (1.5, -0.5, 0.5), 2024).preconditioned();
    println!("mesh {}x{}x{} = {} unknowns", mesh.nx, mesh.ny, mesh.nz, mesh.len());

    // 2. Narrow to the paper's precision: fp16 storage everywhere.
    let a16: DiaMatrix<F16> = problem.matrix.convert();
    let b16: Vec<F16> = problem.rhs.iter().map(|&v| F16::from_f64(v)).collect();

    // 3. Solve on a simulated 6×6 fabric region: every vector element and
    //    matrix coefficient lives in some tile's 48 KB SRAM; the SpMV is
    //    the Listing-1 dataflow; dots allreduce over the fabric.
    let mut fabric = Fabric::new(6, 6);
    let wafer = WaferBicgstab::build(&mut fabric, &a16);
    let iters = 10;
    let (x_wafer, stats) = wafer.solve(&mut fabric, &b16, iters);

    println!("\non-wafer BiCGStab ({iters} iterations):");
    for (i, (c, r)) in stats.iterations.iter().zip(&stats.residuals).enumerate() {
        println!(
            "  iter {:>2}: {:>7} cycles (spmv {:>5}, dot {:>5}, allreduce {:>5}, update {:>5})  |r|/|b| = {:.3e}",
            i + 1,
            c.total(),
            c.spmv,
            c.dot,
            c.allreduce,
            c.update,
            r
        );
    }
    println!("  mean cycles/iteration: {:.0}", stats.mean_cycles());

    // 4. Reference: the same algorithm, same precision policy, on the host.
    let opts = SolveOptions { max_iters: iters, rtol: 0.0, record_true_residual: true };
    let host = bicgstab::<MixedF16>(&a16, &b16, &opts);
    println!(
        "\nhost mixed-precision reference: final |r|/|b| = {:.3e}",
        host.history.final_recursive()
    );

    // 5. Compare against the known exact solution.
    let exact = problem.exact.as_ref().unwrap();
    let err = |x: &[F16]| -> f64 {
        x.iter().zip(exact).map(|(a, b)| (a.to_f64() - b).abs()).fold(0.0_f64, f64::max)
    };
    println!("\nmax error vs exact solution:");
    println!("  wafer: {:.4}", err(&x_wafer));
    println!("  host:  {:.4}", err(&host.x));
    println!("(both are fp16-accuracy solutions — that is the paper's Fig. 9 point)");
}
