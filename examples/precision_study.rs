//! The Fig. 9 precision study: one solver, four precision policies, on a
//! momentum system from the lid-driven cavity.
//!
//! ```text
//! cargo run --release --example precision_study [-- <scale> <iters>]
//! ```
//!
//! `scale` divides the paper's 100×400×100 mesh (default 10 → 10×40×10);
//! `--full` scale 1 reproduces the full-size system (4M unknowns — slow).

use wafer_stencil::cfd_::cavity::fig9_momentum_system;
use wafer_stencil::prelude::*;
use wafer_stencil::solver_::study::run_policy;
use wafer_stencil::stencil_::precond::jacobi_scale;

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(10);
    let iters: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);

    println!("assembling momentum system (100x400x100 / {scale}, steady-state limit)…");
    let sys = fig9_momentum_system(scale, 3);
    let scaled = jacobi_scale(&sys.matrix, &sys.rhs);
    println!("{} unknowns\n", scaled.matrix.nrows());

    let opts = SolveOptions { max_iters: iters, rtol: 1e-14, record_true_residual: true };
    let fp64 = run_policy::<Fp64>(&scaled.matrix, &scaled.rhs, &opts);
    let fp32 = run_policy::<Fp32>(&scaled.matrix, &scaled.rhs, &opts);
    let mixed = run_policy::<MixedF16>(&scaled.matrix, &scaled.rhs, &opts);
    let pure16 = run_policy::<PureF16>(&scaled.matrix, &scaled.rhs, &opts);

    println!("normwise relative residual per iteration (Fig. 9):");
    println!("{:>5} {:>12} {:>12} {:>12} {:>12}", "iter", "fp64", "fp32", "mixed", "pure-fp16");
    for i in 0..iters {
        let cell = |c: &wafer_stencil::solver_::study::PrecisionCurve| {
            c.residuals.get(i).map_or("-".to_string(), |v| format!("{v:.3e}"))
        };
        println!(
            "{:>5} {:>12} {:>12} {:>12} {:>12}",
            i + 1,
            cell(&fp64),
            cell(&fp32),
            cell(&mixed),
            cell(&pure16)
        );
    }
    println!("\nattainable accuracy:");
    println!("  fp64      best = {:.2e}  ({})", fp64.best(), fp64.outcome);
    println!("  fp32      best = {:.2e}  ({})", fp32.best(), fp32.outcome);
    println!(
        "  mixed     best = {:.2e}  ({})  <- plateaus near fp16 precision (paper: ~1e-2)",
        mixed.best(),
        mixed.outcome
    );
    println!(
        "  pure fp16 best = {:.2e}  ({})  <- the ablation the mixed dot avoids",
        pure16.best(),
        pure16.outcome
    );
}
