//! Heterogeneous-media workflow: a high-contrast variable-coefficient
//! diffusion system (the matrix class multiphase physics produces), its
//! conditioning, the fp16 plateau it induces on the wafer, and the
//! refinement loop that recovers full accuracy.
//!
//! ```text
//! cargo run --release --example heterogeneous_media [-- <contrast-exponent>]
//! ```

use wafer_stencil::prelude::*;
use wafer_stencil::solver_::refinement::{iterative_refinement, RefinementOptions};
use wafer_stencil::solver_::spectral::estimate_condition;
use wafer_stencil::solver_::study::run_policy;
use wafer_stencil::stencil_::precond::jacobi_scale;
use wafer_stencil::stencil_::variable::{variable_diffusion, DiffusivityField};

fn main() {
    let contrast_exp: i32 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(3);
    let contrast = 10f64.powi(contrast_exp);

    let mesh = Mesh3D::new(5, 5, 8);
    println!(
        "random log-uniform diffusivity, contrast 1:{contrast:.0}, mesh {}x{}x{}",
        mesh.nx, mesh.ny, mesh.nz
    );
    let field = DiffusivityField::random(mesh, 1.0 / contrast, 1.0, 2024);
    let a = variable_diffusion(&field);
    let exact: Vec<f64> = (0..mesh.len()).map(|i| ((i * 7) % 13) as f64 * 0.1 - 0.6).collect();
    let mut b = vec![0.0; mesh.len()];
    a.matvec_f64(&exact, &mut b);

    let raw_kappa = estimate_condition(&a, 150).kappa;
    let sys = jacobi_scale(&a, &b);
    let pre_kappa = estimate_condition(&sys.matrix, 150).kappa;
    println!("condition estimate: raw {raw_kappa:.1} -> Jacobi-scaled {pre_kappa:.1}");

    // fp16-plateau on the host at the wafer's precision policy.
    let opts = SolveOptions { max_iters: 40, rtol: 1e-14, record_true_residual: true };
    let mixed = run_policy::<MixedF16>(&sys.matrix, &sys.rhs, &opts);
    println!(
        "mixed-precision BiCGStab plateau: {:.2e} (≈ κ·ε16 = {:.2e})",
        mixed.best(),
        pre_kappa * f64::powi(2.0, -11)
    );

    // The same system on the simulated wafer.
    let a16: DiaMatrix<F16> = sys.matrix.convert();
    let b16: Vec<F16> = sys.rhs.iter().map(|&v| F16::from_f64(v)).collect();
    let mut fabric = Fabric::new(mesh.nx, mesh.ny);
    let wafer = WaferBicgstab::build(&mut fabric, &a16);
    let (_, stats) = wafer.solve(&mut fabric, &b16, 25);
    let wafer_best = stats.residuals.iter().copied().fold(f64::INFINITY, f64::min);
    println!(
        "on-wafer BiCGStab best residual: {wafer_best:.2e} ({} iterations run)",
        stats.residuals.len()
    );

    // Refinement: fp16 inner solves, fp64 answer.
    let refined = iterative_refinement::<MixedF16>(
        &sys.matrix,
        &sys.rhs,
        &RefinementOptions { max_outer: 30, inner_iters: 10, rtol: 1e-10 },
    );
    let err = refined.x.iter().zip(&exact).map(|(x, e)| (x - e).abs()).fold(0.0_f64, f64::max);
    println!(
        "iterative refinement: converged = {}, outer passes = {}, final residual = {:.2e}, max solution error = {:.2e}",
        refined.converged,
        refined.outer_iters,
        refined.history.final_recursive(),
        err
    );
    println!("(fp16 arithmetic everywhere inside; fp64 accuracy outside — §VI.B's remedy)");
}
