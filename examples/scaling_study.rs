//! The cluster-vs-wafer scaling study (Figs. 7 and 8 plus the §VI.A MFIX
//! projection), from the calibrated performance models.
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```

use wafer_stencil::perf::mfix::MfixProjection;
use wafer_stencil::prelude::*;

fn main() {
    let joule = JouleModel::default();
    let cs1 = Cs1Model::default();
    let headline = cs1.predict_headline();

    for (fig, n) in [("Fig. 7", 370usize), ("Fig. 8", 600)] {
        println!("{fig}: BiCGStab time per iteration, {n}^3 mesh on the Joule cluster");
        println!("{:>8} {:>12} {:>10} {:>12}", "cores", "ms/iter", "speedup", "block side");
        let base = joule.time_per_iteration(n, 1024);
        for p in JouleModel::paper_core_counts() {
            let t = joule.time_per_iteration(n, p);
            println!(
                "{:>8} {:>12.2} {:>9.1}x {:>11.1}",
                p,
                t * 1e3,
                base / t,
                joule.block_side(n, p)
            );
        }
        println!();
    }

    println!("CS-1 (modeled): {:.1} us per iteration on 600x595x1536", headline.time_us);
    println!(
        "              = {:.2} PFLOPS at {:.0}% of used-core peak",
        headline.pflops,
        headline.utilization * 100.0
    );
    let ratio = joule.time_per_iteration(600, 16384) / (headline.time_us * 1e-6);
    println!("16,384-core cluster / CS-1 time ratio: {ratio:.0}x (paper: about 214x)\n");

    println!("mesh-shape sweep on the CS-1 (the model's predictive use):");
    println!("{:>18} {:>12} {:>10} {:>12}", "mesh", "us/iter", "PFLOPS", "utilization");
    for (x, y, z, p) in cs1.shape_sweep(&[
        (100, 100, 100),
        (200, 200, 800),
        (600, 595, 256),
        (600, 595, 1536),
        (602, 595, 2447), // the largest Z that fits SRAM
    ]) {
        println!(
            "{:>6}x{:<4}x{:<6} {:>12.1} {:>10.2} {:>11.0}%",
            x,
            y,
            z,
            p.time_us,
            p.pflops,
            p.utilization * 100.0
        );
    }

    println!("\n§VI.A MFIX projection (600^3, 15 SIMPLE iterations/step):");
    let rate = MfixProjection::default().project();
    println!(
        "  {:.0} - {:.0} timesteps/s (paper: 80 - 125); {:.0}x a 16,384-core Joule run (paper: >200x)",
        rate.steps_per_sec_low, rate.steps_per_sec_high, rate.speedup_vs_joule
    );
}
