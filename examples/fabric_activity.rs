//! Fabric activity timeline: watch the phase structure of a BiCGStab
//! iteration through the activity sampler — SpMV bursts, dot products,
//! reduction latency valleys, update bursts.
//!
//! ```text
//! cargo run --release --example fabric_activity [-- <fabric-edge> <z>]
//! ```

use wafer_stencil::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let z: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(96);

    let mesh = Mesh3D::new(n, n, z);
    let problem = manufactured(mesh, (1.0, -0.5, 0.5), 7).preconditioned();
    let a16: DiaMatrix<F16> = problem.matrix.convert();
    let b16: Vec<F16> = problem.rhs.iter().map(|&v| F16::from_f64(v)).collect();

    let mut fabric = Fabric::new(n, n);
    let solver = WaferBicgstab::build(&mut fabric, &a16);
    solver.load_rhs(&mut fabric, &b16);

    // Sample every 8 cycles through one iteration.
    fabric.enable_sampling(8);
    let cycles = solver.iterate(&mut fabric);
    let samples: Vec<_> = fabric.samples().to_vec();

    println!("one BiCGStab iteration on a {n}x{n} fabric, z = {z}: {} cycles", cycles.total());
    println!(
        "phases: spmv {} | dot {} | allreduce {} | update {} | scalar {}",
        cycles.spmv, cycles.dot, cycles.allreduce, cycles.update, cycles.scalar
    );
    println!("\ncore utilization over time ({} samples of 8 cycles):", samples.len());
    let width = 60usize;
    for s in &samples {
        let bar = (s.core_utilization * width as f64).round() as usize;
        println!(
            "  cyc {:>6} |{}{}| {:>5.1}%  ({} flops, {} flits)",
            s.cycle,
            "█".repeat(bar.min(width)),
            " ".repeat(width.saturating_sub(bar)),
            s.core_utilization * 100.0,
            s.flops,
            s.flits_routed
        );
    }
    let mean: f64 =
        samples.iter().map(|s| s.core_utilization).sum::<f64>() / samples.len().max(1) as f64;
    println!("\nmean utilization {:.0}% — SpMV bursts saturate the datapath;", mean * 100.0);
    println!("the valleys are the blocking AllReduce rounds the paper minimizes.");
}
