//! The §VI vision running end-to-end: SIMPLE CFD with all four linear
//! solves (u, v, w momentum + pressure correction) executing on the
//! simulated wafer-scale engine, with simulated-cycle accounting.
//!
//! ```text
//! cargo run --release --example wafer_cfd_demo [-- <cells> <iters>]
//! ```

use wafer_stencil::cfd_::simple::SimpleParams;
use wafer_stencil::perf::cs1::Cs1Model;
use wafer_stencil::wafer_cfd::WaferSimple;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let iters: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(6);

    println!("SIMPLE on the wafer: {n}^3 cavity, {iters} iterations");
    println!("(assembly host-side as Table II accounts it; every BiCGStab solve runs");
    println!(" on the simulated fabric at the paper's fp16/fp32 precision)\n");

    let mut ws = WaferSimple::new(n, SimpleParams::default());
    for i in 0..iters {
        let s = ws.iterate();
        println!(
            "iter {:>2}: mass residual {:.3e}  momentum residual {:.3e}  cycles: momentum {:>7}, continuity {:>7}",
            i + 1,
            s.mass_residual,
            s.momentum_residual,
            s.momentum_cycles,
            s.continuity_cycles,
        );
    }

    let total = ws.total_cycles();
    let m = Cs1Model::default();
    println!("\ntotal simulated solver cycles: {total}");
    println!(
        "at the {} GHz clock that is {:.1} us of solver time for {} SIMPLE iterations",
        m.clock_ghz,
        total as f64 / (m.clock_ghz * 1e3),
        iters
    );
    println!("kinetic energy developed: {:.4e}", ws.field.kinetic_energy());
    println!("\n(the paper's §VI.A projection extrapolates exactly this loop to 600^3:");
    println!(" 80-125 timesteps/s — see `experiments mfix`)");
}
