//! The Listing-1 SpMV dataflow, watched closely: broadcast on the Fig. 5
//! tessellation, FIFO-decoupled multiply/add pipelines, and the cycle
//! accounting that grounds the performance model.
//!
//! ```text
//! cargo run --release --example wafer_spmv
//! ```

use wafer_stencil::kernels::routing::spmv_color;
use wafer_stencil::prelude::*;
use wafer_stencil::stencil_::dia::Offset3;

fn main() {
    let (w, h) = (5usize, 5usize);
    println!("Fig. 5 tessellation colors for a {w}x{h} region:");
    for y in 0..h {
        let row: Vec<String> = (0..w).map(|x| spmv_color(x, y).to_string()).collect();
        println!("  {}", row.join(" "));
    }
    println!("(every tile's outgoing color differs from all four incoming ones)\n");

    for z in [64usize, 256, 1024] {
        let mesh = Mesh3D::new(w, h, z);
        // Unit-diagonal operator with -1/8 couplings: exact in fp16.
        let mut a = DiaMatrix::<f64>::new(mesh, &Offset3::seven_point());
        for (x, y, zz) in mesh.iter() {
            a.set(x, y, zz, Offset3::CENTER, 1.0);
            for off in &Offset3::seven_point()[1..] {
                if mesh.neighbor(x, y, zz, off.dx, off.dy, off.dz).is_some() {
                    a.set(x, y, zz, *off, -0.125);
                }
            }
        }
        let a16: DiaMatrix<F16> = a.convert();
        let v: Vec<F16> =
            (0..mesh.len()).map(|i| F16::from_f64(((i % 8) as f64 - 4.0) * 0.25)).collect();

        let mut fabric = Fabric::new(w, h);
        let spmv = WaferSpmv::build(&mut fabric, &a16);
        let (u_wafer, cycles) = spmv.run(&mut fabric, &v);

        // Bit-exact check against the host DIA matvec (exact arithmetic
        // data, so summation order cannot matter).
        let mut u_host = vec![F16::ZERO; mesh.len()];
        a16.matvec(&v, &mut u_host);
        let exact = u_wafer.iter().zip(&u_host).all(|(a, b)| a.to_bits() == b.to_bits());

        let perf = fabric.perf();
        println!(
            "z = {z:>5}: {cycles:>6} cycles ({:>5.2} cycles/z)  flops: {} fp16  flits: {}  bit-exact vs host: {}",
            cycles as f64 / z as f64,
            perf.flops_f16,
            perf.flits_routed,
            if exact { "yes" } else { "NO" },
        );
    }

    println!("\nThe ~3.3-3.9 cycles/z slope is what the performance model extrapolates");
    println!("to the 600x595x1536 headline (experiments binary: `experiments headline`).");
}
