//! Lid-driven cavity: the MFIX-like SIMPLE solver that generates the
//! paper's CFD workloads, run end-to-end with per-step operation counting.
//!
//! ```text
//! cargo run --release --example lid_cavity [-- <cells-per-axis> <iters>]
//! ```

use wafer_stencil::cfd_::grid::Component;
use wafer_stencil::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(10);
    let iters: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(12);

    println!("lid-driven cavity, {n}^3 cells, {iters} SIMPLE iterations");
    let mut cavity = Cavity::new(n, n, n, 0.05);
    for i in 0..iters {
        let r = cavity.solver.iterate();
        println!(
            "  SIMPLE iter {:>2}: mass residual {:.3e}, momentum residual {:.3e}",
            i + 1,
            r.mass,
            r.momentum
        );
    }

    println!("\nvertical centerline u-velocity profile (bottom → lid):");
    for (k, u) in cavity.centerline_u().iter().enumerate() {
        let bar_len = ((u + 1.0).max(0.0) * 24.0) as usize;
        println!("  z {:>2}  {:>8.4}  {}", k, u, "#".repeat(bar_len));
    }

    let (mom_iters, cont_iters) = cavity.solver.solver_iters;
    println!("\nBiCGStab iterations spent: {mom_iters} momentum, {cont_iters} continuity");

    // Table II raw material: per-point operation counts by step.
    let counts = cavity.solver.counts;
    let cells = cavity.solver.field.grid.cells() * iters;
    println!("\nper-meshpoint operation counts (Table II raw material):");
    let show = |name: &str, c: wafer_stencil::cfd_::opcount::OpClassCounts, per: usize| {
        let pp = c.per_point(per);
        println!(
            "  {:<16} merge {:>6.1}  flop {:>6.1}  sqrt {:>5.2}  div {:>5.2}  transport {:>6.1}",
            name, pp.merge, pp.flop, pp.sqrt, pp.div, pp.transport
        );
    };
    show("initialization", counts.initialization, cells);
    show("momentum (per eq)", counts.momentum, 3 * cells);
    show("continuity", counts.continuity, cells);
    show("field update", counts.field_update, cells);

    // The momentum system this flow produces is the Fig. 9 workload.
    let sys = cavity.momentum_system(Component::U);
    println!(
        "\nu-momentum system: {} unknowns, 7-point nonsymmetric (Fig. 9's source)",
        sys.matrix.nrows()
    );
}
