//! Thermal lid-driven cavity: the flow solver coupled with the
//! passive-scalar (energy) equation — the complexity level §VI defers —
//! with the temperature system solved both on the host and on the simulated
//! wafer.
//!
//! ```text
//! cargo run --release --example thermal_cavity [-- <cells> <flow-iters> <steps>]
//! ```

use wafer_stencil::cfd_::scalar::ScalarTransport;
use wafer_stencil::cfd_::Cavity;
use wafer_stencil::prelude::*;
use wafer_stencil::stencil_::precond::jacobi_scale;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let flow_iters: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(10);
    let steps: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(25);

    println!("developing cavity flow ({n}^3, {flow_iters} SIMPLE iterations)…");
    let mut cavity = Cavity::new(n, n, n, 0.05);
    cavity.run(flow_iters);
    let field = &cavity.solver.field;

    println!("advecting temperature from a hot lid ({steps} implicit steps)…");
    let mut scalar = ScalarTransport::new(field, 0.02, 1.0, 0.0);
    for s in 0..steps {
        let iters = scalar.step(field, 0.3, 60);
        if (s + 1) % 5 == 0 {
            let (lo, hi) = scalar.min_max();
            println!(
                "  step {:>3}: mean T = {:.4}, range [{:.4}, {:.4}], solver iters {}",
                s + 1,
                scalar.mean(),
                lo,
                hi,
                iters
            );
        }
    }

    // Mid-plane temperature map (x-z slice at y = n/2).
    let mesh = field.grid.p_mesh();
    println!("\nmid-plane temperature (z up, lid at top; '.' cold → '#' hot):");
    let glyphs: &[u8] = b" .:-=+*#";
    for k in (0..n).rev() {
        let mut row = String::new();
        for i in 0..n {
            let t = scalar.t[mesh.idx(i, n / 2, k)];
            let g = ((t.clamp(0.0, 1.0)) * (glyphs.len() - 1) as f64).round() as usize;
            row.push(glyphs[g] as char);
            row.push(glyphs[g] as char);
        }
        println!("  |{row}|");
    }

    // The energy equation is just another nonsymmetric 7-point system —
    // solve one step's system on the simulated wafer too.
    println!("\nsolving one energy system on the simulated wafer…");
    let sys = scalar.assemble(field, 0.3);
    let scaled = jacobi_scale(&sys.matrix, &sys.rhs);
    let a16: DiaMatrix<F16> = scaled.matrix.convert();
    let b16: Vec<F16> = scaled.rhs.iter().map(|&v| F16::from_f64(v)).collect();
    let mut fabric = Fabric::new(n, n);
    let wafer = WaferBicgstab::build(&mut fabric, &a16);
    let (x, stats) = wafer.solve(&mut fabric, &b16, 8);
    println!(
        "  wafer residual after 8 iterations: {:.3e} ({} unknowns, {:.0} cycles/iter)",
        stats.residuals.last().unwrap(),
        x.len(),
        stats.mean_cycles()
    );
    let host_mean = scalar.t.iter().sum::<f64>() / scalar.t.len() as f64;
    let wafer_mean = x.iter().map(|v| v.to_f64()).sum::<f64>() / x.len() as f64;
    println!("  mean T: host {host_mean:.4} vs wafer {wafer_mean:.4} (fp16 accuracy)");
}
