//! Lints the standard shipped kernel configurations and prints every
//! diagnostic the static verifier produces.
//!
//! Usage:
//!
//! ```text
//! wse-lint [--json] [CONFIG ...]
//! ```
//!
//! With no arguments every standard configuration is checked. Exits with
//! status 1 if any configuration produces an error-severity diagnostic.
//! Available configurations: `spmv3d`, `spmv2d`, `allreduce`, `bicgstab`,
//! `bicgstab-fused`, `cg`, `cg-single`, `bicgstab2d`, `dsl-star9-2d`,
//! `dsl-star25-3d`, plus `fixture:NAME` for each intentionally broken
//! program in `wse_lint::fixtures` (the `lint_fixtures` verify stage diffs
//! their output against checked-in expected diagnostics).
//!
//! Two fixtures are DSL rejections rather than broken fabric programs:
//! `fixture:dsl-radius-overflow` and `fixture:dsl-sram-overflow` feed an
//! illegal stencil spec to `wse_dsl::lower_spec` and report the structured
//! error the front-end returns **before any fabric is touched** (the tool
//! verifies the fabric really is still pristine and exits 1, like any other
//! failing fixture).
//!
//! Diagnostics print in a stable order — `(tile.y, tile.x, rule, message)`
//! within each configuration, configurations in argument order — so output
//! is diffable. `--json` emits one JSON array of every diagnostic instead
//! of the human-readable report (same order, same exit status).

use stencil::decomp::Block2D;
use stencil::dia::DiaMatrix;
use stencil::mesh::Mesh3D;
use stencil::precond::jacobi_scale;
use stencil::problem::manufactured;
use stencil::stencil9::convection_diffusion9;
use wse_arch::Fabric;
use wse_core::allreduce::AllReduce;
use wse_core::bicgstab2d::WaferBicgstab2d;
use wse_core::cg::{CgVariant, WaferCg};
use wse_core::spmv2d::WaferSpmv2d;
use wse_core::{WaferBicgstab, WaferSpmv};
use wse_float::F16;
use wse_lint::{lint, Severity};

const ALL: &[&str] = &[
    "spmv3d",
    "spmv2d",
    "allreduce",
    "bicgstab",
    "bicgstab-fused",
    "cg",
    "cg-single",
    "bicgstab2d",
    "dsl-star9-2d",
    "dsl-star25-3d",
];

fn system3d(w: usize, h: usize, z: usize) -> DiaMatrix<F16> {
    let mesh = Mesh3D::new(w, h, z);
    manufactured(mesh, (1.0, -0.5, 0.5), 11).preconditioned().matrix.convert()
}

fn system2d(w: usize, h: usize, block: Block2D) -> DiaMatrix<F16> {
    let mesh = block.covered_mesh(w, h);
    let a = convection_diffusion9(mesh, (1.5, -0.5));
    let x: Vec<f64> = (0..mesh.len()).map(|i| ((i % 9) as f64) * 0.125 - 0.5).collect();
    let mut b = vec![0.0; mesh.len()];
    a.matvec_f64(&x, &mut b);
    jacobi_scale(&a, &b).matrix.convert()
}

/// Builds the named configuration on a fresh fabric and returns it.
fn build(config: &str) -> Fabric {
    match config {
        "spmv3d" => {
            let a = system3d(3, 3, 8);
            let mut fabric = Fabric::new(3, 3);
            let _ = WaferSpmv::build(&mut fabric, &a);
            fabric
        }
        "spmv2d" => {
            let block = Block2D::new(4, 4);
            let a = system2d(3, 3, block);
            let mut fabric = Fabric::new(3, 3);
            let _ = WaferSpmv2d::build(&mut fabric, &a, block);
            fabric
        }
        "allreduce" => {
            let mut fabric = Fabric::new(4, 4);
            let _ = AllReduce::build(&mut fabric, 4, 4, 24, 25, 26);
            fabric
        }
        "bicgstab" => {
            let a = system3d(3, 3, 6);
            let mut fabric = Fabric::new(3, 3);
            let _ = WaferBicgstab::build(&mut fabric, &a);
            fabric
        }
        "bicgstab-fused" => {
            let a = system3d(3, 3, 6);
            let mut fabric = Fabric::new(3, 3);
            let _ = WaferBicgstab::build_fused(&mut fabric, &a);
            fabric
        }
        "cg" => {
            let a = system3d(3, 3, 6);
            let mut fabric = Fabric::new(3, 3);
            let _ = WaferCg::build(&mut fabric, &a, CgVariant::Standard);
            fabric
        }
        "cg-single" => {
            let a = system3d(3, 3, 6);
            let mut fabric = Fabric::new(3, 3);
            let _ = WaferCg::build(&mut fabric, &a, CgVariant::SingleReduction);
            fabric
        }
        "bicgstab2d" => {
            let block = Block2D::new(3, 3);
            let a = system2d(3, 3, block);
            let mut fabric = Fabric::new(3, 3);
            let _ = WaferBicgstab2d::build(&mut fabric, &a, block);
            fabric
        }
        "dsl-star9-2d" => {
            let spec = wse_dsl::catalog::get("star9-2d").expect("catalog operator");
            let mut fabric = Fabric::new(2, 2);
            wse_dsl::lower_spec(&mut fabric, &spec, Mesh3D::new(8, 8, 1), Some(Block2D::new(4, 4)))
                .expect("catalog operator must lower");
            fabric
        }
        "dsl-star25-3d" => {
            let spec = wse_dsl::catalog::get("star25-3d").expect("catalog operator");
            let mut fabric = Fabric::new(5, 4);
            wse_dsl::lower_spec(&mut fabric, &spec, Mesh3D::new(5, 4, 12), None)
                .expect("catalog operator must lower");
            fabric
        }
        other => {
            if let Some(name) = other.strip_prefix("fixture:") {
                return wse_lint::fixtures::build(name).unwrap_or_else(|| {
                    eprintln!(
                        "unknown fixture `{name}`; available: {}",
                        wse_lint::fixtures::ALL.join(", ")
                    );
                    std::process::exit(2);
                });
            }
            eprintln!("unknown configuration `{other}`; available: {}", ALL.join(", "));
            std::process::exit(2);
        }
    }
}

/// The DSL-rejection fixtures: intentionally illegal stencil specs the
/// `wse-dsl` front-end must refuse with a structured error **before any
/// fabric is touched**. Returns the error and whether the probe fabric
/// really stayed pristine (no SRAM, no tasks, no routes).
fn dsl_fixture(name: &str) -> Option<(wse_dsl::DslError, bool)> {
    use wse_dsl::{Boundary, Precision, StencilSpec, Tap};
    let (spec, mesh) = match name {
        // A tap seven hops out: past the relay mapping's routable radius.
        "dsl-radius-overflow" => (
            StencilSpec::new(
                "bad-radius",
                vec![Tap::constant(0, 0, 0, 1.0), Tap::constant(7, 0, 0, -0.125)],
                Precision::F16,
                Boundary::Dirichlet0,
            ),
            Mesh3D::new(3, 3, 8),
        ),
        // A 4096-point column: seven coefficient vectors plus buffers blow
        // the 48 KB tile budget.
        "dsl-sram-overflow" => {
            (wse_dsl::catalog::get("star7-3d").expect("catalog operator"), Mesh3D::new(2, 2, 4096))
        }
        _ => return None,
    };
    let mut fabric = Fabric::new(8, 8);
    let err = match wse_dsl::lower_spec(&mut fabric, &spec, mesh, None) {
        Err(e) => e,
        Ok(_) => panic!("fixture {name} unexpectedly lowered clean"),
    };
    let untouched = (0..fabric.height()).all(|y| {
        (0..fabric.width()).all(|x| {
            let t = fabric.tile(x, y);
            t.mem.used() == 0
                && t.core.dump_program().is_empty()
                && t.router.routes().next().is_none()
        })
    });
    Some((err, untouched))
}

/// Escapes a string for a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "usage: wse-lint [--json] [CONFIG ...]\nconfigurations: {}, fixture:NAME\nfixtures: {}",
            ALL.join(", "),
            wse_lint::fixtures::ALL.join(", ")
        );
        return;
    }
    let json = args.iter().any(|a| a == "--json");
    args.retain(|a| a != "--json");
    let configs: Vec<&str> =
        if args.is_empty() { ALL.to_vec() } else { args.iter().map(|s| s.as_str()).collect() };

    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut records: Vec<String> = Vec::new();
    for config in configs {
        // DSL-rejection fixtures never produce a fabric; report the
        // structured front-end error in the same diffable format.
        if let Some((err, untouched)) = config.strip_prefix("fixture:").and_then(dsl_fixture) {
            if json {
                records.push(format!(
                    "{{\"config\":\"{}\",\"tile\":[0,0],\"severity\":\"error\",\
                     \"rule\":\"dsl-reject\",\"message\":\"{}\"}}",
                    json_escape(config),
                    json_escape(&err.to_string())
                ));
            } else {
                println!("{config}: rejected by the DSL front-end (fabric untouched: {untouched})");
                println!("  error: [dsl-reject] {err}");
            }
            if !untouched {
                eprintln!("{config}: rejection mutated the fabric — the before-any-fabric contract is broken");
            }
            errors += 1;
            continue;
        }
        let fabric = build(config);
        let diags = lint(&fabric);
        if json {
            for d in &diags {
                records.push(format!(
                    "{{\"config\":\"{}\",\"tile\":[{},{}],\"severity\":\"{}\",\
                     \"rule\":\"{}\",\"message\":\"{}\"}}",
                    json_escape(config),
                    d.tile.0,
                    d.tile.1,
                    d.severity,
                    d.rule,
                    json_escape(&d.message)
                ));
            }
        } else if diags.is_empty() {
            println!("{config}: clean ({}x{} fabric)", fabric.width(), fabric.height());
        } else {
            println!("{config}: {} diagnostic(s)", diags.len());
            for d in &diags {
                println!("  {d}");
            }
        }
        for d in &diags {
            match d.severity {
                Severity::Error => errors += 1,
                Severity::Warning => warnings += 1,
            }
        }
    }
    if json {
        println!("[{}]", records.join(","));
    }
    if errors > 0 {
        eprintln!("wse-lint: {errors} error(s), {warnings} warning(s)");
        std::process::exit(1);
    }
    if warnings > 0 && !json {
        println!("wse-lint: {warnings} warning(s)");
    }
}
