//! # wafer-stencil
//!
//! A full reproduction of *Fast Stencil-Code Computation on a Wafer-Scale
//! Processor* (Rocki et al., SC'20) as a Rust workspace: the Cerebras CS-1
//! tile architecture as a cycle-stepped simulator, the paper's BiCGStab
//! stencil solver mapped onto it (Listing 1's SpMV dataflow, the Fig. 5
//! routing tessellation, the Fig. 6 AllReduce), host-side reference solvers
//! generic over fp64/fp32/mixed-fp16 precision, an MFIX-like SIMPLE CFD
//! substrate, and analytic performance models that regenerate every table
//! and figure of the paper's evaluation.
//!
//! This meta-crate re-exports the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`float`] | `wse-float` | software IEEE binary16, SIMD-4, mixed FMAC |
//! | [`arch`] | `wse-arch` | the tile/fabric simulator |
//! | [`kernels`] | `wse-core` | on-wafer SpMV, AllReduce, BiCGStab |
//! | [`stencil_`] | `stencil` | meshes, DIA matrices, decomposition |
//! | [`solver_`] | `solver` | host BiCGStab/CG/Jacobi + precision studies |
//! | [`cfd_`] | `cfd` | SIMPLE lid-driven-cavity substrate |
//! | [`perf`] | `perf-model` | CS-1/cluster performance models |
//! | [`cluster`] | `cluster-sim` | rank-level Joule-cluster simulation |
//!
//! ## Quickstart
//!
//! ```
//! use wafer_stencil::prelude::*;
//!
//! // A diagonally preconditioned 7-point system on a small mesh…
//! let problem = manufactured(Mesh3D::new(4, 4, 16), (1.0, 0.0, 0.0), 42).preconditioned();
//! let a16: DiaMatrix<F16> = problem.matrix.convert();
//! let b16: Vec<F16> = problem.rhs.iter().map(|&v| F16::from_f64(v)).collect();
//!
//! // …solved by BiCGStab running on a simulated 4×4 corner of the wafer.
//! let mut fabric = Fabric::new(4, 4);
//! let solver = WaferBicgstab::build(&mut fabric, &a16);
//! let (_x, stats) = solver.solve(&mut fabric, &b16, 8);
//! assert!(stats.residuals.last().unwrap() < &0.1);
//! ```

#![warn(missing_docs)]

pub mod wafer_cfd;

pub use cfd as cfd_;
pub use cluster_sim as cluster;
pub use perf_model as perf;
pub use solver as solver_;
pub use stencil as stencil_;
pub use wse_arch as arch;
pub use wse_core as kernels;
pub use wse_float as float;

/// The most commonly used items, for examples and quick starts.
pub mod prelude {
    pub use cfd::cavity::Cavity;
    pub use perf_model::cluster::JouleModel;
    pub use perf_model::cs1::Cs1Model;
    pub use solver::policy::{Fp32, Fp64, MixedF16, PureF16};
    pub use solver::{bicgstab, SolveOptions};
    pub use stencil::decomp::{Block2D, Mapping3D};
    pub use stencil::mesh::{Mesh2D, Mesh3D};
    pub use stencil::problem::manufactured;
    pub use stencil::DiaMatrix;
    pub use wse_arch::Fabric;
    pub use wse_core::{WaferBicgstab, WaferSpmv};
    pub use wse_float::F16;
}
