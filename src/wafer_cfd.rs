//! SIMPLE CFD with its four linear solves on the simulated wafer — the
//! §VI vision ("four linear systems are solved at every time step, one for
//! each of the solution variables, three velocity components u, v, w and
//! pressure p") as a running prototype.
//!
//! Division of labor in this prototype: the *assembly* steps (momentum
//! coefficients, pressure correction, field update) run host-side in the
//! `cfd` crate — the paper's Table II costs them analytically — while every
//! **BiCGStab solve executes on the simulated wafer**, with its fp16/fp32
//! arithmetic, SpMV dataflow, and AllReduces, and its cycles accounted.
//! MFIX's production mapping would keep the coefficients resident; here
//! each solve gets a fresh fabric (the simulator's bump allocator does not
//! free), which costs host time but no simulated cycles.

use cfd::continuity::{apply_corrections, assemble_pressure_correction};
use cfd::fields::FlowField;
use cfd::grid::{Component, StaggeredGrid};
use cfd::momentum::assemble_momentum;
use cfd::simple::SimpleParams;
use stencil::precond::jacobi_scale;
use stencil::DiaMatrix;
use wse_arch::Fabric;
use wse_core::WaferBicgstab;
use wse_float::F16;

/// Cycle accounting for one wafer-SIMPLE iteration.
#[derive(Copy, Clone, Debug, Default)]
pub struct WaferSimpleStats {
    /// Simulated cycles spent in the three momentum solves.
    pub momentum_cycles: u64,
    /// Simulated cycles in the continuity solve.
    pub continuity_cycles: u64,
    /// Final relative residual of the worst momentum solve.
    pub momentum_residual: f64,
    /// RMS divergence after the field update.
    pub mass_residual: f64,
}

/// The wafer-coupled SIMPLE driver.
pub struct WaferSimple {
    /// The flow state (host-resident between solves).
    pub field: FlowField,
    /// SIMPLE controls (iteration caps per solve as in the paper: 5 for
    /// momentum, 20 for continuity).
    pub params: SimpleParams,
    /// Per-iteration statistics.
    pub history: Vec<WaferSimpleStats>,
}

/// Solves one assembled f64 system on a fresh simulated wafer at the
/// paper's precision; returns the widened solution and simulated cycles.
fn solve_on_wafer(a: &DiaMatrix<f64>, b: &[f64], iters: usize) -> (Vec<f64>, u64) {
    let sys = jacobi_scale(a, b);
    let a16: DiaMatrix<F16> = sys.matrix.convert();
    let b16: Vec<F16> = sys.rhs.iter().map(|&v| F16::from_f64(v)).collect();
    let mesh = a16.mesh();
    let mut fabric = Fabric::new(mesh.nx, mesh.ny);
    let solver = WaferBicgstab::build(&mut fabric, &a16);
    let (x, stats) = solver.solve(&mut fabric, &b16, iters);
    let cycles = stats.iterations.iter().map(|c| c.total()).sum();
    (x.iter().map(|v| v.to_f64()).collect(), cycles)
}

impl WaferSimple {
    /// A quiescent cavity on an `n³` grid.
    pub fn new(n: usize, params: SimpleParams) -> WaferSimple {
        let grid = StaggeredGrid::new(n, n, n, 1.0 / n as f64);
        WaferSimple { field: FlowField::zeros(grid), params, history: Vec::new() }
    }

    /// Runs one SIMPLE iteration with all four solves on the wafer.
    pub fn iterate(&mut self) -> WaferSimpleStats {
        let mut stats = WaferSimpleStats::default();
        let mut aps: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];

        for (ci, comp) in [Component::U, Component::V, Component::W].into_iter().enumerate() {
            let sys = assemble_momentum(&self.field, comp, &self.params.props);
            let (x, cycles) = solve_on_wafer(&sys.matrix, &sys.rhs, self.params.momentum_iters);
            stats.momentum_cycles += cycles;
            // Track the true residual of the fp16 solution against the f64
            // system.
            let scaled = jacobi_scale(&sys.matrix, &sys.rhs);
            let mut ax = vec![0.0; x.len()];
            scaled.matrix.matvec_f64(&x, &mut ax);
            let num: f64 =
                scaled.rhs.iter().zip(&ax).map(|(b, a)| (b - a) * (b - a)).sum::<f64>().sqrt();
            let den: f64 = scaled.rhs.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-300);
            stats.momentum_residual = stats.momentum_residual.max(num / den);
            *self.field.component_mut(comp) = x;
            aps[ci] = sys.ap;
        }

        let psys = assemble_pressure_correction(&self.field, &aps[0], &aps[1], &aps[2]);
        let (p_prime, cycles) =
            solve_on_wafer(&psys.matrix, &psys.rhs, self.params.continuity_iters);
        stats.continuity_cycles = cycles;
        apply_corrections(&mut self.field, &psys, &p_prime, self.params.alpha_p);

        stats.mass_residual = self.field.divergence_rms();
        self.history.push(stats);
        stats
    }

    /// Runs `n` iterations; returns the last statistics.
    pub fn run(&mut self, n: usize) -> WaferSimpleStats {
        let mut last = WaferSimpleStats::default();
        for _ in 0..n {
            last = self.iterate();
        }
        last
    }

    /// Total simulated solver cycles so far.
    pub fn total_cycles(&self) -> u64 {
        self.history.iter().map(|s| s.momentum_cycles + s.continuity_cycles).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wafer_simple_develops_cavity_flow() {
        let mut ws = WaferSimple::new(4, SimpleParams::default());
        let last = ws.run(6);
        assert!(ws.field.kinetic_energy() > 1e-7, "flow must develop");
        assert!(last.mass_residual < 0.1, "mass residual {}", last.mass_residual);
        assert!(last.momentum_cycles > 0 && last.continuity_cycles > 0);
        // The continuity solve gets 4x the iteration budget of a momentum
        // solve (20 vs 5) but there are three momentum solves.
        assert!(
            last.continuity_cycles > last.momentum_cycles / 3,
            "continuity is the long solve: {last:?}"
        );
    }

    #[test]
    fn wafer_simple_tracks_host_simple() {
        // The wafer solves run at fp16 with capped iterations; the flow
        // field should still track the all-f64 host SIMPLE qualitatively.
        let n = 4;
        let params = SimpleParams::default();
        let mut ws = WaferSimple::new(n, params);
        ws.run(6);
        let mut host =
            cfd::simple::SimpleSolver::new(StaggeredGrid::new(n, n, n, 1.0 / n as f64), params);
        host.run(6);
        // Compare the u-fields: correlated within fp16-solve tolerance.
        let (a, b) = (&ws.field.u, &host.field.u);
        let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
        let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
        let cosine = dot / (na * nb).max(1e-300);
        assert!(cosine > 0.95, "wafer and host flow fields correlate: {cosine}");
    }
}
