//! Property tests for the DSL front door.
//!
//! Two contracts, straight from the subsystem's promise:
//!
//! 1. **Legal in, lint-clean out.** Any well-formed spec the planner
//!    accepts — random tap subsets within the routable neighborhood, mixed
//!    precisions — lowers to a program that passes the full `wse-lint`
//!    ensemble (routes/colors/SRAM/deadlock/race/progress) on the first
//!    try. No legal stencil can emit a program the static verifier
//!    rejects.
//! 2. **Illegal in, structured error out, fabric untouched.** Specs that
//!    reach beyond the routable radius or overflow the 48 KB tile SRAM are
//!    rejected with the matching [`DslError`] variant before a single
//!    route, allocation, or task exists on the fabric.

use proptest::prelude::*;
use stencil::decomp::Block2D;
use stencil::mesh::Mesh3D;
use wse_arch::Fabric;
use wse_dsl::plan::{BLOCK_MAX_RADIUS, ROUTABLE_RADIUS};
use wse_dsl::{Boundary, DslError, Precision, StencilSpec, Tap};

/// Power-of-two weights: fp16-exact, so precision choice never affects
/// legality.
const WEIGHTS: [f64; 6] = [1.0, -0.5, 0.25, -0.25, 0.125, -0.0625];

fn precision() -> impl Strategy<Value = Precision> {
    any::<bool>().prop_map(|half| if half { Precision::F16 } else { Precision::F32 })
}

/// A random legal 2D spec: distinct offsets inside the block-mapping
/// neighborhood (radius ≤ 2), constant power-of-two weights.
fn legal_2d_spec() -> impl Strategy<Value = StencilSpec> {
    let r = BLOCK_MAX_RADIUS as i32;
    let tap = (-r..=r, -r..=r, 0..WEIGHTS.len());
    (proptest::collection::vec(tap, 1..10), precision()).prop_map(|(raw, prec)| {
        let mut taps: Vec<Tap> = Vec::new();
        for (dx, dy, wi) in raw {
            if !taps.iter().any(|t| t.off.dx == dx && t.off.dy == dy) {
                taps.push(Tap::constant(dx, dy, 0, WEIGHTS[wi]));
            }
        }
        StencilSpec::new("prop-2d", taps, prec, Boundary::Dirichlet0)
    })
}

/// A random legal 3D star: distinct axis-aligned offsets, per-axis reach
/// within the relay limits (x/y ≤ ROUTABLE_RADIUS, z kept short of the
/// column).
fn legal_3d_spec() -> impl Strategy<Value = StencilSpec> {
    let r = ROUTABLE_RADIUS as i32;
    let tap = (0..3usize, -r..=r, 0..WEIGHTS.len());
    (proptest::collection::vec(tap, 1..12), precision()).prop_map(|(raw, prec)| {
        let mut taps: Vec<Tap> = Vec::new();
        for (axis, d, wi) in raw {
            let (dx, dy, dz) = match axis {
                0 => (d, 0, 0),
                1 => (0, d, 0),
                // Keep |dz| ≤ 2 so any z ≥ 4 column satisfies rz < z.
                _ => (0, 0, d.clamp(-2, 2)),
            };
            if !taps.iter().any(|t| t.off.dx == dx && t.off.dy == dy && t.off.dz == dz) {
                taps.push(Tap::constant(dx, dy, dz, WEIGHTS[wi]));
            }
        }
        StencilSpec::new("prop-3d", taps, prec, Boundary::Dirichlet0)
    })
}

/// Every tile still pristine: no SRAM allocated, no program text, no routes.
fn fabric_untouched(fabric: &Fabric) -> bool {
    for y in 0..fabric.height() {
        for x in 0..fabric.width() {
            let tile = fabric.tile(x, y);
            if tile.mem.used() != 0 || !tile.core.dump_program().is_empty() {
                return false;
            }
            if tile.router.routes().next().is_some() {
                return false;
            }
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn legal_2d_specs_lower_lint_clean(spec in legal_2d_spec(), bx in 4usize..7, by in 4usize..7) {
        let mesh = Mesh3D::new(2 * bx, 2 * by, 1);
        let mut fabric = Fabric::new(2, 2);
        let lowered = wse_dsl::lower_spec(&mut fabric, &spec, mesh, Some(Block2D::new(bx, by)))
            .expect("legal 2D spec must lower");
        prop_assert_eq!(lowered.dtype, spec.precision.dtype());
        let diags = wse_lint::lint(&fabric);
        prop_assert!(diags.is_empty(), "lint findings on a legal spec: {:?}", diags);
    }

    #[test]
    fn legal_3d_specs_lower_lint_clean(spec in legal_3d_spec(), z in 5usize..12) {
        let mesh = Mesh3D::new(3, 3, z);
        let mut fabric = Fabric::new(3, 3);
        wse_dsl::lower_spec(&mut fabric, &spec, mesh, None).expect("legal 3D spec must lower");
        let diags = wse_lint::lint(&fabric);
        prop_assert!(diags.is_empty(), "lint findings on a legal spec: {:?}", diags);
    }

    #[test]
    fn radius_overflow_is_rejected_before_fabric(
        spec in legal_3d_spec(),
        reach in (ROUTABLE_RADIUS as i32 + 1)..=(ROUTABLE_RADIUS as i32 + 4),
        flip in any::<bool>(),
        on_y in any::<bool>(),
    ) {
        let mut spec = spec;
        let d = if flip { -reach } else { reach };
        let (dx, dy) = if on_y { (0, d) } else { (d, 0) };
        spec.taps.retain(|t| !(t.off.dx == dx && t.off.dy == dy && t.off.dz == 0));
        spec.taps.push(Tap::constant(dx, dy, 0, 0.25));
        let mut fabric = Fabric::new(10, 10);
        let err = wse_dsl::lower_spec(&mut fabric, &spec, Mesh3D::new(3, 3, 8), None)
            .expect_err("out-of-radius tap must be rejected");
        prop_assert!(
            matches!(err, DslError::RadiusOverflow { max, .. } if max == ROUTABLE_RADIUS),
            "wrong rejection: {}", err
        );
        prop_assert!(fabric_untouched(&fabric), "rejection must precede fabric mutation");
    }

    #[test]
    fn sram_overflow_is_rejected_before_fabric(spec in legal_3d_spec(), z in 13000usize..16000) {
        // Even the leanest layout (single register-held tap, no relay
        // buffers) needs the padded iterate plus the result — 4z bytes at
        // fp16 — so any z above 12288 overflows the 48 KB budget for every
        // generated spec and precision.
        let mut fabric = Fabric::new(2, 2);
        let err = wse_dsl::lower_spec(&mut fabric, &spec, Mesh3D::new(2, 2, z), None)
            .expect_err("oversized column must be rejected");
        prop_assert!(
            matches!(err, DslError::SramOverflow { need, budget } if need > budget),
            "wrong rejection: {}", err
        );
        prop_assert!(fabric_untouched(&fabric), "rejection must precede fabric mutation");
    }

    #[test]
    fn lowering_is_deterministic(spec in legal_2d_spec()) {
        // Same source, same program: the cache-soundness precondition.
        let mesh = Mesh3D::new(8, 8, 1);
        let build = |spec: &StencilSpec| {
            let mut fabric = Fabric::new(2, 2);
            let lowered =
                wse_dsl::lower_spec(&mut fabric, spec, mesh, Some(Block2D::new(4, 4))).unwrap();
            (lowered.fingerprint, fabric.tile(0, 0).core.dump_program())
        };
        prop_assert_eq!(build(&spec), build(&spec));
    }
}
