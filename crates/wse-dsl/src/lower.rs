//! The shared lowering layer: spec + matrix + fabric geometry → a fully
//! built, lint-clean wafer program behind one handle.
//!
//! [`lower`] first runs [`crate::plan`] (all structured rejections happen
//! there, before any fabric state exists), then dispatches to one of the
//! three emitters:
//!
//! * 2D meshes → [`crate::block2d`] (the 9-point section's block mapping,
//!   generalized to radius ≤ 2);
//! * 3D 7-point fp16 stars over a unit-diagonal matrix → [`crate::zcolumn`]
//!   (the paper's Listing-1 dataflow — the fastest path, so it wins
//!   whenever eligible);
//! * every other 3D star → [`crate::relay`] (store-and-forward rounds,
//!   radius ≤ 4 per axis on four colors).
//!
//! The emitted program is verified by `wse-lint` in debug builds before the
//! handle is returned: a `Lowered` is lint-clean by construction.

use stencil::decomp::{Block2D, Mapping3D};
use stencil::dia::DiaMatrix;
use stencil::mesh::Mesh3D;
use stencil::precond::has_unit_diagonal;
use wse_arch::types::{Dtype, TaskId};
use wse_arch::Fabric;
use wse_float::F16;

use crate::block2d::{
    build_block_tile_task, configure_block_routes, load_block_coefficients, load_scalar_slice,
    store_scalar_slice, BlockLayout,
};
use crate::ir::{DslError, StencilSpec};
use crate::plan::{listing1_eligible, plan, Geometry, MappingPlan};
use crate::relay::{
    build_relay_tile, configure_relay_routes, load_relay_coefficients, RelayLayout, RelayTasks,
};
use crate::tess::configure_spmv_routes;
use crate::zcolumn::{
    build_spmv_tile, load_coefficients, load_iterate, read_result, tile_coefficients, SpmvLayout,
    SpmvTasks,
};

/// A stencil operator lowered onto a fabric: routes configured, SRAM
/// packed, coefficients loaded, tasks wired, and (in debug builds)
/// lint-verified. Drive it with [`Lowered::apply`].
pub struct Lowered {
    /// The spec's name.
    pub name: String,
    /// The spec fingerprint ([`StencilSpec::fingerprint`]) — cache key
    /// material for compiled-program caches.
    pub fingerprint: u64,
    /// Element type of the datapath.
    pub dtype: Dtype,
    detail: Detail,
}

enum Detail {
    Block {
        w: usize,
        h: usize,
        block: Block2D,
        r: usize,
        mesh: Mesh3D,
        layouts: Vec<BlockLayout>,
        tasks: Vec<TaskId>,
    },
    Listing1 {
        mapping: Mapping3D,
        layouts: Vec<SpmvLayout>,
        tasks: Vec<SpmvTasks>,
    },
    Relay {
        w: usize,
        h: usize,
        rounds: usize,
        mesh: Mesh3D,
        layouts: Vec<RelayLayout>,
        tasks: Vec<RelayTasks>,
    },
}

/// Lowers `spec` with its coefficient matrix `a` onto `fabric`.
///
/// `block` supplies the per-tile block extents for 2D meshes (ignored for
/// 3D). All validation happens in [`plan`] **before any fabric state is
/// created**; on `Err` the fabric is untouched.
pub fn lower(
    fabric: &mut Fabric,
    spec: &StencilSpec,
    a: &DiaMatrix<f64>,
    block: Option<Block2D>,
) -> Result<Lowered, DslError> {
    let mesh = a.mesh();
    let geometry = Geometry { fabric_w: fabric.width(), fabric_h: fabric.height(), block };
    let p = plan(spec, mesh, geometry)?;
    let offsets = spec.offsets();

    let detail = match p.mapping {
        MappingPlan::Block { w, h, block, r } => {
            configure_block_routes(fabric, w, h, r);
            let mut layouts = Vec::with_capacity(w * h);
            let mut tasks = Vec::with_capacity(w * h);
            for ty in 0..h {
                for tx in 0..w {
                    let tile = fabric.tile_mut(tx, ty);
                    let layout = BlockLayout::alloc(tile, block, offsets.len(), r, p.dtype);
                    load_block_coefficients(tile, &layout, a, &offsets, tx, ty);
                    let task = build_block_tile_task(tile, &layout, &offsets, tx, ty, w, h);
                    tile.core.mark_entry(task);
                    layouts.push(layout);
                    tasks.push(task);
                }
            }
            crate::debug_lint(fabric);
            Detail::Block { w, h, block, r, mesh, layouts, tasks }
        }
        MappingPlan::Relay { .. } if listing1_eligible(spec) && has_unit_diagonal(a) => {
            // The paper's Listing-1 dataflow: strictly faster than one
            // relay round (neighbor columns stream through FIFOs while the
            // diagonal FMACs run), so it wins whenever eligible.
            let a16 = convert_f16(a);
            let mapping = Mapping3D::new(mesh, fabric.width(), fabric.height());
            configure_spmv_routes(fabric, mapping.fabric_w, mapping.fabric_h);
            let mut layouts = Vec::with_capacity(mapping.cores());
            let mut tasks = Vec::with_capacity(mapping.cores());
            for y in 0..mapping.fabric_h {
                for x in 0..mapping.fabric_w {
                    let tile = fabric.tile_mut(x, y);
                    let layout = SpmvLayout::alloc(tile, mapping.z as u32);
                    let coeffs = tile_coefficients(&a16, x, y);
                    load_coefficients(tile, &layout, &coeffs);
                    let t = build_spmv_tile(
                        tile,
                        x,
                        y,
                        mapping.fabric_w,
                        mapping.fabric_h,
                        layout,
                        None,
                    );
                    layouts.push(layout);
                    tasks.push(t);
                }
            }
            crate::debug_lint(fabric);
            Detail::Listing1 { mapping, layouts, tasks }
        }
        MappingPlan::Relay { w, h, z, rx, ry, rz, rounds } => {
            configure_relay_routes(fabric, w, h, rx, ry);
            let ncoefvecs =
                if crate::plan::relay_uses_registers(spec) { 0 } else { spec.taps.len() };
            let mut layouts = Vec::with_capacity(w * h);
            let mut tasks = Vec::with_capacity(w * h);
            for y in 0..h {
                for x in 0..w {
                    let tile = fabric.tile_mut(x, y);
                    let layout =
                        RelayLayout::alloc(tile, z as u32, ncoefvecs, (rx, ry, rz), p.dtype);
                    load_relay_coefficients(tile, &layout, spec, a, x, y);
                    let t = build_relay_tile(tile, x, y, w, h, &layout, spec);
                    layouts.push(layout);
                    tasks.push(t);
                }
            }
            crate::debug_lint(fabric);
            Detail::Relay { w, h, rounds, mesh, layouts, tasks }
        }
        MappingPlan::Listing1 { .. } => unreachable!("plan defers the Listing-1 choice to lower"),
    };

    Ok(Lowered { name: spec.name.clone(), fingerprint: p.fingerprint, dtype: p.dtype, detail })
}

/// Lowers an **all-constant** spec by materializing its matrix on `mesh`
/// first ([`StencilSpec::matrix`]). Per-cell-variable specs need a caller
/// matrix — use [`lower`].
pub fn lower_spec(
    fabric: &mut Fabric,
    spec: &StencilSpec,
    mesh: Mesh3D,
    block: Option<Block2D>,
) -> Result<Lowered, DslError> {
    let a = spec.matrix(mesh)?;
    lower(fabric, spec, &a, block)
}

fn convert_f16(a: &DiaMatrix<f64>) -> DiaMatrix<F16> {
    let mesh = a.mesh();
    let mut out = DiaMatrix::<F16>::new(mesh, a.offsets());
    for off in a.offsets().to_vec() {
        for (x, y, z) in mesh.iter() {
            if mesh.neighbor(x, y, z, off.dx, off.dy, off.dz).is_some() {
                out.set(x, y, z, off, F16::from_f64(a.coeff(x, y, z, off)));
            }
        }
    }
    out
}

impl std::fmt::Debug for Lowered {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lowered")
            .field("name", &self.name)
            .field("fingerprint", &self.fingerprint)
            .field("dtype", &self.dtype)
            .field("kind", &self.kind())
            .finish()
    }
}

impl Lowered {
    /// Which emitter produced the program: `"block"`, `"listing1"`, or
    /// `"relay"`.
    pub fn kind(&self) -> &'static str {
        match self.detail {
            Detail::Block { .. } => "block",
            Detail::Listing1 { .. } => "listing1",
            Detail::Relay { .. } => "relay",
        }
    }

    /// Executes one operator application `u = A v` on the fabric. `v` is in
    /// global mesh order (exact dtype-representable values); returns the
    /// result (widened exactly to `f64`) and the cycle count.
    ///
    /// # Panics
    /// Panics if the fabric fails to quiesce or `v` has the wrong length.
    pub fn apply(&self, fabric: &mut Fabric, v: &[f64]) -> (Vec<f64>, u64) {
        match &self.detail {
            Detail::Block { w, h, block, r, mesh, layouts, tasks } => {
                let (bx, by) = (block.bx, block.by);
                assert_eq!(v.len(), mesh.len(), "iterate length mismatch");
                for ty in 0..*h {
                    for tx in 0..*w {
                        let layout = &layouts[ty * w + tx];
                        let mut local = vec![0.0f64; bx * by];
                        for i in 0..bx {
                            for j in 0..by {
                                local[i * by + j] = v[mesh.idx(tx * bx + i, ty * by + j, 0)];
                            }
                        }
                        let tile = fabric.tile_mut(tx, ty);
                        store_scalar_slice(tile, layout.v, &local, self.dtype);
                        tile.core.activate(tasks[ty * w + tx]);
                    }
                }
                let budget = 2_000 * (bx * by) as u64 + 100_000;
                let cycles = fabric
                    .run_until_quiescent(budget)
                    .unwrap_or_else(|e| panic!("dsl block apply stalled: {e}"));
                let mut out = vec![0.0; mesh.len()];
                for ty in 0..*h {
                    for tx in 0..*w {
                        let layout = &layouts[ty * w + tx];
                        let tile = fabric.tile(tx, ty);
                        for i in 0..bx {
                            let row =
                                load_scalar_slice(tile, layout.u_addr(i + r, *r), by, self.dtype);
                            for (j, &u) in row.iter().enumerate() {
                                out[mesh.idx(tx * bx + i, ty * by + j, 0)] = u;
                            }
                        }
                    }
                }
                (out, cycles)
            }
            Detail::Listing1 { mapping, layouts, tasks } => {
                let m = *mapping;
                assert_eq!(v.len(), m.cores() * m.z, "iterate length mismatch");
                for y in 0..m.fabric_h {
                    for x in 0..m.fabric_w {
                        let i = y * m.fabric_w + x;
                        let rows = m.core_rows(x, y);
                        let v16: Vec<F16> = v[rows].iter().map(|&s| F16::from_f64(s)).collect();
                        let tile = fabric.tile_mut(x, y);
                        load_iterate(tile, &layouts[i], &v16);
                        tile.core.activate(tasks[i].start);
                    }
                }
                let budget = 64 * m.z as u64 + 10_000;
                let cycles = fabric
                    .run_until_quiescent(budget)
                    .unwrap_or_else(|e| panic!("dsl listing1 apply stalled: {e}"));
                let mut out = vec![0.0; v.len()];
                for y in 0..m.fabric_h {
                    for x in 0..m.fabric_w {
                        let i = y * m.fabric_w + x;
                        let u = read_result(fabric.tile(x, y), &layouts[i]);
                        for (k, h16) in u.iter().enumerate() {
                            out[m.core_rows(x, y).start + k] = h16.to_f64();
                        }
                    }
                }
                (out, cycles)
            }
            Detail::Relay { w, h, rounds, mesh, layouts, tasks } => {
                assert_eq!(v.len(), mesh.len(), "iterate length mismatch");
                let z = mesh.nz;
                for y in 0..*h {
                    for x in 0..*w {
                        let i = y * w + x;
                        let base = mesh.idx(x, y, 0);
                        let col = &v[base..base + z];
                        let tile = fabric.tile_mut(x, y);
                        store_scalar_slice(tile, layouts[i].v_live(), col, self.dtype);
                        tile.core.activate(tasks[i].start);
                    }
                }
                let budget = (*rounds as u64 + 4) * (64 * z as u64 + 10_000) + 100_000;
                let cycles = fabric
                    .run_until_quiescent(budget)
                    .unwrap_or_else(|e| panic!("dsl relay apply stalled: {e}"));
                let mut out = vec![0.0; mesh.len()];
                for y in 0..*h {
                    for x in 0..*w {
                        let i = y * w + x;
                        let u = load_scalar_slice(fabric.tile(x, y), layouts[i].u, z, self.dtype);
                        let base = mesh.idx(x, y, 0);
                        out[base..base + z].copy_from_slice(&u);
                    }
                }
                (out, cycles)
            }
        }
    }

    /// Decomposes a block-mapped program into the pieces `wse-core`'s
    /// `WaferSpmv2d` façade stores: `(w, h, block, layouts, tasks)`.
    ///
    /// # Panics
    /// Panics when the program was not lowered onto the block mapping.
    pub fn into_block_parts(self) -> (usize, usize, Block2D, Vec<BlockLayout>, Vec<TaskId>) {
        match self.detail {
            Detail::Block { w, h, block, layouts, tasks, .. } => (w, h, block, layouts, tasks),
            _ => panic!("not a block-mapped program"),
        }
    }

    /// Decomposes a Listing-1 program into the pieces `wse-core`'s
    /// `WaferSpmv` façade stores: `(mapping, layouts, tasks)`.
    ///
    /// # Panics
    /// Panics when the program was not lowered onto the Listing-1 dataflow.
    pub fn into_zcolumn_parts(self) -> (Mapping3D, Vec<SpmvLayout>, Vec<SpmvTasks>) {
        match self.detail {
            Detail::Listing1 { mapping, layouts, tasks } => (mapping, layouts, tasks),
            _ => panic!("not a Listing-1 program"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::host::{block_reference_apply, relay_reference_apply};
    use crate::ir::Precision;

    /// Deterministic dtype-exact test iterate: a few mantissa bits, so fp16
    /// round-trips exactly and exact-arithmetic comparisons are meaningful.
    fn test_iterate(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i * 37 + 11) % 23) as f64 * 0.0625 - 0.625).collect()
    }

    #[test]
    fn star9_2d_block_matches_reference_bitwise_f16() {
        let spec = catalog::get("star9-2d").unwrap();
        let mesh = Mesh3D::new(8, 8, 1);
        let a = spec.matrix(mesh).unwrap();
        let mut fabric = Fabric::new(2, 2);
        let lowered = lower_spec(&mut fabric, &spec, mesh, Some(Block2D::new(4, 4))).unwrap();
        assert_eq!(lowered.kind(), "block");
        let v = test_iterate(mesh.len());
        let (got, _cycles) = lowered.apply(&mut fabric, &v);
        let want =
            block_reference_apply(&a, &spec.offsets(), Block2D::new(4, 4), 2, 2, 2, Dtype::F16, &v);
        assert_eq!(got, want, "device and host mirror must agree bit-for-bit");
    }

    #[test]
    fn star9_2d_block_matches_reference_bitwise_f32() {
        let spec = catalog::get("star9-2d").unwrap().with_precision(Precision::F32);
        let mesh = Mesh3D::new(8, 8, 1);
        let a = spec.matrix(mesh).unwrap();
        let mut fabric = Fabric::new(2, 2);
        let lowered = lower_spec(&mut fabric, &spec, mesh, Some(Block2D::new(4, 4))).unwrap();
        let v: Vec<f64> = (0..mesh.len()).map(|i| ((i * 13 + 5) % 97) as f64 * 1e-2).collect();
        let (got, _cycles) = lowered.apply(&mut fabric, &v);
        let want =
            block_reference_apply(&a, &spec.offsets(), Block2D::new(4, 4), 2, 2, 2, Dtype::F32, &v);
        assert_eq!(got, want, "fp32 must agree bit-for-bit");
        // And the fp32 result tracks the f64 reference closely.
        let mut exact = vec![0.0; mesh.len()];
        a.matvec_f64(&v, &mut exact);
        for (g, e) in got.iter().zip(&exact) {
            assert!((g - e).abs() < 1e-5, "{g} vs {e}");
        }
    }

    #[test]
    fn star25_3d_relay_matches_reference_bitwise() {
        let spec = catalog::get("star25-3d").unwrap();
        let mesh = Mesh3D::new(5, 4, 12);
        let a = spec.matrix(mesh).unwrap();
        let mut fabric = Fabric::new(5, 4);
        let lowered = lower_spec(&mut fabric, &spec, mesh, None).unwrap();
        assert_eq!(lowered.kind(), "relay");
        let v = test_iterate(mesh.len());
        let (got, _cycles) = lowered.apply(&mut fabric, &v);
        let want = relay_reference_apply(&spec, &a, Dtype::F16, &v);
        assert_eq!(got, want, "device and host mirror must agree bit-for-bit");
        // Exact data ⇒ the fp16 result equals the f64 reference exactly.
        let mut exact = vec![0.0; mesh.len()];
        a.matvec_f64(&v, &mut exact);
        assert_eq!(got, exact);
    }

    #[test]
    fn star7_3d_selects_listing1_and_matches_exact_reference() {
        let spec = catalog::get("star7-3d").unwrap();
        let mesh = Mesh3D::new(3, 3, 8);
        let a = spec.matrix(mesh).unwrap();
        let mut fabric = Fabric::new(3, 3);
        let lowered = lower_spec(&mut fabric, &spec, mesh, None).unwrap();
        assert_eq!(lowered.kind(), "listing1", "unit-diagonal 7-point goes to Listing 1");
        let v = test_iterate(mesh.len());
        let (got, _cycles) = lowered.apply(&mut fabric, &v);
        let mut exact = vec![0.0; mesh.len()];
        a.matvec_f64(&v, &mut exact);
        assert_eq!(got, exact, "exact data ⇒ order-independent, bit-equal result");
    }

    #[test]
    fn five_point_runs_on_single_tile() {
        let spec = catalog::get("star5-2d").unwrap();
        let mesh = Mesh3D::new(4, 4, 1);
        let a = spec.matrix(mesh).unwrap();
        let mut fabric = Fabric::new(1, 1);
        let lowered = lower_spec(&mut fabric, &spec, mesh, Some(Block2D::new(4, 4))).unwrap();
        let v = test_iterate(mesh.len());
        let (got, _cycles) = lowered.apply(&mut fabric, &v);
        let want =
            block_reference_apply(&a, &spec.offsets(), Block2D::new(4, 4), 1, 1, 1, Dtype::F16, &v);
        assert_eq!(got, want);
    }

    #[test]
    fn errors_precede_fabric_mutation() {
        // A spec too wide for the block mapping fails in plan(); the fabric
        // is reusable for a subsequent legal lowering.
        let wide = StencilSpec::new(
            "wide",
            vec![crate::ir::Tap::constant(0, 0, 0, 1.0), crate::ir::Tap::constant(3, 0, 0, 0.5)],
            Precision::F16,
            crate::ir::Boundary::Dirichlet0,
        );
        let mesh = Mesh3D::new(8, 8, 1);
        let mut fabric = Fabric::new(2, 2);
        let err = lower_spec(&mut fabric, &wide, mesh, Some(Block2D::new(4, 4))).unwrap_err();
        assert!(matches!(err, DslError::RadiusOverflow { .. }));
        let spec = catalog::get("box9-2d").unwrap();
        lower_spec(&mut fabric, &spec, mesh, Some(Block2D::new(4, 4))).unwrap();
    }
}
