//! Store-and-forward relay rounds for wide 3D star stencils (the 25-point
//! star of Jacquelin et al., "Scalable Distributed High-Order Stencil
//! Computations", maps this way on the WSE).
//!
//! The Fig.-5 tessellation broadcasts one hop. A radius-4 star needs
//! columns from tiles up to four hops away, but colors are scarce: instead
//! of one channel per (direction, distance) pair, **round `d` re-sends the
//! column received in round `d − 1`** on the same four direction colors
//! ([`crate::colors::RELAY_E`] …). Per-link in-order delivery plus a
//! per-tile barrier between rounds keeps the streams unambiguous, so four
//! colors serve any radius.
//!
//! Memory: each tile holds its own z-column (zero-padded by `rz` on both
//! ends) plus one `z`-length buffer per (direction, distance) pair. A
//! buffer whose source tile falls off the fabric is simply never written:
//! SRAM is zero-initialized, so off-mesh taps read exact zeros — the
//! homogeneous Dirichlet boundary for free. The compute task then applies
//! the taps in spec order: constant coefficients live in core registers
//! (AXPY/Scale forms), per-cell-variable ones in SRAM coefficient columns
//! (FMAC forms).

use crate::colors::{RELAY_E, RELAY_N, RELAY_S, RELAY_W};
use crate::ir::{CoefKind, StencilSpec};
use crate::plan::{distinct_consts, relay_uses_registers, CONST_REG_BASE};
use stencil::dia::DiaMatrix;
use wse_arch::dsr::Descriptor;
use wse_arch::instr::{Op, Stmt, Task, TaskAction, TensorInstr};
use wse_arch::types::{Color, Dtype, Port, TaskId};
use wse_arch::{Fabric, Tile};

/// Direction indices into [`RelayLayout::bufs`]: data *from* the +x, −x,
/// +y, −y neighbor respectively.
pub const XP: usize = 0;
/// Data from the −x side.
pub const XM: usize = 1;
/// Data from the +y side.
pub const YP: usize = 2;
/// Data from the −y side.
pub const YM: usize = 3;

fn t_mem(addr: u32, len: u32, dtype: Dtype) -> Descriptor {
    Descriptor::Mem { addr, len, stride: 1, dtype, rewind: true }
}

fn t_tx(color: Color, len: u32, dtype: Dtype) -> Descriptor {
    Descriptor::FabricOut { color, len, dtype }
}

fn t_rx(color: Color, len: u32, dtype: Dtype) -> Descriptor {
    Descriptor::FabricIn { color, len, dtype }
}

/// Byte addresses of one tile's relay-mapped data.
#[derive(Clone, Debug)]
pub struct RelayLayout {
    /// Local Z extent.
    pub z: u32,
    /// Fabric radii (x, y) and the in-core z radius.
    pub radius: (usize, usize, usize),
    /// Element type.
    pub dtype: Dtype,
    /// Per-tap coefficient columns (`z` words each, tap order); empty when
    /// constants live in registers.
    pub coefvecs: Vec<u32>,
    /// Zero-padded iterate: `z + 2·rz` words, live data at `[rz, rz+z)`.
    pub vpad: u32,
    /// Result vector `u`, `z` words.
    pub u: u32,
    /// Neighbor-column buffers `bufs[dir][dist−1]`, each `z` words;
    /// `bufs[XP]`/`bufs[XM]` have `rx` entries, `bufs[YP]`/`bufs[YM]` `ry`.
    pub bufs: [Vec<u32>; 4],
}

impl RelayLayout {
    /// Allocates the layout (coefficient columns, padded iterate, result,
    /// then XP/XM/YP/YM buffers in that order).
    ///
    /// # Panics
    /// Panics on SRAM exhaustion; [`crate::plan`] rejects such specs first.
    pub fn alloc(
        tile: &mut Tile,
        z: u32,
        ncoefvecs: usize,
        (rx, ry, rz): (usize, usize, usize),
        dtype: Dtype,
    ) -> RelayLayout {
        let mut coefvecs = Vec::with_capacity(ncoefvecs);
        for _ in 0..ncoefvecs {
            coefvecs.push(tile.mem.alloc_vec(z, dtype).expect("SRAM: relay coefficients"));
        }
        let vpad = tile.mem.alloc_vec(z + 2 * rz as u32, dtype).expect("SRAM: relay vpad");
        let u = tile.mem.alloc_vec(z, dtype).expect("SRAM: relay u");
        let mut bufs: [Vec<u32>; 4] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        for (dir, buf) in bufs.iter_mut().enumerate() {
            let depth = if dir < 2 { rx } else { ry };
            for _ in 0..depth {
                buf.push(tile.mem.alloc_vec(z, dtype).expect("SRAM: relay buffer"));
            }
        }
        RelayLayout { z, radius: (rx, ry, rz), dtype, coefvecs, vpad, u, bufs }
    }

    /// Base address of the live (unpadded) part of `v`.
    pub fn v_live(&self) -> u32 {
        self.vpad + self.dtype.bytes() * self.radius.2 as u32
    }
}

/// Task ids of one tile's relay program.
#[derive(Clone, Debug)]
pub struct RelayTasks {
    /// The entry task (round 1, or the compute task when no rounds exist);
    /// activate it to start one apply.
    pub start: TaskId,
    /// The final compute task.
    pub compute: TaskId,
}

/// Relay routing for a `w × h` region at the fabric origin: each direction
/// color hops exactly one tile (ramp → neighbor port, neighbor port →
/// ramp), and the per-round re-send extends the reach. Axes the spec never
/// reaches along (`rx == 0` / `ry == 0`) get no routes at all — a route
/// delivering to a ramp nobody reads is a dead delivery the lint rejects.
pub fn configure_relay_routes(fabric: &mut Fabric, w: usize, h: usize, rx: usize, ry: usize) {
    for y in 0..h {
        for x in 0..w {
            if rx > 0 {
                if x + 1 < w {
                    fabric.set_route(x, y, Port::Ramp, RELAY_E, &[Port::East]);
                    fabric.set_route(x, y, Port::East, RELAY_W, &[Port::Ramp]);
                }
                if x > 0 {
                    fabric.set_route(x, y, Port::Ramp, RELAY_W, &[Port::West]);
                    fabric.set_route(x, y, Port::West, RELAY_E, &[Port::Ramp]);
                }
            }
            if ry > 0 {
                if y + 1 < h {
                    fabric.set_route(x, y, Port::Ramp, RELAY_S, &[Port::South]);
                    fabric.set_route(x, y, Port::South, RELAY_N, &[Port::Ramp]);
                }
                if y > 0 {
                    fabric.set_route(x, y, Port::Ramp, RELAY_N, &[Port::North]);
                    fabric.set_route(x, y, Port::North, RELAY_S, &[Port::Ramp]);
                }
            }
        }
    }
}

/// Loads a tile's per-cell coefficient columns (tap order) from the `f64`
/// matrix. No-op when the layout keeps constants in registers.
pub fn load_relay_coefficients(
    tile: &mut Tile,
    layout: &RelayLayout,
    spec: &StencilSpec,
    a: &DiaMatrix<f64>,
    x: usize,
    y: usize,
) {
    if layout.coefvecs.is_empty() {
        return;
    }
    let z = layout.z as usize;
    for (o, t) in spec.taps.iter().enumerate() {
        let col: Vec<f64> = (0..z).map(|k| a.coeff(x, y, k, t.off)).collect();
        crate::block2d::store_scalar_slice(tile, layout.coefvecs[o], &col, layout.dtype);
    }
}

/// Builds one tile's relay program: `max(rx, ry)` forwarding rounds, a
/// barrier between consecutive rounds, then the tap-order compute task.
pub fn build_relay_tile(
    tile: &mut Tile,
    x: usize,
    y: usize,
    w: usize,
    h: usize,
    layout: &RelayLayout,
    spec: &StencilSpec,
) -> RelayTasks {
    let z = layout.z;
    let (rx, ry, rz) = layout.radius;
    let dt = layout.dtype;
    let esz = dt.bytes();
    let rounds = rx.max(ry);
    let use_regs = relay_uses_registers(spec);
    let consts = distinct_consts(spec);
    let reg_of = |c: f32| -> usize {
        CONST_REG_BASE + consts.iter().position(|s| s.to_bits() == c.to_bits()).unwrap()
    };

    let core = &mut tile.core;

    // --- Compute task (created first; the last round activates it). ---
    let mut cbody: Vec<Stmt> = Vec::new();
    if use_regs {
        for (i, &c) in consts.iter().enumerate() {
            cbody.push(Stmt::SetReg { reg: CONST_REG_BASE + i, value: c });
        }
    }
    for (o, t) in spec.taps.iter().enumerate() {
        // Source column for this tap: a window of the padded local column
        // for z taps (pads read zero), a neighbor buffer for x/y taps
        // (absent neighbors read an all-zero buffer).
        let src_addr = if t.off.dx > 0 {
            layout.bufs[XP][t.off.dx as usize - 1]
        } else if t.off.dx < 0 {
            layout.bufs[XM][(-t.off.dx) as usize - 1]
        } else if t.off.dy > 0 {
            layout.bufs[YP][t.off.dy as usize - 1]
        } else if t.off.dy < 0 {
            layout.bufs[YM][(-t.off.dy) as usize - 1]
        } else {
            layout.vpad + esz * (rz as i64 + t.off.dz as i64) as u32
        };
        let d_src = core.add_dsr(t_mem(src_addr, z, dt));
        let d_u = core.add_dsr(t_mem(layout.u, z, dt));
        let first = o == 0;
        let op = match (use_regs, first, &t.coef) {
            (true, true, CoefKind::Const(c)) => {
                cbody.push(Stmt::Exec(TensorInstr {
                    op: Op::Scale { scalar: reg_of(*c as f32) },
                    dst: Some(d_u),
                    a: Some(d_src),
                    b: None,
                }));
                continue;
            }
            (true, false, CoefKind::Const(c)) => {
                cbody.push(Stmt::Exec(TensorInstr {
                    op: Op::Axpy { scalar: reg_of(*c as f32) },
                    dst: Some(d_u),
                    a: Some(d_src),
                    b: None,
                }));
                continue;
            }
            (_, true, _) => Op::Mul,
            (_, false, _) => Op::FmaAssign,
        };
        let d_coef = core.add_dsr(t_mem(layout.coefvecs[o], z, dt));
        cbody.push(Stmt::Exec(TensorInstr { op, dst: Some(d_u), a: Some(d_coef), b: Some(d_src) }));
    }
    let compute = core.add_task(Task::new("dsl-compute", cbody));

    // --- Forwarding rounds, built last-to-first so each can name its
    // successor. Round d (1-based) sends the column that originated d−1
    // hops away and receives the column from d hops away. ---
    let mut next: TaskId = compute;
    for d in (1..=rounds).rev() {
        // (slot, color, src, dst): sends use slots 0–3, receives 4–7.
        let mut sends: Vec<(u8, Color, u32)> = Vec::new();
        let mut recvs: Vec<(u8, Color, u32)> = Vec::new();
        let from_prev = |dir: usize| layout.bufs[dir][d - 2];
        if d <= rx {
            // Eastward: the east neighbor needs the column from x+1−d.
            if x + 1 < w && x >= d - 1 {
                let src = if d == 1 { layout.v_live() } else { from_prev(XM) };
                sends.push((0, RELAY_E, src));
            }
            // Westward: the west neighbor needs the column from x−1+d.
            if x > 0 && x + (d - 1) < w {
                let src = if d == 1 { layout.v_live() } else { from_prev(XP) };
                sends.push((1, RELAY_W, src));
            }
            if x >= d {
                recvs.push((4, RELAY_E, layout.bufs[XM][d - 1]));
            }
            if x + d < w {
                recvs.push((5, RELAY_W, layout.bufs[XP][d - 1]));
            }
        }
        if d <= ry {
            if y + 1 < h && y >= d - 1 {
                let src = if d == 1 { layout.v_live() } else { from_prev(YM) };
                sends.push((2, RELAY_S, src));
            }
            if y > 0 && y + (d - 1) < h {
                let src = if d == 1 { layout.v_live() } else { from_prev(YP) };
                sends.push((3, RELAY_N, src));
            }
            if y >= d {
                recvs.push((6, RELAY_S, layout.bufs[YM][d - 1]));
            }
            if y + d < h {
                recvs.push((7, RELAY_N, layout.bufs[YP][d - 1]));
            }
        }

        let nlaunch = sends.len() + recvs.len();
        // Completion chain over this round's background threads, the same
        // two-way-barrier idiom as the Z-column kernel; the last barrier
        // activates the next round (or the compute task).
        let mut chain: Vec<TaskId> = Vec::new();
        if nlaunch >= 2 {
            for _ in 0..nlaunch - 1 {
                chain.push(core.add_task(Task::new("dsl-relay-barrier", vec![]).blocked()));
            }
            for i in 0..chain.len() {
                let fire = if i + 1 < chain.len() {
                    Stmt::TaskCtl { task: chain[i + 1], action: TaskAction::Activate }
                } else {
                    Stmt::TaskCtl { task: next, action: TaskAction::Activate }
                };
                core.set_task_body(
                    chain[i],
                    vec![Stmt::TaskCtl { task: chain[i], action: TaskAction::Block }, fire],
                );
            }
        }
        let trigger = |k: usize| -> Option<(TaskId, TaskAction)> {
            if chain.is_empty() {
                // A single launch activates the successor directly; zero
                // launches are handled by an in-body Activate below.
                return (nlaunch == 1).then_some((next, TaskAction::Activate));
            }
            Some(match k {
                0 => (chain[0], TaskAction::Activate),
                1 => (chain[0], TaskAction::Unblock),
                k => (chain[k - 1], TaskAction::Unblock),
            })
        };

        let mut body: Vec<Stmt> = Vec::new();
        let mut k = 0usize;
        for &(slot, color, src) in &sends {
            let d_src = core.add_dsr(t_mem(src, z, dt));
            let d_tx = core.add_dsr(t_tx(color, z, dt));
            body.push(Stmt::InitDsr { dsr: d_tx, desc: t_tx(color, z, dt) });
            body.push(Stmt::Launch {
                slot,
                instr: TensorInstr { op: Op::Copy, dst: Some(d_tx), a: Some(d_src), b: None },
                on_complete: trigger(k),
            });
            k += 1;
        }
        for &(slot, color, dst) in &recvs {
            let d_rx = core.add_dsr(t_rx(color, z, dt));
            let d_buf = core.add_dsr(t_mem(dst, z, dt));
            body.push(Stmt::InitDsr { dsr: d_rx, desc: t_rx(color, z, dt) });
            body.push(Stmt::Launch {
                slot,
                instr: TensorInstr { op: Op::Copy, dst: Some(d_buf), a: Some(d_rx), b: None },
                on_complete: trigger(k),
            });
            k += 1;
        }
        if nlaunch == 0 {
            body.push(Stmt::TaskCtl { task: next, action: TaskAction::Activate });
        }
        // Task names are static; rounds are capped at ROUTABLE_RADIUS = 4.
        const ROUND_NAMES: [&str; 4] = ["dsl-relay-1", "dsl-relay-2", "dsl-relay-3", "dsl-relay-4"];
        next = core.add_task(Task::new(ROUND_NAMES[d - 1], body));
    }

    core.mark_entry(next);
    RelayTasks { start: next, compute }
}
