//! Host reference applies that mirror the lowered programs' arithmetic
//! **order and rounding exactly**, per datapath dtype.
//!
//! The device kernels are deterministic elementwise pipelines (taps in spec
//! order, then at most one halo add per direction per cell), so a host loop
//! that performs the same primitive operations in the same order produces
//! **bit-identical** results at fp32 and fp16 alike. Values are carried as
//! `f64` (exact for both dtypes, [`stencil::scalar::Scalar::to_f64`]), and
//! every primitive rounds through the dtype like the core's datapath does
//! ([`wse_float::fma16`] for the fp16 FMA forms, `f32::mul_add` for fp32).

use crate::ir::{CoefKind, StencilSpec};
use crate::plan::relay_uses_registers;
use stencil::decomp::Block2D;
use stencil::dia::{DiaMatrix, Offset3};
use wse_arch::types::Dtype;
use wse_float::{fma16, F16};

fn rnd(dt: Dtype, v: f64) -> f64 {
    match dt {
        Dtype::F16 => F16::from_f64(v).to_f64(),
        Dtype::F32 => v as f32 as f64,
    }
}

fn mul(dt: Dtype, a: f64, b: f64) -> f64 {
    match dt {
        Dtype::F16 => (F16::from_f64(a) * F16::from_f64(b)).to_f64(),
        Dtype::F32 => (a as f32 * b as f32) as f64,
    }
}

fn add(dt: Dtype, a: f64, b: f64) -> f64 {
    match dt {
        Dtype::F16 => (F16::from_f64(a) + F16::from_f64(b)).to_f64(),
        Dtype::F32 => (a as f32 + b as f32) as f64,
    }
}

/// The fused `dst = a·b + c` form ([`wse_arch`] `FmaAssign`).
fn fma(dt: Dtype, a: f64, b: f64, c: f64) -> f64 {
    match dt {
        Dtype::F16 => fma16(F16::from_f64(a), F16::from_f64(b), F16::from_f64(c)).to_f64(),
        Dtype::F32 => (a as f32).mul_add(b as f32, c as f32) as f64,
    }
}

/// `dst = r · a` with the scalar in an fp32 register (`Scale`).
fn scale_reg(dt: Dtype, r: f32, a: f64) -> f64 {
    match dt {
        Dtype::F16 => (F16::from_f32(r) * F16::from_f64(a)).to_f64(),
        Dtype::F32 => (r * a as f32) as f64,
    }
}

/// `dst = r · a + dst` with the scalar in an fp32 register (`Axpy`).
fn axpy_reg(dt: Dtype, r: f32, a: f64, cur: f64) -> f64 {
    match dt {
        Dtype::F16 => fma16(F16::from_f32(r), F16::from_f64(a), F16::from_f64(cur)).to_f64(),
        Dtype::F32 => r.mul_add(a as f32, cur as f32) as f64,
    }
}

/// Mirror of the relay (and pure-z) compute task: per mesh row, taps in
/// spec order; off-mesh sources read exact zeros (the device's
/// zero-initialized buffers and pads). Matches the lowered relay program
/// bit-for-bit at both precisions.
pub fn relay_reference_apply(
    spec: &StencilSpec,
    a: &DiaMatrix<f64>,
    dt: Dtype,
    v: &[f64],
) -> Vec<f64> {
    let mesh = a.mesh();
    assert_eq!(v.len(), mesh.len(), "iterate length");
    let use_regs = relay_uses_registers(spec);
    let mut out = vec![0.0; mesh.len()];
    for (x, y, z) in mesh.iter() {
        let mut u = 0.0f64;
        for (o, t) in spec.taps.iter().enumerate() {
            let src = match mesh.neighbor(x, y, z, t.off.dx, t.off.dy, t.off.dz) {
                Some(idx) => rnd(dt, v[idx]),
                None => 0.0,
            };
            let first = o == 0;
            u = if use_regs {
                let c = match t.coef {
                    CoefKind::Const(c) => c as f32,
                    CoefKind::Var => unreachable!("register path is all-const"),
                };
                if first {
                    scale_reg(dt, c, src)
                } else {
                    axpy_reg(dt, c, src, u)
                }
            } else {
                let coef = rnd(dt, a.coeff(x, y, z, t.off));
                if first {
                    mul(dt, coef, src)
                } else {
                    fma(dt, coef, src, u)
                }
            };
        }
        out[mesh.idx(x, y, z)] = u;
    }
    out
}

/// Mirror of the 2D block mapping: per-tile extended buffers, FMA passes
/// in tap order, then the x-wing exchange and the y-row exchange (each on
/// pre-round snapshots — the device's sends read regions its receives
/// never write). Matches the lowered block program bit-for-bit at both
/// precisions.
#[allow(clippy::too_many_arguments)]
pub fn block_reference_apply(
    a: &DiaMatrix<f64>,
    offsets: &[Offset3],
    block: Block2D,
    w: usize,
    h: usize,
    r: usize,
    dt: Dtype,
    v: &[f64],
) -> Vec<f64> {
    let mesh = a.mesh();
    assert_eq!(mesh.nz, 1, "block mapping is 2D");
    assert_eq!(v.len(), mesh.len(), "iterate length");
    let (bx, by) = (block.bx, block.by);
    let (ew, eh) = (bx + 2 * r, by + 2 * r);
    let eidx = |i: usize, j: usize| i * eh + j;
    let tidx = |tx: usize, ty: usize| ty * w + tx;

    // FMA passes per tile, tap order, rows ascending (the device's
    // per-row FmaAssign instructions).
    let mut ext = vec![vec![0.0f64; ew * eh]; w * h];
    for ty in 0..h {
        for tx in 0..w {
            let e = &mut ext[tidx(tx, ty)];
            for off in offsets {
                for i in 0..bx {
                    for j in 0..by {
                        let gi = tx * bx + i;
                        let gj = ty * by + j;
                        // The stored column coefficient (transpose view),
                        // zero when the target row falls off-mesh.
                        let ri = gi as i64 + off.dx as i64;
                        let rj = gj as i64 + off.dy as i64;
                        let coef =
                            if ri < 0 || rj < 0 || ri >= mesh.nx as i64 || rj >= mesh.ny as i64 {
                                0.0
                            } else {
                                let mirror = Offset3::new(-off.dx, -off.dy, 0);
                                rnd(dt, a.coeff(ri as usize, rj as usize, 0, mirror))
                            };
                        let vv = rnd(dt, v[mesh.idx(gi, gj, 0)]);
                        let di = (i as i64 + r as i64 + off.dx as i64) as usize;
                        let dj = (j as i64 + r as i64 + off.dy as i64) as usize;
                        e[eidx(di, dj)] = fma(dt, coef, vv, e[eidx(di, dj)]);
                    }
                }
            }
        }
    }

    // Round 1: x wings, full height. My interior columns [bx, bx+r) gain
    // the east neighbor's west wing [0, r); my columns [r, 2r) gain the
    // west neighbor's east wing [bx+r, bx+2r).
    let snap = ext.clone();
    for ty in 0..h {
        for tx in 0..w {
            let e = &mut ext[tidx(tx, ty)];
            if tx + 1 < w {
                let nb = &snap[tidx(tx + 1, ty)];
                for c in 0..r {
                    for j in 0..eh {
                        e[eidx(bx + c, j)] = add(dt, e[eidx(bx + c, j)], nb[eidx(c, j)]);
                    }
                }
            }
            if tx > 0 {
                let nb = &snap[tidx(tx - 1, ty)];
                for c in 0..r {
                    for j in 0..eh {
                        e[eidx(r + c, j)] = add(dt, e[eidx(r + c, j)], nb[eidx(bx + r + c, j)]);
                    }
                }
            }
        }
    }

    // Round 2: y rows, interior width, on post-x values. My rows
    // [by, by+r) gain the south neighbor's rows [0, r); my rows [r, 2r)
    // gain the north neighbor's rows [by+r, by+2r).
    let snap = ext.clone();
    for ty in 0..h {
        for tx in 0..w {
            let e = &mut ext[tidx(tx, ty)];
            if ty + 1 < h {
                let nb = &snap[tidx(tx, ty + 1)];
                for k in 0..r {
                    for i in r..r + bx {
                        e[eidx(i, by + k)] = add(dt, e[eidx(i, by + k)], nb[eidx(i, k)]);
                    }
                }
            }
            if ty > 0 {
                let nb = &snap[tidx(tx, ty - 1)];
                for k in 0..r {
                    for i in r..r + bx {
                        e[eidx(i, r + k)] = add(dt, e[eidx(i, r + k)], nb[eidx(i, by + r + k)]);
                    }
                }
            }
        }
    }

    // Gather interiors.
    let mut out = vec![0.0; mesh.len()];
    for ty in 0..h {
        for tx in 0..w {
            let e = &ext[tidx(tx, ty)];
            for i in 0..bx {
                for j in 0..by {
                    out[mesh.idx(tx * bx + i, ty * by + j, 0)] = e[eidx(i + r, j + r)];
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_like_each_dtype() {
        // fp16: 1 + 2^-12 rounds away; fp32 keeps it.
        let tiny = (2.0f64).powi(-12);
        assert_eq!(add(Dtype::F16, 1.0, tiny), 1.0);
        assert_eq!(add(Dtype::F32, 1.0, tiny), 1.0 + tiny);
        // The fused form rounds once: fma16(a, b, c) differs from
        // mul-then-add when the product needs the extra bits.
        let a = 1.0 + (2.0f64).powi(-10);
        let fused = fma(Dtype::F16, a, a, 1.0);
        let unfused = add(Dtype::F16, mul(Dtype::F16, a, a), 1.0);
        assert!(fused.is_finite() && unfused.is_finite());
    }
}
