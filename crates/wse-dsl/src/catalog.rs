//! Named, checked-in stencil operators defined **purely as DSL data** — no
//! builder code anywhere. These are the demonstration operators of the DSL
//! (the 9-point box and the 25-point star of Jacquelin et al.) plus the
//! classic Laplacians, and they double as the service-cacheable tenant set:
//! `wse-serve` keys compiled programs by catalog name + spec fingerprint.
//!
//! All catalog weights are small powers of two so that fp16 materialization
//! is exact (`F16::from_f64` rounds once and these values round to
//! themselves), which keeps host/device cross-checks bit-for-bit even at
//! half precision.

use crate::ir::{Boundary, Precision, StencilSpec, Tap};

/// The catalog, in a stable order.
pub const NAMES: [&str; 5] = ["star5-2d", "box9-2d", "star9-2d", "star7-3d", "star25-3d"];

/// Looks up a catalog operator by name.
pub fn get(name: &str) -> Option<StencilSpec> {
    let spec = match name {
        // 5-point 2D Laplacian: center 1, edge neighbors −1/4.
        "star5-2d" => StencilSpec::new(
            name,
            vec![
                Tap::constant(0, 0, 0, 1.0),
                Tap::constant(1, 0, 0, -0.25),
                Tap::constant(-1, 0, 0, -0.25),
                Tap::constant(0, 1, 0, -0.25),
                Tap::constant(0, -1, 0, -0.25),
            ],
            Precision::F16,
            Boundary::Dirichlet0,
        ),
        // 9-point 2D box: center 1, all eight neighbors −1/8.
        "box9-2d" => {
            let mut taps = vec![Tap::constant(0, 0, 0, 1.0)];
            for dx in -1..=1i32 {
                for dy in -1..=1i32 {
                    if (dx, dy) != (0, 0) {
                        taps.push(Tap::constant(dx, dy, 0, -0.125));
                    }
                }
            }
            StencilSpec::new(name, taps, Precision::F16, Boundary::Dirichlet0)
        }
        // 9-point 2D star (radius 2): fourth-order Laplacian flavor with
        // power-of-two weights.
        "star9-2d" => {
            let mut taps = vec![Tap::constant(0, 0, 0, 1.0)];
            for (d, c) in [(1i32, -0.25), (2, 0.0625)] {
                taps.push(Tap::constant(d, 0, 0, c));
                taps.push(Tap::constant(-d, 0, 0, c));
                taps.push(Tap::constant(0, d, 0, c));
                taps.push(Tap::constant(0, -d, 0, c));
            }
            StencilSpec::new(name, taps, Precision::F16, Boundary::Dirichlet0)
        }
        // 7-point 3D star: center 1 (unit diagonal — eligible for the
        // Listing-1 Z-column mapping), six face neighbors −1/8.
        "star7-3d" => {
            let mut taps = vec![Tap::constant(0, 0, 0, 1.0)];
            for (dx, dy, dz) in
                [(1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0), (0, 0, 1), (0, 0, -1)]
            {
                taps.push(Tap::constant(dx, dy, dz, -0.125));
            }
            StencilSpec::new(name, taps, Precision::F16, Boundary::Dirichlet0)
        }
        // 25-point 3D star (radius 4 on every axis), the shape Jacquelin
        // et al. map on the WSE: center 1, per-distance axis weights.
        "star25-3d" => {
            let mut taps = vec![Tap::constant(0, 0, 0, 1.0)];
            for (d, c) in [(1i32, -0.25), (2, 0.125), (3, -0.0625), (4, 0.03125)] {
                for (dx, dy, dz) in [(d, 0, 0), (0, d, 0), (0, 0, d)] {
                    taps.push(Tap::constant(dx, dy, dz, c));
                    taps.push(Tap::constant(-dx, -dy, -dz, c));
                }
            }
            StencilSpec::new(name, taps, Precision::F16, Boundary::Dirichlet0)
        }
        _ => return None,
    };
    Some(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_catalog_operator_validates() {
        for name in NAMES {
            let spec = get(name).unwrap();
            spec.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(spec.all_const(), "{name} must be pure data");
        }
        assert!(get("no-such-operator").is_none());
    }

    #[test]
    fn tap_counts_match_names() {
        for (name, n) in
            [("star5-2d", 5), ("box9-2d", 9), ("star9-2d", 9), ("star7-3d", 7), ("star25-3d", 25)]
        {
            assert_eq!(get(name).unwrap().taps.len(), n, "{name}");
        }
    }

    #[test]
    fn catalog_weights_are_fp16_exact() {
        for name in NAMES {
            for t in get(name).unwrap().taps {
                if let crate::ir::CoefKind::Const(c) = t.coef {
                    let roundtrip = wse_float::F16::from_f64(c).to_f64();
                    assert_eq!(roundtrip, c, "{name}: {c} not fp16-exact");
                }
            }
        }
    }

    #[test]
    fn star25_radius_and_shape() {
        let s = get("star25-3d").unwrap();
        assert!(s.is_star());
        assert_eq!(s.radius(), (4, 4, 4));
        let s9 = get("star9-2d").unwrap();
        assert!(s9.is_2d());
        assert_eq!(s9.radius(), (2, 2, 0));
    }
}
