//! The whole-wafer virtual-channel (color) map.
//!
//! Every kernel family used to declare its own color constants, with the
//! aliasing rules documented in scattered doc comments (the `spmv2d` halo
//! colors vs the `allreduce` chain-reduce colors, the multi-wafer seam
//! colors, ...). This module is now the single source of truth: the
//! lowering layer and every `wse-core` façade consume these constants, so
//! an accidental collision becomes a one-file review instead of a
//! cross-crate archaeology session.
//!
//! Allocation map (24 colors, [`wse_arch::types::NUM_COLORS`]):
//!
//! | range  | user                                                        |
//! |--------|-------------------------------------------------------------|
//! | 0..5   | SpMV tessellation broadcast ([`crate::tess`], Fig. 5)       |
//! | 6..10  | DSL relay rounds for wide 3D stars ([`crate::relay`])       |
//! | 10..16 | scalar AllReduce tree (base 10, span 6)                     |
//! | 16..22 | 2D block halo exchange (x pair + per-ring y pairs, r ≤ 2)   |
//! | 16..19 | chain-reduce vector AllReduce — **documented alias** of the |
//! |        | block halo colors: the two programs are never co-resident   |
//! | 22..24 | multi-wafer seam halo                                       |

/// Number of colors the SpMV tessellation consumes.
pub const SPMV_COLORS: u8 = 5;

/// First color of the SpMV tessellation (0..5); everything else sits above.
pub const SPMV_COLOR_BASE: u8 = 0;

/// Eastward relay round for wide 3D stars ([`crate::relay`]).
pub const RELAY_E: u8 = 6;
/// Westward relay round.
pub const RELAY_W: u8 = 7;
/// Southward relay round.
pub const RELAY_S: u8 = 8;
/// Northward relay round.
pub const RELAY_N: u8 = 9;

/// Default base color of the scalar AllReduce tree (span
/// [`ALLREDUCE_SPAN`]), clear of the tessellation and the relay block.
pub const ALLREDUCE_BASE: u8 = 10;
/// Colors one scalar AllReduce instance consumes.
pub const ALLREDUCE_SPAN: u8 = 6;

/// Eastward halo strips of the 2D block mapping.
pub const HALO_E: u8 = 16;
/// Westward halo strips.
pub const HALO_W: u8 = 17;
/// Southward halo strips (ring 0; see [`halo_s`]).
pub const HALO_S: u8 = 18;
/// Northward halo strips (ring 0; see [`halo_n`]).
pub const HALO_N: u8 = 19;

/// Southward halo color of ring `k` (`k < r`): the y-round of a radius-`r`
/// block exchange streams each of the `r` halo rows on its own color pair,
/// `(18 + 2k, 19 + 2k)`. Ring 0 is the classic [`HALO_S`]/[`HALO_N`] pair;
/// radius 2 additionally uses 20/21. Radius 3 would collide with the
/// multi-wafer seam colors, which is one of the two reasons the block
/// mapping caps the radius at 2 (the other is background-thread slots).
pub const fn halo_s(k: usize) -> u8 {
    HALO_S + 2 * k as u8
}

/// Northward halo color of ring `k` (`k < r`); see [`halo_s`].
pub const fn halo_n(k: usize) -> u8 {
    HALO_N + 2 * k as u8
}

/// Westward row chains of the vector chain-reduce AllReduce. Aliases
/// [`HALO_E`]: a 2-D block program and a chain-reduce program are never
/// resident on the same fabric, and routes are per-tile.
pub const CHAIN_ROW: u8 = 16;
/// Northward column chain (aliases [`HALO_W`], same argument).
pub const CHAIN_COL: u8 = 17;
/// Chain-reduce result broadcast (aliases [`HALO_S`]).
pub const CHAIN_BC: u8 = 18;

/// Virtual channel carrying halo planes eastward across wafer seams.
/// Disjoint from every on-wafer program above.
pub const SEAM_EAST: u8 = 22;
/// Virtual channel carrying halo planes westward across wafer seams.
pub const SEAM_WEST: u8 = 23;

#[cfg(test)]
mod tests {
    use super::*;
    use wse_arch::types::NUM_COLORS;

    #[test]
    fn ranges_are_disjoint_except_documented_aliases() {
        // Tessellation, relay, allreduce tree, block halo, seam: pairwise
        // disjoint. Chain colors alias the block halo by design.
        let tess: Vec<u8> = (SPMV_COLOR_BASE..SPMV_COLOR_BASE + SPMV_COLORS).collect();
        let relay = [RELAY_E, RELAY_W, RELAY_S, RELAY_N];
        let tree: Vec<u8> = (ALLREDUCE_BASE..ALLREDUCE_BASE + ALLREDUCE_SPAN).collect();
        let halo: Vec<u8> =
            (0..2).flat_map(|k| [halo_s(k), halo_n(k)]).chain([HALO_E, HALO_W]).collect();
        let seam = [SEAM_EAST, SEAM_WEST];
        let families: [&[u8]; 5] = [&tess, &relay, &tree, &halo, &seam];
        for (i, a) in families.iter().enumerate() {
            for b in families.iter().skip(i + 1) {
                for c in a.iter() {
                    assert!(!b.contains(c), "color {c} shared between disjoint families");
                }
            }
        }
        for fam in families {
            for &c in fam {
                assert!((c as usize) < NUM_COLORS, "color {c} out of range");
            }
        }
        // The documented alias.
        assert_eq!(CHAIN_ROW, HALO_E);
        assert_eq!(CHAIN_COL, HALO_W);
        assert_eq!(CHAIN_BC, HALO_S);
    }

    #[test]
    fn radius_two_halo_stays_clear_of_the_seam() {
        assert!(halo_n(1) < SEAM_EAST);
    }
}
