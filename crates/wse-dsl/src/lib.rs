//! Declarative stencil front-end and the shared lowering layer.
//!
//! The hand-written builders in `wse-core` each re-derived routing, virtual
//! channel (color) assignment, SRAM layout, and task wiring from scratch.
//! This crate factors that machinery into one place:
//!
//! * [`ir`] — the stencil IR: a named set of taps (relative mesh offsets
//!   with constant or per-cell-variable coefficients), a precision, and a
//!   boundary condition. Operators are **data**, not builder code.
//! * [`colors`] — the single whole-wafer virtual-channel map every emitter
//!   consumes (previously duplicated across `spmv2d`/`spmv3d`/`allreduce`).
//! * [`plan`] — validation and resource planning: structured
//!   [`ir::DslError`]s for illegal specs (offset beyond the routable
//!   radius, SRAM over the 48 KB budget) **before any fabric is touched**.
//! * [`tess`] — the Fig. 5 tessellation channel assignment (moved from
//!   `wse-core::routing`).
//! * [`block2d`] — the generalized radius-`r` 2D block mapping with
//!   output-halo exchange; at radius 1 it emits byte-identical programs to
//!   the original hand-written `spmv2d` builder.
//! * [`zcolumn`] — the Listing-1 Z-column dataflow (moved from
//!   `wse-core::spmv3d`).
//! * [`relay`] — store-and-forward relay rounds for wide 3D star stencils
//!   (e.g. the 25-point star of Jacquelin et al.) using only four colors.
//! * [`lower`] — the dispatch from spec + mesh to one of the three
//!   mappings, producing a [`lower::Lowered`] program handle.
//! * [`host`] — order-mirroring host reference applies (bit-exact per
//!   datapath dtype).
//!
//! `wse-core`'s `spmv2d`/`spmv3d`/`routing` modules are now façades over
//! this crate, so every existing call site is served by the lowering layer.

#![warn(missing_docs)]

pub mod block2d;
pub mod catalog;
pub mod colors;
pub mod host;
pub mod ir;
pub mod lower;
pub mod plan;
pub mod relay;
pub mod tess;
pub mod zcolumn;

pub use ir::{Boundary, CoefKind, DslError, Precision, StencilSpec, Tap};
pub use lower::{lower, lower_spec, Lowered};
pub use plan::{plan, Plan};

/// Statically verifies a fully built wafer program in debug builds,
/// panicking with the diagnostic report on any finding (the same invariant
/// `wse-core::debug_lint` enforces for the hand-written drivers). Release
/// builds skip the check.
pub(crate) fn debug_lint(fabric: &wse_arch::Fabric) {
    #[cfg(debug_assertions)]
    wse_lint::assert_clean(fabric);
    #[cfg(not(debug_assertions))]
    let _ = fabric;
}
