//! Validation and resource planning: spec + mesh + geometry → a concrete
//! mapping choice, with every illegal input rejected as a structured
//! [`DslError`] **before any fabric is touched**.
//!
//! Three mappings exist:
//!
//! * **Block** — the 2D block mapping of the 9-point section: each tile owns
//!   a `bx × by` block, computes into an output buffer with a radius-`r`
//!   ghost ring, and exchanges output halos (x wings first, then y rows).
//!   Radius ≤ [`BLOCK_MAX_RADIUS`]: ring colors beyond 2 would collide with
//!   the multi-wafer seam channels, and the x/y exchange rounds would need
//!   more background-thread slots than a core has.
//! * **Listing1** — the paper's Z-column 7-point dataflow (one mesh column
//!   per tile, neighbor columns streamed through hardware FIFOs). Only the
//!   unit-diagonal 7-point fp16 shape is eligible; the final choice also
//!   needs the matrix (unit diagonal), so [`crate::lower`] decides.
//! * **Relay** — store-and-forward rounds for wide 3D stars (Jacquelin et
//!   al.'s 25-point star): round `d` forwards the columns received in round
//!   `d − 1`, so four colors serve any radius ≤ [`ROUTABLE_RADIUS`].

use stencil::decomp::Block2D;
use stencil::mesh::Mesh3D;
use wse_arch::memory::TILE_SRAM_BYTES;
use wse_arch::types::Dtype;

use crate::ir::{Boundary, CoefKind, DslError, Precision, StencilSpec};

/// Maximum halo radius of the 2D block mapping (see module docs).
pub const BLOCK_MAX_RADIUS: usize = 2;

/// Maximum per-axis fabric radius of the relay mapping: round `d` relays
/// what round `d − 1` delivered, so the limit is background-thread slots
/// and buffer SRAM, not colors. Four covers the 25-point star.
pub const ROUTABLE_RADIUS: usize = 4;

/// First core register the relay compute task may bind a constant
/// coefficient to (lower registers are reserved for solver scalars).
pub const CONST_REG_BASE: usize = 8;

/// Number of registers available for constant coefficients.
pub const CONST_REG_SPAN: usize = 16;

/// Where and how a spec runs on the fabric.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MappingPlan {
    /// 2D block mapping on a `w × h` tile region.
    Block {
        /// Tiles along x.
        w: usize,
        /// Tiles along y.
        h: usize,
        /// Per-tile block extents.
        block: Block2D,
        /// Halo radius.
        r: usize,
    },
    /// The paper's Listing-1 Z-column dataflow.
    Listing1 {
        /// Tiles along x (= mesh nx).
        w: usize,
        /// Tiles along y (= mesh ny).
        h: usize,
        /// Z points per tile.
        z: usize,
    },
    /// Store-and-forward relay rounds for wide 3D stars.
    Relay {
        /// Tiles along x.
        w: usize,
        /// Tiles along y.
        h: usize,
        /// Z points per tile.
        z: usize,
        /// Fabric radius along x.
        rx: usize,
        /// Fabric radius along y.
        ry: usize,
        /// In-core radius along z.
        rz: usize,
        /// Relay rounds (`max(rx, ry)`).
        rounds: usize,
    },
}

/// The validated lowering plan for one spec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Plan {
    /// The selected mapping.
    pub mapping: MappingPlan,
    /// Element type of the datapath.
    pub dtype: Dtype,
    /// Worst-tile SRAM bytes the lowered program will allocate.
    pub sram_need: u32,
    /// The spec fingerprint (cache key material).
    pub fingerprint: u64,
}

/// The fabric region a spec is lowered onto.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Geometry {
    /// Tiles available along x.
    pub fabric_w: usize,
    /// Tiles available along y.
    pub fabric_h: usize,
    /// Per-tile block extents — required by (and only meaningful for) the
    /// 2D block mapping.
    pub block: Option<Block2D>,
}

/// Bump-allocator footprint of one `len`-element vector (2-byte aligned).
fn vec_bytes(len: usize, dtype: Dtype) -> u32 {
    let nbytes = len as u32 * dtype.bytes();
    (nbytes + 1) & !1
}

fn element_size(p: Precision) -> Dtype {
    p.dtype()
}

/// Worst-tile SRAM for the 2D block mapping: `ntaps` coefficient arrays and
/// the iterate (`bx·by` each) plus the extended output buffer.
fn block_sram(ntaps: usize, block: Block2D, r: usize, dtype: Dtype) -> u32 {
    let n = block.bx * block.by;
    let ext = (block.bx + 2 * r) * (block.by + 2 * r);
    (ntaps as u32) * vec_bytes(n, dtype) + vec_bytes(n, dtype) + vec_bytes(ext, dtype)
}

/// Worst-tile SRAM for the Listing-1 dataflow: six off-diagonal coefficient
/// columns, the padded iterate, the result, and up to four neighbor FIFOs.
fn listing1_sram(z: usize, dtype: Dtype) -> u32 {
    6 * vec_bytes(z, dtype)
        + vec_bytes(z + 2, dtype)
        + vec_bytes(z, dtype)
        + 4 * vec_bytes(crate::zcolumn::FIFO_DEPTH as usize, dtype)
}

/// Worst-tile SRAM for the relay mapping: optional per-tap coefficient
/// columns, the z-padded iterate, the result, and one column buffer per
/// (direction, distance) pair.
fn relay_sram(spec: &StencilSpec, z: usize, rx: usize, ry: usize, rz: usize, dtype: Dtype) -> u32 {
    let coef = if relay_uses_registers(spec) { 0 } else { spec.taps.len() as u32 };
    coef * vec_bytes(z, dtype)
        + vec_bytes(z + 2 * rz, dtype)
        + vec_bytes(z, dtype)
        + 2 * ((rx + ry) as u32) * vec_bytes(z, dtype)
}

/// `true` when the relay compute task can bind coefficients to registers:
/// every tap constant and the boundary plain Dirichlet-zero (a mirror
/// boundary folds ghost weights per-cell, which needs coefficient vectors).
pub(crate) fn relay_uses_registers(spec: &StencilSpec) -> bool {
    spec.all_const() && spec.boundary == Boundary::Dirichlet0
}

/// Distinct constant coefficients, compared by their f32 register image.
pub(crate) fn distinct_consts(spec: &StencilSpec) -> Vec<f32> {
    let mut seen: Vec<f32> = Vec::new();
    for t in &spec.taps {
        if let CoefKind::Const(c) = t.coef {
            let c32 = c as f32;
            if !seen.iter().any(|s| s.to_bits() == c32.to_bits()) {
                seen.push(c32);
            }
        }
    }
    seen
}

/// `true` when the spec's offset set is exactly the 7-point star — the
/// shape eligible for the Listing-1 dataflow (the final choice also checks
/// the matrix's unit diagonal in [`crate::lower`]).
pub fn listing1_eligible(spec: &StencilSpec) -> bool {
    use stencil::dia::Offset3;
    if spec.precision != Precision::F16 || spec.boundary != Boundary::Dirichlet0 {
        return false;
    }
    let seven = Offset3::seven_point();
    spec.taps.len() == seven.len() && seven.iter().all(|o| spec.taps.iter().any(|t| t.off == *o))
}

/// Validates `spec` against `mesh` and `geometry` and selects a mapping.
///
/// Errors are structured and complete: the first failed check is returned,
/// and no fabric, memory, or task state exists yet at that point.
pub fn plan(spec: &StencilSpec, mesh: Mesh3D, geometry: Geometry) -> Result<Plan, DslError> {
    spec.validate()?;
    let dtype = element_size(spec.precision);
    let (rx, ry, rz) = spec.radius();
    let fingerprint = spec.fingerprint();

    if mesh.nz == 1 {
        // 2D problem → block mapping.
        if !spec.is_2d() {
            return Err(DslError::MeshMismatch(
                "spec has z taps but the mesh is a single plane".into(),
            ));
        }
        let block = geometry.block.ok_or_else(|| {
            DslError::MeshMismatch("2D block mapping requires a block size".into())
        })?;
        let r = rx.max(ry);
        if r > BLOCK_MAX_RADIUS {
            let off = spec
                .taps
                .iter()
                .map(|t| t.off)
                .find(|o| {
                    o.dx.unsigned_abs() as usize > BLOCK_MAX_RADIUS
                        || o.dy.unsigned_abs() as usize > BLOCK_MAX_RADIUS
                })
                .expect("some tap exceeds the radius");
            return Err(DslError::RadiusOverflow { off, max: BLOCK_MAX_RADIUS });
        }
        if !mesh.nx.is_multiple_of(block.bx) || !mesh.ny.is_multiple_of(block.by) {
            return Err(DslError::MeshMismatch(format!(
                "mesh {}x{} does not tile evenly into {}x{} blocks",
                mesh.nx, mesh.ny, block.bx, block.by
            )));
        }
        let (w, h) = (mesh.nx / block.bx, mesh.ny / block.by);
        if w > geometry.fabric_w || h > geometry.fabric_h {
            return Err(DslError::FabricTooSmall {
                need: (w, h),
                have: (geometry.fabric_w, geometry.fabric_h),
            });
        }
        if (w > 1 && block.bx < 2 * r) || (h > 1 && block.by < 2 * r) {
            return Err(DslError::BlockTooSmall { need: 2 * r, got: (block.bx, block.by) });
        }
        let sram_need = block_sram(spec.taps.len(), block, r, dtype);
        if sram_need > TILE_SRAM_BYTES {
            return Err(DslError::SramOverflow { need: sram_need, budget: TILE_SRAM_BYTES });
        }
        return Ok(Plan {
            mapping: MappingPlan::Block { w, h, block, r },
            dtype,
            sram_need,
            fingerprint,
        });
    }

    // 3D problem → Z-column mappings (Listing 1 or relay).
    if let Some(t) = spec
        .taps
        .iter()
        .find(|t| [t.off.dx, t.off.dy, t.off.dz].iter().filter(|&&c| c != 0).count() > 1)
    {
        return Err(DslError::NotAStar(t.off));
    }
    if rx > ROUTABLE_RADIUS || ry > ROUTABLE_RADIUS {
        let off = spec
            .taps
            .iter()
            .map(|t| t.off)
            .find(|o| {
                o.dx.unsigned_abs() as usize > ROUTABLE_RADIUS
                    || o.dy.unsigned_abs() as usize > ROUTABLE_RADIUS
            })
            .expect("some tap exceeds the radius");
        return Err(DslError::RadiusOverflow { off, max: ROUTABLE_RADIUS });
    }
    let (w, h, z) = (mesh.nx, mesh.ny, mesh.nz);
    if w > geometry.fabric_w || h > geometry.fabric_h {
        return Err(DslError::FabricTooSmall {
            need: (w, h),
            have: (geometry.fabric_w, geometry.fabric_h),
        });
    }
    if rz as i64 >= z as i64 && z > 1 {
        // A z tap reaching past a whole column would read the far pad as
        // zero mid-mesh; keep the contract simple and reject it.
        return Err(DslError::MeshMismatch(format!(
            "z radius {rz} must be smaller than the {z}-point column"
        )));
    }
    if relay_uses_registers(spec) {
        let distinct = distinct_consts(spec).len();
        if distinct > CONST_REG_SPAN {
            return Err(DslError::TooManyConstants { distinct, max: CONST_REG_SPAN });
        }
    }
    let relay_need = relay_sram(spec, z, rx, ry, rz, dtype);
    let sram_need =
        if listing1_eligible(spec) { relay_need.max(listing1_sram(z, dtype)) } else { relay_need };
    if sram_need > TILE_SRAM_BYTES {
        return Err(DslError::SramOverflow { need: sram_need, budget: TILE_SRAM_BYTES });
    }
    let rounds = rx.max(ry);
    Ok(Plan {
        mapping: MappingPlan::Relay { w, h, z, rx, ry, rz, rounds },
        dtype,
        sram_need,
        fingerprint,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn geo(w: usize, h: usize, block: Option<Block2D>) -> Geometry {
        Geometry { fabric_w: w, fabric_h: h, block }
    }

    #[test]
    fn nine_point_plans_onto_blocks() {
        let spec = StencilSpec::var_nine_point_2d();
        let p = plan(&spec, Mesh3D::new(8, 8, 1), geo(2, 2, Some(Block2D::new(4, 4)))).unwrap();
        assert_eq!(p.mapping, MappingPlan::Block { w: 2, h: 2, block: Block2D::new(4, 4), r: 1 });
    }

    #[test]
    fn star25_plans_onto_relay() {
        let spec = catalog::get("star25-3d").unwrap();
        let p = plan(&spec, Mesh3D::new(6, 5, 24), geo(8, 8, None)).unwrap();
        match p.mapping {
            MappingPlan::Relay { w: 6, h: 5, z: 24, rx: 4, ry: 4, rz: 4, rounds: 4 } => {}
            other => panic!("unexpected mapping {other:?}"),
        }
    }

    #[test]
    fn radius_overflow_is_structured() {
        let spec = StencilSpec::new(
            "wide",
            vec![crate::ir::Tap::constant(0, 0, 0, 1.0), crate::ir::Tap::constant(5, 0, 0, 1.0)],
            Precision::F16,
            Boundary::Dirichlet0,
        );
        let err = plan(&spec, Mesh3D::new(8, 8, 8), geo(16, 16, None)).unwrap_err();
        assert!(matches!(err, DslError::RadiusOverflow { max: ROUTABLE_RADIUS, .. }), "{err}");
    }

    #[test]
    fn sram_overflow_is_structured() {
        let spec = catalog::get("star7-3d").unwrap();
        let err = plan(&spec, Mesh3D::new(4, 4, 4096), geo(8, 8, None)).unwrap_err();
        match err {
            DslError::SramOverflow { need, budget } => {
                assert!(need > budget);
                assert_eq!(budget, TILE_SRAM_BYTES);
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn fabric_too_small_is_structured() {
        let spec = catalog::get("star7-3d").unwrap();
        let err = plan(&spec, Mesh3D::new(9, 9, 8), geo(8, 8, None)).unwrap_err();
        assert_eq!(err, DslError::FabricTooSmall { need: (9, 9), have: (8, 8) });
    }

    #[test]
    fn diagonal_3d_tap_is_not_a_star() {
        let spec = StencilSpec::new(
            "diag",
            vec![crate::ir::Tap::constant(0, 0, 0, 1.0), crate::ir::Tap::constant(1, 1, 1, 0.5)],
            Precision::F16,
            Boundary::Dirichlet0,
        );
        let err = plan(&spec, Mesh3D::new(4, 4, 4), geo(8, 8, None)).unwrap_err();
        assert!(matches!(err, DslError::NotAStar(_)));
    }

    #[test]
    fn block_too_small_for_radius_two() {
        let spec = catalog::get("star9-2d").unwrap();
        let err =
            plan(&spec, Mesh3D::new(6, 6, 1), geo(2, 2, Some(Block2D::new(3, 3)))).unwrap_err();
        assert_eq!(err, DslError::BlockTooSmall { need: 4, got: (3, 3) });
        // A single tile needs no halo at all, so tiny blocks are fine there.
        plan(&spec, Mesh3D::new(3, 3, 1), geo(1, 1, Some(Block2D::new(3, 3)))).unwrap();
    }

    #[test]
    fn listing1_shape_detection() {
        assert!(listing1_eligible(&catalog::get("star7-3d").unwrap()));
        assert!(listing1_eligible(&StencilSpec::var_seven_point_3d()));
        assert!(!listing1_eligible(&catalog::get("star25-3d").unwrap()));
    }
}
