//! The Listing-1 / Fig. 4 Z-column dataflow emitters, moved here from
//! `wse-core::spmv3d` so the lowering layer and the hand-written drivers
//! share one implementation.
//!
//! Per tile, the kernel computes `u = A v` for its Z-column of the mesh:
//!
//! * the local iterate `v` is **broadcast** on the tile's own color to its
//!   four neighbors and looped back to its own ramp,
//! * the result is **initialized** by the in-memory `zm` term
//!   (`u[z] = zm_a[z] · v[z−1]`, via a zero-padded copy of `v`),
//! * the `zp` term is accumulated from memory with the fused FMAC
//!   (`u[z] += zp_a[z] · v[z+1]`),
//! * four background threads multiply the **incoming neighbor streams** by
//!   the `xp/xm/yp/ym` coefficient vectors into four hardware FIFOs,
//! * a high-priority `sumtask`, activated by FIFO pushes, drains the FIFOs
//!   into the result through persistent accumulator DSRs,
//! * the unit main diagonal is handled by a thread that **adds the looped-
//!   back local stream directly** — "Because the diagonal is all ones there
//!   is no FIFO and no multiplication",
//! * a chain of two-way barriers (block/unblock/activate) detects completion
//!   and hands control back (the paper's `xdone/ydone/.../xycdone` tree).
//!
//! One deviation from Listing 1 is documented in DESIGN.md: the paper also
//! sources the `zp` term from the loopback to save memory bandwidth; this
//! model folds memory bandwidth into the datapath SIMD widths, so `zp` reads
//! the in-memory copy and the loopback feeds only the main-diagonal add.

use crate::tess::{incoming_colors, spmv_color};
use stencil::dia::{DiaMatrix, Offset3};
use wse_arch::dsr::mk;
use wse_arch::fifo::Fifo;
use wse_arch::instr::{Op, Stmt, Task, TaskAction, TensorInstr};
use wse_arch::types::{Color, Dtype, TaskId};
use wse_arch::Tile;
use wse_float::F16;

/// Depth of the intermediate-product FIFOs ("We used a FIFO depth of 20").
pub const FIFO_DEPTH: u32 = 20;

/// Background-thread slot the overlapped seam-halo send launches into (the
/// SpMV kernel itself occupies slots 0–3, 5 and 6).
pub const HALO_SEND_SLOT: u8 = 7;
/// Background-thread slot the overlapped seam-halo receive launches into.
pub const HALO_RECV_SLOT: u8 = 8;

/// Byte addresses of one tile's SpMV data.
#[derive(Copy, Clone, Debug)]
pub struct SpmvLayout {
    /// Local Z extent.
    pub z: u32,
    /// Coefficient vectors `[xp, xm, yp, ym, zp, zm]`, each `z` fp16 words.
    pub diag: [u32; 6],
    /// Zero-padded iterate: `z + 2` words, live data at `[1 ..= z]`.
    pub vpad: u32,
    /// Result vector `u`, `z` words.
    pub u: u32,
}

impl SpmvLayout {
    /// Allocates the layout in a tile's SRAM.
    ///
    /// # Panics
    /// Panics if the tile runs out of SRAM (the 48 KB budget is real).
    pub fn alloc(tile: &mut Tile, z: u32) -> SpmvLayout {
        let mut diag = [0u32; 6];
        for d in &mut diag {
            *d = tile.mem.alloc_vec(z, Dtype::F16).expect("SRAM for diagonals");
        }
        let vpad = tile.mem.alloc_vec(z + 2, Dtype::F16).expect("SRAM for vpad");
        let u = tile.mem.alloc_vec(z, Dtype::F16).expect("SRAM for u");
        SpmvLayout { z, diag, vpad, u }
    }

    /// Base address of the live (unpadded) part of `v`.
    pub fn v_live(&self) -> u32 {
        self.vpad + 2
    }
}

/// Task ids of one tile's SpMV program.
#[derive(Clone, Debug)]
pub struct SpmvTasks {
    /// The entry task; activate it to start one SpMV.
    pub start: TaskId,
    /// The final barrier; its body fires the continuation. Also activatable
    /// for tests.
    pub last_barrier: TaskId,
}

/// Which neighbors a tile has (edge tiles have fewer streams).
#[derive(Copy, Clone, Debug, Default)]
struct Neighbors {
    xp: bool,
    xm: bool,
    yp: bool,
    ym: bool,
}

/// SRAM halo buffers holding a **neighbor wafer's** boundary column of the
/// iterate (`z` fp16 words each). On a wafer-seam tile the ±x mesh
/// neighbor lives on another wafer: no broadcast stream arrives for it, so
/// an explicit halo-exchange phase fills these buffers over the host
/// interconnect before the SpMV runs, and the kernel folds each present
/// side in with one extra fused multiply-add from memory.
#[derive(Copy, Clone, Debug, Default)]
pub struct HaloBuffers {
    /// The +x neighbor's column (east seam), if this tile sits on one.
    pub xp: Option<u32>,
    /// The −x neighbor's column (west seam), if this tile sits on one.
    pub xm: Option<u32>,
}

/// Builds one tile's SpMV program. `continuation` (task, action) fires when
/// the SpMV completes.
///
/// The caller must have configured the tessellation routes
/// ([`crate::tess::configure_spmv_routes`]) and loaded coefficients via
/// [`load_coefficients`].
pub fn build_spmv_tile(
    tile: &mut Tile,
    x: usize,
    y: usize,
    region_w: usize,
    region_h: usize,
    layout: SpmvLayout,
    continuation: Option<(TaskId, TaskAction)>,
) -> SpmvTasks {
    build_spmv_tile_halo(
        tile,
        x,
        y,
        region_w,
        region_h,
        layout,
        HaloBuffers::default(),
        continuation,
    )
}

/// How a seam tile's ±x halo contribution enters the SpMV.
enum SeamFold {
    /// Fold each present halo buffer in with a synchronous fused
    /// multiply-add right after the z terms (the buffer was filled by a
    /// separate, serial halo phase).
    Sync(HaloBuffers),
    /// Interior-first: the named [`build_overlap_halo`] fold tasks carry
    /// the halo terms. The SpMV body only *unblocks* them once `u` is
    /// initialized; each fires when its receive also completes, so halo
    /// wire time hides behind the interior compute.
    Overlap(Vec<TaskId>),
}

/// [`build_spmv_tile`] with wafer-seam halo terms: for each `Some` halo
/// buffer, the kernel adds `u += a_x± · halo` as a synchronous fused
/// multiply-add right after the in-memory z terms. With both halos `None`
/// the built program is identical to [`build_spmv_tile`]'s.
#[allow(clippy::too_many_arguments)]
pub fn build_spmv_tile_halo(
    tile: &mut Tile,
    x: usize,
    y: usize,
    region_w: usize,
    region_h: usize,
    layout: SpmvLayout,
    halo: HaloBuffers,
    continuation: Option<(TaskId, TaskAction)>,
) -> SpmvTasks {
    build_spmv_tile_seam(tile, x, y, region_w, region_h, layout, SeamFold::Sync(halo), continuation)
}

/// [`build_spmv_tile`] in the **interior-first overlapped** schedule: the
/// interior compute starts immediately, and each task in `folds` (built
/// with [`build_overlap_halo`]) is unblocked right after `u` is
/// initialized by the z terms. With `folds` empty the built program is
/// identical to [`build_spmv_tile`]'s — interior tiles never pay for the
/// seam machinery.
#[allow(clippy::too_many_arguments)]
pub fn build_spmv_tile_overlapped(
    tile: &mut Tile,
    x: usize,
    y: usize,
    region_w: usize,
    region_h: usize,
    layout: SpmvLayout,
    folds: Vec<TaskId>,
    continuation: Option<(TaskId, TaskAction)>,
) -> SpmvTasks {
    build_spmv_tile_seam(
        tile,
        x,
        y,
        region_w,
        region_h,
        layout,
        SeamFold::Overlap(folds),
        continuation,
    )
}

#[allow(clippy::too_many_arguments)]
fn build_spmv_tile_seam(
    tile: &mut Tile,
    x: usize,
    y: usize,
    region_w: usize,
    region_h: usize,
    layout: SpmvLayout,
    seam: SeamFold,
    continuation: Option<(TaskId, TaskAction)>,
) -> SpmvTasks {
    let z = layout.z;
    let mine = spmv_color(x, y);
    let (cxp, cxm, cyp, cym) = incoming_colors(x, y);
    let nb = Neighbors { xp: x + 1 < region_w, xm: x > 0, yp: y + 1 < region_h, ym: y > 0 };

    let core = &mut tile.core;

    // --- DSRs over memory (coefficients, padded iterate, result). ---
    let d_send_src = core.add_dsr(mk::tensor16(layout.v_live(), z));
    let d_zm_a = core.add_dsr(mk::tensor16(layout.diag[5], z));
    let d_zm_b = core.add_dsr(mk::tensor16(layout.vpad, z)); // v[z-1]
    let d_zp_a = core.add_dsr(mk::tensor16(layout.diag[4], z));
    let d_zp_b = core.add_dsr(mk::tensor16(layout.vpad + 4, z)); // v[z+1]
    let d_u_init = core.add_dsr(mk::tensor16(layout.u, z));
    let d_u_zp = core.add_dsr(mk::tensor16(layout.u, z));
    let d_xp_a = core.add_dsr(mk::tensor16(layout.diag[0], z));
    let d_xm_a = core.add_dsr(mk::tensor16(layout.diag[1], z));
    let d_yp_a = core.add_dsr(mk::tensor16(layout.diag[2], z));
    let d_ym_a = core.add_dsr(mk::tensor16(layout.diag[3], z));

    // Fabric and accumulator DSRs are re-initialized at the top of each SpMV
    // invocation (their cursors are consumed by use).
    let d_tx = core.add_dsr(mk::tx16(mine, z));
    let d_c_rx = core.add_dsr(mk::rx16(mine, z));
    let d_c_acc = core.add_dsr(mk::acc16(layout.u, z));
    let d_xp_rx = core.add_dsr(mk::rx16(cxp, z));
    let d_xm_rx = core.add_dsr(mk::rx16(cxm, z));
    let d_yp_rx = core.add_dsr(mk::rx16(cyp, z));
    let d_ym_rx = core.add_dsr(mk::rx16(cym, z));
    let d_xp_acc = core.add_dsr(mk::acc16(layout.u, z));
    let d_xm_acc = core.add_dsr(mk::acc16(layout.u, z));
    let d_yp_acc = core.add_dsr(mk::acc16(layout.u, z));
    let d_ym_acc = core.add_dsr(mk::acc16(layout.u, z));

    // --- Completion chain. Participating threads: one per existing
    // neighbor, plus the loopback add and the send. ---
    let mut threads = 2; // c add + send
    for present in [nb.xp, nb.xm, nb.yp, nb.ym] {
        if present {
            threads += 1;
        }
    }
    // Chain tasks C1..C(threads-1): C1 triggered by (T1 Activate, T2
    // Unblock); each later Ci starts blocked, is activated by C(i-1)'s body
    // and unblocked by T(i+1)'s completion. The last body fires the
    // continuation.
    let nchain = threads - 1;
    let mut chain: Vec<TaskId> = Vec::with_capacity(nchain);
    for _ in 0..nchain {
        // Every barrier starts blocked: it needs both its Activate and its
        // Unblock trigger before it may run (the paper's two-way barriers).
        chain.push(core.add_task(Task::new("spmv-barrier", vec![]).blocked()));
    }
    // Fill chain bodies. Like the paper's tree ("task xdone { block(xdone),
    // unblock(xydone) }"), each barrier RE-BLOCKS ITSELF first so it is
    // armed again for the next SpMV invocation.
    for i in 0..nchain {
        let mut body = vec![Stmt::TaskCtl { task: chain[i], action: TaskAction::Block }];
        if i + 1 < nchain {
            body.push(Stmt::TaskCtl { task: chain[i + 1], action: TaskAction::Activate });
        } else if let Some((task, action)) = continuation {
            body.push(Stmt::TaskCtl { task, action });
        }
        core.set_task_body(chain[i], body);
    }
    // Trigger assignment: thread k (0-based) → k == 0: Activate C1;
    // k == 1: Unblock C1; k >= 2: Unblock C(k-1).
    let trigger = |k: usize| -> (TaskId, TaskAction) {
        match k {
            0 => (chain[0], TaskAction::Activate),
            1 => (chain[0], TaskAction::Unblock),
            k => (chain[k - 1], TaskAction::Unblock),
        }
    };

    // --- FIFOs + sumtask. ---
    // sumtask is created first (empty) so FIFOs can reference it; its body
    // is filled once FIFO DSR ids exist. A tile with no neighbors (1x1
    // fabric) has no FIFOs and therefore no sumtask at all.
    let present = [nb.xp, nb.xm, nb.yp, nb.ym];
    let sumtask =
        present.iter().any(|&p| p).then(|| core.add_task(Task::new("sumtask", vec![]).priority(3)));
    let mut fifo_dsrs = Vec::new();
    let mut sum_body = Vec::new();
    let accs = [d_xp_acc, d_xm_acc, d_yp_acc, d_ym_acc];
    for i in 0..4 {
        if !present[i] {
            fifo_dsrs.push(None);
            continue;
        }
        let base = tile.mem.alloc_vec(FIFO_DEPTH, Dtype::F16).expect("SRAM for fifo");
        let fid = core.add_fifo(Fifo::new(base, FIFO_DEPTH, Dtype::F16, sumtask));
        let dsr = core.add_dsr(mk::fifo(fid));
        fifo_dsrs.push(Some(dsr));
        sum_body.push(Stmt::Exec(TensorInstr {
            op: Op::AddAssign,
            dst: Some(accs[i]),
            a: Some(dsr),
            b: None,
        }));
    }
    if let Some(sumtask) = sumtask {
        core.set_task_body(sumtask, sum_body);
    }

    // --- The spmv entry task. ---
    let mut body = vec![
        // Re-arm the one-shot fabric descriptors and accumulators.
        Stmt::InitDsr { dsr: d_tx, desc: mk::tx16(mine, z) },
        Stmt::InitDsr { dsr: d_c_rx, desc: mk::rx16(mine, z) },
        Stmt::InitDsr { dsr: d_c_acc, desc: mk::acc16(layout.u, z) },
    ];
    let rxs = [d_xp_rx, d_xm_rx, d_yp_rx, d_ym_rx];
    let colors = [cxp, cxm, cyp, cym];
    for i in 0..4 {
        if present[i] {
            body.push(Stmt::InitDsr { dsr: rxs[i], desc: mk::rx16(colors[i], z) });
            body.push(Stmt::InitDsr { dsr: accs[i], desc: mk::acc16(layout.u, z) });
        }
    }

    let mut thread_no = 0;
    // Send local vector to neighbors + loopback.
    body.push(Stmt::Launch {
        slot: 5,
        instr: TensorInstr { op: Op::Copy, dst: Some(d_tx), a: Some(d_send_src), b: None },
        on_complete: Some(trigger(thread_no)),
    });
    thread_no += 1;

    // Initialize u with the zm term, then accumulate zp — both synchronous.
    body.push(Stmt::Exec(TensorInstr {
        op: Op::Mul,
        dst: Some(d_u_init),
        a: Some(d_zm_a),
        b: Some(d_zm_b),
    }));
    body.push(Stmt::Exec(TensorInstr {
        op: Op::FmaAssign,
        dst: Some(d_u_zp),
        a: Some(d_zp_a),
        b: Some(d_zp_b),
    }));

    // Wafer-seam halo terms. Serial schedule: the ±x neighbor's column
    // arrived by host interconnect into SRAM before this phase, so it is
    // folded in from memory like the z terms (no fabric stream exists for
    // it). Overlapped schedule: `u` is now initialized, so release the
    // fold barriers — each fires as soon as its background receive also
    // lands, concurrently with the product threads below (the fold is an
    // accumulate-class FMA, so it commutes with the FIFO drains).
    match &seam {
        SeamFold::Sync(halo) => {
            for (buf, coeff) in [(halo.xp, layout.diag[0]), (halo.xm, layout.diag[1])] {
                if let Some(base) = buf {
                    let d_a = core.add_dsr(mk::tensor16(coeff, z));
                    let d_b = core.add_dsr(mk::tensor16(base, z));
                    let d_u = core.add_dsr(mk::tensor16(layout.u, z));
                    body.push(Stmt::Exec(TensorInstr {
                        op: Op::FmaAssign,
                        dst: Some(d_u),
                        a: Some(d_a),
                        b: Some(d_b),
                    }));
                }
            }
        }
        SeamFold::Overlap(folds) => {
            for &fold in folds {
                body.push(Stmt::TaskCtl { task: fold, action: TaskAction::Unblock });
            }
        }
    }

    // Neighbor product threads into FIFOs.
    let diags = [d_xp_a, d_xm_a, d_yp_a, d_ym_a];
    for i in 0..4 {
        if !present[i] {
            continue;
        }
        body.push(Stmt::Launch {
            slot: i as u8,
            instr: TensorInstr {
                op: Op::Mul,
                dst: Some(fifo_dsrs[i].unwrap()),
                a: Some(rxs[i]),
                b: Some(diags[i]),
            },
            on_complete: Some(trigger(thread_no)),
        });
        thread_no += 1;
    }

    // Main-diagonal add from the loopback (no FIFO, no multiply).
    body.push(Stmt::Launch {
        slot: 6,
        instr: TensorInstr { op: Op::AddAssign, dst: Some(d_c_acc), a: Some(d_c_rx), b: None },
        on_complete: Some(trigger(thread_no)),
    });

    let start = core.add_task(Task::new("spmv", body));
    core.mark_entry(start);
    SpmvTasks { start, last_barrier: *chain.last().unwrap() }
}

/// Task ids of one seam tile's overlapped halo machinery for one SpMV
/// flavor (one iterate vector). The driver activates `send` and `recv`
/// together with the SpMV entry task, in the same phase.
#[derive(Copy, Clone, Debug)]
pub struct OverlapHalo {
    /// Launches the boundary column outbound on a background thread and
    /// retires immediately — the main thread is free for interior compute.
    pub send: TaskId,
    /// Launches the background receive of the neighbor wafer's column into
    /// the halo buffer; its completion `Activate`s `fold`.
    pub recv: TaskId,
    /// Two-way barrier folding `u += coeff · halo`: `Activate`d by the
    /// receive landing, `Unblock`ed by the SpMV body once `u` is
    /// initialized. Re-blocks itself first, so it is armed again for the
    /// next invocation.
    pub fold: TaskId,
}

/// Builds the interior-first halo exchange for one seam side of one tile:
/// a launch-and-retire send of `src_live`, a background receive into
/// `buf`, and the fold task adding `coeff · buf` into `u`. Pass the fold
/// id to [`build_spmv_tile_overlapped`] so the SpMV releases it at the
/// right time.
#[allow(clippy::too_many_arguments)]
pub fn build_overlap_halo(
    tile: &mut Tile,
    src_live: u32,
    buf: u32,
    coeff: u32,
    u: u32,
    send_color: Color,
    recv_color: Color,
    z: u32,
) -> OverlapHalo {
    let core = &mut tile.core;
    let d_src = core.add_dsr(mk::tensor16(src_live, z));
    let d_tx = core.add_dsr(mk::tx16(send_color, z));
    let d_rx = core.add_dsr(mk::rx16(recv_color, z));
    let d_buf_w = core.add_dsr(mk::tensor16(buf, z));
    let d_buf_r = core.add_dsr(mk::tensor16(buf, z));
    let d_coeff = core.add_dsr(mk::tensor16(coeff, z));
    let d_u = core.add_dsr(mk::tensor16(u, z));

    let fold = core.add_task(Task::new("halo-fold", vec![]).blocked());
    core.set_task_body(
        fold,
        vec![
            Stmt::TaskCtl { task: fold, action: TaskAction::Block },
            Stmt::Exec(TensorInstr {
                op: Op::FmaAssign,
                dst: Some(d_u),
                a: Some(d_coeff),
                b: Some(d_buf_r),
            }),
        ],
    );

    let send = core.add_task(Task::new(
        "halo-send",
        vec![
            Stmt::InitDsr { dsr: d_tx, desc: mk::tx16(send_color, z) },
            Stmt::Launch {
                slot: HALO_SEND_SLOT,
                instr: TensorInstr { op: Op::Copy, dst: Some(d_tx), a: Some(d_src), b: None },
                on_complete: None,
            },
        ],
    ));
    let recv = core.add_task(Task::new(
        "halo-recv",
        vec![
            Stmt::InitDsr { dsr: d_rx, desc: mk::rx16(recv_color, z) },
            Stmt::Launch {
                slot: HALO_RECV_SLOT,
                instr: TensorInstr { op: Op::Copy, dst: Some(d_buf_w), a: Some(d_rx), b: None },
                on_complete: Some((fold, TaskAction::Activate)),
            },
        ],
    ));
    core.mark_entry(send);
    core.mark_entry(recv);
    OverlapHalo { send, recv, fold }
}

/// Builds the **naive ablation** of the SpMV: no FIFO decoupling, no
/// multiply/receive overlap — each neighbor stream is received *fully* into
/// a scratch buffer (blocking, sequential), and only then multiplied and
/// accumulated. This is the design the paper's Listing-1 dataflow exists to
/// beat; `experiments commhiding`-style measurements quantify the gap.
///
/// Costs four extra `z`-length scratch buffers of SRAM.
pub fn build_spmv_tile_naive(
    tile: &mut Tile,
    x: usize,
    y: usize,
    region_w: usize,
    region_h: usize,
    layout: SpmvLayout,
) -> SpmvTasks {
    let z = layout.z;
    let mine = spmv_color(x, y);
    let (cxp, cxm, cyp, cym) = incoming_colors(x, y);
    let present = [x + 1 < region_w, x > 0, y + 1 < region_h, y > 0];
    let colors = [cxp, cxm, cyp, cym];

    // Scratch receive buffers.
    let mut bufs = [0u32; 4];
    for (i, b) in bufs.iter_mut().enumerate() {
        if present[i] {
            *b = tile.mem.alloc_vec(z, Dtype::F16).expect("SRAM: naive rx buffer");
        }
    }
    let cbuf = tile.mem.alloc_vec(z, Dtype::F16).expect("SRAM: naive loopback buffer");

    let core = &mut tile.core;
    let d_send_src = core.add_dsr(mk::tensor16(layout.v_live(), z));
    let d_tx = core.add_dsr(mk::tx16(mine, z));
    let d_zm_a = core.add_dsr(mk::tensor16(layout.diag[5], z));
    let d_zm_b = core.add_dsr(mk::tensor16(layout.vpad, z));
    let d_zp_a = core.add_dsr(mk::tensor16(layout.diag[4], z));
    let d_zp_b = core.add_dsr(mk::tensor16(layout.vpad + 4, z));
    let d_u_init = core.add_dsr(mk::tensor16(layout.u, z));
    let d_u_zp = core.add_dsr(mk::tensor16(layout.u, z));

    // Completion chain over the background threads (send, loopback copy, one
    // receive per present neighbor), same two-way-barrier idiom as the real
    // kernel. The receives must all run CONCURRENTLY even in the naive
    // variant: the broadcast fanout is all-or-nothing, so draining neighbor
    // streams one at a time lets an undrained branch backpressure a sender
    // that a third tile is blocked on — a circular wait once z outgrows the
    // queue slack.
    let threads = 2 + present.iter().filter(|&&p| p).count();
    let nchain = threads - 1;
    let mut chain: Vec<TaskId> = Vec::with_capacity(nchain);
    for _ in 0..nchain {
        chain.push(core.add_task(Task::new("naive-barrier", vec![]).blocked()));
    }
    // The multiplies wait for the whole chain: no receive/multiply overlap,
    // which is the point of the ablation.
    let fma = core.add_task(Task::new("spmv-naive-fma", vec![]));
    for i in 0..nchain {
        let mut cbody = vec![Stmt::TaskCtl { task: chain[i], action: TaskAction::Block }];
        if i + 1 < nchain {
            cbody.push(Stmt::TaskCtl { task: chain[i + 1], action: TaskAction::Activate });
        } else {
            cbody.push(Stmt::TaskCtl { task: fma, action: TaskAction::Activate });
        }
        core.set_task_body(chain[i], cbody);
    }
    let trigger = |k: usize| -> (TaskId, TaskAction) {
        match k {
            0 => (chain[0], TaskAction::Activate),
            1 => (chain[0], TaskAction::Unblock),
            k => (chain[k - 1], TaskAction::Unblock),
        }
    };

    let mut body = vec![
        Stmt::InitDsr { dsr: d_tx, desc: mk::tx16(mine, z) },
        Stmt::Launch {
            slot: 5,
            instr: TensorInstr { op: Op::Copy, dst: Some(d_tx), a: Some(d_send_src), b: None },
            on_complete: Some(trigger(0)),
        },
    ];
    let mut thread_no = 1;

    // Each neighbor stream is received *fully* into scratch by a background
    // thread; every multiply pass — including the purely local z terms —
    // happens only after all streams landed. Zero receive/compute overlap.
    let mut fma_body = vec![
        Stmt::Exec(TensorInstr {
            op: Op::Mul,
            dst: Some(d_u_init),
            a: Some(d_zm_a),
            b: Some(d_zm_b),
        }),
        Stmt::Exec(TensorInstr {
            op: Op::FmaAssign,
            dst: Some(d_u_zp),
            a: Some(d_zp_a),
            b: Some(d_zp_b),
        }),
    ];
    for i in 0..4 {
        if !present[i] {
            continue;
        }
        let d_rx = core.add_dsr(mk::rx16(colors[i], z));
        let d_buf_w = core.add_dsr(mk::tensor16(bufs[i], z));
        body.push(Stmt::InitDsr { dsr: d_rx, desc: mk::rx16(colors[i], z) });
        body.push(Stmt::Launch {
            slot: i as u8,
            instr: TensorInstr { op: Op::Copy, dst: Some(d_buf_w), a: Some(d_rx), b: None },
            on_complete: Some(trigger(thread_no)),
        });
        thread_no += 1;
        let d_buf_r = core.add_dsr(mk::tensor16(bufs[i], z));
        let d_a = core.add_dsr(mk::tensor16(layout.diag[i], z));
        let d_u = core.add_dsr(mk::tensor16(layout.u, z));
        fma_body.push(Stmt::Exec(TensorInstr {
            op: Op::FmaAssign,
            dst: Some(d_u),
            a: Some(d_a),
            b: Some(d_buf_r),
        }));
    }
    // Loopback diagonal, equally buffered through scratch.
    let d_c_rx = core.add_dsr(mk::rx16(mine, z));
    let d_cbuf_w = core.add_dsr(mk::tensor16(cbuf, z));
    body.push(Stmt::InitDsr { dsr: d_c_rx, desc: mk::rx16(mine, z) });
    body.push(Stmt::Launch {
        slot: 6,
        instr: TensorInstr { op: Op::Copy, dst: Some(d_cbuf_w), a: Some(d_c_rx), b: None },
        on_complete: Some(trigger(thread_no)),
    });

    let d_cbuf_r = core.add_dsr(mk::tensor16(cbuf, z));
    let d_u_c = core.add_dsr(mk::tensor16(layout.u, z));
    fma_body.push(Stmt::Exec(TensorInstr {
        op: Op::AddAssign,
        dst: Some(d_u_c),
        a: Some(d_cbuf_r),
        b: None,
    }));
    core.set_task_body(fma, fma_body);

    let start = core.add_task(Task::new("spmv-naive", body));
    core.mark_entry(start);
    SpmvTasks { start, last_barrier: *chain.last().unwrap() }
}

/// Extracts tile `(x, y)`'s six off-diagonal coefficient vectors from a
/// unit-diagonal 7-point matrix, in the kernel's `[xp, xm, yp, ym, zp, zm]`
/// order.
pub fn tile_coefficients(a: &DiaMatrix<F16>, x: usize, y: usize) -> [Vec<F16>; 6] {
    let mesh = a.mesh();
    let order = [
        Offset3::new(1, 0, 0),
        Offset3::new(-1, 0, 0),
        Offset3::new(0, 1, 0),
        Offset3::new(0, -1, 0),
        Offset3::new(0, 0, 1),
        Offset3::new(0, 0, -1),
    ];
    order.map(|off| (0..mesh.nz).map(|zz| a.coeff(x, y, zz, off)).collect())
}

/// Loads a tile's coefficients into its SRAM.
pub fn load_coefficients(tile: &mut Tile, layout: &SpmvLayout, coeffs: &[Vec<F16>; 6]) {
    for (i, c) in coeffs.iter().enumerate() {
        assert_eq!(c.len() as u32, layout.z, "coefficient length");
        tile.mem.store_f16_slice(layout.diag[i], c);
    }
}

/// Writes a tile's local iterate (with zero padding).
pub fn load_iterate(tile: &mut Tile, layout: &SpmvLayout, v: &[F16]) {
    assert_eq!(v.len() as u32, layout.z, "iterate length");
    tile.mem.write_f16(layout.vpad, F16::ZERO);
    tile.mem.store_f16_slice(layout.v_live(), v);
    tile.mem.write_f16(layout.vpad + 2 * (layout.z + 1), F16::ZERO);
}

/// Reads a tile's result vector.
pub fn read_result(tile: &Tile, layout: &SpmvLayout) -> Vec<F16> {
    tile.mem.load_f16_slice(layout.u, layout.z as usize)
}
