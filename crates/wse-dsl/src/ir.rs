//! The declarative stencil IR.
//!
//! A stencil is **data**: a named list of [`Tap`]s (relative mesh offsets,
//! each with a constant or per-cell-variable coefficient), a datapath
//! [`Precision`], and a [`Boundary`] condition. The lowering layer
//! ([`crate::lower`]) turns a spec into a wafer program; [`crate::plan`]
//! validates it and rejects illegal specs with a structured [`DslError`]
//! before any fabric is touched.

use stencil::dia::{DiaMatrix, Offset3};
use stencil::mesh::Mesh3D;
use wse_arch::types::Dtype;

/// Datapath precision of a lowered stencil apply.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Precision {
    /// 16-bit floats everywhere (the paper's default).
    F16,
    /// 32-bit floats everywhere.
    F32,
}

impl Precision {
    /// The wafer element type this precision lowers to.
    pub fn dtype(self) -> Dtype {
        match self {
            Precision::F16 => Dtype::F16,
            Precision::F32 => Dtype::F32,
        }
    }
}

/// Boundary condition a spec's materialized operator applies at mesh edges.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Boundary {
    /// Off-mesh neighbors read as zero (homogeneous Dirichlet).
    Dirichlet0,
    /// Off-mesh neighbors mirror the interior (homogeneous Neumann,
    /// cell-centered): the ghost cell at index −1 reads cell 0, etc.
    NeumannMirror,
}

/// How a tap's coefficient is supplied.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum CoefKind {
    /// One value for every mesh cell. Lowering may keep it in a core
    /// register instead of an SRAM vector.
    Const(f64),
    /// Per-cell values, supplied by a [`DiaMatrix`] at lowering time.
    Var,
}

/// One stencil tap: a relative offset and its coefficient.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Tap {
    /// Relative mesh offset of the source cell.
    pub off: Offset3,
    /// Coefficient kind.
    pub coef: CoefKind,
}

impl Tap {
    /// A constant-coefficient tap.
    pub fn constant(dx: i32, dy: i32, dz: i32, c: f64) -> Tap {
        Tap { off: Offset3::new(dx, dy, dz), coef: CoefKind::Const(c) }
    }

    /// A per-cell-variable tap.
    pub fn var(dx: i32, dy: i32, dz: i32) -> Tap {
        Tap { off: Offset3::new(dx, dy, dz), coef: CoefKind::Var }
    }
}

/// A declarative stencil: the DSL's unit of input.
#[derive(Clone, Debug, PartialEq)]
pub struct StencilSpec {
    /// Operator name (keys program caches; part of the fingerprint).
    pub name: String,
    /// The taps, in the order the lowered program accumulates them.
    pub taps: Vec<Tap>,
    /// Datapath precision.
    pub precision: Precision,
    /// Boundary condition.
    pub boundary: Boundary,
}

/// Structured rejection produced by validation/planning **before any
/// fabric is touched**.
#[derive(Clone, Debug, PartialEq)]
pub enum DslError {
    /// The spec has no taps.
    Empty,
    /// Two taps share one offset.
    DuplicateTap(Offset3),
    /// A constant coefficient is NaN or infinite.
    NonFinite(Offset3),
    /// A 3D tap is not axis-aligned (the Z-column mappings relay whole
    /// columns along one axis at a time; diagonal 3D taps are not
    /// routable).
    NotAStar(Offset3),
    /// A tap reaches beyond the mapping's routable radius.
    RadiusOverflow {
        /// The offending tap offset.
        off: Offset3,
        /// The mapping's maximum radius on the offending axis.
        max: usize,
    },
    /// The 2D block is too small for the halo radius (`bx, by ≥ 2r`
    /// whenever a neighbor exists in that direction).
    BlockTooSmall {
        /// Required minimum block extent.
        need: usize,
        /// Actual `(bx, by)`.
        got: (usize, usize),
    },
    /// Spec, mesh, and geometry disagree (dimensionality, tiling, or
    /// missing block size).
    MeshMismatch(String),
    /// The mesh needs more tiles than the fabric region provides.
    FabricTooSmall {
        /// Tiles required `(w, h)`.
        need: (usize, usize),
        /// Tiles available `(w, h)`.
        have: (usize, usize),
    },
    /// The per-tile working set exceeds the 48 KB SRAM budget.
    SramOverflow {
        /// Bytes the worst tile needs.
        need: u32,
        /// The per-tile budget.
        budget: u32,
    },
    /// More distinct constant coefficients than free core registers.
    TooManyConstants {
        /// Distinct constants found.
        distinct: usize,
        /// Registers available.
        max: usize,
    },
    /// The spec has variable taps but no matrix was supplied.
    VarNeedsMatrix,
    /// Mirror boundary folds a ghost contribution onto an offset the spec
    /// does not carry.
    MirrorNeedsBand(Offset3),
}

impl std::fmt::Display for DslError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let off = |o: &Offset3| format!("({}, {}, {})", o.dx, o.dy, o.dz);
        match self {
            DslError::Empty => write!(f, "stencil has no taps"),
            DslError::DuplicateTap(o) => write!(f, "duplicate tap at offset {}", off(o)),
            DslError::NonFinite(o) => {
                write!(f, "non-finite constant coefficient at offset {}", off(o))
            }
            DslError::NotAStar(o) => write!(
                f,
                "3D tap {} is not axis-aligned; Z-column mappings route star stencils only",
                off(o)
            ),
            DslError::RadiusOverflow { off: o, max } => write!(
                f,
                "tap {} reaches beyond the routable radius {max} of the selected mapping",
                off(o)
            ),
            DslError::BlockTooSmall { need, got } => write!(
                f,
                "block {}x{} too small for the halo radius: need extents >= {need} toward \
                 every neighbor",
                got.0, got.1
            ),
            DslError::MeshMismatch(s) => write!(f, "spec/mesh mismatch: {s}"),
            DslError::FabricTooSmall { need, have } => write!(
                f,
                "mesh needs a {}x{} tile region but the fabric provides {}x{}",
                need.0, need.1, have.0, have.1
            ),
            DslError::SramOverflow { need, budget } => {
                write!(f, "per-tile working set of {need} B exceeds the {budget} B SRAM budget")
            }
            DslError::TooManyConstants { distinct, max } => write!(
                f,
                "{distinct} distinct constant coefficients exceed the {max} free registers"
            ),
            DslError::VarNeedsMatrix => {
                write!(f, "spec has per-cell-variable taps; lowering requires a matrix")
            }
            DslError::MirrorNeedsBand(o) => write!(
                f,
                "mirror boundary folds a ghost contribution onto offset {}, which the spec \
                 does not carry",
                off(o)
            ),
        }
    }
}

impl std::error::Error for DslError {}

impl StencilSpec {
    /// A new spec. Call [`StencilSpec::validate`] (or let
    /// [`crate::plan::plan`] do it) before lowering.
    pub fn new(
        name: impl Into<String>,
        taps: Vec<Tap>,
        precision: Precision,
        boundary: Boundary,
    ) -> StencilSpec {
        StencilSpec { name: name.into(), taps, precision, boundary }
    }

    /// The all-variable 9-point 2D spec the hand-written `spmv2d` builder
    /// realizes (taps in [`Offset3::nine_point_2d`] order).
    pub fn var_nine_point_2d() -> StencilSpec {
        let taps =
            Offset3::nine_point_2d().iter().map(|o| Tap { off: *o, coef: CoefKind::Var }).collect();
        StencilSpec::new("spmv2d-9pt", taps, Precision::F16, Boundary::Dirichlet0)
    }

    /// The all-variable 7-point 3D spec the hand-written `spmv3d` builder
    /// realizes (taps in [`Offset3::seven_point`] order).
    pub fn var_seven_point_3d() -> StencilSpec {
        let taps =
            Offset3::seven_point().iter().map(|o| Tap { off: *o, coef: CoefKind::Var }).collect();
        StencilSpec::new("spmv3d-7pt", taps, Precision::F16, Boundary::Dirichlet0)
    }

    /// This spec with a different precision.
    pub fn with_precision(mut self, precision: Precision) -> StencilSpec {
        self.precision = precision;
        self
    }

    /// The tap offsets, in spec order.
    pub fn offsets(&self) -> Vec<Offset3> {
        self.taps.iter().map(|t| t.off).collect()
    }

    /// `true` when every tap keeps `dz == 0`.
    pub fn is_2d(&self) -> bool {
        self.taps.iter().all(|t| t.off.dz == 0)
    }

    /// `true` when every tap is axis-aligned (at most one nonzero
    /// component) — the shape the Z-column mappings can route.
    pub fn is_star(&self) -> bool {
        self.taps.iter().all(|t| {
            let nz = [t.off.dx, t.off.dy, t.off.dz].iter().filter(|&&c| c != 0).count();
            nz <= 1
        })
    }

    /// Per-axis reach `(rx, ry, rz)`.
    pub fn radius(&self) -> (usize, usize, usize) {
        let mut r = (0usize, 0usize, 0usize);
        for t in &self.taps {
            r.0 = r.0.max(t.off.dx.unsigned_abs() as usize);
            r.1 = r.1.max(t.off.dy.unsigned_abs() as usize);
            r.2 = r.2.max(t.off.dz.unsigned_abs() as usize);
        }
        r
    }

    /// `true` when every tap has a constant coefficient.
    pub fn all_const(&self) -> bool {
        self.taps.iter().all(|t| matches!(t.coef, CoefKind::Const(_)))
    }

    /// Basic well-formedness: taps exist, offsets are unique, constants are
    /// finite. Mapping-specific limits (radius, SRAM, geometry) live in
    /// [`crate::plan::plan`].
    pub fn validate(&self) -> Result<(), DslError> {
        if self.taps.is_empty() {
            return Err(DslError::Empty);
        }
        for (i, t) in self.taps.iter().enumerate() {
            for prev in &self.taps[..i] {
                if prev.off == t.off {
                    return Err(DslError::DuplicateTap(t.off));
                }
            }
            if let CoefKind::Const(c) = t.coef {
                if !c.is_finite() {
                    return Err(DslError::NonFinite(t.off));
                }
            }
        }
        Ok(())
    }

    /// Content fingerprint (FNV-1a over name, taps, precision, boundary).
    /// Equal DSL sources produce equal fingerprints; the service cache key
    /// builds on this.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(self.name.as_bytes());
        eat(&[
            0xff,
            match self.precision {
                Precision::F16 => 1,
                Precision::F32 => 2,
            },
        ]);
        eat(&[match self.boundary {
            Boundary::Dirichlet0 => 1,
            Boundary::NeumannMirror => 2,
        }]);
        eat(&(self.taps.len() as u64).to_le_bytes());
        for t in &self.taps {
            eat(&t.off.dx.to_le_bytes());
            eat(&t.off.dy.to_le_bytes());
            eat(&t.off.dz.to_le_bytes());
            match t.coef {
                CoefKind::Const(c) => {
                    eat(&[1]);
                    eat(&c.to_bits().to_le_bytes());
                }
                CoefKind::Var => eat(&[2]),
            }
        }
        h
    }

    /// Materializes an all-constant spec into a row-stored [`DiaMatrix`]
    /// over `mesh`, applying the boundary condition.
    ///
    /// Under [`Boundary::Dirichlet0`] a tap whose source falls off-mesh
    /// simply contributes nothing. Under [`Boundary::NeumannMirror`] the
    /// ghost source reflects back into the mesh, and its coefficient folds
    /// onto the offset that reaches the mirrored cell — which must itself
    /// be one of the spec's taps, else [`DslError::MirrorNeedsBand`].
    pub fn matrix(&self, mesh: Mesh3D) -> Result<DiaMatrix<f64>, DslError> {
        self.validate()?;
        if !self.all_const() {
            return Err(DslError::VarNeedsMatrix);
        }
        let offsets = self.offsets();
        let mut a = DiaMatrix::<f64>::new(mesh, &offsets);
        // Mirror a coordinate across the cell-centered boundary.
        let reflect = |i: i64, n: usize| -> i64 {
            if i < 0 {
                -i - 1
            } else if i >= n as i64 {
                2 * n as i64 - 1 - i
            } else {
                i
            }
        };
        for (x, y, z) in mesh.iter() {
            for t in &self.taps {
                let c = match t.coef {
                    CoefKind::Const(c) => c,
                    CoefKind::Var => unreachable!("all_const checked"),
                };
                let (sx, sy, sz) = (
                    x as i64 + t.off.dx as i64,
                    y as i64 + t.off.dy as i64,
                    z as i64 + t.off.dz as i64,
                );
                let inside = sx >= 0
                    && sy >= 0
                    && sz >= 0
                    && sx < mesh.nx as i64
                    && sy < mesh.ny as i64
                    && sz < mesh.nz as i64;
                if inside {
                    let cur = a.coeff(x, y, z, t.off);
                    a.set(x, y, z, t.off, cur + c);
                    continue;
                }
                match self.boundary {
                    Boundary::Dirichlet0 => {}
                    Boundary::NeumannMirror => {
                        let (mx, my, mz) =
                            (reflect(sx, mesh.nx), reflect(sy, mesh.ny), reflect(sz, mesh.nz));
                        let fold = Offset3::new(
                            (mx - x as i64) as i32,
                            (my - y as i64) as i32,
                            (mz - z as i64) as i32,
                        );
                        if !offsets.contains(&fold) {
                            return Err(DslError::MirrorNeedsBand(fold));
                        }
                        let cur = a.coeff(x, y, z, fold);
                        a.set(x, y, z, fold, cur + c);
                    }
                }
            }
        }
        Ok(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let a = StencilSpec::var_nine_point_2d();
        let b = StencilSpec::var_nine_point_2d();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = a.clone().with_precision(Precision::F32);
        assert_ne!(a.fingerprint(), c.fingerprint());
        let mut d = a.clone();
        d.taps[3].coef = CoefKind::Const(0.25);
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn validate_rejects_duplicates_and_nan() {
        let dup = StencilSpec::new(
            "dup",
            vec![Tap::constant(0, 0, 0, 1.0), Tap::constant(0, 0, 0, 2.0)],
            Precision::F16,
            Boundary::Dirichlet0,
        );
        assert!(matches!(dup.validate(), Err(DslError::DuplicateTap(_))));
        let nan = StencilSpec::new(
            "nan",
            vec![Tap::constant(1, 0, 0, f64::NAN)],
            Precision::F16,
            Boundary::Dirichlet0,
        );
        assert!(matches!(nan.validate(), Err(DslError::NonFinite(_))));
        assert!(matches!(
            StencilSpec::new("e", vec![], Precision::F16, Boundary::Dirichlet0).validate(),
            Err(DslError::Empty)
        ));
    }

    #[test]
    fn dirichlet_matrix_drops_offmesh_taps() {
        let spec = StencilSpec::new(
            "lap5",
            vec![
                Tap::constant(0, 0, 0, 1.0),
                Tap::constant(1, 0, 0, -0.25),
                Tap::constant(-1, 0, 0, -0.25),
                Tap::constant(0, 1, 0, -0.25),
                Tap::constant(0, -1, 0, -0.25),
            ],
            Precision::F16,
            Boundary::Dirichlet0,
        );
        let mesh = Mesh3D::new(4, 4, 1);
        let a = spec.matrix(mesh).unwrap();
        assert_eq!(a.coeff(0, 0, 0, Offset3::new(-1, 0, 0)), 0.0);
        assert_eq!(a.coeff(1, 1, 0, Offset3::new(-1, 0, 0)), -0.25);
    }

    #[test]
    fn mirror_matrix_folds_ghosts_onto_interior_bands() {
        let spec = StencilSpec::new(
            "lap5m",
            vec![
                Tap::constant(0, 0, 0, 1.0),
                Tap::constant(1, 0, 0, -0.25),
                Tap::constant(-1, 0, 0, -0.25),
                Tap::constant(0, 1, 0, -0.25),
                Tap::constant(0, -1, 0, -0.25),
            ],
            Precision::F16,
            Boundary::NeumannMirror,
        );
        let mesh = Mesh3D::new(4, 4, 1);
        let a = spec.matrix(mesh).unwrap();
        // At x = 0 the −x ghost mirrors onto the cell itself: center picks
        // up the fold.
        assert_eq!(a.coeff(0, 1, 0, Offset3::CENTER), 0.75);
        // Row sums are zero everywhere for a conservative mirror operator.
        for (x, y, z) in mesh.iter() {
            let sum: f64 = spec.offsets().iter().map(|o| a.coeff(x, y, z, *o)).sum();
            assert!(sum.abs() < 1e-12, "row ({x},{y},{z}) sums to {sum}");
        }
    }
}
