//! The generalized 2D block mapping with output-halo exchange (§IV.2 of the
//! paper), radius `r ≤ 2`.
//!
//! "For the 2D problem we map a rectangular region of the mesh of v to each
//! core, and store all elements of the corresponding columns of A. After
//! multiplication of the local v with the local A we have generated products
//! in an output halo that must be sent to neighboring tiles. ... We complete
//! a round of send and add in one direction, then a round for the other
//! direction, and in this way avoid communication along diagonals of the
//! tile grid."
//!
//! Per core: the local `bx × by` block of `v` is multiplied against the
//! stored **column** coefficient arrays (one per tap) with fused FMACs into
//! a `(bx+2r) × (by+2r)` extended output buffer; the edge wings (the output
//! halo, `r` columns/rows deep) are then exchanged — first the x direction
//! (full-height wings, so corner products ride along), then the y direction
//! — and added into the neighbors' interiors.
//!
//! At radius 1 with fp16 and the nine-point tap order this emits a program
//! **byte-identical** to the original hand-written `wse-core::spmv2d`
//! builder (the retrofit regression in `tests/dsl_retrofit.rs` pins the
//! program digest), which is why some orderings below look arbitrary: they
//! are frozen by that contract. The x-round wing is `r` *contiguous*
//! extended columns, so any radius still needs exactly one send and one
//! receive thread per side; the y round streams each of the `r` halo rows
//! on its own color pair ([`crate::colors::halo_s`]).

use crate::colors::{halo_n, halo_s, HALO_E, HALO_W};
use stencil::decomp::Block2D;
use stencil::dia::{DiaMatrix, Offset3};
use stencil::scalar::Scalar;
use wse_arch::dsr::Descriptor;
use wse_arch::instr::{Op, Stmt, Task, TaskAction, TensorInstr};
use wse_arch::types::{Color, Dtype, Port, TaskId};
use wse_arch::{Fabric, Tile};
use wse_float::F16;

/// Register used as the zero constant when clearing the output buffer.
const R_ZERO: usize = 30;

/// Contiguous rewinding memory tensor of `dtype`.
fn t_mem(addr: u32, len: u32, dtype: Dtype) -> Descriptor {
    Descriptor::Mem { addr, len, stride: 1, dtype, rewind: true }
}

/// Strided rewinding memory tensor of `dtype`.
fn t_strided(addr: u32, len: u32, stride: u32, dtype: Dtype) -> Descriptor {
    Descriptor::Mem { addr, len, stride, dtype, rewind: true }
}

fn t_tx(color: Color, len: u32, dtype: Dtype) -> Descriptor {
    Descriptor::FabricOut { color, len, dtype }
}

fn t_rx(color: Color, len: u32, dtype: Dtype) -> Descriptor {
    Descriptor::FabricIn { color, len, dtype }
}

/// Byte addresses of one tile's block-mapped data.
#[derive(Clone, Debug)]
pub struct BlockLayout {
    /// Block extents.
    pub block: Block2D,
    /// Halo radius.
    pub r: usize,
    /// Element type.
    pub dtype: Dtype,
    /// Column-coefficient arrays (`bx·by` each), one per tap in spec order.
    pub coef: Vec<u32>,
    /// Local iterate block, `bx·by` words, row-major (y fastest).
    pub v: u32,
    /// Extended output buffer, `(bx+2r)·(by+2r)` words, row-major with
    /// width `by + 2r`.
    pub ubuf: u32,
}

impl BlockLayout {
    /// Allocates the layout in a tile's SRAM, in the frozen order
    /// (coefficient arrays, iterate, output buffer).
    ///
    /// # Panics
    /// Panics when the block exceeds the 48 KB budget; [`crate::plan`]
    /// rejects such specs before any tile exists.
    pub fn alloc(
        tile: &mut Tile,
        block: Block2D,
        ntaps: usize,
        r: usize,
        dtype: Dtype,
    ) -> BlockLayout {
        let n = (block.bx * block.by) as u32;
        let mut coef = Vec::with_capacity(ntaps);
        for _ in 0..ntaps {
            coef.push(tile.mem.alloc_vec(n, dtype).expect("SRAM: 2D coefficients"));
        }
        let v = tile.mem.alloc_vec(n, dtype).expect("SRAM: 2D iterate");
        let ubuf = tile
            .mem
            .alloc_vec(((block.bx + 2 * r) * (block.by + 2 * r)) as u32, dtype)
            .expect("SRAM: 2D output buffer");
        BlockLayout { block, r, dtype, coef, v, ubuf }
    }

    /// Byte address of `ubuf[i][j]` (extended coordinates, `i` along x).
    pub fn u_addr(&self, i: usize, j: usize) -> u32 {
        self.ubuf + self.dtype.bytes() * (i * (self.block.by + 2 * self.r) + j) as u32
    }

    /// Byte address of `v[i][j]` (block coordinates).
    pub fn v_addr(&self, i: usize, j: usize) -> u32 {
        self.v + self.dtype.bytes() * (i * self.block.by + j) as u32
    }
}

/// Halo-exchange routing for a `w × h` region at the fabric origin.
pub fn configure_block_routes(fabric: &mut Fabric, w: usize, h: usize, r: usize) {
    configure_block_routes_at(fabric, 0, 0, w, h, r);
}

/// Halo-exchange routing for a `w × h` region whose top-left tile sits at
/// `(ox, oy)`. Routing is boundary-aware in **region** coordinates: no
/// route crosses the region's edge, so co-resident programs in disjoint
/// regions cannot interfere (the multi-tenant containment invariant,
/// checked by `wse-lint`'s region lint). The x direction uses one color
/// pair regardless of radius (the wing is contiguous); the y direction
/// uses one pair per halo ring.
pub fn configure_block_routes_at(
    fabric: &mut Fabric,
    ox: usize,
    oy: usize,
    w: usize,
    h: usize,
    r: usize,
) {
    for y in 0..h {
        for x in 0..w {
            let (fx, fy) = (ox + x, oy + y);
            if x + 1 < w {
                fabric.set_route(fx, fy, Port::Ramp, HALO_E, &[Port::East]);
                fabric.set_route(fx, fy, Port::East, HALO_W, &[Port::Ramp]);
            }
            if x > 0 {
                fabric.set_route(fx, fy, Port::Ramp, HALO_W, &[Port::West]);
                fabric.set_route(fx, fy, Port::West, HALO_E, &[Port::Ramp]);
            }
            if y + 1 < h {
                for k in 0..r {
                    fabric.set_route(fx, fy, Port::Ramp, halo_s(k), &[Port::South]);
                    fabric.set_route(fx, fy, Port::South, halo_n(k), &[Port::Ramp]);
                }
            }
            if y > 0 {
                for k in 0..r {
                    fabric.set_route(fx, fy, Port::Ramp, halo_n(k), &[Port::North]);
                    fabric.set_route(fx, fy, Port::North, halo_s(k), &[Port::Ramp]);
                }
            }
        }
    }
}

/// Stores per-core **column** coefficients: `coef[o][i][j]` multiplies
/// local `v[i][j]` and contributes to the output at extended position
/// `(i+r+dx, j+r+dy)` — i.e. it is the matrix entry
/// `A[(gi+dx, gj+dy), (gi, gj)]`, the transpose view of the row-stored DIA
/// bands. The `f64` matrix carries scalar values exactly
/// ([`Scalar::to_f64`] is exact for every implementor), so rounding once
/// into `dtype` here reproduces the bytes a native-precision matrix would
/// have stored.
pub fn load_block_coefficients<S: Scalar>(
    tile: &mut Tile,
    layout: &BlockLayout,
    a: &DiaMatrix<S>,
    offsets: &[Offset3],
    tx: usize,
    ty: usize,
) {
    let mesh = a.mesh();
    let b = layout.block;
    for (o, off) in offsets.iter().enumerate() {
        let mut data = vec![0.0f64; b.bx * b.by];
        for i in 0..b.bx {
            for j in 0..b.by {
                let gi = tx * b.bx + i;
                let gj = ty * b.by + j;
                // Row = (gi+dx, gj+dy); its coefficient toward column
                // (gi, gj) sits at offset (-dx, -dy) in row storage.
                let ri = gi as i64 + off.dx as i64;
                let rj = gj as i64 + off.dy as i64;
                if ri < 0 || rj < 0 || ri >= mesh.nx as i64 || rj >= mesh.ny as i64 {
                    continue;
                }
                let mirror = Offset3::new(-off.dx, -off.dy, 0);
                data[i * b.by + j] = a.coeff(ri as usize, rj as usize, 0, mirror).to_f64();
            }
        }
        store_scalar_slice(tile, layout.coef[o], &data, layout.dtype);
    }
}

/// Stores `data` at `addr`, rounding each value once into `dtype`.
pub fn store_scalar_slice(tile: &mut Tile, addr: u32, data: &[f64], dtype: Dtype) {
    match dtype {
        Dtype::F16 => {
            let h: Vec<F16> = data.iter().map(|&v| F16::from_f64(v)).collect();
            tile.mem.store_f16_slice(addr, &h);
        }
        Dtype::F32 => {
            for (i, &v) in data.iter().enumerate() {
                tile.mem.write_f32(addr + 4 * i as u32, f32::from_f64(v));
            }
        }
    }
}

/// Loads `len` values from `addr`, widening each exactly to `f64`.
pub fn load_scalar_slice(tile: &Tile, addr: u32, len: usize, dtype: Dtype) -> Vec<f64> {
    match dtype {
        Dtype::F16 => tile.mem.load_f16_slice(addr, len).iter().map(|h| h.to_f64()).collect(),
        Dtype::F32 => (0..len).map(|i| tile.mem.read_f32(addr + 4 * i as u32) as f64).collect(),
    }
}

/// Builds the per-tile task: zero `ubuf`, one FMAC pass per tap (row at a
/// time), then the two-round halo exchange with a barrier between rounds.
/// The caller marks the returned task as an entry point.
pub fn build_block_tile_task(
    tile: &mut Tile,
    layout: &BlockLayout,
    offsets: &[Offset3],
    tx: usize,
    ty: usize,
    w: usize,
    h: usize,
) -> TaskId {
    let b = layout.block;
    let (bx, by) = (b.bx, b.by);
    let r = layout.r;
    let dt = layout.dtype;
    let esz = dt.bytes();
    let core = &mut tile.core;
    let ub_w = (by + 2 * r) as u32;

    let mut body: Vec<Stmt> = vec![Stmt::SetReg { reg: R_ZERO, value: 0.0 }];

    // Zero the extended buffer with a register broadcast (source-free: a
    // single DSR, so the cursor semantics are trivially correct on every
    // invocation).
    let n_ub = ((bx + 2 * r) * (by + 2 * r)) as u32;
    let d_ub_all = core.add_dsr(t_mem(layout.ubuf, n_ub, dt));
    body.push(Stmt::Exec(TensorInstr {
        op: Op::StoreReg { reg: R_ZERO },
        dst: Some(d_ub_all),
        a: None,
        b: None,
    }));

    // One fused multiply-accumulate pass per tap × bx rows. (This is where
    // the paper's "all 9 multiplies and adds ... on the same core, we are
    // able to use the fused multiply-accumulate instruction" shows up.)
    for (o, off) in offsets.iter().enumerate() {
        for i in 0..bx {
            let d_dst = core.add_dsr(t_mem(
                layout.u_addr(
                    (i as i64 + r as i64 + off.dx as i64) as usize,
                    (r as i64 + off.dy as i64) as usize,
                ),
                by as u32,
                dt,
            ));
            let d_coef = core.add_dsr(t_mem(layout.coef[o] + esz * (i * by) as u32, by as u32, dt));
            let d_v = core.add_dsr(t_mem(layout.v_addr(i, 0), by as u32, dt));
            body.push(Stmt::Exec(TensorInstr {
                op: Op::FmaAssign,
                dst: Some(d_dst),
                a: Some(d_coef),
                b: Some(d_v),
            }));
        }
    }

    // --- Halo exchange round 1: x direction, full-height wings of r
    // contiguous extended columns. Send the east wing (extended columns
    // bx+r .. bx+2r), receive the east neighbor's westward wing into
    // interior columns bx .. bx+r; symmetric westward. ---
    let strip_h = (r * (by + 2 * r)) as u32;
    let has_e = tx + 1 < w;
    let has_w = tx > 0;
    let has_s = ty + 1 < h;
    let has_n = ty > 0;

    // Barrier between rounds: chain of two-input barriers over the
    // launched threads of round 1.
    let round2 = core.add_task(Task::new("halo-y", vec![]));
    let mut r1_threads = 0usize;
    r1_threads += usize::from(has_e) * 2; // send E + add-from-E
    r1_threads += usize::from(has_w) * 2;
    let mut chain: Vec<TaskId> = Vec::new();
    if r1_threads >= 2 {
        let n = r1_threads - 1;
        for _ in 0..n {
            // Every barrier starts blocked: it needs BOTH its Activate
            // and its Unblock trigger before it may run.
            chain.push(core.add_task(Task::new("halo-x-barrier", vec![]).blocked()));
        }
        for i in 0..n {
            let next = if i + 1 < n {
                Stmt::TaskCtl { task: chain[i + 1], action: TaskAction::Activate }
            } else {
                Stmt::TaskCtl { task: round2, action: TaskAction::Activate }
            };
            // Re-block first (the paper's two-way barrier reset), so the
            // chain is armed again for the next SpMV invocation.
            core.set_task_body(
                chain[i],
                vec![Stmt::TaskCtl { task: chain[i], action: TaskAction::Block }, next],
            );
        }
    }
    let trigger = |k: usize, chain: &Vec<TaskId>| -> Option<(TaskId, TaskAction)> {
        if chain.is_empty() {
            return None;
        }
        Some(match k {
            0 => (chain[0], TaskAction::Activate),
            1 => (chain[0], TaskAction::Unblock),
            k => (chain[k - 1], TaskAction::Unblock),
        })
    };

    let mut k = 0usize;
    let mut slot = 0u8;
    if has_e {
        // Send the east wing (contiguous columns bx+r .. bx+2r).
        let d_src = core.add_dsr(t_mem(layout.u_addr(bx + r, 0), strip_h, dt));
        let d_tx = core.add_dsr(t_tx(HALO_E, strip_h, dt));
        body.push(Stmt::InitDsr { dsr: d_tx, desc: t_tx(HALO_E, strip_h, dt) });
        body.push(Stmt::Launch {
            slot,
            instr: TensorInstr { op: Op::Copy, dst: Some(d_tx), a: Some(d_src), b: None },
            on_complete: trigger(k, &chain),
        });
        slot += 1;
        k += 1;
        // Receive the east neighbor's westward wing into interior columns
        // bx .. bx+r.
        let d_rx = core.add_dsr(t_rx(HALO_W, strip_h, dt));
        let d_acc = core.add_dsr(t_mem(layout.u_addr(bx, 0), strip_h, dt));
        body.push(Stmt::InitDsr { dsr: d_rx, desc: t_rx(HALO_W, strip_h, dt) });
        body.push(Stmt::Launch {
            slot,
            instr: TensorInstr { op: Op::AddAssign, dst: Some(d_acc), a: Some(d_rx), b: None },
            on_complete: trigger(k, &chain),
        });
        slot += 1;
        k += 1;
    }
    if has_w {
        let d_src = core.add_dsr(t_mem(layout.u_addr(0, 0), strip_h, dt));
        let d_tx = core.add_dsr(t_tx(HALO_W, strip_h, dt));
        body.push(Stmt::InitDsr { dsr: d_tx, desc: t_tx(HALO_W, strip_h, dt) });
        body.push(Stmt::Launch {
            slot,
            instr: TensorInstr { op: Op::Copy, dst: Some(d_tx), a: Some(d_src), b: None },
            on_complete: trigger(k, &chain),
        });
        slot += 1;
        k += 1;
        let d_rx = core.add_dsr(t_rx(HALO_E, strip_h, dt));
        let d_acc = core.add_dsr(t_mem(layout.u_addr(r, 0), strip_h, dt));
        body.push(Stmt::InitDsr { dsr: d_rx, desc: t_rx(HALO_E, strip_h, dt) });
        body.push(Stmt::Launch {
            slot,
            instr: TensorInstr { op: Op::AddAssign, dst: Some(d_acc), a: Some(d_rx), b: None },
            on_complete: trigger(k, &chain),
        });
        k += 1;
    }
    let _ = (slot, k);
    if chain.is_empty() {
        // No x neighbors: go straight to round 2.
        body.push(Stmt::TaskCtl { task: round2, action: TaskAction::Activate });
    }

    // --- Round 2 (y direction): interior-width strips, one per halo ring,
    // each ring on its own color pair. A "row j = const" strip is strided
    // by (by + 2r). ---
    let mut r2_body: Vec<Stmt> = Vec::new();
    let strip_w = bx as u32;
    let stride = ub_w;
    // Radius 1 keeps the frozen slot base 4 (round-1 slots stay untouched);
    // radius 2 needs 4r = 8 launch slots, so it reuses the round-1 slots —
    // safe because the inter-round barrier guarantees they retired, and a
    // busy slot only stall-retries anyway.
    let mut slot2 = if 4 * r + 4 <= 9 { 4u8 } else { 0u8 };
    if has_s {
        for ring in 0..r {
            // Output halo for the +y neighbor: extended row j = by+r+ring,
            // interior columns i = r .. r+bx.
            let d_src =
                core.add_dsr(t_strided(layout.u_addr(r, by + r + ring), strip_w, stride, dt));
            let d_tx = core.add_dsr(t_tx(halo_s(ring), strip_w, dt));
            r2_body.push(Stmt::InitDsr { dsr: d_tx, desc: t_tx(halo_s(ring), strip_w, dt) });
            r2_body.push(Stmt::Launch {
                slot: slot2,
                instr: TensorInstr { op: Op::Copy, dst: Some(d_tx), a: Some(d_src), b: None },
                on_complete: None,
            });
            slot2 += 1;
            let d_rx = core.add_dsr(t_rx(halo_n(ring), strip_w, dt));
            let d_acc = core.add_dsr(t_strided(layout.u_addr(r, by + ring), strip_w, stride, dt));
            r2_body.push(Stmt::InitDsr { dsr: d_rx, desc: t_rx(halo_n(ring), strip_w, dt) });
            r2_body.push(Stmt::Launch {
                slot: slot2,
                instr: TensorInstr { op: Op::AddAssign, dst: Some(d_acc), a: Some(d_rx), b: None },
                on_complete: None,
            });
            slot2 += 1;
        }
    }
    if has_n {
        for ring in 0..r {
            let d_src = core.add_dsr(t_strided(layout.u_addr(r, ring), strip_w, stride, dt));
            let d_tx = core.add_dsr(t_tx(halo_n(ring), strip_w, dt));
            r2_body.push(Stmt::InitDsr { dsr: d_tx, desc: t_tx(halo_n(ring), strip_w, dt) });
            r2_body.push(Stmt::Launch {
                slot: slot2,
                instr: TensorInstr { op: Op::Copy, dst: Some(d_tx), a: Some(d_src), b: None },
                on_complete: None,
            });
            slot2 += 1;
            let d_rx = core.add_dsr(t_rx(halo_s(ring), strip_w, dt));
            let d_acc = core.add_dsr(t_strided(layout.u_addr(r, r + ring), strip_w, stride, dt));
            r2_body.push(Stmt::InitDsr { dsr: d_rx, desc: t_rx(halo_s(ring), strip_w, dt) });
            r2_body.push(Stmt::Launch {
                slot: slot2,
                instr: TensorInstr { op: Op::AddAssign, dst: Some(d_acc), a: Some(d_rx), b: None },
                on_complete: None,
            });
            slot2 += 1;
        }
    }
    core.set_task_body(round2, r2_body);

    // The task name is frozen at "spmv2d" for program-digest stability with
    // the original hand-written builder.
    core.add_task(Task::new("spmv2d", body))
}
