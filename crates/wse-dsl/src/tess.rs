//! The SpMV tessellation routing pattern (Fig. 5), moved here from
//! `wse-core::routing` so the lowering layer and the hand-written drivers
//! share one implementation.
//!
//! "A single core pushes its content into adjacent cores' fabric router
//! using a single communication channel. Messages from the four neighbors
//! arrive on four distinct channels ... We allocate channel numbers to make
//! all five of these channels different at every tile."
//!
//! The assignment `color(x, y) = (x + 2y) mod 5` realizes this: at any tile,
//! its own broadcast color `c` and the four incoming colors `c±1, c±2
//! (mod 5)` are pairwise distinct.

use wse_arch::types::{Color, Port};
use wse_arch::Fabric;

pub use crate::colors::{SPMV_COLORS, SPMV_COLOR_BASE};

/// The broadcast color of tile `(x, y)`.
pub fn spmv_color(x: usize, y: usize) -> Color {
    SPMV_COLOR_BASE + ((x + 2 * y) % SPMV_COLORS as usize) as Color
}

/// Colors on which tile `(x, y)` receives its neighbors' broadcasts:
/// `(from_xp, from_xm, from_yp, from_ym)` — i.e. from the +x, −x, +y, −y
/// neighbors. A color is reported even at fabric edges (where no such
/// neighbor exists); callers skip absent neighbors.
pub fn incoming_colors(x: usize, y: usize) -> (Color, Color, Color, Color) {
    let c = |dx: i64, dy: i64| -> Color {
        let v = (x as i64 + dx) + 2 * (y as i64 + dy);
        SPMV_COLOR_BASE + (v.rem_euclid(SPMV_COLORS as i64)) as Color
    };
    (c(1, 0), c(-1, 0), c(0, 1), c(0, -1))
}

/// Configures the SpMV broadcast/receive routes for a `w × h` region of the
/// fabric.
///
/// Per tile: `(Ramp, own color)` fans out to every existing neighbor *and*
/// back to the own ramp (the z-loopback); each `(neighbor port, neighbor's
/// color)` routes to the ramp.
pub fn configure_spmv_routes(fabric: &mut Fabric, w: usize, h: usize) {
    assert!(w <= fabric.width() && h <= fabric.height(), "region exceeds fabric");
    for y in 0..h {
        for x in 0..w {
            let mine = spmv_color(x, y);
            let mut fanout = vec![Port::Ramp]; // loopback
            if x + 1 < w {
                fanout.push(Port::East);
            }
            if x > 0 {
                fanout.push(Port::West);
            }
            if y + 1 < h {
                fanout.push(Port::South);
            }
            if y > 0 {
                fanout.push(Port::North);
            }
            fabric.set_route(x, y, Port::Ramp, mine, &fanout);

            // Receives: the +x neighbor's broadcast arrives on the East port
            // carrying that neighbor's color, and so on.
            if x + 1 < w {
                fabric.set_route(x, y, Port::East, spmv_color(x + 1, y), &[Port::Ramp]);
            }
            if x > 0 {
                fabric.set_route(x, y, Port::West, spmv_color(x - 1, y), &[Port::Ramp]);
            }
            if y + 1 < h {
                fabric.set_route(x, y, Port::South, spmv_color(x, y + 1), &[Port::Ramp]);
            }
            if y > 0 {
                fabric.set_route(x, y, Port::North, spmv_color(x, y - 1), &[Port::Ramp]);
            }
        }
    }
}

/// Verifies the tessellation property over a `w × h` region: at every tile
/// the five channels in play (own broadcast + four incoming) are pairwise
/// distinct. Returns the first violation if any.
pub fn verify_tessellation(w: usize, h: usize) -> Result<(), String> {
    for y in 0..h {
        for x in 0..w {
            let mut colors = vec![spmv_color(x, y)];
            if x + 1 < w {
                colors.push(spmv_color(x + 1, y));
            }
            if x > 0 {
                colors.push(spmv_color(x - 1, y));
            }
            if y + 1 < h {
                colors.push(spmv_color(x, y + 1));
            }
            if y > 0 {
                colors.push(spmv_color(x, y - 1));
            }
            for i in 0..colors.len() {
                for j in 0..i {
                    if colors[i] == colors[j] {
                        return Err(format!(
                            "tile ({x},{y}): colors {:?} collide at positions {j},{i}",
                            colors
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colors_stay_in_range() {
        for y in 0..20 {
            for x in 0..20 {
                let c = spmv_color(x, y);
                assert!(c < SPMV_COLOR_BASE + SPMV_COLORS);
            }
        }
    }

    #[test]
    fn tessellation_property_various_sizes() {
        for (w, h) in [(2, 2), (3, 3), (5, 5), (7, 4), (16, 16), (31, 17), (602, 595)] {
            verify_tessellation(w, h).unwrap_or_else(|e| panic!("{w}x{h}: {e}"));
        }
    }

    #[test]
    fn five_colors_suffice_and_four_do_not() {
        // The analogous (x + 2y) mod 4 assignment collides: the ±y
        // neighbors are c±2, and c+2 ≡ c-2 mod 4. Verify that failure
        // concretely, and that the mod-5 assignment is collision-free.
        let color4 = |x: usize, y: usize| (x + 2 * y) % 4;
        let (x, y) = (2, 2);
        assert_eq!(color4(x, y + 1), color4(x, y.wrapping_sub(1)), "mod-4 assignment collides");
        verify_tessellation(10, 10).expect("mod-5 assignment is collision-free");
    }

    #[test]
    fn routes_configure_without_panic_and_loopback_exists() {
        let mut f = Fabric::new(4, 4);
        configure_spmv_routes(&mut f, 4, 4);
        // Interior tile: own color fans out to 5 ports (4 neighbors + ramp).
        let t = f.tile(1, 1);
        let fanout = t.router.route(Port::Ramp, spmv_color(1, 1)).unwrap();
        assert_eq!(fanout.len(), 5);
        assert!(fanout.contains(&Port::Ramp), "loopback must be routed");
        // Corner tile: 2 neighbors + ramp.
        let t = f.tile(0, 0);
        assert_eq!(t.router.route(Port::Ramp, spmv_color(0, 0)).unwrap().len(), 3);
    }
}
