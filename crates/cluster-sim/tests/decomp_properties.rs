//! Property tests for the cluster decomposition and simulation.

use cluster_sim::{decompose, ClusterSim};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The rank grid always multiplies out to exactly `p` and covers the
    /// mesh.
    #[test]
    fn decomposition_covers(n in 8usize..1000, p in 1usize..20000) {
        let b = decompose(n, p);
        prop_assert_eq!(b.px * b.py * b.pz, p);
        prop_assert!(b.bx * b.px >= n && b.by * b.py >= n && b.bz * b.pz >= n);
        // Ceil division never over-allocates by more than one block row.
        prop_assert!((b.bx - 1) * b.px < n);
    }

    /// The grid is near-cubic for powers of two: max factor ≤ 2 × min.
    #[test]
    fn powers_of_two_near_cubic(k in 0u32..15) {
        let p = 1usize << k;
        let b = decompose(600, p);
        prop_assert!(b.pz <= 2 * b.px, "{:?}", b);
    }

    /// Imbalance is bounded: the largest block holds at most ~(1+1/b)³ of
    /// the average share.
    #[test]
    fn imbalance_is_bounded(n in 32usize..800, k in 0u32..14) {
        let p = 1usize << k;
        let b = decompose(n, p);
        let imb = b.imbalance(n);
        prop_assert!(imb >= 1.0 - 1e-12);
        let side = b.bx.min(b.by).min(b.bz) as f64;
        let bound = (1.0 + 1.0 / side).powi(3) + 1e-9;
        prop_assert!(imb <= bound, "imbalance {} bound {}", imb, bound);
    }

    /// Simulated iteration times are positive, finite, and decrease (or
    /// flatten) with more cores for big meshes.
    #[test]
    fn simulation_is_sane(seed in 0u64..1000) {
        let mut sim = ClusterSim::new(seed);
        let mut prev = f64::INFINITY;
        for p in [1024usize, 4096, 16384] {
            let t = sim.mean_iteration(600, p, 4).total();
            prop_assert!(t.is_finite() && t > 0.0);
            prop_assert!(t < prev * 1.05, "600^3 should not slow down: {} -> {}", prev, t);
            prev = t;
        }
    }
}
