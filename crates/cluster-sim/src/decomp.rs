//! 3D block decomposition of an `n³` mesh over `P` ranks.

/// The rank grid and the (largest) per-rank block it induces.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BlockShape {
    /// Rank-grid extents.
    pub px: usize,
    /// Rank-grid extents.
    pub py: usize,
    /// Rank-grid extents.
    pub pz: usize,
    /// Largest block extents (ceil division — the load-imbalance driver).
    pub bx: usize,
    /// Largest block extents.
    pub by: usize,
    /// Largest block extents.
    pub bz: usize,
}

impl BlockShape {
    /// Points in the largest block (the critical-path rank's share).
    pub fn max_points(&self) -> usize {
        self.bx * self.by * self.bz
    }

    /// Average points per rank.
    pub fn avg_points(&self, n: usize) -> f64 {
        (n as f64).powi(3) / (self.px * self.py * self.pz) as f64
    }

    /// Load imbalance: largest block over average.
    pub fn imbalance(&self, n: usize) -> f64 {
        self.max_points() as f64 / self.avg_points(n)
    }

    /// Face points of the largest block (halo surface), per direction pair.
    pub fn face_points(&self) -> [usize; 3] {
        [self.by * self.bz, self.bx * self.bz, self.bx * self.by]
    }

    /// Total halo points exchanged by the largest block per sweep (both
    /// directions of all three axes).
    pub fn halo_points(&self) -> usize {
        2 * (self.face_points()[0] + self.face_points()[1] + self.face_points()[2])
    }
}

/// Splits `p` (a power of two in the paper's sweeps, but any value works)
/// into three near-equal factors, then blocks the mesh with ceil division.
pub fn decompose(n: usize, p: usize) -> BlockShape {
    assert!(n > 0 && p > 0);
    // Greedy: repeatedly assign the largest prime factor to the currently
    // smallest rank-grid dimension.
    let mut dims = [1usize; 3];
    let mut rem = p;
    let mut factor = 2usize;
    let mut factors = Vec::new();
    while rem > 1 {
        while rem.is_multiple_of(factor) {
            factors.push(factor);
            rem /= factor;
        }
        factor += 1;
        if factor * factor > rem && rem > 1 {
            factors.push(rem);
            break;
        }
    }
    factors.sort_unstable_by(|a, b| b.cmp(a));
    for f in factors {
        let i = (0..3).min_by_key(|&i| dims[i]).unwrap();
        dims[i] *= f;
    }
    dims.sort_unstable(); // px <= py <= pz
    let (px, py, pz) = (dims[0], dims[1], dims[2]);
    BlockShape { px, py, pz, bx: n.div_ceil(px), by: n.div_ceil(py), bz: n.div_ceil(pz) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn powers_of_two_split_near_cubically() {
        let b = decompose(600, 1024);
        assert_eq!(b.px * b.py * b.pz, 1024);
        // 1024 = 8 * 8 * 16 (or a permutation of near-equal factors).
        assert!(b.pz <= 2 * b.px, "{b:?}");
        let b = decompose(600, 16384);
        assert_eq!(b.px * b.py * b.pz, 16384);
        assert!(b.pz <= 2 * b.px, "{b:?}");
    }

    #[test]
    fn blocks_cover_the_mesh() {
        for (n, p) in [(600, 1024), (370, 8192), (600, 16384), (100, 7)] {
            let b = decompose(n, p);
            assert!(b.bx * b.px >= n);
            assert!(b.by * b.py >= n);
            assert!(b.bz * b.pz >= n);
        }
    }

    #[test]
    fn imbalance_grows_when_blocks_shrink() {
        let big = decompose(600, 1024).imbalance(600);
        let small = decompose(370, 16384).imbalance(370);
        assert!(big >= 1.0 && small >= 1.0);
        assert!(small > big, "small blocks suffer more ceil imbalance: {big} vs {small}");
    }

    #[test]
    fn halo_surface_to_volume_grows_at_scale() {
        let b1 = decompose(370, 1024);
        let b2 = decompose(370, 16384);
        let r1 = b1.halo_points() as f64 / b1.max_points() as f64;
        let r2 = b2.halo_points() as f64 / b2.max_points() as f64;
        assert!(r2 > 2.0 * r1, "surface share must grow: {r1} vs {r2}");
    }
}
