//! The per-iteration cluster simulation.

use crate::decomp::decompose;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Calibrated machine constants (see the crate docs; the defaults reproduce
/// the paper's two 600³ anchors).
#[derive(Copy, Clone, Debug)]
pub struct ClusterParams {
    /// Effective seconds per meshpoint per BiCGStab iteration of sweep
    /// compute (memory-bandwidth-bound; MFIX-realistic, far below peak).
    pub seconds_per_point: f64,
    /// Extra per-halo-point cost of packing/unpacking strided faces,
    /// relative to `seconds_per_point`.
    pub pack_factor: f64,
    /// Per-message latency α (software + network).
    pub alpha_msg: f64,
    /// Per-byte cost β (link bandwidth, shared).
    pub beta_byte: f64,
    /// Per-stage AllReduce latency (tree stage: one send + one recv + sum).
    pub alpha_reduce: f64,
    /// Relative lognormal OS jitter per compute phase (σ). Collectives wait
    /// for the slowest of `P` ranks, amplifying this with scale.
    pub noise_sigma: f64,
    /// Bytes per mesh point on the wire (fp64).
    pub bytes_per_point: f64,
    /// AllReduces per BiCGStab iteration (the paper's four).
    pub reduces_per_iter: usize,
    /// Halo-exchanged sweeps per iteration (the two SpMVs).
    pub sweeps_per_iter: usize,
}

impl Default for ClusterParams {
    fn default() -> ClusterParams {
        ClusterParams {
            // Calibrated (see tests::anchors): ~0.14 µs/point/sweep matches
            // 75 ms at 1024 cores for 600³ with two sweeps per iteration.
            seconds_per_point: 0.142e-6,
            pack_factor: 0.3,
            alpha_msg: 10e-6,
            beta_byte: 1.0 / 2.0e9, // ~2 GB/s effective per link under load
            alpha_reduce: 9.5e-6,
            noise_sigma: 0.05,
            bytes_per_point: 8.0,
            reduces_per_iter: 4,
            sweeps_per_iter: 2,
        }
    }
}

/// One simulated iteration's critical-path breakdown (seconds).
#[derive(Copy, Clone, Debug, Default)]
pub struct IterationBreakdown {
    /// Sweep compute on the slowest rank (including jitter).
    pub compute: f64,
    /// Halo pack/exchange on the slowest rank.
    pub halo: f64,
    /// The tree AllReduces.
    pub reduce: f64,
}

impl IterationBreakdown {
    /// Total seconds.
    pub fn total(&self) -> f64 {
        self.compute + self.halo + self.reduce
    }
}

/// The simulator: deterministic given its seed.
pub struct ClusterSim {
    /// Machine constants.
    pub params: ClusterParams,
    rng: SmallRng,
}

impl ClusterSim {
    /// A simulator with the default (anchor-calibrated) constants.
    pub fn new(seed: u64) -> ClusterSim {
        ClusterSim { params: ClusterParams::default(), rng: SmallRng::seed_from_u64(seed) }
    }

    /// Simulates one BiCGStab iteration of an `n³` mesh on `p` ranks.
    ///
    /// The collectives synchronize all ranks, so each sweep phase costs the
    /// **maximum** over ranks of (compute + halo). Sampling the max of `p`
    /// lognormal draws directly is O(p); we use the exact order-statistics
    /// shortcut only when `p` is large.
    pub fn simulate_iteration(&mut self, n: usize, p: usize) -> IterationBreakdown {
        let b = decompose(n, p);
        let pts = b.max_points() as f64;
        let sigma = self.params.noise_sigma;

        // Max of p lognormal(0, σ) factors: sample directly up to 4096
        // ranks, else use E[max] ≈ exp(σ·√(2 ln p)) (extreme-value
        // asymptotics) with a small sampled correction.
        let max_noise = if p <= 4096 {
            let mut m: f64 = 0.0;
            for _ in 0..p {
                let g: f64 = self.gaussian();
                m = m.max((sigma * g).exp());
            }
            m
        } else {
            let base = (sigma * (2.0 * (p as f64).ln()).sqrt()).exp();
            // jitter the asymptote a little so repeated calls vary
            let g: f64 = self.gaussian();
            base * (1.0 + 0.02 * g).max(0.9)
        };

        let sweep_compute = pts * self.params.seconds_per_point * max_noise;
        let halo_pts = b.halo_points() as f64;
        let pack = halo_pts * self.params.pack_factor * self.params.seconds_per_point;
        let wire = 6.0 * self.params.alpha_msg
            + halo_pts * self.params.bytes_per_point * self.params.beta_byte;
        let sweep_halo = pack + wire;

        let stages = 2.0 * (p as f64).log2().ceil();
        let reduce = self.params.reduces_per_iter as f64 * stages * self.params.alpha_reduce;

        IterationBreakdown {
            compute: self.params.sweeps_per_iter as f64 * sweep_compute,
            halo: self.params.sweeps_per_iter as f64 * sweep_halo,
            reduce,
        }
    }

    /// Mean of `samples` simulated iterations.
    pub fn mean_iteration(&mut self, n: usize, p: usize, samples: usize) -> IterationBreakdown {
        let mut acc = IterationBreakdown::default();
        for _ in 0..samples {
            let it = self.simulate_iteration(n, p);
            acc.compute += it.compute;
            acc.halo += it.halo;
            acc.reduce += it.reduce;
        }
        let s = samples as f64;
        IterationBreakdown { compute: acc.compute / s, halo: acc.halo / s, reduce: acc.reduce / s }
    }

    /// The Figs. 7–8 sweep: `(cores, seconds/iteration)`.
    pub fn scaling_curve(&mut self, n: usize, cores: &[usize]) -> Vec<(usize, f64)> {
        cores.iter().map(|&p| (p, self.mean_iteration(n, p, 16).total())).collect()
    }

    /// Box–Muller standard normal.
    fn gaussian(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(1e-12..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_are_reproduced_within_tolerance() {
        let mut sim = ClusterSim::new(7);
        let t1024 = sim.mean_iteration(600, 1024, 32).total();
        let t16k = sim.mean_iteration(600, 16384, 32).total();
        assert!(
            (t1024 - 0.075).abs() / 0.075 < 0.15,
            "1024-core anchor: {:.1} ms vs 75 ms",
            t1024 * 1e3
        );
        assert!(
            (t16k - 0.006).abs() / 0.006 < 0.30,
            "16K-core anchor: {:.2} ms vs ~6 ms",
            t16k * 1e3
        );
    }

    #[test]
    fn large_mesh_scales_small_mesh_collapses() {
        let mut sim = ClusterSim::new(3);
        let b8 = sim.mean_iteration(600, 8192, 16).total();
        let b16 = sim.mean_iteration(600, 16384, 16).total();
        let s8 = sim.mean_iteration(370, 8192, 16).total();
        let s16 = sim.mean_iteration(370, 16384, 16).total();
        // 600³ keeps a solid gain; 370³'s efficiency collapses.
        let big_gain = b8 / b16;
        let small_gain = s8 / s16;
        assert!(big_gain > 1.5, "600^3 gain {big_gain}");
        assert!(small_gain < big_gain, "370^3 must scale worse: {small_gain} vs {big_gain}");
        assert!(small_gain < 1.55, "370^3 efficiency collapse: gain {small_gain} for 2x cores");
    }

    #[test]
    fn reduce_share_grows_with_scale() {
        let mut sim = ClusterSim::new(5);
        let small = sim.mean_iteration(370, 1024, 16);
        let large = sim.mean_iteration(370, 16384, 16);
        assert!(
            large.reduce / large.total() > small.reduce / small.total(),
            "collectives dominate at scale: {small:?} vs {large:?}"
        );
    }

    #[test]
    fn deterministic_for_a_seed() {
        let a = ClusterSim::new(11).mean_iteration(600, 4096, 8).total();
        let b = ClusterSim::new(11).mean_iteration(600, 4096, 8).total();
        assert_eq!(a, b);
        let c = ClusterSim::new(12).mean_iteration(600, 4096, 8).total();
        assert_ne!(a, c);
    }

    #[test]
    fn agrees_with_the_analytic_model_on_the_anchored_mesh() {
        let analytic = perf_model::JouleModel::default();
        let mut sim = ClusterSim::new(9);
        for p in [1024usize, 2048, 4096, 8192, 16384] {
            let t_model = analytic.time_per_iteration(600, p);
            let t_sim = sim.mean_iteration(600, p, 16).total();
            let ratio = (t_sim / t_model).max(t_model / t_sim);
            assert!(
                ratio < 1.6,
                "sim and model should agree on 600^3 within 60%: p={p}, {t_sim} vs {t_model}"
            );
        }
    }
}
