//! Rank-level simulation of MPI-style BiCGStab on a commodity cluster —
//! the paper's Joule 2.0 baseline, rebuilt as a simulation instead of a
//! closed-form model.
//!
//! Where `perf-model::cluster` fits a formula to the paper's two anchors,
//! this crate *simulates* the per-iteration critical path rank by rank:
//!
//! * a 3D block [`decomp::decompose`] of the mesh over `P` ranks, with the
//!   real ceil-division load imbalance,
//! * per-rank sweep compute time (memory-bandwidth-bound, with lognormal
//!   OS jitter whose **max over P ranks** is what every collective waits
//!   for — the classic noise-amplification effect),
//! * six-face halo exchanges under an α–β message model, including the
//!   pack/unpack cost of strided faces,
//! * tree AllReduces (2·log₂P stages) for the four inner products.
//!
//! Constants are calibrated to the same two published anchors (75 ms @
//! 1024 cores and ~6 ms @ 16K cores on 600³), after which the 370³ curve
//! and the efficiency collapse at the tail are *predictions* of the
//! simulation. See `experiments fig7`/`fig8` for the side-by-side with the
//! analytic model.

#![warn(missing_docs)]

pub mod decomp;
pub mod sim;

pub use decomp::{decompose, BlockShape};
pub use sim::{ClusterParams, ClusterSim, IterationBreakdown};
