//! Phase-level profiling: aggregate driver-marked [`PhaseSpan`]s into a
//! cycles-per-phase table convertible to microseconds at a given clock.

use std::fmt::Write as _;
use wse_arch::{FabricTrace, PhaseSpan};

/// One aggregated phase (or marker) row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseRow {
    /// Phase name as marked by the driver.
    pub name: &'static str,
    /// Number of spans (for markers: number of stamps).
    pub spans: u64,
    /// Total cycles across all spans (always 0 for markers).
    pub cycles: u64,
}

/// Cycles-per-phase aggregation of a [`FabricTrace`].
#[derive(Clone, Debug, Default)]
pub struct PhaseReport {
    /// Rows in first-seen order.
    pub rows: Vec<PhaseRow>,
    /// Cycles covered by the traced window.
    pub window_cycles: u64,
}

impl PhaseReport {
    /// Aggregates `trace.phases` by name, keeping first-seen order. Instant
    /// markers (checkpoint/rollback stamps) become zero-cycle rows whose
    /// `spans` field counts occurrences.
    pub fn from_trace(trace: &FabricTrace) -> PhaseReport {
        let mut report = PhaseReport { rows: Vec::new(), window_cycles: trace.window_cycles() };
        for span in &trace.phases {
            report.add(span);
        }
        report
    }

    /// Aggregates only the spans overlapping the cycle window
    /// `[start, end)`, clipping each span to it — the per-job attribution
    /// primitive of the multi-tenant service: the driver records the fabric
    /// cycle at which each job starts and finishes, and this carves one
    /// job's share out of a shared trace. Phase names are `&'static str`,
    /// so attribution is by *when* work ran, not by dynamic labels. Markers
    /// are kept when their stamp cycle falls inside the window.
    /// `window_cycles` is the window's width clipped to the trace.
    pub fn from_trace_window(trace: &FabricTrace, start: u64, end: u64) -> PhaseReport {
        let lo = start.max(trace.start_cycle);
        let hi = end.min(trace.end_cycle);
        let mut report = PhaseReport { rows: Vec::new(), window_cycles: hi.saturating_sub(lo) };
        for span in &trace.phases {
            if span.start == span.end {
                // Instant marker: inside the half-open window?
                if span.start >= lo && span.start < hi {
                    report.add(span);
                }
            } else if span.start < hi && span.end > lo {
                let clipped =
                    PhaseSpan { name: span.name, start: span.start.max(lo), end: span.end.min(hi) };
                report.add(&clipped);
            }
        }
        report
    }

    fn add(&mut self, span: &PhaseSpan) {
        match self.rows.iter_mut().find(|r| r.name == span.name) {
            Some(row) => {
                row.spans += 1;
                row.cycles += span.cycles();
            }
            None => self.rows.push(PhaseRow { name: span.name, spans: 1, cycles: span.cycles() }),
        }
    }

    /// Total cycles attributed to phase `name` (0 if absent).
    pub fn cycles(&self, name: &str) -> u64 {
        self.rows.iter().find(|r| r.name == name).map_or(0, |r| r.cycles)
    }

    /// Number of spans recorded for phase `name` (0 if absent).
    pub fn spans(&self, name: &str) -> u64 {
        self.rows.iter().find(|r| r.name == name).map_or(0, |r| r.spans)
    }

    /// Cycles of phase `name` converted to microseconds at `clock_ghz`.
    pub fn us(&self, name: &str, clock_ghz: f64) -> f64 {
        self.cycles(name) as f64 / (clock_ghz * 1e3)
    }

    /// All instant markers (zero-cycle stamp rows) in first-seen order, as
    /// `(name, count)`. The recovery engine stamps `"checkpoint"` and
    /// `"rollback"`; the multi-wafer reliable transport stamps
    /// `"link_retransmit"` (once per retransmitted seam window) and the
    /// distributed solver `"halo_retry"` (once per failed halo exchange
    /// handed to the recovery engine) — so a trace answers "how many
    /// retransmissions in this window" without scanning raw spans.
    pub fn marker_counts(&self) -> Vec<(&'static str, u64)> {
        self.rows.iter().filter(|r| r.cycles == 0).map(|r| (r.name, r.spans)).collect()
    }

    /// Window cycles not covered by any marked phase (drivers mark phases
    /// back-to-back, so this is normally setup/teardown overhead).
    pub fn unattributed_cycles(&self) -> u64 {
        let marked: u64 = self.rows.iter().map(|r| r.cycles).sum();
        self.window_cycles.saturating_sub(marked)
    }

    /// Renders a fixed-width table. Deterministic for identical traces: all
    /// numbers use fixed-precision formatting.
    pub fn render(&self, clock_ghz: f64) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<12} {:>7} {:>12} {:>10} {:>7}",
            "phase", "spans", "cycles", "us", "window"
        );
        for row in &self.rows {
            let us = row.cycles as f64 / (clock_ghz * 1e3);
            let pct = if self.window_cycles == 0 {
                0.0
            } else {
                100.0 * row.cycles as f64 / self.window_cycles as f64
            };
            let _ = writeln!(
                out,
                "{:<12} {:>7} {:>12} {:>10.3} {:>6.1}%",
                row.name, row.spans, row.cycles, us, pct
            );
        }
        let un = self.unattributed_cycles();
        let pct = if self.window_cycles == 0 {
            0.0
        } else {
            100.0 * un as f64 / self.window_cycles as f64
        };
        let _ = writeln!(
            out,
            "{:<12} {:>7} {:>12} {:>10.3} {:>6.1}%",
            "(other)",
            "-",
            un,
            un as f64 / (clock_ghz * 1e3),
            pct
        );
        let _ = writeln!(
            out,
            "{:<12} {:>7} {:>12} {:>10.3} {:>6.1}%",
            "window",
            "-",
            self.window_cycles,
            self.window_cycles as f64 / (clock_ghz * 1e3),
            100.0
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wse_arch::FabricPerf;

    fn trace_with_phases(phases: Vec<PhaseSpan>, window: u64) -> FabricTrace {
        FabricTrace {
            w: 1,
            h: 1,
            start_cycle: 0,
            end_cycle: window,
            phases,
            tiles: Vec::new(),
            perf: FabricPerf::default(),
        }
    }

    #[test]
    fn aggregates_by_name_in_first_seen_order() {
        let t = trace_with_phases(
            vec![
                PhaseSpan { name: "spmv", start: 0, end: 40 },
                PhaseSpan { name: "dot", start: 40, end: 60 },
                PhaseSpan { name: "checkpoint", start: 60, end: 60 },
                PhaseSpan { name: "spmv", start: 60, end: 110 },
            ],
            120,
        );
        let r = PhaseReport::from_trace(&t);
        assert_eq!(
            r.rows.iter().map(|x| x.name).collect::<Vec<_>>(),
            ["spmv", "dot", "checkpoint"]
        );
        assert_eq!(r.cycles("spmv"), 90);
        assert_eq!(r.spans("spmv"), 2);
        assert_eq!(r.cycles("checkpoint"), 0);
        assert_eq!(r.spans("checkpoint"), 1);
        assert_eq!(r.cycles("missing"), 0);
        assert_eq!(r.unattributed_cycles(), 120 - 110);
    }

    #[test]
    fn transport_markers_surface_as_counts() {
        let t = trace_with_phases(
            vec![
                PhaseSpan { name: "halo", start: 0, end: 40 },
                PhaseSpan { name: "link_retransmit", start: 25, end: 25 },
                PhaseSpan { name: "link_retransmit", start: 33, end: 33 },
                PhaseSpan { name: "halo_retry", start: 40, end: 40 },
                PhaseSpan { name: "rollback", start: 41, end: 41 },
            ],
            50,
        );
        let r = PhaseReport::from_trace(&t);
        assert_eq!(r.marker_counts(), [("link_retransmit", 2), ("halo_retry", 1), ("rollback", 1)]);
        // Markers never claim cycles: the halo phase keeps its 40.
        assert_eq!(r.cycles("halo"), 40);
        assert_eq!(r.unattributed_cycles(), 10);
    }

    #[test]
    fn overlap_attribution_spans_aggregate_alongside_the_merged_window() {
        // The overlapped multi-wafer driver emits one merged "spmv+halo"
        // span per window plus retroactive attribution sub-spans: the
        // hidden share at the window's head, the exposed share at its
        // tail. The report must keep all three rows separately so
        // hidden-vs-exposed wire time can be read without re-parsing raw
        // spans, and the attribution rows must never claim cycles the
        // merged window doesn't cover.
        let t = trace_with_phases(
            vec![
                PhaseSpan { name: "spmv+halo", start: 100, end: 300 },
                PhaseSpan { name: "halo_overlap", start: 100, end: 180 },
                PhaseSpan { name: "halo_exposed", start: 280, end: 300 },
                PhaseSpan { name: "spmv+halo", start: 350, end: 540 },
                PhaseSpan { name: "halo_overlap", start: 350, end: 420 },
            ],
            600,
        );
        let r = PhaseReport::from_trace(&t);
        assert_eq!(r.spans("spmv+halo"), 2);
        assert_eq!(r.cycles("spmv+halo"), 390);
        assert_eq!(r.cycles("halo_overlap"), 150);
        assert_eq!(r.cycles("halo_exposed"), 20);
        // Attribution stays inside the windows it annotates.
        assert!(r.cycles("halo_overlap") + r.cycles("halo_exposed") <= r.cycles("spmv+halo"));
        // A fully hidden exchange simply has no exposed row.
        let hidden_only = PhaseReport::from_trace(&trace_with_phases(
            vec![
                PhaseSpan { name: "spmv+halo", start: 0, end: 200 },
                PhaseSpan { name: "halo_overlap", start: 0, end: 90 },
            ],
            200,
        ));
        assert_eq!(hidden_only.cycles("halo_exposed"), 0);
        assert_eq!(hidden_only.spans("halo_exposed"), 0);
    }

    #[test]
    fn window_report_clips_spans_and_attributes_markers() {
        // Two back-to-back "jobs" on one fabric: job A runs [0, 60), job B
        // [60, 120). A span straddling the boundary is split between them.
        let t = trace_with_phases(
            vec![
                PhaseSpan { name: "spmv", start: 0, end: 50 },
                PhaseSpan { name: "dot", start: 50, end: 70 },
                PhaseSpan { name: "checkpoint", start: 55, end: 55 },
                PhaseSpan { name: "spmv", start: 70, end: 110 },
                PhaseSpan { name: "rollback", start: 80, end: 80 },
            ],
            120,
        );
        let a = PhaseReport::from_trace_window(&t, 0, 60);
        assert_eq!(a.cycles("spmv"), 50);
        assert_eq!(a.cycles("dot"), 10); // clipped at 60
        assert_eq!(a.marker_counts(), [("checkpoint", 1)]);
        assert_eq!(a.window_cycles, 60);

        let b = PhaseReport::from_trace_window(&t, 60, 120);
        assert_eq!(b.cycles("dot"), 10); // the other half
        assert_eq!(b.cycles("spmv"), 40);
        assert_eq!(b.marker_counts(), [("rollback", 1)]);

        // The two windows partition the full-trace attribution.
        let full = PhaseReport::from_trace(&t);
        for name in ["spmv", "dot"] {
            assert_eq!(a.cycles(name) + b.cycles(name), full.cycles(name), "{name}");
        }
    }

    #[test]
    fn window_report_clamps_to_the_trace() {
        let t = trace_with_phases(vec![PhaseSpan { name: "spmv", start: 10, end: 30 }], 40);
        let r = PhaseReport::from_trace_window(&t, 0, 1_000);
        assert_eq!(r.cycles("spmv"), 20);
        assert_eq!(r.window_cycles, 40);
        let empty = PhaseReport::from_trace_window(&t, 500, 600);
        assert_eq!(empty.rows.len(), 0);
        assert_eq!(empty.window_cycles, 0);
    }

    #[test]
    fn converts_cycles_to_paper_microseconds() {
        let t = trace_with_phases(vec![PhaseSpan { name: "spmv", start: 0, end: 900 }], 900);
        let r = PhaseReport::from_trace(&t);
        // 900 cycles at 0.9 GHz is exactly 1 µs.
        assert!((r.us("spmv", 0.9) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn render_is_deterministic_and_mentions_every_phase() {
        let t = trace_with_phases(
            vec![
                PhaseSpan { name: "spmv", start: 0, end: 40 },
                PhaseSpan { name: "allreduce", start: 40, end: 50 },
            ],
            50,
        );
        let r = PhaseReport::from_trace(&t);
        let a = r.render(0.9);
        assert_eq!(a, r.render(0.9));
        assert!(a.contains("spmv"));
        assert!(a.contains("allreduce"));
        assert!(a.contains("window"));
    }
}
