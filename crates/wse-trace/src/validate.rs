//! Cross-validation of traced phase timings against the analytic CS-1 model
//! and the paper's headline figures.
//!
//! The paper reports 28.1 µs per BiCGStab iteration on the full 600×595
//! wafer at 1.5 kW, with each fabric-spanning AllReduce under 1.5 µs. The
//! simulator runs much smaller fabrics, so the comparison is done in two
//! parts: per-phase measured-vs-predicted cycle counts at the *simulated*
//! dimensions (the model's per-z slopes are dimension-independent), and the
//! model's own extrapolation to the paper scale as context.

use crate::report::PhaseReport;
use perf_model::cs1::{Cs1Model, IterationPrediction};
use std::fmt::Write as _;

/// The paper's reported time per BiCGStab iteration at the headline
/// configuration (600×595×1536), in microseconds.
pub const PAPER_ITERATION_US: f64 = 28.1;

/// The paper's bound on one fabric-spanning AllReduce, in microseconds.
pub const PAPER_ALLREDUCE_US: f64 = 1.5;

/// One phase's measured-vs-predicted comparison.
#[derive(Copy, Clone, Debug)]
pub struct PhaseCheck {
    /// Phase name ("spmv", "dot", "update", "allreduce").
    pub phase: &'static str,
    /// Traced cycles per iteration.
    pub measured_cycles: f64,
    /// Analytic model's cycles per iteration.
    pub predicted_cycles: f64,
}

impl PhaseCheck {
    /// Relative error |measured − predicted| / predicted.
    pub fn rel_err(&self) -> f64 {
        if self.predicted_cycles == 0.0 {
            if self.measured_cycles == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.measured_cycles - self.predicted_cycles).abs() / self.predicted_cycles
        }
    }

    /// `true` if the relative error is within `tol` (e.g. `0.15` for 15%).
    pub fn within(&self, tol: f64) -> bool {
        self.rel_err() <= tol
    }
}

/// The full cross-validation result produced by [`cross_validate`].
#[derive(Clone, Debug)]
pub struct CrossValidation {
    /// Per-phase checks, in model order.
    pub checks: Vec<PhaseCheck>,
    /// Traced cycles per iteration summed over the checked phases.
    pub measured_iter_cycles: f64,
    /// Traced "scalar" bookkeeping cycles per iteration (the host-side
    /// recurrence; not part of the analytic model).
    pub scalar_cycles: f64,
    /// The analytic prediction at the simulated dimensions.
    pub prediction: IterationPrediction,
    /// The analytic prediction at the paper's headline configuration.
    pub headline: IterationPrediction,
    /// One fabric-spanning AllReduce at the paper scale, in µs.
    pub headline_allreduce_us: f64,
}

impl CrossValidation {
    /// `true` if every per-phase check is within `tol` relative error.
    pub fn all_within(&self, tol: f64) -> bool {
        self.checks.iter().all(|c| c.within(tol))
    }

    /// Renders the comparison table plus the paper-scale context lines.
    /// Deterministic: fixed-precision formatting throughout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<12} {:>14} {:>14} {:>9}",
            "phase", "measured", "predicted", "rel err"
        );
        for c in &self.checks {
            let _ = writeln!(
                out,
                "{:<12} {:>14.1} {:>14.1} {:>8.1}%",
                c.phase,
                c.measured_cycles,
                c.predicted_cycles,
                100.0 * c.rel_err()
            );
        }
        let _ = writeln!(
            out,
            "{:<12} {:>14.1} {:>14.1}",
            "total", self.measured_iter_cycles, self.prediction.total_cycles
        );
        let _ = writeln!(out, "{:<12} {:>14.1}", "scalar", self.scalar_cycles);
        let _ = writeln!(
            out,
            "paper scale: model {:.1} us/iter vs paper {PAPER_ITERATION_US} us; \
             allreduce {:.2} us vs paper bound {PAPER_ALLREDUCE_US} us",
            self.headline.time_us, self.headline_allreduce_us
        );
        out
    }
}

/// Compares `report`'s traced phase breakdown over `iters` iterations
/// against `model.predict_iteration(mx, my, z)`.
///
/// `model` should carry the *simulated* fabric dimensions (construct it as
/// `Cs1Model { fabric_w, fabric_h, ..Cs1Model::default() }`), because the
/// AllReduce term spans the whole fabric. The headline context always uses
/// the paper-scale default model.
///
/// # Panics
///
/// Panics if `iters` is zero.
pub fn cross_validate(
    report: &PhaseReport,
    iters: u64,
    model: &Cs1Model,
    mx: usize,
    my: usize,
    z: usize,
) -> CrossValidation {
    assert!(iters > 0, "cross-validation needs at least one iteration");
    let prediction = model.predict_iteration(mx, my, z);
    let per_iter = |name: &str| report.cycles(name) as f64 / iters as f64;
    let checks = vec![
        PhaseCheck {
            phase: "spmv",
            measured_cycles: per_iter("spmv"),
            predicted_cycles: prediction.spmv_cycles,
        },
        PhaseCheck {
            phase: "dot",
            measured_cycles: per_iter("dot"),
            predicted_cycles: prediction.dot_cycles,
        },
        PhaseCheck {
            phase: "update",
            measured_cycles: per_iter("update"),
            predicted_cycles: prediction.update_cycles,
        },
        PhaseCheck {
            phase: "allreduce",
            measured_cycles: per_iter("allreduce"),
            predicted_cycles: prediction.allreduce_cycles,
        },
    ];
    let paper = Cs1Model::default();
    let headline = paper.predict_headline();
    let headline_allreduce_us =
        paper.allreduce.time_us(paper.fabric_w, paper.fabric_h, paper.clock_ghz);
    CrossValidation {
        measured_iter_cycles: checks.iter().map(|c| c.measured_cycles).sum(),
        scalar_cycles: per_iter("scalar"),
        checks,
        prediction,
        headline,
        headline_allreduce_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::PhaseRow;

    fn report_from(rows: &[(&'static str, u64)], window: u64) -> PhaseReport {
        PhaseReport {
            rows: rows.iter().map(|&(name, cycles)| PhaseRow { name, spans: 1, cycles }).collect(),
            window_cycles: window,
        }
    }

    #[test]
    fn perfect_agreement_validates_at_any_tolerance() {
        let model = Cs1Model { fabric_w: 8, fabric_h: 8, ..Cs1Model::default() };
        let p = model.predict_iteration(8, 8, 64);
        let report = report_from(
            &[
                ("spmv", p.spmv_cycles.round() as u64),
                ("dot", p.dot_cycles.round() as u64),
                ("update", p.update_cycles.round() as u64),
                ("allreduce", p.allreduce_cycles.round() as u64),
            ],
            p.total_cycles.round() as u64,
        );
        let cv = cross_validate(&report, 1, &model, 8, 8, 64);
        assert!(cv.all_within(0.01), "{}", cv.render());
    }

    #[test]
    fn detects_disagreement_per_phase() {
        let model = Cs1Model { fabric_w: 8, fabric_h: 8, ..Cs1Model::default() };
        let p = model.predict_iteration(8, 8, 64);
        let report = report_from(
            &[
                ("spmv", (3.0 * p.spmv_cycles) as u64), // 200% off
                ("dot", p.dot_cycles.round() as u64),
                ("update", p.update_cycles.round() as u64),
                ("allreduce", p.allreduce_cycles.round() as u64),
            ],
            (3.0 * p.total_cycles) as u64,
        );
        let cv = cross_validate(&report, 1, &model, 8, 8, 64);
        assert!(!cv.all_within(0.15));
        let spmv = cv.checks.iter().find(|c| c.phase == "spmv").unwrap();
        assert!(spmv.rel_err() > 1.5);
        let dot = cv.checks.iter().find(|c| c.phase == "dot").unwrap();
        assert!(dot.within(0.01));
    }

    #[test]
    fn headline_context_tracks_the_paper_figures() {
        let report = report_from(&[("spmv", 100)], 100);
        let cv = cross_validate(&report, 1, &Cs1Model::default(), 8, 8, 64);
        // The default model was calibrated to land near the paper numbers.
        assert!((cv.headline.time_us - PAPER_ITERATION_US).abs() / PAPER_ITERATION_US < 0.15);
        assert!(cv.headline_allreduce_us < PAPER_ALLREDUCE_US);
    }

    #[test]
    fn iterations_normalize_measured_cycles() {
        let model = Cs1Model { fabric_w: 8, fabric_h: 8, ..Cs1Model::default() };
        let p = model.predict_iteration(8, 8, 64);
        let report = report_from(&[("spmv", 10 * p.spmv_cycles.round() as u64)], 0);
        let cv = cross_validate(&report, 10, &model, 8, 8, 64);
        let spmv = cv.checks.iter().find(|c| c.phase == "spmv").unwrap();
        assert!(spmv.within(0.01));
    }
}
