//! Per-tile utilization heatmaps (CSV and ASCII) and the fabric-wide
//! stall-cause breakdown table.

use std::fmt::Write as _;
use wse_arch::{FabricTrace, StallCause};

/// Shade ramp for ASCII heatmaps, low to high utilization.
const RAMP: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];

/// Per-tile datapath utilization as CSV: a `y\x` header row, then one row
/// per tile row with utilization in `[0,1]` at 4 decimal places.
pub fn utilization_csv(trace: &FabricTrace) -> String {
    let mut out = String::new();
    out.push_str("y\\x");
    for x in 0..trace.w {
        let _ = write!(out, ",{x}");
    }
    out.push('\n');
    for y in 0..trace.h {
        let _ = write!(out, "{y}");
        for x in 0..trace.w {
            let _ = write!(out, ",{:.4}", trace.tile(x, y).utilization());
        }
        out.push('\n');
    }
    out
}

/// Per-tile utilization as an ASCII shade map (one character per tile, one
/// line per row), with a legend line.
pub fn utilization_ascii(trace: &FabricTrace) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "utilization heatmap {}x{} (' '=0% .. '@'=100%)", trace.w, trace.h);
    for y in 0..trace.h {
        for x in 0..trace.w {
            let u = trace.tile(x, y).utilization();
            let idx = ((u * RAMP.len() as f64) as usize).min(RAMP.len() - 1);
            out.push(RAMP[idx]);
        }
        out.push('\n');
    }
    out
}

/// Fabric-wide stall-cause cycle attribution as a fixed-width table, with
/// each cause's share of all non-issuing cycles.
pub fn stall_breakdown(trace: &FabricTrace) -> String {
    let totals = trace.stall_totals();
    let sum: u64 = totals.iter().sum();
    let mut out = String::new();
    let _ = writeln!(out, "{:<14} {:>14} {:>7}", "stall cause", "cycles", "share");
    for cause in StallCause::ALL {
        let n = totals[cause.index()];
        let pct = if sum == 0 { 0.0 } else { 100.0 * n as f64 / sum as f64 };
        let _ = writeln!(out, "{:<14} {:>14} {:>6.1}%", cause.label(), n, pct);
    }
    let bp = trace.perf.backpressure_total();
    let _ = writeln!(out, "{:<14} {:>14}", "router bp", bp);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wse_arch::{FabricPerf, OpClass, TileTrace};

    fn trace_2x2(busy: [u64; 4]) -> FabricTrace {
        let tiles = (0..4)
            .map(|i| TileTrace {
                x: i % 2,
                y: i / 2,
                events: Vec::new(),
                dropped_events: 0,
                stall: [3, 2, 0, 5],
                retired: [0; OpClass::COUNT],
                busy_cycles: busy[i],
                idle_cycles: 10 - busy[i],
                flits_routed: 0,
                backpressure: [0; 5],
            })
            .collect();
        FabricTrace {
            w: 2,
            h: 2,
            start_cycle: 0,
            end_cycle: 10,
            phases: Vec::new(),
            tiles,
            perf: FabricPerf::default(),
        }
    }

    #[test]
    fn csv_has_header_and_one_row_per_tile_row() {
        let csv = utilization_csv(&trace_2x2([10, 5, 0, 10]));
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "y\\x,0,1");
        assert_eq!(lines[1], "0,1.0000,0.5000");
        assert_eq!(lines[2], "1,0.0000,1.0000");
    }

    #[test]
    fn ascii_shades_extremes() {
        let art = utilization_ascii(&trace_2x2([10, 0, 5, 10]));
        let lines: Vec<_> = art.lines().collect();
        assert_eq!(lines[1], "@ ");
        assert_eq!(lines[2], "+@");
    }

    #[test]
    fn stall_breakdown_lists_every_cause_with_shares() {
        let table = stall_breakdown(&trace_2x2([5, 5, 5, 5]));
        for cause in StallCause::ALL {
            assert!(table.contains(cause.label()), "missing {}", cause.label());
        }
        // 4 tiles x (3 fifo_wait of 10 total stall cycles) = 30%.
        assert!(table.contains("30.0%"), "{table}");
    }
}
