//! Chrome/Perfetto trace-event export.
//!
//! Emits the JSON array flavor of the [Trace Event Format], loadable in
//! `ui.perfetto.dev` or `chrome://tracing`. Timestamps are **fabric cycles**
//! written into the format's microsecond field, so 1 displayed µs = 1 cycle
//! (at the paper's 0.9 GHz wall time is cycles / 900). Keeping the unit
//! integral makes repeated exports byte-for-byte identical, which the
//! determinism smoke test diffs.
//!
//! Track layout: everything is one process (pid 0). Thread 0 carries the
//! driver phase spans and instant markers; thread `1 + y·w + x` carries tile
//! `(x, y)`'s main-thread task slices, reconstructed from the
//! `TaskStart`/`TaskEnd` event stream.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::json::{self, Json};
use std::collections::HashMap;
use std::fmt::Write as _;
use wse_arch::{FabricTrace, TileTrace, TraceEventKind};

/// Serializes `trace` as a Chrome trace-event JSON array.
pub fn export_trace_json(trace: &FabricTrace) -> String {
    let mut events: Vec<String> = Vec::new();

    events.push(format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
         \"args\":{{\"name\":\"wafer {}x{}\"}}}}",
        trace.w, trace.h
    ));
    events.push(
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
         \"args\":{\"name\":\"phases\"}}"
            .to_string(),
    );

    for span in &trace.phases {
        if span.is_marker() {
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"marker\",\"ph\":\"i\",\"pid\":0,\"tid\":0,\
                 \"ts\":{},\"s\":\"p\"}}",
                json::escape(span.name),
                span.start
            ));
        } else {
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"phase\",\"ph\":\"X\",\"pid\":0,\"tid\":0,\
                 \"ts\":{},\"dur\":{}}}",
                json::escape(span.name),
                span.start,
                span.cycles()
            ));
        }
    }

    for tile in &trace.tiles {
        if tile.events.is_empty() {
            continue;
        }
        let tid = 1 + tile.y * trace.w + tile.x;
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
             \"args\":{{\"name\":\"tile ({},{})\"}}}}",
            tile.x, tile.y
        ));
        emit_tile_slices(&mut events, tile, tid, trace.end_cycle);
    }

    let mut out = String::with_capacity(events.iter().map(|e| e.len() + 4).sum::<usize>() + 4);
    out.push_str("[\n");
    for (i, ev) in events.iter().enumerate() {
        out.push_str("  ");
        out.push_str(ev);
        if i + 1 != events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Reconstructs main-thread task slices from a tile's event stream. The core
/// runs one main-thread task at a time, so starts and ends pair
/// sequentially; an end whose start was evicted from the ring is skipped,
/// and a start still open when the trace was taken closes at `end_cycle`.
fn emit_tile_slices(events: &mut Vec<String>, tile: &TileTrace, tid: usize, end_cycle: u64) {
    let mut open: Option<(u64, wse_arch::types::TaskId, &'static str)> = None;
    for ev in &tile.events {
        match ev.kind {
            TraceEventKind::TaskStart { task, name } => {
                if let Some((start, t, n)) = open.take() {
                    // The matching end was lost (ring eviction); close the
                    // slice where the next one begins so tracks stay sane.
                    push_slice(events, tid, n, t, start, ev.cycle);
                }
                open = Some((ev.cycle, task, name));
            }
            TraceEventKind::TaskEnd { task } => {
                if let Some((start, t, n)) = open {
                    if t == task {
                        push_slice(events, tid, n, t, start, ev.cycle);
                        open = None;
                    }
                }
            }
        }
    }
    if let Some((start, t, n)) = open {
        push_slice(events, tid, n, t, start, end_cycle);
    }
}

fn push_slice(
    events: &mut Vec<String>,
    tid: usize,
    name: &str,
    task: wse_arch::types::TaskId,
    start: u64,
    end: u64,
) {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"name\":\"{}\",\"cat\":\"task\",\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\
         \"ts\":{start},\"dur\":{},\"args\":{{\"task\":{task}}}}}",
        json::escape(name),
        end.saturating_sub(start)
    );
    events.push(s);
}

/// Summary statistics from a validated trace document.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct TraceJsonStats {
    /// Total events in the array.
    pub events: usize,
    /// Complete (`"X"`) slices.
    pub slices: usize,
    /// Instant (`"i"`) markers.
    pub instants: usize,
    /// Metadata (`"M"`) records.
    pub metadata: usize,
    /// Largest timestamp seen (cycles).
    pub max_ts: f64,
}

/// Checks that `doc` is a well-formed Chrome trace: a JSON array of event
/// objects, every event carrying `name`/`ph`, timed events carrying a
/// non-negative `ts` (and `dur` for slices), and per-track (`pid`,`tid`)
/// timestamps monotonically nondecreasing in emission order.
pub fn validate_trace_json(doc: &str) -> Result<TraceJsonStats, String> {
    let parsed = json::parse(doc)?;
    let events = parsed.as_arr().ok_or("top level is not an array")?;
    if events.is_empty() {
        return Err("trace has no events".to_string());
    }
    let mut stats = TraceJsonStats::default();
    let mut last_ts: HashMap<(i64, i64), f64> = HashMap::new();
    for (i, ev) in events.iter().enumerate() {
        let ctx = |field: &str| format!("event {i}: bad or missing '{field}'");
        if !matches!(ev, Json::Obj(_)) {
            return Err(format!("event {i}: not an object"));
        }
        ev.get("name").and_then(Json::as_str).ok_or_else(|| ctx("name"))?;
        let ph = ev.get("ph").and_then(Json::as_str).ok_or_else(|| ctx("ph"))?;
        stats.events += 1;
        match ph {
            "M" => {
                stats.metadata += 1;
                continue;
            }
            "X" => stats.slices += 1,
            "i" => stats.instants += 1,
            other => return Err(format!("event {i}: unexpected phase '{other}'")),
        }
        let ts = ev.get("ts").and_then(Json::as_num).ok_or_else(|| ctx("ts"))?;
        if ts.is_nan() || ts < 0.0 {
            return Err(format!("event {i}: negative or NaN ts {ts}"));
        }
        if ph == "X" {
            let dur = ev.get("dur").and_then(Json::as_num).ok_or_else(|| ctx("dur"))?;
            if dur.is_nan() || dur < 0.0 {
                return Err(format!("event {i}: negative or NaN dur {dur}"));
            }
            stats.max_ts = stats.max_ts.max(ts + dur);
        }
        stats.max_ts = stats.max_ts.max(ts);
        let pid = ev.get("pid").and_then(Json::as_num).ok_or_else(|| ctx("pid"))? as i64;
        let tid = ev.get("tid").and_then(Json::as_num).ok_or_else(|| ctx("tid"))? as i64;
        let last = last_ts.entry((pid, tid)).or_insert(ts);
        if ts < *last {
            return Err(format!(
                "event {i}: ts {ts} goes backwards on track ({pid},{tid}) after {last}"
            ));
        }
        *last = ts;
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wse_arch::{FabricPerf, OpClass, PhaseSpan, StallCause, TraceEvent};

    fn tile(x: usize, y: usize, events: Vec<TraceEvent>) -> TileTrace {
        TileTrace {
            x,
            y,
            events,
            dropped_events: 0,
            stall: [0; StallCause::COUNT],
            retired: [0; OpClass::COUNT],
            busy_cycles: 0,
            idle_cycles: 0,
            flits_routed: 0,
            backpressure: [0; 5],
        }
    }

    fn sample_trace() -> FabricTrace {
        FabricTrace {
            w: 2,
            h: 1,
            start_cycle: 0,
            end_cycle: 100,
            phases: vec![
                PhaseSpan { name: "spmv", start: 0, end: 60 },
                PhaseSpan { name: "checkpoint", start: 60, end: 60 },
                PhaseSpan { name: "dot", start: 60, end: 100 },
            ],
            tiles: vec![
                tile(
                    0,
                    0,
                    vec![
                        TraceEvent {
                            cycle: 5,
                            kind: TraceEventKind::TaskStart { task: 0, name: "spmv" },
                        },
                        TraceEvent { cycle: 50, kind: TraceEventKind::TaskEnd { task: 0 } },
                        // End whose start was evicted: must be skipped.
                        TraceEvent { cycle: 55, kind: TraceEventKind::TaskEnd { task: 3 } },
                        // Start left open: closes at end_cycle.
                        TraceEvent {
                            cycle: 70,
                            kind: TraceEventKind::TaskStart { task: 1, name: "dot" },
                        },
                    ],
                ),
                tile(1, 0, vec![]),
            ],
            perf: FabricPerf::default(),
        }
    }

    #[test]
    fn export_validates_and_counts_slices() {
        let doc = export_trace_json(&sample_trace());
        let stats = validate_trace_json(&doc).unwrap();
        // Phase spans: spmv + dot. Tile slices: spmv (closed) + dot (open,
        // closed at end_cycle). The orphan TaskEnd contributes nothing.
        assert_eq!(stats.slices, 4);
        assert_eq!(stats.instants, 1);
        assert_eq!(stats.metadata, 3, "process + phases thread + one active tile");
        assert_eq!(stats.max_ts, 100.0);
    }

    #[test]
    fn export_is_deterministic() {
        let t = sample_trace();
        assert_eq!(export_trace_json(&t), export_trace_json(&t));
    }

    #[test]
    fn validator_rejects_backwards_timestamps() {
        let doc = r#"[
          {"name":"a","ph":"X","pid":0,"tid":0,"ts":10,"dur":5},
          {"name":"b","ph":"X","pid":0,"tid":0,"ts":3,"dur":1}
        ]"#;
        let err = validate_trace_json(doc).unwrap_err();
        assert!(err.contains("backwards"), "{err}");
    }

    #[test]
    fn validator_rejects_missing_fields_and_bad_phase() {
        assert!(validate_trace_json("[]").is_err());
        assert!(validate_trace_json(r#"[{"ph":"X"}]"#).is_err());
        assert!(validate_trace_json(r#"[{"name":"a","ph":"Z","ts":0}]"#).is_err());
        assert!(
            validate_trace_json(r#"[{"name":"a","ph":"X","pid":0,"tid":0,"ts":1}]"#).is_err(),
            "slice without dur"
        );
    }
}
