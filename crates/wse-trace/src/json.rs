//! A minimal JSON parser, used to validate exported Perfetto traces.
//!
//! The build environment is offline (no serde), so well-formedness checking
//! of the hand-serialized `trace.json` is done with this self-contained
//! recursive-descent parser. It accepts standard JSON (RFC 8259) minus
//! niceties we never emit (it rejects lone surrogates rather than replacing
//! them).

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as key/value pairs in source order (duplicates kept).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object (first occurrence); `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (rejects trailing garbage).
pub fn parse(src: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: src.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            let ch = char::from_u32(cp)
                                .ok_or_else(|| format!("invalid \\u escape {cp:#x}"))?;
                            out.push(ch);
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(format!("raw control byte {c:#x} in string"));
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar (input is a &str, so this is
                    // always well-formed).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end]).map_err(|e| e.to_string())?;
        let cp = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number '{text}'"))
    }
}

/// Escapes `s` for inclusion inside a JSON string literal (no quotes added).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"s": "hi\nthere", "t": true}, "n": null}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_num(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("s").unwrap().as_str(), Some("hi\nthere"));
        assert_eq!(v.get("b").unwrap().get("t"), Some(&Json::Bool(true)));
        assert_eq!(v.get("n"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("[1,").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("[1] extra").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("01x").is_err());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let raw = "a\"b\\c\nd\te\u{1}";
        let doc = format!("\"{}\"", escape(raw));
        assert_eq!(parse(&doc).unwrap(), Json::Str(raw.to_string()));
    }
}
