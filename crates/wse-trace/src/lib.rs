//! Exporters and analysis for wafer-simulator traces.
//!
//! The `wse-arch` simulator collects per-tile events, stall-cause cycle
//! attribution, retire counts, and driver-marked phases into a
//! [`wse_arch::FabricTrace`] snapshot (see `Fabric::arm_trace` /
//! `Fabric::take_trace`). This crate turns that snapshot into artifacts:
//!
//! * [`perfetto`] — Chrome/Perfetto `trace.json` export plus a validator
//!   built on the self-contained [`json`] parser (the build is offline, so
//!   no serde),
//! * [`heatmap`] — per-tile utilization as CSV and ASCII, and the
//!   fabric-wide stall breakdown,
//! * [`report`] — cycles-per-phase aggregation convertible to µs at the
//!   paper's 0.9 GHz clock,
//! * [`validate`] — cross-validation of traced phase timings against the
//!   analytic `perf-model` CS-1 prediction and the paper's 28.1 µs
//!   iteration / <1.5 µs AllReduce figures.
//!
//! Collection itself stays in `wse-arch` so the hooks can live next to the
//! machine model; this crate only consumes the immutable snapshot.

#![warn(missing_docs)]

pub mod heatmap;
pub mod json;
pub mod perfetto;
pub mod report;
pub mod validate;

pub use heatmap::{stall_breakdown, utilization_ascii, utilization_csv};
pub use perfetto::{export_trace_json, validate_trace_json, TraceJsonStats};
pub use report::{PhaseReport, PhaseRow};
pub use validate::{
    cross_validate, CrossValidation, PhaseCheck, PAPER_ALLREDUCE_US, PAPER_ITERATION_US,
};
