//! The processor core: task scheduler, background threads, and the shared
//! SIMD datapath.
//!
//! Execution model, from the paper:
//!
//! * "Code consists of tasks that react to events. Tasks are triggered by
//!   other tasks, or by arriving data words."
//! * "An instruction with tensor operands can run synchronously or ... as a
//!   background thread that shares the datapath with other threads including
//!   the main one. ... The core supports nine concurrent threads of
//!   execution."
//! * "The hardware directly implements scheduling activities that would
//!   normally be performed by an operating system."
//!
//! The cycle model: each cycle the core may retire one *control* statement
//! of the running task (task/DSR bookkeeping, register arithmetic, thread
//! launch) and may issue the datapath to exactly one runnable thread
//! (round-robin), which processes up to its SIMD width of elements, stalling
//! on fabric/FIFO availability.

use crate::dsr::{Descriptor, Dsr};
use crate::fifo::Fifo;
use crate::instr::{ColorBinding, Op, RegOp, Stmt, Task, TaskAction, TensorInstr};
use crate::memory::{Memory, TILE_SRAM_BYTES};
use crate::sanitize::CoreSanitizer;
use crate::trace::{CoreTrace, StallCause};
use crate::types::{
    Color, DsrId, Dtype, FifoId, Flit, TaskId, NUM_COLORS, NUM_REGS, NUM_THREADS, QUEUE_CAPACITY,
    RAMP_OUT_CAPACITY, SIMD_F16, SIMD_F32, SIMD_MIXED,
};
use std::collections::VecDeque;
use wse_float::F16;

/// Performance counters for one core.
#[derive(Copy, Clone, Debug, Default)]
pub struct CorePerf {
    /// Cycles in which the datapath issued at least one element.
    pub busy_cycles: u64,
    /// Cycles in which the datapath had nothing runnable.
    pub idle_cycles: u64,
    /// fp16 floating-point operations executed.
    pub flops_f16: u64,
    /// fp32 floating-point operations executed.
    pub flops_f32: u64,
    /// Flits injected into the fabric.
    pub flits_sent: u64,
    /// Flits consumed from the fabric.
    pub flits_received: u64,
    /// Control statements retired.
    pub ctrl_stmts: u64,
}

/// Snapshot of a core's persistent scheduler state at a quiescent point
/// (see [`Core::sched_state`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SchedSnapshot {
    dsr_pos: Vec<u32>,
    task_flags: Vec<(bool, bool)>,
}

#[derive(Clone, Debug)]
struct TaskState {
    task: Task,
    activated: bool,
    blocked: bool,
}

#[derive(Clone, Debug)]
struct ActiveInstr {
    instr: TensorInstr,
    on_complete: Option<(TaskId, TaskAction)>,
}

#[derive(Clone, Debug)]
struct RunningTask {
    id: TaskId,
    pc: usize,
    /// A synchronous instruction the task is waiting on.
    exec: Option<ActiveInstr>,
}

/// One tile's core.
#[derive(Clone, Debug)]
pub struct Core {
    /// Scalar register file (fp32).
    pub regs: [f32; NUM_REGS],
    dsrs: Vec<Dsr>,
    fifos: Vec<Fifo>,
    tasks: Vec<TaskState>,
    bindings: Vec<ColorBinding>,
    main: Option<RunningTask>,
    threads: [Option<ActiveInstr>; NUM_THREADS],
    rr_cursor: usize,
    /// Tasks the host is expected to activate externally (entry points).
    /// Purely declarative — recorded by kernel builders so static analysis
    /// knows where control can enter; the simulator never reads it.
    entries: Vec<TaskId>,
    /// Words received from the router, one queue per color.
    ramp_in: Vec<VecDeque<Flit>>,
    /// Words awaiting injection into the router, one queue per color (the
    /// hardware gives every fabric color its own egress queue). Injection
    /// round-robins across non-empty colors so a thin stream (e.g. a seam
    /// halo) is never starved behind a bulk stream sharing the ramp.
    ramp_out: Vec<VecDeque<Flit>>,
    /// Round-robin cursor over `ramp_out` colors.
    ramp_rr: usize,
    /// Performance counters.
    pub perf: CorePerf,
    /// Armed trace collection; `None` (the default) keeps every hook on a
    /// one-pointer-test fast path (the same idiom as fault arming).
    trace: Option<Box<CoreTrace>>,
    /// Armed runtime sanitizer (shadow SRAM access marks and channel-wait
    /// streaks); same arming idiom as `trace`.
    sanitize: Option<Box<CoreSanitizer>>,
}

impl Default for Core {
    fn default() -> Core {
        Core::new()
    }
}

impl Core {
    /// A fresh core with empty task table and register file.
    pub fn new() -> Core {
        Core {
            regs: [0.0; NUM_REGS],
            dsrs: Vec::new(),
            fifos: Vec::new(),
            tasks: Vec::new(),
            bindings: Vec::new(),
            main: None,
            threads: Default::default(),
            rr_cursor: 0,
            entries: Vec::new(),
            ramp_in: (0..NUM_COLORS).map(|_| VecDeque::new()).collect(),
            ramp_out: (0..NUM_COLORS).map(|_| VecDeque::new()).collect(),
            ramp_rr: 0,
            perf: CorePerf::default(),
            trace: None,
            sanitize: None,
        }
    }

    /// Arms per-core trace collection, stamping events from `now` (the
    /// fabric clock at arm time). Re-arming replaces prior state.
    pub fn arm_trace(&mut self, now: u64, ring_capacity: usize) {
        self.trace = Some(Box::new(CoreTrace::new(now, ring_capacity)));
    }

    /// `true` while trace collection is armed.
    pub fn trace_armed(&self) -> bool {
        self.trace.is_some()
    }

    /// The armed trace state, if any (diagnostic access).
    pub fn trace(&self) -> Option<&CoreTrace> {
        self.trace.as_deref()
    }

    /// Disarms tracing and returns the collected state, if armed.
    pub fn take_trace(&mut self) -> Option<Box<CoreTrace>> {
        self.trace.take()
    }

    /// Arms the runtime sanitizer, stamping from `now` (the fabric clock at
    /// arm time). Re-arming replaces prior shadow state.
    pub fn arm_sanitizer(&mut self, now: u64) {
        self.sanitize = Some(Box::new(CoreSanitizer::new(now, TILE_SRAM_BYTES as usize)));
    }

    /// `true` while the sanitizer is armed.
    pub fn sanitizer_armed(&self) -> bool {
        self.sanitize.is_some()
    }

    /// The armed sanitizer state, if any (diagnostic access).
    pub fn sanitizer(&self) -> Option<&CoreSanitizer> {
        self.sanitize.as_deref()
    }

    /// Disarms the sanitizer and returns the collected state, if armed.
    pub fn take_sanitizer(&mut self) -> Option<Box<CoreSanitizer>> {
        self.sanitize.take()
    }

    /// Registers a DSR, returning its id.
    pub fn add_dsr(&mut self, desc: Descriptor) -> DsrId {
        self.dsrs.push(Dsr::new(desc));
        self.dsrs.len() - 1
    }

    /// Reads a DSR's state (test/diagnostic access).
    pub fn dsr(&self, id: DsrId) -> &Dsr {
        &self.dsrs[id]
    }

    /// Registers a hardware FIFO, returning its id.
    pub fn add_fifo(&mut self, fifo: Fifo) -> FifoId {
        self.fifos.push(fifo);
        self.fifos.len() - 1
    }

    /// Reads a FIFO's state (test/diagnostic access).
    pub fn fifo(&self, id: FifoId) -> &Fifo {
        &self.fifos[id]
    }

    /// Registers a task, returning its id.
    pub fn add_task(&mut self, task: Task) -> TaskId {
        let st = TaskState { activated: task.start_activated, blocked: task.start_blocked, task };
        self.tasks.push(st);
        self.tasks.len() - 1
    }

    /// Replaces a task's body. Kernel builders use this when a task must
    /// exist (so FIFOs/triggers can name it) before the DSRs its body
    /// references have been created.
    ///
    /// # Panics
    /// Panics if the task is currently running.
    pub fn set_task_body(&mut self, task: TaskId, body: Vec<Stmt>) {
        assert!(
            self.main.as_ref().is_none_or(|r| r.id != task),
            "cannot rewrite the body of a running task"
        );
        self.tasks[task].task.body = body;
    }

    /// Binds arriving data on `color` to activate `task`.
    pub fn bind_color(&mut self, color: Color, task: TaskId) {
        self.bindings.push(ColorBinding { color, task });
    }

    /// Externally activates a task (the host-side "go" signal).
    pub fn activate(&mut self, task: TaskId) {
        self.tasks[task].activated = true;
    }

    /// Externally re-blocks a task, clearing any pending activation — the
    /// host-side reset of a two-way barrier. Drivers use this to re-arm
    /// wait tasks whose `Unblock` half fired in a phase where the
    /// `Activate` half intentionally never would (e.g. a compute
    /// calibration run with communication disabled).
    pub fn block(&mut self, task: TaskId) {
        self.tasks[task].blocked = true;
        self.tasks[task].activated = false;
    }

    /// Declares `task` an entry point the host will activate externally.
    /// Kernel builders call this for every task they hand back to host-side
    /// drivers, so the static verifier can seed its reachability analysis.
    pub fn mark_entry(&mut self, task: TaskId) {
        if !self.entries.contains(&task) {
            self.entries.push(task);
        }
    }

    /// Tasks declared as host-activated entry points (see
    /// [`Core::mark_entry`]).
    pub fn entry_tasks(&self) -> &[TaskId] {
        &self.entries
    }

    /// Number of registered tasks.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Read-only view of a task's program (body, priority, name).
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id].task
    }

    /// Iterates every registered task with its id.
    pub fn tasks(&self) -> impl Iterator<Item = (TaskId, &Task)> {
        self.tasks.iter().enumerate().map(|(id, st)| (id, &st.task))
    }

    /// Current blocked flag of a task (equals `start_blocked` before the
    /// first cycle, which is when the linter looks).
    pub fn task_blocked(&self, id: TaskId) -> bool {
        self.tasks[id].blocked
    }

    /// Current activation flag of a task.
    pub fn task_activated(&self, id: TaskId) -> bool {
        self.tasks[id].activated
    }

    /// The color → task data-trigger bindings.
    pub fn bindings(&self) -> &[ColorBinding] {
        &self.bindings
    }

    /// Number of registered DSRs.
    pub fn num_dsrs(&self) -> usize {
        self.dsrs.len()
    }

    /// Iterates every DSR with its id.
    pub fn dsrs(&self) -> impl Iterator<Item = (DsrId, &Dsr)> {
        self.dsrs.iter().enumerate()
    }

    /// Number of registered FIFOs.
    pub fn num_fifos(&self) -> usize {
        self.fifos.len()
    }

    /// Iterates every FIFO with its id.
    pub fn fifos(&self) -> impl Iterator<Item = (FifoId, &Fifo)> {
        self.fifos.iter().enumerate()
    }

    /// Applies a scheduling action to a task.
    fn apply_action(&mut self, task: TaskId, action: TaskAction) {
        match action {
            TaskAction::Activate => self.tasks[task].activated = true,
            TaskAction::Block => self.tasks[task].blocked = true,
            TaskAction::Unblock => self.tasks[task].blocked = false,
        }
    }

    /// `true` when nothing is running or runnable and no output is pending.
    pub fn is_quiescent(&self) -> bool {
        self.main.is_none()
            && self.threads.iter().all(|t| t.is_none())
            && self.ramp_out.iter().all(|q| q.is_empty())
            && self.tasks.iter().all(|t| !t.activated || t.blocked)
    }

    /// `true` when undelivered ramp-in data sits on a color with a task
    /// binding — the one condition under which a quiescent core can wake
    /// itself on a future step (via the data trigger). The fabric's
    /// activity set must keep such a tile live even though
    /// [`Core::is_quiescent`] holds.
    pub fn has_pending_bound_data(&self) -> bool {
        self.bindings.iter().any(|b| !self.ramp_in[b.color as usize].is_empty())
    }

    /// Accounts `n` cycles the fabric *skipped* stepping this core because
    /// it was provably quiescent. A quiescent core's step is pure idle —
    /// no trigger fires, nothing schedules, the datapath records one idle
    /// cycle (stall cause `Idle` when traced) and the trace clock advances
    /// — so batching the bookkeeping is bit-identical to stepping.
    pub(crate) fn account_idle(&mut self, n: u64) {
        if n == 0 {
            return;
        }
        self.perf.idle_cycles += n;
        if let Some(tr) = self.trace.as_deref_mut() {
            tr.stall[StallCause::Idle.index()] += n;
            tr.now += n;
        }
        if let Some(san) = self.sanitize.as_deref_mut() {
            san.now += n;
        }
    }

    /// Space left in the ramp-in queue for `color` (router-side check).
    pub fn ramp_in_space(&self, color: Color) -> usize {
        QUEUE_CAPACITY - self.ramp_in[color as usize].len()
    }

    /// Delivers a flit from the router to the core.
    ///
    /// # Panics
    /// Panics if the queue is full (the router must check first).
    pub fn deliver(&mut self, color: Color, flit: Flit) {
        assert!(self.ramp_in_space(color) > 0, "ramp-in overflow on color {color}");
        self.ramp_in[color as usize].push_back(flit);
    }

    /// The next color the round-robin injection arbiter would serve, if
    /// any queue is non-empty.
    fn ramp_out_next_color(&self) -> Option<usize> {
        let n = self.ramp_out.len();
        (0..n).map(|i| (self.ramp_rr + i) % n).find(|&c| !self.ramp_out[c].is_empty())
    }

    /// Takes up to `budget_bytes` of injection from the core (router-side).
    pub fn drain_ramp_out(&mut self, budget_bytes: u32) -> Vec<(Color, Flit)> {
        let mut out = Vec::new();
        let mut budget = budget_bytes;
        while let Some((color, flit)) = self.peek_ramp_out() {
            if flit.bytes() > budget {
                break;
            }
            budget -= flit.bytes();
            self.pop_ramp_out();
            out.push((color, flit));
        }
        out
    }

    /// Pops the arbiter's head injection flit without allocating
    /// (router-side; pair with [`Core::peek_ramp_out`] after bandwidth and
    /// space checks).
    pub fn pop_ramp_out(&mut self) -> Option<(Color, Flit)> {
        let c = self.ramp_out_next_color()?;
        let flit = self.ramp_out[c].pop_front().unwrap();
        self.ramp_rr = (c + 1) % self.ramp_out.len();
        Some((c as Color, flit))
    }

    /// Pending injection queue length across all colors (diagnostics).
    pub fn ramp_out_len(&self) -> usize {
        self.ramp_out.iter().map(|q| q.len()).sum()
    }

    /// Peeks the flit the round-robin injection arbiter would send next,
    /// without removing it (router-side).
    pub fn peek_ramp_out(&self) -> Option<(Color, Flit)> {
        let c = self.ramp_out_next_color()?;
        Some((c as Color, self.ramp_out[c][0]))
    }

    /// Pops the first flit (in round-robin arbiter order) that fits
    /// `budget` bytes and whose color passes `ready` — a blocked color
    /// does not head-of-line-block the other colors' queues.
    pub fn pop_ramp_out_ready(
        &mut self,
        budget: u32,
        ready: impl Fn(Color) -> bool,
    ) -> Option<(Color, Flit)> {
        let n = self.ramp_out.len();
        for i in 0..n {
            let c = (self.ramp_rr + i) % n;
            if let Some(&flit) = self.ramp_out[c].front() {
                if flit.bytes() <= budget && ready(c as Color) {
                    self.ramp_out[c].pop_front();
                    self.ramp_rr = (c + 1) % n;
                    return Some((c as Color, flit));
                }
            }
        }
        None
    }

    /// Unconsumed ramp-in words (diagnostics; should be zero after a
    /// well-formed program quiesces).
    pub fn ramp_in_residue(&self) -> usize {
        self.ramp_in.iter().map(|q| q.len()).sum()
    }

    /// Name of the task currently occupying the main thread, if any
    /// (stall diagnostics).
    pub fn current_task_name(&self) -> Option<&'static str> {
        self.main.as_ref().map(|r| self.tasks[r.id].task.name)
    }

    /// Number of occupied background-thread slots (stall diagnostics).
    pub fn active_threads(&self) -> usize {
        self.threads.iter().filter(|t| t.is_some()).count()
    }

    /// Clears all transient execution state — running task, background
    /// threads, ramp queues, FIFO contents — and rewinds every task's
    /// scheduling flags to its declared start state and every DSR cursor to
    /// zero. Programs, routes-side bindings, registers, perf counters, and
    /// armed trace state (including its monotone cycle stamp) are retained.
    ///
    /// This is the core half of checkpoint restore: after a fault wedges
    /// the fabric mid-phase, the recovery layer calls this and then
    /// [`Core::restore_sched_state`] with a snapshot taken at a quiescent
    /// iteration boundary.
    pub fn reset_transient(&mut self) {
        self.main = None;
        self.threads = Default::default();
        self.rr_cursor = 0;
        for q in &mut self.ramp_in {
            q.clear();
        }
        for q in &mut self.ramp_out {
            q.clear();
        }
        self.ramp_rr = 0;
        for t in &mut self.tasks {
            t.activated = t.task.start_activated;
            t.blocked = t.task.start_blocked;
        }
        for d in &mut self.dsrs {
            d.reset();
        }
        for f in &mut self.fifos {
            f.clear();
        }
    }

    /// Snapshots the scheduler-visible state that persists across quiescent
    /// points: DSR cursors (accumulator descriptors deliberately keep their
    /// position between instructions) and per-task activation/blocked
    /// flags (protocols park tasks in specific block states between
    /// phases).
    pub fn sched_state(&self) -> SchedSnapshot {
        SchedSnapshot {
            dsr_pos: self.dsrs.iter().map(|d| d.pos).collect(),
            task_flags: self.tasks.iter().map(|t| (t.activated, t.blocked)).collect(),
        }
    }

    /// Restores a snapshot taken by [`Core::sched_state`].
    ///
    /// # Panics
    /// Panics if the snapshot shape does not match this core's program.
    pub fn restore_sched_state(&mut self, snap: &SchedSnapshot) {
        assert_eq!(snap.dsr_pos.len(), self.dsrs.len(), "snapshot from a different program");
        assert_eq!(snap.task_flags.len(), self.tasks.len(), "snapshot from a different program");
        for (d, &pos) in self.dsrs.iter_mut().zip(&snap.dsr_pos) {
            d.pos = pos;
        }
        for (t, &(activated, blocked)) in self.tasks.iter_mut().zip(&snap.task_flags) {
            t.activated = activated;
            t.blocked = blocked;
        }
    }

    /// Renders the core's program (tasks, bodies, DSRs, FIFOs) as
    /// CSL-flavored text — the disassembler view for debugging kernel
    /// builders.
    pub fn dump_program(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, d) in self.dsrs.iter().enumerate() {
            let _ = writeln!(out, "dsr {i}: {:?} (pos {})", d.desc, d.pos);
        }
        for (i, f) in self.fifos.iter().enumerate() {
            let _ = writeln!(
                out,
                "fifo {i}: base {} cap {} {:?} onpush {:?} (len {})",
                f.base,
                f.capacity,
                f.dtype,
                f.onpush,
                f.len()
            );
        }
        for (i, t) in self.tasks.iter().enumerate() {
            let _ = writeln!(
                out,
                "task {i} \"{}\" prio {}{}{}{} {{",
                t.task.name,
                t.task.priority,
                if t.blocked { " [blocked]" } else { "" },
                if t.activated { " [activated]" } else { "" },
                if self.main.as_ref().is_some_and(|r| r.id == i) { " [running]" } else { "" },
            );
            for stmt in &t.task.body {
                let line = match stmt {
                    Stmt::Exec(instr) => format!(
                        "exec {:?} dst={:?} a={:?} b={:?}",
                        instr.op, instr.dst, instr.a, instr.b
                    ),
                    Stmt::Launch { slot, instr, on_complete } => format!(
                        "launch@{slot} {:?} dst={:?} a={:?} b={:?} then {:?}",
                        instr.op, instr.dst, instr.a, instr.b, on_complete
                    ),
                    Stmt::InitDsr { dsr, desc } => format!("init dsr {dsr} = {desc:?}"),
                    Stmt::TaskCtl { task, action } => format!("{action:?}(task {task})"),
                    Stmt::RegArith { op, dst, a, b } => format!("r{dst} = r{a} {op:?} r{b}"),
                    Stmt::SetReg { reg, value } => format!("r{reg} = {value}"),
                };
                let _ = writeln!(out, "  {line}");
            }
            let _ = writeln!(out, "}}");
        }
        for b in &self.bindings {
            let _ = writeln!(out, "on color {} activate task {}", b.color, b.task);
        }
        out
    }

    /// Executes one cycle. `mem` is the tile's SRAM.
    pub fn step(&mut self, mem: &mut Memory) {
        self.data_triggers();
        self.schedule();
        self.control_step();
        self.datapath_step(mem);
        // The per-core cycle stamp tracks the fabric clock (one core step
        // per fabric cycle) and is never rewound — see [`CoreTrace`].
        if let Some(tr) = self.trace.as_deref_mut() {
            tr.now += 1;
        }
        if let Some(san) = self.sanitize.as_deref_mut() {
            san.now += 1;
        }
    }

    /// Records a main-thread task retiring (trace hook; no-op disarmed).
    fn trace_task_end(&mut self, task: TaskId) {
        if let Some(tr) = self.trace.as_deref_mut() {
            tr.record_task_end(task);
        }
    }

    /// Activates tasks bound to colors with pending data.
    fn data_triggers(&mut self) {
        for b in &self.bindings {
            if !self.ramp_in[b.color as usize].is_empty() {
                self.tasks[b.task].activated = true;
            }
        }
    }

    /// Picks a task for the main thread if it is free.
    fn schedule(&mut self) {
        if self.main.is_some() {
            return;
        }
        let mut best: Option<(u8, usize)> = None;
        for (id, t) in self.tasks.iter().enumerate() {
            if t.activated && !t.blocked {
                let key = (t.task.priority, usize::MAX - id);
                if best.is_none_or(|b| key > b) {
                    best = Some(key);
                }
            }
        }
        if let Some((_, inv_id)) = best {
            let id = usize::MAX - inv_id;
            self.tasks[id].activated = false; // activation is consumed
            self.main = Some(RunningTask { id, pc: 0, exec: None });
            if let Some(tr) = self.trace.as_deref_mut() {
                tr.record_task_start(id, self.tasks[id].task.name);
            }
        }
    }

    /// Retires at most one control statement of the running task.
    fn control_step(&mut self) {
        let Some(running) = self.main.as_mut() else { return };
        if running.exec.is_some() {
            return; // waiting on a synchronous tensor instruction
        }
        let task_id = running.id;
        let pc = running.pc;
        let body_len = self.tasks[task_id].task.body.len();
        if pc >= body_len {
            self.main = None;
            self.trace_task_end(task_id);
            return;
        }
        let stmt = self.tasks[task_id].task.body[pc].clone();
        match stmt {
            Stmt::Exec(instr) => {
                let r = self.main.as_mut().unwrap();
                r.exec = Some(ActiveInstr { instr, on_complete: None });
                r.pc += 1;
            }
            Stmt::Launch { slot, instr, on_complete } => {
                let slot = slot as usize;
                assert!(slot < NUM_THREADS, "thread slot out of range");
                if self.threads[slot].is_some() {
                    // Slot busy: stall (retry next cycle). Real programs
                    // avoid this; the stall keeps the model safe.
                    return;
                }
                self.threads[slot] = Some(ActiveInstr { instr, on_complete });
                if let Some(san) = self.sanitize.as_deref_mut() {
                    san.on_launch(slot);
                }
                self.main.as_mut().unwrap().pc += 1;
            }
            Stmt::InitDsr { dsr, desc } => {
                self.dsrs[dsr] = Dsr::new(desc);
                self.main.as_mut().unwrap().pc += 1;
            }
            Stmt::TaskCtl { task, action } => {
                self.apply_action(task, action);
                self.main.as_mut().unwrap().pc += 1;
            }
            Stmt::RegArith { op, dst, a, b } => {
                let (va, vb) = (self.regs[a], self.regs[b]);
                self.regs[dst] = match op {
                    RegOp::Add => va + vb,
                    RegOp::Sub => va - vb,
                    RegOp::Mul => va * vb,
                    RegOp::Div => va / vb,
                    RegOp::Neg => -va,
                    RegOp::Mov => va,
                };
                self.main.as_mut().unwrap().pc += 1;
            }
            Stmt::SetReg { reg, value } => {
                self.regs[reg] = value;
                self.main.as_mut().unwrap().pc += 1;
            }
        }
        self.perf.ctrl_stmts += 1;
        // A task whose body is exhausted (and not waiting) retires.
        let r = self.main.as_ref().unwrap();
        if r.exec.is_none() && r.pc >= self.tasks[task_id].task.body.len() {
            self.main = None;
            self.trace_task_end(task_id);
        }
    }

    /// Issues the datapath to one runnable thread (round-robin).
    fn datapath_step(&mut self, mem: &mut Memory) {
        // Candidate order: thread slots 0..N, then the main-exec pseudo-slot.
        const MAIN_SLOT: usize = NUM_THREADS;
        let total = NUM_THREADS + 1;
        let mut issued = false;
        for k in 0..total {
            let slot = (self.rr_cursor + k) % total;
            let has = if slot == MAIN_SLOT {
                self.main.as_ref().is_some_and(|r| r.exec.is_some())
            } else {
                self.threads[slot].is_some()
            };
            if !has {
                continue;
            }
            let active = if slot == MAIN_SLOT {
                self.main.as_ref().unwrap().exec.clone().unwrap()
            } else {
                self.threads[slot].clone().unwrap()
            };
            if self.sanitize.is_some() {
                // Snapshot slot occupancy *before* issuing: launches happen
                // in control_step and completions after process() returns,
                // so the snapshot is exact for the duration of the call.
                let mut live = [false; NUM_THREADS];
                for (s, t) in self.threads.iter().enumerate() {
                    live[s] = t.is_some();
                }
                let accum = active.instr.op.reads_dst();
                self.sanitize.as_deref_mut().unwrap().begin(slot as u8, accum, live);
            }
            let (progress, complete) = self.process(mem, &active.instr);
            if let Some(san) = self.sanitize.as_deref_mut() {
                san.end();
            }
            if complete {
                self.finish_operands(&active.instr);
                if let Some(tr) = self.trace.as_deref_mut() {
                    tr.retired[active.instr.op.class().index()] += 1;
                }
                if let Some((task, action)) = active.on_complete {
                    self.apply_action(task, action);
                }
                if slot == MAIN_SLOT {
                    let r = self.main.as_mut().unwrap();
                    r.exec = None;
                    // Retire the task if the body is done.
                    let id = r.id;
                    if r.pc >= self.tasks[id].task.body.len() {
                        self.main = None;
                        self.trace_task_end(id);
                    }
                } else {
                    self.threads[slot] = None;
                }
            }
            if progress > 0 || complete {
                self.rr_cursor = (slot + 1) % total;
                issued = progress > 0;
                break;
            }
        }
        if issued {
            self.perf.busy_cycles += 1;
        } else {
            self.perf.idle_cycles += 1;
            // Stall attribution (armed only): why did the datapath sit
            // this cycle out?
            if self.trace.is_some() {
                let cause = self.classify_stall();
                self.trace.as_deref_mut().unwrap().stall[cause.index()] += 1;
            }
            // Channel-wait shadow tracking (armed only): which colors is
            // some active receive starved on this cycle?
            if self.sanitize.is_some() {
                let mut waiting = [false; NUM_COLORS];
                let actives = self
                    .threads
                    .iter()
                    .filter_map(|t| t.as_ref())
                    .chain(self.main.as_ref().and_then(|r| r.exec.as_ref()));
                for a in actives {
                    for id in [a.instr.a, a.instr.b].into_iter().flatten() {
                        if let Descriptor::FabricIn { color, .. } = self.dsrs[id].desc {
                            if self.ramp_in[color as usize].is_empty() {
                                waiting[color as usize] = true;
                            }
                        }
                    }
                }
                self.sanitize.as_deref_mut().unwrap().on_stall(&waiting);
            }
        }
    }

    /// Classifies a non-issuing datapath cycle: starved sources win over
    /// blocked destinations; no active instruction at all is `Idle`. Bank
    /// conflicts are deliberately unmodeled (see [`StallCause`]), so that
    /// bucket never fires.
    fn classify_stall(&self) -> StallCause {
        let mut any = false;
        let mut backpressured = false;
        let actives = self
            .threads
            .iter()
            .filter_map(|t| t.as_ref())
            .chain(self.main.as_ref().and_then(|r| r.exec.as_ref()));
        for a in actives {
            any = true;
            if !self.sources_ready(&a.instr) {
                return StallCause::FifoWait;
            }
            if !self.dst_ready(&a.instr) {
                backpressured = true;
            }
        }
        if backpressured {
            StallCause::Backpressure
        } else {
            // `any && !backpressured` can only follow a zero-progress
            // completion this cycle; fold it into Idle.
            let _ = any;
            StallCause::Idle
        }
    }

    /// Rewinds rewinding DSR operands at instruction completion.
    fn finish_operands(&mut self, instr: &TensorInstr) {
        for id in [instr.dst, instr.a, instr.b].into_iter().flatten() {
            self.dsrs[id].finish_instruction();
        }
    }

    /// SIMD lanes available to `op` at element type `dtype`.
    fn lanes(op: Op, dtype: Dtype) -> u32 {
        match op {
            Op::MacReg { .. } => SIMD_MIXED,
            _ => match dtype {
                Dtype::F16 => SIMD_F16,
                Dtype::F32 => SIMD_F32,
            },
        }
    }

    /// Element dtype governing an instruction (destination wins; register
    /// reductions use the source type).
    fn instr_dtype(&self, instr: &TensorInstr) -> Dtype {
        let of = |id: Option<DsrId>| -> Option<Dtype> {
            id.and_then(|d| match self.dsrs[d].desc {
                Descriptor::Fifo { fifo } => Some(self.fifos[fifo].dtype),
                ref other => other.dtype(),
            })
        };
        of(instr.dst).or_else(|| of(instr.a)).unwrap_or(Dtype::F16)
    }

    /// Processes up to one SIMD group of `instr`. Returns
    /// `(elements_processed, completed)`.
    fn process(&mut self, mem: &mut Memory, instr: &TensorInstr) -> (u32, bool) {
        // A destination must not share a DSR with a source: the shared
        // cursor would advance twice per element. (Aliasing the same
        // *memory* through two DSRs is fine and common.)
        if let Some(d) = instr.dst {
            debug_assert!(instr.a != Some(d), "dst and src a share DSR {d}");
            debug_assert!(instr.b != Some(d), "dst and src b share DSR {d}");
        }
        let dtype = self.instr_dtype(instr);
        let lanes = Self::lanes(instr.op, dtype);
        let mut processed = 0;
        let mut fifo_src_empty = false;

        for _ in 0..lanes {
            // Completion on exhausted fixed-length operands.
            if self.any_operand_exhausted(instr) {
                return (processed, true);
            }
            // Availability checks.
            if !self.sources_ready(instr) {
                if self.fifo_source_empty(instr) {
                    fifo_src_empty = true;
                }
                break;
            }
            if !self.dst_ready(instr) {
                break;
            }
            self.execute_element(mem, instr, dtype);
            processed += 1;
        }

        if self.any_operand_exhausted(instr) {
            return (processed, true);
        }
        // FIFO-source semantics: "Each add pulls as much data as it can from
        // its input FIFO, finishing when empty."
        if fifo_src_empty || (processed > 0 && self.fifo_source_empty(instr)) {
            return (processed, true);
        }
        (processed, false)
    }

    fn any_operand_exhausted(&self, instr: &TensorInstr) -> bool {
        [instr.dst, instr.a, instr.b].into_iter().flatten().any(|id| self.dsrs[id].remaining() == 0)
    }

    fn fifo_source_empty(&self, instr: &TensorInstr) -> bool {
        for id in [instr.a, instr.b].into_iter().flatten() {
            if let Descriptor::Fifo { fifo } = self.dsrs[id].desc {
                if self.fifos[fifo].is_empty() {
                    return true;
                }
            }
        }
        false
    }

    fn sources_ready(&self, instr: &TensorInstr) -> bool {
        for id in [instr.a, instr.b].into_iter().flatten() {
            match self.dsrs[id].desc {
                Descriptor::Mem { .. } => {}
                Descriptor::FabricIn { color, .. } => {
                    if self.ramp_in[color as usize].is_empty() {
                        return false;
                    }
                }
                Descriptor::FabricOut { .. } => panic!("FabricOut used as a source"),
                Descriptor::Fifo { fifo } => {
                    if self.fifos[fifo].is_empty() {
                        return false;
                    }
                }
            }
        }
        true
    }

    fn dst_ready(&self, instr: &TensorInstr) -> bool {
        let Some(id) = instr.dst else { return true };
        match self.dsrs[id].desc {
            Descriptor::Mem { .. } => true,
            Descriptor::FabricIn { .. } => panic!("FabricIn used as a destination"),
            Descriptor::FabricOut { color, .. } => {
                self.ramp_out[color as usize].len() < RAMP_OUT_CAPACITY
            }
            Descriptor::Fifo { fifo } => !self.fifos[fifo].is_full(),
        }
    }

    /// Reads one element from a source DSR, advancing it.
    fn read_src(&mut self, mem: &Memory, id: DsrId) -> (u32, Dtype) {
        let dsr = self.dsrs[id];
        match dsr.desc {
            Descriptor::Mem { dtype, .. } => {
                let addr = dsr.current_addr().unwrap();
                self.dsrs[id].advance(1);
                if let Some(san) = self.sanitize.as_deref_mut() {
                    san.on_read(addr, dtype.bytes());
                }
                (mem.read_bits(addr, dtype), dtype)
            }
            Descriptor::FabricIn { color, dtype, .. } => {
                let flit = self.ramp_in[color as usize].pop_front().expect("sources_ready checked");
                debug_assert_eq!(flit.dtype, dtype, "flit dtype mismatch on color {color}");
                self.dsrs[id].advance(1);
                self.perf.flits_received += 1;
                (flit.bits, dtype)
            }
            Descriptor::Fifo { fifo } => {
                let f = &self.fifos[fifo];
                let dtype = f.dtype;
                let addr = f.pop_addr().expect("sources_ready checked");
                let bits = mem.read_bits(addr, dtype);
                self.fifos[fifo].commit_pop();
                (bits, dtype)
            }
            Descriptor::FabricOut { .. } => unreachable!(),
        }
    }

    /// Writes one element to the destination DSR, advancing it. Returns a
    /// task to activate (FIFO onpush), if any.
    fn write_dst(
        &mut self,
        mem: &mut Memory,
        id: DsrId,
        bits: u32,
        dtype: Dtype,
    ) -> Option<TaskId> {
        let dsr = self.dsrs[id];
        match dsr.desc {
            Descriptor::Mem { dtype: d, .. } => {
                debug_assert_eq!(d, dtype);
                let addr = dsr.current_addr().unwrap();
                mem.write_bits(addr, d, bits);
                self.dsrs[id].advance(1);
                if let Some(san) = self.sanitize.as_deref_mut() {
                    san.on_write(addr, d.bytes());
                }
                None
            }
            Descriptor::FabricOut { color, dtype: d, .. } => {
                debug_assert_eq!(d, dtype);
                let flit = Flit { bits, dtype: d };
                self.ramp_out[color as usize].push_back(flit);
                self.dsrs[id].advance(1);
                self.perf.flits_sent += 1;
                None
            }
            Descriptor::Fifo { fifo } => {
                let f = &self.fifos[fifo];
                debug_assert_eq!(f.dtype, dtype);
                let addr = f.push_addr().expect("dst_ready checked");
                mem.write_bits(addr, dtype, bits);
                self.fifos[fifo].commit_push()
            }
            Descriptor::FabricIn { .. } => unreachable!(),
        }
    }

    /// Reads the destination's current element *without* advancing
    /// (read-modify-write ops).
    fn peek_dst(&self, mem: &Memory, id: DsrId) -> u32 {
        let dsr = self.dsrs[id];
        match dsr.desc {
            Descriptor::Mem { dtype, .. } => mem.read_bits(dsr.current_addr().unwrap(), dtype),
            _ => panic!("read-modify-write destination must be in memory"),
        }
    }

    /// Executes one element of `instr`.
    fn execute_element(&mut self, mem: &mut Memory, instr: &TensorInstr, dtype: Dtype) {
        let mut activation = None;
        match instr.op {
            Op::Copy => {
                let (bits, dt) = self.read_src(mem, instr.a.expect("copy src"));
                activation = self.write_dst(mem, instr.dst.expect("copy dst"), bits, dt);
            }
            Op::Add | Op::Mul => {
                let (ab, dt) = self.read_src(mem, instr.a.expect("src a"));
                let (bb, dt2) = self.read_src(mem, instr.b.expect("src b"));
                debug_assert_eq!(dt, dt2, "mixed-dtype binary op");
                let bits = match dt {
                    Dtype::F16 => {
                        let (x, y) = (F16::from_bits(ab as u16), F16::from_bits(bb as u16));
                        let r = if matches!(instr.op, Op::Add) { x + y } else { x * y };
                        self.perf.flops_f16 += 1;
                        r.to_bits() as u32
                    }
                    Dtype::F32 => {
                        let (x, y) = (f32::from_bits(ab), f32::from_bits(bb));
                        let r = if matches!(instr.op, Op::Add) { x + y } else { x * y };
                        self.perf.flops_f32 += 1;
                        r.to_bits()
                    }
                };
                activation = self.write_dst(mem, instr.dst.expect("dst"), bits, dt);
            }
            Op::AddAssign => {
                let dst = instr.dst.expect("dst");
                let cur = self.peek_dst(mem, dst);
                let (ab, dt) = self.read_src(mem, instr.a.expect("src a"));
                let bits = match dt {
                    Dtype::F16 => {
                        let r = F16::from_bits(cur as u16) + F16::from_bits(ab as u16);
                        self.perf.flops_f16 += 1;
                        r.to_bits() as u32
                    }
                    Dtype::F32 => {
                        let r = f32::from_bits(cur) + f32::from_bits(ab);
                        self.perf.flops_f32 += 1;
                        r.to_bits()
                    }
                };
                activation = self.write_dst(mem, dst, bits, dt);
            }
            Op::FmaAssign => {
                let dst = instr.dst.expect("dst");
                let cur = self.peek_dst(mem, dst);
                let (ab, dta) = self.read_src(mem, instr.a.expect("src a"));
                let (bb, dtb) = self.read_src(mem, instr.b.expect("src b"));
                debug_assert_eq!(dta, dtb, "mixed-dtype fma");
                let bits = match dta {
                    Dtype::F16 => {
                        let r = wse_float::fma16(
                            F16::from_bits(ab as u16),
                            F16::from_bits(bb as u16),
                            F16::from_bits(cur as u16),
                        );
                        self.perf.flops_f16 += 2;
                        r.to_bits() as u32
                    }
                    Dtype::F32 => {
                        let r = f32::from_bits(ab).mul_add(f32::from_bits(bb), f32::from_bits(cur));
                        self.perf.flops_f32 += 2;
                        r.to_bits()
                    }
                };
                activation = self.write_dst(mem, dst, bits, dta);
            }
            Op::Xpay { scalar } => {
                let (ab, dta) = self.read_src(mem, instr.a.expect("src a"));
                let (bb, dtb) = self.read_src(mem, instr.b.expect("src b"));
                debug_assert_eq!(dta, dtb, "mixed-dtype xpay");
                let bits = match dta {
                    Dtype::F16 => {
                        let s = F16::from_f32(self.regs[scalar]);
                        let r = wse_float::fma16(
                            s,
                            F16::from_bits(bb as u16),
                            F16::from_bits(ab as u16),
                        );
                        self.perf.flops_f16 += 2;
                        r.to_bits() as u32
                    }
                    Dtype::F32 => {
                        let r = self.regs[scalar].mul_add(f32::from_bits(bb), f32::from_bits(ab));
                        self.perf.flops_f32 += 2;
                        r.to_bits()
                    }
                };
                activation = self.write_dst(mem, instr.dst.expect("dst"), bits, dta);
            }
            Op::Axpy { scalar } => {
                let dst = instr.dst.expect("dst");
                let cur = self.peek_dst(mem, dst);
                let (ab, dt) = self.read_src(mem, instr.a.expect("src a"));
                let bits = match dt {
                    Dtype::F16 => {
                        let s = F16::from_f32(self.regs[scalar]);
                        let r = wse_float::fma16(
                            s,
                            F16::from_bits(ab as u16),
                            F16::from_bits(cur as u16),
                        );
                        self.perf.flops_f16 += 2;
                        r.to_bits() as u32
                    }
                    Dtype::F32 => {
                        let r = self.regs[scalar].mul_add(f32::from_bits(ab), f32::from_bits(cur));
                        self.perf.flops_f32 += 2;
                        r.to_bits()
                    }
                };
                activation = self.write_dst(mem, dst, bits, dt);
            }
            Op::Scale { scalar } => {
                let (ab, dt) = self.read_src(mem, instr.a.expect("src a"));
                let bits = match dt {
                    Dtype::F16 => {
                        let r = F16::from_f32(self.regs[scalar]) * F16::from_bits(ab as u16);
                        self.perf.flops_f16 += 1;
                        r.to_bits() as u32
                    }
                    Dtype::F32 => {
                        let r = self.regs[scalar] * f32::from_bits(ab);
                        self.perf.flops_f32 += 1;
                        r.to_bits()
                    }
                };
                activation = self.write_dst(mem, instr.dst.expect("dst"), bits, dt);
            }
            Op::MacReg { acc } => {
                let (ab, dta) = self.read_src(mem, instr.a.expect("src a"));
                let (bb, dtb) = self.read_src(mem, instr.b.expect("src b"));
                debug_assert_eq!(dta, Dtype::F16, "mixed mac sources are fp16");
                debug_assert_eq!(dtb, Dtype::F16, "mixed mac sources are fp16");
                let prod = F16::from_bits(ab as u16).to_f32() * F16::from_bits(bb as u16).to_f32();
                self.regs[acc] += prod;
                self.perf.flops_f16 += 1; // the multiply
                self.perf.flops_f32 += 1; // the accumulate
            }
            Op::SumReg { acc } => {
                let (ab, dt) = self.read_src(mem, instr.a.expect("src a"));
                let v = match dt {
                    Dtype::F32 => f32::from_bits(ab),
                    Dtype::F16 => F16::from_bits(ab as u16).to_f32(),
                };
                self.regs[acc] += v;
                self.perf.flops_f32 += 1;
            }
            Op::StoreReg { reg } => {
                let v = self.regs[reg];
                let bits = match dtype {
                    Dtype::F32 => v.to_bits(),
                    Dtype::F16 => F16::from_f32(v).to_bits() as u32,
                };
                activation = self.write_dst(mem, instr.dst.expect("dst"), bits, dtype);
            }
            Op::LoadReg { reg } => {
                let (ab, dt) = self.read_src(mem, instr.a.expect("src a"));
                self.regs[reg] = match dt {
                    Dtype::F32 => f32::from_bits(ab),
                    Dtype::F16 => F16::from_bits(ab as u16).to_f32(),
                };
            }
        }
        if let Some(task) = activation {
            self.tasks[task].activated = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsr::mk;

    fn run(core: &mut Core, mem: &mut Memory, cycles: usize) {
        for _ in 0..cycles {
            core.step(mem);
        }
    }

    /// Builds a core+memory with two fp16 vectors in SRAM.
    fn setup(a: &[f64], b: &[f64]) -> (Core, Memory, u32, u32) {
        let mut mem = Memory::new();
        let va: Vec<F16> = a.iter().map(|&v| F16::from_f64(v)).collect();
        let vb: Vec<F16> = b.iter().map(|&v| F16::from_f64(v)).collect();
        let addr_a = mem.alloc_vec(a.len() as u32, Dtype::F16).unwrap();
        let addr_b = mem.alloc_vec(b.len() as u32, Dtype::F16).unwrap();
        mem.store_f16_slice(addr_a, &va);
        mem.store_f16_slice(addr_b, &vb);
        (Core::new(), mem, addr_a, addr_b)
    }

    #[test]
    fn elementwise_mul_task() {
        let (mut core, mut mem, aa, ab) = setup(&[1.0, 2.0, 3.0, 4.0, 5.0], &[2.0; 5]);
        let dst_addr = mem.alloc_vec(5, Dtype::F16).unwrap();
        let da = core.add_dsr(mk::tensor16(aa, 5));
        let db = core.add_dsr(mk::tensor16(ab, 5));
        let dd = core.add_dsr(mk::tensor16(dst_addr, 5));
        let t = core.add_task(Task::new(
            "mul",
            vec![Stmt::Exec(TensorInstr { op: Op::Mul, dst: Some(dd), a: Some(da), b: Some(db) })],
        ));
        core.activate(t);
        run(&mut core, &mut mem, 10);
        assert!(core.is_quiescent());
        let out = mem.load_f16_slice(dst_addr, 5);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(v.to_f64(), 2.0 * (i + 1) as f64);
        }
        assert_eq!(core.perf.flops_f16, 5);
    }

    #[test]
    fn simd4_throughput_for_f16() {
        // 16 elements at 4 lanes = 4 busy datapath cycles.
        let (mut core, mut mem, aa, ab) = setup(&[1.0; 16], &[1.0; 16]);
        let da = core.add_dsr(mk::tensor16(aa, 16));
        let db = core.add_dsr(mk::tensor16(ab, 16));
        let dst = mem.alloc_vec(16, Dtype::F16).unwrap();
        let dd = core.add_dsr(mk::tensor16(dst, 16));
        let t = core.add_task(Task::new(
            "add",
            vec![Stmt::Exec(TensorInstr { op: Op::Add, dst: Some(dd), a: Some(da), b: Some(db) })],
        ));
        core.activate(t);
        run(&mut core, &mut mem, 20);
        assert!(core.is_quiescent());
        assert_eq!(core.perf.flops_f16, 16);
        assert_eq!(core.perf.busy_cycles, 4, "4 lanes/cycle");
    }

    #[test]
    fn axpy_uses_register_scalar() {
        let (mut core, mut mem, ax, ay) = setup(&[1.0, 2.0, 3.0], &[10.0, 10.0, 10.0]);
        let dx = core.add_dsr(mk::tensor16(ax, 3));
        let dy = core.add_dsr(mk::tensor16(ay, 3));
        let t = core.add_task(Task::new(
            "axpy",
            vec![
                Stmt::SetReg { reg: 0, value: 0.5 },
                Stmt::Exec(TensorInstr {
                    op: Op::Axpy { scalar: 0 },
                    dst: Some(dy),
                    a: Some(dx),
                    b: None,
                }),
            ],
        ));
        core.activate(t);
        run(&mut core, &mut mem, 10);
        assert!(core.is_quiescent());
        let out = mem.load_f16_slice(ay, 3);
        assert_eq!(out[0].to_f64(), 10.5);
        assert_eq!(out[1].to_f64(), 11.0);
        assert_eq!(out[2].to_f64(), 11.5);
    }

    #[test]
    fn mixed_mac_accumulates_in_register() {
        let (mut core, mut mem, aa, ab) = setup(&[1.0, 2.0, 3.0, 4.0], &[1.0, 1.0, 1.0, 1.0]);
        let da = core.add_dsr(mk::tensor16(aa, 4));
        let db = core.add_dsr(mk::tensor16(ab, 4));
        let t = core.add_task(Task::new(
            "dot",
            vec![Stmt::Exec(TensorInstr {
                op: Op::MacReg { acc: 3 },
                dst: None,
                a: Some(da),
                b: Some(db),
            })],
        ));
        core.activate(t);
        run(&mut core, &mut mem, 10);
        assert!(core.is_quiescent());
        assert_eq!(core.regs[3], 10.0);
        // Mixed throughput: 2 elements/cycle → 2 busy cycles for 4 elements.
        assert_eq!(core.perf.busy_cycles, 2);
    }

    #[test]
    fn fifo_decoupled_producer_consumer() {
        // Producer: mul of two memory vectors into a FIFO. Consumer task
        // (onpush-activated) drains the FIFO into an accumulator vector.
        let n = 12u32;
        let (mut core, mut mem, aa, ab) =
            setup(&vec![2.0; n as usize], &(0..n).map(|i| i as f64).collect::<Vec<_>>());
        let acc_addr = mem.alloc_vec(n, Dtype::F16).unwrap();
        mem.store_f16_slice(acc_addr, &vec![F16::from_f64(1.0); n as usize]);
        let fifo_mem = mem.alloc_vec(4, Dtype::F16).unwrap();

        let da = core.add_dsr(mk::tensor16(aa, n));
        let db = core.add_dsr(mk::tensor16(ab, n));
        let dacc = core.add_dsr(mk::acc16(acc_addr, n));

        // Consumer defined first so the fifo can name it.
        let sum_task = core.add_task(Task::new("sum", vec![]));
        let fid = core.add_fifo(Fifo::new(fifo_mem, 4, Dtype::F16, Some(sum_task)));
        let dfifo = core.add_dsr(mk::fifo(fid));
        // Patch the consumer body now that DSR ids exist.
        core.tasks[sum_task].task.body = vec![Stmt::Exec(TensorInstr {
            op: Op::AddAssign,
            dst: Some(dacc),
            a: Some(dfifo),
            b: None,
        })];
        core.tasks[sum_task].task.priority = 1;

        let producer = core.add_task(Task::new(
            "mul",
            vec![Stmt::Launch {
                slot: 0,
                instr: TensorInstr { op: Op::Mul, dst: Some(dfifo), a: Some(da), b: Some(db) },
                on_complete: None,
            }],
        ));
        core.activate(producer);
        run(&mut core, &mut mem, 80);
        assert!(core.is_quiescent(), "core did not quiesce");
        let out = mem.load_f16_slice(acc_addr, n as usize);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(v.to_f64(), 1.0 + 2.0 * i as f64, "element {i}");
        }
        assert_eq!(core.fifo(fid).total_pushed, n as u64);
        assert!(core.fifo(fid).peak_occupancy <= 4);
    }

    #[test]
    fn fabric_out_then_loopback_in() {
        // Without a router, deliver manually: the core sends, we shuttle the
        // flits back to its own ramp-in on another color, a second task sums
        // them into a register.
        let (mut core, mut mem, aa, _) = setup(&[1.5, 2.5, 3.0], &[0.0; 3]);
        let dsrc = core.add_dsr(mk::tensor16(aa, 3));
        let dtx = core.add_dsr(mk::tx16(2, 3));
        let drx = core.add_dsr(mk::rx16(5, 3));
        let send = core.add_task(Task::new(
            "send",
            vec![Stmt::Exec(TensorInstr { op: Op::Copy, dst: Some(dtx), a: Some(dsrc), b: None })],
        ));
        let recv = core.add_task(Task::new(
            "recv",
            vec![Stmt::Exec(TensorInstr {
                op: Op::SumReg { acc: 1 },
                dst: None,
                a: Some(drx),
                b: None,
            })],
        ));
        core.activate(send);
        core.activate(recv);
        for _ in 0..40 {
            core.step(&mut mem);
            for (color, flit) in core.drain_ramp_out(4) {
                assert_eq!(color, 2);
                core.deliver(5, flit);
            }
        }
        assert!(core.is_quiescent());
        assert_eq!(core.regs[1], 7.0);
        assert_eq!(core.perf.flits_sent, 3);
        assert_eq!(core.perf.flits_received, 3);
    }

    #[test]
    fn completion_tree_with_block_unblock() {
        // Mirror the paper's two-way barrier: two launched threads trigger
        // `done` via Activate and Unblock respectively; `done` must run only
        // after both complete.
        let (mut core, mut mem, aa, ab) = setup(&[1.0; 8], &[2.0; 8]);
        let d1 = core.add_dsr(mk::tensor16(aa, 8));
        let d2 = core.add_dsr(mk::tensor16(ab, 8));
        let o1 = mem.alloc_vec(8, Dtype::F16).unwrap();
        let o2 = mem.alloc_vec(8, Dtype::F16).unwrap();
        let do1 = core.add_dsr(mk::tensor16(o1, 8));
        let do2 = core.add_dsr(mk::tensor16(o2, 8));

        let done =
            core.add_task(Task::new("done", vec![Stmt::SetReg { reg: 7, value: 42.0 }]).blocked());
        let start = core.add_task(Task::new(
            "start",
            vec![
                Stmt::Launch {
                    slot: 0,
                    instr: TensorInstr { op: Op::Copy, dst: Some(do1), a: Some(d1), b: None },
                    on_complete: Some((done, TaskAction::Activate)),
                },
                Stmt::Launch {
                    slot: 1,
                    instr: TensorInstr { op: Op::Copy, dst: Some(do2), a: Some(d2), b: None },
                    on_complete: Some((done, TaskAction::Unblock)),
                },
            ],
        ));
        core.activate(start);
        run(&mut core, &mut mem, 60);
        assert!(core.is_quiescent());
        assert_eq!(core.regs[7], 42.0, "done must have run after both triggers");
    }

    #[test]
    fn priority_wins_scheduling() {
        let (mut core, mut mem, _, _) = setup(&[0.0], &[0.0]);
        let lo = core.add_task(Task::new("lo", vec![Stmt::SetReg { reg: 0, value: 1.0 }]));
        let hi = Task::new(
            "hi",
            vec![Stmt::SetReg { reg: 1, value: 1.0 }, Stmt::SetReg { reg: 2, value: 1.0 }],
        )
        .priority(5);
        let hi = core.add_task(hi);
        core.activate(lo);
        core.activate(hi);
        // One step: hi must be scheduled first.
        core.step(&mut mem);
        assert_eq!(core.regs[1], 1.0);
        assert_eq!(core.regs[0], 0.0);
        run(&mut core, &mut mem, 5);
        assert_eq!(core.regs[0], 1.0);
    }

    #[test]
    fn data_triggered_task_activation() {
        let (mut core, mut mem, _, _) = setup(&[0.0], &[0.0]);
        let drx = core.add_dsr(mk::rx16(4, 1));
        let t = core.add_task(Task::new(
            "on_data",
            vec![Stmt::Exec(TensorInstr {
                op: Op::LoadReg { reg: 9 },
                dst: None,
                a: Some(drx),
                b: None,
            })],
        ));
        core.bind_color(4, t);
        run(&mut core, &mut mem, 3);
        assert_eq!(core.regs[9], 0.0, "nothing happened yet");
        core.deliver(4, Flit::f16(F16::from_f32(6.0).to_bits()));
        run(&mut core, &mut mem, 5);
        assert!(core.is_quiescent());
        assert_eq!(core.regs[9], 6.0);
    }

    #[test]
    fn reg_arith_statements() {
        let (mut core, mut mem, _, _) = setup(&[0.0], &[0.0]);
        let t = core.add_task(Task::new(
            "regs",
            vec![
                Stmt::SetReg { reg: 0, value: 12.0 },
                Stmt::SetReg { reg: 1, value: 4.0 },
                Stmt::RegArith { op: RegOp::Div, dst: 2, a: 0, b: 1 },
                Stmt::RegArith { op: RegOp::Sub, dst: 3, a: 2, b: 1 },
                Stmt::RegArith { op: RegOp::Neg, dst: 4, a: 3, b: 3 },
                Stmt::RegArith { op: RegOp::Mul, dst: 5, a: 2, b: 2 },
            ],
        ));
        core.activate(t);
        run(&mut core, &mut mem, 10);
        assert_eq!(core.regs[2], 3.0);
        assert_eq!(core.regs[3], -1.0);
        assert_eq!(core.regs[4], 1.0);
        assert_eq!(core.regs[5], 9.0);
    }

    #[test]
    fn dump_program_renders_everything() {
        let (mut core, mut mem, aa, ab) = setup(&[1.0; 4], &[2.0; 4]);
        let fifo_mem = mem.alloc_vec(4, Dtype::F16).unwrap();
        let consumer = core.add_task(Task::new("consumer", vec![]));
        let fid = core.add_fifo(Fifo::new(fifo_mem, 4, Dtype::F16, Some(consumer)));
        let da = core.add_dsr(mk::tensor16(aa, 4));
        let db = core.add_dsr(mk::tensor16(ab, 4));
        let df = core.add_dsr(mk::fifo(fid));
        let producer = core.add_task(Task::new(
            "producer",
            vec![
                Stmt::SetReg { reg: 1, value: 2.5 },
                Stmt::Launch {
                    slot: 0,
                    instr: TensorInstr { op: Op::Mul, dst: Some(df), a: Some(da), b: Some(db) },
                    on_complete: None,
                },
            ],
        ));
        core.bind_color(5, consumer);
        let text = core.dump_program();
        assert!(text.contains("\"producer\""), "{text}");
        assert!(text.contains("\"consumer\""));
        assert!(text.contains("launch@0 Mul"));
        assert!(text.contains("r1 = 2.5"));
        assert!(text.contains("fifo 0"));
        assert!(text.contains("on color 5 activate task"));
        let _ = producer;
    }

    #[test]
    fn ramp_out_backpressure_stalls_sender() {
        // Send more than RAMP_OUT_CAPACITY without draining: the thread
        // must stall rather than overflow.
        let n = 32;
        let vals: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
        let (mut core, mut mem, aa, _) = setup(&vals, &[0.0]);
        let dsrc = core.add_dsr(mk::tensor16(aa, n as u32));
        let dtx = core.add_dsr(mk::tx16(1, n as u32));
        let t = core.add_task(Task::new(
            "send",
            vec![Stmt::Exec(TensorInstr { op: Op::Copy, dst: Some(dtx), a: Some(dsrc), b: None })],
        ));
        core.activate(t);
        run(&mut core, &mut mem, 50);
        assert!(!core.is_quiescent(), "sender must be stalled on backpressure");
        assert_eq!(core.ramp_out_len(), RAMP_OUT_CAPACITY);
        // Drain and let it finish.
        let mut got = Vec::new();
        for _ in 0..100 {
            got.extend(core.drain_ramp_out(4));
            core.step(&mut mem);
        }
        got.extend(core.drain_ramp_out(4));
        assert!(core.is_quiescent());
        assert_eq!(got.len(), n);
    }

    #[test]
    fn reset_transient_rewinds_to_start_state() {
        // Wedge a core mid-send (ramp_out backpressure, never drained),
        // then reset and confirm it can run the same program again.
        let vals: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let (mut core, mut mem, aa, _) = setup(&vals, &[0.0]);
        let dsrc = core.add_dsr(mk::tensor16(aa, 16));
        let dtx = core.add_dsr(mk::tx16(1, 16));
        let t = core.add_task(Task::new(
            "send",
            vec![Stmt::Exec(TensorInstr { op: Op::Copy, dst: Some(dtx), a: Some(dsrc), b: None })],
        ));
        core.activate(t);
        run(&mut core, &mut mem, 30);
        assert!(!core.is_quiescent(), "must be wedged on backpressure");
        assert_eq!(core.current_task_name(), Some("send"));

        core.reset_transient();
        assert!(core.is_quiescent());
        assert_eq!(core.current_task_name(), None);
        assert_eq!(core.active_threads(), 0);
        assert_eq!(core.ramp_out_len(), 0);
        assert_eq!(core.dsr(dsrc).pos, 0, "DSR cursors rewound");

        // The program is intact: re-activating and draining completes it.
        core.activate(t);
        let mut got = 0;
        for _ in 0..80 {
            core.step(&mut mem);
            got += core.drain_ramp_out(4).len();
        }
        assert!(core.is_quiescent());
        assert_eq!(got, 16);
    }

    #[test]
    fn sched_state_roundtrip() {
        let (mut core, _, aa, _) = setup(&[0.0; 8], &[0.0]);
        let d = core.add_dsr(mk::acc16(aa, 8));
        let a = core.add_task(Task::new("a", vec![]));
        let b = core.add_task(Task::new("b", vec![]).blocked());
        core.dsrs[d].advance(5);
        core.activate(a);
        let snap = core.sched_state();

        core.reset_transient();
        assert_eq!(core.dsr(d).pos, 0);
        assert!(!core.task_activated(a));

        core.restore_sched_state(&snap);
        assert_eq!(core.dsr(d).pos, 5);
        assert!(core.task_activated(a));
        assert!(core.task_blocked(b));
        assert_eq!(core.sched_state(), snap);
    }

    #[test]
    fn read_only_views_expose_program_structure() {
        let mut core = Core::new();
        let d = core.add_dsr(mk::tensor16(0, 8));
        let f = core.add_fifo(Fifo::new(64, 20, Dtype::F16, None));
        let a = core.add_task(Task::new("entry", vec![]));
        let b = core.add_task(Task::new("helper", vec![]).blocked().priority(3));
        core.bind_color(5, b);
        core.mark_entry(a);
        core.mark_entry(a); // idempotent

        assert_eq!(core.num_tasks(), 2);
        assert_eq!(core.task(b).name, "helper");
        assert_eq!(core.task(b).priority, 3);
        let names: Vec<_> = core.tasks().map(|(id, t)| (id, t.name)).collect();
        assert_eq!(names, vec![(a, "entry"), (b, "helper")]);
        assert!(core.task_blocked(b));
        assert!(!core.task_blocked(a));
        assert!(!core.task_activated(a));
        core.activate(a);
        assert!(core.task_activated(a));

        assert_eq!(core.bindings(), &[ColorBinding { color: 5, task: b }]);
        assert_eq!(core.entry_tasks(), &[a]);

        assert_eq!(core.num_dsrs(), 1);
        assert_eq!(core.dsrs().next().unwrap().0, d);
        assert_eq!(core.num_fifos(), 1);
        let (fid, fifo) = core.fifos().next().unwrap();
        assert_eq!(fid, f);
        assert_eq!(fifo.capacity, 20);
    }
}
