//! Deterministic fault injection for the fabric.
//!
//! The paper's wafer mapping assumes a flawless fabric; this module lets the
//! simulator model the unhappy paths: a [`FaultPlan`] schedules faults at
//! exact cycles, the fabric applies them during [`Fabric::step`], and a
//! [`FaultLog`] records exactly what was injected so runs are auditable and
//! bit-for-bit reproducible. The plan is either built explicitly or drawn
//! from a seeded generator ([`FaultPlan::random`]) — no global RNG state, so
//! the same seed always yields the same fault schedule.
//!
//! Fault taxonomy (mirrors the failure modes of a real wafer):
//!
//! * **SRAM bit flip** — a single-event upset in a tile's 48 KB memory.
//!   Transient data corruption; the fabric keeps running.
//! * **Tile kill** — the core and router of one tile freeze permanently
//!   (e.g. a dead PE). Incoming flits pile up in the dead router's queues
//!   until credit-based backpressure stalls the neighborhood.
//! * **Stuck router port** — one output port stops forwarding. Because
//!   fanout is all-or-nothing, any route through that port blocks.
//! * **Link corrupt / link drop** — a one-shot transmission error: the next
//!   flit leaving the chosen port is bit-flipped or silently lost.
//!
//! A second family targets the *ensemble* plane — the host interconnect
//! that stitches wafers into a `MultiFabric` (wse-multi). These faults are
//! armed on the ensemble, not on a single [`Fabric`] (arming one there
//! panics — a lone wafer has no host links):
//!
//! * **Host-link drop / corrupt** — a one-shot wire error on the next frame
//!   crossing one seam in one direction. The reliable transport detects
//!   both (checksum + sequence gap) and retransmits.
//! * **Host-link stall** — one seam goes dark for a bounded window in both
//!   directions: frames and acks in transit are held, new traffic queues.
//! * **Wafer stall** — one wafer drops off the host fabric for a window:
//!   every seam touching it goes dark, modeling a host-visible machine
//!   pause (PCIe hiccup, driver reset).
//!
//! [`Fabric::step`]: crate::fabric::Fabric::step
//! [`Fabric`]: crate::fabric::Fabric

use crate::types::Port;

/// One kind of injectable fault.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Flip bit `bit` (0–15) of the 16-bit SRAM word at byte `addr` of tile
    /// `(x, y)`. Transient: a later write repairs it.
    SramBitFlip {
        /// Tile x coordinate.
        x: usize,
        /// Tile y coordinate.
        y: usize,
        /// Byte address of the (2-byte aligned) word.
        addr: u32,
        /// Bit index within the word, `0..16`.
        bit: u8,
    },
    /// Permanently freeze tile `(x, y)`: its core stops executing and its
    /// router stops forwarding. Queues into the dead tile fill and
    /// backpressure propagates outward.
    TileKill {
        /// Tile x coordinate.
        x: usize,
        /// Tile y coordinate.
        y: usize,
    },
    /// Permanently stick output port `port` of tile `(x, y)`'s router: no
    /// flit is ever staged through it again.
    StuckPort {
        /// Tile x coordinate.
        x: usize,
        /// Tile y coordinate.
        y: usize,
        /// The output port that sticks.
        port: Port,
    },
    /// Corrupt the next flit leaving tile `(x, y)` through `port` by XORing
    /// one payload bit. One-shot.
    LinkCorrupt {
        /// Tile x coordinate.
        x: usize,
        /// Tile y coordinate.
        y: usize,
        /// The output port whose next flit is corrupted.
        port: Port,
        /// Payload bit to flip, `0..32`.
        bit: u8,
    },
    /// Silently drop the next flit leaving tile `(x, y)` through `port`.
    /// One-shot.
    LinkDrop {
        /// Tile x coordinate.
        x: usize,
        /// Tile y coordinate.
        y: usize,
        /// The output port whose next flit is lost.
        port: Port,
    },
    /// Drop the next frame crossing host-link seam `seam` in direction
    /// `dir` (0 = eastward, 1 = westward). One-shot; ensemble-level.
    HostLinkDrop {
        /// Seam index (between wafer `seam` and `seam + 1`).
        seam: usize,
        /// Direction: 0 = eastward, 1 = westward.
        dir: u8,
    },
    /// Corrupt the next frame crossing host-link seam `seam` in direction
    /// `dir` by XORing one payload bit (the frame checksum is computed
    /// before the wire, so the receiver detects the damage). One-shot;
    /// ensemble-level.
    HostLinkCorrupt {
        /// Seam index.
        seam: usize,
        /// Direction: 0 = eastward, 1 = westward.
        dir: u8,
        /// Payload bit to flip, `0..32`.
        bit: u8,
    },
    /// Seam `seam` goes dark for `cycles` ensemble cycles in both
    /// directions: nothing in flight is delivered and acks are held.
    /// Bounded-window; ensemble-level.
    HostLinkStall {
        /// Seam index.
        seam: usize,
        /// Length of the dark window in ensemble cycles.
        cycles: u64,
    },
    /// Wafer `wafer` drops off the host fabric for `cycles` ensemble
    /// cycles: every seam touching it goes dark (a host-visible machine
    /// pause). Bounded-window; ensemble-level.
    WaferStall {
        /// Wafer index within the ensemble.
        wafer: usize,
        /// Length of the pause in ensemble cycles.
        cycles: u64,
    },
}

impl FaultKind {
    /// Short stable label for reports and sweep tables.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::SramBitFlip { .. } => "sram_bit_flip",
            FaultKind::TileKill { .. } => "tile_kill",
            FaultKind::StuckPort { .. } => "stuck_port",
            FaultKind::LinkCorrupt { .. } => "link_corrupt",
            FaultKind::LinkDrop { .. } => "link_drop",
            FaultKind::HostLinkDrop { .. } => "host_link_drop",
            FaultKind::HostLinkCorrupt { .. } => "host_link_corrupt",
            FaultKind::HostLinkStall { .. } => "host_link_stall",
            FaultKind::WaferStall { .. } => "wafer_stall",
        }
    }

    /// `true` for faults that permanently disable hardware (no rollback can
    /// mask them; the solve is expected to exhaust its retry budget).
    pub fn is_permanent(&self) -> bool {
        matches!(self, FaultKind::TileKill { .. } | FaultKind::StuckPort { .. })
    }

    /// `true` for faults targeting the ensemble plane (host links between
    /// wafers). These arm on a `MultiFabric`, never on a single fabric.
    pub fn is_host_level(&self) -> bool {
        matches!(
            self,
            FaultKind::HostLinkDrop { .. }
                | FaultKind::HostLinkCorrupt { .. }
                | FaultKind::HostLinkStall { .. }
                | FaultKind::WaferStall { .. }
        )
    }
}

/// A fault scheduled for a specific cycle.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Fabric cycle at (or after) which the fault applies.
    pub at_cycle: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic schedule of fault events.
///
/// Events are applied in cycle order by the fabric once the plan is armed
/// via [`Fabric::arm_faults`]; link faults arm at their cycle and fire on
/// the next flit that crosses the chosen link.
///
/// [`Fabric::arm_faults`]: crate::fabric::Fabric::arm_faults
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedules `kind` at `at_cycle` (builder style).
    pub fn with(mut self, at_cycle: u64, kind: FaultKind) -> FaultPlan {
        self.push(at_cycle, kind);
        self
    }

    /// Schedules `kind` at `at_cycle`.
    pub fn push(&mut self, at_cycle: u64, kind: FaultKind) {
        self.events.push(FaultEvent { at_cycle, kind });
    }

    /// The scheduled events, sorted by cycle (stable for equal cycles).
    pub fn events(&self) -> Vec<FaultEvent> {
        let mut evs = self.events.clone();
        evs.sort_by_key(|e| e.at_cycle);
        evs
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Draws `n` faults of `kind_pool` kinds uniformly over `0..horizon`
    /// cycles on a `w × h` fabric, deterministically from `seed`.
    ///
    /// `sram_words` bounds the byte addresses bit flips may target (pass the
    /// portion of SRAM actually holding data so flips land where they
    /// matter). The same arguments always produce the same plan.
    ///
    /// # Panics
    /// Panics if `kind_pool` contains an ensemble-level class (those draw
    /// seam/wafer coordinates — use [`FaultPlan::random_host_link`]).
    pub fn random(
        seed: u64,
        n: usize,
        horizon: u64,
        w: usize,
        h: usize,
        sram_words: u32,
        kind_pool: &[FaultKindClass],
    ) -> FaultPlan {
        assert!(!kind_pool.is_empty(), "empty fault kind pool");
        assert!(sram_words > 0, "sram_words must be nonzero");
        let mut rng = SplitMix64::new(seed);
        let mut plan = FaultPlan::new();
        for _ in 0..n {
            let at_cycle = rng.below(horizon.max(1));
            let x = rng.below(w as u64) as usize;
            let y = rng.below(h as u64) as usize;
            let class = kind_pool[rng.below(kind_pool.len() as u64) as usize];
            let port = Port::ALL[rng.below(4) as usize]; // cardinal ports only
            let kind = match class {
                FaultKindClass::SramBitFlip => FaultKind::SramBitFlip {
                    x,
                    y,
                    addr: 2 * rng.below(sram_words as u64) as u32,
                    bit: rng.below(16) as u8,
                },
                FaultKindClass::TileKill => FaultKind::TileKill { x, y },
                FaultKindClass::StuckPort => FaultKind::StuckPort { x, y, port },
                FaultKindClass::LinkCorrupt => {
                    FaultKind::LinkCorrupt { x, y, port, bit: rng.below(16) as u8 }
                }
                FaultKindClass::LinkDrop => FaultKind::LinkDrop { x, y, port },
                FaultKindClass::HostLinkDrop
                | FaultKindClass::HostLinkCorrupt
                | FaultKindClass::HostLinkStall
                | FaultKindClass::WaferStall => {
                    panic!(
                        "ensemble-level class {class:?} in an on-wafer pool (use random_host_link)"
                    )
                }
            };
            plan.push(at_cycle, kind);
        }
        plan
    }

    /// Like [`FaultPlan::random`], but every drawn tile coordinate lands
    /// inside `region` — the multi-tenant service's model of a fault
    /// domain confined to one tenant's partition. The draw is the same as
    /// `random` over the region's local `w × h` grid, translated to the
    /// region origin, so a region plan at any origin is the same logical
    /// plan.
    ///
    /// # Panics
    /// Panics if `kind_pool` contains an ensemble-level class.
    pub fn random_in_region(
        seed: u64,
        n: usize,
        horizon: u64,
        region: crate::fabric::Region,
        sram_words: u32,
        kind_pool: &[FaultKindClass],
    ) -> FaultPlan {
        let local = Self::random(seed, n, horizon, region.w, region.h, sram_words, kind_pool);
        let (ox, oy) = (region.x, region.y);
        let mut plan = FaultPlan::new();
        for ev in local.events {
            let kind = match ev.kind {
                FaultKind::SramBitFlip { x, y, addr, bit } => {
                    FaultKind::SramBitFlip { x: x + ox, y: y + oy, addr, bit }
                }
                FaultKind::TileKill { x, y } => FaultKind::TileKill { x: x + ox, y: y + oy },
                FaultKind::StuckPort { x, y, port } => {
                    FaultKind::StuckPort { x: x + ox, y: y + oy, port }
                }
                FaultKind::LinkCorrupt { x, y, port, bit } => {
                    FaultKind::LinkCorrupt { x: x + ox, y: y + oy, port, bit }
                }
                FaultKind::LinkDrop { x, y, port } => {
                    FaultKind::LinkDrop { x: x + ox, y: y + oy, port }
                }
                host => unreachable!("{} cannot come from an on-wafer pool", host.label()),
            };
            plan.push(ev.at_cycle, kind);
        }
        plan
    }

    /// Draws `n` ensemble-level faults of `kind_pool` classes uniformly
    /// over `0..horizon` cycles on a `k`-wafer ensemble, deterministically
    /// from `seed`. Seam indices land in `0..k-1`, wafer indices in
    /// `0..k`, and stall windows in `64..1088` cycles — short enough that
    /// the reliable transport usually rides them out, long enough that
    /// some trip the ensemble watchdog and exercise rollback.
    ///
    /// # Panics
    /// Panics if `k < 2` (no seams), the pool is empty, or the pool
    /// contains an on-wafer class.
    pub fn random_host_link(
        seed: u64,
        n: usize,
        horizon: u64,
        k: usize,
        kind_pool: &[FaultKindClass],
    ) -> FaultPlan {
        assert!(k >= 2, "host-link faults need at least 2 wafers, got {k}");
        assert!(!kind_pool.is_empty(), "empty fault kind pool");
        let mut rng = SplitMix64::new(seed);
        let mut plan = FaultPlan::new();
        for _ in 0..n {
            let at_cycle = rng.below(horizon.max(1));
            let seam = rng.below(k as u64 - 1) as usize;
            let dir = rng.below(2) as u8;
            let kind = match kind_pool[rng.below(kind_pool.len() as u64) as usize] {
                FaultKindClass::HostLinkDrop => FaultKind::HostLinkDrop { seam, dir },
                FaultKindClass::HostLinkCorrupt => {
                    FaultKind::HostLinkCorrupt { seam, dir, bit: rng.below(16) as u8 }
                }
                FaultKindClass::HostLinkStall => {
                    FaultKind::HostLinkStall { seam, cycles: 64 + rng.below(1024) }
                }
                FaultKindClass::WaferStall => FaultKind::WaferStall {
                    wafer: rng.below(k as u64) as usize,
                    cycles: 64 + rng.below(1024),
                },
                class => panic!("on-wafer class {class:?} in a host-link pool (use random)"),
            };
            plan.push(at_cycle, kind);
        }
        plan
    }
}

/// Parameter-free fault classes, used to name kinds when drawing random
/// plans (the concrete coordinates are drawn from the seed).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultKindClass {
    /// See [`FaultKind::SramBitFlip`].
    SramBitFlip,
    /// See [`FaultKind::TileKill`].
    TileKill,
    /// See [`FaultKind::StuckPort`].
    StuckPort,
    /// See [`FaultKind::LinkCorrupt`].
    LinkCorrupt,
    /// See [`FaultKind::LinkDrop`].
    LinkDrop,
    /// See [`FaultKind::HostLinkDrop`].
    HostLinkDrop,
    /// See [`FaultKind::HostLinkCorrupt`].
    HostLinkCorrupt,
    /// See [`FaultKind::HostLinkStall`].
    HostLinkStall,
    /// See [`FaultKind::WaferStall`].
    WaferStall,
}

impl FaultKindClass {
    /// All **on-wafer** classes, in a stable order (single-wafer sweep axes
    /// iterate this; the name predates the ensemble-level classes, which
    /// live in [`FaultKindClass::HOST_LINK`] so existing sweep output is
    /// unchanged).
    pub const ALL: [FaultKindClass; 5] = [
        FaultKindClass::SramBitFlip,
        FaultKindClass::TileKill,
        FaultKindClass::StuckPort,
        FaultKindClass::LinkCorrupt,
        FaultKindClass::LinkDrop,
    ];

    /// All ensemble-level classes, in a stable order (multi-wafer sweep
    /// axes iterate this).
    pub const HOST_LINK: [FaultKindClass; 4] = [
        FaultKindClass::HostLinkDrop,
        FaultKindClass::HostLinkCorrupt,
        FaultKindClass::HostLinkStall,
        FaultKindClass::WaferStall,
    ];

    /// Short stable label (matches [`FaultKind::label`]).
    pub fn label(&self) -> &'static str {
        match self {
            FaultKindClass::SramBitFlip => "sram_bit_flip",
            FaultKindClass::TileKill => "tile_kill",
            FaultKindClass::StuckPort => "stuck_port",
            FaultKindClass::LinkCorrupt => "link_corrupt",
            FaultKindClass::LinkDrop => "link_drop",
            FaultKindClass::HostLinkDrop => "host_link_drop",
            FaultKindClass::HostLinkCorrupt => "host_link_corrupt",
            FaultKindClass::HostLinkStall => "host_link_stall",
            FaultKindClass::WaferStall => "wafer_stall",
        }
    }
}

/// One fault as actually applied by the fabric.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FaultRecord {
    /// Cycle the fault took effect.
    pub cycle: u64,
    /// What was applied.
    pub kind: FaultKind,
}

/// Audit trail of injected faults (see [`Fabric::fault_log`]).
///
/// [`Fabric::fault_log`]: crate::fabric::Fabric::fault_log
#[derive(Clone, Debug, Default)]
pub struct FaultLog {
    /// Faults applied so far, in application order.
    pub applied: Vec<FaultRecord>,
    /// Flits silently dropped by [`FaultKind::LinkDrop`] faults.
    pub dropped_flits: u64,
    /// Flits corrupted by [`FaultKind::LinkCorrupt`] faults.
    pub corrupted_flits: u64,
}

/// SplitMix64: a tiny, high-quality, seedable PRNG. Kept private to this
/// crate so fault plans never depend on an external RNG's version-dependent
/// stream (determinism is a hard requirement for reproducing failures).
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift; bias is negligible for the small ranges used here.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_events_sorted_by_cycle() {
        let plan = FaultPlan::new()
            .with(90, FaultKind::TileKill { x: 1, y: 1 })
            .with(10, FaultKind::LinkDrop { x: 0, y: 0, port: Port::East })
            .with(50, FaultKind::SramBitFlip { x: 0, y: 0, addr: 4, bit: 3 });
        let evs = plan.events();
        assert_eq!(evs.len(), 3);
        assert!(evs.windows(2).all(|w| w[0].at_cycle <= w[1].at_cycle));
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
    }

    #[test]
    fn random_plan_is_reproducible() {
        let a = FaultPlan::random(42, 16, 10_000, 4, 4, 256, &FaultKindClass::ALL);
        let b = FaultPlan::random(42, 16, 10_000, 4, 4, 256, &FaultKindClass::ALL);
        assert_eq!(a.events(), b.events());
        let c = FaultPlan::random(43, 16, 10_000, 4, 4, 256, &FaultKindClass::ALL);
        assert_ne!(a.events(), c.events(), "different seed, different plan");
    }

    #[test]
    fn random_plan_respects_bounds() {
        let plan = FaultPlan::random(7, 64, 1000, 3, 2, 128, &FaultKindClass::ALL);
        for ev in plan.events() {
            assert!(ev.at_cycle < 1000);
            match ev.kind {
                FaultKind::SramBitFlip { x, y, addr, bit } => {
                    assert!(x < 3 && y < 2);
                    assert!(addr < 256 && addr % 2 == 0);
                    assert!(bit < 16);
                }
                FaultKind::TileKill { x, y } => assert!(x < 3 && y < 2),
                FaultKind::StuckPort { x, y, port }
                | FaultKind::LinkCorrupt { x, y, port, .. }
                | FaultKind::LinkDrop { x, y, port } => {
                    assert!(x < 3 && y < 2);
                    assert_ne!(port, Port::Ramp, "random link faults target cardinal ports");
                }
                host => panic!("on-wafer pool drew ensemble-level fault {host:?}"),
            }
        }
    }

    #[test]
    fn random_host_link_plan_respects_bounds_and_reproduces() {
        let k = 4;
        let a = FaultPlan::random_host_link(99, 32, 5000, k, &FaultKindClass::HOST_LINK);
        let b = FaultPlan::random_host_link(99, 32, 5000, k, &FaultKindClass::HOST_LINK);
        assert_eq!(a.events(), b.events());
        for ev in a.events() {
            assert!(ev.at_cycle < 5000);
            assert!(ev.kind.is_host_level());
            match ev.kind {
                FaultKind::HostLinkDrop { seam, dir } => {
                    assert!(seam < k - 1 && dir < 2);
                }
                FaultKind::HostLinkCorrupt { seam, dir, bit } => {
                    assert!(seam < k - 1 && dir < 2 && bit < 16);
                }
                FaultKind::HostLinkStall { seam, cycles } => {
                    assert!(seam < k - 1 && (64..1088).contains(&cycles));
                }
                FaultKind::WaferStall { wafer, cycles } => {
                    assert!(wafer < k && (64..1088).contains(&cycles));
                }
                wafer_local => panic!("host-link pool drew on-wafer fault {wafer_local:?}"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "ensemble-level class")]
    fn on_wafer_pool_rejects_host_link_classes() {
        let _ = FaultPlan::random(1, 1, 100, 2, 2, 16, &[FaultKindClass::HostLinkDrop]);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(FaultKind::TileKill { x: 0, y: 0 }.label(), "tile_kill");
        assert_eq!(FaultKindClass::TileKill.label(), "tile_kill");
        assert!(FaultKind::TileKill { x: 0, y: 0 }.is_permanent());
        assert!(FaultKind::StuckPort { x: 0, y: 0, port: Port::East }.is_permanent());
        assert!(!FaultKind::SramBitFlip { x: 0, y: 0, addr: 0, bit: 0 }.is_permanent());
        assert_eq!(FaultKind::HostLinkDrop { seam: 0, dir: 0 }.label(), "host_link_drop");
        assert_eq!(FaultKindClass::WaferStall.label(), "wafer_stall");
        assert!(FaultKind::WaferStall { wafer: 0, cycles: 64 }.is_host_level());
        assert!(!FaultKind::WaferStall { wafer: 0, cycles: 64 }.is_permanent());
        assert!(!FaultKind::LinkDrop { x: 0, y: 0, port: Port::East }.is_host_level());
    }
}
