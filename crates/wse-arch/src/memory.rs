//! Per-tile SRAM.
//!
//! Each tile owns 48 KB of private SRAM ("Local memory is 48 KB ... There is
//! no shared memory"). The model is byte-addressed with typed fp16/fp32
//! accessors and a bump allocator used by kernel builders; exceeding the
//! 48 KB capacity is a hard error, which is how the paper's memory-footprint
//! constraints (10 Z words, 38×38 blocks) become enforced invariants rather
//! than documentation.

use crate::types::Dtype;
use wse_float::F16;

/// Capacity of one tile's SRAM in bytes.
pub const TILE_SRAM_BYTES: u32 = 48 * 1024;

/// A tile's private memory with a bump allocator.
#[derive(Clone, Debug)]
pub struct Memory {
    bytes: Vec<u8>,
    next: u32,
    peak: u32,
    allocs: Vec<Allocation>,
}

/// One recorded allocation: a contiguous byte extent handed out by
/// [`Memory::alloc`]. The linter audits descriptor extents against these.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Allocation {
    /// First byte of the extent.
    pub base: u32,
    /// Length in bytes (after 2-byte alignment rounding).
    pub len: u32,
}

impl Allocation {
    /// One past the last byte of the extent.
    #[inline]
    pub fn end(self) -> u32 {
        self.base + self.len
    }

    /// `true` if `[base, base + len)` lies entirely inside this extent.
    #[inline]
    pub fn contains(self, base: u32, len: u32) -> bool {
        base >= self.base && base + len <= self.end()
    }
}

/// Error returned when an allocation exceeds SRAM capacity.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct OutOfSram {
    /// Bytes requested.
    pub requested: u32,
    /// Bytes still free.
    pub free: u32,
}

impl std::fmt::Display for OutOfSram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tile SRAM exhausted: requested {} B, free {} B", self.requested, self.free)
    }
}

impl std::error::Error for OutOfSram {}

impl Default for Memory {
    fn default() -> Memory {
        Memory::new()
    }
}

impl Memory {
    /// A fresh, zeroed 48 KB SRAM.
    pub fn new() -> Memory {
        Memory { bytes: vec![0; TILE_SRAM_BYTES as usize], next: 0, peak: 0, allocs: Vec::new() }
    }

    /// Allocates `nbytes` (2-byte aligned), returning the base address.
    pub fn alloc(&mut self, nbytes: u32) -> Result<u32, OutOfSram> {
        let aligned = (nbytes + 1) & !1;
        let free = TILE_SRAM_BYTES - self.next;
        if aligned > free {
            return Err(OutOfSram { requested: aligned, free });
        }
        let base = self.next;
        self.next += aligned;
        self.peak = self.peak.max(self.next);
        self.allocs.push(Allocation { base, len: aligned });
        Ok(base)
    }

    /// Allocates a vector of `len` elements of `dtype`.
    pub fn alloc_vec(&mut self, len: u32, dtype: Dtype) -> Result<u32, OutOfSram> {
        self.alloc(len * dtype.bytes())
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u32 {
        self.next
    }

    /// Bytes still available to the allocator.
    pub fn bytes_free(&self) -> u32 {
        TILE_SRAM_BYTES - self.next
    }

    /// High-water mark of the allocator.
    pub fn peak(&self) -> u32 {
        self.peak
    }

    /// The full SRAM contents as raw bytes (equivalence testing and
    /// checkpoint tooling).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Every live allocation, in allocation order (the allocation map the
    /// linter audits descriptors against).
    pub fn allocations(&self) -> &[Allocation] {
        &self.allocs
    }

    /// Resets the allocator (contents retained; used between solver phases
    /// that rebuild their layout from scratch).
    pub fn reset_allocator(&mut self) {
        self.next = 0;
        self.allocs.clear();
    }

    /// Reads an fp16 element at byte address `addr`.
    #[inline]
    pub fn read_f16(&self, addr: u32) -> F16 {
        let a = addr as usize;
        F16::from_bits(u16::from_le_bytes([self.bytes[a], self.bytes[a + 1]]))
    }

    /// Writes an fp16 element at byte address `addr`.
    #[inline]
    pub fn write_f16(&mut self, addr: u32, v: F16) {
        let a = addr as usize;
        self.bytes[a..a + 2].copy_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Reads an fp32 element at byte address `addr`.
    #[inline]
    pub fn read_f32(&self, addr: u32) -> f32 {
        let a = addr as usize;
        f32::from_le_bytes([self.bytes[a], self.bytes[a + 1], self.bytes[a + 2], self.bytes[a + 3]])
    }

    /// Writes an fp32 element at byte address `addr`.
    #[inline]
    pub fn write_f32(&mut self, addr: u32, v: f32) {
        let a = addr as usize;
        self.bytes[a..a + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads raw bits of an element of `dtype` (for fabric transport).
    #[inline]
    pub fn read_bits(&self, addr: u32, dtype: Dtype) -> u32 {
        match dtype {
            Dtype::F16 => self.read_f16(addr).to_bits() as u32,
            Dtype::F32 => self.read_f32(addr).to_bits(),
        }
    }

    /// Writes raw bits of an element of `dtype`.
    #[inline]
    pub fn write_bits(&mut self, addr: u32, dtype: Dtype, bits: u32) {
        match dtype {
            Dtype::F16 => self.write_f16(addr, F16::from_bits(bits as u16)),
            Dtype::F32 => self.write_f32(addr, f32::from_bits(bits)),
        }
    }

    /// Flips bit `bit` (0–15) of the 16-bit word at byte address `addr` —
    /// the fault injector's model of an SRAM single-event upset.
    ///
    /// # Panics
    /// Panics if `bit >= 16` or the word lies outside SRAM.
    pub fn flip_bit(&mut self, addr: u32, bit: u8) {
        assert!(bit < 16, "bit index {bit} out of range for a 16-bit word");
        let a = addr as usize;
        let word = u16::from_le_bytes([self.bytes[a], self.bytes[a + 1]]) ^ (1u16 << bit);
        self.bytes[a..a + 2].copy_from_slice(&word.to_le_bytes());
    }

    /// Copies an fp16 slice into memory starting at `addr` (host-side data
    /// loading, standing in for the CS-1's host interface).
    pub fn store_f16_slice(&mut self, addr: u32, data: &[F16]) {
        for (i, &v) in data.iter().enumerate() {
            self.write_f16(addr + 2 * i as u32, v);
        }
    }

    /// Reads `len` fp16 elements starting at `addr`.
    pub fn load_f16_slice(&self, addr: u32, len: usize) -> Vec<F16> {
        (0..len).map(|i| self.read_f16(addr + 2 * i as u32)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_until_full() {
        let mut m = Memory::new();
        let a = m.alloc(100).unwrap();
        let b = m.alloc(3).unwrap(); // rounds to 4
        assert_eq!(a, 0);
        assert_eq!(b, 100);
        assert_eq!(m.used(), 104);
        let err = m.alloc(TILE_SRAM_BYTES).unwrap_err();
        assert_eq!(err.free, TILE_SRAM_BYTES - 104);
        // Exactly the rest fits.
        assert!(m.alloc(TILE_SRAM_BYTES - 104).is_ok());
        assert_eq!(m.used(), TILE_SRAM_BYTES);
        assert!(m.alloc(2).is_err());
    }

    #[test]
    fn paper_3d_footprint_fits_with_room() {
        // 10 vectors of Z=1536 fp16: ~30 KB of 48 KB.
        let mut m = Memory::new();
        for _ in 0..10 {
            m.alloc_vec(1536, Dtype::F16).unwrap();
        }
        assert_eq!(m.used(), 10 * 1536 * 2);
        assert!(m.used() < TILE_SRAM_BYTES);
    }

    #[test]
    fn rw_roundtrip_f16_f32() {
        let mut m = Memory::new();
        m.write_f16(10, F16::from_f32(1.5));
        assert_eq!(m.read_f16(10).to_f32(), 1.5);
        m.write_f32(100, -2.25);
        assert_eq!(m.read_f32(100), -2.25);
        // bits path
        m.write_bits(20, Dtype::F16, F16::from_f32(3.0).to_bits() as u32);
        assert_eq!(m.read_bits(20, Dtype::F16), F16::from_f32(3.0).to_bits() as u32);
        m.write_bits(24, Dtype::F32, 7.5f32.to_bits());
        assert_eq!(m.read_f32(24), 7.5);
    }

    #[test]
    fn slice_roundtrip() {
        let mut m = Memory::new();
        let data: Vec<F16> = (0..17).map(|i| F16::from_f64(i as f64 * 0.5)).collect();
        let addr = m.alloc_vec(17, Dtype::F16).unwrap();
        m.store_f16_slice(addr, &data);
        assert_eq!(m.load_f16_slice(addr, 17), data);
    }

    #[test]
    fn reset_allocator_reuses_space() {
        let mut m = Memory::new();
        m.alloc(40_000).unwrap();
        m.reset_allocator();
        assert_eq!(m.used(), 0);
        assert_eq!(m.peak(), 40_000);
        assert!(m.alloc(40_000).is_ok());
    }

    #[test]
    fn bytes_free_tracks_allocations() {
        let mut m = Memory::new();
        assert_eq!(m.bytes_free(), TILE_SRAM_BYTES);
        m.alloc(100).unwrap();
        assert_eq!(m.bytes_free(), TILE_SRAM_BYTES - 100);
        m.alloc(3).unwrap(); // rounds to 4
        assert_eq!(m.bytes_free(), TILE_SRAM_BYTES - 104);
        assert_eq!(m.bytes_free(), TILE_SRAM_BYTES - m.used());
        m.reset_allocator();
        assert_eq!(m.bytes_free(), TILE_SRAM_BYTES);
    }

    #[test]
    fn allocation_map_records_extents() {
        let mut m = Memory::new();
        let a = m.alloc(100).unwrap();
        let b = m.alloc_vec(8, Dtype::F32).unwrap();
        let map = m.allocations();
        assert_eq!(map.len(), 2);
        assert_eq!(map[0], Allocation { base: a, len: 100 });
        assert_eq!(map[1], Allocation { base: b, len: 32 });
        assert_eq!(map[1].end(), b + 32);
        assert!(map[0].contains(a, 100));
        assert!(map[0].contains(a + 10, 50));
        assert!(!map[0].contains(a + 10, 100), "extends past the extent");
        assert!(!map[1].contains(a, 4), "wrong extent");
        m.reset_allocator();
        assert!(m.allocations().is_empty());
    }
}
