//! The per-tile router.
//!
//! "The core connects to a local router that has five bidirectional links,
//! one to each of its four nearest neighbors and one to its own core. The
//! router can move data into and out of these five links, in parallel, on
//! every cycle. ... Communication between potentially distant processors
//! occurs along predetermined routes. Routing is configured offline ... The
//! fanout of data to multiple destinations is done through the routing; the
//! router can forward an input word to any subset of its five output ports."
//!
//! Each (input-port, color) pair has a small hardware queue; each output
//! port moves [`PORT_BYTES_PER_CYCLE`] per cycle; a flit forwards only when
//! *all* of its fanout destinations can accept it (credit-based
//! backpressure, which is how the hardware avoids loss).

use crate::types::{Color, Flit, Port, NUM_COLORS, PORT_BYTES_PER_CYCLE, QUEUE_CAPACITY};
use std::collections::VecDeque;

/// Routing table entry: the set of output ports for one (input, color).
type Fanout = Vec<Port>;

/// Number of (in_port, color) arbitration pairs.
const PAIRS: usize = 5 * NUM_COLORS;

/// The router of one tile.
#[derive(Clone, Debug, Default)]
pub struct Router {
    /// `routes[in_port][color]` → output fanout.
    routes: [[Option<Fanout>; NUM_COLORS]; 5],
    /// `in_queues[in_port][color]`.
    in_queues: [[VecDeque<Flit>; NUM_COLORS]; 5],
    /// Round-robin arbitration cursor over (in_port, color) pairs.
    rr: usize,
    /// Bitmask of permanently stuck *output* ports (fault injection); a
    /// flit whose fanout touches a stuck port never forwards. Zero on a
    /// healthy router, so the check is a single AND on the hot path.
    stuck: u8,
    /// Bit `in_port * NUM_COLORS + color` set when that pair has a
    /// configured route. Lets [`Router::stage_into`] visit only pairs
    /// that can possibly forward instead of all 120.
    routed_mask: u128,
    /// Bit `in_port * NUM_COLORS + color` set when that input queue is
    /// non-empty. Maintained by enqueue/stage/clear.
    occupied_mask: u128,
    /// Total queued flits across all pairs (O(1) [`Router::queued`]).
    queued_count: usize,
    /// Flits forwarded (perf counter).
    pub flits_routed: u64,
    /// Per-output-port backpressure counter: cycles a head flit with a
    /// configured route was held because that downstream port's queue was
    /// full, indexed by [`Port::index`]. Bandwidth exhaustion and stuck
    /// ports are *not* counted — only downstream occupancy.
    pub backpressure: [u64; 5],
}

/// A flit staged for delivery at the end of the cycle.
#[derive(Copy, Clone, Debug)]
pub struct StagedFlit {
    /// Output port it leaves through.
    pub out: Port,
    /// Its color.
    pub color: Color,
    /// The payload.
    pub flit: Flit,
}

impl Router {
    /// A router with no routes configured.
    pub fn new() -> Router {
        Router::default()
    }

    /// Configures (replaces) the fanout for `(in_port, color)`.
    ///
    /// A cardinal port may not reflect back out the same link; the ramp
    /// *may* route back to the ramp — that is the paper's loopback ("we loop
    /// back the outgoing local data and route it in").
    ///
    /// # Panics
    /// Panics if the fanout is empty or u-turns a cardinal port.
    pub fn set_route(&mut self, in_port: Port, color: Color, outs: &[Port]) {
        assert!(!outs.is_empty(), "empty fanout");
        assert!(
            in_port == Port::Ramp || !outs.contains(&in_port),
            "route reflects {in_port:?} back to itself on color {color}"
        );
        self.routes[in_port.index()][color as usize] = Some(outs.to_vec());
        self.routed_mask |= 1u128 << (in_port.index() * NUM_COLORS + color as usize);
    }

    /// The configured fanout, if any.
    pub fn route(&self, in_port: Port, color: Color) -> Option<&[Port]> {
        self.routes[in_port.index()][color as usize].as_deref()
    }

    /// Iterates every configured route as `(in_port, color, fanout)` —
    /// the read-only view the static verifier walks.
    pub fn routes(&self) -> impl Iterator<Item = (Port, Color, &[Port])> {
        Port::ALL.into_iter().flat_map(move |p| {
            (0..NUM_COLORS).filter_map(move |c| {
                self.routes[p.index()][c].as_deref().map(|f| (p, c as Color, f))
            })
        })
    }

    /// Space available in the `(in_port, color)` queue.
    pub fn space(&self, in_port: Port, color: Color) -> usize {
        QUEUE_CAPACITY - self.in_queues[in_port.index()][color as usize].len()
    }

    /// Enqueues an arriving flit.
    ///
    /// # Panics
    /// Panics on overflow (senders must honor [`Router::space`]).
    pub fn enqueue(&mut self, in_port: Port, color: Color, flit: Flit) {
        assert!(self.space(in_port, color) > 0, "router queue overflow at {in_port:?}/{color}");
        self.in_queues[in_port.index()][color as usize].push_back(flit);
        self.occupied_mask |= 1u128 << (in_port.index() * NUM_COLORS + color as usize);
        self.queued_count += 1;
    }

    /// Total queued flits (diagnostics / quiescence). O(1).
    pub fn queued(&self) -> usize {
        self.queued_count
    }

    /// Permanently disables output port `out` (fault injection: a stuck
    /// port). Flits routed through it are held forever by backpressure.
    pub fn stick_port(&mut self, out: Port) {
        self.stuck |= 1 << out.index();
    }

    /// `true` if `out` has been stuck by [`Router::stick_port`].
    pub fn port_stuck(&self, out: Port) -> bool {
        self.stuck & (1 << out.index()) != 0
    }

    /// Discards every queued flit and rewinds the arbitration cursor
    /// (checkpoint restore). Routes, stuck-port state, and the forwarded
    /// and backpressure counters are retained.
    pub fn clear_queues(&mut self) {
        for q in self.in_queues.iter_mut().flatten() {
            q.clear();
        }
        self.occupied_mask = 0;
        self.queued_count = 0;
        self.rr = 0;
    }

    /// Selects flits to forward this cycle.
    ///
    /// `can_accept(out, color, already_staged_to_that_destination)` tells the
    /// router whether the *next hop* (neighbor queue or core ramp) can take
    /// one more flit; the fabric provides it from a start-of-cycle snapshot.
    pub fn stage(&mut self, can_accept: impl FnMut(Port, Color, usize) -> bool) -> Vec<StagedFlit> {
        let mut staged = Vec::new();
        self.stage_into(can_accept, &mut staged);
        staged
    }

    /// Allocation-free form of [`Router::stage`]: appends staged flits to a
    /// caller-owned buffer and returns the number of flits *forwarded* (one
    /// per queue pop, regardless of fanout width).
    ///
    /// Arbitration is bit-identical to the naive full scan: only the live
    /// pairs — routed *and* occupied, per the incrementally maintained
    /// bitmasks — are visited, in exactly the `(rr + k) % 120` order the
    /// full scan would have reached them. Pairs outside the live set are
    /// no-ops in the full scan (no flit, or no route ⇒ no state change, no
    /// backpressure charge), so skipping them changes nothing.
    pub fn stage_into(
        &mut self,
        mut can_accept: impl FnMut(Port, Color, usize) -> bool,
        staged: &mut Vec<StagedFlit>,
    ) -> usize {
        let Router {
            routes,
            in_queues,
            rr,
            stuck,
            routed_mask,
            occupied_mask,
            queued_count,
            flits_routed,
            backpressure,
        } = self;
        let mut budget = [PORT_BYTES_PER_CYCLE; 5];
        // counts[(out, color)] of flits already staged this cycle.
        let mut counts = [[0usize; NUM_COLORS]; 5];
        let mut forwarded = 0usize;
        // Backpressure is counted on the first arbitration sweep only, so a
        // held flit charges each full downstream port exactly once per cycle
        // even though the sweep loop may revisit it.
        let mut first_sweep = true;
        loop {
            let mut moved = false;
            let live = *routed_mask & *occupied_mask;
            // Two segments walk the live bits in (rr + k) % PAIRS order:
            // slots rr..PAIRS ascending, then 0..rr ascending.
            let segments = [live & (!0u128 << *rr), live & ((1u128 << *rr) - 1)];
            for mut seg in segments {
                while seg != 0 {
                    let slot = seg.trailing_zeros() as usize;
                    seg &= seg - 1;
                    let (pi, color) = (slot / NUM_COLORS, slot % NUM_COLORS);
                    let Some(&flit) = in_queues[pi][color].front() else { continue };
                    let Some(fanout) = routes[pi][color].as_deref() else { continue };
                    let mut fits = true;
                    for &o in fanout {
                        if *stuck & (1 << o.index()) != 0 || budget[o.index()] < flit.bytes() {
                            fits = false;
                            continue;
                        }
                        if !can_accept(o, color as Color, counts[o.index()][color]) {
                            fits = false;
                            if first_sweep {
                                backpressure[o.index()] += 1;
                            }
                        }
                    }
                    if !fits {
                        continue;
                    }
                    in_queues[pi][color].pop_front();
                    if in_queues[pi][color].is_empty() {
                        *occupied_mask &= !(1u128 << slot);
                    }
                    *queued_count -= 1;
                    for &o in fanout {
                        budget[o.index()] -= flit.bytes();
                        counts[o.index()][color] += 1;
                        staged.push(StagedFlit { out: o, color: color as Color, flit });
                    }
                    *flits_routed += 1;
                    forwarded += 1;
                    moved = true;
                }
            }
            first_sweep = false;
            if !moved {
                break;
            }
        }
        if forwarded > 0 {
            *rr = (*rr + 1) % PAIRS;
        }
        forwarded
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forwards_along_configured_route() {
        let mut r = Router::new();
        r.set_route(Port::West, 3, &[Port::East]);
        r.enqueue(Port::West, 3, Flit::f16(0x1234));
        let staged = r.stage(|_, _, _| true);
        assert_eq!(staged.len(), 1);
        assert_eq!(staged[0].out, Port::East);
        assert_eq!(staged[0].color, 3);
        assert_eq!(staged[0].flit.bits, 0x1234);
        assert_eq!(r.queued(), 0);
    }

    #[test]
    fn fanout_duplicates_to_all_ports() {
        let mut r = Router::new();
        r.set_route(Port::Ramp, 1, &[Port::North, Port::South, Port::East, Port::West]);
        r.enqueue(Port::Ramp, 1, Flit::f16(7));
        let staged = r.stage(|_, _, _| true);
        assert_eq!(staged.len(), 4, "one flit fans out to four ports");
        assert_eq!(r.flits_routed, 1);
    }

    #[test]
    fn port_bandwidth_limits_f16_to_two_per_cycle() {
        let mut r = Router::new();
        r.set_route(Port::West, 0, &[Port::East]);
        for i in 0..5 {
            r.enqueue(Port::West, 0, Flit::f16(i));
        }
        let staged = r.stage(|_, _, _| true);
        assert_eq!(staged.len(), 2, "4 bytes/cycle = two fp16 flits");
        assert_eq!(r.queued(), 3);
        let staged = r.stage(|_, _, _| true);
        assert_eq!(staged.len(), 2);
    }

    #[test]
    fn f32_moves_one_per_cycle() {
        let mut r = Router::new();
        r.set_route(Port::North, 2, &[Port::South]);
        r.enqueue(Port::North, 2, Flit::f32(1.0));
        r.enqueue(Port::North, 2, Flit::f32(2.0));
        assert_eq!(r.stage(|_, _, _| true).len(), 1);
    }

    #[test]
    fn backpressure_holds_flit() {
        let mut r = Router::new();
        r.set_route(Port::West, 0, &[Port::East]);
        r.enqueue(Port::West, 0, Flit::f16(1));
        let staged = r.stage(|_, _, _| false);
        assert!(staged.is_empty());
        assert_eq!(r.queued(), 1, "flit must stay queued under backpressure");
    }

    #[test]
    fn fanout_is_all_or_nothing() {
        let mut r = Router::new();
        r.set_route(Port::Ramp, 0, &[Port::North, Port::South]);
        r.enqueue(Port::Ramp, 0, Flit::f16(1));
        // South blocked: nothing moves, not even the North copy.
        let staged = r.stage(|o, _, _| o != Port::South);
        assert!(staged.is_empty());
        assert_eq!(r.queued(), 1);
    }

    #[test]
    fn distinct_colors_share_port_bandwidth() {
        let mut r = Router::new();
        r.set_route(Port::West, 0, &[Port::East]);
        r.set_route(Port::West, 1, &[Port::East]);
        r.enqueue(Port::West, 0, Flit::f16(1));
        r.enqueue(Port::West, 1, Flit::f16(2));
        r.enqueue(Port::West, 0, Flit::f16(3));
        let staged = r.stage(|_, _, _| true);
        assert_eq!(staged.len(), 2, "East port carries 4 bytes total");
    }

    #[test]
    #[should_panic(expected = "back to itself")]
    fn self_route_panics() {
        let mut r = Router::new();
        r.set_route(Port::East, 0, &[Port::East]);
    }

    #[test]
    fn unrouted_flits_stay_queued() {
        let mut r = Router::new();
        r.enqueue(Port::North, 9, Flit::f16(1));
        assert!(r.stage(|_, _, _| true).is_empty());
        assert_eq!(r.queued(), 1);
    }

    #[test]
    fn routes_iterator_lists_configured_entries() {
        let mut r = Router::new();
        assert_eq!(r.routes().count(), 0);
        r.set_route(Port::West, 3, &[Port::East]);
        r.set_route(Port::Ramp, 1, &[Port::North, Port::Ramp]);
        let mut all: Vec<_> = r.routes().map(|(p, c, f)| (p, c, f.to_vec())).collect();
        all.sort_by_key(|&(p, c, _)| (p.index(), c));
        assert_eq!(
            all,
            vec![(Port::West, 3, vec![Port::East]), (Port::Ramp, 1, vec![Port::North, Port::Ramp]),]
        );
    }

    #[test]
    fn full_queue_at_one_fanout_destination_stalls_every_branch() {
        // Model the neighbor-side queues explicitly: South's downstream
        // queue is full (QUEUE_CAPACITY flits, draining nothing), North's is
        // empty. The all-or-nothing fanout must hold the flit back from BOTH
        // branches until South drains — the credit discipline the deadlock
        // linter rule reasons about.
        let mut r = Router::new();
        r.set_route(Port::Ramp, 2, &[Port::North, Port::South]);
        for i in 0..4 {
            r.enqueue(Port::Ramp, 2, Flit::f16(i));
        }
        let mut south_used = QUEUE_CAPACITY;
        let mut north_used = 0usize;
        for _ in 0..10 {
            let staged = r.stage(|o, _, staged_here| {
                let used = if o == Port::South { south_used } else { north_used };
                used + staged_here < QUEUE_CAPACITY
            });
            assert!(staged.is_empty(), "no branch may advance while South is full");
        }
        assert_eq!(r.queued(), 4, "all four flits still held");
        // One credit opens up at South: exactly one flit crosses, to both.
        south_used = QUEUE_CAPACITY - 1;
        let staged = r.stage(|o, _, staged_here| {
            let used = if o == Port::South { south_used } else { north_used };
            used + staged_here < QUEUE_CAPACITY
        });
        assert_eq!(staged.len(), 2, "one flit, fanned out to both ports");
        north_used += 1;
        assert_eq!(north_used, 1);
        assert_eq!(r.queued(), 3);
    }

    #[test]
    fn stuck_port_holds_flits_forever() {
        let mut r = Router::new();
        r.set_route(Port::West, 0, &[Port::East]);
        r.set_route(Port::North, 1, &[Port::South]);
        r.stick_port(Port::East);
        assert!(r.port_stuck(Port::East));
        assert!(!r.port_stuck(Port::South));
        r.enqueue(Port::West, 0, Flit::f16(1));
        r.enqueue(Port::North, 1, Flit::f16(2));
        let staged = r.stage(|_, _, _| true);
        // Only the South-bound flit moves; the East-bound one is wedged.
        assert_eq!(staged.len(), 1);
        assert_eq!(staged[0].out, Port::South);
        assert_eq!(r.queued(), 1);
        for _ in 0..5 {
            assert!(r.stage(|_, _, _| true).is_empty());
        }
    }

    #[test]
    fn backpressure_counter_charges_full_downstream_once_per_cycle() {
        let mut r = Router::new();
        r.set_route(Port::Ramp, 0, &[Port::North, Port::South]);
        r.enqueue(Port::Ramp, 0, Flit::f16(1));
        // South full, North open: one charge to South per stage() cycle,
        // none to North (it could accept; the hold is all-or-nothing).
        for cycle in 1..=3u64 {
            assert!(r.stage(|o, _, _| o != Port::South).is_empty());
            assert_eq!(r.backpressure[Port::South.index()], cycle);
            assert_eq!(r.backpressure[Port::North.index()], 0);
        }
        // Unblocked: the flit moves, counters stop advancing.
        assert_eq!(r.stage(|_, _, _| true).len(), 2);
        assert_eq!(r.backpressure[Port::South.index()], 3);
        // Bandwidth exhaustion is not backpressure: five queued f16 flits
        // behind a 2-flit/cycle port charge nothing.
        let mut r2 = Router::new();
        r2.set_route(Port::West, 0, &[Port::East]);
        for i in 0..5 {
            r2.enqueue(Port::West, 0, Flit::f16(i));
        }
        assert_eq!(r2.stage(|_, _, _| true).len(), 2);
        assert_eq!(r2.backpressure, [0; 5]);
    }

    #[test]
    fn clear_queues_discards_flits_but_keeps_routes() {
        let mut r = Router::new();
        r.set_route(Port::West, 0, &[Port::East]);
        r.enqueue(Port::West, 0, Flit::f16(1));
        r.enqueue(Port::West, 0, Flit::f16(2));
        r.clear_queues();
        assert_eq!(r.queued(), 0);
        assert!(r.route(Port::West, 0).is_some(), "routes survive a clear");
        r.enqueue(Port::West, 0, Flit::f16(3));
        assert_eq!(r.stage(|_, _, _| true).len(), 1, "router still forwards");
    }

    #[test]
    fn round_robin_shares_port_under_sustained_contention() {
        // Two input streams (distinct colors, distinct in-ports) both
        // forwarding to East. East carries 2 fp16/cycle; round-robin
        // arbitration must keep both streams progressing rather than
        // starving one.
        let mut r = Router::new();
        r.set_route(Port::West, 0, &[Port::East]);
        r.set_route(Port::North, 1, &[Port::East]);
        let mut from_west = 0usize;
        let mut from_north = 0usize;
        for _ in 0..32 {
            // Keep both queues topped up: sustained contention.
            while r.space(Port::West, 0) > 0 {
                r.enqueue(Port::West, 0, Flit::f16(0xAAAA));
            }
            while r.space(Port::North, 1) > 0 {
                r.enqueue(Port::North, 1, Flit::f16(0xBBBB));
            }
            for s in r.stage(|_, _, _| true) {
                assert_eq!(s.out, Port::East);
                match s.color {
                    0 => from_west += 1,
                    1 => from_north += 1,
                    c => panic!("unexpected color {c}"),
                }
            }
        }
        assert_eq!(from_west + from_north, 64, "East sustains 2 fp16/cycle");
        assert!(from_west >= 16, "West starved: {from_west}/64");
        assert!(from_north >= 16, "North starved: {from_north}/64");
    }
}
