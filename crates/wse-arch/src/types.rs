//! Shared identifier and data types for the tile architecture.

/// Element datatype of a tensor, fabric stream, or FIFO.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Dtype {
    /// IEEE binary16 — 2 bytes on the fabric and in memory.
    F16,
    /// IEEE binary32 — 4 bytes.
    F32,
}

impl Dtype {
    /// Size in bytes.
    #[inline]
    pub fn bytes(self) -> u32 {
        match self {
            Dtype::F16 => 2,
            Dtype::F32 => 4,
        }
    }
}

/// A virtual-channel identifier ("color"). The hardware routes each color
/// independently; Fig. 5's tessellation uses five distinct colors per tile
/// neighborhood.
pub type Color = u8;

/// Number of virtual channels modeled (the WSE provides 24).
pub const NUM_COLORS: usize = 24;

/// One word in flight on the fabric: raw bits plus the width it occupies.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Flit {
    /// Raw bit pattern (low 16 bits significant for `F16`).
    pub bits: u32,
    /// Width of the payload.
    pub dtype: Dtype,
}

impl Flit {
    /// An fp16 flit.
    #[inline]
    pub fn f16(bits: u16) -> Flit {
        Flit { bits: bits as u32, dtype: Dtype::F16 }
    }

    /// An fp32 flit.
    #[inline]
    pub fn f32(value: f32) -> Flit {
        Flit { bits: value.to_bits(), dtype: Dtype::F32 }
    }

    /// Payload size in bytes.
    #[inline]
    pub fn bytes(self) -> u32 {
        self.dtype.bytes()
    }
}

/// One of the router's five bidirectional ports.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Port {
    /// Toward `y - 1`.
    North,
    /// Toward `y + 1`.
    South,
    /// Toward `x + 1`.
    East,
    /// Toward `x - 1`.
    West,
    /// The tile's own core (the "ramp").
    Ramp,
}

impl Port {
    /// All five ports, in a fixed arbitration order.
    pub const ALL: [Port; 5] = [Port::North, Port::South, Port::East, Port::West, Port::Ramp];

    /// Index into per-port arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Port::North => 0,
            Port::South => 1,
            Port::East => 2,
            Port::West => 3,
            Port::Ramp => 4,
        }
    }

    /// The port on the *neighboring* router that receives what this port
    /// sends (None for the ramp).
    pub fn opposite(self) -> Option<Port> {
        match self {
            Port::North => Some(Port::South),
            Port::South => Some(Port::North),
            Port::East => Some(Port::West),
            Port::West => Some(Port::East),
            Port::Ramp => None,
        }
    }

    /// Grid displacement of the neighbor this port faces.
    pub fn delta(self) -> (i32, i32) {
        match self {
            Port::North => (0, -1),
            Port::South => (0, 1),
            Port::East => (1, 0),
            Port::West => (-1, 0),
            Port::Ramp => (0, 0),
        }
    }
}

/// Identifies a task within a core's task table.
pub type TaskId = usize;

/// Identifies a data-structure register (tensor descriptor slot).
pub type DsrId = usize;

/// Identifies a hardware FIFO within a tile.
pub type FifoId = usize;

/// Identifies a scalar register (f32) in the core's register file.
pub type Reg = usize;

/// Number of scalar registers modeled per core.
pub const NUM_REGS: usize = 32;

/// Number of background thread slots per core ("the core supports nine
/// concurrent threads of execution").
pub const NUM_THREADS: usize = 9;

/// Bytes each router port can move per cycle in each direction. 4 bytes
/// matches the observations that a core "can receive only one [32-bit word]
/// from the fabric" per cycle while fp16 streams flow at two elements per
/// cycle.
pub const PORT_BYTES_PER_CYCLE: u32 = 4;

/// Capacity, in flits, of each (input-port, color) router queue.
pub const QUEUE_CAPACITY: usize = 8;

/// Capacity, in flits, of the core's injection (ramp-out) queue.
pub const RAMP_OUT_CAPACITY: usize = 8;

/// SIMD lanes for two-operand fp16 tensor instructions (8 fp16 flops per
/// cycle peak = 4 FMAC lanes).
pub const SIMD_F16: u32 = 4;

/// Lanes for the mixed-precision (fp16 multiply / fp32 accumulate) dot
/// instruction: "the throughput is two FMACs per core per cycle".
pub const SIMD_MIXED: u32 = 2;

/// Lanes for pure fp32 tensor instructions (one FMAC per cycle; two plain
/// adds per cycle for the AllReduce accumulation).
pub const SIMD_F32: u32 = 2;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_opposites_are_involutive() {
        for p in [Port::North, Port::South, Port::East, Port::West] {
            assert_eq!(p.opposite().unwrap().opposite().unwrap(), p);
        }
        assert_eq!(Port::Ramp.opposite(), None);
    }

    #[test]
    fn port_deltas_sum_to_zero_for_opposites() {
        for p in [Port::North, Port::South, Port::East, Port::West] {
            let (dx, dy) = p.delta();
            let (ox, oy) = p.opposite().unwrap().delta();
            assert_eq!((dx + ox, dy + oy), (0, 0));
        }
    }

    #[test]
    fn port_indices_are_distinct() {
        let mut seen = [false; 5];
        for p in Port::ALL {
            assert!(!seen[p.index()]);
            seen[p.index()] = true;
        }
    }

    #[test]
    fn flit_sizes() {
        assert_eq!(Flit::f16(0x3C00).bytes(), 2);
        assert_eq!(Flit::f32(1.0).bytes(), 4);
        assert_eq!(Flit::f32(1.0).bits, 1.0f32.to_bits());
    }

    #[test]
    fn two_f16_per_cycle_fit_one_port() {
        assert_eq!(PORT_BYTES_PER_CYCLE / Dtype::F16.bytes(), 2);
        assert_eq!(PORT_BYTES_PER_CYCLE / Dtype::F32.bytes(), 1);
    }
}
