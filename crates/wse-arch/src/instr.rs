//! The tensor instruction set and task-program statements.
//!
//! An instruction names DSRs for its destination and source operands; the
//! hardware streams elements through the datapath at the SIMD rate the
//! operand types allow, stalling on fabric/FIFO availability. "All of this
//! is accomplished using only two machine instructions that run as
//! independent threads."

use crate::dsr::Descriptor;
use crate::types::{Color, DsrId, Reg, TaskId};

/// The arithmetic performed per element pair.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// `dst[i] = a[i]` — data movement (memory↔fabric↔FIFO).
    Copy,
    /// `dst[i] = a[i] + b[i]` in the destination precision.
    Add,
    /// `dst[i] = dst[i] + a[i]` (read-modify-write accumulate; Listing 1's
    /// `c_acc[] = c_acc[] + c_rx[]` and the `sumtask` adds).
    AddAssign,
    /// `dst[i] = a[i] * b[i]` in the destination precision.
    Mul,
    /// `dst[i] = dst[i] + a[i] * b[i]` with the fused FMAC ("no rounding of
    /// the product prior to the add") — the multiply-accumulate tensor
    /// instruction used when both operands are local (the 2D SpMV, and the
    /// z-direction terms when sourced from memory).
    FmaAssign,
    /// `dst[i] = a[i] + r · b[i]` (fused) — the XPAY form used by BiCGStab's
    /// `q := r − α s`, `r := q − ω y` and `p := r + β (p − ω s)` updates.
    Xpay {
        /// Register holding the scalar multiplier.
        scalar: Reg,
    },
    /// `dst[i] = dst[i] + r · a[i]` with the fused fp16 FMAC — the AXPY
    /// instruction ("y = y + a × x where the operand a is a scalar held in a
    /// register").
    Axpy {
        /// Register holding the scalar multiplier.
        scalar: Reg,
    },
    /// `dst[i] = r · a[i]` (scaled copy).
    Scale {
        /// Register holding the scalar multiplier.
        scalar: Reg,
    },
    /// `acc += Σ a[i] · b[i]` — the mixed-precision inner-product
    /// instruction: fp16 multiplies (exact in fp32), fp32 accumulation into
    /// a register, two elements per cycle.
    MacReg {
        /// fp32 accumulator register.
        acc: Reg,
    },
    /// `acc += Σ a[i]` in fp32 — the AllReduce center-core accumulation.
    SumReg {
        /// fp32 accumulator register.
        acc: Reg,
    },
    /// `dst[i] = r` — broadcast a register value into a stream (used to send
    /// scalar partial sums onto the fabric).
    StoreReg {
        /// Source register.
        reg: Reg,
    },
    /// `r = a[last]` — load each streamed element into a register (the last
    /// one sticks; with `len = 1` this receives a broadcast scalar).
    LoadReg {
        /// Destination register.
        reg: Reg,
    },
}

/// Coarse instruction classes for trace retire accounting: which kind of
/// datapath work an instruction represents, independent of its operands.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum OpClass {
    /// Pure data movement: `Copy`, `StoreReg`, `LoadReg`.
    Move,
    /// Unfused elementwise arithmetic: `Add`, `AddAssign`, `Mul`, `Scale`.
    Elementwise,
    /// Fused multiply-add forms: `FmaAssign`, `Xpay`, `Axpy`.
    Fma,
    /// The mixed-precision inner-product instruction: `MacReg`.
    Mac,
    /// Register reductions: `SumReg`.
    Reduce,
}

impl OpClass {
    /// Number of classes (array sizing).
    pub const COUNT: usize = 5;

    /// Every class, in index order.
    pub const ALL: [OpClass; OpClass::COUNT] =
        [OpClass::Move, OpClass::Elementwise, OpClass::Fma, OpClass::Mac, OpClass::Reduce];

    /// Dense index for counter arrays.
    pub fn index(self) -> usize {
        match self {
            OpClass::Move => 0,
            OpClass::Elementwise => 1,
            OpClass::Fma => 2,
            OpClass::Mac => 3,
            OpClass::Reduce => 4,
        }
    }

    /// Short stable label (reports, CSV columns).
    pub fn label(self) -> &'static str {
        match self {
            OpClass::Move => "move",
            OpClass::Elementwise => "elementwise",
            OpClass::Fma => "fma",
            OpClass::Mac => "mac",
            OpClass::Reduce => "reduce",
        }
    }
}

impl Op {
    /// The instruction class used for trace retire accounting.
    pub fn class(self) -> OpClass {
        match self {
            Op::Copy | Op::StoreReg { .. } | Op::LoadReg { .. } => OpClass::Move,
            Op::Add | Op::AddAssign | Op::Mul | Op::Scale { .. } => OpClass::Elementwise,
            Op::FmaAssign | Op::Xpay { .. } | Op::Axpy { .. } => OpClass::Fma,
            Op::MacReg { .. } => OpClass::Mac,
            Op::SumReg { .. } => OpClass::Reduce,
        }
    }

    /// `true` if the op reads the destination before writing it.
    pub fn reads_dst(self) -> bool {
        matches!(self, Op::AddAssign | Op::Axpy { .. } | Op::FmaAssign)
    }

    /// Number of source operands expected (besides the destination).
    pub fn num_srcs(self) -> usize {
        match self {
            Op::Copy
            | Op::AddAssign
            | Op::Scale { .. }
            | Op::Axpy { .. }
            | Op::SumReg { .. }
            | Op::LoadReg { .. } => 1,
            Op::Add | Op::Mul | Op::MacReg { .. } | Op::FmaAssign | Op::Xpay { .. } => 2,
            Op::StoreReg { .. } => 0,
        }
    }
}

/// A tensor instruction: op plus DSR operands.
#[derive(Copy, Clone, Debug)]
pub struct TensorInstr {
    /// The per-element operation.
    pub op: Op,
    /// Destination DSR (`None` for reductions into registers).
    pub dst: Option<DsrId>,
    /// First source DSR.
    pub a: Option<DsrId>,
    /// Second source DSR.
    pub b: Option<DsrId>,
}

/// Scheduling-state manipulation, mirroring Listing 1's `block()/unblock()/
/// activate()` and the `.trig/.act` fields of fabric descriptors.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TaskAction {
    /// Make the task runnable (it runs when unblocked and scheduled).
    Activate,
    /// Prevent the task from being scheduled even if activated.
    Block,
    /// Remove a block.
    Unblock,
}

/// One statement of a task body.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// Run a tensor instruction synchronously in the main thread; the task
    /// does not advance until it completes.
    Exec(TensorInstr),
    /// Launch a tensor instruction as a background thread in `slot`; the
    /// task advances on the next cycle. `on_complete` manipulates a task's
    /// state when the thread finishes (the fabric descriptors' `.trig`).
    Launch {
        /// Thread slot 0..[`crate::types::NUM_THREADS`].
        slot: u8,
        /// The instruction to run.
        instr: TensorInstr,
        /// State change applied when the thread completes.
        on_complete: Option<(TaskId, TaskAction)>,
    },
    /// Re-initialize a DSR with a fresh descriptor (cursor reset) — Listing
    /// 1 does this for the fabric descriptors at the top of the spmv task.
    InitDsr {
        /// Which DSR.
        dsr: DsrId,
        /// New descriptor.
        desc: Descriptor,
    },
    /// Manipulate another task's scheduling state.
    TaskCtl {
        /// Target task.
        task: TaskId,
        /// What to do.
        action: TaskAction,
    },
    /// Scalar register arithmetic (f32): `dst = a (op) b`.
    RegArith {
        /// Operation.
        op: RegOp,
        /// Destination register.
        dst: Reg,
        /// Left operand register.
        a: Reg,
        /// Right operand register.
        b: Reg,
    },
    /// Load an immediate into a register.
    SetReg {
        /// Destination register.
        reg: Reg,
        /// Value.
        value: f32,
    },
}

/// Scalar register operations.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RegOp {
    /// `dst = a + b`.
    Add,
    /// `dst = a - b`.
    Sub,
    /// `dst = a * b`.
    Mul,
    /// `dst = a / b`.
    Div,
    /// `dst = -a` (b ignored).
    Neg,
    /// `dst = a` (b ignored).
    Mov,
}

/// A task: a body of statements plus scheduling metadata.
#[derive(Clone, Debug)]
pub struct Task {
    /// Statements executed in order when the task runs.
    pub body: Vec<Stmt>,
    /// Higher priority wins the scheduler ("It is marked as higher priority
    /// to avoid a race condition with the synchronization task tree").
    pub priority: u8,
    /// Start in the blocked state (the SpMV completion tree starts blocked).
    pub start_blocked: bool,
    /// Start activated (entry-point tasks).
    pub start_activated: bool,
    /// Debug name.
    pub name: &'static str,
}

impl Task {
    /// A normal-priority, initially idle task.
    pub fn new(name: &'static str, body: Vec<Stmt>) -> Task {
        Task { body, priority: 0, start_blocked: false, start_activated: false, name }
    }

    /// Builder: set priority.
    pub fn priority(mut self, p: u8) -> Task {
        self.priority = p;
        self
    }

    /// Builder: start blocked.
    pub fn blocked(mut self) -> Task {
        self.start_blocked = true;
        self
    }

    /// Builder: start activated.
    pub fn activated(mut self) -> Task {
        self.start_activated = true;
        self
    }
}

/// A data-triggered binding: a word arriving on `color` activates `task`
/// ("The channel of the arriving word determines the code that is
/// triggered").
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ColorBinding {
    /// The triggering virtual channel.
    pub color: Color,
    /// The task activated when data arrives.
    pub task: TaskId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_metadata() {
        assert!(Op::AddAssign.reads_dst());
        assert!(Op::Axpy { scalar: 0 }.reads_dst());
        assert!(!Op::Mul.reads_dst());
        assert_eq!(Op::Mul.num_srcs(), 2);
        assert_eq!(Op::Copy.num_srcs(), 1);
        assert_eq!(Op::StoreReg { reg: 0 }.num_srcs(), 0);
        assert_eq!(Op::MacReg { acc: 1 }.num_srcs(), 2);
    }

    #[test]
    fn op_classes_are_dense_and_total() {
        for (i, c) in OpClass::ALL.into_iter().enumerate() {
            assert_eq!(c.index(), i);
            assert!(!c.label().is_empty());
        }
        assert_eq!(Op::Copy.class(), OpClass::Move);
        assert_eq!(Op::StoreReg { reg: 0 }.class(), OpClass::Move);
        assert_eq!(Op::AddAssign.class(), OpClass::Elementwise);
        assert_eq!(Op::Xpay { scalar: 0 }.class(), OpClass::Fma);
        assert_eq!(Op::MacReg { acc: 0 }.class(), OpClass::Mac);
        assert_eq!(Op::SumReg { acc: 0 }.class(), OpClass::Reduce);
    }

    #[test]
    fn task_builder() {
        let t = Task::new("t", vec![]).priority(3).blocked().activated();
        assert_eq!(t.priority, 3);
        assert!(t.start_blocked);
        assert!(t.start_activated);
        assert_eq!(t.name, "t");
    }
}
