//! Hardware-managed in-memory FIFOs.
//!
//! "The instruction set supports hardware-managed, in-memory FIFOs that use
//! memory regions as circular buffers. The core has special hardware
//! registers to manage the state (head and tail location, for example) of
//! each FIFO. ... They are able to activate tasks ... whenever they aren't
//! empty." — the decoupling mechanism between the SpMV multiply threads and
//! the `sumtask` adds.

use crate::types::{Dtype, TaskId};

/// State of one hardware FIFO: a circular buffer over a tile-memory region.
#[derive(Clone, Debug)]
pub struct Fifo {
    /// Base byte address of the backing memory region.
    pub base: u32,
    /// Capacity in elements.
    pub capacity: u32,
    /// Element type.
    pub dtype: Dtype,
    /// Task to activate when data is pushed (`onpush` in Listing 1).
    pub onpush: Option<TaskId>,
    head: u32,
    len: u32,
    /// Total elements ever pushed (diagnostics).
    pub total_pushed: u64,
    /// High-water mark of occupancy (diagnostics: validates the paper's
    /// "FIFO depth of 20" sizing).
    pub peak_occupancy: u32,
}

impl Fifo {
    /// Creates a FIFO over `capacity` elements of `dtype` backed at `base`.
    ///
    /// # Panics
    /// Panics if capacity is zero.
    pub fn new(base: u32, capacity: u32, dtype: Dtype, onpush: Option<TaskId>) -> Fifo {
        assert!(capacity > 0, "fifo capacity must be nonzero");
        Fifo { base, capacity, dtype, onpush, head: 0, len: 0, total_pushed: 0, peak_occupancy: 0 }
    }

    /// Current occupancy in elements.
    #[inline]
    pub fn len(&self) -> u32 {
        self.len
    }

    /// `true` when no elements are queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` when a push would overwrite unread data.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len == self.capacity
    }

    /// Byte address for the next push, if space is available.
    pub fn push_addr(&self) -> Option<u32> {
        if self.is_full() {
            return None;
        }
        let slot = (self.head + self.len) % self.capacity;
        Some(self.base + slot * self.dtype.bytes())
    }

    /// Commits a push (the caller has written the element at
    /// [`Fifo::push_addr`]). Returns the task to activate, if any.
    ///
    /// # Panics
    /// Panics if the FIFO is full.
    pub fn commit_push(&mut self) -> Option<TaskId> {
        assert!(!self.is_full(), "push into full fifo");
        self.len += 1;
        self.total_pushed += 1;
        self.peak_occupancy = self.peak_occupancy.max(self.len);
        self.onpush
    }

    /// Discards all queued elements and rewinds the head (checkpoint
    /// restore; an empty FIFO behaves identically at any head position, so
    /// rewinding keeps replays bit-for-bit deterministic). Cumulative
    /// diagnostics (`total_pushed`, `peak_occupancy`) are retained.
    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
    }

    /// Byte address of the element at the head, if any.
    pub fn pop_addr(&self) -> Option<u32> {
        if self.is_empty() {
            return None;
        }
        Some(self.base + self.head * self.dtype.bytes())
    }

    /// Commits a pop (the caller has read the element at [`Fifo::pop_addr`]).
    ///
    /// # Panics
    /// Panics if the FIFO is empty.
    pub fn commit_pop(&mut self) {
        assert!(!self.is_empty(), "pop from empty fifo");
        self.head = (self.head + 1) % self.capacity;
        self.len -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_wraps_around() {
        let mut f = Fifo::new(100, 3, Dtype::F16, Some(7));
        assert!(f.is_empty());
        assert_eq!(f.push_addr(), Some(100));
        assert_eq!(f.commit_push(), Some(7));
        assert_eq!(f.push_addr(), Some(102));
        f.commit_push();
        assert_eq!(f.push_addr(), Some(104));
        f.commit_push();
        assert!(f.is_full());
        assert_eq!(f.push_addr(), None);
        assert_eq!(f.pop_addr(), Some(100));
        f.commit_pop();
        // Wrap: next push lands back at base.
        assert_eq!(f.push_addr(), Some(100));
        f.commit_push();
        assert_eq!(f.pop_addr(), Some(102));
        assert_eq!(f.total_pushed, 4);
        assert_eq!(f.peak_occupancy, 3);
    }

    #[test]
    fn f32_addressing() {
        let mut f = Fifo::new(0, 4, Dtype::F32, None);
        f.commit_push();
        assert_eq!(f.push_addr(), Some(4));
    }

    #[test]
    #[should_panic(expected = "pop from empty")]
    fn pop_empty_panics() {
        let mut f = Fifo::new(0, 2, Dtype::F16, None);
        f.commit_pop();
    }
}
