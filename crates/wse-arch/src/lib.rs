//! A cycle-stepped functional and timing simulator of the Cerebras CS-1
//! wafer-scale engine tile architecture, as described in *Fast Stencil-Code
//! Computation on a Wafer-Scale Processor* (SC'20).
//!
//! The simulator models, per tile:
//!
//! * a processor core with a task scheduler (tasks activated by other tasks,
//!   by arriving fabric data, or by FIFO pushes), up to nine background
//!   threads sharing one SIMD datapath (4-wide fp16, 2-wide mixed-precision
//!   MAC, 2-wide fp32), and a scalar fp32 register file,
//! * 48 KB of private SRAM with a bump allocator (capacity violations are
//!   hard errors — the paper's memory-footprint arithmetic becomes an
//!   enforced invariant),
//! * hardware-managed in-memory FIFOs that activate tasks on push,
//! * tensor descriptors (DSRs) whose cursors persist across instructions,
//! * a five-port router with per-color virtual channels, offline-configured
//!   fanout routing, 4 bytes/port/cycle bandwidth, credit-based
//!   backpressure, and single-cycle per-hop latency.
//!
//! What is deliberately *not* modeled: instruction fetch/decode detail,
//! memory bank conflicts (the SIMD widths already encode the sustainable
//! stream rates), power, and hardware ECC. The model is validated against
//! the paper's published rates (see the `wse-core` kernels and the
//! `perf-model` crate).
//!
//! # Quick example
//!
//! ```
//! use wse_arch::fabric::Fabric;
//! use wse_arch::types::{Dtype, Port};
//! use wse_arch::dsr::mk;
//! use wse_arch::instr::{Op, Stmt, Task, TensorInstr};
//! use wse_float::F16;
//!
//! // Two tiles; the left one streams a vector to the right one.
//! let mut fabric = Fabric::new(2, 1);
//! fabric.set_route(0, 0, Port::Ramp, 1, &[Port::East]);
//! fabric.set_route(1, 0, Port::West, 1, &[Port::Ramp]);
//!
//! let data: Vec<F16> = (0..8).map(|i| F16::from_f64(i as f64)).collect();
//! {
//!     let t = fabric.tile_mut(0, 0);
//!     let addr = t.mem.alloc_vec(8, Dtype::F16).unwrap();
//!     t.mem.store_f16_slice(addr, &data);
//!     let dsrc = t.core.add_dsr(mk::tensor16(addr, 8));
//!     let dtx = t.core.add_dsr(mk::tx16(1, 8));
//!     let send = t.core.add_task(Task::new("send", vec![
//!         Stmt::Exec(TensorInstr { op: Op::Copy, dst: Some(dtx), a: Some(dsrc), b: None }),
//!     ]));
//!     t.core.activate(send);
//! }
//! let dst = {
//!     let t = fabric.tile_mut(1, 0);
//!     let addr = t.mem.alloc_vec(8, Dtype::F16).unwrap();
//!     let drx = t.core.add_dsr(mk::rx16(1, 8));
//!     let ddst = t.core.add_dsr(mk::tensor16(addr, 8));
//!     let recv = t.core.add_task(Task::new("recv", vec![
//!         Stmt::Exec(TensorInstr { op: Op::Copy, dst: Some(ddst), a: Some(drx), b: None }),
//!     ]));
//!     t.core.activate(recv);
//!     addr
//! };
//! fabric.run_until_quiescent(1_000).expect("quiesce");
//! assert_eq!(fabric.tile(1, 0).mem.load_f16_slice(dst, 8), data);
//! ```

#![warn(missing_docs)]

pub mod core;
pub mod dsr;
pub mod fabric;
pub mod fault;
pub mod fifo;
pub mod instr;
pub mod memory;
pub mod router;
pub mod sanitize;
pub mod trace;
pub mod types;

pub use crate::core::{Core, CorePerf, SchedSnapshot};
pub use crate::fabric::{
    Fabric, FabricPerf, Region, RegionView, StallReport, Stalled, StalledTile, Tile,
};
pub use crate::fault::{FaultKind, FaultKindClass, FaultLog, FaultPlan, FaultRecord, SplitMix64};
pub use crate::instr::OpClass;
pub use crate::memory::{Memory, OutOfSram, TILE_SRAM_BYTES};
pub use crate::sanitize::{CoreSanitizer, RaceTrip, SanitizerReport, TileSanitizer, TripKind};
pub use crate::trace::{
    CoreTrace, FabricTrace, PerfDelta, PerfWindow, PhaseSpan, StallCause, TileTrace, TraceConfig,
    TraceEvent, TraceEventKind,
};
pub use crate::types::{Color, Dtype, Flit, Port};
