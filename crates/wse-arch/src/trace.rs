//! Per-tile tracing primitives: structured events, stall-cause attribution,
//! instruction-class retire accounting, and the windowed perf sampler.
//!
//! Collection lives here, next to the machine model, so the hooks in
//! [`crate::core::Core`], [`crate::router::Router`], and
//! [`crate::fabric::Fabric`] stay allocation-free and branch on a single
//! `Option` when tracing is disarmed (the same idiom as fault arming).
//! Export and analysis (Perfetto JSON, heatmaps, phase reports) live in the
//! separate `wse-trace` crate, which consumes the [`FabricTrace`] snapshot
//! this module produces.

use crate::fabric::FabricPerf;
use crate::instr::OpClass;
use crate::types::TaskId;
use std::collections::VecDeque;

/// Why a core's datapath made no progress in a cycle.
///
/// Attribution runs only when tracing is armed, and only on cycles the
/// datapath failed to issue; cycles that retire a control statement but
/// leave the datapath idle still count by their datapath state.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum StallCause {
    /// An active instruction is starved for input: an empty hardware FIFO,
    /// or an empty fabric-in (ramp) queue — the core is waiting on data.
    FifoWait,
    /// An active instruction's destination cannot accept: the ramp-out
    /// queue is full (router credit backpressure) or a hardware FIFO is
    /// full.
    Backpressure,
    /// Memory-bank conflict. The simulator deliberately does not model
    /// bank conflicts (the SIMD widths already encode sustainable stream
    /// rates), so this bucket is always zero; it is reserved so the stall
    /// taxonomy matches the hardware's.
    BankConflict,
    /// Nothing was runnable.
    Idle,
}

impl StallCause {
    /// Number of stall causes (array sizing).
    pub const COUNT: usize = 4;

    /// Every cause, in index order.
    pub const ALL: [StallCause; StallCause::COUNT] = [
        StallCause::FifoWait,
        StallCause::Backpressure,
        StallCause::BankConflict,
        StallCause::Idle,
    ];

    /// Dense index for counter arrays.
    pub fn index(self) -> usize {
        match self {
            StallCause::FifoWait => 0,
            StallCause::Backpressure => 1,
            StallCause::BankConflict => 2,
            StallCause::Idle => 3,
        }
    }

    /// Short stable label (reports, CSV columns).
    pub fn label(self) -> &'static str {
        match self {
            StallCause::FifoWait => "fifo_wait",
            StallCause::Backpressure => "backpressure",
            StallCause::BankConflict => "bank_conflict",
            StallCause::Idle => "idle",
        }
    }
}

/// What happened, in a [`TraceEvent`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TraceEventKind {
    /// The scheduler put a task on the main thread.
    TaskStart {
        /// The task's id on its core.
        task: TaskId,
        /// The task's debug name.
        name: &'static str,
    },
    /// The main-thread task retired (body exhausted and nothing pending).
    TaskEnd {
        /// The task's id on its core.
        task: TaskId,
    },
}

/// One structured event recorded by a core.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle the event occurred at (global fabric clock).
    pub cycle: u64,
    /// What happened.
    pub kind: TraceEventKind,
}

/// Bounded event ring: when full, the oldest event is dropped (and counted)
/// so a long armed window costs bounded memory per tile.
#[derive(Clone, Debug)]
struct EventRing {
    buf: VecDeque<TraceEvent>,
    cap: usize,
    dropped: u64,
}

impl EventRing {
    fn new(cap: usize) -> EventRing {
        EventRing { buf: VecDeque::with_capacity(cap.min(1024)), cap, dropped: 0 }
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }
}

/// Per-core trace collection state (present only while armed).
///
/// The cycle stamp `now` is seeded from the fabric clock at arm time and
/// advanced once per core step. It is deliberately *not* rewound by
/// [`crate::core::Core::reset_transient`], so events recorded after a
/// checkpoint rollback keep monotonically increasing timestamps — exported
/// traces never travel back in time.
#[derive(Clone, Debug)]
pub struct CoreTrace {
    pub(crate) now: u64,
    ring: EventRing,
    pub(crate) stall: [u64; StallCause::COUNT],
    pub(crate) retired: [u64; OpClass::COUNT],
}

impl CoreTrace {
    /// Fresh collection state stamped at fabric cycle `now`.
    pub fn new(now: u64, ring_capacity: usize) -> CoreTrace {
        assert!(ring_capacity > 0, "event ring capacity must be nonzero");
        CoreTrace {
            now,
            ring: EventRing::new(ring_capacity),
            stall: [0; StallCause::COUNT],
            retired: [0; OpClass::COUNT],
        }
    }

    /// Current cycle stamp.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Recorded events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf_iter()
    }

    fn buf_iter(&self) -> std::collections::vec_deque::Iter<'_, TraceEvent> {
        self.ring.buf.iter()
    }

    /// Events evicted from the full ring.
    pub fn dropped_events(&self) -> u64 {
        self.ring.dropped
    }

    /// Cycles attributed to `cause` while armed.
    pub fn stall_cycles(&self, cause: StallCause) -> u64 {
        self.stall[cause.index()]
    }

    /// Instructions of `class` retired while armed.
    pub fn retired(&self, class: OpClass) -> u64 {
        self.retired[class.index()]
    }

    pub(crate) fn record_task_start(&mut self, task: TaskId, name: &'static str) {
        self.ring
            .push(TraceEvent { cycle: self.now, kind: TraceEventKind::TaskStart { task, name } });
    }

    pub(crate) fn record_task_end(&mut self, task: TaskId) {
        self.ring.push(TraceEvent { cycle: self.now, kind: TraceEventKind::TaskEnd { task } });
    }
}

/// Tracing configuration (see [`crate::fabric::Fabric::arm_trace`]).
#[derive(Copy, Clone, Debug)]
pub struct TraceConfig {
    /// Per-tile event ring capacity; the oldest events are dropped (and
    /// counted) beyond this.
    pub ring_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig { ring_capacity: 4096 }
    }
}

/// One driver-marked phase: a half-open cycle interval on the global clock.
/// A zero-length span (`start == end`) is an instant marker (checkpoint,
/// rollback).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PhaseSpan {
    /// Phase name ("spmv", "dot", "allreduce", ...).
    pub name: &'static str,
    /// First cycle of the phase.
    pub start: u64,
    /// One past the last cycle of the phase.
    pub end: u64,
}

impl PhaseSpan {
    /// Cycles spent in the span.
    pub fn cycles(&self) -> u64 {
        self.end - self.start
    }

    /// `true` for instant markers (checkpoint/rollback stamps).
    pub fn is_marker(&self) -> bool {
        self.start == self.end
    }
}

/// One tile's collected trace, with fabric-window perf deltas attached.
#[derive(Clone, Debug)]
pub struct TileTrace {
    /// Tile x coordinate.
    pub x: usize,
    /// Tile y coordinate.
    pub y: usize,
    /// Recorded events, oldest first (bounded; see `dropped_events`).
    pub events: Vec<TraceEvent>,
    /// Events evicted from the full ring.
    pub dropped_events: u64,
    /// Stall-cause cycle attribution, indexed by [`StallCause::index`].
    pub stall: [u64; StallCause::COUNT],
    /// Instruction-class retire counts, indexed by [`OpClass::index`].
    pub retired: [u64; OpClass::COUNT],
    /// Datapath-busy cycles within the traced window.
    pub busy_cycles: u64,
    /// Datapath-idle cycles within the traced window.
    pub idle_cycles: u64,
    /// Flits forwarded by this tile's router within the window.
    pub flits_routed: u64,
    /// Router backpressure (flit-held cycles) per output port within the
    /// window, indexed by [`crate::types::Port::index`].
    pub backpressure: [u64; 5],
}

impl TileTrace {
    /// Datapath utilization over the traced window (0 when the window is
    /// empty).
    pub fn utilization(&self) -> f64 {
        let total = self.busy_cycles + self.idle_cycles;
        if total == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / total as f64
        }
    }
}

/// The whole-fabric trace snapshot produced by
/// [`crate::fabric::Fabric::take_trace`]; the input to every exporter in
/// the `wse-trace` crate.
#[derive(Clone, Debug)]
pub struct FabricTrace {
    /// Fabric width in tiles.
    pub w: usize,
    /// Fabric height in tiles.
    pub h: usize,
    /// Fabric cycle when tracing was armed.
    pub start_cycle: u64,
    /// Fabric cycle when the trace was taken.
    pub end_cycle: u64,
    /// Driver-marked phases, in open order (starts are nondecreasing).
    pub phases: Vec<PhaseSpan>,
    /// Per-tile traces in row-major order.
    pub tiles: Vec<TileTrace>,
    /// Aggregate perf counters at the moment the trace was taken.
    pub perf: FabricPerf,
}

impl FabricTrace {
    /// Cycles covered by the traced window.
    pub fn window_cycles(&self) -> u64 {
        self.end_cycle - self.start_cycle
    }

    /// The trace of tile `(x, y)`.
    pub fn tile(&self, x: usize, y: usize) -> &TileTrace {
        &self.tiles[y * self.w + x]
    }

    /// Fabric-wide stall-cause totals, indexed by [`StallCause::index`].
    pub fn stall_totals(&self) -> [u64; StallCause::COUNT] {
        let mut totals = [0u64; StallCause::COUNT];
        for t in &self.tiles {
            for (slot, v) in totals.iter_mut().zip(t.stall) {
                *slot += v;
            }
        }
        totals
    }

    /// Fabric-wide retire totals, indexed by [`OpClass::index`].
    pub fn retire_totals(&self) -> [u64; OpClass::COUNT] {
        let mut totals = [0u64; OpClass::COUNT];
        for t in &self.tiles {
            for (slot, v) in totals.iter_mut().zip(t.retired) {
                *slot += v;
            }
        }
        totals
    }
}

/// Deltas of the aggregate perf counters over one sampling window.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PerfDelta {
    /// Datapath-busy core-cycles in the window.
    pub busy_cycles: u64,
    /// Datapath-idle core-cycles in the window.
    pub idle_cycles: u64,
    /// Flits forwarded in the window.
    pub flits_routed: u64,
    /// fp16 + fp32 flops in the window.
    pub flops: u64,
    /// Control statements retired in the window.
    pub ctrl_stmts: u64,
}

impl PerfDelta {
    /// Monotone progress metric: anything a cycle can accomplish — a
    /// datapath issue, a retired control statement, a forwarded flit —
    /// makes the window non-zero. The stall watchdog keys off this.
    pub fn progress(&self) -> u64 {
        self.busy_cycles + self.ctrl_stmts + self.flits_routed
    }
}

/// Windowed perf sampler: snapshots [`FabricPerf`] and yields per-window
/// deltas. This is the single sampling path shared by activity sampling
/// ([`crate::fabric::Fabric::enable_sampling`]) and the
/// [`crate::fabric::Fabric::run_watched`] stall watchdog.
#[derive(Copy, Clone, Debug, Default)]
pub struct PerfWindow {
    last: FabricPerf,
}

impl PerfWindow {
    /// A window anchored at the counter snapshot `now`.
    pub fn new(now: FabricPerf) -> PerfWindow {
        PerfWindow { last: now }
    }

    /// Closes the current window at `now`, returning its deltas and
    /// starting the next window.
    pub fn advance(&mut self, now: FabricPerf) -> PerfDelta {
        let d = PerfDelta {
            busy_cycles: now.busy_cycles - self.last.busy_cycles,
            idle_cycles: now.idle_cycles - self.last.idle_cycles,
            flits_routed: now.flits_routed - self.last.flits_routed,
            flops: (now.flops_f16 + now.flops_f32) - (self.last.flops_f16 + self.last.flops_f32),
            ctrl_stmts: now.ctrl_stmts - self.last.ctrl_stmts,
        };
        self.last = now;
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut tr = CoreTrace::new(0, 2);
        tr.record_task_start(0, "a");
        tr.now = 1;
        tr.record_task_end(0);
        tr.now = 2;
        tr.record_task_start(1, "b");
        assert_eq!(tr.dropped_events(), 1);
        let evs: Vec<_> = tr.events().copied().collect();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].cycle, 1, "oldest surviving event");
        assert_eq!(evs[1].kind, TraceEventKind::TaskStart { task: 1, name: "b" });
    }

    #[test]
    fn stall_cause_indices_are_dense() {
        for (i, c) in StallCause::ALL.into_iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn perf_window_yields_deltas() {
        let mut p = FabricPerf::default();
        let mut w = PerfWindow::new(p);
        p.busy_cycles = 5;
        p.flits_routed = 2;
        p.flops_f16 = 7;
        let d = w.advance(p);
        assert_eq!(d.busy_cycles, 5);
        assert_eq!(d.flits_routed, 2);
        assert_eq!(d.flops, 7);
        assert_eq!(d.progress(), 7);
        let d2 = w.advance(p);
        assert_eq!(d2, PerfDelta::default(), "second window is empty");
        assert_eq!(d2.progress(), 0);
    }

    #[test]
    fn phase_span_markers() {
        let s = PhaseSpan { name: "spmv", start: 10, end: 25 };
        assert_eq!(s.cycles(), 15);
        assert!(!s.is_marker());
        let m = PhaseSpan { name: "checkpoint", start: 30, end: 30 };
        assert!(m.is_marker());
    }
}
