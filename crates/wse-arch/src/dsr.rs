//! Data Structure Registers — tensor descriptors.
//!
//! "Special purpose Data Structure Registers (DSRs) generate tensor access
//! addresses in hardware eliminating overheads of nested loops." A DSR holds
//! a descriptor (where the tensor lives and how to step through it) plus a
//! cursor. Crucially, cursors **persist across instructions** unless the
//! descriptor rewinds: Listing 1's accumulator descriptors (`xp_acc`, ...)
//! "advance asynchronously" across repeated `sumtask` invocations, which is
//! what lets each add instruction contribute exactly once per output element.

use crate::types::{Color, Dtype, FifoId};

/// What a DSR points at.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Descriptor {
    /// A strided tensor in tile memory.
    Mem {
        /// Base byte address.
        addr: u32,
        /// Length in elements.
        len: u32,
        /// Stride between elements, in elements (1 = contiguous).
        stride: u32,
        /// Element type.
        dtype: Dtype,
        /// Rewind the cursor to 0 when an instruction completes (Listing
        /// 1's "outer dimension stride of zero to return the DSR to its
        /// initial position"). Accumulator descriptors set this to `false`.
        rewind: bool,
    },
    /// A stream received from the fabric on `color`.
    FabricIn {
        /// Virtual channel to consume.
        color: Color,
        /// Elements to receive before the instruction completes.
        len: u32,
        /// Element type.
        dtype: Dtype,
    },
    /// A stream sent to the fabric on `color`.
    FabricOut {
        /// Virtual channel to inject on.
        color: Color,
        /// Elements to send.
        len: u32,
        /// Element type.
        dtype: Dtype,
    },
    /// A hardware FIFO (reads drain it; writes push into it).
    Fifo {
        /// Which FIFO.
        fifo: FifoId,
    },
}

impl Descriptor {
    /// Element type of the data behind this descriptor. FIFOs defer to the
    /// FIFO's own dtype, so this returns `None` for them.
    pub fn dtype(&self) -> Option<Dtype> {
        match *self {
            Descriptor::Mem { dtype, .. }
            | Descriptor::FabricIn { dtype, .. }
            | Descriptor::FabricOut { dtype, .. } => Some(dtype),
            Descriptor::Fifo { .. } => None,
        }
    }

    /// Declared length in elements (`None` for FIFOs, which are unbounded
    /// streams gated by occupancy).
    pub fn len(&self) -> Option<u32> {
        match *self {
            Descriptor::Mem { len, .. }
            | Descriptor::FabricIn { len, .. }
            | Descriptor::FabricOut { len, .. } => Some(len),
            Descriptor::Fifo { .. } => None,
        }
    }

    /// `true` if the descriptor declares zero length.
    pub fn is_empty(&self) -> bool {
        self.len() == Some(0)
    }
}

/// A DSR: descriptor plus persistent cursor.
#[derive(Copy, Clone, Debug)]
pub struct Dsr {
    /// The descriptor.
    pub desc: Descriptor,
    /// Elements consumed/produced so far.
    pub pos: u32,
}

impl Dsr {
    /// A DSR with its cursor at the start.
    pub fn new(desc: Descriptor) -> Dsr {
        Dsr { desc, pos: 0 }
    }

    /// Elements remaining before this DSR is exhausted (`u32::MAX` for
    /// FIFOs).
    pub fn remaining(&self) -> u32 {
        match self.desc.len() {
            Some(len) => len.saturating_sub(self.pos),
            None => u32::MAX,
        }
    }

    /// Byte address of the element at the cursor (memory descriptors only).
    pub fn current_addr(&self) -> Option<u32> {
        match self.desc {
            Descriptor::Mem { addr, stride, dtype, .. } => {
                Some(addr + self.pos * stride * dtype.bytes())
            }
            _ => None,
        }
    }

    /// Rewinds the cursor to the start (checkpoint restore).
    pub fn reset(&mut self) {
        self.pos = 0;
    }

    /// Advances the cursor by `n` elements.
    pub fn advance(&mut self, n: u32) {
        self.pos += n;
    }

    /// Applies end-of-instruction rewind semantics.
    pub fn finish_instruction(&mut self) {
        if let Descriptor::Mem { rewind: true, .. } = self.desc {
            self.pos = 0;
        }
        if matches!(self.desc, Descriptor::FabricIn { .. } | Descriptor::FabricOut { .. }) {
            // Fabric descriptors are one-shot; Listing 1 re-initializes them
            // inside the spmv task before each use. Leave the cursor where
            // it ended so reuse without re-init is detectable.
        }
    }
}

/// Convenience constructors mirroring Listing 1's declarations.
pub mod mk {
    use super::*;

    /// Contiguous fp16 memory tensor that rewinds after each instruction.
    pub fn tensor16(addr: u32, len: u32) -> Descriptor {
        Descriptor::Mem { addr, len, stride: 1, dtype: Dtype::F16, rewind: true }
    }

    /// Contiguous fp16 accumulator tensor whose cursor persists across
    /// instructions (Listing 1's `*_acc`).
    pub fn acc16(addr: u32, len: u32) -> Descriptor {
        Descriptor::Mem { addr, len, stride: 1, dtype: Dtype::F16, rewind: false }
    }

    /// Contiguous fp32 memory tensor (rewinding).
    pub fn tensor32(addr: u32, len: u32) -> Descriptor {
        Descriptor::Mem { addr, len, stride: 1, dtype: Dtype::F32, rewind: true }
    }

    /// Contiguous fp32 accumulator tensor whose cursor persists across
    /// instructions (for FIFO-drained fp32 streams).
    pub fn acc32(addr: u32, len: u32) -> Descriptor {
        Descriptor::Mem { addr, len, stride: 1, dtype: Dtype::F32, rewind: false }
    }

    /// fp16 fabric receive stream.
    pub fn rx16(color: Color, len: u32) -> Descriptor {
        Descriptor::FabricIn { color, len, dtype: Dtype::F16 }
    }

    /// fp16 fabric transmit stream.
    pub fn tx16(color: Color, len: u32) -> Descriptor {
        Descriptor::FabricOut { color, len, dtype: Dtype::F16 }
    }

    /// fp32 fabric receive stream.
    pub fn rx32(color: Color, len: u32) -> Descriptor {
        Descriptor::FabricIn { color, len, dtype: Dtype::F32 }
    }

    /// fp32 fabric transmit stream.
    pub fn tx32(color: Color, len: u32) -> Descriptor {
        Descriptor::FabricOut { color, len, dtype: Dtype::F32 }
    }

    /// FIFO descriptor.
    pub fn fifo(fifo: FifoId) -> Descriptor {
        Descriptor::Fifo { fifo }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_cursor_addressing() {
        let mut d = Dsr::new(mk::tensor16(100, 8));
        assert_eq!(d.current_addr(), Some(100));
        d.advance(3);
        assert_eq!(d.current_addr(), Some(106));
        assert_eq!(d.remaining(), 5);
        d.finish_instruction();
        assert_eq!(d.pos, 0, "rewinding tensor resets");
    }

    #[test]
    fn acc_cursor_persists() {
        let mut d = Dsr::new(mk::acc16(0, 10));
        d.advance(4);
        d.finish_instruction();
        assert_eq!(d.pos, 4, "accumulator keeps its position");
        assert_eq!(d.remaining(), 6);
    }

    #[test]
    fn strided_addressing() {
        let d = Dsr {
            desc: Descriptor::Mem { addr: 0, len: 4, stride: 3, dtype: Dtype::F32, rewind: true },
            pos: 2,
        };
        // element 2 at byte 2 * 3 * 4 = 24
        assert_eq!(d.current_addr(), Some(24));
    }

    #[test]
    fn fabric_descriptors_have_no_addr() {
        let d = Dsr::new(mk::rx16(3, 5));
        assert_eq!(d.current_addr(), None);
        assert_eq!(d.remaining(), 5);
    }

    #[test]
    fn fifo_descriptor_is_unbounded() {
        let d = Dsr::new(mk::fifo(0));
        assert_eq!(d.remaining(), u32::MAX);
        assert_eq!(d.desc.len(), None);
        assert_eq!(d.desc.dtype(), None);
    }
}
