//! The 2D tile fabric: the wafer.
//!
//! A [`Fabric`] is a `w × h` grid of [`Tile`]s (core + 48 KB SRAM + router)
//! stepped on a global clock. Links have single-cycle per-hop latency: a
//! flit staged on an output port this cycle is available in the neighbor's
//! input queue next cycle ("nanosecond per hop message latencies" at
//! ~1 cycle/hop).

use crate::core::Core;
use crate::memory::Memory;
use crate::router::{Router, StagedFlit};
use crate::types::{Color, Flit, Port, PORT_BYTES_PER_CYCLE};
use rayon::prelude::*;

/// One tile: processor core, private SRAM, and router.
#[derive(Clone, Debug, Default)]
pub struct Tile {
    /// The tile's 48 KB SRAM.
    pub mem: Memory,
    /// The processor core.
    pub core: Core,
    /// The router.
    pub router: Router,
}

/// Error from [`Fabric::run_until_quiescent`] when the deadline passes.
#[derive(Clone, Debug)]
pub struct Stalled {
    /// Cycle count at the timeout.
    pub cycle: u64,
    /// Human-readable description of what was still busy.
    pub diagnostics: String,
}

impl std::fmt::Display for Stalled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fabric failed to quiesce by cycle {}: {}", self.cycle, self.diagnostics)
    }
}

impl std::error::Error for Stalled {}

/// Aggregate performance counters across the fabric.
#[derive(Copy, Clone, Debug, Default)]
pub struct FabricPerf {
    /// Total fp16 flops executed.
    pub flops_f16: u64,
    /// Total fp32 flops executed.
    pub flops_f32: u64,
    /// Total datapath-busy core-cycles.
    pub busy_cycles: u64,
    /// Total idle core-cycles.
    pub idle_cycles: u64,
    /// Total flits forwarded by routers.
    pub flits_routed: u64,
}

/// One sample of fabric activity (see [`Fabric::enable_sampling`]).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct ActivitySample {
    /// Cycle the sample was taken at.
    pub cycle: u64,
    /// Fraction of cores whose datapath issued during the sampling window.
    pub core_utilization: f64,
    /// Flits forwarded by routers during the window.
    pub flits_routed: u64,
    /// fp16 + fp32 flops executed during the window.
    pub flops: u64,
}

/// The wafer: a grid of tiles with a global clock.
pub struct Fabric {
    w: usize,
    h: usize,
    tiles: Vec<Tile>,
    cycle: u64,
    sample_interval: u64,
    samples: Vec<ActivitySample>,
    last_sample_perf: FabricPerf,
}

impl Fabric {
    /// Creates a `w × h` fabric of fresh tiles.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(w: usize, h: usize) -> Fabric {
        assert!(w > 0 && h > 0, "fabric dimensions must be nonzero");
        Fabric {
            w,
            h,
            tiles: (0..w * h).map(|_| Tile::default()).collect(),
            cycle: 0,
            sample_interval: 0,
            samples: Vec::new(),
            last_sample_perf: FabricPerf::default(),
        }
    }

    /// Enables periodic activity sampling: every `interval` cycles a
    /// [`ActivitySample`] is appended (utilization timeline for phase
    /// analysis and the examples' activity plots). `interval = 0` disables.
    pub fn enable_sampling(&mut self, interval: u64) {
        self.sample_interval = interval;
        self.samples.clear();
        self.last_sample_perf = self.perf();
    }

    /// The collected activity timeline.
    pub fn samples(&self) -> &[ActivitySample] {
        &self.samples
    }

    /// Fabric width in tiles.
    pub fn width(&self) -> usize {
        self.w
    }

    /// Fabric height in tiles.
    pub fn height(&self) -> usize {
        self.h
    }

    /// Elapsed cycles.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    #[inline]
    fn index(&self, x: usize, y: usize) -> usize {
        debug_assert!(x < self.w && y < self.h, "tile ({x},{y}) outside fabric");
        y * self.w + x
    }

    /// Immutable tile access.
    pub fn tile(&self, x: usize, y: usize) -> &Tile {
        &self.tiles[self.index(x, y)]
    }

    /// Mutable tile access (program loading).
    pub fn tile_mut(&mut self, x: usize, y: usize) -> &mut Tile {
        let i = self.index(x, y);
        &mut self.tiles[i]
    }

    /// Configures a route on tile `(x, y)`.
    pub fn set_route(&mut self, x: usize, y: usize, in_port: Port, color: Color, outs: &[Port]) {
        // Validate that no output points off the wafer.
        for &o in outs {
            if o == Port::Ramp {
                continue;
            }
            let (dx, dy) = o.delta();
            let (nx, ny) = (x as i64 + dx as i64, y as i64 + dy as i64);
            assert!(
                nx >= 0 && ny >= 0 && nx < self.w as i64 && ny < self.h as i64,
                "route at ({x},{y}) port {o:?} points off the fabric"
            );
        }
        self.tile_mut(x, y).router.set_route(in_port, color, outs);
    }

    /// Advances the fabric one cycle.
    pub fn step(&mut self) {
        // Phase 1: cores execute (independent per tile — parallel).
        self.tiles.par_iter_mut().for_each(|t| {
            let Tile { mem, core, .. } = t;
            core.step(mem);
        });

        // Phase 2: core injection moves into the router's ramp-input queues
        // (bounded by port bandwidth and queue space).
        for t in &mut self.tiles {
            // Respect the ramp queue's *minimum* color space conservatively:
            // drain one flit at a time, checking the target queue.
            let mut budget = PORT_BYTES_PER_CYCLE;
            while let Some(&(color, flit)) = t.core_peek_ramp_out() {
                if flit.bytes() > budget || t.router.space(Port::Ramp, color) == 0 {
                    break;
                }
                let drained = t.core.drain_ramp_out(flit.bytes());
                debug_assert_eq!(drained.len(), 1);
                t.router.enqueue(Port::Ramp, color, flit);
                budget -= flit.bytes();
            }
        }

        // Phase 3: routers stage flits against a start-of-phase snapshot of
        // destination occupancy, then deliveries land (1 cycle/hop).
        let all_staged: Vec<(usize, Vec<StagedFlit>)>;
        {
            // Occupancy snapshots (immutable borrows end before staging).
            let router_space: Vec<[[usize; crate::types::NUM_COLORS]; 5]> = self
                .tiles
                .iter()
                .map(|t| {
                    let mut s = [[0usize; crate::types::NUM_COLORS]; 5];
                    for p in Port::ALL {
                        for (c, slot) in s[p.index()].iter_mut().enumerate() {
                            *slot = t.router.space(p, c as Color);
                        }
                    }
                    s
                })
                .collect();
            let ramp_space: Vec<[usize; crate::types::NUM_COLORS]> = self
                .tiles
                .iter()
                .map(|t| {
                    let mut s = [0usize; crate::types::NUM_COLORS];
                    for (c, slot) in s.iter_mut().enumerate() {
                        *slot = t.core.ramp_in_space(c as Color);
                    }
                    s
                })
                .collect();

            let w = self.w;
            let h = self.h;
            all_staged = self
                .tiles
                .par_iter_mut()
                .enumerate()
                .map(|(i, t)| {
                    let (x, y) = (i % w, i / w);
                    let staged = t.router.stage(|out, color, already| {
                        match out {
                            Port::Ramp => already < ramp_space[i][color as usize],
                            _ => {
                                let (dx, dy) = out.delta();
                                let (nx, ny) = (x as i64 + dx as i64, y as i64 + dy as i64);
                                if nx < 0 || ny < 0 || nx >= w as i64 || ny >= h as i64 {
                                    return false; // edge of the wafer: hold
                                }
                                let ni = ny as usize * w + nx as usize;
                                let in_port = out.opposite().unwrap();
                                already < router_space[ni][in_port.index()][color as usize]
                            }
                        }
                    });
                    (i, staged)
                })
                .collect();
        }

        // Phase 4: deliveries.
        for (i, staged) in all_staged {
            let (x, y) = (i % self.w, i / self.w);
            for s in staged {
                match s.out {
                    Port::Ramp => {
                        self.tiles[i].core.deliver(s.color, s.flit);
                    }
                    out => {
                        let (dx, dy) = out.delta();
                        let nx = (x as i64 + dx as i64) as usize;
                        let ny = (y as i64 + dy as i64) as usize;
                        let ni = self.index(nx, ny);
                        let in_port = out.opposite().unwrap();
                        self.tiles[ni].router.enqueue(in_port, s.color, s.flit);
                    }
                }
            }
        }

        self.cycle += 1;
        if self.sample_interval > 0 && self.cycle.is_multiple_of(self.sample_interval) {
            let now = self.perf();
            let window_busy = now.busy_cycles - self.last_sample_perf.busy_cycles;
            let window_cycles = self.sample_interval * self.tiles.len() as u64;
            self.samples.push(ActivitySample {
                cycle: self.cycle,
                core_utilization: window_busy as f64 / window_cycles as f64,
                flits_routed: now.flits_routed - self.last_sample_perf.flits_routed,
                flops: (now.flops_f16 + now.flops_f32)
                    - (self.last_sample_perf.flops_f16 + self.last_sample_perf.flops_f32),
            });
            self.last_sample_perf = now;
        }
    }

    /// `true` when every core is quiescent and every queue is empty.
    pub fn is_quiescent(&self) -> bool {
        self.tiles.iter().all(|t| t.core.is_quiescent() && t.router.queued() == 0)
    }

    /// Steps until quiescent, returning the number of cycles elapsed since
    /// the call began.
    ///
    /// # Errors
    /// Returns [`Stalled`] with per-tile diagnostics if `max_cycles` pass
    /// without quiescence (deadlock or unfinished stream).
    pub fn run_until_quiescent(&mut self, max_cycles: u64) -> Result<u64, Stalled> {
        let start = self.cycle;
        while !self.is_quiescent() {
            if self.cycle - start >= max_cycles {
                return Err(Stalled { cycle: self.cycle, diagnostics: self.diagnose() });
            }
            self.step();
        }
        Ok(self.cycle - start)
    }

    /// Describes which tiles are still busy (deadlock debugging).
    pub fn diagnose(&self) -> String {
        let mut out = String::new();
        let mut shown = 0;
        for y in 0..self.h {
            for x in 0..self.w {
                let t = self.tile(x, y);
                let busy_core = !t.core.is_quiescent();
                let busy_router = t.router.queued() > 0;
                if busy_core || busy_router {
                    if shown < 12 {
                        out.push_str(&format!(
                            "tile({x},{y}): core_busy={busy_core} router_queued={} ramp_out={} ramp_in_residue={}; ",
                            t.router.queued(),
                            t.core.ramp_out_len(),
                            t.core.ramp_in_residue(),
                        ));
                    }
                    shown += 1;
                }
            }
        }
        if shown > 12 {
            out.push_str(&format!("... and {} more tiles", shown - 12));
        }
        if out.is_empty() {
            out.push_str("nothing busy (already quiescent)");
        }
        out
    }

    /// Aggregates performance counters over all tiles.
    pub fn perf(&self) -> FabricPerf {
        let mut p = FabricPerf::default();
        for t in &self.tiles {
            p.flops_f16 += t.core.perf.flops_f16;
            p.flops_f32 += t.core.perf.flops_f32;
            p.busy_cycles += t.core.perf.busy_cycles;
            p.idle_cycles += t.core.perf.idle_cycles;
            p.flits_routed += t.router.flits_routed;
        }
        p
    }
}

impl Tile {
    /// Peeks the head of the core's injection queue without removing it.
    fn core_peek_ramp_out(&self) -> Option<&(Color, Flit)> {
        self.core.peek_ramp_out()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsr::mk;
    use crate::instr::{Op, Stmt, Task, TensorInstr};
    use crate::types::Dtype;
    use wse_float::F16;

    /// Two tiles: (0,0) sends three fp16 values east on color 1; (1,0)
    /// receives and stores them.
    #[test]
    fn point_to_point_transfer() {
        let mut f = Fabric::new(2, 1);
        // Route: sender ramp -> East; receiver West -> Ramp.
        f.set_route(0, 0, Port::Ramp, 1, &[Port::East]);
        f.set_route(1, 0, Port::West, 1, &[Port::Ramp]);

        // Sender program.
        {
            let t = f.tile_mut(0, 0);
            let data: Vec<F16> = [1.0, 2.0, 3.0].iter().map(|&v| F16::from_f64(v)).collect();
            let addr = t.mem.alloc_vec(3, Dtype::F16).unwrap();
            t.mem.store_f16_slice(addr, &data);
            let dsrc = t.core.add_dsr(mk::tensor16(addr, 3));
            let dtx = t.core.add_dsr(mk::tx16(1, 3));
            let task = t.core.add_task(Task::new(
                "send",
                vec![Stmt::Exec(TensorInstr {
                    op: Op::Copy,
                    dst: Some(dtx),
                    a: Some(dsrc),
                    b: None,
                })],
            ));
            t.core.activate(task);
        }
        // Receiver program.
        let raddr;
        {
            let t = f.tile_mut(1, 0);
            raddr = t.mem.alloc_vec(3, Dtype::F16).unwrap();
            let drx = t.core.add_dsr(mk::rx16(1, 3));
            let ddst = t.core.add_dsr(mk::tensor16(raddr, 3));
            let task = t.core.add_task(Task::new(
                "recv",
                vec![Stmt::Exec(TensorInstr {
                    op: Op::Copy,
                    dst: Some(ddst),
                    a: Some(drx),
                    b: None,
                })],
            ));
            t.core.activate(task);
        }

        let cycles = f.run_until_quiescent(1000).expect("must quiesce");
        assert!(cycles > 0 && cycles < 50, "cycles = {cycles}");
        let got = f.tile(1, 0).mem.load_f16_slice(raddr, 3);
        assert_eq!(got.iter().map(|v| v.to_f64()).collect::<Vec<_>>(), vec![1.0, 2.0, 3.0]);
        assert_eq!(f.perf().flits_routed, 6, "3 flits through 2 routers");
    }

    /// A flit crossing k hops takes ~k cycles (single-cycle per hop).
    #[test]
    fn hop_latency_is_about_one_cycle() {
        let n = 12;
        let mut f = Fabric::new(n, 1);
        // Pass-through routes on color 0, west→east.
        f.set_route(0, 0, Port::Ramp, 0, &[Port::East]);
        for x in 1..n - 1 {
            f.set_route(x, 0, Port::West, 0, &[Port::East]);
        }
        f.set_route(n - 1, 0, Port::West, 0, &[Port::Ramp]);

        {
            let t = f.tile_mut(0, 0);
            let addr = t.mem.alloc_vec(1, Dtype::F16).unwrap();
            t.mem.store_f16_slice(addr, &[F16::from_f64(9.0)]);
            let dsrc = t.core.add_dsr(mk::tensor16(addr, 1));
            let dtx = t.core.add_dsr(mk::tx16(0, 1));
            let task = t.core.add_task(Task::new(
                "send",
                vec![Stmt::Exec(TensorInstr {
                    op: Op::Copy,
                    dst: Some(dtx),
                    a: Some(dsrc),
                    b: None,
                })],
            ));
            t.core.activate(task);
        }
        {
            let t = f.tile_mut(n - 1, 0);
            let drx = t.core.add_dsr(mk::rx16(0, 1));
            let task = t.core.add_task(Task::new(
                "recv",
                vec![Stmt::Exec(TensorInstr {
                    op: Op::LoadReg { reg: 0 },
                    dst: None,
                    a: Some(drx),
                    b: None,
                })],
            ));
            t.core.activate(task);
        }
        let cycles = f.run_until_quiescent(1000).unwrap();
        assert_eq!(f.tile(n - 1, 0).core.regs[0], 9.0);
        // n-1 hops plus a few cycles of launch/ramp overhead.
        assert!(
            cycles as usize >= n - 1 && (cycles as usize) < n + 12,
            "expected ~{} cycles, got {cycles}",
            n - 1
        );
    }

    /// Fanout: one sender broadcasts to all four neighbors simultaneously.
    #[test]
    fn broadcast_to_four_neighbors() {
        let mut f = Fabric::new(3, 3);
        f.set_route(1, 1, Port::Ramp, 2, &[Port::North, Port::South, Port::East, Port::West]);
        for (x, y, port) in [
            (1usize, 0usize, Port::South),
            (1, 2, Port::North),
            (2, 1, Port::West),
            (0, 1, Port::East),
        ] {
            f.set_route(x, y, port, 2, &[Port::Ramp]);
            let t = f.tile_mut(x, y);
            let drx = t.core.add_dsr(mk::rx16(2, 1));
            let task = t.core.add_task(Task::new(
                "recv",
                vec![Stmt::Exec(TensorInstr {
                    op: Op::LoadReg { reg: 5 },
                    dst: None,
                    a: Some(drx),
                    b: None,
                })],
            ));
            t.core.activate(task);
        }
        {
            let t = f.tile_mut(1, 1);
            let addr = t.mem.alloc_vec(1, Dtype::F16).unwrap();
            t.mem.store_f16_slice(addr, &[F16::from_f64(4.0)]);
            let dsrc = t.core.add_dsr(mk::tensor16(addr, 1));
            let dtx = t.core.add_dsr(mk::tx16(2, 1));
            let task = t.core.add_task(Task::new(
                "send",
                vec![Stmt::Exec(TensorInstr {
                    op: Op::Copy,
                    dst: Some(dtx),
                    a: Some(dsrc),
                    b: None,
                })],
            ));
            t.core.activate(task);
        }
        f.run_until_quiescent(100).unwrap();
        for (x, y) in [(1, 0), (1, 2), (2, 1), (0, 1)] {
            assert_eq!(f.tile(x, y).core.regs[5], 4.0, "neighbor ({x},{y})");
        }
    }

    #[test]
    fn stalled_reports_diagnostics() {
        let mut f = Fabric::new(2, 1);
        // Receiver waits for data that never comes.
        let t = f.tile_mut(1, 0);
        let drx = t.core.add_dsr(mk::rx16(0, 1));
        let task = t.core.add_task(Task::new(
            "recv",
            vec![Stmt::Exec(TensorInstr {
                op: Op::LoadReg { reg: 0 },
                dst: None,
                a: Some(drx),
                b: None,
            })],
        ));
        t.core.activate(task);
        let err = f.run_until_quiescent(50).unwrap_err();
        assert!(err.diagnostics.contains("tile(1,0)"), "{}", err.diagnostics);
    }

    #[test]
    fn sampling_records_activity() {
        let mut f = Fabric::new(2, 1);
        f.set_route(0, 0, Port::Ramp, 1, &[Port::East]);
        f.set_route(1, 0, Port::West, 1, &[Port::Ramp]);
        f.enable_sampling(4);
        {
            let t = f.tile_mut(0, 0);
            let data: Vec<F16> = (0..32).map(|i| F16::from_f64(i as f64 * 0.125)).collect();
            let addr = t.mem.alloc_vec(32, Dtype::F16).unwrap();
            t.mem.store_f16_slice(addr, &data);
            let dsrc = t.core.add_dsr(mk::tensor16(addr, 32));
            let dtx = t.core.add_dsr(mk::tx16(1, 32));
            let task = t.core.add_task(Task::new(
                "send",
                vec![Stmt::Exec(TensorInstr {
                    op: Op::Copy,
                    dst: Some(dtx),
                    a: Some(dsrc),
                    b: None,
                })],
            ));
            t.core.activate(task);
        }
        {
            let t = f.tile_mut(1, 0);
            let addr = t.mem.alloc_vec(32, Dtype::F16).unwrap();
            let drx = t.core.add_dsr(mk::rx16(1, 32));
            let ddst = t.core.add_dsr(mk::tensor16(addr, 32));
            let task = t.core.add_task(Task::new(
                "recv",
                vec![Stmt::Exec(TensorInstr {
                    op: Op::Copy,
                    dst: Some(ddst),
                    a: Some(drx),
                    b: None,
                })],
            ));
            t.core.activate(task);
        }
        f.run_until_quiescent(500).unwrap();
        let samples = f.samples();
        assert!(!samples.is_empty(), "samples must accumulate");
        assert!(samples.iter().any(|s| s.core_utilization > 0.0));
        assert!(samples.iter().any(|s| s.flits_routed > 0));
        let total_flits: u64 = samples.iter().map(|s| s.flits_routed).sum();
        assert!(total_flits <= f.perf().flits_routed);
        // Cycles are strictly increasing multiples of the interval.
        for w in samples.windows(2) {
            assert_eq!(w[1].cycle - w[0].cycle, 4);
        }
    }

    #[test]
    fn sampling_disabled_by_default() {
        let mut f = Fabric::new(1, 1);
        for _ in 0..10 {
            f.step();
        }
        assert!(f.samples().is_empty());
    }

    #[test]
    #[should_panic(expected = "points off the fabric")]
    fn edge_route_panics() {
        let mut f = Fabric::new(2, 2);
        f.set_route(0, 0, Port::Ramp, 0, &[Port::West]);
    }
}
