//! The 2D tile fabric: the wafer.
//!
//! A [`Fabric`] is a `w × h` grid of [`Tile`]s (core + 48 KB SRAM + router)
//! stepped on a global clock. Links have single-cycle per-hop latency: a
//! flit staged on an output port this cycle is available in the neighbor's
//! input queue next cycle ("nanosecond per hop message latencies" at
//! ~1 cycle/hop).
//!
//! The stepper is *activity-driven*: each cycle touches only tiles that can
//! possibly change state (busy cores, non-empty routers, delivery targets)
//! plus their snapshot neighborhood, and all per-cycle buffers live in
//! reusable scratch storage owned by the fabric, so the steady-state cost of
//! a cycle is O(active tiles) with zero heap allocations. The skipped-tile
//! bookkeeping (deferred idle accounting) is bit-identical to stepping every
//! tile; [`Fabric::step_reference`] retains the naive full-scan stepper and
//! the equivalence tests drive both in lockstep.

use crate::core::Core;
use crate::fault::{FaultEvent, FaultKind, FaultLog, FaultPlan, FaultRecord};
use crate::memory::{Memory, TILE_SRAM_BYTES};
use crate::router::{Router, StagedFlit};
use crate::sanitize::{SanitizerReport, TileSanitizer};
use crate::trace::{FabricTrace, PerfWindow, PhaseSpan, TileTrace, TraceConfig};
use crate::types::{Color, Flit, Port, NUM_COLORS, PORT_BYTES_PER_CYCLE};
use rayon::prelude::*;
use std::collections::HashMap;

/// The four cardinal ports, in [`Port::ALL`] order (no ramp).
const CARDINAL: [Port; 4] = [Port::North, Port::South, Port::East, Port::West];

/// Active-tile count above which the per-phase loops switch from the serial
/// sparse path to rayon parallelism. Below this, fork/join overhead
/// dominates; above it, phases 1–4 scale across cores.
const PAR_TILE_THRESHOLD: usize = 512;

/// One tile: processor core, private SRAM, and router.
#[derive(Clone, Debug, Default)]
pub struct Tile {
    /// The tile's 48 KB SRAM.
    pub mem: Memory,
    /// The processor core.
    pub core: Core,
    /// The router.
    pub router: Router,
}

/// Error from [`Fabric::run_until_quiescent`] when the deadline passes.
#[derive(Clone, Debug)]
pub struct Stalled {
    /// Cycle count at the timeout.
    pub cycle: u64,
    /// Human-readable description of what was still busy.
    pub diagnostics: String,
}

impl std::fmt::Display for Stalled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fabric failed to quiesce by cycle {}: {}", self.cycle, self.diagnostics)
    }
}

impl std::error::Error for Stalled {}

/// One wedged tile in a [`StallReport`].
#[derive(Clone, Debug)]
pub struct StalledTile {
    /// Tile x coordinate.
    pub x: usize,
    /// Tile y coordinate.
    pub y: usize,
    /// Name of the task on the main thread, if one is running.
    pub task: Option<&'static str>,
    /// Flits wedged in the router's input queues.
    pub router_queued: usize,
    /// Undelivered words in the core's ramp-in queues.
    pub ramp_in: usize,
    /// Words stuck awaiting injection.
    pub ramp_out: usize,
    /// Occupied background-thread slots.
    pub active_threads: usize,
}

impl std::fmt::Display for StalledTile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "tile({},{}) task={} threads={} router_queued={} ramp_in={} ramp_out={}",
            self.x,
            self.y,
            self.task.unwrap_or("-"),
            self.active_threads,
            self.router_queued,
            self.ramp_in,
            self.ramp_out
        )
    }
}

/// Structured stall diagnosis from [`Fabric::run_watched`]: the watchdog
/// observed `window` consecutive cycles with zero progress (no flits moved,
/// no datapath issue, no control statements retired) while work remained.
///
/// The simulator is deterministic and closed — nothing external can wake a
/// tile — so a zero-progress window of any length is a *permanent* deadlock,
/// not a transient lull; the watchdog window only bounds detection latency.
#[derive(Clone, Debug)]
pub struct StallReport {
    /// Cycle at which the watchdog fired.
    pub cycle: u64,
    /// Length of the observed no-progress window.
    pub window: u64,
    /// `true` when the overall cycle deadline expired before a full
    /// no-progress window was seen (slow progress rather than proven
    /// deadlock).
    pub deadline_exceeded: bool,
    /// The wedged tiles (capped at [`StallReport::MAX_TILES`]).
    pub stalled: Vec<StalledTile>,
    /// Total number of wedged tiles (may exceed `stalled.len()`).
    pub total_stalled: usize,
}

impl StallReport {
    /// Cap on the per-tile detail recorded in `stalled`.
    pub const MAX_TILES: usize = 16;
}

impl std::fmt::Display for StallReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.deadline_exceeded {
            write!(f, "fabric exceeded its cycle deadline at cycle {}", self.cycle)?;
        } else {
            write!(
                f,
                "fabric stalled at cycle {}: no progress for {} cycles",
                self.cycle, self.window
            )?;
        }
        write!(f, "; {} tile(s) wedged", self.total_stalled)?;
        for t in self.stalled.iter().take(8) {
            write!(f, "; {t}")?;
        }
        if self.total_stalled > 8 {
            write!(f, "; ...")?;
        }
        Ok(())
    }
}

impl std::error::Error for StallReport {}

/// Armed fault-injection state (present only when a plan is armed, so the
/// healthy-path cost is one pointer test per phase).
#[derive(Clone, Debug)]
struct FaultState {
    /// Scheduled events, sorted by cycle.
    events: Vec<FaultEvent>,
    /// Index of the next unapplied event.
    next: usize,
    /// Per-tile kill flags.
    dead: Vec<bool>,
    /// Armed one-shot link faults: (tile index, out port, `Some(bit)` to
    /// corrupt / `None` to drop).
    pending_links: Vec<(usize, Port, Option<u8>)>,
    /// Audit trail.
    log: FaultLog,
}

/// Aggregate performance counters across the fabric.
#[derive(Copy, Clone, Debug, Default)]
pub struct FabricPerf {
    /// Total fp16 flops executed.
    pub flops_f16: u64,
    /// Total fp32 flops executed.
    pub flops_f32: u64,
    /// Total datapath-busy core-cycles.
    pub busy_cycles: u64,
    /// Total idle core-cycles.
    pub idle_cycles: u64,
    /// Total flits forwarded by routers.
    pub flits_routed: u64,
    /// Total control statements retired by cores.
    pub ctrl_stmts: u64,
    /// Router backpressure totals per output port (cycles a routed head
    /// flit was held because that downstream queue was full), indexed by
    /// [`Port::index`] and summed over all tiles.
    pub backpressure: [u64; 5],
}

impl FabricPerf {
    /// Total backpressure flit-hold cycles across all ports and tiles.
    pub fn backpressure_total(&self) -> u64 {
        self.backpressure.iter().sum()
    }
}

/// One sample of fabric activity (see [`Fabric::enable_sampling`]).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct ActivitySample {
    /// Cycle the sample was taken at.
    pub cycle: u64,
    /// Fraction of cores whose datapath issued during the sampling window.
    pub core_utilization: f64,
    /// Flits forwarded by routers during the window.
    pub flits_routed: u64,
    /// fp16 + fp32 flops executed during the window.
    pub flops: u64,
}

/// A declared boundary I/O channel (see [`Fabric::open_edge`]): flits
/// routed out of `port` at tile `(x, y)` on `color` leave the wafer into
/// the host-visible `queue`, gated by host-granted `credits`; the host
/// injects inbound flits through the same channel with
/// [`Fabric::inject_edge`]. Undeclared boundary fanouts keep the
/// historical hold-forever semantics.
#[derive(Clone, Debug)]
struct EdgePort {
    x: usize,
    y: usize,
    port: Port,
    color: Color,
    /// Host-granted egress admission budget: staged off-wafer flits are
    /// admitted while `queue.len() < credits` (snapshotted at the start
    /// of phase 3, like every other admission check). Zero — the default
    /// — holds flits exactly like an undeclared edge.
    credits: usize,
    /// Egress flits awaiting host pickup, in staged order.
    queue: Vec<Flit>,
}

/// Armed trace state (present only while tracing, mirroring `FaultState`).
struct TraceState {
    /// Fabric cycle at arm time.
    start_cycle: u64,
    /// Driver-marked phase spans, in open order.
    phases: Vec<PhaseSpan>,
    /// Index into `phases` of the currently open span, if any.
    open: Option<usize>,
    /// Per-tile counter baselines at arm time, so the exported trace
    /// carries window deltas: `(busy, idle, flits_routed, backpressure)`.
    base: Vec<(u64, u64, u64, [u64; 5])>,
    /// Per-tile event ring capacity, kept so tiles replaced mid-window
    /// (a [`Fabric::blit_region`]) can be re-armed consistently.
    ring_capacity: usize,
}

/// Reusable per-cycle scratch storage owned by the fabric. Every buffer is
/// sized once at construction and reused each cycle, so the steady-state
/// stepper performs no heap allocations (staged-flit vectors keep their
/// high-water capacity).
struct StepScratch {
    /// Occupancy snapshot of router input queues, laid out flat as
    /// `[(tile * 5 + in_port) * NUM_COLORS + color]`. Only entries named by
    /// the per-tile in-masks are (re)filled each cycle; staging is proven
    /// never to consult an unfilled entry.
    router_space: Vec<u8>,
    /// Occupancy snapshot of core ramp-in queues: `[tile * NUM_COLORS + c]`.
    ramp_space: Vec<u8>,
    /// Dedup flag per tile: snapshot rows already filled this cycle.
    snap_flag: Vec<bool>,
    /// Tiles whose `snap_flag` is set (cleared at end of phase 3).
    snap_list: Vec<usize>,
    /// Per-tile staged-flit buffers (cleared after delivery each cycle).
    staged: Vec<Vec<StagedFlit>>,
    /// Tiles with non-empty routers this cycle (the staging worklist).
    stagers: Vec<usize>,
    /// Dedup flag per tile: already recorded as a delivery destination.
    dest_flag: Vec<bool>,
    /// Delivery destinations this cycle (drained into the active set).
    dest_list: Vec<usize>,
    /// Per-edge-port admission snapshot for the cycle:
    /// `credits - queue.len()` at the start of phase 3.
    edge_room: Vec<u8>,
}

impl StepScratch {
    fn new(n: usize) -> StepScratch {
        StepScratch {
            router_space: vec![0; n * 5 * NUM_COLORS],
            ramp_space: vec![0; n * NUM_COLORS],
            snap_flag: vec![false; n],
            snap_list: Vec::new(),
            staged: vec![Vec::new(); n],
            stagers: Vec::new(),
            dest_flag: vec![false; n],
            dest_list: Vec::new(),
            edge_room: Vec::new(),
        }
    }
}

/// Index of the neighbor of tile `i` through cardinal port `p`, or `None`
/// at the wafer edge.
#[inline]
fn neighbor_of(w: usize, h: usize, i: usize, p: Port) -> Option<usize> {
    let (dx, dy) = p.delta();
    let nx = (i % w) as i64 + dx as i64;
    let ny = (i / w) as i64 + dy as i64;
    if nx < 0 || ny < 0 || nx >= w as i64 || ny >= h as i64 {
        None
    } else {
        Some(ny as usize * w + nx as usize)
    }
}

/// Fused phases 1+2 for one tile: settle deferred idle, step the core, then
/// drain its injection queue into the router's ramp input (bounded by port
/// bandwidth and queue space). Returns this tile's progress delta
/// (busy cycles + retired control statements).
///
/// Phases 1 and 2 touch only the tile's own core/router, so fusing them
/// per-tile is order-equivalent to the reference's two full passes.
fn step_and_drain(t: &mut Tile, accounted: &mut u64, cycle: u64) -> u64 {
    let Tile { mem, core, router } = t;
    core.account_idle(cycle - *accounted);
    *accounted = cycle + 1;
    let before = core.perf.busy_cycles + core.perf.ctrl_stmts;
    core.step(mem);
    // Respect the ramp queue's *minimum* color space conservatively:
    // drain one flit at a time, checking the target queue.
    let mut budget = PORT_BYTES_PER_CYCLE;
    while let Some((color, flit)) =
        core.pop_ramp_out_ready(budget, |c| router.space(Port::Ramp, c) > 0)
    {
        router.enqueue(Port::Ramp, color, flit);
        budget -= flit.bytes();
    }
    core.perf.busy_cycles + core.perf.ctrl_stmts - before
}

/// The staging admission check against the start-of-cycle occupancy
/// snapshots (shared by the sparse and parallel staging paths).
#[allow(clippy::too_many_arguments)]
#[inline]
fn accept(
    router_space: &[u8],
    ramp_space: &[u8],
    edge_index: &HashMap<(usize, Port, Color), usize>,
    edge_room: &[u8],
    w: usize,
    h: usize,
    i: usize,
    x: usize,
    y: usize,
    out: Port,
    color: Color,
    already: usize,
) -> bool {
    match out {
        Port::Ramp => already < ramp_space[i * NUM_COLORS + color as usize] as usize,
        _ => {
            let (dx, dy) = out.delta();
            let (nx, ny) = (x as i64 + dx as i64, y as i64 + dy as i64);
            if nx < 0 || ny < 0 || nx >= w as i64 || ny >= h as i64 {
                // Off-wafer: admit only through a declared edge port with
                // snapshot credit left; an undeclared boundary fanout holds
                // forever (the historical edge-of-wafer semantics).
                return match edge_index.get(&(i, out, color)) {
                    Some(&e) => already < edge_room[e] as usize,
                    None => false,
                };
            }
            let ni = ny as usize * w + nx as usize;
            let in_port = out.opposite().unwrap();
            already
                < router_space[(ni * 5 + in_port.index()) * NUM_COLORS + color as usize] as usize
        }
    }
}

/// The wafer: a grid of tiles with a global clock.
pub struct Fabric {
    w: usize,
    h: usize,
    tiles: Vec<Tile>,
    cycle: u64,
    sample_interval: u64,
    samples: Vec<ActivitySample>,
    sample_window: PerfWindow,
    /// Armed fault injection; `None` (the default) keeps [`Fabric::step`]
    /// on a no-op fast path.
    faults: Option<Box<FaultState>>,
    /// Armed tracing; `None` (the default) keeps every hook on a no-op
    /// fast path.
    trace: Option<Box<TraceState>>,
    /// Cycle at which the runtime sanitizer was armed (`None` = disarmed;
    /// the per-core shadow state lives in each [`Core`]).
    sanitize_start: Option<u64>,
    /// Per-tile "observably busy" flag: core not quiescent or router
    /// non-empty — exactly the reference per-tile quiescence predicate.
    busy: Vec<bool>,
    /// Number of set `busy` flags: `is_quiescent()` is an O(1) read.
    busy_count: usize,
    /// Per-tile membership flag for `active_list`.
    active: Vec<bool>,
    /// Tiles the stepper must touch next cycle: every busy tile, plus
    /// quiescent tiles holding bound ramp-in data (they can self-wake).
    active_list: Vec<usize>,
    /// Per-tile membership flag for `dirty_list`.
    dirty: Vec<bool>,
    /// Tiles handed out via [`Fabric::tile_mut`] since the last step:
    /// their routes/masks/busy state are re-derived before stepping.
    dirty_list: Vec<usize>,
    /// Per-tile cycle up to which idle time has been accounted: skipped
    /// quiescent tiles accrue an idle *debt* (`cycle - accounted[i]`) that
    /// is settled lazily, keeping counters bit-identical to full stepping.
    accounted: Vec<u64>,
    /// Per-tile color mask: colors that can *arrive* on a cardinal port
    /// (some neighbor routes them toward this tile). Phase-3 snapshots
    /// fill only these rows.
    in_mask: Vec<u32>,
    /// Per-tile color mask: colors this tile's router can deliver to its
    /// own core (a configured fanout contains the ramp).
    ramp_mask: Vec<u32>,
    /// Monotone progress counter (busy cycles, retired control statements,
    /// and forwarded flits), maintained incrementally — the stall
    /// watchdog's O(1) replacement for a full perf rescan.
    progress: u64,
    /// When set, [`Fabric::step`] delegates to the retained full-scan
    /// [`Fabric::step_reference`] (equivalence testing / benchmarking).
    force_reference: bool,
    /// Declared boundary I/O channels, in declaration order.
    edge_ports: Vec<EdgePort>,
    /// Lookup: `(tile index, out port, color)` → index into `edge_ports`.
    edge_index: HashMap<(usize, Port, Color), usize>,
    /// Reusable per-cycle buffers.
    scratch: StepScratch,
}

impl Fabric {
    /// Creates a `w × h` fabric of fresh tiles.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(w: usize, h: usize) -> Fabric {
        assert!(w > 0 && h > 0, "fabric dimensions must be nonzero");
        let n = w * h;
        Fabric {
            w,
            h,
            tiles: (0..n).map(|_| Tile::default()).collect(),
            cycle: 0,
            sample_interval: 0,
            samples: Vec::new(),
            sample_window: PerfWindow::default(),
            faults: None,
            trace: None,
            sanitize_start: None,
            busy: vec![false; n],
            busy_count: 0,
            active: vec![false; n],
            active_list: Vec::new(),
            dirty: vec![false; n],
            dirty_list: Vec::new(),
            accounted: vec![0; n],
            in_mask: vec![0; n],
            ramp_mask: vec![0; n],
            progress: 0,
            force_reference: false,
            edge_ports: Vec::new(),
            edge_index: HashMap::new(),
            scratch: StepScratch::new(n),
        }
    }

    /// Arms a fault-injection plan. Events are validated against the fabric
    /// shape and applied in cycle order as [`Fabric::step`] reaches them
    /// (events scheduled in the past fire on the next step). Re-arming
    /// replaces any previous plan and clears its log; kill/stuck state
    /// already applied to tiles is *not* undone, except that tiles killed
    /// by the *previous* plan resume stepping (their kill flags lived in
    /// the replaced plan).
    ///
    /// # Panics
    /// Panics if an event names a tile, port, address, or bit outside the
    /// fabric.
    pub fn arm_faults(&mut self, plan: &FaultPlan) {
        let events = plan.events();
        for ev in &events {
            let (x, y) = match ev.kind {
                FaultKind::SramBitFlip { x, y, addr, bit } => {
                    assert!(addr + 2 <= TILE_SRAM_BYTES, "bit flip at {addr} outside SRAM");
                    assert!(bit < 16, "bit index {bit} out of range");
                    (x, y)
                }
                FaultKind::TileKill { x, y }
                | FaultKind::StuckPort { x, y, .. }
                | FaultKind::LinkDrop { x, y, .. } => (x, y),
                FaultKind::LinkCorrupt { x, y, bit, .. } => {
                    assert!(bit < 32, "payload bit {bit} out of range");
                    (x, y)
                }
                host => panic!(
                    "{} targets the host interconnect: arm it on the MultiFabric \
                     (wse-multi), not on a single wafer",
                    host.label()
                ),
            };
            assert!(x < self.w && y < self.h, "fault targets tile ({x},{y}) outside fabric");
        }
        // Tiles killed under the old plan come back to life (the kill flag
        // dies with its FaultState). They were frozen, not idle: restart
        // their idle accounting *now* so the dead gap is never billed, and
        // wake them so the stepper sees them again.
        if let Some(old) = self.faults.take() {
            for (i, &was_dead) in old.dead.iter().enumerate() {
                if was_dead {
                    self.accounted[i] = self.cycle;
                    self.refresh_busy(i);
                    self.mark_active(i);
                }
            }
        }
        self.faults = Some(Box::new(FaultState {
            events,
            next: 0,
            dead: vec![false; self.w * self.h],
            pending_links: Vec::new(),
            log: FaultLog::default(),
        }));
    }

    /// `true` when a fault plan is armed.
    pub fn faults_armed(&self) -> bool {
        self.faults.is_some()
    }

    /// The audit trail of applied faults, if a plan is armed.
    pub fn fault_log(&self) -> Option<&FaultLog> {
        self.faults.as_ref().map(|f| &f.log)
    }

    /// `true` if tile `(x, y)` has been killed by an applied
    /// [`FaultKind::TileKill`].
    pub fn tile_dead(&self, x: usize, y: usize) -> bool {
        let i = self.index(x, y);
        self.faults.as_ref().is_some_and(|f| f.dead[i])
    }

    /// Arms fabric-wide tracing: every core begins collecting task events,
    /// stall attribution, and retire counts (bounded per-tile rings), and
    /// driver phase markers ([`Fabric::phase_begin`]) are recorded. The
    /// disarmed hooks cost one pointer test each, mirroring fault arming.
    /// Re-arming replaces any previous trace state.
    pub fn arm_trace(&mut self, config: TraceConfig) {
        // Settle all deferred idle debt first: the per-tile baselines below
        // must include every pre-arm cycle so the trace window starts clean.
        self.settle_all();
        for t in &mut self.tiles {
            t.core.arm_trace(self.cycle, config.ring_capacity);
        }
        let base = self
            .tiles
            .iter()
            .map(|t| {
                (
                    t.core.perf.busy_cycles,
                    t.core.perf.idle_cycles,
                    t.router.flits_routed,
                    t.router.backpressure,
                )
            })
            .collect();
        self.trace = Some(Box::new(TraceState {
            start_cycle: self.cycle,
            phases: Vec::new(),
            open: None,
            base,
            ring_capacity: config.ring_capacity,
        }));
        // Conservatively wake every tile: arming must never be masked by
        // activity skipping (idle tiles fall back out after one sweep).
        for i in 0..self.tiles.len() {
            self.mark_active(i);
        }
    }

    /// `true` while tracing is armed.
    pub fn trace_armed(&self) -> bool {
        self.trace.is_some()
    }

    /// Arms the runtime sanitizer on every core: shadow SRAM access marks
    /// (race detection with launch-epoch happens-before) and channel-wait
    /// streaks. The disarmed hooks cost one pointer test each, mirroring
    /// fault and trace arming; the sanitizer is observation-only, so an
    /// armed run is cycle-identical to a disarmed one. Re-arming replaces
    /// any previous shadow state.
    pub fn arm_sanitizer(&mut self) {
        // Settle deferred idle debt first so every core's `now` stamp
        // starts aligned with the fabric clock.
        self.settle_all();
        for t in &mut self.tiles {
            t.core.arm_sanitizer(self.cycle);
        }
        self.sanitize_start = Some(self.cycle);
        // Conservatively wake every tile, as with trace arming.
        for i in 0..self.tiles.len() {
            self.mark_active(i);
        }
    }

    /// `true` while the sanitizer is armed.
    pub fn sanitizer_armed(&self) -> bool {
        self.sanitize_start.is_some()
    }

    /// Disarms the sanitizer and returns everything it observed (`None` if
    /// it was not armed).
    pub fn take_sanitizer(&mut self) -> Option<SanitizerReport> {
        let start = self.sanitize_start.take()?;
        // Settle idle debt so shadow clocks are complete before draining.
        self.settle_all();
        let w = self.w;
        let tiles = self
            .tiles
            .iter_mut()
            .enumerate()
            .map(|(i, t)| {
                let san = t
                    .core
                    .take_sanitizer()
                    .expect("every core is armed for the lifetime of the fabric sanitizer");
                TileSanitizer {
                    x: i % w,
                    y: i / w,
                    trips: san.trips,
                    total_trips: san.total_trips,
                    chan_wait: san.chan_wait,
                    longest_wait: san.longest_wait,
                }
            })
            .collect();
        Some(SanitizerReport { w: self.w, h: self.h, cycles: self.cycle - start, tiles })
    }

    /// Opens a phase span named `name` at the current cycle, closing any
    /// span still open (phases are flat, not nested). No-op when tracing
    /// is disarmed — drivers call this unconditionally.
    pub fn phase_begin(&mut self, name: &'static str) {
        let cycle = self.cycle;
        let Some(ts) = self.trace.as_deref_mut() else { return };
        if let Some(i) = ts.open.take() {
            ts.phases[i].end = cycle;
        }
        ts.open = Some(ts.phases.len());
        ts.phases.push(PhaseSpan { name, start: cycle, end: cycle });
    }

    /// Closes the open phase span at the current cycle, if any. No-op when
    /// tracing is disarmed.
    pub fn phase_end(&mut self) {
        let cycle = self.cycle;
        let Some(ts) = self.trace.as_deref_mut() else { return };
        if let Some(i) = ts.open.take() {
            ts.phases[i].end = cycle;
        }
    }

    /// Records an instant marker (a zero-length [`PhaseSpan`]) at the
    /// current cycle — checkpoint/rollback stamps. Does not disturb an
    /// open phase span. No-op when tracing is disarmed.
    pub fn phase_marker(&mut self, name: &'static str) {
        let cycle = self.cycle;
        let Some(ts) = self.trace.as_deref_mut() else { return };
        ts.phases.push(PhaseSpan { name, start: cycle, end: cycle });
    }

    /// Retroactively records a span over `[start, end)` — attribution the
    /// driver can only compute after a phase ran (e.g. how much of a merged
    /// compute+communication window the communication was exposed for).
    /// The span may overlap other phases; [`PhaseReport`] consumers treat
    /// such overlap rows as annotations, not wall-clock partitions. Does
    /// not disturb an open phase span. No-op when tracing is disarmed.
    pub fn phase_span(&mut self, name: &'static str, start: u64, end: u64) {
        let Some(ts) = self.trace.as_deref_mut() else { return };
        debug_assert!(start <= end, "phase_span: start {start} after end {end}");
        // Keep `phases` sorted by start (the documented invariant) even
        // though this span is recorded after later phases opened.
        let at = ts.phases.partition_point(|s| s.start <= start);
        ts.phases.insert(at, PhaseSpan { name, start, end: end.max(start) });
        if let Some(open) = ts.open.as_mut() {
            if at <= *open {
                *open += 1;
            }
        }
    }

    /// Disarms tracing and returns the collected [`FabricTrace`] (`None`
    /// if tracing was not armed). Any open phase span is closed at the
    /// current cycle.
    pub fn take_trace(&mut self) -> Option<FabricTrace> {
        if self.trace.is_some() {
            // Settle deferred idle debt so the window totals below (read
            // straight from the per-tile counters) are complete.
            self.settle_all();
        }
        let perf = self.perf();
        let cycle = self.cycle;
        let mut ts = self.trace.take()?;
        if let Some(i) = ts.open.take() {
            ts.phases[i].end = cycle;
        }
        let w = self.w;
        let tiles = self
            .tiles
            .iter_mut()
            .enumerate()
            .map(|(i, t)| {
                let (busy0, idle0, flits0, bp0) = ts.base[i];
                let core = t
                    .core
                    .take_trace()
                    .expect("every core is armed for the lifetime of the fabric trace");
                let mut backpressure = t.router.backpressure;
                for (b, b0) in backpressure.iter_mut().zip(bp0) {
                    *b -= b0;
                }
                let mut events: Vec<_> = core.events().copied().collect();
                // Per-tile stamps are monotone by construction; killed
                // tiles freeze rather than rewind, so sorting is a no-op
                // kept as a cheap invariant.
                events.sort_by_key(|e| e.cycle);
                TileTrace {
                    x: i % w,
                    y: i / w,
                    events,
                    dropped_events: core.dropped_events(),
                    stall: core.stall,
                    retired: core.retired,
                    busy_cycles: t.core.perf.busy_cycles - busy0,
                    idle_cycles: t.core.perf.idle_cycles - idle0,
                    flits_routed: t.router.flits_routed - flits0,
                    backpressure,
                }
            })
            .collect();
        Some(FabricTrace {
            w: self.w,
            h: self.h,
            start_cycle: ts.start_cycle,
            end_cycle: cycle,
            phases: ts.phases,
            tiles,
            perf,
        })
    }

    /// Enables periodic activity sampling: every `interval` cycles an
    /// [`ActivitySample`] is appended (utilization timeline for phase
    /// analysis and the examples' activity plots). `interval = 0` disables.
    pub fn enable_sampling(&mut self, interval: u64) {
        self.sample_interval = interval;
        self.samples.clear();
        self.sample_window = PerfWindow::new(self.perf());
    }

    /// The collected activity timeline.
    pub fn samples(&self) -> &[ActivitySample] {
        &self.samples
    }

    /// Fabric width in tiles.
    pub fn width(&self) -> usize {
        self.w
    }

    /// Fabric height in tiles.
    pub fn height(&self) -> usize {
        self.h
    }

    /// Elapsed cycles.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    #[inline]
    fn index(&self, x: usize, y: usize) -> usize {
        debug_assert!(x < self.w && y < self.h, "tile ({x},{y}) outside fabric");
        y * self.w + x
    }

    /// Immutable tile access.
    pub fn tile(&self, x: usize, y: usize) -> &Tile {
        &self.tiles[self.index(x, y)]
    }

    /// Mutable tile access (program loading). Marks the tile dirty: its
    /// routing masks and activity state are re-derived before the next
    /// step, so external mutation can never be skipped.
    pub fn tile_mut(&mut self, x: usize, y: usize) -> &mut Tile {
        let i = self.index(x, y);
        if !self.dirty[i] {
            self.dirty[i] = true;
            self.dirty_list.push(i);
        }
        &mut self.tiles[i]
    }

    /// Configures a route on tile `(x, y)`.
    pub fn set_route(&mut self, x: usize, y: usize, in_port: Port, color: Color, outs: &[Port]) {
        // Validate that no output points off the wafer, unless a matching
        // edge port has been declared ([`Fabric::open_edge`]).
        for &o in outs {
            if o == Port::Ramp {
                continue;
            }
            let (dx, dy) = o.delta();
            let (nx, ny) = (x as i64 + dx as i64, y as i64 + dy as i64);
            assert!(
                (nx >= 0 && ny >= 0 && nx < self.w as i64 && ny < self.h as i64)
                    || self.edge_port_declared(x, y, o, color),
                "route at ({x},{y}) port {o:?} points off the fabric"
            );
        }
        self.tile_mut(x, y).router.set_route(in_port, color, outs);
    }

    /// Declares a host-visible boundary I/O channel at tile `(x, y)`:
    /// `port` must point off the wafer. Once declared, routes may fan out
    /// through `port` on `color` — staged flits land in the channel's
    /// egress queue instead of holding forever, gated by host-granted
    /// credits ([`Fabric::set_edge_credits`], default 0 = hold) that are
    /// snapshotted at the start of phase 3 like every other admission
    /// check. The host collects egress with [`Fabric::drain_edge_out`]
    /// and injects inbound flits with [`Fabric::inject_edge`]. Egress
    /// queues live host-side: they do not keep the fabric busy, so
    /// [`Fabric::is_quiescent`] can report `true` with undrained egress.
    ///
    /// # Panics
    /// Panics if `port` is the ramp or points to an on-wafer neighbor, if
    /// `color` is out of range, or if the channel is already declared.
    pub fn open_edge(&mut self, x: usize, y: usize, port: Port, color: Color) {
        let i = self.index(x, y);
        assert!(port != Port::Ramp, "edge port must be cardinal");
        assert!((color as usize) < NUM_COLORS, "color {color} out of range");
        assert!(
            neighbor_of(self.w, self.h, i, port).is_none(),
            "edge port at ({x},{y}) {port:?} points to an on-wafer neighbor"
        );
        let id = self.edge_ports.len();
        let prev = self.edge_index.insert((i, port, color), id);
        assert!(prev.is_none(), "edge port at ({x},{y}) {port:?} color {color} already declared");
        self.edge_ports.push(EdgePort { x, y, port, color, credits: 0, queue: Vec::new() });
    }

    /// `true` when [`Fabric::open_edge`] has declared this channel.
    pub fn edge_port_declared(&self, x: usize, y: usize, port: Port, color: Color) -> bool {
        if x >= self.w || y >= self.h {
            return false;
        }
        self.edge_index.contains_key(&(y * self.w + x, port, color))
    }

    /// Every declared edge channel as `(x, y, port, color)`, in
    /// declaration order (ensemble runners use this to pair seams).
    pub fn edge_ports(&self) -> impl Iterator<Item = (usize, usize, Port, Color)> + '_ {
        self.edge_ports.iter().map(|e| (e.x, e.y, e.port, e.color))
    }

    /// Index of a declared edge channel, panicking with a useful message
    /// on an undeclared one.
    fn edge_id(&self, x: usize, y: usize, port: Port, color: Color) -> usize {
        let i = self.index(x, y);
        *self
            .edge_index
            .get(&(i, port, color))
            .unwrap_or_else(|| panic!("no edge port declared at ({x},{y}) {port:?} color {color}"))
    }

    /// Sets the egress admission budget for a declared edge channel: the
    /// fabric stages off-wafer flits into the channel while its queue
    /// holds fewer than `credits` flits (evaluated against the phase-3
    /// snapshot). The host models downstream capacity by adjusting this
    /// between steps.
    ///
    /// # Panics
    /// Panics if the channel is not declared.
    pub fn set_edge_credits(
        &mut self,
        x: usize,
        y: usize,
        port: Port,
        color: Color,
        credits: usize,
    ) {
        let e = self.edge_id(x, y, port, color);
        self.edge_ports[e].credits = credits;
    }

    /// Number of egress flits waiting in a declared edge channel.
    ///
    /// # Panics
    /// Panics if the channel is not declared.
    pub fn edge_out_len(&self, x: usize, y: usize, port: Port, color: Color) -> usize {
        self.edge_ports[self.edge_id(x, y, port, color)].queue.len()
    }

    /// Removes and returns all egress flits from a declared edge channel,
    /// in the order they were staged.
    ///
    /// # Panics
    /// Panics if the channel is not declared.
    pub fn drain_edge_out(&mut self, x: usize, y: usize, port: Port, color: Color) -> Vec<Flit> {
        let e = self.edge_id(x, y, port, color);
        std::mem::take(&mut self.edge_ports[e].queue)
    }

    /// Injects a host-carried flit into the fabric through a declared
    /// edge channel: it enters the router's `port` input queue exactly as
    /// a neighbor delivery would, subject to the same per-color queue
    /// space. Returns `false` (delivering nothing) when the queue is
    /// full — the host retries on a later cycle, which is precisely the
    /// credit backpressure an on-wafer sender would experience.
    ///
    /// # Panics
    /// Panics if the channel is not declared.
    pub fn inject_edge(
        &mut self,
        x: usize,
        y: usize,
        port: Port,
        color: Color,
        flit: Flit,
    ) -> bool {
        let _ = self.edge_id(x, y, port, color);
        let i = self.index(x, y);
        if self.tiles[i].router.space(port, color) == 0 {
            return false;
        }
        self.tiles[i].router.enqueue(port, color, flit);
        self.refresh_busy(i);
        self.mark_active(i);
        true
    }

    /// Space left in the router input queue a declared edge channel
    /// injects into — what an ideal (lockstep) host link grants the
    /// remote sender as next-cycle credit.
    ///
    /// # Panics
    /// Panics if the channel is not declared.
    pub fn edge_in_space(&self, x: usize, y: usize, port: Port, color: Color) -> usize {
        let _ = self.edge_id(x, y, port, color);
        self.tiles[self.index(x, y)].router.space(port, color)
    }

    /// Adds `i` to the active set (idempotent).
    fn mark_active(&mut self, i: usize) {
        if !self.active[i] {
            self.active[i] = true;
            self.active_list.push(i);
        }
    }

    /// Recomputes the busy flag for tile `i` from live state.
    fn refresh_busy(&mut self, i: usize) {
        let t = &self.tiles[i];
        let now = !t.core.is_quiescent() || t.router.queued() > 0;
        if now != self.busy[i] {
            self.busy[i] = now;
            if now {
                self.busy_count += 1;
            } else {
                self.busy_count -= 1;
            }
        }
    }

    /// Recomputes the arrival/ramp color masks for tile `i`.
    fn refresh_masks(&mut self, i: usize) {
        let mut ramp = 0u32;
        for (_, c, fanout) in self.tiles[i].router.routes() {
            if fanout.contains(&Port::Ramp) {
                ramp |= 1 << c;
            }
        }
        self.ramp_mask[i] = ramp;
        let mut arriving = 0u32;
        for q in CARDINAL {
            let Some(ni) = neighbor_of(self.w, self.h, i, q) else { continue };
            let toward = q.opposite().unwrap();
            for (_, c, fanout) in self.tiles[ni].router.routes() {
                if fanout.contains(&toward) {
                    arriving |= 1 << c;
                }
            }
        }
        self.in_mask[i] = arriving;
    }

    /// Refreshes masks for tile `i` and its neighbors (a route change on
    /// `i` alters what its neighbors can receive).
    fn refresh_masks_around(&mut self, i: usize) {
        self.refresh_masks(i);
        for q in CARDINAL {
            if let Some(ni) = neighbor_of(self.w, self.h, i, q) {
                self.refresh_masks(ni);
            }
        }
    }

    /// Re-derives masks, busy flags, and activity for every tile mutated
    /// through [`Fabric::tile_mut`] since the last step.
    fn flush_dirty(&mut self) {
        while let Some(i) = self.dirty_list.pop() {
            self.dirty[i] = false;
            self.refresh_masks_around(i);
            self.refresh_busy(i);
            self.mark_active(i);
        }
    }

    /// Settles every live tile's deferred idle debt up to the current
    /// cycle (killed tiles are frozen and accrue nothing).
    fn settle_all(&mut self) {
        let cycle = self.cycle;
        let Fabric { tiles, faults, accounted, .. } = self;
        let dead = faults.as_deref().map(|f| f.dead.as_slice());
        for (i, t) in tiles.iter_mut().enumerate() {
            if dead.is_some_and(|d| d[i]) {
                continue;
            }
            t.core.account_idle(cycle - accounted[i]);
            accounted[i] = cycle;
        }
    }

    /// Settles every live tile's deferred idle debt up to the current cycle.
    ///
    /// The activity-driven stepper defers per-tile idle accounting; any
    /// observer that reads per-core counters directly (checkpoint capture,
    /// external snapshots) must settle first, exactly as [`Fabric::arm_trace`]
    /// and [`Fabric::perf`] do internally. Idempotent and cheap when there is
    /// no outstanding debt.
    pub fn settle_idle(&mut self) {
        self.settle_all();
    }

    /// Rebuilds the busy flags and active list from a full scan (reference
    /// stepping and transient resets — paths where incremental maintenance
    /// was bypassed).
    fn rebuild_activity(&mut self) {
        self.flush_dirty();
        let Fabric { tiles, faults, busy, busy_count, active, active_list, .. } = self;
        let dead = faults.as_deref().map(|f| f.dead.as_slice());
        active_list.clear();
        *busy_count = 0;
        for (i, t) in tiles.iter().enumerate() {
            let b = !t.core.is_quiescent() || t.router.queued() > 0;
            busy[i] = b;
            if b {
                *busy_count += 1;
            }
            let keep = (b || t.core.has_pending_bound_data()) && !dead.is_some_and(|d| d[i]);
            active[i] = keep;
            if keep {
                active_list.push(i);
            }
        }
    }

    /// Applies every armed fault whose cycle has arrived. Affected tiles
    /// are conservatively re-activated so a fault landing on an idle tile
    /// is never silently skipped by the activity-driven stepper.
    fn apply_due_faults(&mut self) {
        let w = self.w;
        let cycle = self.cycle;
        let Fabric { tiles, faults, accounted, active, active_list, .. } = self;
        let Some(fs) = faults.as_deref_mut() else { return };
        let mut mark = |i: usize| {
            if !active[i] {
                active[i] = true;
                active_list.push(i);
            }
        };
        while fs.next < fs.events.len() && fs.events[fs.next].at_cycle <= cycle {
            let ev = fs.events[fs.next];
            fs.next += 1;
            match ev.kind {
                FaultKind::SramBitFlip { x, y, addr, bit } => {
                    let i = y * w + x;
                    tiles[i].mem.flip_bit(addr, bit);
                    mark(i);
                }
                FaultKind::TileKill { x, y } => {
                    let i = y * w + x;
                    if !fs.dead[i] {
                        // The tile idled up to now and freezes from here:
                        // settle its debt once, at the moment of death.
                        tiles[i].core.account_idle(cycle - accounted[i]);
                        accounted[i] = cycle;
                        fs.dead[i] = true;
                    }
                    mark(i);
                }
                FaultKind::StuckPort { x, y, port } => {
                    let i = y * w + x;
                    tiles[i].router.stick_port(port);
                    mark(i);
                }
                FaultKind::LinkCorrupt { x, y, port, bit } => {
                    fs.pending_links.push((y * w + x, port, Some(bit)));
                    mark(y * w + x);
                }
                FaultKind::LinkDrop { x, y, port } => {
                    fs.pending_links.push((y * w + x, port, None));
                    mark(y * w + x);
                }
                // Host-level kinds are rejected by `arm_faults`.
                host => unreachable!("{} cannot reach a single fabric", host.label()),
            }
            fs.log.applied.push(FaultRecord { cycle, kind: ev.kind });
        }
    }

    /// Advances the fabric one cycle.
    ///
    /// Semantically identical to [`Fabric::step_reference`] (the equivalence
    /// is enforced by tests), but iterates only the active set and reuses
    /// the fabric-owned scratch buffers.
    pub fn step(&mut self) {
        if self.force_reference {
            self.step_reference();
            return;
        }
        self.flush_dirty();
        // Phase 0: fault injection (no-op unless a plan is armed).
        if self.faults.is_some() {
            self.apply_due_faults();
        }
        let (w, h) = (self.w, self.h);
        let cycle = self.cycle;

        // Phases 1+2: active cores execute and inject (independent per
        // tile; parallel when the active set is large). Killed tiles
        // freeze: their cores stop stepping entirely. Skipped tiles are
        // provably quiescent; their idle accrues as deferred debt.
        let stepped: u64 = {
            let Fabric { tiles, accounted, active, active_list, faults, .. } = &mut *self;
            let dead: Option<&[bool]> = faults.as_deref().map(|f| f.dead.as_slice());
            if active_list.len() < PAR_TILE_THRESHOLD {
                let mut delta = 0u64;
                for &i in active_list.iter() {
                    if dead.is_some_and(|d| d[i]) {
                        continue;
                    }
                    delta += step_and_drain(&mut tiles[i], &mut accounted[i], cycle);
                }
                delta
            } else {
                let active: &[bool] = active;
                tiles
                    .par_iter_mut()
                    .zip(accounted.par_iter_mut())
                    .enumerate()
                    .map(|(i, (t, acc))| {
                        if !active[i] || dead.is_some_and(|d| d[i]) {
                            return 0;
                        }
                        step_and_drain(t, acc, cycle)
                    })
                    .sum()
            }
        };

        // Phase 3: routers with queued flits stage against a start-of-phase
        // snapshot of destination occupancy. Only rows the staging loop can
        // consult (per the in/ramp color masks) are snapshotted.
        let forwarded: u64 =
            {
                let Fabric {
                    tiles,
                    active_list,
                    faults,
                    scratch,
                    in_mask,
                    ramp_mask,
                    edge_ports,
                    edge_index,
                    ..
                } = &mut *self;
                let dead: Option<&[bool]> = faults.as_deref().map(|f| f.dead.as_slice());
                let StepScratch {
                    router_space,
                    ramp_space,
                    snap_flag,
                    snap_list,
                    staged,
                    stagers,
                    edge_room,
                    ..
                } = scratch;
                stagers.clear();
                for &i in active_list.iter() {
                    // A killed tile's router forwards nothing; arrivals pile
                    // up in its queues until backpressure stalls upstream.
                    if dead.is_some_and(|d| d[i]) {
                        continue;
                    }
                    if tiles[i].router.queued() > 0 {
                        stagers.push(i);
                    }
                }
                // Edge-channel admission snapshot: start-of-phase room, like
                // every on-wafer queue snapshot below.
                edge_room.clear();
                edge_room.extend(edge_ports.iter().map(|e| {
                    u8::try_from(e.credits.saturating_sub(e.queue.len())).unwrap_or(u8::MAX)
                }));
                let ei: &HashMap<(usize, Port, Color), usize> = edge_index;
                let er: &[u8] = edge_room;
                if stagers.len() < PAR_TILE_THRESHOLD {
                    // Sparse: snapshot each stager's own ramp row and its
                    // neighbors' arrival rows (deduped), then stage serially.
                    for &si in stagers.iter() {
                        let mut m = ramp_mask[si];
                        while m != 0 {
                            let c = m.trailing_zeros() as usize;
                            m &= m - 1;
                            ramp_space[si * NUM_COLORS + c] =
                                tiles[si].core.ramp_in_space(c as Color) as u8;
                        }
                        for q in CARDINAL {
                            let Some(ni) = neighbor_of(w, h, si, q) else { continue };
                            if snap_flag[ni] {
                                continue;
                            }
                            snap_flag[ni] = true;
                            snap_list.push(ni);
                            let mut m = in_mask[ni];
                            while m != 0 {
                                let c = m.trailing_zeros() as usize;
                                m &= m - 1;
                                for p in CARDINAL {
                                    router_space[(ni * 5 + p.index()) * NUM_COLORS + c] =
                                        tiles[ni].router.space(p, c as Color) as u8;
                                }
                            }
                        }
                    }
                    while let Some(ni) = snap_list.pop() {
                        snap_flag[ni] = false;
                    }
                    let (rs, ps): (&[u8], &[u8]) = (router_space, ramp_space);
                    let mut fwd = 0u64;
                    for &si in stagers.iter() {
                        let (x, y) = (si % w, si / w);
                        fwd += tiles[si].router.stage_into(
                            |out, color, already| {
                                accept(rs, ps, ei, er, w, h, si, x, y, out, color, already)
                            },
                            &mut staged[si],
                        ) as u64;
                    }
                    fwd
                } else {
                    // Dense: fill every tile's masked rows in parallel, then
                    // stage every non-empty router in parallel.
                    let (im, rm): (&[u32], &[u32]) = (in_mask, ramp_mask);
                    {
                        let tiles_ref: &[Tile] = tiles;
                        router_space
                            .par_chunks_mut(5 * NUM_COLORS)
                            .zip(ramp_space.par_chunks_mut(NUM_COLORS))
                            .enumerate()
                            .for_each(|(i, (rrow, prow))| {
                                let t = &tiles_ref[i];
                                let mut m = im[i];
                                while m != 0 {
                                    let c = m.trailing_zeros() as usize;
                                    m &= m - 1;
                                    for p in CARDINAL {
                                        rrow[p.index() * NUM_COLORS + c] =
                                            t.router.space(p, c as Color) as u8;
                                    }
                                }
                                let mut m = rm[i];
                                while m != 0 {
                                    let c = m.trailing_zeros() as usize;
                                    m &= m - 1;
                                    prow[c] = t.core.ramp_in_space(c as Color) as u8;
                                }
                            });
                    }
                    let (rs, ps): (&[u8], &[u8]) = (router_space, ramp_space);
                    tiles
                        .par_iter_mut()
                        .zip(staged.par_iter_mut())
                        .enumerate()
                        .map(|(i, (t, buf))| {
                            if dead.is_some_and(|d| d[i]) || t.router.queued() == 0 {
                                return 0u64;
                            }
                            let (x, y) = (i % w, i / w);
                            t.router.stage_into(
                                |out, color, already| {
                                    accept(rs, ps, ei, er, w, h, i, x, y, out, color, already)
                                },
                                buf,
                            ) as u64
                        })
                        .sum()
                }
            };
        self.progress += stepped + forwarded;

        // Phase 4: deliveries land (1 cycle/hop).
        {
            let Fabric { tiles, faults, scratch, edge_ports, edge_index, .. } = &mut *self;
            let StepScratch { staged, stagers, dest_flag, dest_list, .. } = scratch;
            // Armed one-shot link faults intercept flits in flight: the
            // first flit leaving the chosen (tile, port) is corrupted or
            // dropped. Scan in ascending tile order — the order the
            // reference delivery loop encounters flits.
            if let Some(fs) = faults.as_deref_mut() {
                if !fs.pending_links.is_empty() {
                    for (i, buf) in staged.iter_mut().enumerate() {
                        if buf.is_empty() {
                            continue;
                        }
                        let mut k = 0;
                        while k < buf.len() {
                            let hit = fs
                                .pending_links
                                .iter()
                                .position(|&(ti, p, _)| ti == i && p == buf[k].out);
                            match hit {
                                Some(j) => match fs.pending_links.swap_remove(j).2 {
                                    Some(bit) => {
                                        buf[k].flit.bits ^= 1 << bit;
                                        fs.log.corrupted_flits += 1;
                                        k += 1;
                                    }
                                    None => {
                                        fs.log.dropped_flits += 1;
                                        buf.remove(k); // the flit vanishes on the wire
                                    }
                                },
                                None => k += 1,
                            }
                        }
                        if fs.pending_links.is_empty() {
                            break;
                        }
                    }
                }
            }
            if stagers.len() < PAR_TILE_THRESHOLD {
                // Sparse: push each stager's flits to their destinations.
                // Each (dest, in-port, color) queue has exactly one source
                // tile, so cross-tile delivery order is immaterial.
                for &si in stagers.iter() {
                    let mut k = 0;
                    while k < staged[si].len() {
                        let s = staged[si][k];
                        k += 1;
                        let di = match s.out {
                            Port::Ramp => {
                                tiles[si].core.deliver(s.color, s.flit);
                                Some(si)
                            }
                            out => match neighbor_of(w, h, si, out) {
                                Some(ni) => {
                                    tiles[ni].router.enqueue(
                                        out.opposite().unwrap(),
                                        s.color,
                                        s.flit,
                                    );
                                    Some(ni)
                                }
                                None => {
                                    // Accepted off-wafer: land in the
                                    // declared channel's egress queue
                                    // (no on-wafer destination to wake).
                                    let e = edge_index[&(si, out, s.color)];
                                    edge_ports[e].queue.push(s.flit);
                                    None
                                }
                            },
                        };
                        if let Some(di) = di {
                            if !dest_flag[di] {
                                dest_flag[di] = true;
                                dest_list.push(di);
                            }
                        }
                    }
                    staged[si].clear();
                }
            } else {
                // Dense: every destination pulls from its neighbors'
                // staged buffers in parallel. No two threads touch the
                // same destination router, and each (in-port, color)
                // queue is filled from a single source buffer in staged
                // order — bit-identical to the serial push.
                for &si in stagers.iter() {
                    for s in staged[si].iter() {
                        let di = match s.out {
                            Port::Ramp => si,
                            out => match neighbor_of(w, h, si, out) {
                                Some(ni) => ni,
                                None => {
                                    // Off-wafer egress lands here, in this
                                    // serial pre-pass: the parallel pull
                                    // below only visits on-wafer pairs, so
                                    // edge flits would otherwise be lost.
                                    let e = edge_index[&(si, out, s.color)];
                                    edge_ports[e].queue.push(s.flit);
                                    continue;
                                }
                            },
                        };
                        if !dest_flag[di] {
                            dest_flag[di] = true;
                            dest_list.push(di);
                        }
                    }
                }
                let staged_ref: &[Vec<StagedFlit>] = staged;
                tiles.par_iter_mut().enumerate().for_each(|(di, t)| {
                    for q in CARDINAL {
                        let Some(ni) = neighbor_of(w, h, di, q) else { continue };
                        let from = &staged_ref[ni];
                        if from.is_empty() {
                            continue;
                        }
                        let back = q.opposite().unwrap();
                        for s in from {
                            if s.out == back {
                                t.router.enqueue(q, s.color, s.flit);
                            }
                        }
                    }
                    for s in &staged_ref[di] {
                        if s.out == Port::Ramp {
                            t.core.deliver(s.color, s.flit);
                        }
                    }
                });
                for &si in stagers.iter() {
                    staged[si].clear();
                }
            }
        }
        // Every delivery destination has queued work next cycle: wake it.
        while let Some(di) = self.scratch.dest_list.pop() {
            self.scratch.dest_flag[di] = false;
            self.mark_active(di);
        }

        self.cycle += 1;

        // End-of-step sweep: refresh busy flags for the tiles we touched
        // and retire the ones that can no longer change state on their own
        // (quiescent, empty router, no bound ramp-in data, or killed).
        let mut k = 0;
        while k < self.active_list.len() {
            let i = self.active_list[k];
            let (busy_now, keep) = {
                let t = &self.tiles[i];
                let b = !t.core.is_quiescent() || t.router.queued() > 0;
                (b, b || t.core.has_pending_bound_data())
            };
            if busy_now != self.busy[i] {
                self.busy[i] = busy_now;
                if busy_now {
                    self.busy_count += 1;
                } else {
                    self.busy_count -= 1;
                }
            }
            let dead = self.faults.as_deref().is_some_and(|f| f.dead[i]);
            if keep && !dead {
                k += 1;
            } else {
                self.active[i] = false;
                self.active_list.swap_remove(k);
            }
        }

        if self.sample_interval > 0 && self.cycle.is_multiple_of(self.sample_interval) {
            let d = self.sample_window.advance(self.perf());
            let window_cycles = self.sample_interval * self.tiles.len() as u64;
            self.samples.push(ActivitySample {
                cycle: self.cycle,
                core_utilization: d.busy_cycles as f64 / window_cycles as f64,
                flits_routed: d.flits_routed,
                flops: d.flops,
            });
        }
    }

    /// Routes all subsequent [`Fabric::step`] calls through the retained
    /// full-scan reference stepper (`true`) or the activity-driven stepper
    /// (`false`, the default). The two are cycle-for-cycle bit-identical;
    /// the switch exists for equivalence testing and benchmarking.
    pub fn use_reference_stepper(&mut self, on: bool) {
        self.force_reference = on;
    }

    /// Advances the fabric one cycle with the naive full-scan stepper: every
    /// tile is visited in every phase and the per-cycle buffers are freshly
    /// allocated. Retained as the executable specification the optimized
    /// [`Fabric::step`] is tested against.
    pub fn step_reference(&mut self) {
        self.flush_dirty();
        // Phase 0: fault injection (no-op unless a plan is armed).
        if self.faults.is_some() {
            self.apply_due_faults();
        }
        // The reference steps every core, so all deferred idle debt must be
        // settled first (it then stays settled, cycle by cycle).
        self.settle_all();
        let p0 = self.perf();
        let dead: Option<&[bool]> = self.faults.as_deref().map(|f| f.dead.as_slice());

        // Phase 1: cores execute (independent per tile — parallel). Killed
        // tiles freeze: their cores stop stepping entirely.
        match dead {
            None => self.tiles.par_iter_mut().for_each(|t| {
                let Tile { mem, core, .. } = t;
                core.step(mem);
            }),
            Some(dead) => self.tiles.par_iter_mut().enumerate().for_each(|(i, t)| {
                if dead[i] {
                    return;
                }
                let Tile { mem, core, .. } = t;
                core.step(mem);
            }),
        }

        // Phase 2: core injection moves into the router's ramp-input queues
        // (bounded by port bandwidth and queue space).
        for (i, t) in self.tiles.iter_mut().enumerate() {
            if dead.is_some_and(|d| d[i]) {
                continue;
            }
            // Respect the ramp queue's *minimum* color space conservatively:
            // drain one flit at a time, checking the target queue.
            let mut budget = PORT_BYTES_PER_CYCLE;
            let (core, router) = (&mut t.core, &mut t.router);
            while let Some((color, flit)) =
                core.pop_ramp_out_ready(budget, |c| router.space(Port::Ramp, c) > 0)
            {
                router.enqueue(Port::Ramp, color, flit);
                budget -= flit.bytes();
            }
        }

        // Phase 3: routers stage flits against a start-of-phase snapshot of
        // destination occupancy, then deliveries land (1 cycle/hop).
        let all_staged: Vec<(usize, Vec<StagedFlit>)>;
        {
            // Occupancy snapshots (immutable borrows end before staging).
            let router_space: Vec<[[usize; NUM_COLORS]; 5]> = self
                .tiles
                .iter()
                .map(|t| {
                    let mut s = [[0usize; NUM_COLORS]; 5];
                    for p in Port::ALL {
                        for (c, slot) in s[p.index()].iter_mut().enumerate() {
                            *slot = t.router.space(p, c as Color);
                        }
                    }
                    s
                })
                .collect();
            let ramp_space: Vec<[usize; NUM_COLORS]> = self
                .tiles
                .iter()
                .map(|t| {
                    let mut s = [0usize; NUM_COLORS];
                    for (c, slot) in s.iter_mut().enumerate() {
                        *slot = t.core.ramp_in_space(c as Color);
                    }
                    s
                })
                .collect();

            // Edge-channel admission snapshot (start-of-phase room).
            let edge_room: Vec<usize> =
                self.edge_ports.iter().map(|e| e.credits.saturating_sub(e.queue.len())).collect();
            let edge_index = &self.edge_index;

            let w = self.w;
            let h = self.h;
            all_staged = self
                .tiles
                .par_iter_mut()
                .enumerate()
                .map(|(i, t)| {
                    // A killed tile's router forwards nothing; arrivals pile
                    // up in its queues until backpressure stalls upstream.
                    if dead.is_some_and(|d| d[i]) {
                        return (i, Vec::new());
                    }
                    let (x, y) = (i % w, i / w);
                    let staged = t.router.stage(|out, color, already| {
                        match out {
                            Port::Ramp => already < ramp_space[i][color as usize],
                            _ => {
                                let (dx, dy) = out.delta();
                                let (nx, ny) = (x as i64 + dx as i64, y as i64 + dy as i64);
                                if nx < 0 || ny < 0 || nx >= w as i64 || ny >= h as i64 {
                                    // Off-wafer: declared edge channel with
                                    // credit, or hold forever.
                                    return match edge_index.get(&(i, out, color)) {
                                        Some(&e) => already < edge_room[e],
                                        None => false,
                                    };
                                }
                                let ni = ny as usize * w + nx as usize;
                                let in_port = out.opposite().unwrap();
                                already < router_space[ni][in_port.index()][color as usize]
                            }
                        }
                    });
                    (i, staged)
                })
                .collect();
        }

        // Phase 4: deliveries. Armed one-shot link faults intercept flits
        // in flight here: the first flit leaving the chosen (tile, port)
        // after the fault's cycle is corrupted or lost.
        let (w, h) = (self.w, self.h);
        let (tiles, faults) = (&mut self.tiles, &mut self.faults);
        let (edge_ports, edge_index) = (&mut self.edge_ports, &self.edge_index);
        let mut fs = faults.as_deref_mut();
        for (i, staged) in all_staged {
            for s in staged {
                let mut flit = s.flit;
                if let Some(fs) = fs.as_deref_mut() {
                    if !fs.pending_links.is_empty() {
                        if let Some(k) =
                            fs.pending_links.iter().position(|&(ti, p, _)| ti == i && p == s.out)
                        {
                            let (_, _, corrupt) = fs.pending_links.swap_remove(k);
                            match corrupt {
                                Some(bit) => {
                                    flit.bits ^= 1 << bit;
                                    fs.log.corrupted_flits += 1;
                                }
                                None => {
                                    fs.log.dropped_flits += 1;
                                    continue; // the flit vanishes on the wire
                                }
                            }
                        }
                    }
                }
                match s.out {
                    Port::Ramp => {
                        tiles[i].core.deliver(s.color, flit);
                    }
                    out => match neighbor_of(w, h, i, out) {
                        Some(ni) => {
                            let in_port = out.opposite().unwrap();
                            tiles[ni].router.enqueue(in_port, s.color, flit);
                        }
                        None => {
                            // Accepted off-wafer: the declared channel's
                            // host-visible egress queue.
                            let e = edge_index[&(i, out, s.color)];
                            edge_ports[e].queue.push(flit);
                        }
                    },
                }
            }
        }

        self.cycle += 1;
        // Every live core was just stepped through the previous cycle.
        {
            let cycle = self.cycle;
            let Fabric { accounted, faults, .. } = &mut *self;
            let dead = faults.as_deref().map(|f| f.dead.as_slice());
            for (i, a) in accounted.iter_mut().enumerate() {
                if !dead.is_some_and(|d| d[i]) {
                    *a = cycle;
                }
            }
        }
        self.rebuild_activity();
        let p1 = self.perf();
        self.progress += (p1.busy_cycles - p0.busy_cycles)
            + (p1.ctrl_stmts - p0.ctrl_stmts)
            + (p1.flits_routed - p0.flits_routed);

        if self.sample_interval > 0 && self.cycle.is_multiple_of(self.sample_interval) {
            let d = self.sample_window.advance(self.perf());
            let window_cycles = self.sample_interval * self.tiles.len() as u64;
            self.samples.push(ActivitySample {
                cycle: self.cycle,
                core_utilization: d.busy_cycles as f64 / window_cycles as f64,
                flits_routed: d.flits_routed,
                flops: d.flops,
            });
        }
    }

    /// `true` when every core is quiescent and every queue is empty. An
    /// O(1) counter read (adjusted for externally mutated tiles awaiting
    /// their pre-step refresh) instead of a full-fabric scan.
    pub fn is_quiescent(&self) -> bool {
        let mut busy = self.busy_count;
        for &i in &self.dirty_list {
            let t = &self.tiles[i];
            if !t.core.is_quiescent() || t.router.queued() > 0 {
                return false;
            }
            if self.busy[i] {
                busy -= 1;
            }
        }
        let quiet = busy == 0;
        #[cfg(debug_assertions)]
        {
            let full = self.tiles.iter().all(|t| t.core.is_quiescent() && t.router.queued() == 0);
            debug_assert_eq!(quiet, full, "activity-set quiescence diverged from a full scan");
        }
        quiet
    }

    /// Steps until quiescent, returning the number of cycles elapsed since
    /// the call began.
    ///
    /// # Errors
    /// Returns [`Stalled`] with per-tile diagnostics if `max_cycles` pass
    /// without quiescence (deadlock or unfinished stream).
    pub fn run_until_quiescent(&mut self, max_cycles: u64) -> Result<u64, Stalled> {
        let start = self.cycle;
        while !self.is_quiescent() {
            if self.cycle - start >= max_cycles {
                return Err(Stalled { cycle: self.cycle, diagnostics: self.diagnose() });
            }
            self.step();
        }
        Ok(self.cycle - start)
    }

    /// Steps until quiescent under a stall watchdog.
    ///
    /// Unlike [`Fabric::run_until_quiescent`] — which spins until its full
    /// cycle budget expires — this detects deadlock early: if
    /// `stall_window` consecutive cycles pass with zero progress (no
    /// datapath issue, no control statement retired, no flit forwarded
    /// anywhere) while work remains, it stops and names the wedged tiles.
    /// The simulator is deterministic and closed, so a zero-progress window
    /// is a proven permanent deadlock; `stall_window` only bounds how long
    /// detection takes, and anything comfortably above the deepest
    /// backpressure chain (a few hundred cycles) is safe.
    ///
    /// # Errors
    /// Returns a [`StallReport`] on a zero-progress window, or with
    /// `deadline_exceeded` set if `max_cycles` elapse first.
    ///
    /// # Panics
    /// Panics if `stall_window` is zero.
    pub fn run_watched(
        &mut self,
        max_cycles: u64,
        stall_window: u64,
    ) -> Result<u64, Box<StallReport>> {
        assert!(stall_window > 0, "stall window must be nonzero");
        let start = self.cycle;
        // The watchdog reads the incrementally maintained progress counter:
        // anything a cycle can accomplish — a datapath issue, a retired
        // control statement, a forwarded flit — advances it. This replaces
        // the old full-perf-rescan PerfWindow with an O(1) comparison.
        let mut last_progress = self.progress;
        let mut window_start = self.cycle;
        while !self.is_quiescent() {
            if self.cycle - start >= max_cycles {
                return Err(Box::new(self.stall_report(self.cycle - window_start, true)));
            }
            self.step();
            if self.progress != last_progress {
                last_progress = self.progress;
                window_start = self.cycle;
            } else if self.cycle - window_start >= stall_window {
                return Err(Box::new(self.stall_report(self.cycle - window_start, false)));
            }
        }
        Ok(self.cycle - start)
    }

    /// Monotone progress counter (busy cycles, retired control statements,
    /// forwarded flits) — what the stall watchdog reads. Ensemble runners
    /// sum it across fabrics for a cross-wafer watchdog.
    pub fn progress(&self) -> u64 {
        self.progress
    }

    /// Advances the clock `cycles` without stepping: host-modeled dead
    /// time (e.g. off-wafer interconnect latency, or equalizing ensemble
    /// clocks after independent per-wafer phases) during which the fabric
    /// is provably idle. The span is billed as idle through the usual
    /// deferred-idle accounting.
    ///
    /// # Panics
    /// Panics if the fabric is not quiescent.
    pub fn advance_idle(&mut self, cycles: u64) {
        assert!(self.is_quiescent(), "advance_idle requires a quiescent fabric");
        self.cycle += cycles;
    }

    /// Builds the structured stall diagnosis for [`Fabric::run_watched`]
    /// (public so ensemble runners can merge per-wafer reports).
    pub fn stall_report(&self, window: u64, deadline_exceeded: bool) -> StallReport {
        let mut stalled = Vec::new();
        let mut total = 0;
        for y in 0..self.h {
            for x in 0..self.w {
                let t = self.tile(x, y);
                if t.core.is_quiescent() && t.router.queued() == 0 {
                    continue;
                }
                total += 1;
                if stalled.len() < StallReport::MAX_TILES {
                    stalled.push(StalledTile {
                        x,
                        y,
                        task: t.core.current_task_name(),
                        router_queued: t.router.queued(),
                        ramp_in: t.core.ramp_in_residue(),
                        ramp_out: t.core.ramp_out_len(),
                        active_threads: t.core.active_threads(),
                    });
                }
            }
        }
        StallReport { cycle: self.cycle, window, deadline_exceeded, stalled, total_stalled: total }
    }

    /// Clears all transient execution state fabric-wide — running tasks,
    /// background threads, ramp and router queues, FIFO contents — and
    /// rewinds task scheduling flags and DSR cursors to their declared
    /// start states (see [`Core::reset_transient`]). Loaded programs,
    /// routes, memory contents, registers, perf counters, the cycle
    /// counter, and armed fault and trace state are retained — in
    /// particular, trace timestamps stay monotone across a rollback.
    ///
    /// This is the fabric half of checkpoint rollback: it discards
    /// whatever a fault left in flight so a restored Krylov state replays
    /// from a clean, quiescent machine.
    pub fn reset_transient(&mut self) {
        // Settle idle debt before wiping: the skipped cycles happened.
        self.settle_all();
        for t in &mut self.tiles {
            t.core.reset_transient();
            t.router.clear_queues();
        }
        // In-flight edge egress is transient too; host-granted credits are
        // configuration and survive, like routes.
        for e in &mut self.edge_ports {
            e.queue.clear();
        }
        if let Some(fs) = self.faults.as_deref_mut() {
            fs.pending_links.clear();
        }
        self.rebuild_activity();
    }

    /// Describes which tiles are still busy (deadlock debugging).
    pub fn diagnose(&self) -> String {
        let mut out = String::new();
        let mut shown = 0;
        for y in 0..self.h {
            for x in 0..self.w {
                let t = self.tile(x, y);
                let busy_core = !t.core.is_quiescent();
                let busy_router = t.router.queued() > 0;
                if busy_core || busy_router {
                    if shown < 12 {
                        out.push_str(&format!(
                            "tile({x},{y}): core_busy={busy_core} router_queued={} ramp_out={} ramp_in_residue={}; ",
                            t.router.queued(),
                            t.core.ramp_out_len(),
                            t.core.ramp_in_residue(),
                        ));
                    }
                    shown += 1;
                }
            }
        }
        if shown > 12 {
            out.push_str(&format!("... and {} more tiles", shown - 12));
        }
        if out.is_empty() {
            out.push_str("nothing busy (already quiescent)");
        }
        out
    }

    /// Aggregates performance counters over all tiles. Idle time deferred
    /// for skipped quiescent tiles is added back virtually, so the totals
    /// are always identical to full-scan stepping.
    pub fn perf(&self) -> FabricPerf {
        let mut p = FabricPerf::default();
        let dead = self.faults.as_deref().map(|f| f.dead.as_slice());
        for (i, t) in self.tiles.iter().enumerate() {
            p.flops_f16 += t.core.perf.flops_f16;
            p.flops_f32 += t.core.perf.flops_f32;
            p.busy_cycles += t.core.perf.busy_cycles;
            p.idle_cycles += t.core.perf.idle_cycles;
            p.flits_routed += t.router.flits_routed;
            p.ctrl_stmts += t.core.perf.ctrl_stmts;
            if !dead.is_some_and(|d| d[i]) {
                p.idle_cycles += self.cycle - self.accounted[i];
            }
            for (slot, bp) in p.backpressure.iter_mut().zip(t.router.backpressure) {
                *slot += bp;
            }
        }
        p
    }
}

impl Tile {}

/// A rectangular tile region of a fabric — the unit of multi-tenant
/// partitioning. Tenant programs are built region-relative (routing is
/// per-tile and therefore translation-invariant), so the same compiled
/// program image can be placed at any origin whose region fits the fabric.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Region {
    /// Leftmost tile column.
    pub x: usize,
    /// Topmost tile row.
    pub y: usize,
    /// Width in tiles.
    pub w: usize,
    /// Height in tiles.
    pub h: usize,
}

impl Region {
    /// Creates a region; extents must be nonzero.
    ///
    /// # Panics
    /// Panics if either extent is zero.
    pub fn new(x: usize, y: usize, w: usize, h: usize) -> Region {
        assert!(w > 0 && h > 0, "region extents must be nonzero");
        Region { x, y, w, h }
    }

    /// Number of tiles in the region.
    pub fn area(&self) -> usize {
        self.w * self.h
    }

    /// `true` if absolute tile `(x, y)` lies inside the region.
    pub fn contains(&self, x: usize, y: usize) -> bool {
        x >= self.x && x < self.x + self.w && y >= self.y && y < self.y + self.h
    }

    /// `true` if the two regions share at least one tile.
    pub fn overlaps(&self, other: &Region) -> bool {
        self.x < other.x + other.w
            && other.x < self.x + self.w
            && self.y < other.y + other.h
            && other.y < self.y + self.h
    }

    /// `true` if a `w × h` program shape fits inside this region.
    pub fn fits(&self, w: usize, h: usize) -> bool {
        w <= self.w && h <= self.h
    }
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}@({},{})", self.w, self.h, self.x, self.y)
    }
}

/// A read-only view of one region of a fabric: region-relative tile access
/// plus the SRAM accounting the admission-control capacity checks read.
pub struct RegionView<'a> {
    fabric: &'a Fabric,
    region: Region,
}

impl RegionView<'_> {
    /// The viewed region.
    pub fn region(&self) -> Region {
        self.region
    }

    /// Tile at *region-relative* coordinates `(rx, ry)`.
    ///
    /// # Panics
    /// Panics if the coordinates fall outside the region.
    pub fn tile(&self, rx: usize, ry: usize) -> &Tile {
        assert!(rx < self.region.w && ry < self.region.h, "tile ({rx},{ry}) outside region");
        self.fabric.tile(self.region.x + rx, self.region.y + ry)
    }

    /// Largest per-tile SRAM allocation in the region, in bytes — the
    /// number admission control compares against [`crate::TILE_SRAM_BYTES`].
    pub fn sram_used_max(&self) -> u32 {
        let mut max = 0;
        for ry in 0..self.region.h {
            for rx in 0..self.region.w {
                max = max.max(self.tile(rx, ry).mem.used());
            }
        }
        max
    }

    /// Total SRAM allocated across the region, in bytes (the payload a
    /// program load must move over the host interface).
    pub fn sram_used_total(&self) -> u64 {
        let mut total = 0u64;
        for ry in 0..self.region.h {
            for rx in 0..self.region.w {
                total += u64::from(self.tile(rx, ry).mem.used());
            }
        }
        total
    }

    /// `true` when every tile in the region is individually quiescent
    /// (core idle and router empty) — the precondition for replacing the
    /// resident program.
    pub fn is_quiescent(&self) -> bool {
        for ry in 0..self.region.h {
            for rx in 0..self.region.w {
                let t = self.tile(rx, ry);
                if !t.core.is_quiescent() || t.router.queued() > 0 {
                    return false;
                }
            }
        }
        true
    }
}

impl Fabric {
    /// Asserts `region` lies inside the fabric.
    fn check_region(&self, region: Region) {
        assert!(
            region.x + region.w <= self.w && region.y + region.h <= self.h,
            "region {region} outside {}x{} fabric",
            self.w,
            self.h
        );
    }

    /// A read-only [`RegionView`] of `region`.
    ///
    /// # Panics
    /// Panics if the region reaches outside the fabric.
    pub fn region(&self, region: Region) -> RegionView<'_> {
        self.check_region(region);
        RegionView { fabric: self, region }
    }

    /// Clones the tiles of `region` into a fresh region-sized fabric
    /// (origin shifted to `(0, 0)`).
    ///
    /// Because routing state is per-tile, the extract is exactly the
    /// program a region-sized fabric would hold — which makes it the
    /// region-scoped lint entry's input: a route that escapes the region
    /// surfaces as an off-fabric/dangling diagnostic on the extract.
    /// Declared edge channels are *not* carried over (tenant programs are
    /// required to be self-contained).
    ///
    /// # Panics
    /// Panics if the region reaches outside the fabric.
    pub fn extract_region(&self, region: Region) -> Fabric {
        self.check_region(region);
        let mut out = Fabric::new(region.w, region.h);
        for ry in 0..region.h {
            for rx in 0..region.w {
                *out.tile_mut(rx, ry) = self.tile(region.x + rx, region.y + ry).clone();
            }
        }
        out
    }

    /// Copies a region-sized `template` fabric's tiles into `region`,
    /// replacing whatever program was resident there — the warm path of
    /// the compiled-program cache. Tiles are handed out via
    /// [`Fabric::tile_mut`], so activity masks are re-derived before the
    /// next step.
    ///
    /// # Panics
    /// Panics if the region reaches outside the fabric or the template's
    /// dimensions differ from the region's.
    pub fn blit_region(&mut self, region: Region, template: &Fabric) {
        self.check_region(region);
        assert_eq!(
            (template.width(), template.height()),
            (region.w, region.h),
            "template shape does not match region {region}"
        );
        debug_assert!(template.is_quiescent(), "program template must be quiescent");
        for ry in 0..region.h {
            for rx in 0..region.w {
                *self.tile_mut(region.x + rx, region.y + ry) = template.tile(rx, ry).clone();
            }
        }
        // Under an armed trace the blit just replaced whole cores, whose
        // clones carry the template's (unarmed, zeroed) trace and perf
        // state. Re-arm them at the current cycle and rebase their counter
        // baselines so the window stays consistent — otherwise take_trace
        // would find unarmed cores and underflowing deltas.
        if self.trace.is_some() {
            let cycle = self.cycle;
            let cap = self.trace.as_deref().expect("armed").ring_capacity;
            for ry in 0..region.h {
                for rx in 0..region.w {
                    let i = self.index(region.x + rx, region.y + ry);
                    let t = &mut self.tiles[i];
                    t.core.arm_trace(cycle, cap);
                    let base = (
                        t.core.perf.busy_cycles,
                        t.core.perf.idle_cycles,
                        t.router.flits_routed,
                        t.router.backpressure,
                    );
                    self.trace.as_deref_mut().expect("armed").base[i] = base;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsr::mk;
    use crate::instr::{Op, Stmt, Task, TensorInstr};
    use crate::types::Dtype;
    use wse_float::F16;

    /// Two tiles: (0,0) sends three fp16 values east on color 1; (1,0)
    /// receives and stores them.
    #[test]
    fn point_to_point_transfer() {
        let mut f = Fabric::new(2, 1);
        // Route: sender ramp -> East; receiver West -> Ramp.
        f.set_route(0, 0, Port::Ramp, 1, &[Port::East]);
        f.set_route(1, 0, Port::West, 1, &[Port::Ramp]);

        // Sender program.
        {
            let t = f.tile_mut(0, 0);
            let data: Vec<F16> = [1.0, 2.0, 3.0].iter().map(|&v| F16::from_f64(v)).collect();
            let addr = t.mem.alloc_vec(3, Dtype::F16).unwrap();
            t.mem.store_f16_slice(addr, &data);
            let dsrc = t.core.add_dsr(mk::tensor16(addr, 3));
            let dtx = t.core.add_dsr(mk::tx16(1, 3));
            let task = t.core.add_task(Task::new(
                "send",
                vec![Stmt::Exec(TensorInstr {
                    op: Op::Copy,
                    dst: Some(dtx),
                    a: Some(dsrc),
                    b: None,
                })],
            ));
            t.core.activate(task);
        }
        // Receiver program.
        let raddr;
        {
            let t = f.tile_mut(1, 0);
            raddr = t.mem.alloc_vec(3, Dtype::F16).unwrap();
            let drx = t.core.add_dsr(mk::rx16(1, 3));
            let ddst = t.core.add_dsr(mk::tensor16(raddr, 3));
            let task = t.core.add_task(Task::new(
                "recv",
                vec![Stmt::Exec(TensorInstr {
                    op: Op::Copy,
                    dst: Some(ddst),
                    a: Some(drx),
                    b: None,
                })],
            ));
            t.core.activate(task);
        }

        let cycles = f.run_until_quiescent(1000).expect("must quiesce");
        assert!(cycles > 0 && cycles < 50, "cycles = {cycles}");
        let got = f.tile(1, 0).mem.load_f16_slice(raddr, 3);
        assert_eq!(got.iter().map(|v| v.to_f64()).collect::<Vec<_>>(), vec![1.0, 2.0, 3.0]);
        assert_eq!(f.perf().flits_routed, 6, "3 flits through 2 routers");
    }

    /// A flit crossing k hops takes ~k cycles (single-cycle per hop).
    #[test]
    fn hop_latency_is_about_one_cycle() {
        let n = 12;
        let mut f = Fabric::new(n, 1);
        // Pass-through routes on color 0, west→east.
        f.set_route(0, 0, Port::Ramp, 0, &[Port::East]);
        for x in 1..n - 1 {
            f.set_route(x, 0, Port::West, 0, &[Port::East]);
        }
        f.set_route(n - 1, 0, Port::West, 0, &[Port::Ramp]);

        {
            let t = f.tile_mut(0, 0);
            let addr = t.mem.alloc_vec(1, Dtype::F16).unwrap();
            t.mem.store_f16_slice(addr, &[F16::from_f64(9.0)]);
            let dsrc = t.core.add_dsr(mk::tensor16(addr, 1));
            let dtx = t.core.add_dsr(mk::tx16(0, 1));
            let task = t.core.add_task(Task::new(
                "send",
                vec![Stmt::Exec(TensorInstr {
                    op: Op::Copy,
                    dst: Some(dtx),
                    a: Some(dsrc),
                    b: None,
                })],
            ));
            t.core.activate(task);
        }
        {
            let t = f.tile_mut(n - 1, 0);
            let drx = t.core.add_dsr(mk::rx16(0, 1));
            let task = t.core.add_task(Task::new(
                "recv",
                vec![Stmt::Exec(TensorInstr {
                    op: Op::LoadReg { reg: 0 },
                    dst: None,
                    a: Some(drx),
                    b: None,
                })],
            ));
            t.core.activate(task);
        }
        let cycles = f.run_until_quiescent(1000).unwrap();
        assert_eq!(f.tile(n - 1, 0).core.regs[0], 9.0);
        // n-1 hops plus a few cycles of launch/ramp overhead.
        assert!(
            cycles as usize >= n - 1 && (cycles as usize) < n + 12,
            "expected ~{} cycles, got {cycles}",
            n - 1
        );
    }

    /// Fanout: one sender broadcasts to all four neighbors simultaneously.
    #[test]
    fn broadcast_to_four_neighbors() {
        let mut f = Fabric::new(3, 3);
        f.set_route(1, 1, Port::Ramp, 2, &[Port::North, Port::South, Port::East, Port::West]);
        for (x, y, port) in [
            (1usize, 0usize, Port::South),
            (1, 2, Port::North),
            (2, 1, Port::West),
            (0, 1, Port::East),
        ] {
            f.set_route(x, y, port, 2, &[Port::Ramp]);
            let t = f.tile_mut(x, y);
            let drx = t.core.add_dsr(mk::rx16(2, 1));
            let task = t.core.add_task(Task::new(
                "recv",
                vec![Stmt::Exec(TensorInstr {
                    op: Op::LoadReg { reg: 5 },
                    dst: None,
                    a: Some(drx),
                    b: None,
                })],
            ));
            t.core.activate(task);
        }
        {
            let t = f.tile_mut(1, 1);
            let addr = t.mem.alloc_vec(1, Dtype::F16).unwrap();
            t.mem.store_f16_slice(addr, &[F16::from_f64(4.0)]);
            let dsrc = t.core.add_dsr(mk::tensor16(addr, 1));
            let dtx = t.core.add_dsr(mk::tx16(2, 1));
            let task = t.core.add_task(Task::new(
                "send",
                vec![Stmt::Exec(TensorInstr {
                    op: Op::Copy,
                    dst: Some(dtx),
                    a: Some(dsrc),
                    b: None,
                })],
            ));
            t.core.activate(task);
        }
        f.run_until_quiescent(100).unwrap();
        for (x, y) in [(1, 0), (1, 2), (2, 1), (0, 1)] {
            assert_eq!(f.tile(x, y).core.regs[5], 4.0, "neighbor ({x},{y})");
        }
    }

    #[test]
    fn stalled_reports_diagnostics() {
        let mut f = Fabric::new(2, 1);
        // Receiver waits for data that never comes.
        let t = f.tile_mut(1, 0);
        let drx = t.core.add_dsr(mk::rx16(0, 1));
        let task = t.core.add_task(Task::new(
            "recv",
            vec![Stmt::Exec(TensorInstr {
                op: Op::LoadReg { reg: 0 },
                dst: None,
                a: Some(drx),
                b: None,
            })],
        ));
        t.core.activate(task);
        let err = f.run_until_quiescent(50).unwrap_err();
        assert!(err.diagnostics.contains("tile(1,0)"), "{}", err.diagnostics);
    }

    #[test]
    fn sampling_records_activity() {
        let mut f = Fabric::new(2, 1);
        f.set_route(0, 0, Port::Ramp, 1, &[Port::East]);
        f.set_route(1, 0, Port::West, 1, &[Port::Ramp]);
        f.enable_sampling(4);
        {
            let t = f.tile_mut(0, 0);
            let data: Vec<F16> = (0..32).map(|i| F16::from_f64(i as f64 * 0.125)).collect();
            let addr = t.mem.alloc_vec(32, Dtype::F16).unwrap();
            t.mem.store_f16_slice(addr, &data);
            let dsrc = t.core.add_dsr(mk::tensor16(addr, 32));
            let dtx = t.core.add_dsr(mk::tx16(1, 32));
            let task = t.core.add_task(Task::new(
                "send",
                vec![Stmt::Exec(TensorInstr {
                    op: Op::Copy,
                    dst: Some(dtx),
                    a: Some(dsrc),
                    b: None,
                })],
            ));
            t.core.activate(task);
        }
        {
            let t = f.tile_mut(1, 0);
            let addr = t.mem.alloc_vec(32, Dtype::F16).unwrap();
            let drx = t.core.add_dsr(mk::rx16(1, 32));
            let ddst = t.core.add_dsr(mk::tensor16(addr, 32));
            let task = t.core.add_task(Task::new(
                "recv",
                vec![Stmt::Exec(TensorInstr {
                    op: Op::Copy,
                    dst: Some(ddst),
                    a: Some(drx),
                    b: None,
                })],
            ));
            t.core.activate(task);
        }
        f.run_until_quiescent(500).unwrap();
        let samples = f.samples();
        assert!(!samples.is_empty(), "samples must accumulate");
        assert!(samples.iter().any(|s| s.core_utilization > 0.0));
        assert!(samples.iter().any(|s| s.flits_routed > 0));
        let total_flits: u64 = samples.iter().map(|s| s.flits_routed).sum();
        assert!(total_flits <= f.perf().flits_routed);
        // Cycles are strictly increasing multiples of the interval.
        for w in samples.windows(2) {
            assert_eq!(w[1].cycle - w[0].cycle, 4);
        }
    }

    #[test]
    fn trace_collects_events_phases_and_stalls() {
        use crate::instr::OpClass;
        use crate::trace::{StallCause, TraceConfig, TraceEventKind};
        let (mut f, _) = sender_receiver(8);
        f.arm_trace(TraceConfig::default());
        assert!(f.trace_armed());
        f.phase_begin("stream");
        f.run_until_quiescent(1_000).unwrap();
        f.phase_end();
        f.phase_marker("checkpoint");
        let tr = f.take_trace().expect("trace was armed");
        assert!(!f.trace_armed(), "take_trace disarms");
        assert_eq!((tr.w, tr.h), (2, 1));
        assert_eq!(tr.start_cycle, 0);
        assert_eq!(tr.end_cycle, f.cycle());
        // Phases: one closed span plus the marker.
        assert_eq!(tr.phases.len(), 2);
        assert_eq!(tr.phases[0].name, "stream");
        assert!(tr.phases[0].cycles() > 0);
        assert!(tr.phases[1].is_marker());
        // Both tiles saw exactly one task start/end pair, with monotone
        // in-window stamps.
        for tile in &tr.tiles {
            let evs = &tile.events;
            assert_eq!(evs.len(), 2, "start+end on tile ({},{})", tile.x, tile.y);
            assert!(matches!(evs[0].kind, TraceEventKind::TaskStart { .. }));
            assert!(matches!(evs[1].kind, TraceEventKind::TaskEnd { .. }));
            assert!(evs[0].cycle <= evs[1].cycle);
            assert!(evs[1].cycle <= tr.end_cycle);
            assert_eq!(tile.dropped_events, 0);
        }
        // The copy streams retire as Move-class instructions.
        assert_eq!(tr.retire_totals()[OpClass::Move.index()], 2);
        // The receiver waited on fabric data at least once while the first
        // flits crossed the link.
        let recv = tr.tile(1, 0);
        assert!(recv.stall[StallCause::FifoWait.index()] > 0, "stalls: {:?}", recv.stall);
        // Stall attribution covers every idle cycle on every tile.
        for tile in &tr.tiles {
            assert_eq!(
                tile.stall.iter().sum::<u64>(),
                tile.idle_cycles,
                "tile ({},{})",
                tile.x,
                tile.y
            );
        }
        // Bank conflicts are unmodeled: always zero.
        assert_eq!(tr.stall_totals()[StallCause::BankConflict.index()], 0);
    }

    #[test]
    fn disarmed_trace_hooks_are_inert_and_deterministic() {
        // Phase calls are no-ops when disarmed, and an armed run must not
        // perturb simulated timing: cycle-for-cycle identical to disarmed.
        let (mut a, _) = sender_receiver(16);
        a.phase_begin("ignored");
        a.phase_end();
        let cycles_a = a.run_until_quiescent(1_000).unwrap();
        assert!(a.take_trace().is_none());

        let (mut b, _) = sender_receiver(16);
        b.arm_trace(TraceConfig { ring_capacity: 64 });
        let cycles_b = b.run_until_quiescent(1_000).unwrap();
        assert_eq!(cycles_a, cycles_b, "tracing must not change simulated time");
        let pa = a.perf();
        let pb = b.perf();
        assert_eq!(pa.busy_cycles, pb.busy_cycles);
        assert_eq!(pa.flits_routed, pb.flits_routed);
    }

    #[test]
    fn sanitizer_is_inert_and_clean_on_ordered_program() {
        // An armed sanitizer must not perturb simulated timing, and a
        // properly synchronized stream must produce zero race trips while
        // still observing the receiver's channel waits.
        let (mut a, _) = sender_receiver(16);
        let cycles_a = a.run_until_quiescent(1_000).unwrap();
        assert!(a.take_sanitizer().is_none(), "disarmed take returns None");

        let (mut b, _) = sender_receiver(16);
        b.arm_sanitizer();
        assert!(b.sanitizer_armed());
        let cycles_b = b.run_until_quiescent(1_000).unwrap();
        assert_eq!(cycles_a, cycles_b, "sanitizing must not change simulated time");
        let pa = a.perf();
        let pb = b.perf();
        assert_eq!(pa.busy_cycles, pb.busy_cycles);
        assert_eq!(pa.flits_routed, pb.flits_routed);
        let rep = b.take_sanitizer().expect("sanitizer was armed");
        assert!(!b.sanitizer_armed(), "take_sanitizer disarms");
        assert!(rep.is_clean(), "ordered stream tripped: {rep}");
        assert_eq!(rep.cycles, cycles_b);
        // The receiver stalled on color 1 at least once while the first
        // flits crossed the link; the shadow channel-wait saw it.
        let recv = &rep.tiles[1];
        assert!(recv.chan_wait[1] > 0, "receiver never waited on color 1");
        assert!(rep.longest_channel_wait().is_some());
    }

    #[test]
    fn sanitizer_trips_on_unordered_overlapping_writes() {
        // Main launches a background copy into `buf` and immediately
        // overwrites the same buffer synchronously, with no completion
        // ordering between them — the defining data race.
        use crate::dsr::mk;
        use crate::instr::{Op, Stmt, Task, TensorInstr};
        let mut f = Fabric::new(1, 1);
        {
            let t = f.tile_mut(0, 0);
            let buf = t.mem.alloc_vec(16, Dtype::F16).unwrap();
            let src_a = t.mem.alloc_vec(16, Dtype::F16).unwrap();
            let src_b = t.mem.alloc_vec(16, Dtype::F16).unwrap();
            let d_buf1 = t.core.add_dsr(mk::tensor16(buf, 16));
            let d_buf2 = t.core.add_dsr(mk::tensor16(buf, 16));
            let d_a = t.core.add_dsr(mk::tensor16(src_a, 16));
            let d_b = t.core.add_dsr(mk::tensor16(src_b, 16));
            let task = t.core.add_task(Task::new(
                "racy",
                vec![
                    Stmt::Launch {
                        slot: 0,
                        instr: TensorInstr {
                            op: Op::Copy,
                            dst: Some(d_buf1),
                            a: Some(d_a),
                            b: None,
                        },
                        on_complete: None,
                    },
                    Stmt::Exec(TensorInstr {
                        op: Op::Copy,
                        dst: Some(d_buf2),
                        a: Some(d_b),
                        b: None,
                    }),
                ],
            ));
            t.core.activate(task);
        }
        f.arm_sanitizer();
        f.run_until_quiescent(1_000).unwrap();
        let rep = f.take_sanitizer().unwrap();
        assert!(!rep.is_clean(), "unordered overlapping writes must trip");
        let tile = &rep.tiles[0];
        assert!(tile.total_trips > 0);
        assert!(!tile.trips.is_empty());
        // Both contexts wrote the same bytes; whichever access came second
        // names the other as prior.
        let trip = tile.trips[0];
        assert!(trip.ctx != trip.prior_ctx);
    }

    #[test]
    fn trace_window_baselines_exclude_pre_arm_work() {
        // Run one stream untraced, then arm and run a second: the trace
        // window must only account the second stream's work.
        let (mut f, _) = sender_receiver(8);
        f.run_until_quiescent(1_000).unwrap();
        let busy_before: u64 = f.perf().busy_cycles;
        assert!(busy_before > 0);
        f.arm_trace(TraceConfig::default());
        let armed_at = f.cycle();
        for _ in 0..10 {
            f.step(); // idle cycles only: nothing active
        }
        let tr = f.take_trace().unwrap();
        assert_eq!(tr.start_cycle, armed_at);
        assert_eq!(tr.window_cycles(), 10);
        for tile in &tr.tiles {
            assert_eq!(tile.busy_cycles, 0, "pre-arm work leaked into the window");
            assert_eq!(tile.idle_cycles, 10);
            assert_eq!(tile.events.len(), 0);
        }
    }

    #[test]
    fn sampling_disabled_by_default() {
        let mut f = Fabric::new(1, 1);
        for _ in 0..10 {
            f.step();
        }
        assert!(f.samples().is_empty());
    }

    #[test]
    #[should_panic(expected = "points off the fabric")]
    fn edge_route_panics() {
        let mut f = Fabric::new(2, 2);
        f.set_route(0, 0, Port::Ramp, 0, &[Port::West]);
    }

    /// A 1×1 fabric streaming `n` fp16 words out of a declared east edge
    /// channel on color 1.
    fn edge_sender(n: u32) -> Fabric {
        let mut f = Fabric::new(1, 1);
        f.open_edge(0, 0, Port::East, 1);
        f.set_route(0, 0, Port::Ramp, 1, &[Port::East]);
        let t = f.tile_mut(0, 0);
        let data: Vec<F16> = (1..=n).map(|i| F16::from_f64(i as f64)).collect();
        let addr = t.mem.alloc_vec(n, Dtype::F16).unwrap();
        t.mem.store_f16_slice(addr, &data);
        let dsrc = t.core.add_dsr(mk::tensor16(addr, n));
        let dtx = t.core.add_dsr(mk::tx16(1, n));
        let task = t.core.add_task(Task::new(
            "send",
            vec![Stmt::Exec(TensorInstr { op: Op::Copy, dst: Some(dtx), a: Some(dsrc), b: None })],
        ));
        t.core.activate(task);
        f
    }

    #[test]
    fn edge_egress_holds_without_credits_and_streams_in_order_with_them() {
        let mut f = edge_sender(5);
        // Default credits = 0: identical to an undeclared edge — flits
        // hold in the router and the watchdog sees a wedged fabric.
        assert!(f.run_watched(10_000, 64).is_err(), "zero-credit edge must hold");
        assert_eq!(f.edge_out_len(0, 0, Port::East, 1), 0);
        // Granting credits lets the stream drain through the channel.
        f.set_edge_credits(0, 0, Port::East, 1, 5);
        f.run_watched(10_000, 64).expect("credited edge egress must drain");
        // Egress queues live host-side: the fabric is quiescent even
        // though nothing has collected the flits yet.
        assert!(f.is_quiescent());
        assert_eq!(f.edge_out_len(0, 0, Port::East, 1), 5);
        let flits = f.drain_edge_out(0, 0, Port::East, 1);
        let got: Vec<f64> =
            flits.iter().map(|fl| F16::from_bits(fl.bits as u16).to_f64()).collect();
        assert_eq!(got, vec![1.0, 2.0, 3.0, 4.0, 5.0], "staged order preserved");
        assert_eq!(f.edge_out_len(0, 0, Port::East, 1), 0);
    }

    #[test]
    fn edge_egress_is_stepper_equivalent() {
        let run = |reference: bool| {
            let mut f = edge_sender(6);
            f.use_reference_stepper(reference);
            f.set_edge_credits(0, 0, Port::East, 1, 2);
            // Narrow credit window: the host collects two flits at a time,
            // exercising snapshot-credit holds in both steppers.
            let mut out = Vec::new();
            let mut cycles = 0u64;
            while out.len() < 6 {
                f.step();
                cycles += 1;
                out.extend(f.drain_edge_out(0, 0, Port::East, 1));
                assert!(cycles < 1_000, "edge stream wedged");
            }
            let vals: Vec<f64> =
                out.iter().map(|fl| F16::from_bits(fl.bits as u16).to_f64()).collect();
            (cycles, vals, f.perf().flits_routed)
        };
        let (oc, ov, of) = run(false);
        let (rc, rv, rf) = run(true);
        assert_eq!(oc, rc, "steppers diverged on edge egress timing");
        assert_eq!(ov, rv);
        assert_eq!(of, rf);
        assert_eq!(ov, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn edge_injection_obeys_queue_space_and_color_routing() {
        let mut f = Fabric::new(1, 1);
        f.open_edge(0, 0, Port::West, 1);
        f.set_route(0, 0, Port::West, 1, &[Port::Ramp]);
        let raddr;
        {
            let t = f.tile_mut(0, 0);
            raddr = t.mem.alloc_vec(12, Dtype::F16).unwrap();
            let drx = t.core.add_dsr(mk::rx16(1, 12));
            let ddst = t.core.add_dsr(mk::tensor16(raddr, 12));
            let task = t.core.add_task(Task::new(
                "recv",
                vec![Stmt::Exec(TensorInstr {
                    op: Op::Copy,
                    dst: Some(ddst),
                    a: Some(drx),
                    b: None,
                })],
            ));
            t.core.activate(task);
        }
        // Injection fills the same bounded per-color input queue an
        // on-wafer neighbor would: exactly QUEUE_CAPACITY flits fit, then
        // the host is backpressured.
        assert_eq!(f.edge_in_space(0, 0, Port::West, 1), crate::types::QUEUE_CAPACITY);
        let mut sent = 0u32;
        while sent < 12 {
            if !f.inject_edge(0, 0, Port::West, 1, Flit::f16(F16::from_f64(sent as f64).to_bits()))
            {
                break;
            }
            sent += 1;
        }
        assert_eq!(sent as usize, crate::types::QUEUE_CAPACITY, "queue bounds injection");
        assert!(!f.inject_edge(0, 0, Port::West, 1, Flit::f16(0)), "full queue backpressures");
        // Draining the fabric frees space; the host finishes the stream.
        let mut guard = 0;
        while sent < 12 {
            f.step();
            guard += 1;
            assert!(guard < 1_000, "injected stream wedged");
            while sent < 12
                && f.inject_edge(
                    0,
                    0,
                    Port::West,
                    1,
                    Flit::f16(F16::from_f64(sent as f64).to_bits()),
                )
            {
                sent += 1;
            }
        }
        f.run_watched(10_000, 64).expect("receiver must finish");
        let got = f.tile(0, 0).mem.load_f16_slice(raddr, 12);
        for (i, v) in got.iter().enumerate() {
            assert_eq!(v.to_f64(), i as f64, "word {i} delivered in order");
        }
    }

    #[test]
    #[should_panic(expected = "no edge port declared")]
    fn edge_injection_requires_declaration() {
        let mut f = Fabric::new(2, 2);
        f.inject_edge(0, 0, Port::West, 3, Flit::f16(0));
    }

    #[test]
    fn unused_edge_ports_are_cycle_identical() {
        // The same workload with and without (unused) declared edge
        // channels, under both steppers: declaring edges must not perturb
        // a single cycle or counter.
        let run = |edges: bool, reference: bool| {
            let (mut f, raddr) = sender_receiver(8);
            if edges {
                f.open_edge(0, 0, Port::West, 1);
                f.open_edge(0, 0, Port::North, 5);
                f.open_edge(1, 0, Port::East, 1);
                f.set_edge_credits(1, 0, Port::East, 1, 4);
            }
            f.use_reference_stepper(reference);
            let cycles = f.run_until_quiescent(100_000).expect("stream finishes");
            let p = f.perf();
            let data = f.tile(1, 0).mem.load_f16_slice(raddr, 8);
            (cycles, p.busy_cycles, p.idle_cycles, p.flits_routed, p.ctrl_stmts, data)
        };
        let base = run(false, false);
        assert_eq!(run(true, false), base, "unused edges perturbed the optimized stepper");
        assert_eq!(run(true, true), base, "unused edges perturbed the reference stepper");
        assert_eq!(run(false, true), base, "steppers diverged on the baseline");
    }

    /// Builds the standard 2-tile sender/receiver pair used by the fault
    /// tests: (0,0) streams `n` fp16 values east on color 1 into a vector
    /// at the returned address on (1,0).
    fn sender_receiver(n: u32) -> (Fabric, u32) {
        let mut f = Fabric::new(2, 1);
        f.set_route(0, 0, Port::Ramp, 1, &[Port::East]);
        f.set_route(1, 0, Port::West, 1, &[Port::Ramp]);
        {
            let t = f.tile_mut(0, 0);
            let data: Vec<F16> = (1..=n).map(|i| F16::from_f64(i as f64)).collect();
            let addr = t.mem.alloc_vec(n, Dtype::F16).unwrap();
            t.mem.store_f16_slice(addr, &data);
            let dsrc = t.core.add_dsr(mk::tensor16(addr, n));
            let dtx = t.core.add_dsr(mk::tx16(1, n));
            let task = t.core.add_task(Task::new(
                "send",
                vec![Stmt::Exec(TensorInstr {
                    op: Op::Copy,
                    dst: Some(dtx),
                    a: Some(dsrc),
                    b: None,
                })],
            ));
            t.core.activate(task);
        }
        let raddr;
        {
            let t = f.tile_mut(1, 0);
            raddr = t.mem.alloc_vec(n, Dtype::F16).unwrap();
            let drx = t.core.add_dsr(mk::rx16(1, n));
            let ddst = t.core.add_dsr(mk::tensor16(raddr, n));
            let task = t.core.add_task(Task::new(
                "recv",
                vec![Stmt::Exec(TensorInstr {
                    op: Op::Copy,
                    dst: Some(ddst),
                    a: Some(drx),
                    b: None,
                })],
            ));
            t.core.activate(task);
        }
        (f, raddr)
    }

    #[test]
    fn sram_bit_flip_applies_at_scheduled_cycle() {
        let mut f = Fabric::new(1, 1);
        let addr = f.tile_mut(0, 0).mem.alloc_vec(4, Dtype::F16).unwrap();
        f.tile_mut(0, 0).mem.store_f16_slice(addr, &[F16::from_f64(1.0); 4]);
        let before = f.tile(0, 0).mem.read_f16(addr + 2).to_bits();
        f.arm_faults(
            &FaultPlan::new()
                .with(5, FaultKind::SramBitFlip { x: 0, y: 0, addr: addr + 2, bit: 9 }),
        );
        for _ in 0..5 {
            f.step();
        }
        assert!(f.fault_log().unwrap().applied.is_empty(), "not yet due");
        f.step(); // cycle 5 begins: the flip lands
        let after = f.tile(0, 0).mem.read_f16(addr + 2).to_bits();
        assert_eq!(after, before ^ (1 << 9));
        assert_eq!(f.fault_log().unwrap().applied.len(), 1);
        // Untouched neighbors are unchanged.
        assert_eq!(f.tile(0, 0).mem.read_f16(addr).to_bits(), before);
    }

    #[test]
    fn link_drop_loses_exactly_one_flit() {
        let (mut f, raddr) = sender_receiver(3);
        f.arm_faults(
            &FaultPlan::new().with(0, FaultKind::LinkDrop { x: 0, y: 0, port: Port::East }),
        );
        // The receiver waits forever for its third word: watchdog fires.
        let err = f.run_watched(10_000, 64).unwrap_err();
        assert!(!err.deadline_exceeded);
        assert_eq!(f.fault_log().unwrap().dropped_flits, 1);
        assert_eq!(err.total_stalled, 1, "only the receiver is wedged: {err}");
        assert_eq!(err.stalled[0].x, 1);
        // The two delivered words made it.
        let got = f.tile(1, 0).mem.load_f16_slice(raddr, 2);
        assert_eq!(got[0].to_f64(), 2.0, "first word was the dropped one");
        assert_eq!(got[1].to_f64(), 3.0);
    }

    #[test]
    fn link_corrupt_flips_one_payload_bit() {
        let (mut f, raddr) = sender_receiver(3);
        f.arm_faults(
            &FaultPlan::new()
                .with(0, FaultKind::LinkCorrupt { x: 0, y: 0, port: Port::East, bit: 3 }),
        );
        f.run_watched(10_000, 64).expect("corruption does not stall the fabric");
        assert_eq!(f.fault_log().unwrap().corrupted_flits, 1);
        let got = f.tile(1, 0).mem.load_f16_slice(raddr, 3);
        assert_eq!(got[0].to_bits(), F16::from_f64(1.0).to_bits() ^ (1 << 3));
        assert_eq!(got[1].to_f64(), 2.0);
        assert_eq!(got[2].to_f64(), 3.0);
    }

    #[test]
    fn tile_kill_stalls_with_report_naming_the_dead_neighborhood() {
        let (mut f, _) = sender_receiver(64);
        f.arm_faults(&FaultPlan::new().with(20, FaultKind::TileKill { x: 1, y: 0 }));
        let err = f.run_watched(100_000, 128).unwrap_err();
        assert!(!err.deadline_exceeded, "must be a detected deadlock, not a timeout");
        assert!(f.tile_dead(1, 0));
        assert!(err.total_stalled >= 1);
        assert!(
            err.stalled.iter().any(|t| (t.x, t.y) == (1, 0) && t.router_queued > 0),
            "dead tile holds undrained queues: {err}"
        );
    }

    #[test]
    fn stuck_port_wedges_the_route() {
        let (mut f, _) = sender_receiver(8);
        f.arm_faults(
            &FaultPlan::new().with(0, FaultKind::StuckPort { x: 0, y: 0, port: Port::East }),
        );
        let err = f.run_watched(50_000, 128).unwrap_err();
        assert!(!err.deadline_exceeded);
        assert!(err
            .stalled
            .iter()
            .any(|t| (t.x, t.y) == (0, 0) && (t.router_queued > 0 || t.ramp_out > 0)));
    }

    #[test]
    fn run_watched_matches_unwatched_on_healthy_fabric() {
        let (mut f, raddr) = sender_receiver(8);
        let cycles = f.run_watched(10_000, 256).expect("healthy run must complete");
        assert!(cycles > 0 && cycles < 100);
        let got = f.tile(1, 0).mem.load_f16_slice(raddr, 8);
        assert_eq!(got[7].to_f64(), 8.0);
        assert!(!f.faults_armed());
        assert!(f.fault_log().is_none());
    }

    #[test]
    fn reset_transient_recovers_a_wedged_fabric() {
        // Drop a flit so the receiver wedges, then reset and re-run the
        // same program successfully (the driver re-activates tasks).
        let (mut f, _) = sender_receiver(4);
        f.arm_faults(
            &FaultPlan::new().with(0, FaultKind::LinkDrop { x: 0, y: 0, port: Port::East }),
        );
        f.run_watched(10_000, 64).unwrap_err();
        f.reset_transient();
        assert!(f.is_quiescent(), "reset must leave the fabric quiescent");
        // Replay: same tiles, fresh activation; the one-shot drop is spent.
        let sdata: Vec<F16> = (1..=4).map(|i| F16::from_f64(i as f64)).collect();
        let (saddr, raddr2);
        {
            let t = f.tile_mut(0, 0);
            saddr = t.mem.alloc_vec(4, Dtype::F16).unwrap();
            t.mem.store_f16_slice(saddr, &sdata);
            let dsrc = t.core.add_dsr(mk::tensor16(saddr, 4));
            let dtx = t.core.add_dsr(mk::tx16(1, 4));
            let task = t.core.add_task(Task::new(
                "send2",
                vec![Stmt::Exec(TensorInstr {
                    op: Op::Copy,
                    dst: Some(dtx),
                    a: Some(dsrc),
                    b: None,
                })],
            ));
            t.core.activate(task);
        }
        {
            let t = f.tile_mut(1, 0);
            raddr2 = t.mem.alloc_vec(4, Dtype::F16).unwrap();
            let drx = t.core.add_dsr(mk::rx16(1, 4));
            let ddst = t.core.add_dsr(mk::tensor16(raddr2, 4));
            let task = t.core.add_task(Task::new(
                "recv2",
                vec![Stmt::Exec(TensorInstr {
                    op: Op::Copy,
                    dst: Some(ddst),
                    a: Some(drx),
                    b: None,
                })],
            ));
            t.core.activate(task);
        }
        f.run_watched(10_000, 64).expect("replay must complete");
        assert_eq!(f.tile(1, 0).mem.load_f16_slice(raddr2, 4), sdata);
    }

    #[test]
    fn fault_free_plan_changes_nothing() {
        // Arming an empty plan must not perturb a healthy run's results.
        let (mut f, raddr) = sender_receiver(8);
        f.arm_faults(&FaultPlan::new());
        f.run_watched(10_000, 256).unwrap();
        let got = f.tile(1, 0).mem.load_f16_slice(raddr, 8);
        let want: Vec<F16> = (1..=8).map(|i| F16::from_f64(i as f64)).collect();
        assert_eq!(got, want);
        assert!(f.fault_log().unwrap().applied.is_empty());
    }

    #[test]
    fn faults_on_sleeping_tiles_apply_and_settle_idle_accounting() {
        // A fully idle fabric: the activity-driven stepper skips every
        // tile, yet scheduled faults must still land on time and the
        // killed tile's idle counter must reflect exactly its live cycles.
        let mut f = Fabric::new(3, 1);
        let addr = f.tile_mut(2, 0).mem.alloc_vec(1, Dtype::F16).unwrap();
        f.tile_mut(2, 0).mem.store_f16_slice(addr, &[F16::from_f64(1.0)]);
        let before = f.tile(2, 0).mem.read_f16(addr).to_bits();
        f.arm_faults(
            &FaultPlan::new()
                .with(5, FaultKind::SramBitFlip { x: 2, y: 0, addr, bit: 3 })
                .with(8, FaultKind::TileKill { x: 2, y: 0 }),
        );
        for _ in 0..20 {
            f.step();
        }
        assert_eq!(f.tile(2, 0).mem.read_f16(addr).to_bits(), before ^ (1 << 3));
        assert!(f.tile_dead(2, 0));
        // Killed at cycle 8 after idling through cycles 0..8.
        assert_eq!(f.tile(2, 0).core.perf.idle_cycles, 8);
        // The two surviving tiles idle through all 20 cycles.
        assert_eq!(f.perf().idle_cycles, 8 + 2 * 20);
    }

    #[test]
    fn rearming_faults_revives_killed_tiles_without_back_idle() {
        let mut f = Fabric::new(1, 1);
        f.arm_faults(&FaultPlan::new().with(3, FaultKind::TileKill { x: 0, y: 0 }));
        for _ in 0..10 {
            f.step();
        }
        assert!(f.tile_dead(0, 0));
        assert_eq!(f.perf().idle_cycles, 3, "idle froze at the kill");
        // Re-arming drops the old plan's kill flags: the tile resumes
        // stepping, and the 7 frozen cycles are never billed as idle.
        f.arm_faults(&FaultPlan::new());
        assert!(!f.tile_dead(0, 0));
        for _ in 0..4 {
            f.step();
        }
        assert_eq!(f.perf().idle_cycles, 7);
    }

    #[test]
    fn skipped_idle_tiles_accrue_identical_idle_counters() {
        let (mut a, ra) = sender_receiver(8);
        let ca = a.run_until_quiescent(1_000).unwrap();
        let (mut b, rb) = sender_receiver(8);
        b.use_reference_stepper(true);
        let cb = b.run_until_quiescent(1_000).unwrap();
        assert_eq!(ca, cb, "cycle-for-cycle identical");
        let (pa, pb) = (a.perf(), b.perf());
        assert_eq!(pa.idle_cycles, pb.idle_cycles);
        assert_eq!(pa.busy_cycles, pb.busy_cycles);
        assert_eq!(pa.flits_routed, pb.flits_routed);
        assert_eq!(pa.ctrl_stmts, pb.ctrl_stmts);
        assert_eq!(a.tile(1, 0).mem.load_f16_slice(ra, 8), b.tile(1, 0).mem.load_f16_slice(rb, 8));
    }
}
