//! Runtime race and channel-wait sanitizer.
//!
//! The static passes in `wse-lint` prove properties of the *program*; the
//! sanitizer observes one *execution* and cross-checks them. It is armed the
//! same way as fault injection and tracing ([`crate::fabric::Fabric::arm_sanitizer`]):
//! disarmed, every hook is one pointer test; armed, each core shadow-tracks
//!
//! * **SRAM access marks** — per byte, the last writer and last reader
//!   context (main thread or background slot) with a launch epoch. A byte
//!   touched by two contexts that could overlap in time, where at least one
//!   access is a write, is a **race trip** — unless both accesses are
//!   read-modify-write accumulations (the datapath issues one context per
//!   cycle, so element RMW is atomic and addition commutes; this is the
//!   paper's sanctioned concurrent-accumulation dataflow).
//! * **Channel waits** — on every cycle the datapath cannot issue, the
//!   colors some active receive is starved on. The per-color longest
//!   consecutive wait is the runtime face of the static progress pass: a
//!   `color-starved` program shows an ever-growing streak.
//!
//! Happens-before is tracked with launch epochs: the core's epoch counter
//! bumps at every `Stmt::Launch`, and a slot's *birth* is the epoch of its
//! launch. A mark made before a thread's birth is ordered before everything
//! that thread does (the launching code wrote it first); a mark made by a
//! thread that has since completed is ordered before later accesses (the
//! core observed the completion). What remains — two contexts alive
//! together, touching a byte — is exactly the interleaving-decided overlap
//! the static race pass reports.
//!
//! The sanitizer is observation-only: arming it never changes a single
//! architectural state transition, so an armed run is cycle-identical to a
//! disarmed one (asserted by tests and by the `iter_profile` bench).

use crate::types::{Color, NUM_COLORS, NUM_THREADS};
use std::fmt;

/// Context id of the main thread's synchronous-exec pseudo-slot (background
/// slots are `0..NUM_THREADS`).
pub const MAIN_CTX: u8 = NUM_THREADS as u8;

/// How a race trip was detected (what the second access was, relative to
/// the mark it collided with).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TripKind {
    /// A write hit a byte another live context wrote.
    WriteAfterWrite,
    /// A write hit a byte another live context read.
    WriteAfterRead,
    /// A read hit a byte another live context wrote.
    ReadAfterWrite,
}

impl fmt::Display for TripKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TripKind::WriteAfterWrite => "write-after-write",
            TripKind::WriteAfterRead => "write-after-read",
            TripKind::ReadAfterWrite => "read-after-write",
        })
    }
}

/// One detected race: two unordered contexts touched the same SRAM byte.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RaceTrip {
    /// Core-local cycle stamp (fabric clock) of the second access.
    pub cycle: u64,
    /// First conflicting byte address.
    pub addr: u32,
    /// What collided.
    pub kind: TripKind,
    /// The context making the second access (`MAIN_CTX` = main thread).
    pub ctx: u8,
    /// The context that made the first, conflicting access.
    pub prior_ctx: u8,
}

impl fmt::Display for RaceTrip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = |c: u8| -> String {
            if c == MAIN_CTX {
                "main".into()
            } else {
                format!("thread {c}")
            }
        };
        write!(
            f,
            "cycle {}: {} at sram byte {} ({} after {})",
            self.cycle,
            self.kind,
            self.addr,
            name(self.ctx),
            name(self.prior_ctx)
        )
    }
}

/// Cap on detailed [`RaceTrip`] records kept per core; further trips only
/// bump the total (a racing loop would otherwise record every element).
pub const MAX_TRIPS_KEPT: usize = 16;

// Mark packing: `epoch << 8 | (ctx + 1) << 1 | accum`. Zero means the byte
// was never touched; `ctx + 1` keeps slot 0 distinguishable from "none".
#[inline]
fn pack(epoch: u64, ctx: u8, accum: bool) -> u64 {
    (epoch << 8) | ((ctx as u64 + 1) << 1) | accum as u64
}

#[inline]
fn unpack(mark: u64) -> (u64, u8, bool) {
    (mark >> 8, ((mark >> 1) & 0x7f) as u8 - 1, mark & 1 == 1)
}

/// Per-core shadow state. Allocated only when armed (two SRAM-sized `u64`
/// shadow planes per core); the disarmed hook is one pointer test.
#[derive(Clone, Debug)]
pub struct CoreSanitizer {
    /// Core-local cycle stamp; tracks the fabric clock like `CoreTrace`.
    pub(crate) now: u64,
    /// Bumped on every thread launch; orders marks against births.
    epoch: u64,
    /// Launch epoch of the thread currently (or last) occupying each slot.
    birth: [u64; NUM_THREADS],
    /// Set by `begin()` for the duration of one `process()` call:
    /// `(context id, is accumulation)`.
    cur: Option<(u8, bool)>,
    /// Which background slots were live at `begin()` time.
    live: [bool; NUM_THREADS],
    /// Last-writer mark per SRAM byte.
    write_marks: Vec<u64>,
    /// Last-reader mark per SRAM byte.
    read_marks: Vec<u64>,
    /// First [`MAX_TRIPS_KEPT`] race trips, in detection order.
    pub trips: Vec<RaceTrip>,
    /// All race trips, including those past the detail cap.
    pub total_trips: u64,
    /// Cycles each color spent starving an active receive.
    pub chan_wait: [u64; NUM_COLORS],
    /// Current consecutive starved-cycle streak per color.
    streak: [u64; NUM_COLORS],
    /// Longest consecutive starved-cycle streak per color.
    pub longest_wait: [u64; NUM_COLORS],
}

impl CoreSanitizer {
    /// Fresh shadow state stamping from `now` over `sram_bytes` of SRAM.
    pub fn new(now: u64, sram_bytes: usize) -> CoreSanitizer {
        CoreSanitizer {
            now,
            epoch: 0,
            birth: [0; NUM_THREADS],
            cur: None,
            live: [false; NUM_THREADS],
            write_marks: vec![0; sram_bytes],
            read_marks: vec![0; sram_bytes],
            trips: Vec::new(),
            total_trips: 0,
            chan_wait: [0; NUM_COLORS],
            streak: [0; NUM_COLORS],
            longest_wait: [0; NUM_COLORS],
        }
    }

    /// A thread was launched into `slot`: new epoch, new birth. Marks made
    /// before this instant have epoch < birth and are ordered before the
    /// thread (the launching code came first).
    pub(crate) fn on_launch(&mut self, slot: usize) {
        self.epoch += 1;
        self.birth[slot] = self.epoch;
    }

    /// The datapath is about to issue context `ctx` (a background slot, or
    /// [`MAIN_CTX`]); `accum` is true for read-modify-write accumulations;
    /// `live` is the current background-slot occupancy.
    pub(crate) fn begin(&mut self, ctx: u8, accum: bool, live: [bool; NUM_THREADS]) {
        self.cur = Some((ctx, accum));
        self.live = live;
    }

    /// The `process()` call returned; SRAM hooks go quiet again.
    pub(crate) fn end(&mut self) {
        self.cur = None;
    }

    /// Is a mark by `(mark_epoch, mark_ctx)` concurrent with the current
    /// accessor `ctx`? Same context never conflicts. A background marker
    /// conflicts only if it is still live *and* the mark postdates its
    /// birth (older marks belong to a previous occupant of the slot). A
    /// main-thread marker conflicts with background accessor `s` only if
    /// the mark postdates `s`'s birth (pre-launch writes are the sanctioned
    /// "parent initializes, child reads" pattern).
    fn concurrent(&self, ctx: u8, mark_epoch: u64, mark_ctx: u8) -> bool {
        if mark_ctx == ctx {
            return false;
        }
        if mark_ctx < NUM_THREADS as u8 {
            let s = mark_ctx as usize;
            self.live[s] && mark_epoch >= self.birth[s]
        } else {
            // Marker is the main thread.
            if ctx < NUM_THREADS as u8 {
                mark_epoch >= self.birth[ctx as usize]
            } else {
                false
            }
        }
    }

    fn trip(&mut self, addr: u32, kind: TripKind, ctx: u8, prior_ctx: u8) {
        self.total_trips += 1;
        if self.trips.len() < MAX_TRIPS_KEPT {
            let cycle = self.now;
            self.trips.push(RaceTrip { cycle, addr, kind, ctx, prior_ctx });
        }
    }

    /// One element-read of `bytes` bytes at `addr` by the current context.
    pub(crate) fn on_read(&mut self, addr: u32, bytes: u32) {
        let Some((ctx, accum)) = self.cur else { return };
        let lo = addr as usize;
        let hi = (addr + bytes).min(self.write_marks.len() as u32) as usize;
        let mark = pack(self.epoch, ctx, accum);
        for b in lo..hi {
            let w = self.write_marks[b];
            if w != 0 {
                let (we, wc, wa) = unpack(w);
                if self.concurrent(ctx, we, wc) && !(accum && wa) {
                    self.trip(b as u32, TripKind::ReadAfterWrite, ctx, wc);
                }
            }
            self.read_marks[b] = mark;
        }
    }

    /// One element-write of `bytes` bytes at `addr` by the current context.
    pub(crate) fn on_write(&mut self, addr: u32, bytes: u32) {
        let Some((ctx, accum)) = self.cur else { return };
        let lo = addr as usize;
        let hi = (addr + bytes).min(self.write_marks.len() as u32) as usize;
        let mark = pack(self.epoch, ctx, accum);
        for b in lo..hi {
            let w = self.write_marks[b];
            if w != 0 {
                let (we, wc, wa) = unpack(w);
                if self.concurrent(ctx, we, wc) && !(accum && wa) {
                    self.trip(b as u32, TripKind::WriteAfterWrite, ctx, wc);
                }
            }
            let r = self.read_marks[b];
            if r != 0 {
                let (re, rc, ra) = unpack(r);
                if self.concurrent(ctx, re, rc) && !(accum && ra) {
                    self.trip(b as u32, TripKind::WriteAfterRead, ctx, rc);
                }
            }
            self.write_marks[b] = mark;
        }
    }

    /// A non-issuing datapath cycle; `waiting[c]` is true where some active
    /// receive is starved on color `c`.
    pub(crate) fn on_stall(&mut self, waiting: &[bool; NUM_COLORS]) {
        for (c, &starved) in waiting.iter().enumerate() {
            if starved {
                self.chan_wait[c] += 1;
                self.streak[c] += 1;
                if self.streak[c] > self.longest_wait[c] {
                    self.longest_wait[c] = self.streak[c];
                }
            } else {
                self.streak[c] = 0;
            }
        }
    }

    /// Cycles the sanitizer has observed (idle-skip debt included).
    pub fn cycles(&self) -> u64 {
        self.now
    }
}

/// One tile's slice of a [`SanitizerReport`].
#[derive(Clone, Debug)]
pub struct TileSanitizer {
    /// Tile x coordinate.
    pub x: usize,
    /// Tile y coordinate.
    pub y: usize,
    /// First [`MAX_TRIPS_KEPT`] race trips on this tile.
    pub trips: Vec<RaceTrip>,
    /// Total race trips on this tile.
    pub total_trips: u64,
    /// Total starved-receive cycles per color.
    pub chan_wait: [u64; NUM_COLORS],
    /// Longest consecutive starved-receive streak per color.
    pub longest_wait: [u64; NUM_COLORS],
}

/// Everything the armed sanitizer observed, per tile, plus the window.
#[derive(Clone, Debug)]
pub struct SanitizerReport {
    /// Fabric width.
    pub w: usize,
    /// Fabric height.
    pub h: usize,
    /// Cycles in the observation window.
    pub cycles: u64,
    /// Per-tile shadow-state summaries (row-major, all tiles).
    pub tiles: Vec<TileSanitizer>,
}

impl SanitizerReport {
    /// Total race trips across the fabric.
    pub fn total_trips(&self) -> u64 {
        self.tiles.iter().map(|t| t.total_trips).sum()
    }

    /// `true` when no race tripped anywhere.
    pub fn is_clean(&self) -> bool {
        self.total_trips() == 0
    }

    /// The longest consecutive starved-receive streak anywhere, as
    /// `(x, y, color, cycles)` — the runtime signature of starvation.
    pub fn longest_channel_wait(&self) -> Option<(usize, usize, Color, u64)> {
        self.tiles
            .iter()
            .flat_map(|t| {
                t.longest_wait.iter().enumerate().map(move |(c, &n)| (t.x, t.y, c as Color, n))
            })
            .filter(|&(_, _, _, n)| n > 0)
            .max_by_key(|&(_, _, _, n)| n)
    }
}

impl fmt::Display for SanitizerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "sanitizer: {} race trip(s) over {} cycles on {}x{} tiles",
            self.total_trips(),
            self.cycles,
            self.w,
            self.h
        )?;
        for t in &self.tiles {
            for trip in &t.trips {
                writeln!(f, "  tile ({}, {}): {trip}", t.x, t.y)?;
            }
            if t.total_trips > t.trips.len() as u64 {
                writeln!(
                    f,
                    "  tile ({}, {}): ... and {} more trip(s)",
                    t.x,
                    t.y,
                    t.total_trips - t.trips.len() as u64
                )?;
            }
        }
        if let Some((x, y, c, n)) = self.longest_channel_wait() {
            writeln!(f, "  longest channel wait: color {c} at ({x}, {y}) starved {n} cycles")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_packing_roundtrips() {
        for epoch in [0u64, 1, 7, 1 << 40] {
            for ctx in 0..=NUM_THREADS as u8 {
                for accum in [false, true] {
                    assert_eq!(unpack(pack(epoch, ctx, accum)), (epoch, ctx, accum));
                }
            }
        }
    }

    #[test]
    fn pre_launch_writes_do_not_trip() {
        let mut san = CoreSanitizer::new(0, 64);
        // Main writes, then launches slot 2, which reads the same bytes.
        san.begin(MAIN_CTX, false, [false; NUM_THREADS]);
        san.on_write(0, 4);
        san.end();
        san.on_launch(2);
        let mut live = [false; NUM_THREADS];
        live[2] = true;
        san.begin(2, false, live);
        san.on_read(0, 4);
        san.end();
        assert_eq!(san.total_trips, 0);
    }

    #[test]
    fn post_launch_main_write_trips_against_live_reader() {
        let mut san = CoreSanitizer::new(0, 64);
        san.on_launch(1);
        let mut live = [false; NUM_THREADS];
        live[1] = true;
        san.begin(1, false, live);
        san.on_read(8, 4);
        san.end();
        san.begin(MAIN_CTX, false, live);
        san.on_write(8, 4);
        san.end();
        assert_eq!(san.total_trips, 4);
        assert_eq!(san.trips[0].kind, TripKind::WriteAfterRead);
        assert_eq!(san.trips[0].prior_ctx, 1);
    }

    #[test]
    fn both_accumulations_are_exempt() {
        let mut san = CoreSanitizer::new(0, 64);
        san.on_launch(0);
        let mut live = [false; NUM_THREADS];
        live[0] = true;
        san.begin(0, true, live);
        san.on_write(16, 2);
        san.end();
        san.begin(MAIN_CTX, true, live);
        san.on_write(16, 2);
        san.end();
        assert_eq!(san.total_trips, 0);
        // A plain (non-accumulating) write against a live accumulator's
        // mark still trips (shadow keeps the last writer, so test on fresh
        // bytes where thread 0's mark is the one standing).
        san.begin(0, true, live);
        san.on_write(20, 2);
        san.end();
        san.begin(MAIN_CTX, false, live);
        san.on_write(20, 2);
        san.end();
        assert_eq!(san.total_trips, 2);
    }

    #[test]
    fn dead_slot_marks_are_ordered() {
        let mut san = CoreSanitizer::new(0, 64);
        san.on_launch(3);
        let mut live = [false; NUM_THREADS];
        live[3] = true;
        san.begin(3, false, live);
        san.on_write(32, 4);
        san.end();
        // Slot 3 completes; main then writes the same bytes.
        san.begin(MAIN_CTX, false, [false; NUM_THREADS]);
        san.on_write(32, 4);
        san.end();
        assert_eq!(san.total_trips, 0);
    }

    #[test]
    fn slot_reuse_does_not_alias_prior_occupant() {
        let mut san = CoreSanitizer::new(0, 64);
        // First occupant of slot 0 writes, completes.
        san.on_launch(0);
        let mut live = [false; NUM_THREADS];
        live[0] = true;
        san.begin(0, false, live);
        san.on_write(40, 4);
        san.end();
        // Second occupant launched into the same slot; main reads the old
        // bytes while the *new* occupant is live. The old mark has
        // epoch < birth, so it must not trip.
        san.on_launch(0);
        san.begin(MAIN_CTX, false, live);
        san.on_read(40, 4);
        san.end();
        assert_eq!(san.total_trips, 0);
    }

    #[test]
    fn channel_wait_streaks() {
        let mut san = CoreSanitizer::new(0, 64);
        let mut w = [false; NUM_COLORS];
        w[5] = true;
        san.on_stall(&w);
        san.on_stall(&w);
        w[5] = false;
        san.on_stall(&w);
        w[5] = true;
        san.on_stall(&w);
        assert_eq!(san.chan_wait[5], 3);
        assert_eq!(san.longest_wait[5], 2);
    }
}
