//! Golden tests for every tensor operation of the ISA, including strided
//! descriptors, fp32 tensors, and FIFO dtypes — randomized against host
//! references.

use proptest::prelude::*;
use wse_arch::core::Core;
use wse_arch::dsr::{mk, Descriptor};
use wse_arch::fifo::Fifo;
use wse_arch::instr::{Op, Stmt, Task, TensorInstr};
use wse_arch::types::Dtype;
use wse_arch::Memory;
use wse_float::{fma16, F16};

fn setup_f16(values: &[&[f64]]) -> (Core, Memory, Vec<u32>) {
    let mut mem = Memory::new();
    let mut addrs = Vec::new();
    for v in values {
        let data: Vec<F16> = v.iter().map(|&x| F16::from_f64(x)).collect();
        let a = mem.alloc_vec(v.len() as u32, Dtype::F16).unwrap();
        mem.store_f16_slice(a, &data);
        addrs.push(a);
    }
    (Core::new(), mem, addrs)
}

fn run_to_quiescence(core: &mut Core, mem: &mut Memory) {
    for _ in 0..10_000 {
        core.step(mem);
        if core.is_quiescent() {
            return;
        }
    }
    panic!("core failed to quiesce");
}

fn exec(core: &mut Core, mem: &mut Memory, instr: TensorInstr) {
    let t = core.add_task(Task::new("t", vec![Stmt::Exec(instr)]));
    core.activate(t);
    run_to_quiescence(core, mem);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Add/Mul match scalar fp16 arithmetic elementwise.
    #[test]
    fn add_mul_golden(
        a in prop::collection::vec(-50i32..50, 1..40),
        b in prop::collection::vec(-50i32..50, 1..40),
        mul in any::<bool>(),
    ) {
        let n = a.len().min(b.len());
        let av: Vec<f64> = a[..n].iter().map(|&v| v as f64 / 8.0).collect();
        let bv: Vec<f64> = b[..n].iter().map(|&v| v as f64 / 8.0).collect();
        let (mut core, mut mem, addrs) = setup_f16(&[&av, &bv]);
        let out = mem.alloc_vec(n as u32, Dtype::F16).unwrap();
        let da = core.add_dsr(mk::tensor16(addrs[0], n as u32));
        let db = core.add_dsr(mk::tensor16(addrs[1], n as u32));
        let dd = core.add_dsr(mk::tensor16(out, n as u32));
        let op = if mul { Op::Mul } else { Op::Add };
        exec(&mut core, &mut mem, TensorInstr { op, dst: Some(dd), a: Some(da), b: Some(db) });
        let got = mem.load_f16_slice(out, n);
        for i in 0..n {
            let (x, y) = (F16::from_f64(av[i]), F16::from_f64(bv[i]));
            let expect = if mul { x * y } else { x + y };
            prop_assert_eq!(got[i].to_bits(), expect.to_bits(), "i={}", i);
        }
    }

    /// FmaAssign is the fused dst += a*b.
    #[test]
    fn fma_assign_golden(
        a in prop::collection::vec(-32i32..32, 1..24),
        b in prop::collection::vec(-32i32..32, 1..24),
        d in prop::collection::vec(-32i32..32, 1..24),
    ) {
        let n = a.len().min(b.len()).min(d.len());
        let av: Vec<f64> = a[..n].iter().map(|&v| v as f64 / 16.0).collect();
        let bv: Vec<f64> = b[..n].iter().map(|&v| v as f64 / 16.0).collect();
        let dv: Vec<f64> = d[..n].iter().map(|&v| v as f64 / 16.0).collect();
        let (mut core, mut mem, addrs) = setup_f16(&[&av, &bv, &dv]);
        let da = core.add_dsr(mk::tensor16(addrs[0], n as u32));
        let db = core.add_dsr(mk::tensor16(addrs[1], n as u32));
        let dd = core.add_dsr(mk::tensor16(addrs[2], n as u32));
        exec(&mut core, &mut mem, TensorInstr { op: Op::FmaAssign, dst: Some(dd), a: Some(da), b: Some(db) });
        let got = mem.load_f16_slice(addrs[2], n);
        for i in 0..n {
            let expect = fma16(F16::from_f64(av[i]), F16::from_f64(bv[i]), F16::from_f64(dv[i]));
            prop_assert_eq!(got[i].to_bits(), expect.to_bits(), "i={}", i);
        }
    }

    /// Xpay: dst = a + r·b with the register scalar.
    #[test]
    fn xpay_golden(
        a in prop::collection::vec(-32i32..32, 1..24),
        b in prop::collection::vec(-32i32..32, 1..24),
        s in -64i32..64,
    ) {
        let n = a.len().min(b.len());
        let av: Vec<f64> = a[..n].iter().map(|&v| v as f64 / 16.0).collect();
        let bv: Vec<f64> = b[..n].iter().map(|&v| v as f64 / 16.0).collect();
        let scalar = s as f32 / 16.0;
        let (mut core, mut mem, addrs) = setup_f16(&[&av, &bv]);
        core.regs[3] = scalar;
        let out = mem.alloc_vec(n as u32, Dtype::F16).unwrap();
        let da = core.add_dsr(mk::tensor16(addrs[0], n as u32));
        let db = core.add_dsr(mk::tensor16(addrs[1], n as u32));
        let dd = core.add_dsr(mk::tensor16(out, n as u32));
        exec(&mut core, &mut mem, TensorInstr { op: Op::Xpay { scalar: 3 }, dst: Some(dd), a: Some(da), b: Some(db) });
        let got = mem.load_f16_slice(out, n);
        for i in 0..n {
            let expect = fma16(F16::from_f32(scalar), F16::from_f64(bv[i]), F16::from_f64(av[i]));
            prop_assert_eq!(got[i].to_bits(), expect.to_bits(), "i={}", i);
        }
    }

    /// Scale: dst = r·a.
    #[test]
    fn scale_golden(a in prop::collection::vec(-32i32..32, 1..24), s in -16i32..16) {
        let av: Vec<f64> = a.iter().map(|&v| v as f64 / 8.0).collect();
        let n = av.len();
        let scalar = s as f32 / 4.0;
        let (mut core, mut mem, addrs) = setup_f16(&[&av]);
        core.regs[1] = scalar;
        let out = mem.alloc_vec(n as u32, Dtype::F16).unwrap();
        let da = core.add_dsr(mk::tensor16(addrs[0], n as u32));
        let dd = core.add_dsr(mk::tensor16(out, n as u32));
        exec(&mut core, &mut mem, TensorInstr { op: Op::Scale { scalar: 1 }, dst: Some(dd), a: Some(da), b: None });
        let got = mem.load_f16_slice(out, n);
        for i in 0..n {
            let expect = F16::from_f32(scalar) * F16::from_f64(av[i]);
            prop_assert_eq!(got[i].to_bits(), expect.to_bits(), "i={}", i);
        }
    }

    /// MacReg accumulates the mixed-precision dot into a register.
    #[test]
    fn mac_reg_golden(
        a in prop::collection::vec(-32i32..32, 1..40),
        b in prop::collection::vec(-32i32..32, 1..40),
    ) {
        let n = a.len().min(b.len());
        let av: Vec<f64> = a[..n].iter().map(|&v| v as f64 / 16.0).collect();
        let bv: Vec<f64> = b[..n].iter().map(|&v| v as f64 / 16.0).collect();
        let (mut core, mut mem, addrs) = setup_f16(&[&av, &bv]);
        let da = core.add_dsr(mk::tensor16(addrs[0], n as u32));
        let db = core.add_dsr(mk::tensor16(addrs[1], n as u32));
        exec(&mut core, &mut mem, TensorInstr { op: Op::MacReg { acc: 7 }, dst: None, a: Some(da), b: Some(db) });
        // Reference: sequential f32 accumulation of exact fp16 products.
        let mut acc = 0.0f32;
        for i in 0..n {
            acc += F16::from_f64(av[i]).to_f32() * F16::from_f64(bv[i]).to_f32();
        }
        prop_assert_eq!(core.regs[7], acc);
    }

    /// Strided reads: a stride-2 source gathers every other element.
    #[test]
    fn strided_copy_golden(a in prop::collection::vec(-64i32..64, 2..40)) {
        let av: Vec<f64> = a.iter().map(|&v| v as f64 / 8.0).collect();
        let n = av.len();
        let m = n / 2;
        prop_assume!(m >= 1);
        let (mut core, mut mem, addrs) = setup_f16(&[&av]);
        let out = mem.alloc_vec(m as u32, Dtype::F16).unwrap();
        let da = core.add_dsr(Descriptor::Mem {
            addr: addrs[0],
            len: m as u32,
            stride: 2,
            dtype: Dtype::F16,
            rewind: true,
        });
        let dd = core.add_dsr(mk::tensor16(out, m as u32));
        exec(&mut core, &mut mem, TensorInstr { op: Op::Copy, dst: Some(dd), a: Some(da), b: None });
        let got = mem.load_f16_slice(out, m);
        for i in 0..m {
            prop_assert_eq!(got[i].to_f64(), F16::from_f64(av[2 * i]).to_f64(), "i={}", i);
        }
    }
}

#[test]
fn f32_fifo_roundtrip() {
    // fp32 values pushed through a FIFO by one instruction and drained by
    // another retain exact bit patterns.
    let mut mem = Memory::new();
    let mut core = Core::new();
    let n = 9u32;
    let src = mem.alloc_vec(n, Dtype::F32).unwrap();
    let dst = mem.alloc_vec(n, Dtype::F32).unwrap();
    for i in 0..n {
        mem.write_f32(src + 4 * i, i as f32 * 0.3 - 1.0);
    }
    let fifo_mem = mem.alloc_vec(4, Dtype::F32).unwrap();
    let drain = core.add_task(Task::new("drain", vec![]));
    let fid = core.add_fifo(Fifo::new(fifo_mem, 4, Dtype::F32, Some(drain)));
    let dfifo = core.add_dsr(mk::fifo(fid));
    // The drain task re-runs on every push; its destination cursor must
    // persist across invocations (like the SpMV accumulators).
    let ddst = core.add_dsr(mk::acc32(dst, n));
    core.set_task_body(
        drain,
        vec![Stmt::Exec(TensorInstr { op: Op::Copy, dst: Some(ddst), a: Some(dfifo), b: None })],
    );
    let dsrc = core.add_dsr(mk::tensor32(src, n));
    let dfifo2 = core.add_dsr(mk::fifo(fid));
    let push = core.add_task(Task::new(
        "push",
        vec![Stmt::Launch {
            slot: 0,
            instr: TensorInstr { op: Op::Copy, dst: Some(dfifo2), a: Some(dsrc), b: None },
            on_complete: None,
        }],
    ));
    core.activate(push);
    for _ in 0..500 {
        core.step(&mut mem);
        if core.is_quiescent() {
            break;
        }
    }
    assert!(core.is_quiescent());
    for i in 0..n {
        assert_eq!(mem.read_f32(dst + 4 * i), i as f32 * 0.3 - 1.0);
    }
}

#[test]
fn load_reg_takes_last_element() {
    let mut mem = Memory::new();
    let mut core = Core::new();
    let data: Vec<F16> = [1.0, 2.0, 5.5].iter().map(|&v| F16::from_f64(v)).collect();
    let a = mem.alloc_vec(3, Dtype::F16).unwrap();
    mem.store_f16_slice(a, &data);
    let da = core.add_dsr(mk::tensor16(a, 3));
    let t = core.add_task(Task::new(
        "ld",
        vec![Stmt::Exec(TensorInstr {
            op: Op::LoadReg { reg: 4 },
            dst: None,
            a: Some(da),
            b: None,
        })],
    ));
    core.activate(t);
    for _ in 0..50 {
        core.step(&mut mem);
    }
    assert_eq!(core.regs[4], 5.5, "last streamed element sticks");
}

#[test]
fn store_reg_broadcasts_into_memory() {
    let mut mem = Memory::new();
    let mut core = Core::new();
    let out = mem.alloc_vec(6, Dtype::F16).unwrap();
    core.regs[2] = 2.25;
    let dd = core.add_dsr(mk::tensor16(out, 6));
    let t = core.add_task(Task::new(
        "st",
        vec![Stmt::Exec(TensorInstr {
            op: Op::StoreReg { reg: 2 },
            dst: Some(dd),
            a: None,
            b: None,
        })],
    ));
    core.activate(t);
    for _ in 0..50 {
        core.step(&mut mem);
    }
    for v in mem.load_f16_slice(out, 6) {
        assert_eq!(v.to_f64(), 2.25);
    }
}
