//! Stress and robustness tests for the fabric: randomized traffic, ordering
//! guarantees, backpressure storms, and long-path routing.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use wse_arch::dsr::mk;
use wse_arch::instr::{Op, Stmt, Task, TensorInstr};
use wse_arch::types::{Dtype, Port};
use wse_arch::Fabric;
use wse_float::F16;

/// Configures a Manhattan (x-then-y) route from `src` to `dst` on `color`.
fn route_xy(f: &mut Fabric, src: (usize, usize), dst: (usize, usize), color: u8) {
    let (mut x, mut y) = src;
    let mut in_port: Option<Port> = None; // None = comes from the ramp
    loop {
        let out = if x < dst.0 {
            Port::East
        } else if x > dst.0 {
            Port::West
        } else if y < dst.1 {
            Port::South
        } else if y > dst.1 {
            Port::North
        } else {
            Port::Ramp
        };
        let from = in_port.unwrap_or(Port::Ramp);
        f.set_route(x, y, from, color, &[out]);
        if out == Port::Ramp {
            break;
        }
        let (dx, dy) = out.delta();
        x = (x as i64 + dx as i64) as usize;
        y = (y as i64 + dy as i64) as usize;
        in_port = Some(out.opposite().unwrap());
    }
}

/// Installs a sender streaming `data` on `color` and returns nothing; the
/// receiver at `dst` stores into a fresh buffer whose address is returned.
fn install_stream(
    f: &mut Fabric,
    src: (usize, usize),
    dst: (usize, usize),
    color: u8,
    data: &[F16],
) -> u32 {
    let n = data.len() as u32;
    {
        let t = f.tile_mut(src.0, src.1);
        let addr = t.mem.alloc_vec(n, Dtype::F16).unwrap();
        t.mem.store_f16_slice(addr, data);
        let dsrc = t.core.add_dsr(mk::tensor16(addr, n));
        let dtx = t.core.add_dsr(mk::tx16(color, n));
        let task = t.core.add_task(Task::new(
            "send",
            vec![Stmt::Exec(TensorInstr { op: Op::Copy, dst: Some(dtx), a: Some(dsrc), b: None })],
        ));
        t.core.activate(task);
    }
    let t = f.tile_mut(dst.0, dst.1);
    let out = t.mem.alloc_vec(n, Dtype::F16).unwrap();
    let drx = t.core.add_dsr(mk::rx16(color, n));
    let ddst = t.core.add_dsr(mk::tensor16(out, n));
    let task = t.core.add_task(Task::new(
        "recv",
        vec![Stmt::Exec(TensorInstr { op: Op::Copy, dst: Some(ddst), a: Some(drx), b: None })],
    ));
    t.core.activate(task);
    out
}

#[test]
fn random_point_to_point_streams_deliver_in_order() {
    let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
    for trial in 0..6 {
        let (w, h) = (6, 6);
        let mut f = Fabric::new(w, h);
        // Several disjoint-color streams with random endpoints. Routes on
        // distinct colors never interact except for bandwidth sharing.
        let mut streams = Vec::new();
        for color in 0..8u8 {
            let src = (rng.gen_range(0..w), rng.gen_range(0..h));
            let mut dst = (rng.gen_range(0..w), rng.gen_range(0..h));
            if dst == src {
                dst = ((src.0 + 1) % w, src.1);
            }
            let n = rng.gen_range(1..40);
            let data: Vec<F16> = (0..n)
                .map(|i| F16::from_f64(((i * 7 + color as usize) % 32) as f64 * 0.25))
                .collect();
            route_xy(&mut f, src, dst, color);
            let out = install_stream(&mut f, src, dst, color, &data);
            streams.push((dst, out, data));
        }
        let cycles = f.run_until_quiescent(20_000).unwrap_or_else(|e| panic!("trial {trial}: {e}"));
        assert!(cycles > 0);
        for (dst, out, data) in streams {
            let got = f.tile(dst.0, dst.1).mem.load_f16_slice(out, data.len());
            assert_eq!(got, data, "stream to {dst:?} must arrive complete and in order");
        }
    }
}

#[test]
fn many_streams_share_one_bottleneck_link() {
    // Four streams from the west edge all cross the single link between
    // columns 1 and 2 on distinct colors: bandwidth is shared, nothing is
    // lost, order per stream is preserved.
    let (w, h) = (4, 4);
    let mut f = Fabric::new(w, h);
    let n = 64usize;
    let mut expected = Vec::new();
    for (k, y) in (0..4usize).enumerate() {
        let color = k as u8;
        // Route: (0,y) -> east along row y to (3, y) but detour through row
        // 0 between columns 1 and 2 to create a shared bottleneck:
        // simplified: straight row routes but all rows funnel through row 1.
        let src = (0usize, y);
        let dst = (3usize, y);
        route_xy(&mut f, src, dst, color);
        let data: Vec<F16> = (0..n).map(|i| F16::from_f64(((i + k) % 16) as f64)).collect();
        let out = install_stream(&mut f, src, dst, color, &data);
        expected.push((dst, out, data));
    }
    f.run_until_quiescent(50_000).unwrap();
    for (dst, out, data) in expected {
        let got = f.tile(dst.0, dst.1).mem.load_f16_slice(out, data.len());
        assert_eq!(got, data);
    }
}

#[test]
fn long_snake_path_across_the_fabric() {
    // A single stream snaking through every row of a 6x6 fabric (35 hops):
    // exercises multi-hop forwarding, turns, and latency accumulation.
    let (w, h) = (6, 6);
    let mut f = Fabric::new(w, h);
    let color = 3u8;
    // Build the snake route manually.
    let mut path = Vec::new();
    for y in 0..h {
        if y % 2 == 0 {
            for x in 0..w {
                path.push((x, y));
            }
        } else {
            for x in (0..w).rev() {
                path.push((x, y));
            }
        }
    }
    for i in 0..path.len() {
        let (x, y) = path[i];
        let from = if i == 0 {
            Port::Ramp
        } else {
            let (px, py) = path[i - 1];
            if px < x {
                Port::West
            } else if px > x {
                Port::East
            } else if py < y {
                Port::North
            } else {
                Port::South
            }
        };
        let to = if i + 1 == path.len() {
            Port::Ramp
        } else {
            let (nx, ny) = path[i + 1];
            if nx > x {
                Port::East
            } else if nx < x {
                Port::West
            } else if ny > y {
                Port::South
            } else {
                Port::North
            }
        };
        f.set_route(x, y, from, color, &[to]);
    }
    let n = 16usize;
    let data: Vec<F16> = (0..n).map(|i| F16::from_f64(i as f64 * 0.5)).collect();
    let out = install_stream(&mut f, path[0], *path.last().unwrap(), color, &data);
    let cycles = f.run_until_quiescent(20_000).unwrap();
    let last = *path.last().unwrap();
    let got = f.tile(last.0, last.1).mem.load_f16_slice(out, n);
    assert_eq!(got, data);
    // 35 hops minimum latency plus streaming time.
    assert!(cycles as usize >= path.len() - 1, "cycles {cycles} < hops {}", path.len() - 1);
}

#[test]
fn slow_consumer_backpressures_the_whole_path() {
    // The receiver consumes one element per ~8 cycles (it shares its
    // datapath with a long-running local compute thread). Nothing may be
    // dropped, and the sender must stall rather than overflow queues.
    let mut f = Fabric::new(3, 1);
    f.set_route(0, 0, Port::Ramp, 2, &[Port::East]);
    f.set_route(1, 0, Port::West, 2, &[Port::East]);
    f.set_route(2, 0, Port::West, 2, &[Port::Ramp]);

    let n = 48usize;
    let data: Vec<F16> = (0..n).map(|i| F16::from_f64((i % 11) as f64)).collect();
    // Sender.
    {
        let t = f.tile_mut(0, 0);
        let addr = t.mem.alloc_vec(n as u32, Dtype::F16).unwrap();
        t.mem.store_f16_slice(addr, &data);
        let dsrc = t.core.add_dsr(mk::tensor16(addr, n as u32));
        let dtx = t.core.add_dsr(mk::tx16(2, n as u32));
        let task = t.core.add_task(Task::new(
            "send",
            vec![Stmt::Exec(TensorInstr { op: Op::Copy, dst: Some(dtx), a: Some(dsrc), b: None })],
        ));
        t.core.activate(task);
    }
    // Receiver with a competing compute thread (keeps the datapath busy).
    let out;
    {
        let t = f.tile_mut(2, 0);
        let big = 4096u32;
        let busy_a = t.mem.alloc_vec(big, Dtype::F16).unwrap();
        let busy_b = t.mem.alloc_vec(big, Dtype::F16).unwrap();
        out = t.mem.alloc_vec(n as u32, Dtype::F16).unwrap();
        let da = t.core.add_dsr(mk::tensor16(busy_a, big));
        let db = t.core.add_dsr(mk::tensor16(busy_b, big));
        // Distinct DSR over the same address: aliasing memory is fine,
        // sharing a DSR (cursor) between dst and src is not.
        let dc = t.core.add_dsr(mk::tensor16(busy_a, big));
        let drx = t.core.add_dsr(mk::rx16(2, n as u32));
        let ddst = t.core.add_dsr(mk::tensor16(out, n as u32));
        let task = t.core.add_task(Task::new(
            "recv",
            vec![
                Stmt::Launch {
                    slot: 0,
                    instr: TensorInstr { op: Op::Mul, dst: Some(dc), a: Some(da), b: Some(db) },
                    on_complete: None,
                },
                Stmt::Exec(TensorInstr { op: Op::Copy, dst: Some(ddst), a: Some(drx), b: None }),
            ],
        ));
        t.core.activate(task);
    }
    f.run_until_quiescent(100_000).unwrap();
    let got = f.tile(2, 0).mem.load_f16_slice(out, n);
    assert_eq!(got, data, "backpressure must not drop or reorder");
}

#[test]
fn fp32_and_fp16_traffic_coexist() {
    let mut f = Fabric::new(2, 1);
    f.set_route(0, 0, Port::Ramp, 1, &[Port::East]);
    f.set_route(1, 0, Port::West, 1, &[Port::Ramp]);
    f.set_route(0, 0, Port::Ramp, 2, &[Port::East]);
    f.set_route(1, 0, Port::West, 2, &[Port::Ramp]);

    // fp16 stream on color 1, fp32 scalar send on color 2 from a register.
    {
        let t = f.tile_mut(0, 0);
        let addr = t.mem.alloc_vec(8, Dtype::F16).unwrap();
        let data: Vec<F16> = (0..8).map(|i| F16::from_f64(i as f64)).collect();
        t.mem.store_f16_slice(addr, &data);
        let dsrc = t.core.add_dsr(mk::tensor16(addr, 8));
        let dtx16 = t.core.add_dsr(mk::tx16(1, 8));
        let dtx32 = t.core.add_dsr(mk::tx32(2, 1));
        t.core.regs[0] = 123.5;
        let task = t.core.add_task(Task::new(
            "send",
            vec![
                Stmt::Exec(TensorInstr {
                    op: Op::StoreReg { reg: 0 },
                    dst: Some(dtx32),
                    a: None,
                    b: None,
                }),
                Stmt::Exec(TensorInstr { op: Op::Copy, dst: Some(dtx16), a: Some(dsrc), b: None }),
            ],
        ));
        t.core.activate(task);
    }
    let out;
    {
        let t = f.tile_mut(1, 0);
        out = t.mem.alloc_vec(8, Dtype::F16).unwrap();
        let drx16 = t.core.add_dsr(mk::rx16(1, 8));
        let ddst = t.core.add_dsr(mk::tensor16(out, 8));
        let drx32 = t.core.add_dsr(mk::rx32(2, 1));
        let task = t.core.add_task(Task::new(
            "recv",
            vec![
                Stmt::Exec(TensorInstr {
                    op: Op::LoadReg { reg: 5 },
                    dst: None,
                    a: Some(drx32),
                    b: None,
                }),
                Stmt::Exec(TensorInstr { op: Op::Copy, dst: Some(ddst), a: Some(drx16), b: None }),
            ],
        ));
        t.core.activate(task);
    }
    f.run_until_quiescent(5_000).unwrap();
    assert_eq!(f.tile(1, 0).core.regs[5], 123.5);
    let got = f.tile(1, 0).mem.load_f16_slice(out, 8);
    assert_eq!(got[7].to_f64(), 7.0);
}
