//! Reference-vs-optimized stepper equivalence.
//!
//! The activity-driven `Fabric::step()` must be cycle-for-cycle
//! bit-identical to the retained full-scan `Fabric::step_reference()`.
//! These tests build the *same* program twice (no cloning — construction is
//! deterministic), pin one fabric to the reference stepper, drive both in
//! lockstep, and assert identical quiescence, perf counters, and final
//! machine state: SRAM bytes, registers, router queues, and ramp residues.
//!
//! Coverage: randomized multi-stream wafer programs (proptest), the
//! lint-fixture-style *broken* programs that wedge or idle forever (the
//! activity set must not "optimize away" their stuck state), fault
//! injection, and armed tracing.

use proptest::prelude::*;
use wse_arch::dsr::mk;
use wse_arch::fault::{FaultKind, FaultPlan};
use wse_arch::instr::{Op, Stmt, Task, TaskAction, TensorInstr};
use wse_arch::trace::TraceConfig;
use wse_arch::types::{Dtype, Port};
use wse_arch::Fabric;
use wse_float::F16;

/// Configures a Manhattan (x-then-y) route from `src` to `dst` on `color`.
fn route_xy(f: &mut Fabric, src: (usize, usize), dst: (usize, usize), color: u8) {
    let (mut x, mut y) = src;
    let mut in_port: Option<Port> = None; // None = comes from the ramp
    loop {
        let out = if x < dst.0 {
            Port::East
        } else if x > dst.0 {
            Port::West
        } else if y < dst.1 {
            Port::South
        } else if y > dst.1 {
            Port::North
        } else {
            Port::Ramp
        };
        let from = in_port.unwrap_or(Port::Ramp);
        f.set_route(x, y, from, color, &[out]);
        if out == Port::Ramp {
            break;
        }
        let (dx, dy) = out.delta();
        x = (x as i64 + dx as i64) as usize;
        y = (y as i64 + dy as i64) as usize;
        in_port = Some(out.opposite().unwrap());
    }
}

/// Installs a sender streaming `data` on `color` from `src` and a receiver
/// storing into a fresh buffer at `dst`.
fn install_stream(
    f: &mut Fabric,
    src: (usize, usize),
    dst: (usize, usize),
    color: u8,
    data: &[F16],
) {
    let n = data.len() as u32;
    {
        let t = f.tile_mut(src.0, src.1);
        let addr = t.mem.alloc_vec(n, Dtype::F16).unwrap();
        t.mem.store_f16_slice(addr, data);
        let dsrc = t.core.add_dsr(mk::tensor16(addr, n));
        let dtx = t.core.add_dsr(mk::tx16(color, n));
        let task = t.core.add_task(Task::new(
            "send",
            vec![Stmt::Exec(TensorInstr { op: Op::Copy, dst: Some(dtx), a: Some(dsrc), b: None })],
        ));
        t.core.activate(task);
    }
    let t = f.tile_mut(dst.0, dst.1);
    let out = t.mem.alloc_vec(n, Dtype::F16).unwrap();
    let drx = t.core.add_dsr(mk::rx16(color, n));
    let ddst = t.core.add_dsr(mk::tensor16(out, n));
    let task = t.core.add_task(Task::new(
        "recv",
        vec![Stmt::Exec(TensorInstr { op: Op::Copy, dst: Some(ddst), a: Some(drx), b: None })],
    ));
    t.core.activate(task);
}

/// Asserts that two fabrics are in bit-identical machine states.
fn assert_same_state(a: &Fabric, b: &Fabric, ctx: &str) {
    assert_eq!(a.cycle(), b.cycle(), "{ctx}: cycle");
    let (pa, pb) = (a.perf(), b.perf());
    assert_eq!(pa.flops_f16, pb.flops_f16, "{ctx}: flops_f16");
    assert_eq!(pa.flops_f32, pb.flops_f32, "{ctx}: flops_f32");
    assert_eq!(pa.busy_cycles, pb.busy_cycles, "{ctx}: busy_cycles");
    assert_eq!(pa.idle_cycles, pb.idle_cycles, "{ctx}: idle_cycles");
    assert_eq!(pa.flits_routed, pb.flits_routed, "{ctx}: flits_routed");
    assert_eq!(pa.ctrl_stmts, pb.ctrl_stmts, "{ctx}: ctrl_stmts");
    assert_eq!(pa.backpressure, pb.backpressure, "{ctx}: backpressure");
    for y in 0..a.height() {
        for x in 0..a.width() {
            let (ta, tb) = (a.tile(x, y), b.tile(x, y));
            assert_eq!(ta.mem.as_bytes(), tb.mem.as_bytes(), "{ctx}: SRAM of tile ({x},{y})");
            assert_eq!(ta.core.regs, tb.core.regs, "{ctx}: regs of tile ({x},{y})");
            assert_eq!(
                ta.router.queued(),
                tb.router.queued(),
                "{ctx}: router queue of tile ({x},{y})"
            );
            assert_eq!(
                ta.core.ramp_in_residue(),
                tb.core.ramp_in_residue(),
                "{ctx}: ramp-in residue of tile ({x},{y})"
            );
            assert_eq!(
                ta.core.ramp_out_len(),
                tb.core.ramp_out_len(),
                "{ctx}: ramp-out of tile ({x},{y})"
            );
            assert_eq!(
                ta.core.is_quiescent(),
                tb.core.is_quiescent(),
                "{ctx}: core quiescence of tile ({x},{y})"
            );
        }
    }
}

/// Builds the program twice, pins one copy to the reference stepper, and
/// drives both for exactly `cycles` cycles, checking equivalence at every
/// cycle boundary. Returns the pair for any test-specific postconditions.
fn lockstep(build: impl Fn() -> Fabric, cycles: u64) -> (Fabric, Fabric) {
    let mut opt = build();
    let mut reference = build();
    reference.use_reference_stepper(true);
    for c in 0..cycles {
        assert_eq!(
            opt.is_quiescent(),
            reference.is_quiescent(),
            "quiescence diverged at cycle {c}"
        );
        opt.step();
        reference.step();
    }
    assert_same_state(&opt, &reference, "after lockstep");
    assert_eq!(opt.is_quiescent(), reference.is_quiescent(), "final quiescence");
    (opt, reference)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random multi-stream programs on small fabrics: every stream takes a
    /// Manhattan route, streams share links and colors sparsely, some
    /// programs finish and idle, longer ones are still in flight at the
    /// horizon. The two steppers must agree at every cycle.
    #[test]
    fn random_stream_programs_step_identically(
        w in 2usize..5,
        h in 2usize..5,
        endpoints in prop::collection::vec((0usize..16, 0usize..16, 1usize..24), 1..6),
        horizon in 50u64..400,
    ) {
        let build = || {
            let mut f = Fabric::new(w, h);
            for (k, &(s, d, n)) in endpoints.iter().enumerate() {
                let src = (s % w, s / w % h);
                let mut dst = (d % w, d / w % h);
                if dst == src {
                    dst = ((src.0 + 1) % w, src.1);
                }
                let color = k as u8; // disjoint colors: routes never collide
                let data: Vec<F16> =
                    (0..n).map(|i| F16::from_f64(((i * 5 + k) % 17) as f64 * 0.5)).collect();
                route_xy(&mut f, src, dst, color);
                install_stream(&mut f, src, dst, color, &data);
            }
            f
        };
        let (opt, reference) = lockstep(build, horizon);
        // Quiescent runs must also agree on *when* they quiesced.
        prop_assert_eq!(opt.cycle(), reference.cycle());
    }

    /// Fault plans (kills, SRAM flips, link faults, stuck ports) applied to
    /// a running stream: the activity-driven stepper must apply every fault
    /// at the same cycle with the same effect, including faults landing on
    /// tiles the optimizer would otherwise skip.
    #[test]
    fn fault_injection_steps_identically(
        kill_at in 5u64..60,
        flip_at in 1u64..80,
        drop_at in 1u64..40,
        bit in 0u8..16,
        horizon in 100u64..250,
    ) {
        let build = || {
            let mut f = Fabric::new(4, 2);
            let data: Vec<F16> = (0..24).map(|i| F16::from_f64((i % 9) as f64)).collect();
            route_xy(&mut f, (0, 0), (3, 0), 1);
            install_stream(&mut f, (0, 0), (3, 0), 1, &data);
            route_xy(&mut f, (0, 1), (3, 1), 2);
            install_stream(&mut f, (0, 1), (3, 1), 2, &data);
            // The victim address exists on every tile (fresh allocator).
            let addr = f.tile_mut(2, 1).mem.alloc_vec(4, Dtype::F16).unwrap();
            f.arm_faults(
                &FaultPlan::new()
                    .with(flip_at, FaultKind::SramBitFlip { x: 2, y: 1, addr, bit })
                    .with(drop_at, FaultKind::LinkDrop { x: 1, y: 0, port: Port::East })
                    .with(kill_at, FaultKind::TileKill { x: 2, y: 0 }),
            );
            f
        };
        let (opt, reference) = lockstep(build, horizon);
        let (la, lb) = (opt.fault_log().unwrap(), reference.fault_log().unwrap());
        prop_assert_eq!(la.applied.len(), lb.applied.len());
        prop_assert_eq!(la.dropped_flits, lb.dropped_flits);
        prop_assert_eq!(la.corrupted_flits, lb.corrupted_flits);
    }
}

/// The lint fixtures' *broken* programs still execute (that is the point of
/// the dynamic simulator); their wedged end states must be identical under
/// both steppers.
#[test]
fn broken_dangling_route_steps_identically() {
    // (0,0) streams east; (1,0) has no route for (West, color): flits pile
    // up in (1,0)'s input queue until backpressure wedges the sender.
    let data: Vec<F16> = (0..32).map(|i| F16::from_f64(i as f64 * 0.25)).collect();
    let build = || {
        let mut f = Fabric::new(2, 1);
        f.set_route(0, 0, Port::Ramp, 3, &[Port::East]);
        let t = f.tile_mut(0, 0);
        let addr = t.mem.alloc_vec(32, Dtype::F16).unwrap();
        t.mem.store_f16_slice(addr, &data);
        let dsrc = t.core.add_dsr(mk::tensor16(addr, 32));
        let dtx = t.core.add_dsr(mk::tx16(3, 32));
        let task = t.core.add_task(Task::new(
            "send",
            vec![Stmt::Exec(TensorInstr { op: Op::Copy, dst: Some(dtx), a: Some(dsrc), b: None })],
        ));
        t.core.activate(task);
        f
    };
    let (opt, _) = lockstep(build, 300);
    assert!(!opt.is_quiescent(), "the dangling route must wedge, not finish");
}

#[test]
fn broken_unreachable_receive_steps_identically() {
    // A receiver blocks forever on a color nothing sends: the optimized
    // stepper may *skip* the idle-blocked tile but must report identical
    // idle accounting and non-quiescence.
    let build = || {
        let mut f = Fabric::new(2, 2);
        let t = f.tile_mut(1, 1);
        let buf = t.mem.alloc_vec(4, Dtype::F16).unwrap();
        let d_rx = t.core.add_dsr(mk::rx16(4, 4));
        let d_buf = t.core.add_dsr(mk::tensor16(buf, 4));
        let task = t.core.add_task(Task::new(
            "rx",
            vec![Stmt::Exec(TensorInstr {
                op: Op::Copy,
                dst: Some(d_buf),
                a: Some(d_rx),
                b: None,
            })],
        ));
        t.core.activate(task);
        f
    };
    let (opt, _) = lockstep(build, 200);
    assert!(!opt.is_quiescent(), "the receive can never complete");
}

#[test]
fn broken_blocked_forever_task_steps_identically() {
    // An entry task activates a permanently blocked task. A blocked task
    // *reads* as quiescent (which is exactly why BlockedForever needs the
    // static lint) — the steppers must agree on that reading cycle by
    // cycle, including the early cycles where the entry task runs.
    let build = || {
        let mut f = Fabric::new(1, 1);
        let t = f.tile_mut(0, 0);
        let stuck = t.core.add_task(Task::new("stuck", vec![]).blocked());
        let entry = t.core.add_task(Task::new(
            "entry",
            vec![Stmt::TaskCtl { task: stuck, action: TaskAction::Activate }],
        ));
        t.core.activate(entry);
        f
    };
    let (opt, _) = lockstep(build, 150);
    assert!(opt.is_quiescent(), "a blocked task reads as quiescent (the lint's job to flag)");
}

#[test]
fn broken_route_cycle_with_injected_traffic_steps_identically() {
    // The lint fixture's 2x2 routing ring, but with a tile injecting into
    // it: flits orbit forever. Forwarding activity never ceases, so the
    // active set can never shrink to empty.
    let build = || {
        let mut f = Fabric::new(2, 2);
        f.set_route(0, 0, Port::South, 7, &[Port::East]);
        f.set_route(0, 0, Port::Ramp, 7, &[Port::East]); // injection point
        f.set_route(1, 0, Port::West, 7, &[Port::South]);
        f.set_route(1, 1, Port::North, 7, &[Port::West]);
        f.set_route(0, 1, Port::East, 7, &[Port::North]);
        let t = f.tile_mut(0, 0);
        let addr = t.mem.alloc_vec(4, Dtype::F16).unwrap();
        t.mem.store_f16_slice(addr, &[F16::from_f64(1.0); 4]);
        let dsrc = t.core.add_dsr(mk::tensor16(addr, 4));
        let dtx = t.core.add_dsr(mk::tx16(7, 4));
        let task = t.core.add_task(Task::new(
            "inject",
            vec![Stmt::Exec(TensorInstr { op: Op::Copy, dst: Some(dtx), a: Some(dsrc), b: None })],
        ));
        t.core.activate(task);
        f
    };
    let (opt, reference) = lockstep(build, 400);
    assert!(!opt.is_quiescent(), "orbiting flits never drain");
    assert!(opt.perf().flits_routed > 100, "the ring must actually be orbiting");
    assert_eq!(opt.perf().flits_routed, reference.perf().flits_routed);
}

#[test]
fn trace_armed_runs_step_identically() {
    // Arming a trace conservatively wakes every tile; counters, window
    // baselines, and per-tile trace totals must match the reference.
    let data: Vec<F16> = (0..16).map(|i| F16::from_f64((i % 7) as f64)).collect();
    let build = |trace: bool| {
        let mut f = Fabric::new(3, 3);
        route_xy(&mut f, (0, 0), (2, 2), 5);
        install_stream(&mut f, (0, 0), (2, 2), 5, &data);
        if trace {
            f.arm_trace(TraceConfig::default());
        }
        f
    };
    let (mut opt, mut reference) = lockstep(|| build(true), 120);
    let (ta, tb) = (opt.take_trace().unwrap(), reference.take_trace().unwrap());
    assert_eq!(ta.start_cycle, tb.start_cycle);
    assert_eq!(ta.end_cycle, tb.end_cycle);
    for (a, b) in ta.tiles.iter().zip(tb.tiles.iter()) {
        assert_eq!(a.busy_cycles, b.busy_cycles, "tile ({},{})", a.x, a.y);
        assert_eq!(a.idle_cycles, b.idle_cycles, "tile ({},{})", a.x, a.y);
        assert_eq!(a.flits_routed, b.flits_routed, "tile ({},{})", a.x, a.y);
    }
    // Armed and disarmed runs take identical cycle counts.
    let mut plain = build(false);
    let c = plain.run_until_quiescent(10_000).unwrap();
    let mut traced = build(true);
    let ct = traced.run_until_quiescent(10_000).unwrap();
    assert_eq!(c, ct, "tracing must not perturb timing");
}

#[test]
fn mid_run_mutation_reactivates_tiles() {
    // Mutating a quiescent fabric through tile_mut (program loading after
    // a run) must wake the touched tiles under the optimized stepper.
    let data: Vec<F16> = (0..8).map(|i| F16::from_f64(i as f64)).collect();
    let build = || {
        let mut f = Fabric::new(3, 1);
        route_xy(&mut f, (0, 0), (2, 0), 1);
        install_stream(&mut f, (0, 0), (2, 0), 1, &data);
        f
    };
    let mut opt = build();
    let mut reference = build();
    reference.use_reference_stepper(true);
    let ca = opt.run_until_quiescent(10_000).unwrap();
    let cb = reference.run_until_quiescent(10_000).unwrap();
    assert_eq!(ca, cb);
    // Load a second program into both (identical construction order).
    for f in [&mut opt, &mut reference] {
        let t = f.tile_mut(1, 0);
        let addr = t.mem.alloc_vec(4, Dtype::F16).unwrap();
        t.mem.store_f16_slice(addr, &data[..4]);
        let dsrc = t.core.add_dsr(mk::tensor16(addr, 4));
        let dtx = t.core.add_dsr(mk::tx16(9, 4));
        let task = t.core.add_task(Task::new(
            "late",
            vec![Stmt::Exec(TensorInstr { op: Op::Copy, dst: Some(dtx), a: Some(dsrc), b: None })],
        ));
        t.core.activate(task);
        f.set_route(1, 0, Port::Ramp, 9, &[Port::East]);
        f.set_route(2, 0, Port::West, 9, &[Port::Ramp]);
        let t = f.tile_mut(2, 0);
        let out = t.mem.alloc_vec(4, Dtype::F16).unwrap();
        let drx = t.core.add_dsr(mk::rx16(9, 4));
        let ddst = t.core.add_dsr(mk::tensor16(out, 4));
        let task = t.core.add_task(Task::new(
            "late-recv",
            vec![Stmt::Exec(TensorInstr { op: Op::Copy, dst: Some(ddst), a: Some(drx), b: None })],
        ));
        t.core.activate(task);
    }
    assert!(!opt.is_quiescent(), "the late program must be visible immediately");
    let ca = opt.run_until_quiescent(10_000).unwrap();
    let cb = reference.run_until_quiescent(10_000).unwrap();
    assert_eq!(ca, cb, "the late program must run identically");
    assert_same_state(&opt, &reference, "after late program");
}
