//! Property tests for the SpMV tessellation color assignment (Fig. 5).
//!
//! The paper's invariant: at every tile, the tile's own broadcast color and
//! the four colors its neighbors broadcast on are **pairwise distinct**, so
//! the five concurrent streams through a router never share a channel.

use proptest::prelude::*;
use wse_core::routing::{incoming_colors, spmv_color, SPMV_COLORS};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Own color + the four neighbor colors are pairwise distinct at every
    /// tile of an arbitrarily sized fabric.
    #[test]
    fn five_colors_pairwise_distinct_on_every_tile(w in 1usize..40, h in 1usize..40) {
        for y in 0..h {
            for x in 0..w {
                let own = spmv_color(x, y);
                let (xp, xm, yp, ym) = incoming_colors(x, y);
                let five = [own, xp, xm, yp, ym];
                for i in 0..5 {
                    for j in i + 1..5 {
                        prop_assert!(
                            five[i] != five[j],
                            "tile ({}, {}): colors {:?} collide at {} and {}",
                            x, y, five, i, j
                        );
                    }
                }
            }
        }
    }

    /// The assignment is consistent across tiles: what tile (x, y) expects
    /// from a neighbor is exactly that neighbor's own broadcast color.
    #[test]
    fn incoming_colors_match_neighbor_broadcasts(x in 0usize..100, y in 0usize..100) {
        let (xp, xm, yp, ym) = incoming_colors(x, y);
        prop_assert_eq!(xp, spmv_color(x + 1, y));
        prop_assert_eq!(yp, spmv_color(x, y + 1));
        if x > 0 {
            prop_assert_eq!(xm, spmv_color(x - 1, y));
        }
        if y > 0 {
            prop_assert_eq!(ym, spmv_color(x, y - 1));
        }
    }

    /// Colors stay inside the tessellation's reserved band.
    #[test]
    fn colors_stay_in_band(x in 0usize..1000, y in 0usize..1000) {
        let own = spmv_color(x, y);
        let (xp, xm, yp, ym) = incoming_colors(x, y);
        for c in [own, xp, xm, yp, ym] {
            prop_assert!(c < SPMV_COLORS, "color {} outside 0..{}", c, SPMV_COLORS);
        }
    }
}
