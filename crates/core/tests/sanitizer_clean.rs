//! Every shipped kernel must run with the runtime sanitizer armed and
//! produce **zero race trips** — the dynamic face of the static `wse-lint`
//! race pass. `lint_clean.rs` proves the static passes are silent on real
//! programs; this file proves the runtime shadow state agrees, and that
//! arming the sanitizer never perturbs simulated timing (observation-only).

use stencil::decomp::Block2D;
use stencil::dia::DiaMatrix;
use stencil::mesh::Mesh3D;
use stencil::precond::jacobi_scale;
use stencil::problem::manufactured;
use stencil::stencil9::convection_diffusion9;
use wse_arch::Fabric;
use wse_core::allreduce::AllReduce;
use wse_core::bicgstab2d::WaferBicgstab2d;
use wse_core::cg::{CgVariant, WaferCg};
use wse_core::spmv2d::WaferSpmv2d;
use wse_core::{WaferBicgstab, WaferSpmv};
use wse_float::F16;

fn assert_no_trips(fabric: &mut Fabric, what: &str) {
    let rep = fabric.take_sanitizer().expect("sanitizer was armed");
    assert!(
        rep.is_clean(),
        "{what}: expected zero sanitizer trips, got {}:\n{rep}",
        rep.total_trips()
    );
}

fn system3d(w: usize, h: usize, z: usize) -> DiaMatrix<F16> {
    let mesh = Mesh3D::new(w, h, z);
    manufactured(mesh, (1.0, -0.5, 0.5), 11).preconditioned().matrix.convert()
}

fn system2d(w: usize, h: usize, block: Block2D) -> DiaMatrix<F16> {
    let mesh = block.covered_mesh(w, h);
    let a = convection_diffusion9(mesh, (1.5, -0.5));
    let exact: Vec<f64> = (0..mesh.len()).map(|i| ((i % 9) as f64) * 0.125 - 0.5).collect();
    let mut b = vec![0.0; mesh.len()];
    a.matvec_f64(&exact, &mut b);
    jacobi_scale(&a, &b).matrix.convert()
}

#[test]
fn spmv3d_runs_clean_and_cycle_identical_under_sanitizer() {
    let a = system3d(3, 3, 8);
    let n = a.mesh().len();
    let v: Vec<F16> = (0..n).map(|i| F16::from_f64(((i % 7) as f64) * 0.25 - 0.75)).collect();

    // Disarmed baseline.
    let mut plain = Fabric::new(3, 3);
    let kp = WaferSpmv::build(&mut plain, &a);
    let (up, cycles_plain) = kp.run(&mut plain, &v);

    // Armed run: identical cycles, identical result, zero trips.
    let mut fabric = Fabric::new(3, 3);
    let k = WaferSpmv::build(&mut fabric, &a);
    fabric.arm_sanitizer();
    let (u, cycles) = k.run(&mut fabric, &v);
    assert_eq!(cycles, cycles_plain, "sanitizer changed simulated time");
    assert_eq!(u, up, "sanitizer changed the computation");
    assert_no_trips(&mut fabric, "spmv3d 3x3");
}

#[test]
fn spmv2d_runs_clean_under_sanitizer() {
    let block = Block2D::new(4, 4);
    let a = system2d(3, 3, block);
    let n = a.mesh().len();
    let v: Vec<F16> = (0..n).map(|i| F16::from_f64(((i % 5) as f64) * 0.5 - 1.0)).collect();
    let mut fabric = Fabric::new(3, 3);
    let k = WaferSpmv2d::build(&mut fabric, &a, block);
    fabric.arm_sanitizer();
    let _ = k.run(&mut fabric, &v);
    assert_no_trips(&mut fabric, "spmv2d 3x3");
}

#[test]
fn allreduce_runs_clean_under_sanitizer() {
    let mut fabric = Fabric::new(4, 4);
    let k = AllReduce::build(&mut fabric, 4, 4, 24, 25, 26);
    fabric.arm_sanitizer();
    let values: Vec<f32> = (0..16).map(|i| i as f32 * 0.5 - 3.0).collect();
    let (sums, _) = k.run(&mut fabric, &values);
    let expect: f32 = values.iter().sum();
    assert!(sums.iter().all(|&s| (s - expect).abs() < 1e-3));
    assert_no_trips(&mut fabric, "allreduce 4x4");
}

#[test]
fn bicgstab_iterates_clean_under_sanitizer() {
    let a = system3d(3, 3, 6);
    let n = a.mesh().len();
    let b: Vec<F16> = (0..n).map(|i| F16::from_f64(((i % 3) as f64) * 0.25)).collect();
    for fused in [false, true] {
        let mut fabric = Fabric::new(3, 3);
        let k = if fused {
            WaferBicgstab::build_fused(&mut fabric, &a)
        } else {
            WaferBicgstab::build(&mut fabric, &a)
        };
        fabric.arm_sanitizer();
        k.load_rhs(&mut fabric, &b);
        for _ in 0..2 {
            let _ = k.iterate(&mut fabric);
        }
        assert_no_trips(&mut fabric, if fused { "bicgstab fused" } else { "bicgstab" });
    }
}

#[test]
fn cg_iterates_clean_under_sanitizer() {
    let a = system3d(3, 3, 6);
    let n = a.mesh().len();
    let b: Vec<F16> = (0..n).map(|i| F16::from_f64(((i % 4) as f64) * 0.125)).collect();
    for variant in [CgVariant::Standard, CgVariant::SingleReduction] {
        let mut fabric = Fabric::new(3, 3);
        let k = WaferCg::build(&mut fabric, &a, variant);
        fabric.arm_sanitizer();
        k.load_rhs(&mut fabric, &b);
        let _ = k.iterate(&mut fabric, true);
        let _ = k.iterate(&mut fabric, false);
        assert_no_trips(&mut fabric, &format!("cg {variant:?}"));
    }
}

#[test]
fn bicgstab2d_iterates_clean_under_sanitizer() {
    let block = Block2D::new(3, 3);
    let a = system2d(3, 3, block);
    let n = a.mesh().len();
    let b: Vec<F16> = (0..n).map(|i| F16::from_f64(((i % 3) as f64) * 0.25)).collect();
    let mut fabric = Fabric::new(3, 3);
    let k = WaferBicgstab2d::build(&mut fabric, &a, block);
    fabric.arm_sanitizer();
    k.load_rhs(&mut fabric, &b);
    for _ in 0..2 {
        let _ = k.iterate(&mut fabric);
    }
    assert_no_trips(&mut fabric, "bicgstab2d 3x3");
}
