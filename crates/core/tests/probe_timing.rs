use stencil::dia::{DiaMatrix, Offset3};
use stencil::mesh::Mesh3D;
use wse_arch::Fabric;
use wse_core::spmv3d::WaferSpmv;
use wse_float::F16;

fn system(mesh: Mesh3D) -> (DiaMatrix<F16>, Vec<F16>) {
    let mut a = DiaMatrix::<f64>::new(mesh, &Offset3::seven_point());
    for (x, y, z) in mesh.iter() {
        a.set(x, y, z, Offset3::CENTER, 1.0);
        for off in &Offset3::seven_point()[1..] {
            if mesh.neighbor(x, y, z, off.dx, off.dy, off.dz).is_some() {
                a.set(x, y, z, *off, -0.125);
            }
        }
    }
    let v: Vec<F16> =
        (0..mesh.len()).map(|i| F16::from_f64(((i % 8) as f64 - 4.0) * 0.25)).collect();
    (a.convert(), v)
}

#[test]
#[ignore]
fn probe() {
    for (w, h) in [(3usize, 3usize), (5, 5), (8, 8)] {
        for z in [64usize, 256, 1024] {
            let mesh = Mesh3D::new(w, h, z);
            let (a, v) = system(mesh);
            let mut fabric = Fabric::new(w, h);
            let spmv = WaferSpmv::build(&mut fabric, &a);
            let (_, cycles) = spmv.run(&mut fabric, &v);
            let perf = fabric.perf();
            println!(
                "fabric {w}x{h} z={z}: cycles={cycles} cyc/z={:.2} busy/core/z={:.2}",
                cycles as f64 / z as f64,
                perf.busy_cycles as f64 / (w * h * z) as f64
            );
        }
    }
}
