//! Whole-ensemble verification across wafer seams: every shipped
//! multi-wafer build must lint clean **with seam channels in the model**
//! (the per-shard `debug_lint` the builders already run cannot see cross-
//! wafer producers), and seam-specific breakage — a route cycle threaded
//! through seam channels, a seam whose ingress can't forward — must be
//! caught statically and reproduce dynamically.

use stencil::dia::DiaMatrix;
use stencil::mesh::Mesh3D;
use stencil::precond::jacobi_scale;
use stencil::stencil7::poisson;
use wse_arch::dsr::mk;
use wse_arch::instr::{Op, Stmt, Task, TensorInstr};
use wse_arch::types::{Dtype, Port};
use wse_core::multi::{build_transparent, WaferBicgstabMulti};
use wse_float::F16;
use wse_lint::Rule;
use wse_multi::{HostLink, MultiFabric};

fn test_system(nx: usize, ny: usize, nz: usize) -> DiaMatrix<F16> {
    let mesh = Mesh3D::new(nx, ny, nz);
    let a64 = poisson(mesh);
    let b64: Vec<f64> = (0..mesh.len()).map(|i| ((i * 29 % 101) as f64 / 101.0) - 0.4).collect();
    jacobi_scale(&a64, &b64).matrix.convert()
}

fn assert_ensemble_clean(multi: &MultiFabric, what: &str) {
    let diags = multi.lint();
    assert!(
        diags.is_empty(),
        "{what}: expected a clean ensemble lint, got {} diagnostic(s):\n{}",
        diags.len(),
        diags.iter().map(|d| format!("  {d}\n")).collect::<String>()
    );
}

#[test]
fn transparent_splits_lint_clean_across_seams() {
    // The fused single-wafer program split at every k: all the routes that
    // crossed a cut are now seam channels the whole-ensemble passes must
    // follow to find each receive's producer.
    let a = test_system(8, 4, 6);
    for k in [2usize, 3, 4] {
        let (_, multi) = build_transparent(&a, k, HostLink::ideal());
        assert_ensemble_clean(&multi, &format!("transparent split k={k}"));
    }
}

#[test]
fn hierarchical_builds_lint_clean_across_seams() {
    // The distributed solver's own seam channels (halo colors through
    // declared edge ports) at k=2 and the acceptance-floor k=4.
    let a = test_system(8, 4, 6);
    for k in [2usize, 4] {
        let mut multi = MultiFabric::new(8, 4, k, HostLink::paper_default());
        let _solver = WaferBicgstabMulti::build(&mut multi, &a);
        assert_eq!(multi.seam_edges().len(), (k - 1) * 4 * 2 * 2, "2 colors x 2 dirs per row");
        assert_ensemble_clean(&multi, &format!("hierarchical build k={k}"));
    }
}

/// Color 5 circulating through both wafers: across the seam eastward on
/// row 1, up the far column, back across the seam westward on row 0, and
/// down the near column. Each shard's route table is acyclic on its own
/// (the router even forbids same-port reflection); only the ensemble
/// graph with seam edges closes the loop.
fn seam_cycle_ensemble() -> MultiFabric {
    let mut multi = MultiFabric::new(2, 2, 2, HostLink::ideal());
    {
        let s = multi.shard_mut(0);
        s.open_edge(0, 1, Port::East, 5);
        s.open_edge(0, 0, Port::East, 5);
        s.set_route(0, 0, Port::East, 5, &[Port::South]);
        s.set_route(0, 1, Port::North, 5, &[Port::East]);
    }
    {
        let s = multi.shard_mut(1);
        s.open_edge(0, 1, Port::West, 5);
        s.open_edge(0, 0, Port::West, 5);
        s.set_route(0, 1, Port::West, 5, &[Port::North]);
        s.set_route(0, 0, Port::South, 5, &[Port::West]);
    }
    multi.pair_seams();
    multi
}

#[test]
fn seam_route_cycle_is_caught() {
    let multi = seam_cycle_ensemble();
    let diags = multi.lint();
    assert!(
        diags.iter().any(|d| d.rule == Rule::RouteCycle
            && d.message.contains("seam channels")
            && d.message.contains("wafer 0")
            && d.message.contains("wafer 1")),
        "seam-crossing route cycle must be reported with both wafers: {diags:#?}"
    );
}

/// Wafer 0 streams 64 words of color 7 across the seam; wafer 1 declared
/// the matching edge ingress but configured no forwarding rule for
/// (West, 7). The ingress queue fills, seam credits stop returning, and
/// the sender wedges.
fn seam_credit_starved_ensemble() -> MultiFabric {
    const N: u32 = 64;
    let mut multi = MultiFabric::new(2, 1, 2, HostLink::ideal());
    {
        let s = multi.shard_mut(0);
        s.open_edge(0, 0, Port::East, 7);
        s.set_route(0, 0, Port::Ramp, 7, &[Port::East]);
        let t = s.tile_mut(0, 0);
        let buf = t.mem.alloc_vec(N, Dtype::F16).unwrap();
        let d_src = t.core.add_dsr(mk::tensor16(buf, N));
        let d_tx = t.core.add_dsr(mk::tx16(7, N));
        let task = t.core.add_task(Task::new(
            "feeder",
            vec![Stmt::Exec(TensorInstr {
                op: Op::Copy,
                dst: Some(d_tx),
                a: Some(d_src),
                b: None,
            })],
        ));
        t.core.mark_entry(task);
        t.core.activate(task);
    }
    multi.shard_mut(1).open_edge(0, 0, Port::West, 7);
    multi.pair_seams();
    multi
}

#[test]
fn seam_credit_starvation_is_caught_with_witness() {
    let multi = seam_credit_starved_ensemble();
    let diags = multi.lint();
    let starved: Vec<_> = diags.iter().filter(|d| d.rule == Rule::CreditStarvation).collect();
    assert_eq!(starved.len(), 1, "exactly the fed seam fires: {diags:#?}");
    let d = starved[0];
    // The witness names the color, both seam endpoints, and the missing
    // ingress rule.
    assert!(d.message.contains("color 7"), "{}", d.message);
    assert!(d.message.contains("wafer 0"), "{}", d.message);
    assert!(d.message.contains("wafer 1"), "{}", d.message);
    assert!(d.message.contains("no rule"), "{}", d.message);
}

#[test]
fn seam_credit_starvation_wedges_dynamically() {
    let mut multi = seam_credit_starved_ensemble();
    let err = multi
        .run_linked(20_000, 2_048)
        .expect_err("the sending wafer must wedge on seam backpressure");
    assert!(!err.deadline_exceeded, "a zero-progress stall, not a slow run: {err:?}");
}
