use stencil::dia::DiaMatrix;
use stencil::mesh::Mesh3D;
use stencil::problem::manufactured;
use wse_arch::Fabric;
use wse_core::bicgstab::WaferBicgstab;
use wse_float::F16;

#[test]
#[ignore]
fn probe() {
    for n in [8usize, 16, 24] {
        let mesh = Mesh3D::new(n, n, 8);
        let p = manufactured(mesh, (1.0, -0.5, 0.5), 11).preconditioned();
        let a: DiaMatrix<F16> = p.matrix.convert();
        let b: Vec<F16> = p.rhs.iter().map(|&v| F16::from_f64(v)).collect();
        let mut f1 = Fabric::new(n, n);
        let s = WaferBicgstab::build(&mut f1, &a);
        s.load_rhs(&mut f1, &b);
        let c1 = s.iterate(&mut f1);
        let mut f2 = Fabric::new(n, n);
        let sf = WaferBicgstab::build_fused(&mut f2, &a);
        sf.load_rhs(&mut f2, &b);
        let c2 = sf.iterate(&mut f2);
        println!(
            "{n}x{n}: standard allreduce {} total {} | fused allreduce {} total {}",
            c1.allreduce,
            c1.total(),
            c2.allreduce,
            c2.total()
        );
    }
}
