//! Every shipped kernel configuration must pass `wse-lint` with zero
//! diagnostics. This is the linter's "no false positives on real programs"
//! contract: the fixture tests in `wse-lint` prove each rule *fires* on a
//! broken program; this file proves none of them fire on a working one.

use stencil::decomp::Block2D;
use stencil::dia::DiaMatrix;
use stencil::mesh::Mesh3D;
use stencil::precond::jacobi_scale;
use stencil::problem::manufactured;
use stencil::stencil9::convection_diffusion9;
use wse_arch::Fabric;
use wse_core::allreduce::AllReduce;
use wse_core::bicgstab2d::WaferBicgstab2d;
use wse_core::cg::{CgVariant, WaferCg};
use wse_core::spmv2d::WaferSpmv2d;
use wse_core::{WaferBicgstab, WaferSpmv};
use wse_float::F16;
use wse_lint::lint;

fn assert_clean(fabric: &Fabric, what: &str) {
    let diags = lint(fabric);
    assert!(
        diags.is_empty(),
        "{what}: expected zero diagnostics, got {}:\n{}",
        diags.len(),
        diags.iter().map(|d| format!("  {d}")).collect::<Vec<_>>().join("\n")
    );
}

/// A unit-diagonal 7-point system sized for a `w × h` fabric.
fn system3d(w: usize, h: usize, z: usize) -> DiaMatrix<F16> {
    let mesh = Mesh3D::new(w, h, z);
    manufactured(mesh, (1.0, -0.5, 0.5), 11).preconditioned().matrix.convert()
}

/// A unit-diagonal 9-point 2-D system covering `w × h` tiles of `block`.
fn system2d(w: usize, h: usize, block: Block2D) -> DiaMatrix<F16> {
    let mesh = block.covered_mesh(w, h);
    let a = convection_diffusion9(mesh, (1.5, -0.5));
    let exact: Vec<f64> = (0..mesh.len()).map(|i| ((i % 9) as f64) * 0.125 - 0.5).collect();
    let mut b = vec![0.0; mesh.len()];
    a.matvec_f64(&exact, &mut b);
    jacobi_scale(&a, &b).matrix.convert()
}

#[test]
fn spmv3d_lints_clean() {
    for (w, h) in [(3, 3), (2, 4)] {
        let a = system3d(w, h, 8);
        let mut fabric = Fabric::new(w, h);
        let _ = WaferSpmv::build(&mut fabric, &a);
        assert_clean(&fabric, &format!("spmv3d {w}x{h}"));
    }
}

#[test]
fn spmv3d_single_tile_column_lints_clean() {
    // The degenerate 1x1 mapping: no neighbors, no FIFOs, no sumtask.
    let a = system3d(1, 1, 8);
    let mut fabric = Fabric::new(1, 1);
    let _ = WaferSpmv::build(&mut fabric, &a);
    assert_clean(&fabric, "spmv3d 1x1");
}

#[test]
fn spmv2d_lints_clean() {
    let block = Block2D::new(4, 4);
    let a = system2d(3, 3, block);
    let mut fabric = Fabric::new(3, 3);
    let _ = WaferSpmv2d::build(&mut fabric, &a, block);
    assert_clean(&fabric, "spmv2d 3x3");
}

#[test]
fn allreduce_standalone_lints_clean() {
    // Includes shapes where a center row/column sits on the fabric edge
    // (empty half-streams) and asymmetric regions.
    for (w, h) in [(2, 2), (3, 3), (4, 4), (5, 3), (2, 7)] {
        let mut fabric = Fabric::new(w, h);
        let _ = AllReduce::build(&mut fabric, w, h, 24, 25, 26);
        assert_clean(&fabric, &format!("allreduce {w}x{h}"));
    }
}

#[test]
fn bicgstab_standard_lints_clean() {
    let a = system3d(3, 3, 6);
    let mut fabric = Fabric::new(3, 3);
    let _ = WaferBicgstab::build(&mut fabric, &a);
    assert_clean(&fabric, "bicgstab standard 3x3");
}

#[test]
fn bicgstab_fused_lints_clean() {
    let a = system3d(3, 3, 6);
    let mut fabric = Fabric::new(3, 3);
    let _ = WaferBicgstab::build_fused(&mut fabric, &a);
    assert_clean(&fabric, "bicgstab fused 3x3");
}

#[test]
fn cg_lints_clean_in_both_variants() {
    for variant in [CgVariant::Standard, CgVariant::SingleReduction] {
        let a = system3d(3, 3, 6);
        let mut fabric = Fabric::new(3, 3);
        let _ = WaferCg::build(&mut fabric, &a, variant);
        assert_clean(&fabric, &format!("cg {variant:?} 3x3"));
    }
}

#[test]
fn bicgstab2d_lints_clean() {
    let block = Block2D::new(3, 3);
    let a = system2d(3, 3, block);
    let mut fabric = Fabric::new(3, 3);
    let _ = WaferBicgstab2d::build(&mut fabric, &a, block);
    assert_clean(&fabric, "bicgstab2d 3x3");
}
