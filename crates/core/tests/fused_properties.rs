//! Property tests for the fused single-reduction multi-wafer BiCGStab:
//! across randomized problem shapes, right-hand sides, and horizons, the
//! fused solver must (a) track the classic overlapped solver's residual
//! trajectory and (b) never return a silently wrong answer — the
//! fp16-reported residual and the f64 true residual of the returned
//! iterate must agree about how far the solve got, for both solvers.

use proptest::prelude::*;
use stencil::dia::DiaMatrix;
use stencil::mesh::Mesh3D;
use stencil::precond::jacobi_scale;
use stencil::stencil7::poisson;
use wse_core::recovery::true_rel_residual;
use wse_core::WaferBicgstabMulti;
use wse_float::F16;
use wse_multi::{HostLink, MultiFabric};

/// A diagonally preconditioned Poisson system with a seeded
/// (splitmix-style) right-hand side.
fn system(nx: usize, ny: usize, nz: usize, seed: u64) -> (DiaMatrix<F16>, Vec<F16>) {
    let mesh = Mesh3D::new(nx, ny, nz);
    let a64 = poisson(mesh);
    let b64: Vec<f64> = (0..mesh.len())
        .map(|i| {
            let j = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(seed);
            ((j >> 33) % 101) as f64 / 101.0 - 0.4
        })
        .collect();
    let sys = jacobi_scale(&a64, &b64);
    (sys.matrix.convert(), sys.rhs.iter().map(|&v| F16::from_f64(v)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn fused_tracks_classic_and_is_never_silently_wrong(
        half in 2usize..4,
        ny in 2usize..5,
        nz in 4usize..9,
        seed in 0u64..(1u64 << 48),
        iters in 3usize..6,
    ) {
        let (nx, k) = (2 * half, 2);
        let (a, b) = system(nx, ny, nz, seed);

        let mut mc = MultiFabric::new(nx, ny, k, HostLink::paper_default());
        let sc = WaferBicgstabMulti::build(&mut mc, &a);
        let (xc, stc) = sc.solve(&mut mc, &b, iters);

        let mut mf = MultiFabric::new(nx, ny, k, HostLink::paper_default());
        let sf = WaferBicgstabMulti::build_fused(&mut mf, &a);
        let (xf, stf) = sf.solve(&mut mf, &b, iters);

        // Same algorithm with rearranged recurrences in fp16/fp32: the
        // residual trajectories agree to a modest ratio with an absolute
        // floor, at every committed iteration.
        prop_assert_eq!(stf.residuals.len(), stc.residuals.len());
        for (i, (got, want)) in stf.residuals.iter().zip(&stc.residuals).enumerate() {
            let close = (got - want).abs() < 5e-4 || (got / want < 5.0 && want / got < 5.0);
            prop_assert!(close, "iteration {}: fused {} vs classic {}", i, got, want);
        }

        // Never silently wrong: whatever residual a solver *reports*, the
        // f64 true residual of the iterate it *returns* must be consistent
        // with it (up to fp16 quantization of x and the recursive-residual
        // drift both solvers share).
        for (x, st, name) in [(&xc, &stc, "classic"), (&xf, &stf, "fused")] {
            let reported = *st.residuals.last().unwrap();
            let truth = true_rel_residual(&a, x, &b);
            prop_assert!(
                truth < 10.0 * reported + 5e-2,
                "{} solver reported {} but the true residual is {}",
                name, reported, truth
            );
        }
    }
}
