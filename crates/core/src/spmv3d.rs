//! The 3D 7-point SpMV kernel — Listing 1 / Fig. 4 of the paper — now a
//! façade over [`wse_dsl::zcolumn`], where the Z-column emitter moved so
//! the DSL lowering layer and the hand-written solver drivers share one
//! implementation. The per-tile dataflow is unchanged:
//!
//! * the local iterate `v` is **broadcast** on the tile's own color to its
//!   four neighbors and looped back to its own ramp,
//! * the result is **initialized** by the in-memory `zm` term
//!   (`u[z] = zm_a[z] · v[z−1]`, via a zero-padded copy of `v`),
//! * the `zp` term is accumulated from memory with the fused FMAC
//!   (`u[z] += zp_a[z] · v[z+1]`),
//! * four background threads multiply the **incoming neighbor streams** by
//!   the `xp/xm/yp/ym` coefficient vectors into four hardware FIFOs,
//! * a high-priority `sumtask`, activated by FIFO pushes, drains the FIFOs
//!   into the result through persistent accumulator DSRs,
//! * the unit main diagonal is handled by a thread that **adds the looped-
//!   back local stream directly** — "Because the diagonal is all ones there
//!   is no FIFO and no multiplication",
//! * a chain of two-way barriers (block/unblock/activate) detects completion
//!   and hands control back (the paper's `xdone/ydone/.../xycdone` tree).
//!
//! [`WaferSpmv::build`] routes through [`wse_dsl::lower`] — the 7-point
//! spec lowers onto the Listing-1 dataflow whenever the matrix diagonal is
//! unit, which `build` asserts. The emitted program is byte-identical to
//! the original hand-written builder's (`wse-serve`'s
//! `tests/dsl_retrofit.rs` pins the program digest).

use stencil::decomp::Mapping3D;
use stencil::dia::DiaMatrix;
use stencil::precond::has_unit_diagonal;
use wse_arch::Fabric;
use wse_dsl::ir::StencilSpec;
use wse_float::F16;

pub use wse_dsl::zcolumn::{
    build_overlap_halo, build_spmv_tile, build_spmv_tile_halo, build_spmv_tile_naive,
    build_spmv_tile_overlapped, load_coefficients, load_iterate, read_result, tile_coefficients,
    HaloBuffers, OverlapHalo, SpmvLayout, SpmvTasks, FIFO_DEPTH, HALO_RECV_SLOT, HALO_SEND_SLOT,
};

/// The whole-fabric SpMV: mapping, per-tile layouts, and per-tile task ids.
pub struct WaferSpmv {
    mapping: Mapping3D,
    layouts: Vec<SpmvLayout>,
    tasks: Vec<SpmvTasks>,
}

impl WaferSpmv {
    /// Distributes a unit-diagonal 7-point matrix across the fabric and
    /// builds every tile's program through the DSL lowering layer.
    ///
    /// # Panics
    /// Panics if the matrix is not unit-diagonal 7-point, or the mesh does
    /// not fit the fabric, or a tile runs out of SRAM.
    pub fn build(fabric: &mut Fabric, a: &DiaMatrix<F16>) -> WaferSpmv {
        assert!(has_unit_diagonal(a), "wafer SpMV requires a diagonally preconditioned matrix");
        assert_eq!(a.offsets().len(), 7, "wafer SpMV requires a 7-point stencil");
        let a64: DiaMatrix<f64> = a.convert();
        let spec = StencilSpec::var_seven_point_3d();
        let lowered = wse_dsl::lower(fabric, &spec, &a64, None)
            .unwrap_or_else(|e| panic!("3D SpMV lowering rejected: {e}"));
        let (mapping, layouts, tasks) = lowered.into_zcolumn_parts();
        WaferSpmv { mapping, layouts, tasks }
    }

    /// The mesh→fabric mapping in use.
    pub fn mapping(&self) -> Mapping3D {
        self.mapping
    }

    fn tile_index(&self, x: usize, y: usize) -> usize {
        y * self.mapping.fabric_w + x
    }

    /// Executes `u = A v` on the fabric. `v` is in global mesh order; the
    /// result is returned in global mesh order. Returns the cycles the
    /// operation took.
    ///
    /// # Panics
    /// Panics if the fabric fails to quiesce (deadlock) or `v` has the wrong
    /// length.
    pub fn run(&self, fabric: &mut Fabric, v: &[F16]) -> (Vec<F16>, u64) {
        let m = self.mapping;
        assert_eq!(v.len(), m.cores() * m.z, "iterate length mismatch");
        for y in 0..m.fabric_h {
            for x in 0..m.fabric_w {
                let i = self.tile_index(x, y);
                let rows = m.core_rows(x, y);
                load_iterate(fabric.tile_mut(x, y), &self.layouts[i], &v[rows]);
                fabric.tile_mut(x, y).core.activate(self.tasks[i].start);
            }
        }
        let budget = 64 * m.z as u64 + 10_000;
        let cycles = fabric
            .run_until_quiescent(budget)
            .unwrap_or_else(|e| panic!("wafer SpMV stalled: {e}"));
        let mut out = vec![F16::ZERO; v.len()];
        for y in 0..m.fabric_h {
            for x in 0..m.fabric_w {
                let i = self.tile_index(x, y);
                let rows = m.core_rows(x, y);
                let u = read_result(fabric.tile(x, y), &self.layouts[i]);
                out[rows].copy_from_slice(&u);
            }
        }
        (out, cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::configure_spmv_routes;
    use stencil::dia::Offset3;
    use stencil::mesh::Mesh3D;
    use stencil::precond::jacobi_scale;
    use stencil::stencil7::{convection_diffusion, poisson};

    /// Builds an exact-arithmetic test system: coefficients and iterate are
    /// small powers of two, so fp16 arithmetic is exact and the wafer result
    /// must equal the host result bit-for-bit regardless of summation order.
    fn exact_system(mesh: Mesh3D) -> (DiaMatrix<F16>, Vec<F16>) {
        let a = poisson(mesh);
        let sys = jacobi_scale(&a, &vec![1.0; mesh.len()]);
        // After scaling by 1/6 the off-diagonals are -1/6 (inexact!).
        // Instead build a hand-made unit-diagonal matrix with -1/8 couplings.
        let mut a = DiaMatrix::<f64>::new(mesh, &Offset3::seven_point());
        for (x, y, z) in mesh.iter() {
            a.set(x, y, z, Offset3::CENTER, 1.0);
            for off in &Offset3::seven_point()[1..] {
                if mesh.neighbor(x, y, z, off.dx, off.dy, off.dz).is_some() {
                    a.set(x, y, z, *off, -0.125);
                }
            }
        }
        let _ = sys;
        let v: Vec<F16> =
            (0..mesh.len()).map(|i| F16::from_f64(((i % 8) as f64 - 4.0) * 0.25)).collect();
        (a.convert(), v)
    }

    #[test]
    fn wafer_spmv_matches_host_exactly_on_exact_data() {
        let mesh = Mesh3D::new(3, 3, 8);
        let (a, v) = exact_system(mesh);
        let mut fabric = Fabric::new(3, 3);
        let spmv = WaferSpmv::build(&mut fabric, &a);
        let (wafer, cycles) = spmv.run(&mut fabric, &v);
        let mut host = vec![F16::ZERO; mesh.len()];
        a.matvec(&v, &mut host);
        for i in 0..mesh.len() {
            assert_eq!(
                wafer[i].to_bits(),
                host[i].to_bits(),
                "mismatch at {i}: wafer {} host {}",
                wafer[i],
                host[i]
            );
        }
        assert!(cycles > 0);
    }

    #[test]
    fn wafer_spmv_close_to_f64_on_general_data() {
        let mesh = Mesh3D::new(4, 3, 12);
        let a64 = convection_diffusion(mesh, (1.0, -0.5, 0.25), 1.0);
        let sys = jacobi_scale(&a64, &vec![0.0; mesh.len()]);
        let a: DiaMatrix<F16> = sys.matrix.convert();
        let v: Vec<F16> =
            (0..mesh.len()).map(|i| F16::from_f64(((i * 37 % 97) as f64 / 97.0) - 0.5)).collect();
        let mut fabric = Fabric::new(4, 3);
        let spmv = WaferSpmv::build(&mut fabric, &a);
        let (wafer, _) = spmv.run(&mut fabric, &v);
        // f64 reference on the same (rounded) coefficients.
        let vf: Vec<f64> = v.iter().map(|h| h.to_f64()).collect();
        let mut reference = vec![0.0; mesh.len()];
        a.matvec_f64(&vf, &mut reference);
        for i in 0..mesh.len() {
            let err = (wafer[i].to_f64() - reference[i]).abs();
            // 7 terms, each O(1): a handful of fp16 ulps.
            assert!(
                err < 8.0 * 0.001,
                "element {i}: wafer {} vs {reference:.5?}",
                wafer[i].to_f64()
            );
        }
    }

    #[test]
    fn repeated_spmv_reuses_program() {
        // Running the kernel twice must work (fabric DSRs re-armed by
        // InitDsr) and give identical results for identical input.
        let mesh = Mesh3D::new(2, 2, 6);
        let (a, v) = exact_system(mesh);
        let mut fabric = Fabric::new(2, 2);
        let spmv = WaferSpmv::build(&mut fabric, &a);
        let (r1, _) = spmv.run(&mut fabric, &v);
        let (r2, _) = spmv.run(&mut fabric, &v);
        assert_eq!(r1, r2);
    }

    #[test]
    fn flop_count_matches_table1_for_interior_tiles() {
        // An interior tile executes 12 fp16 flops per meshpoint per SpMV:
        // zm mul (1) + zp fused (2) + 4 × (mul+add) (8) + diagonal add (1).
        let mesh = Mesh3D::new(3, 3, 16);
        let (a, v) = exact_system(mesh);
        let mut fabric = Fabric::new(3, 3);
        let spmv = WaferSpmv::build(&mut fabric, &a);
        let _ = spmv.run(&mut fabric, &v);
        let interior = fabric.tile(1, 1).core.perf;
        assert_eq!(interior.flops_f16, 12 * 16, "12 flops per z element");
    }

    #[test]
    fn single_tile_column_works() {
        // 1×1 fabric region: no neighbors at all; only z terms + loopback.
        let mesh = Mesh3D::new(1, 1, 10);
        let (a, v) = exact_system(mesh);
        let mut fabric = Fabric::new(1, 1);
        let spmv = WaferSpmv::build(&mut fabric, &a);
        let (wafer, _) = spmv.run(&mut fabric, &v);
        let mut host = vec![F16::ZERO; mesh.len()];
        a.matvec(&v, &mut host);
        for i in 0..mesh.len() {
            assert_eq!(wafer[i].to_bits(), host[i].to_bits());
        }
    }

    #[test]
    fn cycles_scale_linearly_in_z() {
        let run_z = |z: usize| -> u64 {
            let mesh = Mesh3D::new(3, 3, z);
            let (a, v) = exact_system(mesh);
            let mut fabric = Fabric::new(3, 3);
            let spmv = WaferSpmv::build(&mut fabric, &a);
            spmv.run(&mut fabric, &v).1
        };
        let c32 = run_z(32);
        let c128 = run_z(128);
        // Slope between 2 and 8 cycles per z element once overheads wash out.
        let slope = (c128 - c32) as f64 / 96.0;
        assert!((2.0..8.0).contains(&slope), "cycles/z slope {slope}");
    }

    #[test]
    fn naive_spmv_matches_but_is_slower() {
        // Same answers, more cycles: the FIFO-decoupled dataflow's whole
        // point. (At small z the fixed overheads shrink the gap; the slope
        // difference is what matters.)
        let mesh = Mesh3D::new(3, 3, 256);
        let (a, v) = exact_system(mesh);
        // Reference: the Listing-1 kernel.
        let mut f1 = Fabric::new(3, 3);
        let spmv = WaferSpmv::build(&mut f1, &a);
        let (fast_out, fast_cycles) = spmv.run(&mut f1, &v);

        // Naive: build per tile with the ablation builder.
        let mut f2 = Fabric::new(3, 3);
        let mapping = Mapping3D::new(mesh, 3, 3);
        configure_spmv_routes(&mut f2, 3, 3);
        let mut layouts = Vec::new();
        let mut tasks = Vec::new();
        for y in 0..3 {
            for x in 0..3 {
                let tile = f2.tile_mut(x, y);
                let layout = SpmvLayout::alloc(tile, 256);
                let coeffs = tile_coefficients(&a, x, y);
                load_coefficients(tile, &layout, &coeffs);
                let t = build_spmv_tile_naive(tile, x, y, 3, 3, layout);
                layouts.push(layout);
                tasks.push(t);
            }
        }
        for y in 0..3 {
            for x in 0..3 {
                let i = y * 3 + x;
                let rows = mapping.core_rows(x, y);
                load_iterate(f2.tile_mut(x, y), &layouts[i], &v[rows]);
                f2.tile_mut(x, y).core.activate(tasks[i].start);
            }
        }
        let naive_cycles = f2.run_until_quiescent(1_000_000).unwrap();
        let mut naive_out = vec![F16::ZERO; mesh.len()];
        for y in 0..3 {
            for x in 0..3 {
                let i = y * 3 + x;
                let rows = mapping.core_rows(x, y);
                let u = read_result(f2.tile(x, y), &layouts[i]);
                naive_out[rows].copy_from_slice(&u);
            }
        }
        // Same result (exact arithmetic ⇒ order irrelevant)…
        for i in 0..mesh.len() {
            assert_eq!(naive_out[i].to_bits(), fast_out[i].to_bits(), "element {i}");
        }
        // …but meaningfully more cycles.
        assert!(
            naive_cycles as f64 > 1.2 * fast_cycles as f64,
            "naive {naive_cycles} vs decoupled {fast_cycles}"
        );
    }

    #[test]
    #[should_panic(expected = "diagonally preconditioned")]
    fn rejects_non_unit_diagonal() {
        let mesh = Mesh3D::new(2, 2, 4);
        let a: DiaMatrix<F16> = poisson(mesh).convert();
        let mut fabric = Fabric::new(2, 2);
        WaferSpmv::build(&mut fabric, &a);
    }
}
