//! The SpMV tessellation routing pattern (Fig. 5) — now a façade over
//! [`wse_dsl::tess`], where the implementation (and its tests) moved so the
//! DSL lowering layer and the hand-written drivers share one channel
//! assignment.

pub use wse_dsl::tess::{
    configure_spmv_routes, incoming_colors, spmv_color, verify_tessellation, SPMV_COLORS,
    SPMV_COLOR_BASE,
};
