//! Execution-target abstraction for the phase-driven solvers.
//!
//! The BiCGStab driver only needs a handful of host operations between
//! fabric-quiescent points: activate a task on a tile, run to quiescence
//! under the stall watchdog, and move data in and out of tile SRAM and
//! registers. [`WaferExec`] captures exactly that surface, so the same
//! solver drives either a single [`Fabric`] or a [`MultiFabric`] ensemble
//! of wafers **transparently** — the ensemble addresses tiles by their
//! *global* coordinates and steps its wafers in lockstep through the host
//! interconnect ([`wse_multi::HostLink`]). Under the ideal link, the
//! split execution is bit-for-bit identical to the fused fabric, which is
//! the cross-validation backbone of the multi-wafer runtime.

use crate::recovery::{EnsembleCheckpoint, FabricCheckpoint};
use wse_arch::fabric::StallReport;
use wse_arch::types::{Reg, TaskId};
use wse_arch::Fabric;
use wse_float::F16;
use wse_multi::MultiFabric;

/// A machine the phase-driven solvers can run on: a single wafer or a
/// linked multi-wafer ensemble addressed by global tile coordinates.
///
/// Beyond the data-movement surface, the trait carries the recovery
/// surface the checkpoint/rollback engine
/// ([`crate::recovery::run_with_recovery`]) needs: snapshot, restore,
/// transient reset, and trace markers — so the same engine drives a
/// single wafer or a whole ensemble.
pub trait WaferExec {
    /// Host-side snapshot of the solver-mutable machine state.
    type Checkpoint;

    /// Global tile-grid dimensions `(width, height)`.
    fn dims(&self) -> (usize, usize);
    /// Activates a task on tile `(x, y)` (global coordinates).
    fn activate(&mut self, x: usize, y: usize, task: TaskId);
    /// Runs to quiescence under the stall watchdog, bracketed as trace
    /// phase `name`. Returns cycles elapsed.
    ///
    /// # Errors
    /// Returns the watchdog's [`StallReport`] on a stall or exceeded
    /// budget.
    fn run_phase(
        &mut self,
        name: &'static str,
        budget: u64,
        window: u64,
    ) -> Result<u64, Box<StallReport>>;
    /// Writes fp16 words into tile `(x, y)`'s SRAM.
    fn store_f16(&mut self, x: usize, y: usize, addr: u32, data: &[F16]);
    /// Reads fp16 words from tile `(x, y)`'s SRAM.
    fn load_f16(&self, x: usize, y: usize, addr: u32, len: usize) -> Vec<F16>;
    /// Sets a core register on tile `(x, y)`.
    fn set_reg(&mut self, x: usize, y: usize, reg: Reg, value: f32);
    /// Reads a core register on tile `(x, y)`.
    fn reg(&self, x: usize, y: usize, reg: Reg) -> f32;
    /// Snapshots the solver-mutable state. Call only at a quiescent
    /// boundary (deferred idle accounting is settled first, so the
    /// capture is bit-exact under the activity-driven stepper).
    fn checkpoint(&mut self) -> Self::Checkpoint;
    /// Rolls back to a snapshot, discarding whatever a fault left in
    /// flight.
    fn restore_checkpoint(&mut self, ckpt: &Self::Checkpoint);
    /// Clears transient execution state so a retry starts from a clean
    /// machine (programs, SRAM, and clocks survive).
    fn reset_transient(&mut self);
    /// Drops a zero-length trace marker (no-op when untraced).
    fn phase_marker(&mut self, name: &'static str);
}

impl WaferExec for Fabric {
    type Checkpoint = FabricCheckpoint;

    fn dims(&self) -> (usize, usize) {
        (self.width(), self.height())
    }

    fn activate(&mut self, x: usize, y: usize, task: TaskId) {
        self.tile_mut(x, y).core.activate(task);
    }

    fn run_phase(
        &mut self,
        name: &'static str,
        budget: u64,
        window: u64,
    ) -> Result<u64, Box<StallReport>> {
        self.phase_begin(name);
        let r = self.run_watched(budget, window);
        self.phase_end();
        r
    }

    fn store_f16(&mut self, x: usize, y: usize, addr: u32, data: &[F16]) {
        self.tile_mut(x, y).mem.store_f16_slice(addr, data);
    }

    fn load_f16(&self, x: usize, y: usize, addr: u32, len: usize) -> Vec<F16> {
        self.tile(x, y).mem.load_f16_slice(addr, len)
    }

    fn set_reg(&mut self, x: usize, y: usize, reg: Reg, value: f32) {
        self.tile_mut(x, y).core.regs[reg] = value;
    }

    fn reg(&self, x: usize, y: usize, reg: Reg) -> f32 {
        self.tile(x, y).core.regs[reg]
    }

    fn checkpoint(&mut self) -> FabricCheckpoint {
        FabricCheckpoint::capture(self)
    }

    fn restore_checkpoint(&mut self, ckpt: &FabricCheckpoint) {
        ckpt.restore(self);
    }

    fn reset_transient(&mut self) {
        Fabric::reset_transient(self);
    }

    fn phase_marker(&mut self, name: &'static str) {
        Fabric::phase_marker(self, name);
    }
}

/// Global-coordinate execution over a wafer ensemble. Phases run in
/// linked lockstep ([`MultiFabric::run_linked`]) so mid-phase traffic may
/// cross wafer seams through the declared edge channels — with
/// [`wse_multi::HostLink::ideal`] this is bit-for-bit the fused fabric.
impl WaferExec for MultiFabric {
    type Checkpoint = EnsembleCheckpoint;

    fn dims(&self) -> (usize, usize) {
        (self.global_width(), self.height())
    }

    fn activate(&mut self, x: usize, y: usize, task: TaskId) {
        let (m, lx) = self.to_local(x);
        self.shard_mut(m).tile_mut(lx, y).core.activate(task);
    }

    fn run_phase(
        &mut self,
        name: &'static str,
        budget: u64,
        window: u64,
    ) -> Result<u64, Box<StallReport>> {
        self.phase_begin(name);
        let r = self.run_linked(budget, window);
        self.phase_end();
        r
    }

    fn store_f16(&mut self, x: usize, y: usize, addr: u32, data: &[F16]) {
        let (m, lx) = self.to_local(x);
        self.shard_mut(m).tile_mut(lx, y).mem.store_f16_slice(addr, data);
    }

    fn load_f16(&self, x: usize, y: usize, addr: u32, len: usize) -> Vec<F16> {
        let (m, lx) = self.to_local(x);
        self.shard(m).tile(lx, y).mem.load_f16_slice(addr, len)
    }

    fn set_reg(&mut self, x: usize, y: usize, reg: Reg, value: f32) {
        let (m, lx) = self.to_local(x);
        self.shard_mut(m).tile_mut(lx, y).core.regs[reg] = value;
    }

    fn reg(&self, x: usize, y: usize, reg: Reg) -> f32 {
        let (m, lx) = self.to_local(x);
        self.shard(m).tile(lx, y).core.regs[reg]
    }

    fn checkpoint(&mut self) -> EnsembleCheckpoint {
        EnsembleCheckpoint::capture(self)
    }

    fn restore_checkpoint(&mut self, ckpt: &EnsembleCheckpoint) {
        ckpt.restore(self);
    }

    fn reset_transient(&mut self) {
        MultiFabric::reset_transient(self);
    }

    fn phase_marker(&mut self, name: &'static str) {
        MultiFabric::phase_marker(self, name);
    }
}
