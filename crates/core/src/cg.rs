//! Conjugate gradients on the wafer — the symmetric baseline, in two
//! communication flavors.
//!
//! * [`CgVariant::Standard`] — textbook CG: two blocking reduction rounds
//!   per iteration (`(p, Ap)` and `(r, r)`).
//! * [`CgVariant::SingleReduction`] — Chronopoulos–Gear CG: `γ = (r, r)`
//!   and `δ = (r, A r)` reduce **together in one round** over the two
//!   concurrent Fig. 6 networks, and `q = A p` is maintained by recurrence
//!   — the communication-reducing restructuring the paper's discussion of
//!   communication-avoiding methods points toward, here actually running on
//!   the (simulated) fabric.

use crate::allreduce::{colors as ar_colors, AllReduce};
use crate::kernels::dot_stmts;
use crate::recovery::{
    self, run_with_recovery, RecoveryLog, RecoveryOutcome, RecoveryPolicy, ResidualTripwire,
};
use crate::routing::configure_spmv_routes;
use crate::spmv3d::{build_spmv_tile, load_coefficients, tile_coefficients, SpmvLayout, SpmvTasks};
use stencil::decomp::Mapping3D;
use stencil::dia::DiaMatrix;
use stencil::precond::has_unit_diagonal;
use wse_arch::dsr::mk;
use wse_arch::fabric::StallReport;
use wse_arch::instr::{Op, RegOp, Stmt, Task, TensorInstr};
use wse_arch::types::{Dtype, TaskId};
use wse_arch::Fabric;
use wse_float::F16;

/// Register allocation (disjoint from the BiCGStab map so both solvers can
/// coexist on one fabric in tests).
mod regs {
    use wse_arch::types::Reg;
    pub const GAMMA: Reg = 12;
    pub const GAMMA_PREV: Reg = 13;
    pub const DELTA: Reg = 14;
    pub const ALPHA: Reg = 15;
    pub const ALPHA_PREV: Reg = 16;
    pub const NEG_ALPHA: Reg = 17;
    pub const BETA: Reg = 18;
    pub const TMP: Reg = 19;
    pub const DOT_ACC: Reg = 21;
    pub const AR_IN: Reg = 24;
    pub const AR_OUT: Reg = 25;
    pub const AR_ACC: Reg = 26;
    pub const AR_IN2: Reg = 27;
    pub const AR_OUT2: Reg = 28;
    pub const AR_ACC2: Reg = 29;
    pub const EPS: Reg = 31;
}

/// Which CG formulation to run.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CgVariant {
    /// Two reduction rounds per iteration.
    Standard,
    /// Chronopoulos–Gear: one (dual-network) round per iteration.
    SingleReduction,
}

/// Cycle breakdown of one CG iteration.
#[derive(Copy, Clone, Debug, Default)]
pub struct CgIterCycles {
    /// SpMV cycles.
    pub spmv: u64,
    /// Local dot cycles.
    pub dot: u64,
    /// Reduction cycles.
    pub allreduce: u64,
    /// Vector update cycles.
    pub update: u64,
    /// Scalar arithmetic cycles.
    pub scalar: u64,
}

impl CgIterCycles {
    /// Total cycles.
    pub fn total(&self) -> u64 {
        self.spmv + self.dot + self.allreduce + self.update + self.scalar
    }
}

#[derive(Clone, Debug)]
struct CgTileVecs {
    /// Padded SpMV source: `p` for Standard, `r` for SingleReduction.
    #[allow(dead_code)] // documents the layout; live parts aliased below
    src_pad: u32,
    /// SpMV output: `q = A p` (Standard) or `s = A r` (SingleReduction).
    av: u32,
    /// Residual (live part of `src_pad` in SingleReduction mode).
    r: u32,
    /// Search direction (padded live part in Standard mode).
    p: u32,
    /// `q = A p` recurrence vector (SingleReduction only; equals `av` in
    /// Standard mode).
    q: u32,
    /// Iterate.
    x: u32,
}

#[derive(Clone, Debug)]
struct CgTileTasks {
    spmv: SpmvTasks,
    dot_pq: TaskId,
    dot_rr: TaskId,
    dot_gamma_delta: TaskId,
    post_alpha_std: TaskId,
    post_beta_std: TaskId,
    post_fused: TaskId,
    init_gamma: TaskId,
    upd_xr_std: TaskId,
    upd_p_std: TaskId,
    upd_all_cg2: TaskId,
    fused_allreduce: Option<TaskId>,
}

/// The wafer-resident CG solver.
pub struct WaferCg {
    mapping: Mapping3D,
    variant: CgVariant,
    tiles: Vec<(CgTileVecs, CgTileTasks)>,
    allreduce: AllReduce,
    #[allow(dead_code)]
    allreduce2: Option<AllReduce>,
}

impl WaferCg {
    /// Distributes the (SPD, unit-diagonal, 7-point) system and builds the
    /// per-tile programs.
    ///
    /// # Panics
    /// Panics on non-unit-diagonal input, fabric overflow, or SRAM
    /// exhaustion.
    pub fn build(fabric: &mut Fabric, a: &DiaMatrix<F16>, variant: CgVariant) -> WaferCg {
        assert!(has_unit_diagonal(a), "matrix must be diagonally preconditioned");
        assert_eq!(a.offsets().len(), 7, "7-point stencil required");
        let mesh = a.mesh();
        let mapping = Mapping3D::new(mesh, fabric.width(), fabric.height());
        let (w, h) = (mapping.fabric_w, mapping.fabric_h);
        let z = mapping.z as u32;

        configure_spmv_routes(fabric, w, h);
        let allreduce = AllReduce::build(fabric, w, h, regs::AR_IN, regs::AR_OUT, regs::AR_ACC);
        let allreduce2 = (variant == CgVariant::SingleReduction).then(|| {
            AllReduce::build_with_base(
                fabric,
                w,
                h,
                regs::AR_IN2,
                regs::AR_OUT2,
                regs::AR_ACC2,
                ar_colors::DEFAULT_BASE + ar_colors::SPAN,
            )
        });

        let mut tiles = Vec::with_capacity(w * h);
        for y in 0..h {
            for x in 0..w {
                let fused_allreduce = allreduce2
                    .as_ref()
                    .map(|second| allreduce.build_fused_task(second, fabric, x, y));
                let tile = fabric.tile_mut(x, y);
                let mut diag = [0u32; 6];
                for d in &mut diag {
                    *d = tile.mem.alloc_vec(z, Dtype::F16).expect("SRAM: diagonals");
                }
                let src_pad = tile.mem.alloc_vec(z + 2, Dtype::F16).expect("SRAM: src");
                let av = tile.mem.alloc_vec(z, Dtype::F16).expect("SRAM: Av");
                let x_vec = tile.mem.alloc_vec(z, Dtype::F16).expect("SRAM: x");
                // Standard: p lives in the padded source, r separate.
                // SingleReduction: r lives in the padded source, p and q
                // separate.
                let (r, p, q) = match variant {
                    CgVariant::Standard => {
                        let r = tile.mem.alloc_vec(z, Dtype::F16).expect("SRAM: r");
                        (r, src_pad + 2, av)
                    }
                    CgVariant::SingleReduction => {
                        let p = tile.mem.alloc_vec(z, Dtype::F16).expect("SRAM: p");
                        let q = tile.mem.alloc_vec(z, Dtype::F16).expect("SRAM: q");
                        (src_pad + 2, p, q)
                    }
                };
                let vecs = CgTileVecs { src_pad, av, r, p, q, x: x_vec };

                let coeffs = tile_coefficients(a, x, y);
                let layout = SpmvLayout { z, diag, vpad: src_pad, u: av };
                load_coefficients(tile, &layout, &coeffs);
                tile.mem.write_f16(src_pad, F16::ZERO);
                tile.mem.write_f16(src_pad + 2 * (z + 1), F16::ZERO);

                let spmv = build_spmv_tile(tile, x, y, w, h, layout, None);
                let core = &mut tile.core;

                // --- Dots. ---
                let dot_pq = {
                    let body = dot_stmts(core, regs::DOT_ACC, regs::AR_IN, vecs.p, vecs.av, z);
                    core.add_task(Task::new("cg_dot_pq", body))
                };
                let dot_rr = {
                    let body = dot_stmts(core, regs::DOT_ACC, regs::AR_IN, vecs.r, vecs.r, z);
                    core.add_task(Task::new("cg_dot_rr", body))
                };
                let dot_gamma_delta = {
                    let mut body = dot_stmts(core, regs::DOT_ACC, regs::AR_IN, vecs.r, vecs.r, z);
                    body.extend(dot_stmts(core, regs::DOT_ACC, regs::AR_IN2, vecs.r, vecs.av, z));
                    core.add_task(Task::new("cg_dot_gd", body))
                };

                // --- Scalar phases. ---
                // Standard: α = γ / (p, Ap); γ carried in GAMMA.
                let post_alpha_std = core.add_task(Task::new(
                    "cg_alpha",
                    vec![
                        Stmt::RegArith {
                            op: RegOp::Add,
                            dst: regs::TMP,
                            a: regs::AR_OUT,
                            b: regs::EPS,
                        },
                        Stmt::RegArith {
                            op: RegOp::Div,
                            dst: regs::ALPHA,
                            a: regs::GAMMA,
                            b: regs::TMP,
                        },
                        Stmt::RegArith {
                            op: RegOp::Neg,
                            dst: regs::NEG_ALPHA,
                            a: regs::ALPHA,
                            b: regs::ALPHA,
                        },
                    ],
                ));
                // Standard: β = γ' / γ; roll γ.
                let post_beta_std = core.add_task(Task::new(
                    "cg_beta",
                    vec![
                        Stmt::RegArith {
                            op: RegOp::Div,
                            dst: regs::BETA,
                            a: regs::AR_OUT,
                            b: regs::GAMMA,
                        },
                        Stmt::RegArith {
                            op: RegOp::Mov,
                            dst: regs::GAMMA,
                            a: regs::AR_OUT,
                            b: regs::AR_OUT,
                        },
                    ],
                ));
                // Fused: γ = AR_OUT, δ = AR_OUT2;
                // β = γ/γ_prev (0 on the first iteration — host seeds
                // GAMMA_PREV with γ so β = 1? No: host seeds by running the
                // first iteration specially; see iterate()).
                // α = γ / (δ − β γ / α_prev).
                let post_fused = core.add_task(Task::new(
                    "cg_fused_coeffs",
                    vec![
                        Stmt::RegArith {
                            op: RegOp::Mov,
                            dst: regs::GAMMA,
                            a: regs::AR_OUT,
                            b: regs::AR_OUT,
                        },
                        Stmt::RegArith {
                            op: RegOp::Mov,
                            dst: regs::DELTA,
                            a: regs::AR_OUT2,
                            b: regs::AR_OUT2,
                        },
                        Stmt::RegArith {
                            op: RegOp::Add,
                            dst: regs::TMP,
                            a: regs::GAMMA_PREV,
                            b: regs::EPS,
                        },
                        Stmt::RegArith {
                            op: RegOp::Div,
                            dst: regs::BETA,
                            a: regs::GAMMA,
                            b: regs::TMP,
                        },
                        // TMP = β γ / α_prev
                        Stmt::RegArith {
                            op: RegOp::Mul,
                            dst: regs::TMP,
                            a: regs::BETA,
                            b: regs::GAMMA,
                        },
                        Stmt::RegArith {
                            op: RegOp::Div,
                            dst: regs::TMP,
                            a: regs::TMP,
                            b: regs::ALPHA_PREV,
                        },
                        Stmt::RegArith {
                            op: RegOp::Sub,
                            dst: regs::TMP,
                            a: regs::DELTA,
                            b: regs::TMP,
                        },
                        Stmt::RegArith {
                            op: RegOp::Div,
                            dst: regs::ALPHA,
                            a: regs::GAMMA,
                            b: regs::TMP,
                        },
                        Stmt::RegArith {
                            op: RegOp::Neg,
                            dst: regs::NEG_ALPHA,
                            a: regs::ALPHA,
                            b: regs::ALPHA,
                        },
                        Stmt::RegArith {
                            op: RegOp::Mov,
                            dst: regs::GAMMA_PREV,
                            a: regs::GAMMA,
                            b: regs::GAMMA,
                        },
                        Stmt::RegArith {
                            op: RegOp::Mov,
                            dst: regs::ALPHA_PREV,
                            a: regs::ALPHA,
                            b: regs::ALPHA,
                        },
                    ],
                ));
                // First fused iteration: β = 0, α = γ/δ.
                let init_gamma = core.add_task(Task::new(
                    "cg_init",
                    vec![
                        Stmt::RegArith {
                            op: RegOp::Mov,
                            dst: regs::GAMMA,
                            a: regs::AR_OUT,
                            b: regs::AR_OUT,
                        },
                        Stmt::RegArith {
                            op: RegOp::Mov,
                            dst: regs::DELTA,
                            a: regs::AR_OUT2,
                            b: regs::AR_OUT2,
                        },
                        Stmt::SetReg { reg: regs::BETA, value: 0.0 },
                        Stmt::RegArith {
                            op: RegOp::Add,
                            dst: regs::TMP,
                            a: regs::DELTA,
                            b: regs::EPS,
                        },
                        Stmt::RegArith {
                            op: RegOp::Div,
                            dst: regs::ALPHA,
                            a: regs::GAMMA,
                            b: regs::TMP,
                        },
                        Stmt::RegArith {
                            op: RegOp::Neg,
                            dst: regs::NEG_ALPHA,
                            a: regs::ALPHA,
                            b: regs::ALPHA,
                        },
                        Stmt::RegArith {
                            op: RegOp::Mov,
                            dst: regs::GAMMA_PREV,
                            a: regs::GAMMA,
                            b: regs::GAMMA,
                        },
                        Stmt::RegArith {
                            op: RegOp::Mov,
                            dst: regs::ALPHA_PREV,
                            a: regs::ALPHA,
                            b: regs::ALPHA,
                        },
                    ],
                ));

                // --- Vector updates. ---
                // Standard: x += α p; r −= α q.
                let upd_xr_std = {
                    let dp = core.add_dsr(mk::tensor16(vecs.p, z));
                    let dq = core.add_dsr(mk::tensor16(vecs.av, z));
                    let dx = core.add_dsr(mk::tensor16(vecs.x, z));
                    let dr = core.add_dsr(mk::tensor16(vecs.r, z));
                    core.add_task(Task::new(
                        "cg_upd_xr",
                        vec![
                            Stmt::Exec(TensorInstr {
                                op: Op::Axpy { scalar: regs::ALPHA },
                                dst: Some(dx),
                                a: Some(dp),
                                b: None,
                            }),
                            Stmt::Exec(TensorInstr {
                                op: Op::Axpy { scalar: regs::NEG_ALPHA },
                                dst: Some(dr),
                                a: Some(dq),
                                b: None,
                            }),
                        ],
                    ))
                };
                // Standard: p = r + β p (XPAY with dst aliasing b).
                let upd_p_std = {
                    let dd = core.add_dsr(mk::tensor16(vecs.p, z));
                    let da = core.add_dsr(mk::tensor16(vecs.r, z));
                    let db = core.add_dsr(mk::tensor16(vecs.p, z));
                    core.add_task(Task::new(
                        "cg_upd_p",
                        vec![Stmt::Exec(TensorInstr {
                            op: Op::Xpay { scalar: regs::BETA },
                            dst: Some(dd),
                            a: Some(da),
                            b: Some(db),
                        })],
                    ))
                };
                // SingleReduction: p = r + β p; q = s + β q; x += α p;
                // r −= α q.
                let upd_all_cg2 = {
                    let dp1 = core.add_dsr(mk::tensor16(vecs.p, z));
                    let dr1 = core.add_dsr(mk::tensor16(vecs.r, z));
                    let dp2 = core.add_dsr(mk::tensor16(vecs.p, z));
                    let dq1 = core.add_dsr(mk::tensor16(vecs.q, z));
                    let ds1 = core.add_dsr(mk::tensor16(vecs.av, z));
                    let dq2 = core.add_dsr(mk::tensor16(vecs.q, z));
                    let dx = core.add_dsr(mk::tensor16(vecs.x, z));
                    let dp3 = core.add_dsr(mk::tensor16(vecs.p, z));
                    let dr2 = core.add_dsr(mk::tensor16(vecs.r, z));
                    let dq3 = core.add_dsr(mk::tensor16(vecs.q, z));
                    core.add_task(Task::new(
                        "cg2_upd",
                        vec![
                            Stmt::Exec(TensorInstr {
                                op: Op::Xpay { scalar: regs::BETA },
                                dst: Some(dp1),
                                a: Some(dr1),
                                b: Some(dp2),
                            }),
                            Stmt::Exec(TensorInstr {
                                op: Op::Xpay { scalar: regs::BETA },
                                dst: Some(dq1),
                                a: Some(ds1),
                                b: Some(dq2),
                            }),
                            Stmt::Exec(TensorInstr {
                                op: Op::Axpy { scalar: regs::ALPHA },
                                dst: Some(dx),
                                a: Some(dp3),
                                b: None,
                            }),
                            Stmt::Exec(TensorInstr {
                                op: Op::Axpy { scalar: regs::NEG_ALPHA },
                                dst: Some(dr2),
                                a: Some(dq3),
                                b: None,
                            }),
                        ],
                    ))
                };

                let tile_tasks = CgTileTasks {
                    spmv,
                    dot_pq,
                    dot_rr,
                    dot_gamma_delta,
                    post_alpha_std,
                    post_beta_std,
                    post_fused,
                    init_gamma,
                    upd_xr_std,
                    upd_p_std,
                    upd_all_cg2,
                    fused_allreduce,
                };
                // Every phase task is a host-activated entry point.
                let core = &mut fabric.tile_mut(x, y).core;
                for t in [
                    dot_pq,
                    dot_rr,
                    dot_gamma_delta,
                    post_alpha_std,
                    post_beta_std,
                    post_fused,
                    init_gamma,
                    upd_xr_std,
                    upd_p_std,
                    upd_all_cg2,
                ] {
                    core.mark_entry(t);
                }
                tiles.push((vecs, tile_tasks));
            }
        }
        crate::debug_lint(fabric);
        WaferCg { mapping, variant, tiles, allreduce, allreduce2 }
    }

    /// Which variant this solver runs.
    pub fn variant(&self) -> CgVariant {
        self.variant
    }

    fn idx(&self, x: usize, y: usize) -> usize {
        y * self.mapping.fabric_w + x
    }

    /// Phase runner under the stall watchdog; a wedged fabric surfaces as a
    /// [`StallReport`] the recovery layer can act on. The run is bracketed
    /// as trace phase `name` (inert unless tracing is armed).
    fn try_phase(
        &self,
        fabric: &mut Fabric,
        name: &'static str,
        pick: impl Fn(&CgTileTasks) -> TaskId,
    ) -> Result<u64, Box<StallReport>> {
        let m = self.mapping;
        for y in 0..m.fabric_h {
            for x in 0..m.fabric_w {
                let t = pick(&self.tiles[self.idx(x, y)].1);
                fabric.tile_mut(x, y).core.activate(t);
            }
        }
        let budget = 200 * m.z as u64 + 200 * (m.fabric_w + m.fabric_h) as u64 + 50_000;
        fabric.phase_begin(name);
        let r = fabric.run_watched(budget, recovery::STALL_WINDOW);
        fabric.phase_end();
        r
    }

    fn try_reduce(&self, fabric: &mut Fabric) -> Result<u64, Box<StallReport>> {
        let m = self.mapping;
        for y in 0..m.fabric_h {
            for x in 0..m.fabric_w {
                fabric.tile_mut(x, y).core.activate(self.allreduce.task(x, y));
            }
        }
        fabric.phase_begin("allreduce");
        let r = fabric
            .run_watched(100 * (m.fabric_w + m.fabric_h) as u64 + 50_000, recovery::STALL_WINDOW);
        fabric.phase_end();
        r
    }

    fn try_reduce_fused(&self, fabric: &mut Fabric) -> Result<u64, Box<StallReport>> {
        let m = self.mapping;
        for y in 0..m.fabric_h {
            for x in 0..m.fabric_w {
                let t = self.tiles[self.idx(x, y)].1.fused_allreduce.expect("fused nets");
                fabric.tile_mut(x, y).core.activate(t);
            }
        }
        fabric.phase_begin("allreduce");
        let r = fabric
            .run_watched(100 * (m.fabric_w + m.fabric_h) as u64 + 50_000, recovery::STALL_WINDOW);
        fabric.phase_end();
        r
    }

    /// Loads `b` (x = 0, r = p = b) and seeds the scalar state.
    pub fn load_rhs(&self, fabric: &mut Fabric, b: &[F16]) {
        self.try_load_rhs(fabric, b).unwrap_or_else(|e| panic!("CG load stalled: {e}"))
    }

    /// Fallible [`WaferCg::load_rhs`] (see [`WaferCg::try_iterate`]).
    pub fn try_load_rhs(&self, fabric: &mut Fabric, b: &[F16]) -> Result<(), Box<StallReport>> {
        let m = self.mapping;
        assert_eq!(b.len(), m.cores() * m.z, "rhs length mismatch");
        for y in 0..m.fabric_h {
            for x in 0..m.fabric_w {
                let (vecs, _) = &self.tiles[self.idx(x, y)];
                let rows = m.core_rows(x, y);
                let local = &b[rows];
                let tile = fabric.tile_mut(x, y);
                tile.mem.store_f16_slice(vecs.r, local);
                tile.mem.store_f16_slice(vecs.p, local);
                tile.mem.store_f16_slice(vecs.x, &vec![F16::ZERO; m.z]);
                tile.core.regs[regs::EPS] = 1e-30;
                if self.variant == CgVariant::SingleReduction {
                    tile.mem.store_f16_slice(vecs.q, &vec![F16::ZERO; m.z]);
                }
            }
        }
        match self.variant {
            CgVariant::Standard => {
                // Seed γ = (r, r).
                self.try_phase(fabric, "dot", |t| t.dot_rr)?;
                self.try_reduce(fabric)?;
                let m = self.mapping;
                for y in 0..m.fabric_h {
                    for x in 0..m.fabric_w {
                        let core = &mut fabric.tile_mut(x, y).core;
                        core.regs[regs::GAMMA] = core.regs[regs::AR_OUT];
                    }
                }
            }
            CgVariant::SingleReduction => {
                // First iteration runs with init_gamma; nothing to seed.
            }
        }
        Ok(())
    }

    /// Runs one iteration. `first` must be `true` for the first iteration
    /// of a [`CgVariant::SingleReduction`] solve (it selects the β = 0
    /// coefficient path).
    pub fn iterate(&self, fabric: &mut Fabric, first: bool) -> CgIterCycles {
        self.try_iterate(fabric, first).unwrap_or_else(|e| panic!("CG iteration stalled: {e}"))
    }

    /// Fallible [`WaferCg::iterate`]: runs under the fabric stall watchdog
    /// and returns the [`StallReport`] instead of panicking.
    pub fn try_iterate(
        &self,
        fabric: &mut Fabric,
        first: bool,
    ) -> Result<CgIterCycles, Box<StallReport>> {
        let mut c = CgIterCycles::default();
        match self.variant {
            CgVariant::Standard => {
                // q = A p  (p is the padded SpMV source).
                c.spmv += self.try_phase(fabric, "spmv", |t| t.spmv.start)?;
                // (p, q) → α.
                c.dot += self.try_phase(fabric, "dot", |t| t.dot_pq)?;
                c.allreduce += self.try_reduce(fabric)?;
                c.scalar += self.try_phase(fabric, "scalar", |t| t.post_alpha_std)?;
                // x += α p; r −= α q.
                c.update += self.try_phase(fabric, "update", |t| t.upd_xr_std)?;
                // (r, r) → β, roll γ.
                c.dot += self.try_phase(fabric, "dot", |t| t.dot_rr)?;
                c.allreduce += self.try_reduce(fabric)?;
                c.scalar += self.try_phase(fabric, "scalar", |t| t.post_beta_std)?;
                // p = r + β p.
                c.update += self.try_phase(fabric, "update", |t| t.upd_p_std)?;
            }
            CgVariant::SingleReduction => {
                // s = A r  (r is the padded SpMV source).
                c.spmv += self.try_phase(fabric, "spmv", |t| t.spmv.start)?;
                // γ = (r, r), δ = (r, s) — one dual-network round.
                c.dot += self.try_phase(fabric, "dot", |t| t.dot_gamma_delta)?;
                c.allreduce += self.try_reduce_fused(fabric)?;
                c.scalar += if first {
                    self.try_phase(fabric, "scalar", |t| t.init_gamma)?
                } else {
                    self.try_phase(fabric, "scalar", |t| t.post_fused)?
                };
                // p, q, x, r recurrences.
                c.update += self.try_phase(fabric, "update", |t| t.upd_all_cg2)?;
            }
        }
        Ok(c)
    }

    /// Residual norm ‖r‖ read back from tile memories (host-side check).
    pub fn residual_norm(&self, fabric: &Fabric) -> f64 {
        let m = self.mapping;
        let mut sum = 0.0f64;
        for y in 0..m.fabric_h {
            for x in 0..m.fabric_w {
                let (vecs, _) = &self.tiles[self.idx(x, y)];
                for v in fabric.tile(x, y).mem.load_f16_slice(vecs.r, m.z) {
                    sum += v.to_f64() * v.to_f64();
                }
            }
        }
        sum.sqrt()
    }

    /// Reads the iterate back in global mesh order.
    pub fn read_x(&self, fabric: &Fabric) -> Vec<F16> {
        let m = self.mapping;
        let mut out = vec![F16::ZERO; m.cores() * m.z];
        for y in 0..m.fabric_h {
            for x in 0..m.fabric_w {
                let (vecs, _) = &self.tiles[self.idx(x, y)];
                let rows = m.core_rows(x, y);
                out[rows].copy_from_slice(&fabric.tile(x, y).mem.load_f16_slice(vecs.x, m.z));
            }
        }
        out
    }

    /// Loads `b`, runs `iters` iterations, returns the iterate, per-iteration
    /// cycles, and relative residuals.
    pub fn solve(
        &self,
        fabric: &mut Fabric,
        b: &[F16],
        iters: usize,
    ) -> (Vec<F16>, Vec<CgIterCycles>, Vec<f64>) {
        let norm_b: f64 = b.iter().map(|v| v.to_f64() * v.to_f64()).sum::<f64>().sqrt();
        if norm_b == 0.0 {
            // Zero RHS: zero solution; avoid 0/0 in the coefficient tasks.
            return (vec![F16::ZERO; b.len()], Vec::new(), Vec::new());
        }
        self.load_rhs(fabric, b);
        let mut cycles = Vec::with_capacity(iters);
        let mut residuals = Vec::with_capacity(iters);
        let tripwire = ResidualTripwire::default();
        for i in 0..iters {
            cycles.push(self.iterate(fabric, i == 0));
            let rel = self.residual_norm(fabric) / norm_b;
            residuals.push(rel);
            if tripwire.check(rel).stops() {
                break; // see ResidualTripwire for the thresholds
            }
        }
        (self.read_x(fabric), cycles, residuals)
    }

    /// Like [`WaferCg::solve`], but under the checkpoint/rollback recovery
    /// engine (see [`crate::recovery`]): stalls are caught by the watchdog,
    /// residual anomalies by the tripwire, and convergence claims are
    /// verified against `a`'s f64 true residual.
    pub fn solve_with_recovery(
        &self,
        fabric: &mut Fabric,
        a: &DiaMatrix<F16>,
        b: &[F16],
        iters: usize,
        policy: &RecoveryPolicy,
    ) -> (Vec<F16>, Vec<f64>, RecoveryLog) {
        let norm_b: f64 = b.iter().map(|v| v.to_f64() * v.to_f64()).sum::<f64>().sqrt();
        let mut residuals = Vec::new();
        if norm_b == 0.0 {
            let log = RecoveryLog { outcome: RecoveryOutcome::Converged, ..RecoveryLog::default() };
            return (vec![F16::ZERO; b.len()], residuals, log);
        }
        let log = run_with_recovery(
            fabric,
            iters,
            policy,
            |f| self.try_load_rhs(f, b),
            |f, i| {
                residuals.truncate(i);
                self.try_iterate(f, i == 0)?;
                let rel = self.residual_norm(f) / norm_b;
                residuals.push(rel);
                Ok(rel)
            },
            |f| recovery::true_rel_residual(a, &self.read_x(f), b),
        );
        residuals.truncate(log.iterations);
        (self.read_x(fabric), residuals, log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil::mesh::Mesh3D;
    use stencil::precond::jacobi_scale;
    use stencil::stencil7::poisson;

    fn spd_system(mesh: Mesh3D) -> (DiaMatrix<F16>, Vec<F16>, Vec<f64>) {
        let a = poisson(mesh);
        let exact: Vec<f64> = (0..mesh.len()).map(|i| ((i * 7) % 9) as f64 * 0.125 - 0.5).collect();
        let mut b = vec![0.0; mesh.len()];
        a.matvec_f64(&exact, &mut b);
        let sys = jacobi_scale(&a, &b);
        let a16: DiaMatrix<F16> = sys.matrix.convert();
        let b16: Vec<F16> = sys.rhs.iter().map(|&v| F16::from_f64(v)).collect();
        (a16, b16, exact)
    }

    #[test]
    fn standard_cg_converges_on_wafer() {
        let mesh = Mesh3D::new(4, 4, 8);
        let (a, b, exact) = spd_system(mesh);
        let mut fabric = Fabric::new(4, 4);
        let cg = WaferCg::build(&mut fabric, &a, CgVariant::Standard);
        let (x, _, residuals) = cg.solve(&mut fabric, &b, 20);
        let last = *residuals.last().unwrap();
        assert!(last < 0.02, "residual {last}");
        let err = x.iter().zip(&exact).map(|(a, b)| (a.to_f64() - b).abs()).fold(0.0_f64, f64::max);
        assert!(err < 0.05, "max err {err}");
    }

    #[test]
    fn single_reduction_cg_matches_standard() {
        let mesh = Mesh3D::new(4, 4, 8);
        let (a, b, _) = spd_system(mesh);

        let mut f1 = Fabric::new(4, 4);
        let std_cg = WaferCg::build(&mut f1, &a, CgVariant::Standard);
        let (_, c1, r1) = std_cg.solve(&mut f1, &b, 10);

        let mut f2 = Fabric::new(4, 4);
        let cg2 = WaferCg::build(&mut f2, &a, CgVariant::SingleReduction);
        assert_eq!(cg2.variant(), CgVariant::SingleReduction);
        let (_, c2, r2) = cg2.solve(&mut f2, &b, 10);

        // Same math, same trajectory (to fp16/f32 rounding noise).
        for (a, b) in r1.iter().zip(&r2).take(6) {
            let ratio = (a / b).max(b / a);
            assert!(ratio < 1.5, "trajectories: {a} vs {b}");
        }
        // Half the blocking rounds: the single fused round costs less than
        // the two standard rounds.
        let ar1: u64 = c1.iter().map(|c| c.allreduce).sum();
        let ar2: u64 = c2.iter().map(|c| c.allreduce).sum();
        assert!(
            (ar2 as f64) < 0.8 * ar1 as f64,
            "single-reduction must cut reduction cycles: {ar1} -> {ar2}"
        );
    }

    #[test]
    fn cg_cycles_breakdown_is_sane() {
        let mesh = Mesh3D::new(3, 3, 32);
        let (a, b, _) = spd_system(mesh);
        let mut fabric = Fabric::new(3, 3);
        let cg = WaferCg::build(&mut fabric, &a, CgVariant::Standard);
        cg.load_rhs(&mut fabric, &b);
        let c = cg.iterate(&mut fabric, true);
        assert!(c.spmv > 0 && c.dot > 0 && c.allreduce > 0 && c.update > 0);
        // CG has one SpMV per iteration: roughly half BiCGStab's SpMV time.
        assert!(c.spmv < 2 * 4 * 32, "one SpMV only: {c:?}");
    }
}
