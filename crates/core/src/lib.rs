//! On-wafer kernels — the paper's primary contribution.
//!
//! This crate maps the BiCGStab stencil solver onto the simulated
//! wafer-scale engine (`wse-arch`), reproducing:
//!
//! * [`routing`] — the tessellation channel assignment of Fig. 5,
//! * [`spmv3d`] — the 7-point SpMV dataflow of Listing 1 / Fig. 4
//!   (broadcast, FIFO-decoupled multiply/add pipelines, loopback main
//!   diagonal, completion-barrier tree),
//! * [`spmv2d`] — the 2D 9-point block mapping of §IV.2 with output-halo
//!   exchange, and [`bicgstab2d`] — the full solver on that mapping,
//! * [`allreduce`] — the row/column scalar AllReduce of Fig. 6 plus
//!   broadcast,
//! * [`kernels`] — AXPY/XPAY and local mixed-precision dot phases,
//! * [`bicgstab`] — the complete BiCGStab iteration on the fabric (with a
//!   communication-fused variant),
//! * [`cg`] — conjugate gradients on the fabric, in standard and
//!   Chronopoulos–Gear single-reduction forms,
//! * [`recovery`] — shared residual tripwire plus checkpoint/rollback
//!   recovery so solves survive injected faults (see `wse-arch::fault`).

#![warn(missing_docs)]

pub mod allreduce;
pub mod bicgstab;
pub mod bicgstab2d;
pub mod cg;
pub mod exec;
pub mod kernels;
pub mod multi;
pub mod recovery;
pub mod routing;
pub mod spmv2d;
pub mod spmv3d;

pub use bicgstab::WaferBicgstab;
pub use exec::WaferExec;
pub use multi::{build_transparent, MultiIterCycles, MultiSolveStats, WaferBicgstabMulti};
pub use recovery::{
    EnsembleCheckpoint, FabricCheckpoint, RecoveryLog, RecoveryOutcome, RecoveryPolicy,
    ResidualTripwire, TripwireVerdict,
};
pub use spmv3d::WaferSpmv;

/// Statically verifies a fully built wafer program in debug builds,
/// panicking with the diagnostic report on any finding. Every kernel
/// builder calls this after program construction, so a misconfigured
/// program fails at build time instead of stalling the simulation a
/// million cycles later. Release builds skip the check (it is a pure
/// debugging aid and the shipped configurations are lint-clean).
pub fn debug_lint(fabric: &wse_arch::Fabric) {
    #[cfg(debug_assertions)]
    wse_lint::assert_clean(fabric);
    #[cfg(not(debug_assertions))]
    let _ = fabric;
}
