//! Checkpoint/rollback recovery and residual tripwires for the wafer solvers.
//!
//! The simulated wafer has no hardware ECC (see `wse-arch`), so an injected
//! fault — an SRAM bit flip, a killed tile, a stuck router port — either
//! corrupts the Krylov state silently or wedges the fabric. This module
//! supplies the host-side defenses the drivers share:
//!
//! * [`ResidualTripwire`] — the convergence/divergence monitor every solve
//!   loop runs on the fused relative residual. A single documented policy
//!   replaces the guard that was previously copy-pasted across the BiCGStab,
//!   CG, and 2D BiCGStab drivers.
//! * [`FabricCheckpoint`] — a host-side snapshot of everything a solver
//!   iteration mutates: per-tile allocated SRAM (the Krylov vectors and
//!   scratch), the scalar register file, and the task-scheduler start state.
//!   Programs, routes, and DSR *descriptors* are immutable after build and
//!   are not copied.
//! * [`run_with_recovery`] — the rollback engine: step the solver under the
//!   fabric stall watchdog, take periodic checkpoints at quiescent iteration
//!   boundaries, and on a stall or tripwire trip restore the last checkpoint
//!   and retry within a strict total-retry budget. Every decision is recorded
//!   in a [`RecoveryLog`].
//!
//! # Why convergence is re-verified
//!
//! BiCGStab's recursive residual is computed from the `r` vector, which never
//! reads the iterate `x` back — a corrupted `x` is invisible to it. A solve
//! may therefore report convergence while holding a wrong answer. The engine
//! guards against this by re-checking every `Converged` verdict against the
//! *true* residual ‖b − A x‖/‖b‖ computed host-side in f64; a mismatch is a
//! false convergence and triggers a rollback like any other trip. With this
//! check in place, a fault can cost iterations or retries, but never a silent
//! wrong answer.

use crate::exec::WaferExec;
use stencil::dia::DiaMatrix;
use wse_arch::fabric::StallReport;
use wse_arch::types::NUM_REGS;
use wse_arch::{Fabric, SchedSnapshot};
use wse_float::F16;
use wse_multi::MultiFabric;

/// Stall-watchdog window (cycles of zero fabric-wide progress) used by the
/// drivers' fallible phase runners. The simulator is deterministic and
/// closed, so any zero-progress window proves a permanent deadlock; this
/// value only bounds detection latency and sits comfortably above the
/// deepest credit-backpressure chain on the fabrics we simulate.
pub const STALL_WINDOW: u64 = 2_048;

/// Verdict of a [`ResidualTripwire`] check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TripwireVerdict {
    /// Residual is in the healthy band: keep iterating.
    Continue,
    /// Residual fell below the convergence threshold.
    Converged,
    /// Residual grew past the divergence threshold.
    Diverged,
    /// Residual is NaN or infinite (an ε-regularized breakdown, or a fault
    /// that propagated into the scalar recurrences).
    NonFinite,
}

impl TripwireVerdict {
    /// Whether this verdict ends a plain (non-recovering) solve loop.
    pub fn stops(self) -> bool {
        !matches!(self, TripwireVerdict::Continue)
    }
}

/// Host-side convergence/divergence monitor on the relative residual.
///
/// The host drives the iteration count (the hardware tasks carry no
/// conditionals), so after each iteration it inspects the on-wafer residual
/// and decides whether to launch another. Historically each driver carried
/// its own copy of the same three-way guard; this type is the single
/// documented policy they all share:
///
/// * `rel < converged` — converged to the fp16 floor; stop.
/// * `rel` NaN/∞ — a breakdown (ρ or ω underflowed into the ε regularizer)
///   or fault-corrupted arithmetic; stop.
/// * `rel > diverged` — runaway growth; ε-regularized breakdowns show up as
///   growth rather than exceptions, so this bounds wasted work.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ResidualTripwire {
    /// Convergence threshold (strict `<`). Default `1e-7`.
    pub converged: f64,
    /// Divergence threshold (strict `>`). Default `1e6`.
    pub diverged: f64,
}

impl Default for ResidualTripwire {
    fn default() -> Self {
        ResidualTripwire { converged: 1e-7, diverged: 1e6 }
    }
}

impl ResidualTripwire {
    /// Classifies one relative-residual sample.
    pub fn check(&self, rel: f64) -> TripwireVerdict {
        if !rel.is_finite() {
            TripwireVerdict::NonFinite
        } else if rel < self.converged {
            TripwireVerdict::Converged
        } else if rel > self.diverged {
            TripwireVerdict::Diverged
        } else {
            TripwireVerdict::Continue
        }
    }
}

/// Tuning knobs for [`run_with_recovery`].
#[derive(Clone, Debug)]
pub struct RecoveryPolicy {
    /// Take a checkpoint every this many committed iterations (`0` keeps
    /// only the post-load checkpoint). Cadence trades checkpoint cost
    /// against replay length *and* against the risk of checkpointing
    /// not-yet-detected corruption: a flip that takes three iterations to
    /// trip the wire can be baked into a cadence-1 checkpoint.
    pub checkpoint_every: usize,
    /// Total rollback budget across the whole solve (including reload
    /// retries). Permanent faults (killed tile, stuck port) stall every
    /// retry, so this strictly bounds termination.
    pub max_retries: usize,
    /// Acceptance threshold for the f64 true relative residual when
    /// verifying a `Converged` verdict. fp16 quantization of the iterate
    /// floors the true residual near `κ·ε_fp16`, well above the recursive
    /// residual's `1e-7` stop; `1e-2` separates a healthy converged iterate
    /// (≲1e-3 on the shipped problems) from a corrupted one (≳1e-1).
    pub verify_rel: f64,
    /// Residual monitor applied after every iteration.
    pub tripwire: ResidualTripwire,
    /// Job/tenant attribution label. Copied into [`RecoveryLog::label`] and
    /// prefixed (as `[label]`) onto every event string, so rollbacks in a
    /// shared-fabric service are billable to the job that incurred them
    /// instead of appearing as anonymous ensemble events. Empty disables
    /// the prefix.
    pub label: String,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            checkpoint_every: 4,
            max_retries: 3,
            verify_rel: 1e-2,
            tripwire: ResidualTripwire::default(),
            label: String::new(),
        }
    }
}

impl RecoveryPolicy {
    /// This policy with the given attribution label (builder-style).
    pub fn labeled(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }
}

/// Terminal state of a recovering solve.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RecoveryOutcome {
    /// Recursive residual converged *and* the f64 true residual agreed.
    Converged,
    /// Iteration budget exhausted without (verified) convergence.
    #[default]
    MaxIterations,
    /// Rollback budget exhausted — a permanent fault keeps wedging or
    /// corrupting the fabric faster than rollbacks can make progress.
    RetriesExhausted,
}

/// Structured account of a [`run_with_recovery`] solve.
#[derive(Clone, Debug, Default)]
pub struct RecoveryLog {
    /// How the solve ended.
    pub outcome: RecoveryOutcome,
    /// Committed iterations at exit (rolled-back work excluded).
    pub iterations: usize,
    /// Iterations discarded by rollbacks (work done, then undone).
    pub iterations_lost: usize,
    /// Checkpoints captured (the post-load checkpoint counts).
    pub checkpoints_taken: usize,
    /// Rollbacks performed (equals retries consumed).
    pub rollbacks: usize,
    /// Fabric stalls caught by the watchdog.
    pub stalls: usize,
    /// Diverged/NonFinite tripwire trips.
    pub tripwire_trips: usize,
    /// `Converged` verdicts rejected by the true-residual check.
    pub false_convergences: usize,
    /// Last committed relative (recursive) residual.
    pub final_rel_residual: f64,
    /// The job/tenant label from [`RecoveryPolicy::label`] (empty when
    /// unlabeled) — lets a billing table attribute this log without
    /// carrying the policy around.
    pub label: String,
    /// Human-readable trail of every anomaly, in order. Each entry is
    /// prefixed with `[label]` when a label is set.
    pub events: Vec<String>,
}

impl std::fmt::Display for RecoveryLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "recovery: {:?} after {} iterations (rel {:.3e}); {} checkpoints, \
             {} rollbacks ({} iterations lost), {} stalls, {} trips, {} false convergences",
            self.outcome,
            self.iterations,
            self.final_rel_residual,
            self.checkpoints_taken,
            self.rollbacks,
            self.iterations_lost,
            self.stalls,
            self.tripwire_trips,
            self.false_convergences,
        )
    }
}

/// One tile's share of a [`FabricCheckpoint`].
#[derive(Clone, Debug)]
struct TileCheckpoint {
    /// The allocated prefix of SRAM, as raw 16-bit words (bit-exact; F16
    /// round-trips arbitrary bit patterns).
    sram: Vec<F16>,
    regs: [f32; NUM_REGS],
    sched: SchedSnapshot,
}

/// Host-side snapshot of the solver-mutable wafer state.
///
/// Captures, per tile, the allocated SRAM prefix (Krylov vectors,
/// coefficients, scratch — everything the bump allocator handed out), the
/// fp32 register file, and the scheduler's DSR-cursor/task-flag state.
/// Restore pairs with [`Fabric::reset_transient`], which discards whatever a
/// fault left in flight, so the restored state replays from a clean,
/// quiescent machine. Capture must itself happen at a quiescent iteration
/// boundary — in-flight flits and running threads are deliberately *not*
/// part of the snapshot.
#[derive(Clone, Debug)]
pub struct FabricCheckpoint {
    tiles: Vec<TileCheckpoint>,
    w: usize,
    h: usize,
}

impl FabricCheckpoint {
    /// Snapshots the fabric. Call only at a quiescent boundary.
    ///
    /// The activity-driven stepper defers per-tile idle accounting, so the
    /// capture first settles that debt (exactly as [`Fabric::arm_trace`]
    /// does) — otherwise two captures of the same logical state could
    /// disagree on perf counters, and a restore would not be bit-identical
    /// under the optimized stepper.
    pub fn capture(fabric: &mut Fabric) -> FabricCheckpoint {
        fabric.settle_idle();
        let (w, h) = (fabric.width(), fabric.height());
        let mut tiles = Vec::with_capacity(w * h);
        for y in 0..h {
            for x in 0..w {
                let t = fabric.tile(x, y);
                let words = (t.mem.used() as usize).div_ceil(2);
                tiles.push(TileCheckpoint {
                    sram: t.mem.load_f16_slice(0, words),
                    regs: t.core.regs,
                    sched: t.core.sched_state(),
                });
            }
        }
        FabricCheckpoint { tiles, w, h }
    }

    /// Rolls the fabric back to this snapshot: clears all transient
    /// execution state, then restores SRAM, registers, and scheduler state.
    /// Perf counters, the cycle counter, and armed fault schedules are
    /// untouched (already-applied one-shot faults do not re-fire).
    pub fn restore(&self, fabric: &mut Fabric) {
        assert_eq!(
            (self.w, self.h),
            (fabric.width(), fabric.height()),
            "checkpoint/fabric shape mismatch"
        );
        fabric.reset_transient();
        for y in 0..self.h {
            for x in 0..self.w {
                let c = &self.tiles[y * self.w + x];
                let t = fabric.tile_mut(x, y);
                t.mem.store_f16_slice(0, &c.sram);
                t.core.regs = c.regs;
                t.core.restore_sched_state(&c.sched);
            }
        }
    }

    /// Total snapshot payload in bytes (cost-model observability).
    pub fn bytes(&self) -> usize {
        self.tiles.iter().map(|t| 2 * t.sram.len() + 4 * NUM_REGS).sum()
    }
}

/// Coordinated snapshot of a whole `k`-wafer ensemble: one
/// [`FabricCheckpoint`] per wafer, captured together at an ensemble
/// quiescent point. The host-combine state of the hierarchical AllReduce
/// needs no separate capture — it lives in the root tiles' registers,
/// which the per-wafer snapshots already hold; nothing may be in flight
/// on the seams at capture time (asserted).
#[derive(Clone, Debug)]
pub struct EnsembleCheckpoint {
    shards: Vec<FabricCheckpoint>,
}

impl EnsembleCheckpoint {
    /// Snapshots every wafer. Call only at an ensemble quiescent boundary
    /// (nothing queued on or in flight across any seam).
    ///
    /// # Panics
    /// Panics if the ensemble is not quiescent.
    pub fn capture(multi: &mut MultiFabric) -> EnsembleCheckpoint {
        assert!(
            multi.is_quiescent(),
            "ensemble checkpoint requires quiescence (seam traffic in flight)"
        );
        let shards =
            (0..multi.k()).map(|m| FabricCheckpoint::capture(multi.shard_mut(m))).collect();
        EnsembleCheckpoint { shards }
    }

    /// Rolls the whole ensemble back: clears seam and reliable-transport
    /// transients ([`MultiFabric::reset_transient`] — both ends of every
    /// link restart their sequence space, down flags clear), then restores
    /// every wafer.
    pub fn restore(&self, multi: &mut MultiFabric) {
        assert_eq!(self.shards.len(), multi.k(), "checkpoint/ensemble shape mismatch");
        multi.reset_transient();
        for (m, ckpt) in self.shards.iter().enumerate() {
            ckpt.restore(multi.shard_mut(m));
        }
    }

    /// Total snapshot payload in bytes across all wafers.
    pub fn bytes(&self) -> usize {
        self.shards.iter().map(FabricCheckpoint::bytes).sum()
    }
}

/// The f64 reference residual ‖b − A x‖₂ / ‖b‖₂ (or the absolute norm when
/// `b = 0`). This is the ground truth the recovery engine verifies
/// `Converged` verdicts against — it reads the iterate itself, so it catches
/// corruption the recursive residual is blind to.
pub fn true_rel_residual(a: &DiaMatrix<F16>, x: &[F16], b: &[F16]) -> f64 {
    let xf: Vec<f64> = x.iter().map(|v| v.to_f64()).collect();
    let mut ax = vec![0.0f64; xf.len()];
    a.matvec_f64(&xf, &mut ax);
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for (i, v) in b.iter().enumerate() {
        let bi = v.to_f64();
        num += (bi - ax[i]) * (bi - ax[i]);
        den += bi * bi;
    }
    if den == 0.0 {
        num.sqrt()
    } else {
        (num / den).sqrt()
    }
}

/// Runs a solver iteration loop under checkpoint/rollback recovery.
///
/// Generic over [`WaferExec`], so the same engine recovers a single-wafer
/// solve (checkpointing one [`Fabric`]) or a multi-wafer ensemble solve
/// (checkpointing all `k` wafers together via [`EnsembleCheckpoint`]).
///
/// * `init` loads the problem onto a (possibly faulty) machine; a stall
///   here is retried from a [`WaferExec::reset_transient`] machine.
/// * `step(exec, i)` runs committed iteration `i` and returns the
///   relative (recursive) residual. After a rollback it is re-invoked with
///   the rolled-back index — implementations owning per-iteration records
///   must truncate them to `i` on entry.
/// * `verify` computes the f64 true relative residual; it gates every
///   `Converged` verdict (see the module docs on false convergence).
///
/// Rollbacks across the whole solve (including `init` retries) are capped
/// at `policy.max_retries`, so the engine always terminates: worst case is
/// `max_iters` committed steps plus `max_retries` replayed segments.
pub fn run_with_recovery<E: WaferExec>(
    exec: &mut E,
    max_iters: usize,
    policy: &RecoveryPolicy,
    mut init: impl FnMut(&mut E) -> Result<(), Box<StallReport>>,
    mut step: impl FnMut(&mut E, usize) -> Result<f64, Box<StallReport>>,
    mut verify: impl FnMut(&E) -> f64,
) -> RecoveryLog {
    let fabric = exec;
    let mut log = RecoveryLog { label: policy.label.clone(), ..RecoveryLog::default() };
    let tag = if policy.label.is_empty() { String::new() } else { format!("[{}] ", policy.label) };
    loop {
        match init(fabric) {
            Ok(()) => break,
            Err(r) => {
                log.stalls += 1;
                log.events.push(format!("{tag}load: {r}"));
                if log.rollbacks >= policy.max_retries {
                    log.outcome = RecoveryOutcome::RetriesExhausted;
                    return log;
                }
                log.rollbacks += 1;
                fabric.reset_transient();
            }
        }
    }

    let mut ckpt = fabric.checkpoint();
    let mut ckpt_iter = 0usize;
    log.checkpoints_taken = 1;
    fabric.phase_marker("checkpoint");

    // Committed-iteration cursor; rolled back on every recovery action.
    let mut it = 0usize;
    while it < max_iters {
        // What happened this iteration, and does it commit or roll back?
        enum Next {
            Advance(f64),
            Rollback(String),
        }
        let next = match step(fabric, it) {
            Err(r) => {
                log.stalls += 1;
                Next::Rollback(format!("{tag}iter {it}: {r}"))
            }
            Ok(rel) => match policy.tripwire.check(rel) {
                TripwireVerdict::Continue => Next::Advance(rel),
                TripwireVerdict::Converged => {
                    let true_rel = verify(fabric);
                    if true_rel <= policy.verify_rel {
                        log.outcome = RecoveryOutcome::Converged;
                        log.final_rel_residual = rel;
                        log.iterations = it + 1;
                        return log;
                    }
                    log.false_convergences += 1;
                    Next::Rollback(format!(
                        "{tag}iter {it}: false convergence (recursive rel {rel:.3e}, true rel {true_rel:.3e})"
                    ))
                }
                v @ (TripwireVerdict::Diverged | TripwireVerdict::NonFinite) => {
                    log.tripwire_trips += 1;
                    Next::Rollback(format!("{tag}iter {it}: tripwire {v:?} (rel {rel:.3e})"))
                }
            },
        };
        match next {
            Next::Advance(rel) => {
                it += 1;
                log.final_rel_residual = rel;
                if policy.checkpoint_every > 0
                    && it.is_multiple_of(policy.checkpoint_every)
                    && it < max_iters
                {
                    ckpt = fabric.checkpoint();
                    ckpt_iter = it;
                    log.checkpoints_taken += 1;
                    fabric.phase_marker("checkpoint");
                }
            }
            Next::Rollback(why) => {
                log.events.push(why);
                if log.rollbacks >= policy.max_retries {
                    log.outcome = RecoveryOutcome::RetriesExhausted;
                    log.iterations = it;
                    return log;
                }
                log.rollbacks += 1;
                log.iterations_lost += it - ckpt_iter;
                it = ckpt_iter;
                fabric.restore_checkpoint(&ckpt);
                fabric.phase_marker("rollback");
            }
        }
    }
    log.outcome = RecoveryOutcome::MaxIterations;
    log.iterations = it;
    log
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tripwire_matches_the_historical_guard() {
        let t = ResidualTripwire::default();
        for rel in [1e-3, 1.0, 999_999.0, 1e-7] {
            let old = rel < 1e-7 || !f64::is_finite(rel) || rel > 1e6;
            assert_eq!(t.check(rel).stops(), old, "rel {rel}");
        }
        assert_eq!(t.check(5e-8), TripwireVerdict::Converged);
        assert_eq!(t.check(2e6), TripwireVerdict::Diverged);
        assert_eq!(t.check(f64::NAN), TripwireVerdict::NonFinite);
        assert_eq!(t.check(f64::INFINITY), TripwireVerdict::NonFinite);
        assert_eq!(t.check(-1.0), TripwireVerdict::Converged); // negative ⇒ below floor
    }

    #[test]
    fn engine_verifies_convergence_and_rolls_back_lies() {
        // A fake solver whose recursive residual claims convergence at
        // iteration 2, but whose true residual is bad until after one
        // rollback (modeling a corrupted iterate that a replay repairs).
        let mut fabric = Fabric::new(1, 1);
        let mut lied = false;
        let truth = std::cell::Cell::new(f64::INFINITY);
        let log = run_with_recovery(
            &mut fabric,
            10,
            &RecoveryPolicy { checkpoint_every: 1, ..Default::default() },
            |_| Ok(()),
            |_, i| {
                if i == 2 && !lied {
                    lied = true;
                    truth.set(1.0); // corrupted iterate: recursive lies, truth is bad
                    Ok(1e-9)
                } else if i == 2 {
                    truth.set(1e-4); // replay is clean
                    Ok(1e-9)
                } else {
                    Ok(1e-2)
                }
            },
            |_| truth.get(),
        );
        assert_eq!(log.outcome, RecoveryOutcome::Converged);
        assert_eq!(log.false_convergences, 1);
        assert_eq!(log.rollbacks, 1);
        assert_eq!(log.iterations, 3);
        assert_eq!(log.iterations_lost, 0); // checkpointed at iter 2 boundary
    }

    #[test]
    fn engine_retry_budget_is_a_hard_bound() {
        let mut fabric = Fabric::new(1, 1);
        let policy = RecoveryPolicy { max_retries: 3, ..Default::default() };
        let mut steps = 0usize;
        let log = run_with_recovery(
            &mut fabric,
            100,
            &policy,
            |_| Ok(()),
            |_, _| {
                steps += 1;
                Ok(f64::NAN) // every iteration trips NonFinite
            },
            |_| f64::INFINITY,
        );
        assert_eq!(log.outcome, RecoveryOutcome::RetriesExhausted);
        assert_eq!(log.rollbacks, 3);
        assert_eq!(log.tripwire_trips, 4); // initial attempt + 3 retries
        assert_eq!(steps, 4);
        assert_eq!(log.iterations, 0);
    }

    #[test]
    fn checkpoint_roundtrips_sram_and_regs() {
        let mut fabric = Fabric::new(2, 2);
        let addr = fabric.tile_mut(1, 1).mem.alloc_vec(4, wse_arch::Dtype::F16).unwrap();
        let vals: Vec<F16> = (0..4).map(|i| F16::from_f64(i as f64 + 0.5)).collect();
        fabric.tile_mut(1, 1).mem.store_f16_slice(addr, &vals);
        fabric.tile_mut(0, 1).core.regs[7] = 42.0;
        let ckpt = FabricCheckpoint::capture(&mut fabric);
        assert!(ckpt.bytes() > 0);
        // Corrupt both, then restore.
        fabric.tile_mut(1, 1).mem.flip_bit(addr, 14);
        fabric.tile_mut(0, 1).core.regs[7] = -1.0;
        ckpt.restore(&mut fabric);
        assert_eq!(fabric.tile(1, 1).mem.load_f16_slice(addr, 4), vals);
        assert_eq!(fabric.tile(0, 1).core.regs[7], 42.0);
    }
}
