//! The scalar AllReduce of Fig. 6.
//!
//! "The reduction is performed in parallel along fabric rows, then along two
//! central columns. ... We use two cores in the center, each receiving input
//! from one direction at the rate of one datum per cycle. ... the partial
//! sums are reduced along two columns towards the central four cores that
//! finally reduce their content to a single core. ... The broadcast is done
//! in reverse, sending the result along two central columns and then across
//! all rows."
//!
//! All arithmetic is fp32 ("we do the AllReduce at 32-bit precision"). The
//! single-cycle-per-hop fabric makes the whole operation complete "in a
//! cycle count only about 10% greater than the diameter of the system" —
//! the latency tests below check exactly that property.

use wse_arch::dsr::mk;
use wse_arch::instr::{Op, RegOp, Stmt, Task, TensorInstr};
use wse_arch::types::{Port, Reg, TaskId};
use wse_arch::Fabric;

/// Virtual channels used by the AllReduce, as offsets from a configurable
/// base (disjoint instances let several scalars reduce **concurrently** —
/// the communication-fusion variant merges the ω-step's two reductions into
/// one round this way). The default base is 10, clear of the SpMV's 0..5.
pub mod colors {
    /// Default color base (the whole-wafer allocation lives in
    /// [`wse_dsl::colors`]).
    pub const DEFAULT_BASE: u8 = wse_dsl::colors::ALLREDUCE_BASE;
    /// Colors consumed per instance.
    pub const SPAN: u8 = wse_dsl::colors::ALLREDUCE_SPAN;
    /// Left half-rows flowing east toward the center-left column.
    pub const ROW_E: u8 = 0;
    /// Right half-rows flowing west toward the center-right column.
    pub const ROW_W: u8 = 1;
    /// Upper half of the central columns flowing south.
    pub const COL_S: u8 = 2;
    /// Lower half of the central columns flowing north.
    pub const COL_N: u8 = 3;
    /// The final 4:1 reduction to the root.
    pub const FIN: u8 = 4;
    /// Result broadcast.
    pub const BC: u8 = 5;
}

/// A built AllReduce program over a `w × h` fabric region. The region's
/// top-left tile sits at the build origin (`(0, 0)` unless built with
/// [`AllReduce::build_at`]); task ids and tile coordinates in the API are
/// region-relative. The handle is `Clone` so a program blitted to another
/// region can be driven via [`AllReduce::rebased`].
#[derive(Clone)]
pub struct AllReduce {
    w: usize,
    h: usize,
    ox: usize,
    oy: usize,
    /// Input register (each core's contribution).
    pub r_in: Reg,
    /// Output register (the global sum, on every core).
    pub r_out: Reg,
    /// Scratch accumulator register.
    pub r_acc: Reg,
    base: u8,
    tasks: Vec<TaskId>,
}

impl AllReduce {
    /// Builds the routing and per-tile tasks. Requires `w ≥ 2` and `h ≥ 2`.
    ///
    /// # Panics
    /// Panics if the region is smaller than 2×2 or exceeds the fabric.
    pub fn build(
        fabric: &mut Fabric,
        w: usize,
        h: usize,
        r_in: Reg,
        r_out: Reg,
        r_acc: Reg,
    ) -> AllReduce {
        Self::build_with_base(fabric, w, h, r_in, r_out, r_acc, colors::DEFAULT_BASE)
    }

    /// Like [`AllReduce::build`], on a custom virtual-channel base so that
    /// several instances can coexist and run concurrently.
    ///
    /// # Panics
    /// Panics if the region is smaller than 2×2 or exceeds the fabric.
    pub fn build_with_base(
        fabric: &mut Fabric,
        w: usize,
        h: usize,
        r_in: Reg,
        r_out: Reg,
        r_acc: Reg,
        base: u8,
    ) -> AllReduce {
        Self::build_at(fabric, 0, 0, w, h, r_in, r_out, r_acc, base)
    }

    /// Like [`AllReduce::build_with_base`], over the `w × h` region whose
    /// top-left tile sits at `(ox, oy)` — the origin-parameterized builder
    /// the multi-tenant service places tenant programs with. Routes and
    /// tasks stay strictly inside the region.
    ///
    /// # Panics
    /// Panics if the region is smaller than 2×2 or reaches past the fabric.
    #[allow(clippy::too_many_arguments)]
    pub fn build_at(
        fabric: &mut Fabric,
        ox: usize,
        oy: usize,
        w: usize,
        h: usize,
        r_in: Reg,
        r_out: Reg,
        r_acc: Reg,
        base: u8,
    ) -> AllReduce {
        assert!(w >= 2 && h >= 2, "AllReduce needs at least a 2x2 region");
        assert!(ox + w <= fabric.width() && oy + h <= fabric.height(), "region exceeds fabric");
        let cx0 = (w - 1) / 2;
        let cx1 = cx0 + 1;
        let cy0 = (h - 1) / 2;
        let cy1 = cy0 + 1;

        Self::configure_routes(fabric, ox, oy, w, h, cx0, cx1, cy0, cy1, base);

        let mut tasks = Vec::with_capacity(w * h);
        for y in 0..h {
            for x in 0..w {
                let (mut body, root_tail, recv) = Self::tile_body_parts(
                    fabric, ox, oy, x, y, w, h, cx0, cx1, cy0, cy1, r_in, r_out, r_acc, base,
                );
                body.extend(root_tail);
                body.extend(recv);
                let core = &mut fabric.tile_mut(ox + x, oy + y).core;
                let id = core.add_task(Task::new("allreduce", body));
                core.mark_entry(id);
                tasks.push(id);
            }
        }
        AllReduce { w, h, ox, oy, r_in, r_out, r_acc, base, tasks }
    }

    /// A handle for the **same program** resident at another origin — used
    /// after blitting the built region to a different place on a (possibly
    /// different) fabric. Task ids are per-core and the program is
    /// translation-invariant, so only the origin changes.
    pub fn rebased(&self, ox: usize, oy: usize) -> AllReduce {
        AllReduce { ox, oy, ..self.clone() }
    }

    /// The task id to activate on tile `(x, y)` (for phase chaining).
    pub fn task(&self, x: usize, y: usize) -> TaskId {
        self.tasks[y * self.w + x]
    }

    /// The virtual-channel base this instance was built on.
    pub fn color_base(&self) -> u8 {
        self.base
    }

    #[allow(clippy::too_many_arguments)]
    fn configure_routes(
        fabric: &mut Fabric,
        ox: usize,
        oy: usize,
        w: usize,
        h: usize,
        cx0: usize,
        cx1: usize,
        cy0: usize,
        cy1: usize,
        base: u8,
    ) {
        let (row_e, row_w, col_s, col_n, fin, bc) = (
            base + colors::ROW_E,
            base + colors::ROW_W,
            base + colors::COL_S,
            base + colors::COL_N,
            base + colors::FIN,
            base + colors::BC,
        );
        // All route coordinates below are region-relative; `sr` rebases
        // them onto the fabric at the region origin.
        let mut sr = |x: usize, y: usize, from: Port, color: u8, fan: &[Port]| {
            fabric.set_route(ox + x, oy + y, from, color, fan);
        };
        // --- Row reduction. ---
        for y in 0..h {
            for x in 0..cx0 {
                sr(x, y, Port::Ramp, row_e, &[Port::East]);
                if x > 0 {
                    sr(x, y, Port::West, row_e, &[Port::East]);
                }
            }
            if cx0 > 0 {
                sr(cx0, y, Port::West, row_e, &[Port::Ramp]);
            }
            for x in cx1 + 1..w {
                sr(x, y, Port::Ramp, row_w, &[Port::West]);
                if x < w - 1 {
                    sr(x, y, Port::East, row_w, &[Port::West]);
                }
            }
            if cx1 < w - 1 {
                sr(cx1, y, Port::East, row_w, &[Port::Ramp]);
            }
        }
        // --- Column reduction on the two central columns. ---
        for &cx in &[cx0, cx1] {
            for y in 0..cy0 {
                sr(cx, y, Port::Ramp, col_s, &[Port::South]);
                if y > 0 {
                    sr(cx, y, Port::North, col_s, &[Port::South]);
                }
            }
            if cy0 > 0 {
                sr(cx, cy0, Port::North, col_s, &[Port::Ramp]);
            }
            for y in cy1 + 1..h {
                sr(cx, y, Port::Ramp, col_n, &[Port::North]);
                if y < h - 1 {
                    sr(cx, y, Port::South, col_n, &[Port::North]);
                }
            }
            if cy1 < h - 1 {
                sr(cx, cy1, Port::South, col_n, &[Port::Ramp]);
            }
        }
        // --- 4:1 to the root (cx0, cy0). ---
        sr(cx1, cy0, Port::Ramp, fin, &[Port::West]);
        sr(cx0, cy0, Port::East, fin, &[Port::Ramp]);
        sr(cx1, cy1, Port::Ramp, fin, &[Port::West]);
        sr(cx0, cy1, Port::East, fin, &[Port::North]);
        sr(cx0, cy1, Port::Ramp, fin, &[Port::North]);
        sr(cx0, cy0, Port::South, fin, &[Port::Ramp]);
        // --- Broadcast from the root. ---
        {
            let mut fan = vec![Port::East, Port::South];
            if cx0 > 0 {
                fan.push(Port::West);
            }
            if cy0 > 0 {
                fan.push(Port::North);
            }
            sr(cx0, cy0, Port::Ramp, bc, &fan);
        }
        {
            // (cx1, cy0) relays vertically and into its row's right segment.
            let mut fan = vec![Port::Ramp, Port::South];
            if cy0 > 0 {
                fan.push(Port::North);
            }
            if cx1 < w - 1 {
                fan.push(Port::East);
            }
            sr(cx1, cy0, Port::West, bc, &fan);
        }
        // Central columns relay away from the root and into their rows.
        for (cx, row_port, row_exists) in
            [(cx0, Port::West, cx0 > 0), (cx1, Port::East, cx1 < w - 1)]
        {
            for y in 0..h {
                if y == cy0 {
                    continue; // root / relay handled above
                }
                let from = if y < cy0 { Port::South } else { Port::North };
                let mut fan = vec![Port::Ramp];
                if y < cy0 && y > 0 {
                    fan.push(Port::North);
                }
                if y > cy0 && y < h - 1 {
                    fan.push(Port::South);
                }
                if row_exists {
                    fan.push(row_port);
                }
                sr(cx, y, from, bc, &fan);
            }
        }
        // Row tiles outside the central columns relay outward.
        for y in 0..h {
            for x in 0..cx0 {
                let mut fan = vec![Port::Ramp];
                if x > 0 {
                    fan.push(Port::West);
                }
                sr(x, y, Port::East, bc, &fan);
            }
            for x in cx1 + 1..w {
                let mut fan = vec![Port::Ramp];
                if x < w - 1 {
                    fan.push(Port::East);
                }
                sr(x, y, Port::West, bc, &fan);
            }
        }
    }

    /// Builds one tile's statements, split into three parts: the *upstream
    /// reduction work* (sends and partial sums, ending with the wafer-local
    /// total in the root's `r_acc`), the *root's broadcast transmit*, and
    /// the *broadcast receive*. Fusing lets two instances interleave (both
    /// upstream parts before either blocking receive); the hierarchical
    /// multi-wafer AllReduce instead cuts between the reduction and the
    /// broadcast so the host can combine the per-wafer partial sums.
    #[allow(clippy::too_many_arguments)]
    fn tile_body_parts(
        fabric: &mut Fabric,
        ox: usize,
        oy: usize,
        x: usize,
        y: usize,
        w: usize,
        h: usize,
        cx0: usize,
        cx1: usize,
        cy0: usize,
        cy1: usize,
        r_in: Reg,
        r_out: Reg,
        r_acc: Reg,
        base: u8,
    ) -> (Vec<Stmt>, Vec<Stmt>, Vec<Stmt>) {
        let (row_e, row_w, col_s, col_n, fin, bc) = (
            base + colors::ROW_E,
            base + colors::ROW_W,
            base + colors::COL_S,
            base + colors::COL_N,
            base + colors::FIN,
            base + colors::BC,
        );
        let core = &mut fabric.tile_mut(ox + x, oy + y).core;
        let mut body = Vec::new();
        let in_central_col = x == cx0 || x == cx1;

        if !in_central_col {
            // Plain tile: contribute to the row reduction, then await the
            // broadcast.
            let color = if x < cx0 { row_e } else { row_w };
            let d_tx = core.add_dsr(mk::tx32(color, 1));
            body.push(Stmt::InitDsr { dsr: d_tx, desc: mk::tx32(color, 1) });
            body.push(Stmt::Exec(TensorInstr {
                op: Op::StoreReg { reg: r_in },
                dst: Some(d_tx),
                a: None,
                b: None,
            }));
        } else {
            // Row-center tile: accumulate own value + the half-row stream
            // (absent when this center column sits on the fabric edge).
            let (color, len) = if x == cx0 { (row_e, cx0) } else { (row_w, w - 1 - cx1) };
            body.push(Stmt::RegArith { op: RegOp::Mov, dst: r_acc, a: r_in, b: r_in });
            if len > 0 {
                let d_rx = core.add_dsr(mk::rx32(color, len as u32));
                body.push(Stmt::InitDsr { dsr: d_rx, desc: mk::rx32(color, len as u32) });
                body.push(Stmt::Exec(TensorInstr {
                    op: Op::SumReg { acc: r_acc },
                    dst: None,
                    a: Some(d_rx),
                    b: None,
                }));
            }

            if y != cy0 && y != cy1 {
                // Column contributor.
                let color = if y < cy0 { col_s } else { col_n };
                let d_tx = core.add_dsr(mk::tx32(color, 1));
                body.push(Stmt::InitDsr { dsr: d_tx, desc: mk::tx32(color, 1) });
                body.push(Stmt::Exec(TensorInstr {
                    op: Op::StoreReg { reg: r_acc },
                    dst: Some(d_tx),
                    a: None,
                    b: None,
                }));
            } else {
                // One of the central four: fold in the half-column stream
                // (absent when the center row sits on the fabric edge).
                let (color, len) = if y == cy0 { (col_s, cy0) } else { (col_n, h - 1 - cy1) };
                if len > 0 {
                    let d_rx = core.add_dsr(mk::rx32(color, len as u32));
                    body.push(Stmt::InitDsr { dsr: d_rx, desc: mk::rx32(color, len as u32) });
                    body.push(Stmt::Exec(TensorInstr {
                        op: Op::SumReg { acc: r_acc },
                        dst: None,
                        a: Some(d_rx),
                        b: None,
                    }));
                }

                let is_root = x == cx0 && y == cy0;
                if is_root {
                    let d_rx = core.add_dsr(mk::rx32(fin, 3));
                    body.push(Stmt::InitDsr { dsr: d_rx, desc: mk::rx32(fin, 3) });
                    body.push(Stmt::Exec(TensorInstr {
                        op: Op::SumReg { acc: r_acc },
                        dst: None,
                        a: Some(d_rx),
                        b: None,
                    }));
                    let d_tx = core.add_dsr(mk::tx32(bc, 1));
                    let root_tail = vec![
                        Stmt::InitDsr { dsr: d_tx, desc: mk::tx32(bc, 1) },
                        Stmt::Exec(TensorInstr {
                            op: Op::StoreReg { reg: r_acc },
                            dst: Some(d_tx),
                            a: None,
                            b: None,
                        }),
                        Stmt::RegArith { op: RegOp::Mov, dst: r_out, a: r_acc, b: r_acc },
                    ];
                    return (body, root_tail, Vec::new()); // the root keeps its own copy
                }
                let d_tx = core.add_dsr(mk::tx32(fin, 1));
                body.push(Stmt::InitDsr { dsr: d_tx, desc: mk::tx32(fin, 1) });
                body.push(Stmt::Exec(TensorInstr {
                    op: Op::StoreReg { reg: r_acc },
                    dst: Some(d_tx),
                    a: None,
                    b: None,
                }));
            }
        }

        // Everyone except the root receives the broadcast — returned as the
        // separate blocking part.
        let d_bc = core.add_dsr(mk::rx32(bc, 1));
        let recv = vec![
            Stmt::InitDsr { dsr: d_bc, desc: mk::rx32(bc, 1) },
            Stmt::Exec(TensorInstr {
                op: Op::LoadReg { reg: r_out },
                dst: None,
                a: Some(d_bc),
                b: None,
            }),
        ];
        (body, Vec::new(), recv)
    }

    /// Builds a per-tile task that runs `self` and `other` **concurrently**:
    /// both instances' upstream work first, then both broadcast receives.
    /// Both instances must have been built over the same region.
    ///
    /// # Panics
    /// Panics if the regions differ.
    pub fn build_fused_task(
        &self,
        other: &AllReduce,
        fabric: &mut Fabric,
        x: usize,
        y: usize,
    ) -> TaskId {
        assert_eq!((self.w, self.h), (other.w, other.h), "regions must match");
        assert_eq!((self.ox, self.oy), (other.ox, other.oy), "origins must match");
        let (ox, oy) = (self.ox, self.oy);
        let (w, h) = (self.w, self.h);
        let cx0 = (w - 1) / 2;
        let cx1 = cx0 + 1;
        let cy0 = (h - 1) / 2;
        let cy1 = cy0 + 1;
        let (w1, t1, r1) = Self::tile_body_parts(
            fabric, ox, oy, x, y, w, h, cx0, cx1, cy0, cy1, self.r_in, self.r_out, self.r_acc,
            self.base,
        );
        let (w2, t2, r2) = Self::tile_body_parts(
            fabric,
            ox,
            oy,
            x,
            y,
            w,
            h,
            cx0,
            cx1,
            cy0,
            cy1,
            other.r_in,
            other.r_out,
            other.r_acc,
            other.base,
        );
        let mut body = w1;
        body.extend(t1);
        body.extend(w2);
        body.extend(t2);
        body.extend(r1);
        body.extend(r2);
        let core = &mut fabric.tile_mut(ox + x, oy + y).core;
        let id = core.add_task(Task::new("allreduce-fused", body));
        core.mark_entry(id);
        id
    }

    /// Host-driven execution: sets each tile's input register, activates
    /// every task, runs to quiescence, and reads back every tile's output
    /// register. Returns the per-tile results and the cycle count.
    ///
    /// # Panics
    /// Panics if `values.len() != w*h` or the fabric stalls.
    pub fn run(&self, fabric: &mut Fabric, values: &[f32]) -> (Vec<f32>, u64) {
        assert_eq!(values.len(), self.w * self.h, "one value per tile");
        for y in 0..self.h {
            for x in 0..self.w {
                let core = &mut fabric.tile_mut(self.ox + x, self.oy + y).core;
                core.regs[self.r_in] = values[y * self.w + x];
                core.activate(self.tasks[y * self.w + x]);
            }
        }
        let cycles = fabric
            .run_until_quiescent(100_000)
            .unwrap_or_else(|e| panic!("allreduce stalled: {e}"));
        let mut out = Vec::with_capacity(values.len());
        for y in 0..self.h {
            for x in 0..self.w {
                out.push(fabric.tile(self.ox + x, self.oy + y).core.regs[self.r_out]);
            }
        }
        (out, cycles)
    }
}

/// The hierarchical split of the AllReduce: the on-wafer fp32 reduction
/// tree and the broadcast are **separate tasks**, so a host-level combine
/// can run between them. After the reduce phase quiesces, the wafer-local
/// sum sits in the root tile's `r_acc`; the multi-wafer driver reads every
/// wafer's partial sum over the host interconnect, combines them in fp32,
/// writes the global sum back into each root's `r_acc`, and runs the
/// broadcast phase (root transmits `r_acc`, every other tile receives into
/// `r_out`). On a single wafer, reduce followed immediately by broadcast
/// is arithmetically identical to [`AllReduce`].
pub struct AllReduceSplit {
    w: usize,
    h: usize,
    root: (usize, usize),
    /// Input register (each core's contribution).
    pub r_in: Reg,
    /// Output register (the global sum, on every core).
    pub r_out: Reg,
    /// Scratch accumulator; holds the wafer-local sum on the root between
    /// the two phases.
    pub r_acc: Reg,
    reduce: Vec<TaskId>,
    bcast: Vec<TaskId>,
}

impl AllReduceSplit {
    /// Builds the routing and the per-tile reduce/broadcast task pairs on
    /// the default virtual-channel base. Requires `w ≥ 2` and `h ≥ 2`.
    ///
    /// # Panics
    /// Panics if the region is smaller than 2×2 or exceeds the fabric.
    pub fn build(
        fabric: &mut Fabric,
        w: usize,
        h: usize,
        r_in: Reg,
        r_out: Reg,
        r_acc: Reg,
    ) -> AllReduceSplit {
        Self::build_with_base(fabric, w, h, r_in, r_out, r_acc, colors::DEFAULT_BASE)
    }

    /// Like [`AllReduceSplit::build`], on a custom virtual-channel base.
    ///
    /// # Panics
    /// Panics if the region is smaller than 2×2 or exceeds the fabric.
    pub fn build_with_base(
        fabric: &mut Fabric,
        w: usize,
        h: usize,
        r_in: Reg,
        r_out: Reg,
        r_acc: Reg,
        base: u8,
    ) -> AllReduceSplit {
        assert!(w >= 2 && h >= 2, "AllReduce needs at least a 2x2 region");
        assert!(w <= fabric.width() && h <= fabric.height(), "region exceeds fabric");
        let cx0 = (w - 1) / 2;
        let cx1 = cx0 + 1;
        let cy0 = (h - 1) / 2;
        let cy1 = cy0 + 1;

        AllReduce::configure_routes(fabric, 0, 0, w, h, cx0, cx1, cy0, cy1, base);

        let mut reduce = Vec::with_capacity(w * h);
        let mut bcast = Vec::with_capacity(w * h);
        for y in 0..h {
            for x in 0..w {
                let (up, root_tail, recv) = AllReduce::tile_body_parts(
                    fabric, 0, 0, x, y, w, h, cx0, cx1, cy0, cy1, r_in, r_out, r_acc, base,
                );
                let core = &mut fabric.tile_mut(x, y).core;
                let red = core.add_task(Task::new("allreduce-reduce", up));
                core.mark_entry(red);
                reduce.push(red);
                let mut bc_body = root_tail;
                bc_body.extend(recv);
                let bc = core.add_task(Task::new("allreduce-bcast", bc_body));
                core.mark_entry(bc);
                bcast.push(bc);
            }
        }
        AllReduceSplit { w, h, root: (cx0, cy0), r_in, r_out, r_acc, reduce, bcast }
    }

    /// The reduce-phase task to activate on tile `(x, y)`.
    pub fn reduce_task(&self, x: usize, y: usize) -> TaskId {
        self.reduce[y * self.w + x]
    }

    /// The broadcast-phase task to activate on tile `(x, y)`.
    pub fn bcast_task(&self, x: usize, y: usize) -> TaskId {
        self.bcast[y * self.w + x]
    }

    /// The root tile holding the wafer-local sum in `r_acc` after the
    /// reduce phase.
    pub fn root(&self) -> (usize, usize) {
        self.root
    }

    /// The region this instance was built over.
    pub fn dims(&self) -> (usize, usize) {
        (self.w, self.h)
    }
}

/// Virtual channels for the [`ChainReduce`] vector AllReduce. These alias
/// the 2-D SpMV's halo colors (16..20), which is safe: the two programs are
/// never resident on the same fabric, and routes are per-tile.
pub mod chain_colors {
    /// Westward row chains (every row reduces toward `x = 0`).
    pub const ROW: u8 = 16;
    /// Northward column chain on `x = 0` (toward the root `(0, 0)`).
    pub const COL: u8 = 17;
    /// Result broadcast from the root.
    pub const BC: u8 = 18;
}

/// A **vector** AllReduce: element-wise sum of an `m`-word fp32 payload
/// resident at the same address `pay` on every tile, reduced to the root
/// tile `(0, 0)` by systolic chains (west along every row, then north along
/// column 0), plus a broadcast phase that streams a host-written reply from
/// the root to every tile's registers.
///
/// The scalar [`AllReduce`] tree cannot carry multi-word payloads — its
/// `SumReg` fan-in interleaves flits from several senders, which is fine for
/// commutative scalar accumulation but scrambles vector lanes. The chains
/// here have exactly one upstream neighbour per tile, so lanes stay
/// aligned: each relay computes `tx[i] = rx[i] + pay[i]` in lock-step.
///
/// This is the transport under the fused single-reduction BiCGStab: all of
/// an iteration's dot products ride one payload, the host combines the
/// per-wafer roots' partials over the host links (binomial tree), writes
/// the derived scalars back to each root, and the broadcast loads them into
/// every tile's registers — one host round-trip per solver iteration.
pub struct ChainReduce {
    w: usize,
    h: usize,
    /// Byte address of the `m`-word fp32 payload on every tile. After the
    /// reduce phase, the root's copy holds the element-wise global sum.
    pub pay: u32,
    /// Payload length in fp32 words.
    pub m: u32,
    /// Byte address (root tile only) of the host-written broadcast source.
    pub bc_src: u32,
    reduce: Vec<TaskId>,
    bcast: Vec<TaskId>,
}

impl ChainReduce {
    /// Builds routes and per-tile reduce/broadcast tasks over the `w × h`
    /// region at the fabric origin. `pay` is the payload address (same on
    /// every tile); `bc_src` is where the host writes the reply on the root
    /// before the broadcast phase; `bc_regs` lists the registers every tile
    /// loads from the reply stream, in stream order.
    ///
    /// # Panics
    /// Panics if the region is empty, exceeds the fabric, or `bc_regs` is
    /// empty.
    pub fn build(
        fabric: &mut Fabric,
        w: usize,
        h: usize,
        pay: u32,
        m: u32,
        bc_src: u32,
        bc_regs: &[Reg],
    ) -> ChainReduce {
        assert!(w >= 1 && h >= 1, "ChainReduce needs a non-empty region");
        assert!(w <= fabric.width() && h <= fabric.height(), "region exceeds fabric");
        assert!(!bc_regs.is_empty(), "broadcast payload must be non-empty");
        let nbc = bc_regs.len() as u32;

        // --- Routes. ---
        for y in 0..h {
            // Row chains flow west; each relay consumes at the ramp and
            // re-emits its partial from the ramp.
            if w > 1 {
                fabric.set_route(w - 1, y, Port::Ramp, chain_colors::ROW, &[Port::West]);
                for x in 1..w - 1 {
                    fabric.set_route(x, y, Port::East, chain_colors::ROW, &[Port::Ramp]);
                    fabric.set_route(x, y, Port::Ramp, chain_colors::ROW, &[Port::West]);
                }
                fabric.set_route(0, y, Port::East, chain_colors::ROW, &[Port::Ramp]);
            }
        }
        if h > 1 {
            fabric.set_route(0, h - 1, Port::Ramp, chain_colors::COL, &[Port::North]);
            for y in 1..h - 1 {
                fabric.set_route(0, y, Port::South, chain_colors::COL, &[Port::Ramp]);
                fabric.set_route(0, y, Port::Ramp, chain_colors::COL, &[Port::North]);
            }
            fabric.set_route(0, 0, Port::South, chain_colors::COL, &[Port::Ramp]);
        }
        // Broadcast: east along row 0, south down every column.
        {
            let mut fan = Vec::new();
            if w > 1 {
                fan.push(Port::East);
            }
            if h > 1 {
                fan.push(Port::South);
            }
            if !fan.is_empty() {
                fabric.set_route(0, 0, Port::Ramp, chain_colors::BC, &fan);
            }
        }
        for x in 1..w {
            let mut fan = vec![Port::Ramp];
            if x < w - 1 {
                fan.push(Port::East);
            }
            if h > 1 {
                fan.push(Port::South);
            }
            fabric.set_route(x, 0, Port::West, chain_colors::BC, &fan);
        }
        for y in 1..h {
            for x in 0..w {
                let mut fan = vec![Port::Ramp];
                if y < h - 1 {
                    fan.push(Port::South);
                }
                fabric.set_route(x, y, Port::North, chain_colors::BC, &fan);
            }
        }

        // --- Tasks. ---
        let mut reduce = Vec::with_capacity(w * h);
        let mut bcast = Vec::with_capacity(w * h);
        for y in 0..h {
            for x in 0..w {
                let core = &mut fabric.tile_mut(x, y).core;
                let d_pay = core.add_dsr(mk::tensor32(pay, m));
                let mut body = Vec::new();
                // Row segment: rightmost sends, middles relay-and-add,
                // column 0 folds the row stream into its payload.
                if w > 1 {
                    body.push(Stmt::InitDsr { dsr: d_pay, desc: mk::tensor32(pay, m) });
                    if x == w - 1 {
                        let d_tx = core.add_dsr(mk::tx32(chain_colors::ROW, m));
                        body.push(Stmt::InitDsr {
                            dsr: d_tx,
                            desc: mk::tx32(chain_colors::ROW, m),
                        });
                        body.push(Stmt::Exec(TensorInstr {
                            op: Op::Copy,
                            dst: Some(d_tx),
                            a: Some(d_pay),
                            b: None,
                        }));
                    } else if x > 0 {
                        let d_tx = core.add_dsr(mk::tx32(chain_colors::ROW, m));
                        let d_rx = core.add_dsr(mk::rx32(chain_colors::ROW, m));
                        body.push(Stmt::InitDsr {
                            dsr: d_tx,
                            desc: mk::tx32(chain_colors::ROW, m),
                        });
                        body.push(Stmt::InitDsr {
                            dsr: d_rx,
                            desc: mk::rx32(chain_colors::ROW, m),
                        });
                        body.push(Stmt::Exec(TensorInstr {
                            op: Op::Add,
                            dst: Some(d_tx),
                            a: Some(d_rx),
                            b: Some(d_pay),
                        }));
                    } else {
                        let d_rx = core.add_dsr(mk::rx32(chain_colors::ROW, m));
                        body.push(Stmt::InitDsr {
                            dsr: d_rx,
                            desc: mk::rx32(chain_colors::ROW, m),
                        });
                        body.push(Stmt::Exec(TensorInstr {
                            op: Op::AddAssign,
                            dst: Some(d_pay),
                            a: Some(d_rx),
                            b: None,
                        }));
                    }
                }
                // Column segment on x = 0, after the row fold above.
                if x == 0 && h > 1 {
                    let d_pay2 = core.add_dsr(mk::tensor32(pay, m));
                    body.push(Stmt::InitDsr { dsr: d_pay2, desc: mk::tensor32(pay, m) });
                    if y == h - 1 {
                        let d_tx = core.add_dsr(mk::tx32(chain_colors::COL, m));
                        body.push(Stmt::InitDsr {
                            dsr: d_tx,
                            desc: mk::tx32(chain_colors::COL, m),
                        });
                        body.push(Stmt::Exec(TensorInstr {
                            op: Op::Copy,
                            dst: Some(d_tx),
                            a: Some(d_pay2),
                            b: None,
                        }));
                    } else if y > 0 {
                        let d_tx = core.add_dsr(mk::tx32(chain_colors::COL, m));
                        let d_rx = core.add_dsr(mk::rx32(chain_colors::COL, m));
                        body.push(Stmt::InitDsr {
                            dsr: d_tx,
                            desc: mk::tx32(chain_colors::COL, m),
                        });
                        body.push(Stmt::InitDsr {
                            dsr: d_rx,
                            desc: mk::rx32(chain_colors::COL, m),
                        });
                        body.push(Stmt::Exec(TensorInstr {
                            op: Op::Add,
                            dst: Some(d_tx),
                            a: Some(d_rx),
                            b: Some(d_pay2),
                        }));
                    } else {
                        let d_rx = core.add_dsr(mk::rx32(chain_colors::COL, m));
                        body.push(Stmt::InitDsr {
                            dsr: d_rx,
                            desc: mk::rx32(chain_colors::COL, m),
                        });
                        body.push(Stmt::Exec(TensorInstr {
                            op: Op::AddAssign,
                            dst: Some(d_pay2),
                            a: Some(d_rx),
                            b: None,
                        }));
                    }
                }
                let red = core.add_task(Task::new("chain-reduce", body));
                core.mark_entry(red);
                reduce.push(red);

                // Broadcast task: the root streams the host reply out and
                // loads its own registers from memory; everyone else loads
                // the registers straight off the stream, in order.
                let mut bc_body = Vec::new();
                if x == 0 && y == 0 {
                    if w > 1 || h > 1 {
                        let d_src = core.add_dsr(mk::tensor32(bc_src, nbc));
                        let d_tx = core.add_dsr(mk::tx32(chain_colors::BC, nbc));
                        bc_body.push(Stmt::InitDsr { dsr: d_src, desc: mk::tensor32(bc_src, nbc) });
                        bc_body.push(Stmt::InitDsr {
                            dsr: d_tx,
                            desc: mk::tx32(chain_colors::BC, nbc),
                        });
                        bc_body.push(Stmt::Exec(TensorInstr {
                            op: Op::Copy,
                            dst: Some(d_tx),
                            a: Some(d_src),
                            b: None,
                        }));
                    }
                    for (i, &reg) in bc_regs.iter().enumerate() {
                        let desc = mk::tensor32(bc_src + 4 * i as u32, 1);
                        let d = core.add_dsr(desc);
                        bc_body.push(Stmt::InitDsr { dsr: d, desc });
                        bc_body.push(Stmt::Exec(TensorInstr {
                            op: Op::LoadReg { reg },
                            dst: None,
                            a: Some(d),
                            b: None,
                        }));
                    }
                } else {
                    for &reg in bc_regs {
                        let desc = mk::rx32(chain_colors::BC, 1);
                        let d = core.add_dsr(desc);
                        bc_body.push(Stmt::InitDsr { dsr: d, desc });
                        bc_body.push(Stmt::Exec(TensorInstr {
                            op: Op::LoadReg { reg },
                            dst: None,
                            a: Some(d),
                            b: None,
                        }));
                    }
                }
                let bc = core.add_task(Task::new("chain-bcast", bc_body));
                core.mark_entry(bc);
                bcast.push(bc);
            }
        }
        ChainReduce { w, h, pay, m, bc_src, reduce, bcast }
    }

    /// The reduce-phase task to activate on tile `(x, y)`.
    pub fn reduce_task(&self, x: usize, y: usize) -> TaskId {
        self.reduce[y * self.w + x]
    }

    /// The broadcast-phase task to activate on tile `(x, y)`.
    pub fn bcast_task(&self, x: usize, y: usize) -> TaskId {
        self.bcast[y * self.w + x]
    }

    /// The root tile whose payload holds the reduced vector.
    pub fn root(&self) -> (usize, usize) {
        (0, 0)
    }

    /// The region this instance was built over.
    pub fn dims(&self) -> (usize, usize) {
        (self.w, self.h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const R_IN: Reg = 24;
    const R_OUT: Reg = 25;
    const R_ACC: Reg = 26;

    fn reduce(w: usize, h: usize, values: &[f32]) -> (Vec<f32>, u64) {
        let mut fabric = Fabric::new(w, h);
        let ar = AllReduce::build(&mut fabric, w, h, R_IN, R_OUT, R_ACC);
        ar.run(&mut fabric, values)
    }

    #[test]
    fn sums_ones_on_various_sizes() {
        for (w, h) in [(2, 2), (3, 3), (4, 4), (5, 3), (2, 7), (8, 8), (9, 5)] {
            let n = w * h;
            let (out, cycles) = reduce(w, h, &vec![1.0; n]);
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, n as f32, "{w}x{h} tile {i} after {cycles} cycles");
            }
        }
    }

    #[test]
    fn sums_distinct_values() {
        let (w, h) = (6, 5);
        let values: Vec<f32> = (0..w * h).map(|i| (i as f32) - 7.5).collect();
        let expect: f32 = values.iter().sum();
        let (out, _) = reduce(w, h, &values);
        for v in out {
            assert!((v - expect).abs() <= 1e-3, "got {v}, expect {expect}");
        }
    }

    #[test]
    fn reruns_produce_fresh_results() {
        let (w, h) = (4, 4);
        let mut fabric = Fabric::new(w, h);
        let ar = AllReduce::build(&mut fabric, w, h, R_IN, R_OUT, R_ACC);
        let (out1, _) = ar.run(&mut fabric, &[2.0; 16]);
        assert!(out1.iter().all(|&v| v == 32.0));
        let (out2, _) = ar.run(&mut fabric, &[0.5; 16]);
        assert!(out2.iter().all(|&v| v == 8.0), "{out2:?}");
    }

    #[test]
    fn latency_tracks_the_diameter() {
        // Paper: "cycle count only about 10% greater than the diameter".
        // Our model adds a constant per-phase task overhead; check that the
        // per-hop slope is ~1 by differencing two sizes.
        let c16 = reduce(16, 16, &vec![1.0; 256]).1;
        let c32 = reduce(32, 32, &vec![1.0; 1024]).1;
        let slope = (c32 - c16) as f64 / 32.0; // diameter grew by 32 hops
        assert!(
            (0.8..2.5).contains(&slope),
            "per-hop latency slope should be near 1, got {slope} (c16={c16}, c32={c32})"
        );
        let diameter = 62.0;
        assert!(
            (c32 as f64) < 3.0 * diameter + 60.0,
            "allreduce latency {c32} too far above diameter {diameter}"
        );
    }

    #[test]
    fn split_reduce_then_bcast_matches_fused() {
        // Reduce to the root, meddle with nothing, broadcast: every tile
        // must end with the same sum the one-task AllReduce produces, and
        // the root's r_acc must already hold it after the reduce phase
        // alone (the host-combine interposition point).
        let (w, h) = (5, 4);
        let values: Vec<f32> = (0..w * h).map(|i| (i as f32) * 0.5 - 3.0).collect();
        let expect: f32 = values.iter().sum();
        let mut fabric = Fabric::new(w, h);
        let ar = AllReduceSplit::build(&mut fabric, w, h, R_IN, R_OUT, R_ACC);
        for y in 0..h {
            for x in 0..w {
                let core = &mut fabric.tile_mut(x, y).core;
                core.regs[R_IN] = values[y * w + x];
                core.activate(ar.reduce_task(x, y));
            }
        }
        fabric.run_until_quiescent(100_000).unwrap();
        let (rx, ry) = ar.root();
        let partial = fabric.tile(rx, ry).core.regs[R_ACC];
        assert!((partial - expect).abs() <= 1e-3, "root partial {partial} vs {expect}");
        for y in 0..h {
            for x in 0..w {
                fabric.tile_mut(x, y).core.activate(ar.bcast_task(x, y));
            }
        }
        fabric.run_until_quiescent(100_000).unwrap();
        for y in 0..h {
            for x in 0..w {
                let got = fabric.tile(x, y).core.regs[R_OUT];
                assert!((got - expect).abs() <= 1e-3, "tile ({x},{y}) got {got}");
            }
        }
    }

    #[test]
    fn chain_reduce_sums_vector_payloads_lane_aligned() {
        // Each tile contributes a distinct m-word payload; the root must
        // end with the exact element-wise sum (fp32, deterministic order).
        let (w, h, m) = (5usize, 4usize, 14u32);
        let mut fabric = Fabric::new(w, h);
        let mut pay = 0;
        let mut bc_src = 0;
        for y in 0..h {
            for x in 0..w {
                let t = fabric.tile_mut(x, y);
                pay = t.mem.alloc_vec(m, wse_arch::types::Dtype::F32).unwrap();
                bc_src = t.mem.alloc_vec(7, wse_arch::types::Dtype::F32).unwrap();
                for j in 0..m {
                    let v = (y * w + x) as f32 + j as f32 * 0.125;
                    t.mem.write_f32(pay + 4 * j, v);
                }
            }
        }
        let regs: [Reg; 7] = [2, 3, 6, 7, 12, 9, 11];
        let cr = ChainReduce::build(&mut fabric, w, h, pay, m, bc_src, &regs);
        for y in 0..h {
            for x in 0..w {
                let t = cr.reduce_task(x, y);
                fabric.tile_mut(x, y).core.activate(t);
            }
        }
        fabric.run_until_quiescent(100_000).unwrap();
        let tile_sum: f32 = (0..w * h).map(|i| i as f32).sum();
        for j in 0..m {
            let got = fabric.tile(0, 0).mem.read_f32(pay + 4 * j);
            let expect = tile_sum + (w * h) as f32 * j as f32 * 0.125;
            assert!((got - expect).abs() < 1e-3, "lane {j}: got {got}, expect {expect}");
        }
        // Host writes a 7-word reply on the root; broadcast loads it into
        // the named registers on every tile.
        for (i, _) in regs.iter().enumerate() {
            fabric.tile_mut(0, 0).mem.write_f32(bc_src + 4 * i as u32, 10.0 + i as f32);
        }
        for y in 0..h {
            for x in 0..w {
                let t = cr.bcast_task(x, y);
                fabric.tile_mut(x, y).core.activate(t);
            }
        }
        fabric.run_until_quiescent(100_000).unwrap();
        for y in 0..h {
            for x in 0..w {
                for (i, &r) in regs.iter().enumerate() {
                    let got = fabric.tile(x, y).core.regs[r];
                    assert_eq!(got, 10.0 + i as f32, "tile ({x},{y}) reg {r}");
                }
            }
        }
    }

    #[test]
    fn chain_reduce_reruns_and_degenerate_regions() {
        // Re-running must re-fold from the current payload (descriptors
        // rewound per activation), and 1xN / Nx1 / 1x1 regions must work.
        for (w, h) in [(1usize, 1usize), (1, 4), (4, 1), (3, 3)] {
            let mut fabric = Fabric::new(w.max(2), h.max(2));
            let mut pay = 0;
            let mut bc_src = 0;
            for y in 0..h.max(2) {
                for x in 0..w.max(2) {
                    let t = fabric.tile_mut(x, y);
                    pay = t.mem.alloc_vec(3, wse_arch::types::Dtype::F32).unwrap();
                    bc_src = t.mem.alloc_vec(1, wse_arch::types::Dtype::F32).unwrap();
                }
            }
            let cr = ChainReduce::build(&mut fabric, w, h, pay, 3, bc_src, &[5]);
            for round in 1..=2u32 {
                for y in 0..h {
                    for x in 0..w {
                        let t = fabric.tile_mut(x, y);
                        for j in 0..3 {
                            t.mem.write_f32(pay + 4 * j, round as f32);
                        }
                        let task = cr.reduce_task(x, y);
                        t.core.activate(task);
                    }
                }
                fabric.run_until_quiescent(100_000).unwrap();
                let got = fabric.tile(0, 0).mem.read_f32(pay + 4);
                assert_eq!(got, (w * h) as f32 * round as f32, "{w}x{h} round {round}");
            }
        }
    }

    #[test]
    fn fp32_precision_is_used() {
        // 4096 ones: fp16 accumulation would stagnate at 2048; fp32 is
        // exact. 64x64 fabric gives 4096 contributions.
        let (w, h) = (64, 64);
        let (out, _) = reduce(w, h, &vec![1.0; w * h]);
        assert_eq!(out[0], 4096.0, "fp32 accumulation must be exact here");
    }
}
