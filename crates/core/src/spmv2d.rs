//! The 2D 9-point SpMV with block-per-core mapping and output-halo exchange
//! (§IV.2 of the paper).
//!
//! "For the 2D problem we map a rectangular region of the mesh of v to each
//! core, and store all elements of the corresponding columns of A. After
//! multiplication of the local v with the local A we have generated products
//! in an output halo that must be sent to neighboring tiles. ... We complete
//! a round of send and add in one direction, then a round for the other
//! direction, and in this way avoid communication along diagonals of the
//! tile grid."
//!
//! Per core: the local `bx × by` block of `v` is multiplied against the nine
//! stored **column** coefficient arrays with fused FMACs into a
//! `(bx+2) × (by+2)` extended output buffer; the four edge strips (the
//! output halo) are then exchanged — first the x direction (full-height
//! strips, so corner products ride along), then the y direction — and added
//! into the neighbors' interiors.

use stencil::decomp::Block2D;
use stencil::dia::{DiaMatrix, Offset3};
use stencil::mesh::Mesh2D;
use wse_arch::dsr::mk;
use wse_arch::dsr::Descriptor;
use wse_arch::instr::{Op, Stmt, Task, TaskAction, TensorInstr};
use wse_arch::types::{Dtype, Port, TaskId};
use wse_arch::{Fabric, Tile};
use wse_float::F16;

/// Virtual channels for the halo exchange (disjoint from SpMV-3D and
/// scalar-AllReduce colors). The fused multi-wafer solver's
/// [`crate::allreduce::chain_colors`] (16–18) alias these, which is safe:
/// a 2-D SpMV program and a chain-reduce program are never resident on
/// the same fabric, and routes are per-tile. The multi-wafer seam halo
/// (colors 22–23 in [`crate::multi`]) stays disjoint from both.
pub mod colors {
    /// Eastward halo strips.
    pub const HALO_E: u8 = 16;
    /// Westward halo strips.
    pub const HALO_W: u8 = 17;
    /// Southward halo strips.
    pub const HALO_S: u8 = 18;
    /// Northward halo strips.
    pub const HALO_N: u8 = 19;
}

/// Register used as the zero constant when clearing the output buffer.
const R_ZERO: usize = 30;

/// Byte addresses of one tile's 2D SpMV data.
#[derive(Copy, Clone, Debug)]
pub struct Spmv2dLayout {
    /// Block extents.
    pub block: Block2D,
    /// Nine column-coefficient arrays (`bx·by` each), indexed like
    /// [`Offset3::nine_point_2d`].
    pub coef: [u32; 9],
    /// Local iterate block, `bx·by` words, row-major (y fastest).
    pub v: u32,
    /// Extended output buffer, `(bx+2)·(by+2)` words, row-major with width
    /// `by + 2`.
    pub ubuf: u32,
}

impl Spmv2dLayout {
    /// Allocates the layout in a tile's SRAM.
    ///
    /// # Panics
    /// Panics when the block exceeds the 48 KB budget — by construction this
    /// reproduces the paper's "up-to 38×38" limit.
    pub fn alloc(tile: &mut Tile, block: Block2D) -> Spmv2dLayout {
        let n = (block.bx * block.by) as u32;
        let mut coef = [0u32; 9];
        for c in &mut coef {
            *c = tile.mem.alloc_vec(n, Dtype::F16).expect("SRAM: 2D coefficients");
        }
        let v = tile.mem.alloc_vec(n, Dtype::F16).expect("SRAM: 2D iterate");
        let ubuf = tile
            .mem
            .alloc_vec(((block.bx + 2) * (block.by + 2)) as u32, Dtype::F16)
            .expect("SRAM: 2D output buffer");
        Spmv2dLayout { block, coef, v, ubuf }
    }

    /// Byte address of `ubuf[i][j]` (extended coordinates, `i` along x).
    pub fn u_addr(&self, i: usize, j: usize) -> u32 {
        self.ubuf + 2 * (i * (self.block.by + 2) + j) as u32
    }

    /// Byte address of `v[i][j]` (block coordinates).
    pub fn v_addr(&self, i: usize, j: usize) -> u32 {
        self.v + 2 * (i * self.block.by + j) as u32
    }
}

/// The whole-fabric 2D SpMV.
pub struct WaferSpmv2d {
    fabric_w: usize,
    fabric_h: usize,
    block: Block2D,
    layouts: Vec<Spmv2dLayout>,
    tasks: Vec<TaskId>,
}

impl WaferSpmv2d {
    /// Distributes a 9-point 2D matrix over a fabric of `w × h` cores, each
    /// holding a `block` region. The matrix mesh must equal
    /// `block.covered_mesh(w, h)`.
    ///
    /// # Panics
    /// Panics on geometry mismatch or SRAM exhaustion.
    pub fn build(fabric: &mut Fabric, a: &DiaMatrix<F16>, block: Block2D) -> WaferSpmv2d {
        let mesh3 = a.mesh();
        assert_eq!(mesh3.nz, 1, "2D kernel requires nz == 1");
        assert_eq!(a.offsets().len(), 9, "9-point stencil required");
        let (w, h) = (mesh3.nx / block.bx, mesh3.ny / block.by);
        assert_eq!(w * block.bx, mesh3.nx, "mesh x must tile evenly");
        assert_eq!(h * block.by, mesh3.ny, "mesh y must tile evenly");
        assert!(w <= fabric.width() && h <= fabric.height(), "mesh exceeds fabric");

        Self::configure_routes(fabric, w, h);

        let mut layouts = Vec::with_capacity(w * h);
        let mut tasks = Vec::with_capacity(w * h);
        for ty in 0..h {
            for tx in 0..w {
                let tile = fabric.tile_mut(tx, ty);
                let layout = Spmv2dLayout::alloc(tile, block);
                Self::load_tile_coefficients(tile, &layout, a, tx, ty);
                let task = Self::build_tile_task(tile, &layout, tx, ty, w, h);
                tile.core.mark_entry(task);
                layouts.push(layout);
                tasks.push(task);
            }
        }
        crate::debug_lint(fabric);
        WaferSpmv2d { fabric_w: w, fabric_h: h, block, layouts, tasks }
    }

    pub(crate) fn configure_routes(fabric: &mut Fabric, w: usize, h: usize) {
        Self::configure_routes_at(fabric, 0, 0, w, h);
    }

    /// Halo-exchange routing for a `w × h` region whose top-left tile sits
    /// at `(ox, oy)`. Routing is boundary-aware in **region** coordinates:
    /// no route crosses the region's edge, so co-resident programs in
    /// disjoint regions cannot interfere (the multi-tenant containment
    /// invariant, checked by `wse-lint`'s region lint).
    pub(crate) fn configure_routes_at(
        fabric: &mut Fabric,
        ox: usize,
        oy: usize,
        w: usize,
        h: usize,
    ) {
        use colors::*;
        for y in 0..h {
            for x in 0..w {
                let (fx, fy) = (ox + x, oy + y);
                if x + 1 < w {
                    fabric.set_route(fx, fy, Port::Ramp, HALO_E, &[Port::East]);
                    fabric.set_route(fx, fy, Port::East, HALO_W, &[Port::Ramp]);
                }
                if x > 0 {
                    fabric.set_route(fx, fy, Port::Ramp, HALO_W, &[Port::West]);
                    fabric.set_route(fx, fy, Port::West, HALO_E, &[Port::Ramp]);
                }
                if y + 1 < h {
                    fabric.set_route(fx, fy, Port::Ramp, HALO_S, &[Port::South]);
                    fabric.set_route(fx, fy, Port::South, HALO_N, &[Port::Ramp]);
                }
                if y > 0 {
                    fabric.set_route(fx, fy, Port::Ramp, HALO_N, &[Port::North]);
                    fabric.set_route(fx, fy, Port::North, HALO_S, &[Port::Ramp]);
                }
            }
        }
    }

    /// Stores per-core **column** coefficients: `coef[o][i][j]` multiplies
    /// local `v[i][j]` and contributes to the output at extended position
    /// `(i+1+dx, j+1+dy)` — i.e. it is the matrix entry
    /// `A[(gi+dx, gj+dy), (gi, gj)]`, the transpose view of the row-stored
    /// DIA bands.
    pub(crate) fn load_tile_coefficients(
        tile: &mut Tile,
        layout: &Spmv2dLayout,
        a: &DiaMatrix<F16>,
        tx: usize,
        ty: usize,
    ) {
        let mesh = a.mesh();
        let b = layout.block;
        for (o, off) in Offset3::nine_point_2d().iter().enumerate() {
            let mut data = vec![F16::ZERO; b.bx * b.by];
            for i in 0..b.bx {
                for j in 0..b.by {
                    let gi = tx * b.bx + i;
                    let gj = ty * b.by + j;
                    // Row = (gi+dx, gj+dy); its coefficient toward column
                    // (gi, gj) sits at offset (-dx, -dy) in row storage.
                    let ri = gi as i64 + off.dx as i64;
                    let rj = gj as i64 + off.dy as i64;
                    if ri < 0 || rj < 0 || ri >= mesh.nx as i64 || rj >= mesh.ny as i64 {
                        continue;
                    }
                    let mirror = Offset3::new(-off.dx, -off.dy, 0);
                    data[i * b.by + j] = a.coeff(ri as usize, rj as usize, 0, mirror);
                }
            }
            tile.mem.store_f16_slice(layout.coef[o], &data);
        }
    }

    /// Builds the per-tile task: zero `ubuf`, nine FMAC passes (one per
    /// offset, row-at-a-time), then the two-round halo exchange with a
    /// barrier between rounds.
    pub(crate) fn build_tile_task(
        tile: &mut Tile,
        layout: &Spmv2dLayout,
        tx: usize,
        ty: usize,
        w: usize,
        h: usize,
    ) -> TaskId {
        use colors::*;
        let b = layout.block;
        let (bx, by) = (b.bx, b.by);
        let core = &mut tile.core;
        let ub_w = (by + 2) as u32;

        let mut body: Vec<Stmt> = vec![Stmt::SetReg { reg: R_ZERO, value: 0.0 }];

        // Zero the extended buffer with a register broadcast (source-free:
        // a single DSR, so the cursor semantics are trivially correct on
        // every invocation).
        let n_ub = ((bx + 2) * (by + 2)) as u32;
        let d_ub_all = core.add_dsr(mk::tensor16(layout.ubuf, n_ub));
        body.push(Stmt::Exec(TensorInstr {
            op: Op::StoreReg { reg: R_ZERO },
            dst: Some(d_ub_all),
            a: None,
            b: None,
        }));

        // Nine offsets × bx rows of fused multiply-accumulate. (This is
        // where the paper's "all 9 multiplies and adds ... on the same core,
        // we are able to use the fused multiply-accumulate instruction"
        // shows up.)
        for (o, off) in Offset3::nine_point_2d().iter().enumerate() {
            for i in 0..bx {
                let d_dst = core.add_dsr(mk::tensor16(
                    layout.u_addr((i as i64 + 1 + off.dx as i64) as usize, (1 + off.dy) as usize),
                    by as u32,
                ));
                let d_coef =
                    core.add_dsr(mk::tensor16(layout.coef[o] + 2 * (i * by) as u32, by as u32));
                let d_v = core.add_dsr(mk::tensor16(layout.v_addr(i, 0), by as u32));
                body.push(Stmt::Exec(TensorInstr {
                    op: Op::FmaAssign,
                    dst: Some(d_dst),
                    a: Some(d_coef),
                    b: Some(d_v),
                }));
            }
        }

        // --- Halo exchange round 1: x direction, full-height strips. ---
        // Send east strip (extended column bx+1), receive west neighbor's
        // east strip into interior column 1; symmetric westward.
        let strip_h = (by + 2) as u32;
        let has_e = tx + 1 < w;
        let has_w = tx > 0;
        let has_s = ty + 1 < h;
        let has_n = ty > 0;

        // Barrier between rounds: chain of two-input barriers over the
        // launched threads of round 1.
        let round2 = core.add_task(Task::new("halo-y", vec![]));
        let mut r1_threads = 0usize;
        r1_threads += usize::from(has_e) * 2; // send E + add-from-E
        r1_threads += usize::from(has_w) * 2;
        let mut chain: Vec<TaskId> = Vec::new();
        if r1_threads >= 2 {
            let n = r1_threads - 1;
            for _ in 0..n {
                // Every barrier starts blocked: it needs BOTH its Activate
                // and its Unblock trigger before it may run.
                chain.push(core.add_task(Task::new("halo-x-barrier", vec![]).blocked()));
            }
            for i in 0..n {
                let next = if i + 1 < n {
                    Stmt::TaskCtl { task: chain[i + 1], action: TaskAction::Activate }
                } else {
                    Stmt::TaskCtl { task: round2, action: TaskAction::Activate }
                };
                // Re-block first (the paper's two-way barrier reset), so the
                // chain is armed again for the next SpMV invocation.
                core.set_task_body(
                    chain[i],
                    vec![Stmt::TaskCtl { task: chain[i], action: TaskAction::Block }, next],
                );
            }
        }
        let trigger = |k: usize, chain: &Vec<TaskId>| -> Option<(TaskId, TaskAction)> {
            if chain.is_empty() {
                return None;
            }
            Some(match k {
                0 => (chain[0], TaskAction::Activate),
                1 => (chain[0], TaskAction::Unblock),
                k => (chain[k - 1], TaskAction::Unblock),
            })
        };

        let mut k = 0usize;
        let mut slot = 0u8;
        if has_e {
            // Send extended column bx+1 (stride = row width).
            let d_src = core.add_dsr(Descriptor::Mem {
                addr: layout.u_addr(bx + 1, 0),
                len: strip_h,
                stride: 1,
                dtype: Dtype::F16,
                rewind: true,
            });
            let d_tx = core.add_dsr(mk::tx16(HALO_E, strip_h));
            body.push(Stmt::InitDsr { dsr: d_tx, desc: mk::tx16(HALO_E, strip_h) });
            body.push(Stmt::Launch {
                slot,
                instr: TensorInstr { op: Op::Copy, dst: Some(d_tx), a: Some(d_src), b: None },
                on_complete: trigger(k, &chain),
            });
            slot += 1;
            k += 1;
            // Receive from the east neighbor's westward send into interior
            // column bx.
            let d_rx = core.add_dsr(mk::rx16(HALO_W, strip_h));
            let d_acc = core.add_dsr(Descriptor::Mem {
                addr: layout.u_addr(bx, 0),
                len: strip_h,
                stride: 1,
                dtype: Dtype::F16,
                rewind: true,
            });
            body.push(Stmt::InitDsr { dsr: d_rx, desc: mk::rx16(HALO_W, strip_h) });
            body.push(Stmt::Launch {
                slot,
                instr: TensorInstr { op: Op::AddAssign, dst: Some(d_acc), a: Some(d_rx), b: None },
                on_complete: trigger(k, &chain),
            });
            slot += 1;
            k += 1;
        }
        if has_w {
            let d_src = core.add_dsr(Descriptor::Mem {
                addr: layout.u_addr(0, 0),
                len: strip_h,
                stride: 1,
                dtype: Dtype::F16,
                rewind: true,
            });
            let d_tx = core.add_dsr(mk::tx16(HALO_W, strip_h));
            body.push(Stmt::InitDsr { dsr: d_tx, desc: mk::tx16(HALO_W, strip_h) });
            body.push(Stmt::Launch {
                slot,
                instr: TensorInstr { op: Op::Copy, dst: Some(d_tx), a: Some(d_src), b: None },
                on_complete: trigger(k, &chain),
            });
            slot += 1;
            k += 1;
            let d_rx = core.add_dsr(mk::rx16(HALO_E, strip_h));
            let d_acc = core.add_dsr(Descriptor::Mem {
                addr: layout.u_addr(1, 0),
                len: strip_h,
                stride: 1,
                dtype: Dtype::F16,
                rewind: true,
            });
            body.push(Stmt::InitDsr { dsr: d_rx, desc: mk::rx16(HALO_E, strip_h) });
            body.push(Stmt::Launch {
                slot,
                instr: TensorInstr { op: Op::AddAssign, dst: Some(d_acc), a: Some(d_rx), b: None },
                on_complete: trigger(k, &chain),
            });
            k += 1;
        }
        let _ = (slot, k);
        if chain.is_empty() {
            // No x neighbors: go straight to round 2.
            body.push(Stmt::TaskCtl { task: round2, action: TaskAction::Activate });
        }

        // --- Round 2 (y direction): interior-width strips (rows 0 and
        // by+1 of the extended buffer, columns 1..=bx... i.e. along x). ---
        // In our layout a "row j = const" strip is strided by (by+2).
        let mut r2_body: Vec<Stmt> = Vec::new();
        let strip_w = bx as u32;
        let stride = ub_w;
        let mut slot2 = 4u8;
        if has_s {
            // Output halo for the +y neighbor: extended row j = by+1,
            // interior columns i = 1..=bx.
            let d_src = core.add_dsr(Descriptor::Mem {
                addr: layout.u_addr(1, by + 1),
                len: strip_w,
                stride,
                dtype: Dtype::F16,
                rewind: true,
            });
            let d_tx = core.add_dsr(mk::tx16(HALO_S, strip_w));
            r2_body.push(Stmt::InitDsr { dsr: d_tx, desc: mk::tx16(HALO_S, strip_w) });
            r2_body.push(Stmt::Launch {
                slot: slot2,
                instr: TensorInstr { op: Op::Copy, dst: Some(d_tx), a: Some(d_src), b: None },
                on_complete: None,
            });
            slot2 += 1;
            let d_rx = core.add_dsr(mk::rx16(HALO_N, strip_w));
            let d_acc = core.add_dsr(Descriptor::Mem {
                addr: layout.u_addr(1, by),
                len: strip_w,
                stride,
                dtype: Dtype::F16,
                rewind: true,
            });
            r2_body.push(Stmt::InitDsr { dsr: d_rx, desc: mk::rx16(HALO_N, strip_w) });
            r2_body.push(Stmt::Launch {
                slot: slot2,
                instr: TensorInstr { op: Op::AddAssign, dst: Some(d_acc), a: Some(d_rx), b: None },
                on_complete: None,
            });
            slot2 += 1;
        }
        if has_n {
            let d_src = core.add_dsr(Descriptor::Mem {
                addr: layout.u_addr(1, 0),
                len: strip_w,
                stride,
                dtype: Dtype::F16,
                rewind: true,
            });
            let d_tx = core.add_dsr(mk::tx16(HALO_N, strip_w));
            r2_body.push(Stmt::InitDsr { dsr: d_tx, desc: mk::tx16(HALO_N, strip_w) });
            r2_body.push(Stmt::Launch {
                slot: slot2,
                instr: TensorInstr { op: Op::Copy, dst: Some(d_tx), a: Some(d_src), b: None },
                on_complete: None,
            });
            slot2 += 1;
            let d_rx = core.add_dsr(mk::rx16(HALO_S, strip_w));
            let d_acc = core.add_dsr(Descriptor::Mem {
                addr: layout.u_addr(1, 1),
                len: strip_w,
                stride,
                dtype: Dtype::F16,
                rewind: true,
            });
            r2_body.push(Stmt::InitDsr { dsr: d_rx, desc: mk::rx16(HALO_S, strip_w) });
            r2_body.push(Stmt::Launch {
                slot: slot2,
                instr: TensorInstr { op: Op::AddAssign, dst: Some(d_acc), a: Some(d_rx), b: None },
                on_complete: None,
            });
        }
        core.set_task_body(round2, r2_body);

        core.add_task(Task::new("spmv2d", body))
    }

    /// Executes `u = A v`. Input and output are in global mesh order
    /// (x-major, y fastest within a row of blocks — see
    /// [`stencil::mesh::Mesh2D::idx`]). Returns the result and cycle count.
    ///
    /// # Panics
    /// Panics on stall or length mismatch.
    pub fn run(&self, fabric: &mut Fabric, v: &[F16]) -> (Vec<F16>, u64) {
        let b = self.block;
        let mesh = Mesh2D::new(self.fabric_w * b.bx, self.fabric_h * b.by);
        assert_eq!(v.len(), mesh.len(), "iterate length mismatch");
        // Scatter.
        for ty in 0..self.fabric_h {
            for tx in 0..self.fabric_w {
                let layout = &self.layouts[ty * self.fabric_w + tx];
                let mut local = vec![F16::ZERO; b.bx * b.by];
                for i in 0..b.bx {
                    for j in 0..b.by {
                        local[i * b.by + j] = v[mesh.idx(tx * b.bx + i, ty * b.by + j)];
                    }
                }
                let tile = fabric.tile_mut(tx, ty);
                tile.mem.store_f16_slice(layout.v, &local);
                tile.core.activate(self.tasks[ty * self.fabric_w + tx]);
            }
        }
        let budget = 2_000 * (b.bx * b.by) as u64 + 100_000;
        let cycles =
            fabric.run_until_quiescent(budget).unwrap_or_else(|e| panic!("2D SpMV stalled: {e}"));
        // Gather interiors.
        let mut out = vec![F16::ZERO; mesh.len()];
        for ty in 0..self.fabric_h {
            for tx in 0..self.fabric_w {
                let layout = &self.layouts[ty * self.fabric_w + tx];
                let tile = fabric.tile(tx, ty);
                for i in 0..b.bx {
                    for j in 0..b.by {
                        let addr = layout.u_addr(i + 1, j + 1);
                        out[mesh.idx(tx * b.bx + i, ty * b.by + j)] = tile.mem.read_f16(addr);
                    }
                }
            }
        }
        (out, cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact-arithmetic 9-point operator: unit diagonal, −1/8 couplings.
    fn exact9(mesh: Mesh2D) -> (DiaMatrix<F16>, Vec<F16>) {
        let m3 = mesh.as_3d();
        let mut a = DiaMatrix::<f64>::new(m3, &Offset3::nine_point_2d());
        for (x, y, _z) in m3.iter() {
            a.set(x, y, 0, Offset3::CENTER, 1.0);
            for off in &Offset3::nine_point_2d()[1..] {
                if m3.neighbor(x, y, 0, off.dx, off.dy, 0).is_some() {
                    a.set(x, y, 0, *off, -0.125);
                }
            }
        }
        let v: Vec<F16> =
            (0..mesh.len()).map(|i| F16::from_f64(((i % 16) as f64 - 8.0) * 0.125)).collect();
        (a.convert(), v)
    }

    fn check(fabric_w: usize, fabric_h: usize, block: Block2D) {
        let mesh = block.covered_mesh(fabric_w, fabric_h);
        let (a, v) = exact9(mesh);
        let mut fabric = Fabric::new(fabric_w, fabric_h);
        let spmv = WaferSpmv2d::build(&mut fabric, &a, block);
        let (wafer, _) = spmv.run(&mut fabric, &v);
        let mut host = vec![F16::ZERO; mesh.len()];
        a.matvec(&v, &mut host);
        for i in 0..mesh.len() {
            assert_eq!(
                wafer[i].to_bits(),
                host[i].to_bits(),
                "mismatch at {i}: wafer {} host {} ({}x{} fabric, {:?})",
                wafer[i],
                host[i],
                fabric_w,
                fabric_h,
                block
            );
        }
    }

    #[test]
    fn matches_host_on_2x2_fabric_4x4_blocks() {
        check(2, 2, Block2D::new(4, 4));
    }

    #[test]
    fn matches_host_on_3x3_fabric_rectangular_blocks() {
        check(3, 3, Block2D::new(3, 5));
    }

    #[test]
    fn matches_host_on_single_row_of_tiles() {
        check(4, 1, Block2D::new(3, 3));
    }

    #[test]
    fn matches_host_on_single_tile() {
        check(1, 1, Block2D::new(6, 6));
    }

    #[test]
    fn corner_contributions_cross_diagonally() {
        // A lone 1.0 at a block corner: its NE diagonal contribution must
        // reach the diagonal neighbor via the two-round exchange.
        let block = Block2D::new(4, 4);
        let mesh = block.covered_mesh(2, 2);
        let (a, _) = exact9(mesh);
        let mut v = vec![F16::ZERO; mesh.len()];
        // Last cell of tile (0,0)'s block: global (3, 3).
        v[mesh.idx(3, 3)] = F16::ONE;
        let mut fabric = Fabric::new(2, 2);
        let spmv = WaferSpmv2d::build(&mut fabric, &a, block);
        let (wafer, _) = spmv.run(&mut fabric, &v);
        // Diagonal neighbor (4,4) lives on tile (1,1).
        let got = wafer[mesh.idx(4, 4)].to_f64();
        assert_eq!(got, -0.125, "diagonal coupling must arrive");
    }

    #[test]
    fn cycles_grow_with_block_area() {
        let run = |n: usize| {
            let block = Block2D::new(n, n);
            let mesh = block.covered_mesh(2, 2);
            let (a, v) = exact9(mesh);
            let mut fabric = Fabric::new(2, 2);
            let spmv = WaferSpmv2d::build(&mut fabric, &a, block);
            spmv.run(&mut fabric, &v).1
        };
        let c4 = run(4);
        let c8 = run(8);
        assert!(c8 > c4, "bigger blocks take longer: {c4} vs {c8}");
    }
}
