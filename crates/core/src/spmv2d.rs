//! The 2D 9-point SpMV with block-per-core mapping and output-halo exchange
//! (§IV.2 of the paper) — now a façade over the [`wse_dsl`] lowering layer.
//!
//! "For the 2D problem we map a rectangular region of the mesh of v to each
//! core, and store all elements of the corresponding columns of A. After
//! multiplication of the local v with the local A we have generated products
//! in an output halo that must be sent to neighboring tiles. ... We complete
//! a round of send and add in one direction, then a round for the other
//! direction, and in this way avoid communication along diagonals of the
//! tile grid."
//!
//! The emitter lives in [`wse_dsl::block2d`] (generalized to halo radius
//! ≤ 2 and both precisions); this module keeps the original public surface
//! — [`Spmv2dLayout`] with its fixed nine-array coefficient block, and
//! [`WaferSpmv2d`] — as thin wrappers. At radius 1 the generalized emitter
//! produces **byte-identical** programs to the original hand-written
//! builder; `wse-serve`'s `tests/dsl_retrofit.rs` pins the program digest.

use stencil::decomp::Block2D;
use stencil::dia::DiaMatrix;
use stencil::mesh::Mesh2D;
use wse_arch::types::{Dtype, TaskId};
use wse_arch::{Fabric, Tile};
use wse_dsl::block2d::{self, BlockLayout};
use wse_dsl::ir::StencilSpec;
use wse_float::F16;

/// Virtual channels for the halo exchange — re-exported from the
/// whole-wafer color map ([`wse_dsl::colors`]), which documents the
/// aliasing rules that used to live here.
pub mod colors {
    pub use wse_dsl::colors::{HALO_E, HALO_N, HALO_S, HALO_W};
}

/// Byte addresses of one tile's 2D SpMV data.
#[derive(Copy, Clone, Debug)]
pub struct Spmv2dLayout {
    /// Block extents.
    pub block: Block2D,
    /// Nine column-coefficient arrays (`bx·by` each), indexed like
    /// [`stencil::dia::Offset3::nine_point_2d`].
    pub coef: [u32; 9],
    /// Local iterate block, `bx·by` words, row-major (y fastest).
    pub v: u32,
    /// Extended output buffer, `(bx+2)·(by+2)` words, row-major with width
    /// `by + 2`.
    pub ubuf: u32,
}

impl Spmv2dLayout {
    /// Allocates the layout in a tile's SRAM.
    ///
    /// # Panics
    /// Panics when the block exceeds the 48 KB budget — by construction this
    /// reproduces the paper's "up-to 38×38" limit.
    pub fn alloc(tile: &mut Tile, block: Block2D) -> Spmv2dLayout {
        Self::from_block(&BlockLayout::alloc(tile, block, 9, 1, Dtype::F16))
    }

    /// Byte address of `ubuf[i][j]` (extended coordinates, `i` along x).
    pub fn u_addr(&self, i: usize, j: usize) -> u32 {
        self.ubuf + 2 * (i * (self.block.by + 2) + j) as u32
    }

    /// Byte address of `v[i][j]` (block coordinates).
    pub fn v_addr(&self, i: usize, j: usize) -> u32 {
        self.v + 2 * (i * self.block.by + j) as u32
    }

    /// The generalized-layout view the shared emitter consumes.
    fn as_block(&self) -> BlockLayout {
        BlockLayout {
            block: self.block,
            r: 1,
            dtype: Dtype::F16,
            coef: self.coef.to_vec(),
            v: self.v,
            ubuf: self.ubuf,
        }
    }

    fn from_block(b: &BlockLayout) -> Spmv2dLayout {
        assert_eq!(b.r, 1, "legacy 2D layout is radius 1");
        assert_eq!(b.coef.len(), 9, "legacy 2D layout has nine coefficient arrays");
        let mut coef = [0u32; 9];
        coef.copy_from_slice(&b.coef);
        Spmv2dLayout { block: b.block, coef, v: b.v, ubuf: b.ubuf }
    }
}

/// The whole-fabric 2D SpMV.
pub struct WaferSpmv2d {
    fabric_w: usize,
    fabric_h: usize,
    block: Block2D,
    layouts: Vec<Spmv2dLayout>,
    tasks: Vec<TaskId>,
}

impl WaferSpmv2d {
    /// Distributes a 9-point 2D matrix over a fabric of `w × h` cores, each
    /// holding a `block` region, by lowering the nine-point stencil spec
    /// through [`wse_dsl::lower`]. The matrix mesh must equal
    /// `block.covered_mesh(w, h)`.
    ///
    /// # Panics
    /// Panics on geometry mismatch or SRAM exhaustion.
    pub fn build(fabric: &mut Fabric, a: &DiaMatrix<F16>, block: Block2D) -> WaferSpmv2d {
        let mesh3 = a.mesh();
        assert_eq!(mesh3.nz, 1, "2D kernel requires nz == 1");
        assert_eq!(a.offsets().len(), 9, "9-point stencil required");
        let (w, h) = (mesh3.nx / block.bx, mesh3.ny / block.by);
        assert_eq!(w * block.bx, mesh3.nx, "mesh x must tile evenly");
        assert_eq!(h * block.by, mesh3.ny, "mesh y must tile evenly");
        assert!(w <= fabric.width() && h <= fabric.height(), "mesh exceeds fabric");

        let a64: DiaMatrix<f64> = a.convert();
        let spec = StencilSpec::var_nine_point_2d();
        let lowered = wse_dsl::lower(fabric, &spec, &a64, Some(block))
            .unwrap_or_else(|e| panic!("2D SpMV lowering rejected: {e}"));
        let (w, h, block, layouts, tasks) = lowered.into_block_parts();
        let layouts = layouts.iter().map(Spmv2dLayout::from_block).collect();
        WaferSpmv2d { fabric_w: w, fabric_h: h, block, layouts, tasks }
    }

    pub(crate) fn configure_routes_at(
        fabric: &mut Fabric,
        ox: usize,
        oy: usize,
        w: usize,
        h: usize,
    ) {
        block2d::configure_block_routes_at(fabric, ox, oy, w, h, 1);
    }

    pub(crate) fn load_tile_coefficients(
        tile: &mut Tile,
        layout: &Spmv2dLayout,
        a: &DiaMatrix<F16>,
        tx: usize,
        ty: usize,
    ) {
        block2d::load_block_coefficients(
            tile,
            &layout.as_block(),
            a,
            &stencil::dia::Offset3::nine_point_2d(),
            tx,
            ty,
        );
    }

    pub(crate) fn build_tile_task(
        tile: &mut Tile,
        layout: &Spmv2dLayout,
        tx: usize,
        ty: usize,
        w: usize,
        h: usize,
    ) -> TaskId {
        block2d::build_block_tile_task(
            tile,
            &layout.as_block(),
            &stencil::dia::Offset3::nine_point_2d(),
            tx,
            ty,
            w,
            h,
        )
    }

    /// Executes `u = A v`. Input and output are in global mesh order
    /// (x-major, y fastest within a row of blocks — see
    /// [`stencil::mesh::Mesh2D::idx`]). Returns the result and cycle count.
    ///
    /// # Panics
    /// Panics on stall or length mismatch.
    pub fn run(&self, fabric: &mut Fabric, v: &[F16]) -> (Vec<F16>, u64) {
        let b = self.block;
        let mesh = Mesh2D::new(self.fabric_w * b.bx, self.fabric_h * b.by);
        assert_eq!(v.len(), mesh.len(), "iterate length mismatch");
        // Scatter.
        for ty in 0..self.fabric_h {
            for tx in 0..self.fabric_w {
                let layout = &self.layouts[ty * self.fabric_w + tx];
                let mut local = vec![F16::ZERO; b.bx * b.by];
                for i in 0..b.bx {
                    for j in 0..b.by {
                        local[i * b.by + j] = v[mesh.idx(tx * b.bx + i, ty * b.by + j)];
                    }
                }
                let tile = fabric.tile_mut(tx, ty);
                tile.mem.store_f16_slice(layout.v, &local);
                tile.core.activate(self.tasks[ty * self.fabric_w + tx]);
            }
        }
        let budget = 2_000 * (b.bx * b.by) as u64 + 100_000;
        let cycles =
            fabric.run_until_quiescent(budget).unwrap_or_else(|e| panic!("2D SpMV stalled: {e}"));
        // Gather interiors.
        let mut out = vec![F16::ZERO; mesh.len()];
        for ty in 0..self.fabric_h {
            for tx in 0..self.fabric_w {
                let layout = &self.layouts[ty * self.fabric_w + tx];
                let tile = fabric.tile(tx, ty);
                for i in 0..b.bx {
                    for j in 0..b.by {
                        let addr = layout.u_addr(i + 1, j + 1);
                        out[mesh.idx(tx * b.bx + i, ty * b.by + j)] = tile.mem.read_f16(addr);
                    }
                }
            }
        }
        (out, cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil::dia::Offset3;

    /// Exact-arithmetic 9-point operator: unit diagonal, −1/8 couplings.
    fn exact9(mesh: Mesh2D) -> (DiaMatrix<F16>, Vec<F16>) {
        let m3 = mesh.as_3d();
        let mut a = DiaMatrix::<f64>::new(m3, &Offset3::nine_point_2d());
        for (x, y, _z) in m3.iter() {
            a.set(x, y, 0, Offset3::CENTER, 1.0);
            for off in &Offset3::nine_point_2d()[1..] {
                if m3.neighbor(x, y, 0, off.dx, off.dy, 0).is_some() {
                    a.set(x, y, 0, *off, -0.125);
                }
            }
        }
        let v: Vec<F16> =
            (0..mesh.len()).map(|i| F16::from_f64(((i % 16) as f64 - 8.0) * 0.125)).collect();
        (a.convert(), v)
    }

    fn check(fabric_w: usize, fabric_h: usize, block: Block2D) {
        let mesh = block.covered_mesh(fabric_w, fabric_h);
        let (a, v) = exact9(mesh);
        let mut fabric = Fabric::new(fabric_w, fabric_h);
        let spmv = WaferSpmv2d::build(&mut fabric, &a, block);
        let (wafer, _) = spmv.run(&mut fabric, &v);
        let mut host = vec![F16::ZERO; mesh.len()];
        a.matvec(&v, &mut host);
        for i in 0..mesh.len() {
            assert_eq!(
                wafer[i].to_bits(),
                host[i].to_bits(),
                "mismatch at {i}: wafer {} host {} ({}x{} fabric, {:?})",
                wafer[i],
                host[i],
                fabric_w,
                fabric_h,
                block
            );
        }
    }

    #[test]
    fn matches_host_on_2x2_fabric_4x4_blocks() {
        check(2, 2, Block2D::new(4, 4));
    }

    #[test]
    fn matches_host_on_3x3_fabric_rectangular_blocks() {
        check(3, 3, Block2D::new(3, 5));
    }

    #[test]
    fn matches_host_on_single_row_of_tiles() {
        check(4, 1, Block2D::new(3, 3));
    }

    #[test]
    fn matches_host_on_single_tile() {
        check(1, 1, Block2D::new(6, 6));
    }

    #[test]
    fn corner_contributions_cross_diagonally() {
        // A lone 1.0 at a block corner: its NE diagonal contribution must
        // reach the diagonal neighbor via the two-round exchange.
        let block = Block2D::new(4, 4);
        let mesh = block.covered_mesh(2, 2);
        let (a, _) = exact9(mesh);
        let mut v = vec![F16::ZERO; mesh.len()];
        // Last cell of tile (0,0)'s block: global (3, 3).
        v[mesh.idx(3, 3)] = F16::ONE;
        let mut fabric = Fabric::new(2, 2);
        let spmv = WaferSpmv2d::build(&mut fabric, &a, block);
        let (wafer, _) = spmv.run(&mut fabric, &v);
        // Diagonal neighbor (4,4) lives on tile (1,1).
        let got = wafer[mesh.idx(4, 4)].to_f64();
        assert_eq!(got, -0.125, "diagonal coupling must arrive");
    }

    #[test]
    fn cycles_grow_with_block_area() {
        let run = |n: usize| {
            let block = Block2D::new(n, n);
            let mesh = block.covered_mesh(2, 2);
            let (a, v) = exact9(mesh);
            let mut fabric = Fabric::new(2, 2);
            let spmv = WaferSpmv2d::build(&mut fabric, &a, block);
            spmv.run(&mut fabric, &v).1
        };
        let c4 = run(4);
        let c8 = run(8);
        assert!(c8 > c4, "bigger blocks take longer: {c4} vs {c8}");
    }
}
