//! Small per-tile kernel builders: AXPY, XPAY, and the local
//! mixed-precision dot product.
//!
//! These are the building blocks of the BiCGStab iteration besides the SpMV:
//! "The kernel operations in the algorithm are sparse matrix - dense vector
//! multiply (SpMV), AXPY ... and inner product." AXPYs "operate on
//! core-local fp16 data and use the four-way SIMD capability"; the dot uses
//! the mixed-precision inner-product instruction.

use wse_arch::core::Core;
use wse_arch::dsr::mk;
use wse_arch::instr::{Op, RegOp, Stmt, Task, TensorInstr};
use wse_arch::types::{Reg, TaskId};

/// Builds a task computing `y[i] += r_scalar · x[i]` over fp16 vectors at
/// byte addresses `x`/`y` of length `len`.
pub fn axpy_task(core: &mut Core, scalar: Reg, x: u32, y: u32, len: u32) -> TaskId {
    let dx = core.add_dsr(mk::tensor16(x, len));
    let dy = core.add_dsr(mk::tensor16(y, len));
    core.add_task(Task::new(
        "axpy",
        vec![Stmt::Exec(TensorInstr {
            op: Op::Axpy { scalar },
            dst: Some(dy),
            a: Some(dx),
            b: None,
        })],
    ))
}

/// Statements computing `dst[i] = a[i] + r_scalar · b[i]` (fused), appended
/// to an existing body.
pub fn xpay_stmts(core: &mut Core, scalar: Reg, dst: u32, a: u32, b: u32, len: u32) -> Vec<Stmt> {
    let dd = core.add_dsr(mk::tensor16(dst, len));
    let da = core.add_dsr(mk::tensor16(a, len));
    let db = core.add_dsr(mk::tensor16(b, len));
    vec![Stmt::Exec(TensorInstr {
        op: Op::Xpay { scalar },
        dst: Some(dd),
        a: Some(da),
        b: Some(db),
    })]
}

/// Statements computing the local mixed-precision dot `acc = Σ a·b` (fp16
/// multiplies, fp32 accumulate) and moving it into `r_move_to`.
pub fn dot_stmts(core: &mut Core, acc: Reg, move_to: Reg, a: u32, b: u32, len: u32) -> Vec<Stmt> {
    let da = core.add_dsr(mk::tensor16(a, len));
    let db = core.add_dsr(mk::tensor16(b, len));
    vec![
        Stmt::SetReg { reg: acc, value: 0.0 },
        Stmt::InitDsr { dsr: da, desc: mk::tensor16(a, len) },
        Stmt::InitDsr { dsr: db, desc: mk::tensor16(b, len) },
        Stmt::Exec(TensorInstr { op: Op::MacReg { acc }, dst: None, a: Some(da), b: Some(db) }),
        Stmt::RegArith { op: RegOp::Mov, dst: move_to, a: acc, b: acc },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use wse_arch::types::Dtype;
    use wse_arch::Memory;
    use wse_float::F16;

    fn mem_with(v: &[f64]) -> (Memory, u32) {
        let mut m = Memory::new();
        let data: Vec<F16> = v.iter().map(|&x| F16::from_f64(x)).collect();
        let addr = m.alloc_vec(v.len() as u32, Dtype::F16).unwrap();
        m.store_f16_slice(addr, &data);
        (m, addr)
    }

    #[test]
    fn axpy_task_works() {
        let (mut mem, ax) = mem_with(&[1.0, 2.0, 3.0]);
        let ay = mem.alloc_vec(3, Dtype::F16).unwrap();
        mem.store_f16_slice(ay, &[F16::from_f64(10.0); 3]);
        let mut core = Core::new();
        core.regs[2] = 2.0;
        let t = axpy_task(&mut core, 2, ax, ay, 3);
        core.activate(t);
        for _ in 0..10 {
            core.step(&mut mem);
        }
        assert!(core.is_quiescent());
        let out = mem.load_f16_slice(ay, 3);
        assert_eq!(out.iter().map(|v| v.to_f64()).collect::<Vec<_>>(), vec![12.0, 14.0, 16.0]);
    }

    #[test]
    fn xpay_writes_dst() {
        let (mut mem, aa) = mem_with(&[1.0, 1.0]);
        let ab = mem.alloc_vec(2, Dtype::F16).unwrap();
        mem.store_f16_slice(ab, &[F16::from_f64(4.0), F16::from_f64(8.0)]);
        let ad = mem.alloc_vec(2, Dtype::F16).unwrap();
        let mut core = Core::new();
        core.regs[1] = -0.5;
        let body = xpay_stmts(&mut core, 1, ad, aa, ab, 2);
        let t = core.add_task(Task::new("xpay", body));
        core.activate(t);
        for _ in 0..10 {
            core.step(&mut mem);
        }
        let out = mem.load_f16_slice(ad, 2);
        assert_eq!(out[0].to_f64(), -1.0); // 1 - 0.5*4
        assert_eq!(out[1].to_f64(), -3.0); // 1 - 0.5*8
    }

    #[test]
    fn dot_stmts_rearm_for_reuse() {
        let (mut mem, aa) = mem_with(&[1.0, 2.0, 3.0, 4.0]);
        let mut core = Core::new();
        let body = dot_stmts(&mut core, 20, 21, aa, aa, 4);
        let t = core.add_task(Task::new("dot", body));
        core.activate(t);
        for _ in 0..20 {
            core.step(&mut mem);
        }
        assert_eq!(core.regs[21], 30.0);
        // Run again: InitDsr re-arms the cursors, SetReg clears the acc.
        core.activate(t);
        for _ in 0..20 {
            core.step(&mut mem);
        }
        assert_eq!(core.regs[21], 30.0, "second run must not double-count");
    }
}
