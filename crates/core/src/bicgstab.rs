//! The complete BiCGStab iteration on the wafer.
//!
//! Vectors and matrix diagonals live entirely in tile SRAM; the two SpMVs
//! use the Listing-1 dataflow; the four inner products use the local
//! mixed-precision MAC followed by the Fig. 6 fp32 AllReduce; the six
//! AXPY/XPAY updates run on core-local fp16 data; the scalar coefficient
//! arithmetic (α, ω, β) is computed redundantly by every core in fp32
//! registers from the broadcast reductions.
//!
//! Phase sequencing is driven by the host between fabric-quiescent points.
//! (The production system chains phases with the task tree; global
//! quiescence is a slightly conservative stand-in — it can only make our
//! cycle counts *worse* than the hardware's, never better.)

use crate::allreduce::AllReduce;
use crate::exec::WaferExec;
use crate::kernels::{dot_stmts, xpay_stmts};
use crate::recovery::{self, run_with_recovery, RecoveryLog, RecoveryPolicy, ResidualTripwire};
use crate::routing::configure_spmv_routes;
use crate::spmv3d::{build_spmv_tile, load_coefficients, tile_coefficients, SpmvLayout, SpmvTasks};
use stencil::decomp::Mapping3D;
use stencil::dia::DiaMatrix;
use stencil::precond::has_unit_diagonal;
use wse_arch::core::Core;
use wse_arch::dsr::mk;
use wse_arch::fabric::StallReport;
use wse_arch::instr::{Op, RegOp, Stmt, Task, TensorInstr};
use wse_arch::types::{Dtype, TaskId};
use wse_arch::{Fabric, Tile};
use wse_float::F16;

/// Register allocation for the solver (per core).
pub mod regs {
    use wse_arch::types::Reg;
    /// ρ = (r̂₀, r) carried across iterations.
    pub const RHO: Reg = 0;
    /// (r̂₀, s).
    pub const R0S: Reg = 1;
    /// α.
    pub const ALPHA: Reg = 2;
    /// −α (AXPY subtracts via a negated register scalar).
    pub const NEG_ALPHA: Reg = 3;
    /// (q, y).
    pub const QY: Reg = 4;
    /// (y, y).
    pub const YY: Reg = 5;
    /// ω.
    pub const OMEGA: Reg = 6;
    /// −ω.
    pub const NEG_OMEGA: Reg = 7;
    /// ρ' = (r̂₀, r').
    pub const RHO_NEXT: Reg = 8;
    /// β.
    pub const BETA: Reg = 9;
    /// Scratch.
    pub const TMP: Reg = 10;
    /// ‖r‖² from the observability dot.
    pub const RR: Reg = 11;
    /// α·ω — the fused single-reduction iteration's `r += αω·(A s)`
    /// correction scalar (see `crate::multi`).
    pub const ALPHA_OMEGA: Reg = 12;
    /// Local dot accumulator.
    pub const DOT_ACC: Reg = 20;
    /// AllReduce input.
    pub const AR_IN: Reg = 24;
    /// AllReduce output.
    pub const AR_OUT: Reg = 25;
    /// AllReduce scratch.
    pub const AR_ACC: Reg = 26;
    /// Second AllReduce input (fused ω-step reduction).
    pub const AR_IN2: Reg = 27;
    /// Second AllReduce output.
    pub const AR_OUT2: Reg = 28;
    /// Second AllReduce scratch.
    pub const AR_ACC2: Reg = 29;
    /// Tiny denominator guard (set by `load_rhs`): the coefficient tasks
    /// have no conditionals, so breakdown-adjacent divisions are regularized
    /// with `x/(y+ε)` instead of being branched around.
    pub const EPS: Reg = 31;
}

/// Per-tile memory layout of the solver vectors (byte addresses). Shared
/// with the multi-wafer driver ([`crate::multi`]), which lays its tiles
/// out identically.
#[derive(Copy, Clone, Debug)]
pub(crate) struct TileVecs {
    /// Padded p (SpMV source), `z + 2` words; live at `+2` bytes.
    pub(crate) p_pad: u32,
    /// Padded q (SpMV source), `z + 2` words.
    pub(crate) q_pad: u32,
    /// s = A p.
    pub(crate) s: u32,
    /// y = A q.
    pub(crate) y: u32,
    /// Residual r.
    pub(crate) r: u32,
    /// Shadow residual r̂₀.
    pub(crate) r0: u32,
    /// Iterate x.
    pub(crate) x: u32,
}

/// Per-tile task ids for the non-SpMV, non-AllReduce phases (dots, scalar
/// coefficient arithmetic, vector updates). These are purely core-local,
/// so the single-wafer and multi-wafer drivers build them identically via
/// [`build_scalar_tasks`].
#[derive(Clone, Debug)]
pub(crate) struct ScalarTasks {
    pub(crate) dot_r0s: TaskId,
    pub(crate) dot_qy: TaskId,
    pub(crate) dot_yy: TaskId,
    /// Fused variant: both ω-step dots in one task (qy → AR_IN, yy → AR_IN2).
    pub(crate) dot_qy_yy: TaskId,
    /// Fused variant: ω from the two concurrent reduction outputs.
    pub(crate) post_omega_fused: TaskId,
    pub(crate) dot_rho: TaskId,
    pub(crate) dot_rr: TaskId,
    pub(crate) post_r0s: TaskId,
    pub(crate) post_qy: TaskId,
    pub(crate) post_yy: TaskId,
    pub(crate) post_rho: TaskId,
    pub(crate) init_rho: TaskId,
    pub(crate) post_rr: TaskId,
    pub(crate) upd_q: TaskId,
    pub(crate) upd_x: TaskId,
    pub(crate) upd_r: TaskId,
    pub(crate) upd_p1: TaskId,
    pub(crate) upd_p2: TaskId,
}

/// Per-tile task ids for every phase.
#[derive(Clone, Debug)]
struct TileTasks {
    spmv_ps: SpmvTasks,
    spmv_qy: SpmvTasks,
    scalar: ScalarTasks,
    /// Fused variant: the combined two-network reduction task.
    fused_allreduce: Option<TaskId>,
}

/// Allocates one solver tile's SRAM: six coefficient diagonals followed by
/// the seven iteration vectors, in the fixed order both drivers share.
///
/// # Panics
/// Panics if the tile runs out of SRAM.
pub(crate) fn alloc_solver_vecs(tile: &mut Tile, z: u32) -> ([u32; 6], TileVecs) {
    let mut diag = [0u32; 6];
    for d in &mut diag {
        *d = tile.mem.alloc_vec(z, Dtype::F16).expect("SRAM: diagonals");
    }
    let vecs = TileVecs {
        p_pad: tile.mem.alloc_vec(z + 2, Dtype::F16).expect("SRAM: p"),
        q_pad: tile.mem.alloc_vec(z + 2, Dtype::F16).expect("SRAM: q"),
        s: tile.mem.alloc_vec(z, Dtype::F16).expect("SRAM: s"),
        y: tile.mem.alloc_vec(z, Dtype::F16).expect("SRAM: y"),
        r: tile.mem.alloc_vec(z, Dtype::F16).expect("SRAM: r"),
        r0: tile.mem.alloc_vec(z, Dtype::F16).expect("SRAM: r0"),
        x: tile.mem.alloc_vec(z, Dtype::F16).expect("SRAM: x"),
    };
    (diag, vecs)
}

/// Cycle counts of one iteration, by phase kind.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct IterCycles {
    /// The two SpMVs.
    pub spmv: u64,
    /// The four local dot products.
    pub dot: u64,
    /// The four AllReduce rounds.
    pub allreduce: u64,
    /// The six AXPY/XPAY vector updates.
    pub update: u64,
    /// Scalar coefficient arithmetic.
    pub scalar: u64,
}

impl IterCycles {
    /// Total cycles of the iteration.
    pub fn total(&self) -> u64 {
        self.spmv + self.dot + self.allreduce + self.update + self.scalar
    }
}

/// Statistics of a whole solve.
#[derive(Clone, Debug, Default)]
pub struct SolveStats {
    /// Per-iteration cycle breakdowns.
    pub iterations: Vec<IterCycles>,
    /// Relative residual ‖r‖/‖b‖ per iteration (from the on-wafer dot).
    pub residuals: Vec<f64>,
}

impl SolveStats {
    /// Mean cycles per iteration.
    pub fn mean_cycles(&self) -> f64 {
        if self.iterations.is_empty() {
            return 0.0;
        }
        self.iterations.iter().map(|i| i.total() as f64).sum::<f64>() / self.iterations.len() as f64
    }
}

/// The wafer-resident BiCGStab solver.
pub struct WaferBicgstab {
    mapping: Mapping3D,
    tiles: Vec<(TileVecs, TileTasks)>,
    allreduce: AllReduce,
    /// Second concurrent reduction network (present in fused mode).
    #[allow(dead_code)] // retained so its routes/tasks stay alive with the solver
    allreduce2: Option<AllReduce>,
    fused: bool,
}

impl WaferBicgstab {
    /// Distributes the system matrix and builds every tile's programs.
    ///
    /// # Panics
    /// Panics if the matrix is not a unit-diagonal 7-point operator, the
    /// mesh exceeds the fabric, or any tile runs out of SRAM.
    pub fn build(fabric: &mut Fabric, a: &DiaMatrix<F16>) -> WaferBicgstab {
        Self::build_inner(fabric, a, false)
    }

    /// Builds the **communication-fused** variant: the ω-step's two inner
    /// products `(q,y)` and `(y,y)` reduce **concurrently** over two
    /// disjoint virtual-channel networks, cutting the blocking reduction
    /// rounds per iteration from four to three. (The paper notes it "did
    /// not use a communication-hiding variant of BiCGStab", making the
    /// collectives blocking; this is the first step of that optimization,
    /// implementable with routing alone.)
    ///
    /// # Panics
    /// As for [`WaferBicgstab::build`].
    pub fn build_fused(fabric: &mut Fabric, a: &DiaMatrix<F16>) -> WaferBicgstab {
        Self::build_inner(fabric, a, true)
    }

    fn build_inner(fabric: &mut Fabric, a: &DiaMatrix<F16>, fused: bool) -> WaferBicgstab {
        assert!(has_unit_diagonal(a), "matrix must be diagonally preconditioned");
        assert_eq!(a.offsets().len(), 7, "7-point stencil required");
        let mesh = a.mesh();
        let mapping = Mapping3D::new(mesh, fabric.width(), fabric.height());
        let (w, h) = (mapping.fabric_w, mapping.fabric_h);
        let z = mapping.z as u32;

        configure_spmv_routes(fabric, w, h);
        let allreduce = AllReduce::build(fabric, w, h, regs::AR_IN, regs::AR_OUT, regs::AR_ACC);
        let allreduce2 = fused.then(|| {
            AllReduce::build_with_base(
                fabric,
                w,
                h,
                regs::AR_IN2,
                regs::AR_OUT2,
                regs::AR_ACC2,
                crate::allreduce::colors::DEFAULT_BASE + crate::allreduce::colors::SPAN,
            )
        });

        let mut tiles = Vec::with_capacity(w * h);
        for y in 0..h {
            for x in 0..w {
                let fused_allreduce = allreduce2
                    .as_ref()
                    .map(|second| allreduce.build_fused_task(second, fabric, x, y));
                let tile = fabric.tile_mut(x, y);

                // Shared coefficient storage for both SpMVs.
                let (diag, vecs) = alloc_solver_vecs(tile, z);
                let coeffs = tile_coefficients(a, x, y);
                let lay_ps = SpmvLayout { z, diag, vpad: vecs.p_pad, u: vecs.s };
                let lay_qy = SpmvLayout { z, diag, vpad: vecs.q_pad, u: vecs.y };
                load_coefficients(tile, &lay_ps, &coeffs);
                // Zero the pads once; the live parts are rewritten by XPAYs.
                tile.mem.write_f16(vecs.p_pad, F16::ZERO);
                tile.mem.write_f16(vecs.p_pad + 2 * (z + 1), F16::ZERO);
                tile.mem.write_f16(vecs.q_pad, F16::ZERO);
                tile.mem.write_f16(vecs.q_pad + 2 * (z + 1), F16::ZERO);

                let spmv_ps = build_spmv_tile(tile, x, y, w, h, lay_ps, None);
                let spmv_qy = build_spmv_tile(tile, x, y, w, h, lay_qy, None);
                let scalar = build_scalar_tasks(&mut tile.core, &vecs, z);
                tiles.push((vecs, TileTasks { spmv_ps, spmv_qy, scalar, fused_allreduce }));
            }
        }
        crate::debug_lint(fabric);
        WaferBicgstab { mapping, tiles, allreduce, allreduce2, fused }
    }
}

/// Builds every core-local phase task on one tile — the four dots, the
/// scalar coefficient arithmetic, and the six vector updates — and marks
/// each as a host-activated entry point. Shared verbatim by the
/// single-wafer and multi-wafer drivers (the phases touch no fabric, so
/// sharding cannot change them).
pub(crate) fn build_scalar_tasks(core: &mut Core, vecs: &TileVecs, z: u32) -> ScalarTasks {
    let p_live = vecs.p_pad + 2;
    let q_live = vecs.q_pad + 2;
    {
        // --- Dot phases (local MAC + move to the AllReduce input).
        let dot_r0s = {
            let body = dot_stmts(core, regs::DOT_ACC, regs::AR_IN, vecs.r0, vecs.s, z);
            core.add_task(Task::new("dot_r0s", body))
        };
        let dot_qy = {
            let body = dot_stmts(core, regs::DOT_ACC, regs::AR_IN, q_live, vecs.y, z);
            core.add_task(Task::new("dot_qy", body))
        };
        let dot_yy = {
            let body = dot_stmts(core, regs::DOT_ACC, regs::AR_IN, vecs.y, vecs.y, z);
            core.add_task(Task::new("dot_yy", body))
        };
        let dot_qy_yy = {
            let mut body = dot_stmts(core, regs::DOT_ACC, regs::AR_IN, q_live, vecs.y, z);
            body.extend(dot_stmts(core, regs::DOT_ACC, regs::AR_IN2, vecs.y, vecs.y, z));
            core.add_task(Task::new("dot_qy_yy", body))
        };
        let dot_rho = {
            let body = dot_stmts(core, regs::DOT_ACC, regs::AR_IN, vecs.r0, vecs.r, z);
            core.add_task(Task::new("dot_rho", body))
        };
        let dot_rr = {
            let body = dot_stmts(core, regs::DOT_ACC, regs::AR_IN, vecs.r, vecs.r, z);
            core.add_task(Task::new("dot_rr", body))
        };

        // --- Scalar coefficient phases.
        let post_r0s = core.add_task(Task::new(
            "post_r0s",
            vec![
                Stmt::RegArith { op: RegOp::Mov, dst: regs::R0S, a: regs::AR_OUT, b: regs::AR_OUT },
                Stmt::RegArith { op: RegOp::Add, dst: regs::R0S, a: regs::R0S, b: regs::EPS },
                Stmt::RegArith { op: RegOp::Div, dst: regs::ALPHA, a: regs::RHO, b: regs::R0S },
                Stmt::RegArith {
                    op: RegOp::Neg,
                    dst: regs::NEG_ALPHA,
                    a: regs::ALPHA,
                    b: regs::ALPHA,
                },
            ],
        ));
        let post_qy = core.add_task(Task::new(
            "post_qy",
            vec![Stmt::RegArith {
                op: RegOp::Mov,
                dst: regs::QY,
                a: regs::AR_OUT,
                b: regs::AR_OUT,
            }],
        ));
        let post_yy = core.add_task(Task::new(
            "post_yy",
            vec![
                Stmt::RegArith { op: RegOp::Mov, dst: regs::YY, a: regs::AR_OUT, b: regs::AR_OUT },
                Stmt::RegArith { op: RegOp::Add, dst: regs::YY, a: regs::YY, b: regs::EPS },
                Stmt::RegArith { op: RegOp::Div, dst: regs::OMEGA, a: regs::QY, b: regs::YY },
                Stmt::RegArith {
                    op: RegOp::Neg,
                    dst: regs::NEG_OMEGA,
                    a: regs::OMEGA,
                    b: regs::OMEGA,
                },
            ],
        ));
        let post_rho = core.add_task(Task::new(
            "post_rho",
            vec![
                Stmt::RegArith {
                    op: RegOp::Mov,
                    dst: regs::RHO_NEXT,
                    a: regs::AR_OUT,
                    b: regs::AR_OUT,
                },
                Stmt::RegArith { op: RegOp::Add, dst: regs::TMP, a: regs::OMEGA, b: regs::EPS },
                Stmt::RegArith { op: RegOp::Div, dst: regs::TMP, a: regs::ALPHA, b: regs::TMP },
                Stmt::RegArith { op: RegOp::Add, dst: regs::BETA, a: regs::RHO, b: regs::EPS },
                Stmt::RegArith {
                    op: RegOp::Div,
                    dst: regs::BETA,
                    a: regs::RHO_NEXT,
                    b: regs::BETA,
                },
                Stmt::RegArith { op: RegOp::Mul, dst: regs::BETA, a: regs::TMP, b: regs::BETA },
                Stmt::RegArith {
                    op: RegOp::Mov,
                    dst: regs::RHO,
                    a: regs::RHO_NEXT,
                    b: regs::RHO_NEXT,
                },
            ],
        ));
        let post_omega_fused = core.add_task(Task::new(
            "post_omega_fused",
            vec![
                Stmt::RegArith { op: RegOp::Mov, dst: regs::QY, a: regs::AR_OUT, b: regs::AR_OUT },
                Stmt::RegArith {
                    op: RegOp::Mov,
                    dst: regs::YY,
                    a: regs::AR_OUT2,
                    b: regs::AR_OUT2,
                },
                Stmt::RegArith { op: RegOp::Add, dst: regs::YY, a: regs::YY, b: regs::EPS },
                Stmt::RegArith { op: RegOp::Div, dst: regs::OMEGA, a: regs::QY, b: regs::YY },
                Stmt::RegArith {
                    op: RegOp::Neg,
                    dst: regs::NEG_OMEGA,
                    a: regs::OMEGA,
                    b: regs::OMEGA,
                },
            ],
        ));
        let init_rho = core.add_task(Task::new(
            "init_rho",
            vec![Stmt::RegArith {
                op: RegOp::Mov,
                dst: regs::RHO,
                a: regs::AR_OUT,
                b: regs::AR_OUT,
            }],
        ));
        let post_rr = core.add_task(Task::new(
            "post_rr",
            vec![Stmt::RegArith {
                op: RegOp::Mov,
                dst: regs::RR,
                a: regs::AR_OUT,
                b: regs::AR_OUT,
            }],
        ));

        // --- Vector update phases.
        let upd_q = {
            let body = xpay_stmts(core, regs::NEG_ALPHA, q_live, vecs.r, vecs.s, z);
            core.add_task(Task::new("upd_q", body))
        };
        let upd_x = {
            let dp = core.add_dsr(mk::tensor16(p_live, z));
            let dq = core.add_dsr(mk::tensor16(q_live, z));
            let dx1 = core.add_dsr(mk::tensor16(vecs.x, z));
            let dx2 = core.add_dsr(mk::tensor16(vecs.x, z));
            core.add_task(Task::new(
                "upd_x",
                vec![
                    Stmt::Exec(TensorInstr {
                        op: Op::Axpy { scalar: regs::ALPHA },
                        dst: Some(dx1),
                        a: Some(dp),
                        b: None,
                    }),
                    Stmt::Exec(TensorInstr {
                        op: Op::Axpy { scalar: regs::OMEGA },
                        dst: Some(dx2),
                        a: Some(dq),
                        b: None,
                    }),
                ],
            ))
        };
        let upd_r = {
            let body = xpay_stmts(core, regs::NEG_OMEGA, vecs.r, q_live, vecs.y, z);
            core.add_task(Task::new("upd_r", body))
        };
        let upd_p1 = {
            let body = xpay_stmts(core, regs::NEG_OMEGA, p_live, p_live, vecs.s, z);
            core.add_task(Task::new("upd_p1", body))
        };
        let upd_p2 = {
            let body = xpay_stmts(core, regs::BETA, p_live, vecs.r, p_live, z);
            core.add_task(Task::new("upd_p2", body))
        };

        let tasks = ScalarTasks {
            dot_r0s,
            dot_qy,
            dot_yy,
            dot_qy_yy,
            post_omega_fused,
            dot_rho,
            dot_rr,
            post_r0s,
            post_qy,
            post_yy,
            post_rho,
            init_rho,
            post_rr,
            upd_q,
            upd_x,
            upd_r,
            upd_p1,
            upd_p2,
        };
        // Every phase task is a host-activated entry point.
        for t in [
            dot_r0s,
            dot_qy,
            dot_yy,
            dot_qy_yy,
            post_omega_fused,
            dot_rho,
            dot_rr,
            post_r0s,
            post_qy,
            post_yy,
            post_rho,
            init_rho,
            post_rr,
            upd_q,
            upd_x,
            upd_r,
            upd_p1,
            upd_p2,
        ] {
            core.mark_entry(t);
        }
        tasks
    }
}

impl WaferBicgstab {
    /// `true` if this instance fuses the ω-step reductions.
    pub fn is_fused(&self) -> bool {
        self.fused
    }

    /// The mesh→fabric mapping.
    pub fn mapping(&self) -> Mapping3D {
        self.mapping
    }

    fn idx(&self, x: usize, y: usize) -> usize {
        y * self.mapping.fabric_w + x
    }

    /// Activates one phase task on every tile, runs to quiescence under the
    /// fabric stall watchdog, and returns the cycles it took — or the
    /// watchdog's [`StallReport`] instead of panicking, so the recovery
    /// layer can roll back. The run is bracketed as trace phase `name`
    /// (inert unless the fabric's tracing is armed).
    fn try_phase(
        &self,
        exec: &mut impl WaferExec,
        name: &'static str,
        pick: impl Fn(&TileTasks) -> TaskId,
    ) -> Result<u64, Box<StallReport>> {
        let m = self.mapping;
        for y in 0..m.fabric_h {
            for x in 0..m.fabric_w {
                let t = pick(&self.tiles[self.idx(x, y)].1);
                exec.activate(x, y, t);
            }
        }
        let budget = 200 * m.z as u64 + 200 * (m.fabric_w + m.fabric_h) as u64 + 50_000;
        exec.run_phase(name, budget, recovery::STALL_WINDOW)
    }

    /// Loads the right-hand side and zeroes the iterate: `r = r̂₀ = p = b`,
    /// `x = 0`, then computes ρ₀ = (r̂₀, r) on the wafer.
    pub fn load_rhs(&self, fabric: &mut impl WaferExec, b: &[F16]) {
        self.try_load_rhs(fabric, b).unwrap_or_else(|e| panic!("bicgstab load stalled: {e}"))
    }

    /// Fallible [`WaferBicgstab::load_rhs`] (see [`WaferBicgstab::try_phase`]).
    pub fn try_load_rhs(
        &self,
        fabric: &mut impl WaferExec,
        b: &[F16],
    ) -> Result<(), Box<StallReport>> {
        let m = self.mapping;
        assert_eq!(b.len(), m.cores() * m.z, "rhs length mismatch");
        for y in 0..m.fabric_h {
            for x in 0..m.fabric_w {
                let (vecs, _) = &self.tiles[self.idx(x, y)];
                let rows = m.core_rows(x, y);
                let local = &b[rows];
                fabric.store_f16(x, y, vecs.r, local);
                fabric.store_f16(x, y, vecs.r0, local);
                fabric.store_f16(x, y, vecs.p_pad + 2, local);
                fabric.store_f16(x, y, vecs.x, &vec![F16::ZERO; m.z]);
                fabric.set_reg(x, y, regs::EPS, 1e-30);
                // q's live part gets overwritten before first use; pads are
                // already zero.
            }
        }
        // ρ₀ = (r̂₀, r).
        self.try_phase(fabric, "dot", |t| t.scalar.dot_rho)?;
        self.try_allreduce_phase(fabric)?;
        self.try_phase(fabric, "scalar", |t| t.scalar.init_rho)?;
        Ok(())
    }

    fn try_allreduce_phase(&self, fabric: &mut impl WaferExec) -> Result<u64, Box<StallReport>> {
        let m = self.mapping;
        for y in 0..m.fabric_h {
            for x in 0..m.fabric_w {
                fabric.activate(x, y, self.allreduce.task(x, y));
            }
        }
        fabric.run_phase(
            "allreduce",
            100 * (m.fabric_w + m.fabric_h) as u64 + 50_000,
            recovery::STALL_WINDOW,
        )
    }

    /// Fused mode: one combined task per tile drives both reduction
    /// networks concurrently (all upstream work before either blocking
    /// broadcast receive).
    fn try_allreduce_phase_both(
        &self,
        fabric: &mut impl WaferExec,
    ) -> Result<u64, Box<StallReport>> {
        let m = self.mapping;
        for y in 0..m.fabric_h {
            for x in 0..m.fabric_w {
                let t = self.tiles[self.idx(x, y)].1.fused_allreduce.expect("fused mode");
                fabric.activate(x, y, t);
            }
        }
        fabric.run_phase(
            "allreduce",
            100 * (m.fabric_w + m.fabric_h) as u64 + 50_000,
            recovery::STALL_WINDOW,
        )
    }

    /// Runs one BiCGStab iteration, returning its cycle breakdown.
    pub fn iterate(&self, fabric: &mut impl WaferExec) -> IterCycles {
        self.try_iterate(fabric).unwrap_or_else(|e| panic!("bicgstab iteration stalled: {e}"))
    }

    /// Fallible [`WaferBicgstab::iterate`] (see [`WaferBicgstab::try_phase`]).
    pub fn try_iterate(&self, fabric: &mut impl WaferExec) -> Result<IterCycles, Box<StallReport>> {
        let mut c = IterCycles::default();
        // s := A p
        c.spmv += self.try_phase(fabric, "spmv", |t| t.spmv_ps.start)?;
        // α := ρ / (r̂₀, s)
        c.dot += self.try_phase(fabric, "dot", |t| t.scalar.dot_r0s)?;
        c.allreduce += self.try_allreduce_phase(fabric)?;
        c.scalar += self.try_phase(fabric, "scalar", |t| t.scalar.post_r0s)?;
        // q := r − α s
        c.update += self.try_phase(fabric, "update", |t| t.scalar.upd_q)?;
        // y := A q
        c.spmv += self.try_phase(fabric, "spmv", |t| t.spmv_qy.start)?;
        // ω := (q,y) / (y,y)
        if self.fused {
            c.dot += self.try_phase(fabric, "dot", |t| t.scalar.dot_qy_yy)?;
            c.allreduce += self.try_allreduce_phase_both(fabric)?;
            c.scalar += self.try_phase(fabric, "scalar", |t| t.scalar.post_omega_fused)?;
        } else {
            c.dot += self.try_phase(fabric, "dot", |t| t.scalar.dot_qy)?;
            c.allreduce += self.try_allreduce_phase(fabric)?;
            c.scalar += self.try_phase(fabric, "scalar", |t| t.scalar.post_qy)?;
            c.dot += self.try_phase(fabric, "dot", |t| t.scalar.dot_yy)?;
            c.allreduce += self.try_allreduce_phase(fabric)?;
            c.scalar += self.try_phase(fabric, "scalar", |t| t.scalar.post_yy)?;
        }
        // x := x + α p + ω q
        c.update += self.try_phase(fabric, "update", |t| t.scalar.upd_x)?;
        // r := q − ω y
        c.update += self.try_phase(fabric, "update", |t| t.scalar.upd_r)?;
        // β and ρ roll-over
        c.dot += self.try_phase(fabric, "dot", |t| t.scalar.dot_rho)?;
        c.allreduce += self.try_allreduce_phase(fabric)?;
        c.scalar += self.try_phase(fabric, "scalar", |t| t.scalar.post_rho)?;
        // p := r + β (p − ω s)
        c.update += self.try_phase(fabric, "update", |t| t.scalar.upd_p1)?;
        c.update += self.try_phase(fabric, "update", |t| t.scalar.upd_p2)?;
        Ok(c)
    }

    /// Computes ‖r‖ on the wafer (observability; not part of Table I's
    /// per-iteration operation budget).
    pub fn residual_norm(&self, fabric: &mut impl WaferExec) -> f32 {
        self.try_residual_norm(fabric)
            .unwrap_or_else(|e| panic!("bicgstab residual phase stalled: {e}"))
    }

    /// Fallible [`WaferBicgstab::residual_norm`].
    pub fn try_residual_norm(&self, fabric: &mut impl WaferExec) -> Result<f32, Box<StallReport>> {
        self.try_phase(fabric, "dot", |t| t.scalar.dot_rr)?;
        self.try_allreduce_phase(fabric)?;
        self.try_phase(fabric, "scalar", |t| t.scalar.post_rr)?;
        Ok(fabric.reg(0, 0, regs::RR).max(0.0).sqrt())
    }

    /// Reads the iterate back from tile memories (global mesh order).
    pub fn read_x(&self, fabric: &impl WaferExec) -> Vec<F16> {
        let m = self.mapping;
        let mut out = vec![F16::ZERO; m.cores() * m.z];
        for y in 0..m.fabric_h {
            for x in 0..m.fabric_w {
                let (vecs, _) = &self.tiles[self.idx(x, y)];
                let rows = m.core_rows(x, y);
                let local = fabric.load_f16(x, y, vecs.x, m.z);
                out[rows].copy_from_slice(&local);
            }
        }
        out
    }

    /// Loads `b`, runs `iters` iterations, and returns the final iterate
    /// plus per-iteration statistics (cycles and on-wafer residuals).
    pub fn solve(
        &self,
        fabric: &mut impl WaferExec,
        b: &[F16],
        iters: usize,
    ) -> (Vec<F16>, SolveStats) {
        let norm_b = {
            let s: f64 = b.iter().map(|v| v.to_f64() * v.to_f64()).sum();
            s.sqrt()
        };
        if norm_b == 0.0 {
            // A zero right-hand side has the zero solution; iterating would
            // divide 0/0 in the α computation (the hardware tasks carry no
            // conditionals — the host decides whether to launch, as it
            // decides iteration counts).
            return (vec![F16::ZERO; b.len()], SolveStats::default());
        }
        self.load_rhs(fabric, b);
        let mut stats = SolveStats::default();
        let tripwire = ResidualTripwire::default();
        for _ in 0..iters {
            let c = self.iterate(fabric);
            let rn = self.residual_norm(fabric) as f64;
            stats.iterations.push(c);
            let rel = rn / norm_b;
            stats.residuals.push(rel);
            // Host-side convergence monitor (the host also chooses the
            // iteration budget); thresholds documented on ResidualTripwire.
            if tripwire.check(rel).stops() {
                break;
            }
        }
        (self.read_x(fabric), stats)
    }

    /// SRAM address of tile `(x, y)`'s slice of the iterate `x` (fault
    /// targeting and inspection).
    pub fn x_addr(&self, x: usize, y: usize) -> u32 {
        self.tiles[self.idx(x, y)].0.x
    }

    /// Like [`WaferBicgstab::solve`], but runs under the checkpoint/rollback
    /// recovery engine so the solve survives injected faults: fabric stalls
    /// are caught by the watchdog, residual anomalies by the tripwire, and
    /// `Converged` claims are verified against `a`'s f64 true residual
    /// before being believed (a corrupted iterate is invisible to the
    /// recursive residual). Returns the iterate, the committed-iteration
    /// statistics, and the full [`RecoveryLog`].
    pub fn solve_with_recovery(
        &self,
        fabric: &mut Fabric,
        a: &DiaMatrix<F16>,
        b: &[F16],
        iters: usize,
        policy: &RecoveryPolicy,
    ) -> (Vec<F16>, SolveStats, RecoveryLog) {
        let norm_b = {
            let s: f64 = b.iter().map(|v| v.to_f64() * v.to_f64()).sum();
            s.sqrt()
        };
        let mut stats = SolveStats::default();
        if norm_b == 0.0 {
            let log = RecoveryLog {
                outcome: crate::recovery::RecoveryOutcome::Converged,
                ..RecoveryLog::default()
            };
            return (vec![F16::ZERO; b.len()], stats, log);
        }
        let log = run_with_recovery(
            fabric,
            iters,
            policy,
            |f| self.try_load_rhs(f, b),
            |f, i| {
                // Re-entered with a rolled-back index after recovery: drop
                // the records of the discarded iterations.
                stats.iterations.truncate(i);
                stats.residuals.truncate(i);
                let c = self.try_iterate(f)?;
                let rel = self.try_residual_norm(f)? as f64 / norm_b;
                stats.iterations.push(c);
                stats.residuals.push(rel);
                Ok(rel)
            },
            |f| recovery::true_rel_residual(a, &self.read_x(f), b),
        );
        stats.iterations.truncate(log.iterations);
        stats.residuals.truncate(log.iterations);
        (self.read_x(fabric), stats, log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use solver::policy::MixedF16;
    use solver::{bicgstab as host_bicgstab, SolveOptions};
    use stencil::mesh::Mesh3D;
    use stencil::problem::manufactured;

    fn problem(mesh: Mesh3D) -> (DiaMatrix<F16>, Vec<F16>, Vec<f64>) {
        let p = manufactured(mesh, (1.0, -0.5, 0.5), 11).preconditioned();
        let a16: DiaMatrix<F16> = p.matrix.convert();
        let b16: Vec<F16> = p.rhs.iter().map(|&v| F16::from_f64(v)).collect();
        (a16, b16, p.exact.unwrap())
    }

    #[test]
    fn wafer_bicgstab_converges() {
        let mesh = Mesh3D::new(4, 4, 8);
        let (a, b, exact) = problem(mesh);
        let mut fabric = Fabric::new(4, 4);
        let solver = WaferBicgstab::build(&mut fabric, &a);
        let (x, stats) = solver.solve(&mut fabric, &b, 12);
        let last = *stats.residuals.last().unwrap();
        assert!(last < 0.05, "relative residual after 12 iters: {last}");
        // Solution should be close to the exact one at fp16 level.
        let err = x.iter().zip(&exact).map(|(a, b)| (a.to_f64() - b).abs()).fold(0.0, f64::max);
        let scale = exact.iter().map(|v| v.abs()).fold(0.0, f64::max);
        assert!(err < 0.15 * scale.max(1.0), "max err {err} (scale {scale})");
    }

    #[test]
    fn wafer_matches_host_mixed_policy_trajectory() {
        // The wafer solve and the host MixedF16 solve use the same
        // arithmetic classes (fp16 storage, fp32 dot accumulation); their
        // residual trajectories agree to within rounding-order noise.
        let mesh = Mesh3D::new(3, 3, 6);
        let (a, b, _) = problem(mesh);
        let mut fabric = Fabric::new(3, 3);
        let solver = WaferBicgstab::build(&mut fabric, &a);
        let iters = 6;
        let (_, stats) = solver.solve(&mut fabric, &b, iters);

        let opts = SolveOptions { max_iters: iters, rtol: 0.0, record_true_residual: false };
        let host = host_bicgstab::<MixedF16>(&a, &b, &opts);
        // Once either trajectory reaches the fp16 storage noise floor
        // (2^-11 ≈ 4.9e-4 relative), recursive residuals are rounding noise
        // and their ratio is instance-dependent; clamp the comparison there.
        let floor = 5e-4;
        for (i, rec) in host.history.records.iter().enumerate() {
            let wafer = stats.residuals[i].max(floor);
            let host_rel = rec.recursive_rel.max(floor);
            let ratio = (wafer / host_rel).max(host_rel / wafer);
            assert!(ratio < 5.0, "iter {}: wafer {wafer:.3e} vs host {host_rel:.3e}", i + 1,);
        }
    }

    #[test]
    fn spmv_dominates_iteration_cycles_for_large_z() {
        let mesh = Mesh3D::new(3, 3, 64);
        let (a, b, _) = problem(mesh);
        let mut fabric = Fabric::new(3, 3);
        let solver = WaferBicgstab::build(&mut fabric, &a);
        solver.load_rhs(&mut fabric, &b);
        let c = solver.iterate(&mut fabric);
        assert!(c.spmv > c.dot, "{c:?}");
        assert!(c.spmv > c.update, "{c:?}");
        assert!(c.total() > 0);
    }

    #[test]
    fn fused_variant_matches_standard_and_cuts_reduction_rounds() {
        let mesh = Mesh3D::new(8, 8, 16);
        let (a, b, _) = problem(mesh);
        let iters = 6;

        let mut f1 = Fabric::new(8, 8);
        let standard = WaferBicgstab::build(&mut f1, &a);
        assert!(!standard.is_fused());
        let (_, s1) = standard.solve(&mut f1, &b, iters);

        let mut f2 = Fabric::new(8, 8);
        let fused = WaferBicgstab::build_fused(&mut f2, &a);
        assert!(fused.is_fused());
        let (_, s2) = fused.solve(&mut f2, &b, iters);

        // Same numerics up to reduction-order rounding: under port
        // contention the two networks' f32 sums associate differently, so
        // trajectories agree early and may drift late (as with any
        // reduction-order change). Check the early iterations tightly and
        // overall convergence loosely.
        for (r1, r2) in s1.residuals.iter().zip(&s2.residuals).take(3) {
            let ratio = (r1 / r2).max(r2 / r1);
            assert!(ratio < 1.2, "early trajectories must agree: {r1} vs {r2}");
        }
        let best1 = s1.residuals.iter().copied().fold(f64::INFINITY, f64::min);
        let best2 = s2.residuals.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(best2 < 10.0 * best1 + 0.05, "fused must converge comparably: {best1} vs {best2}");
        // Fewer blocking reduction rounds -> fewer allreduce cycles. (The
        // benefit grows with fabric diameter; at 8x8 it is ~10%, at 24x24
        // ~14%, and at machine scale the fused round approaches the cost of
        // a single one.)
        let ar1: u64 = s1.iterations.iter().map(|c| c.allreduce).sum();
        let ar2: u64 = s2.iterations.iter().map(|c| c.allreduce).sum();
        assert!((ar2 as f64) < 0.95 * ar1 as f64, "fused must cut reduction time: {ar1} -> {ar2}");
        assert!(s2.mean_cycles() < s1.mean_cycles(), "fused iteration is faster overall");
    }

    #[test]
    fn memory_fits_paper_z() {
        // The solver layout must accommodate the paper's Z = 1536 in 48 KB.
        let mesh = Mesh3D::new(2, 2, 1536);
        let a16: DiaMatrix<F16> = {
            let p = manufactured(mesh, (0.0, 0.0, 0.0), 1).preconditioned();
            p.matrix.convert()
        };
        let mut fabric = Fabric::new(2, 2);
        let _solver = WaferBicgstab::build(&mut fabric, &a16);
        let used = fabric.tile(0, 0).mem.used();
        assert!(used <= 48 * 1024, "tile memory {used} exceeds SRAM");
        assert!(used > 26 * 1536, "layout should hold 13 Z-vectors: {used}");
    }
}
