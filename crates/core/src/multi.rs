//! Distributed BiCGStab across a multi-wafer ensemble (§VIII.B), with
//! the seams hidden: overlapped halo exchange, a binomial-tree host
//! combine, and a single-reduction fused iteration.
//!
//! The global `nx × ny × nz` mesh is sharded along X into `k` slabs, one
//! per wafer ([`wse_multi::MultiFabric`]). Each wafer runs the same
//! per-tile programs as the single-wafer solver ([`crate::bicgstab`])
//! over its slab; at the wafer seams the default schedule works to keep
//! the interconnect off the critical path:
//!
//! * **Overlapped halo exchange** — a seam tile's ±x mesh neighbor lives
//!   on another wafer, so no broadcast stream arrives for it. Instead of
//!   a blocking halo phase, each SpMV runs as one *merged window*
//!   ([`MultiFabric::run_linked`]): seam tiles launch their outbound
//!   iterate column on a background thread (colors [`HALO_EAST`] /
//!   [`HALO_WEST`], through the declared edge ports and the host
//!   interconnect, [`wse_multi::HostLink`]) while every tile computes the
//!   interior SpMV; the inbound plane lands in a halo buffer that a
//!   receive-triggered fold task adds in with one fused multiply-add
//!   ([`crate::spmv3d::build_overlap_halo`]). Wire time that fits under
//!   the calibrated compute window is *hidden*
//!   ([`MultiIterCycles::halo_hidden`], trace span `"halo_overlap"`);
//!   only the remainder is *exposed* ([`MultiIterCycles::halo`], trace
//!   span `"halo_exposed"` at the window's tail).
//! * **Tree host combine** — each wafer reduces on-wafer in fp32; the
//!   host then combines the `k` partials over a binomial tree
//!   (`⌈log₂ k⌉` levels up, the same back down — `2·⌈log₂ k⌉` link
//!   latencies instead of the serial `k`-hop scan), writes the global
//!   result back, and triggers the on-wafer broadcast (trace span
//!   `"host_allreduce"`).
//! * **Single-reduction fused iteration** ([`build_fused`][WaferBicgstabMulti::build_fused],
//!   the bench default) — the rearranged recurrences batch all fourteen
//!   dot products of one BiCGStab iteration into one fp32 payload,
//!   reduced by one on-wafer [`ChainReduce`] plus one binomial host
//!   round-trip per iteration; the host derives α, ω, β from the lanes
//!   and broadcasts seven scalars back. Iteration order: window A
//!   (`p := r + β(p − ω s)` co-scheduled with `v := A r` and the halo of
//!   `r` — the update widens the window the wire latency hides behind),
//!   `upd_s`, window B (`zv := A s` over the halo of `s`), the fused dot
//!   task, the single reduction, then the trailing updates.
//!
//! Compute phases run **concurrently, one thread per wafer**
//! ([`MultiFabric::run_each`]); the ensemble synchronizes only at the
//! merged windows and the reduction, mirroring how a real host runtime
//! would drive k machines. [`build_serial`][WaferBicgstabMulti::build_serial]
//! retains the blocking schedule (trace phase `"halo"`, four scalar
//! round-trips) as the measured baseline the overlapped gates compare
//! against.
//!
//! The hierarchical modes are numerically equivalent — but not bit-equal
//! — to the single-wafer solve (reduction and halo summation orders
//! differ). The bit-exact cross-validation path is *transparent* mode:
//! build the ordinary [`WaferBicgstab`] on one fused fabric, split it
//! with [`MultiFabric::split_x`], and drive it through the
//! [`crate::exec::WaferExec`] impl for `MultiFabric` — under
//! [`wse_multi::HostLink::ideal`] that reproduces the single-wafer
//! residual trajectory bit for bit.

use crate::allreduce::{AllReduceSplit, ChainReduce};
use crate::bicgstab::{
    alloc_solver_vecs, build_scalar_tasks, regs, IterCycles, ScalarTasks, TileVecs,
};
use crate::exec::WaferExec;
use crate::kernels::xpay_stmts;
use crate::recovery::{
    self, run_with_recovery, RecoveryLog, RecoveryOutcome, RecoveryPolicy, ResidualTripwire,
};
use crate::routing::configure_spmv_routes;
use crate::spmv3d::{
    build_overlap_halo, build_spmv_tile_halo, build_spmv_tile_overlapped, load_coefficients,
    tile_coefficients, HaloBuffers, OverlapHalo, SpmvLayout, SpmvTasks,
};
use crate::WaferBicgstab;
use std::cell::Cell;
use stencil::decomp::Mapping3D;
use stencil::dia::DiaMatrix;
use stencil::precond::has_unit_diagonal;
use wse_arch::dsr::mk;
use wse_arch::fabric::StallReport;
use wse_arch::instr::{Op, Stmt, Task, TensorInstr};
use wse_arch::types::{Color, Dtype, Port, Reg, TaskId};
use wse_float::F16;
use wse_multi::MultiFabric;

/// Virtual channel carrying halo planes eastward across wafer seams.
/// Clear of the SpMV tessellation (0..5) and both AllReduce instances
/// (10..22); allocated in [`wse_dsl::colors`].
pub const HALO_EAST: Color = wse_dsl::colors::SEAM_EAST;
/// Virtual channel carrying halo planes westward across wafer seams.
pub const HALO_WEST: Color = wse_dsl::colors::SEAM_WEST;

/// Number of fp32 dot-product lanes in the fused iteration's payload.
const PAY_LANES: u32 = 14;

/// Broadcast reply registers of the fused iteration, in host write /
/// chain stream order: `[α, −α, ω, −ω, αω, β, ‖r_new‖²]`.
const BC_REGS: [Reg; 7] = [
    regs::ALPHA,
    regs::NEG_ALPHA,
    regs::OMEGA,
    regs::NEG_OMEGA,
    regs::ALPHA_OMEGA,
    regs::BETA,
    regs::RR,
];

/// How seam halo exchanges are scheduled relative to the SpMV compute.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum HaloSchedule {
    /// A dedicated blocking halo phase before each SpMV (the pre-overlap
    /// schedule): the whole ensemble waits out the seam wire time.
    Serial,
    /// Interior-first overlapped schedule: the seam columns are launched
    /// on background threads, interior compute starts immediately, and
    /// only the boundary fold waits on the inbound stream — the wire time
    /// hides behind the SpMV window.
    #[default]
    Overlapped,
}

/// Per-tile halo-exchange tasks (seam tiles only): one per SpMV source
/// vector.
#[derive(Copy, Clone, Debug)]
struct HaloTasks {
    /// Exchanges the live part of `p` (before `s := A p`).
    p: TaskId,
    /// Exchanges the live part of `q` (before `y := A q`).
    q: TaskId,
}

/// The overlapped halo programs of one seam tile, one per SpMV flavor.
struct OverlapPair {
    /// Halo of `p` overlapping `s := A p`.
    ps: OverlapHalo,
    /// Halo of `q` overlapping `y := A q`.
    qy: OverlapHalo,
}

/// A tile's seam communication program (depends on the schedule).
enum SeamComm {
    /// Interior tile: no seam traffic.
    None,
    /// [`HaloSchedule::Serial`]: blocking exchange tasks.
    Serial(HaloTasks),
    /// [`HaloSchedule::Overlapped`]: background send/recv + fold barriers.
    Overlap(OverlapPair),
}

/// One tile's full program in the distributed solver.
struct TileProgram {
    vecs: TileVecs,
    spmv_ps: SpmvTasks,
    spmv_qy: SpmvTasks,
    scalar: ScalarTasks,
    seam: SeamComm,
}

/// Cycle counts of one distributed iteration.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct MultiIterCycles {
    /// The wafer-local phases (SpMVs, dots, on-wafer reduce+broadcast,
    /// updates, scalar arithmetic).
    pub compute: IterCycles,
    /// **Exposed** seam-halo cycles: wall-clock time the ensemble stalled
    /// on seam traffic. Under [`HaloSchedule::Serial`] this is the whole
    /// exchange; under [`HaloSchedule::Overlapped`] only the part that
    /// outlasted the SpMV window.
    pub halo: u64,
    /// Seam-halo wire cycles hidden behind SpMV compute (overlapped
    /// schedule only). Informational: not part of [`Self::total`].
    pub halo_hidden: u64,
    /// The host-level AllReduce hops (combine latency + broadcast).
    pub host_allreduce: u64,
}

impl MultiIterCycles {
    /// Total ensemble cycles of the iteration (hidden halo cycles are not
    /// wall-clock, so they do not count).
    pub fn total(&self) -> u64 {
        self.compute.total() + self.halo + self.host_allreduce
    }
}

/// Statistics of a distributed solve.
#[derive(Clone, Debug, Default)]
pub struct MultiSolveStats {
    /// Per-iteration cycle breakdowns.
    pub iterations: Vec<MultiIterCycles>,
    /// Relative residual ‖r‖/‖b‖ per iteration (from the on-wafer dot).
    pub residuals: Vec<f64>,
}

impl MultiSolveStats {
    /// Mean cycles per iteration.
    pub fn mean_cycles(&self) -> f64 {
        if self.iterations.is_empty() {
            return 0.0;
        }
        self.iterations.iter().map(|i| i.total() as f64).sum::<f64>() / self.iterations.len() as f64
    }
}

/// One seam tile's memory layout and tasks in the fused single-reduction
/// solver (see [`WaferBicgstabMulti::build_fused`]).
struct FusedTile {
    /// Padded `r` (SpMV source for `v := A r`), `z + 2` words.
    r_pad: u32,
    /// Padded `s` (SpMV source for `zv := A s`), `z + 2` words.
    s_pad: u32,
    /// `v = A r`.
    v: u32,
    /// `zv = A s`.
    zv: u32,
    /// Search direction `p`.
    p: u32,
    /// Scratch `q = r − α s`; its storage doubles as the recurrence
    /// carrier `t = s − ω·zv` (q's last read in `upd_rt` precedes t's
    /// write there, and t's last read in `upd_s` precedes q's write in
    /// `upd_xq` — the lifetimes never overlap).
    q: u32,
    /// Shadow residual r̂₀.
    r0: u32,
    /// Iterate x.
    x: u32,
    spmv_rv: SpmvTasks,
    spmv_szv: SpmvTasks,
    upd_p: TaskId,
    upd_s: TaskId,
    /// All fourteen dot products of the iteration, stored to the payload.
    dots: TaskId,
    upd_xq: TaskId,
    upd_rt: TaskId,
    /// `(r, r)` into payload lane 0 (for [`WaferBicgstabMulti::residual_norm`]).
    dot_rr: TaskId,
    /// Overlapped halo of `r` (seam tiles only).
    halo_r: Option<OverlapHalo>,
    /// Overlapped halo of `s` (seam tiles only).
    halo_s: Option<OverlapHalo>,
}

/// The fused single-reduction solver's ensemble-level parts.
struct FusedParts {
    /// Per-tile programs, global `y * fabric_w + x` order.
    tiles: Vec<FusedTile>,
    /// Per-wafer vector AllReduce (local coordinates).
    chains: Vec<ChainReduce>,
    /// Host round-trip cycles of the 14-lane combine + 7-word reply over
    /// the binomial host tree.
    hop_cycles: u64,
    /// Byte address of the 14-lane fp32 dot payload (same on every tile).
    pay: u32,
    /// Byte address of the 7-word fp32 host reply (same on every tile).
    bc_src: u32,
}

/// The distributed BiCGStab driver: per-wafer subdomain programs plus the
/// host-side orchestration of halo exchanges and the hierarchical
/// AllReduce.
pub struct WaferBicgstabMulti {
    mapping: Mapping3D,
    tiles: Vec<TileProgram>,
    /// Per-wafer split reduction (local coordinates).
    reductions: Vec<AllReduceSplit>,
    /// Modeled cycles of the host-level combine tree: `2·⌈log₂ k⌉` one-way
    /// link latencies (up and down).
    host_hop_cycles: u64,
    /// Halo/SpMV schedule of the classic iteration.
    schedule: HaloSchedule,
    /// Modeled one-way wire cycles of one seam halo exchange (latency plus
    /// the two fp16 boundary planes crossing the link).
    halo_wire_cycles: u64,
    /// Measured cycles of the two pure-compute SpMV windows (calibrated
    /// once at [`WaferBicgstabMulti::load_rhs`]); split each merged
    /// `spmv+halo` window into compute and exposed-halo parts. For the
    /// fused solver window 0 is `upd_p + spmv_rv` (the p-update is
    /// co-scheduled so the halo latency hides behind more compute) and
    /// window 1 is `spmv_szv`; the classic overlapped schedule calibrates
    /// one `spmv_ps` window and uses it for both.
    spmv_compute: [Cell<u64>; 2],
    /// Present when built by [`WaferBicgstabMulti::build_fused`]; replaces
    /// `tiles`/`reductions` wholesale.
    fused: Option<FusedParts>,
}

impl WaferBicgstabMulti {
    /// Distributes the system matrix across the ensemble's slabs and
    /// builds every wafer's subdomain program. `multi` must be freshly
    /// created by [`MultiFabric::new`] (this builder declares the seam
    /// channels and pairs them).
    ///
    /// # Panics
    /// Panics if the matrix is not a unit-diagonal 7-point operator, the
    /// mesh does not exactly fill the ensemble grid, any slab is narrower
    /// than 2 tiles (the on-wafer AllReduce needs a 2×2 region), or a
    /// tile runs out of SRAM.
    pub fn build(multi: &mut MultiFabric, a: &DiaMatrix<F16>) -> WaferBicgstabMulti {
        Self::build_with_schedule(multi, a, HaloSchedule::Overlapped)
    }

    /// Like [`WaferBicgstabMulti::build`], with the pre-overlap blocking
    /// halo schedule — the seam exchange runs as a dedicated phase before
    /// each SpMV and the ensemble pays the full wire time. Kept for
    /// A/B comparison and as the schedule `perf-model`'s serial
    /// interconnect model prices.
    ///
    /// # Panics
    /// As [`WaferBicgstabMulti::build`].
    pub fn build_serial(multi: &mut MultiFabric, a: &DiaMatrix<F16>) -> WaferBicgstabMulti {
        Self::build_with_schedule(multi, a, HaloSchedule::Serial)
    }

    fn build_with_schedule(
        multi: &mut MultiFabric,
        a: &DiaMatrix<F16>,
        schedule: HaloSchedule,
    ) -> WaferBicgstabMulti {
        assert!(has_unit_diagonal(a), "matrix must be diagonally preconditioned");
        assert_eq!(a.offsets().len(), 7, "7-point stencil required");
        let mesh = a.mesh();
        let mapping = Mapping3D::new(mesh, multi.global_width(), multi.height());
        assert_eq!(
            (mapping.fabric_w, mapping.fabric_h),
            (multi.global_width(), multi.height()),
            "mesh X×Y must exactly fill the ensemble grid (slab bookkeeping)"
        );
        let (gw, h) = (mapping.fabric_w, mapping.fabric_h);
        let z = mapping.z as u32;
        let k = multi.k();

        // Per-wafer fabric programs: tessellation routes + split AllReduce.
        let mut reductions = Vec::with_capacity(k);
        for m in 0..k {
            let lw = multi.slab(m).len();
            assert!(lw >= 2 && h >= 2, "each wafer slab needs at least 2×2 tiles, got {lw}×{h}");
            let shard = multi.shard_mut(m);
            configure_spmv_routes(shard, lw, h);
            reductions.push(AllReduceSplit::build(
                shard,
                lw,
                h,
                regs::AR_IN,
                regs::AR_OUT,
                regs::AR_ACC,
            ));
            // Seam halo routes and edge declarations.
            if m + 1 < k {
                for y in 0..h {
                    shard.open_edge(lw - 1, y, Port::East, HALO_EAST);
                    shard.open_edge(lw - 1, y, Port::East, HALO_WEST);
                    shard.set_route(lw - 1, y, Port::Ramp, HALO_EAST, &[Port::East]);
                    shard.set_route(lw - 1, y, Port::East, HALO_WEST, &[Port::Ramp]);
                }
            }
            if m > 0 {
                for y in 0..h {
                    shard.open_edge(0, y, Port::West, HALO_WEST);
                    shard.open_edge(0, y, Port::West, HALO_EAST);
                    shard.set_route(0, y, Port::Ramp, HALO_WEST, &[Port::West]);
                    shard.set_route(0, y, Port::West, HALO_EAST, &[Port::Ramp]);
                }
            }
        }

        // Per-tile programs, addressed by global coordinates.
        let mut tiles = Vec::with_capacity(gw * h);
        for y in 0..h {
            for gx in 0..gw {
                let (m, lx) = multi.to_local(gx);
                let lw = multi.slab(m).len();
                let east_seam = lx == lw - 1 && gx + 1 < gw;
                let west_seam = lx == 0 && gx > 0;
                let tile = multi.shard_mut(m).tile_mut(lx, y);

                let (diag, vecs) = alloc_solver_vecs(tile, z);
                let coeffs = tile_coefficients(a, gx, y);
                let lay_ps = SpmvLayout { z, diag, vpad: vecs.p_pad, u: vecs.s };
                let lay_qy = SpmvLayout { z, diag, vpad: vecs.q_pad, u: vecs.y };
                load_coefficients(tile, &lay_ps, &coeffs);
                tile.mem.write_f16(vecs.p_pad, F16::ZERO);
                tile.mem.write_f16(vecs.p_pad + 2 * (z + 1), F16::ZERO);
                tile.mem.write_f16(vecs.q_pad, F16::ZERO);
                tile.mem.write_f16(vecs.q_pad + 2 * (z + 1), F16::ZERO);

                let (spmv_ps, spmv_qy, seam) = if !(east_seam || west_seam) {
                    // Interior tile: no seam machinery, byte-identical
                    // program under both schedules.
                    let none = HaloBuffers { xp: None, xm: None };
                    (
                        build_spmv_tile_halo(tile, lx, y, lw, h, lay_ps, none, None),
                        build_spmv_tile_halo(tile, lx, y, lw, h, lay_qy, none, None),
                        SeamComm::None,
                    )
                } else {
                    // A slab is ≥ 2 wide, so a tile sits on at most one seam.
                    let buf = tile.mem.alloc_vec(z, Dtype::F16).expect("SRAM: halo buffer");
                    let (send, recv_color, coeff) = if east_seam {
                        (HALO_EAST, HALO_WEST, diag[0])
                    } else {
                        (HALO_WEST, HALO_EAST, diag[1])
                    };
                    match schedule {
                        HaloSchedule::Serial => {
                            let bufs = HaloBuffers {
                                xp: east_seam.then_some(buf),
                                xm: west_seam.then_some(buf),
                            };
                            let spmv_ps =
                                build_spmv_tile_halo(tile, lx, y, lw, h, lay_ps, bufs, None);
                            let spmv_qy =
                                build_spmv_tile_halo(tile, lx, y, lw, h, lay_qy, bufs, None);
                            let p = build_halo_task(
                                tile,
                                "halo-p",
                                vecs.p_pad + 2,
                                buf,
                                send,
                                recv_color,
                                z,
                            );
                            let q = build_halo_task(
                                tile,
                                "halo-q",
                                vecs.q_pad + 2,
                                buf,
                                send,
                                recv_color,
                                z,
                            );
                            (spmv_ps, spmv_qy, SeamComm::Serial(HaloTasks { p, q }))
                        }
                        HaloSchedule::Overlapped => {
                            // Both flavors share the halo buffer: their
                            // windows never overlap in the iteration.
                            let ps = build_overlap_halo(
                                tile,
                                vecs.p_pad + 2,
                                buf,
                                coeff,
                                vecs.s,
                                send,
                                recv_color,
                                z,
                            );
                            let qy = build_overlap_halo(
                                tile,
                                vecs.q_pad + 2,
                                buf,
                                coeff,
                                vecs.y,
                                send,
                                recv_color,
                                z,
                            );
                            let spmv_ps = build_spmv_tile_overlapped(
                                tile,
                                lx,
                                y,
                                lw,
                                h,
                                lay_ps,
                                vec![ps.fold],
                                None,
                            );
                            let spmv_qy = build_spmv_tile_overlapped(
                                tile,
                                lx,
                                y,
                                lw,
                                h,
                                lay_qy,
                                vec![qy.fold],
                                None,
                            );
                            (spmv_ps, spmv_qy, SeamComm::Overlap(OverlapPair { ps, qy }))
                        }
                    }
                };
                let scalar = build_scalar_tasks(&mut tile.core, &vecs, z);
                tiles.push(TileProgram { vecs, spmv_ps, spmv_qy, scalar, seam });
            }
        }
        multi.pair_seams();
        for m in 0..k {
            crate::debug_lint(multi.shard(m));
        }

        let levels = (k as f64).log2().ceil() as u64;
        let host_hop_cycles = 2 * levels * multi.link().latency_cycles;
        WaferBicgstabMulti {
            mapping,
            tiles,
            reductions,
            host_hop_cycles,
            schedule,
            halo_wire_cycles: halo_wire_cycles(multi, z),
            spmv_compute: [Cell::new(0), Cell::new(0)],
            fused: None,
        }
    }

    /// Builds the **fused single-reduction** distributed solver: the same
    /// BiCGStab trajectory re-derived so all fourteen scalar products of an
    /// iteration are computed *before* α and ω are known, batched into one
    /// 14-lane fp32 payload, and reduced in a single hierarchical
    /// AllReduce ([`crate::allreduce::ChainReduce`] on-wafer, binomial
    /// host tree across wafers) — one host round-trip per iteration
    /// instead of three, on top of the overlapped halo schedule.
    ///
    /// The recurrence port follows `solver::pipelined::cg_single_reduction`:
    /// with `v = A r` and `zv = A s` every classic scalar is a polynomial
    /// in the pre-α dots (see `DESIGN.md` §12). The host keeps no state —
    /// β and ω live in tile registers — so checkpoint/rollback recovery
    /// works unchanged.
    ///
    /// # Panics
    /// As [`WaferBicgstabMulti::build`].
    pub fn build_fused(multi: &mut MultiFabric, a: &DiaMatrix<F16>) -> WaferBicgstabMulti {
        assert!(has_unit_diagonal(a), "matrix must be diagonally preconditioned");
        assert_eq!(a.offsets().len(), 7, "7-point stencil required");
        let mesh = a.mesh();
        let mapping = Mapping3D::new(mesh, multi.global_width(), multi.height());
        assert_eq!(
            (mapping.fabric_w, mapping.fabric_h),
            (multi.global_width(), multi.height()),
            "mesh X×Y must exactly fill the ensemble grid (slab bookkeeping)"
        );
        let (gw, h) = (mapping.fabric_w, mapping.fabric_h);
        let z = mapping.z as u32;
        let k = multi.k();

        // Per-wafer fabric programs: tessellation routes + seam channels.
        for m in 0..k {
            let lw = multi.slab(m).len();
            assert!(lw >= 2 && h >= 2, "each wafer slab needs at least 2×2 tiles, got {lw}×{h}");
            let shard = multi.shard_mut(m);
            configure_spmv_routes(shard, lw, h);
            if m + 1 < k {
                for y in 0..h {
                    shard.open_edge(lw - 1, y, Port::East, HALO_EAST);
                    shard.open_edge(lw - 1, y, Port::East, HALO_WEST);
                    shard.set_route(lw - 1, y, Port::Ramp, HALO_EAST, &[Port::East]);
                    shard.set_route(lw - 1, y, Port::East, HALO_WEST, &[Port::Ramp]);
                }
            }
            if m > 0 {
                for y in 0..h {
                    shard.open_edge(0, y, Port::West, HALO_WEST);
                    shard.open_edge(0, y, Port::West, HALO_EAST);
                    shard.set_route(0, y, Port::Ramp, HALO_WEST, &[Port::West]);
                    shard.set_route(0, y, Port::West, HALO_EAST, &[Port::Ramp]);
                }
            }
        }

        // Per-tile programs. The payload/reply blocks must land at the
        // same address on every tile (the chain streams them blind), so
        // the layout is allocated identically everywhere and asserted.
        let mut tiles = Vec::with_capacity(gw * h);
        let mut pay_addr: Option<u32> = None;
        let mut bc_addr: Option<u32> = None;
        for y in 0..h {
            for gx in 0..gw {
                let (m, lx) = multi.to_local(gx);
                let lw = multi.slab(m).len();
                let east_seam = lx == lw - 1 && gx + 1 < gw;
                let west_seam = lx == 0 && gx > 0;
                let tile = multi.shard_mut(m).tile_mut(lx, y);

                let mut diag = [0u32; 6];
                for d in &mut diag {
                    *d = tile.mem.alloc_vec(z, Dtype::F16).expect("SRAM: diagonals");
                }
                let r_pad = tile.mem.alloc_vec(z + 2, Dtype::F16).expect("SRAM: r");
                let s_pad = tile.mem.alloc_vec(z + 2, Dtype::F16).expect("SRAM: s");
                let v = tile.mem.alloc_vec(z, Dtype::F16).expect("SRAM: v");
                let zv = tile.mem.alloc_vec(z, Dtype::F16).expect("SRAM: zv");
                let p = tile.mem.alloc_vec(z, Dtype::F16).expect("SRAM: p");
                let q = tile.mem.alloc_vec(z, Dtype::F16).expect("SRAM: q");
                let r0 = tile.mem.alloc_vec(z, Dtype::F16).expect("SRAM: r0");
                let x = tile.mem.alloc_vec(z, Dtype::F16).expect("SRAM: x");
                let pay = tile.mem.alloc_vec(PAY_LANES, Dtype::F32).expect("SRAM: dot payload");
                let bc_src =
                    tile.mem.alloc_vec(BC_REGS.len() as u32, Dtype::F32).expect("SRAM: reply");
                assert_eq!(*pay_addr.get_or_insert(pay), pay, "payload address must be uniform");
                assert_eq!(*bc_addr.get_or_insert(bc_src), bc_src, "reply address must be uniform");

                let coeffs = tile_coefficients(a, gx, y);
                let lay_rv = SpmvLayout { z, diag, vpad: r_pad, u: v };
                let lay_szv = SpmvLayout { z, diag, vpad: s_pad, u: zv };
                load_coefficients(tile, &lay_rv, &coeffs);
                tile.mem.write_f16(r_pad, F16::ZERO);
                tile.mem.write_f16(r_pad + 2 * (z + 1), F16::ZERO);
                tile.mem.write_f16(s_pad, F16::ZERO);
                tile.mem.write_f16(s_pad + 2 * (z + 1), F16::ZERO);

                let (halo_r, halo_s) = if east_seam || west_seam {
                    let buf = tile.mem.alloc_vec(z, Dtype::F16).expect("SRAM: halo buffer");
                    let (send, recv_color, coeff) = if east_seam {
                        (HALO_EAST, HALO_WEST, diag[0])
                    } else {
                        (HALO_WEST, HALO_EAST, diag[1])
                    };
                    let hr =
                        build_overlap_halo(tile, r_pad + 2, buf, coeff, v, send, recv_color, z);
                    let hs =
                        build_overlap_halo(tile, s_pad + 2, buf, coeff, zv, send, recv_color, z);
                    (Some(hr), Some(hs))
                } else {
                    (None, None)
                };
                let folds_r = halo_r.iter().map(|o| o.fold).collect();
                let folds_s = halo_s.iter().map(|o| o.fold).collect();
                let spmv_rv = build_spmv_tile_overlapped(tile, lx, y, lw, h, lay_rv, folds_r, None);
                let spmv_szv =
                    build_spmv_tile_overlapped(tile, lx, y, lw, h, lay_szv, folds_s, None);
                let tasks = build_fused_tasks(
                    &mut tile.core,
                    FusedAddrs { r: r_pad + 2, s: s_pad + 2, v, zv, p, q, r0, x, pay },
                    z,
                );
                tiles.push(FusedTile {
                    r_pad,
                    s_pad,
                    v,
                    zv,
                    p,
                    q,
                    r0,
                    x,
                    spmv_rv,
                    spmv_szv,
                    upd_p: tasks.upd_p,
                    upd_s: tasks.upd_s,
                    dots: tasks.dots,
                    upd_xq: tasks.upd_xq,
                    upd_rt: tasks.upd_rt,
                    dot_rr: tasks.dot_rr,
                    halo_r,
                    halo_s,
                });
            }
        }

        // The on-wafer vector AllReduce, one instance per shard (built
        // after tile allocation: it references the uniform payload/reply
        // addresses).
        let pay = pay_addr.expect("ensemble has at least one tile");
        let bc_src = bc_addr.expect("ensemble has at least one tile");
        let mut chains = Vec::with_capacity(k);
        for m in 0..k {
            let lw = multi.slab(m).len();
            let shard = multi.shard_mut(m);
            chains.push(ChainReduce::build(shard, lw, h, pay, PAY_LANES, bc_src, &BC_REGS));
        }
        multi.pair_seams();
        for m in 0..k {
            crate::debug_lint(multi.shard(m));
        }

        // One host round-trip per iteration: 14 fp32 lanes up, 7 down,
        // over the binomial tree.
        let levels = (k as f64).log2().ceil() as u64;
        let link = multi.link();
        let payload_bytes = (PAY_LANES * 4) as f64;
        let xfer = if link.bytes_per_cycle.is_finite() {
            (payload_bytes / link.bytes_per_cycle).ceil() as u64
        } else {
            0
        };
        let hop_cycles = 2 * levels * (link.latency_cycles + xfer);
        WaferBicgstabMulti {
            mapping,
            tiles: Vec::new(),
            reductions: Vec::new(),
            host_hop_cycles: hop_cycles,
            schedule: HaloSchedule::Overlapped,
            halo_wire_cycles: halo_wire_cycles(multi, z),
            spmv_compute: [Cell::new(0), Cell::new(0)],
            fused: Some(FusedParts { tiles, chains, hop_cycles, pay, bc_src }),
        }
    }

    /// The global mesh→grid mapping.
    pub fn mapping(&self) -> Mapping3D {
        self.mapping
    }

    fn idx(&self, x: usize, y: usize) -> usize {
        y * self.mapping.fabric_w + x
    }

    /// Activates one wafer-local phase task on every tile and runs all
    /// wafers **independently to quiescence**, one thread per wafer (no
    /// seam traffic exists in these phases). Returns max per-wafer cycles.
    fn try_compute_phase(
        &self,
        multi: &mut MultiFabric,
        name: &'static str,
        pick: impl Fn(&TileProgram) -> TaskId,
    ) -> Result<u64, Box<StallReport>> {
        let m = self.mapping;
        for y in 0..m.fabric_h {
            for x in 0..m.fabric_w {
                multi.activate(x, y, pick(&self.tiles[self.idx(x, y)]));
            }
        }
        let budget = 200 * m.z as u64 + 200 * (m.fabric_w + m.fabric_h) as u64 + 50_000;
        multi.phase_begin(name);
        let r = multi.run_each(budget, recovery::STALL_WINDOW);
        multi.phase_end();
        r
    }

    /// One serial-schedule seam halo exchange: every seam tile streams its
    /// column across the host link while blocking on the opposite stream
    /// into its halo buffer. Runs the ensemble in linked lockstep (traffic
    /// crosses seams), bracketed as trace phase `"halo"`.
    fn try_halo_phase(
        &self,
        multi: &mut MultiFabric,
        pick: impl Fn(&HaloTasks) -> TaskId,
    ) -> Result<u64, Box<StallReport>> {
        let m = self.mapping;
        let mut any = false;
        for y in 0..m.fabric_h {
            for x in 0..m.fabric_w {
                if let SeamComm::Serial(halo) = &self.tiles[self.idx(x, y)].seam {
                    multi.activate(x, y, pick(halo));
                    any = true;
                }
            }
        }
        if !any {
            return Ok(0); // k = 1: no seams, no phase
        }
        let budget =
            16 * m.z as u64 + 2 * multi.link().latency_cycles + 200 * m.fabric_h as u64 + 50_000;
        multi.phase_begin("halo");
        let r = multi.run_linked(budget, recovery::STALL_WINDOW);
        multi.phase_end();
        if r.is_err() {
            // The exchange wedged (link down, or a stall outlasting the
            // watchdog): stamp the timeline so the recovery engine's
            // re-run of this halo is visible in traces.
            multi.phase_marker("halo_retry");
        }
        r
    }

    /// Runs one merged `spmv+halo` window of the overlapped schedule.
    /// `pick` maps a tile index to its SpMV entry task, an optional
    /// independent compute task co-scheduled into the same window (the
    /// fused solver folds `upd_p` into the first window so the halo
    /// latency hides behind more compute), plus, on seam tiles, the
    /// background halo `(send, recv)` pair launched alongside it. With no
    /// seams anywhere (k = 1) this degenerates to a plain `"spmv"`
    /// compute phase.
    ///
    /// Returns `(compute, exposed, hidden)`: the window up to the
    /// calibrated pure-compute time (`spmv_compute[cal]`) is compute, the
    /// tail is exposed halo, and `hidden` is the part of the modeled wire
    /// time that the window absorbed. The two attributions are stamped
    /// retroactively as trace spans `"halo_overlap"` / `"halo_exposed"`
    /// inside the window.
    fn try_merged_spmv(
        &self,
        multi: &mut MultiFabric,
        cal: usize,
        pick: impl Fn(usize) -> (TaskId, Option<TaskId>, Option<(TaskId, TaskId)>),
    ) -> Result<(u64, u64, u64), Box<StallReport>> {
        let m = self.mapping;
        let mut any_seam = false;
        for y in 0..m.fabric_h {
            for x in 0..m.fabric_w {
                let (spmv, extra, halo) = pick(self.idx(x, y));
                // Send/recv launch-and-retire first so the boundary column
                // is on the wire before the SpMV occupies the core.
                if let Some((send, recv)) = halo {
                    multi.activate(x, y, send);
                    multi.activate(x, y, recv);
                    any_seam = true;
                }
                if let Some(task) = extra {
                    multi.activate(x, y, task);
                }
                multi.activate(x, y, spmv);
            }
        }
        let compute_budget = 200 * m.z as u64 + 200 * (m.fabric_w + m.fabric_h) as u64 + 50_000;
        if !any_seam {
            multi.phase_begin("spmv");
            let r = multi.run_each(compute_budget, recovery::STALL_WINDOW);
            multi.phase_end();
            return Ok((r?, 0, 0));
        }
        let budget = compute_budget
            + 16 * m.z as u64
            + 2 * multi.link().latency_cycles
            + 200 * m.fabric_h as u64
            + 50_000;
        let t0 = multi.cycle();
        multi.phase_begin("spmv+halo");
        let r = multi.run_linked(budget, recovery::STALL_WINDOW);
        multi.phase_end();
        if r.is_err() {
            multi.phase_marker("halo_retry");
        }
        let merged = r?;
        let t1 = t0 + merged;
        let cal = self.spmv_compute[cal].get();
        let compute = if cal == 0 { merged } else { cal.min(merged) };
        let exposed = merged - compute;
        let hidden = self.halo_wire_cycles.saturating_sub(exposed).min(merged);
        if hidden > 0 {
            multi.phase_span("halo_overlap", t0, t0 + hidden);
        }
        if exposed > 0 {
            multi.phase_span("halo_exposed", t1 - exposed, t1);
        }
        Ok((compute, exposed, hidden))
    }

    /// Calibrates the overlapped schedule's compute/halo attribution: runs
    /// each SpMV window once with **no** seam traffic (trace phase
    /// `"spmv_calibrate"`) and records its cycles. The fold barriers are
    /// host-`Activate`d so they fire on the zero-filled halo buffers
    /// (`u += coeff · 0`, a numeric no-op): the calibrated window prices
    /// interior compute *and* fold execution, leaving only genuine
    /// wait-for-remote-data as the exposed term. A fired fold re-blocks
    /// itself, restoring the built two-way-barrier state.
    ///
    /// The fused solver calibrates window 0 as `upd_p + spmv_rv` (the
    /// iteration co-schedules them; `upd_p` under the zeroed registers
    /// computes `p := r`, exactly what iteration 0 needs) and window 1 as
    /// `spmv_szv`. The classic schedule calibrates one `spmv_ps` window
    /// and uses it for both. No-op for the serial schedule or a seamless
    /// (k = 1) ensemble.
    fn calibrate_spmv(&self, multi: &mut MultiFabric) -> Result<(), Box<StallReport>> {
        if self.schedule != HaloSchedule::Overlapped {
            return Ok(());
        }
        let m = self.mapping;
        let fold_of = |i: usize, win: usize| -> Option<TaskId> {
            match &self.fused {
                Some(f) => {
                    let t = &f.tiles[i];
                    let h = if win == 0 { &t.halo_r } else { &t.halo_s };
                    h.as_ref().map(|h| h.fold)
                }
                None => match &self.tiles[i].seam {
                    SeamComm::Overlap(pair) => Some(pair.ps.fold),
                    _ => None,
                },
            }
        };
        let any_seam = (0..m.fabric_h * m.fabric_w).any(|i| fold_of(i, 0).is_some());
        if !any_seam {
            return Ok(());
        }
        let windows: usize = if self.fused.is_some() { 2 } else { 1 };
        for win in 0..windows {
            for y in 0..m.fabric_h {
                for x in 0..m.fabric_w {
                    let i = self.idx(x, y);
                    match &self.fused {
                        Some(f) => {
                            if win == 0 {
                                multi.activate(x, y, f.tiles[i].upd_p);
                                multi.activate(x, y, f.tiles[i].spmv_rv.start);
                            } else {
                                multi.activate(x, y, f.tiles[i].spmv_szv.start);
                            }
                        }
                        None => multi.activate(x, y, self.tiles[i].spmv_ps.start),
                    }
                    if let Some(fold) = fold_of(i, win) {
                        let (wm, lx) = multi.to_local(x);
                        multi.shard_mut(wm).tile_mut(lx, y).core.activate(fold);
                    }
                }
            }
            let budget = 200 * m.z as u64 + 200 * (m.fabric_w + m.fabric_h) as u64 + 50_000;
            multi.phase_begin("spmv_calibrate");
            let r = multi.run_each(budget, recovery::STALL_WINDOW);
            multi.phase_end();
            let elapsed = r?;
            self.spmv_compute[win].set(elapsed);
            if windows == 1 {
                self.spmv_compute[1].set(elapsed);
            }
            // Defensive re-arm: a fired fold already re-blocked itself;
            // this only matters if a fold was released without firing.
            for y in 0..m.fabric_h {
                for x in 0..m.fabric_w {
                    if let Some(fold) = fold_of(self.idx(x, y), win) {
                        let (wm, lx) = multi.to_local(x);
                        multi.shard_mut(wm).tile_mut(lx, y).core.block(fold);
                    }
                }
            }
        }
        Ok(())
    }

    /// One classic-iteration SpMV with its seam halo, under whichever
    /// schedule this solver was built with. `ps` selects the `s := A p`
    /// flavor, otherwise `y := A q`.
    fn try_classic_spmv(
        &self,
        multi: &mut MultiFabric,
        c: &mut MultiIterCycles,
        ps: bool,
    ) -> Result<(), Box<StallReport>> {
        match self.schedule {
            HaloSchedule::Serial => {
                c.halo += self.try_halo_phase(multi, |h| if ps { h.p } else { h.q })?;
                c.compute.spmv += self.try_compute_phase(multi, "spmv", |t| {
                    if ps {
                        t.spmv_ps.start
                    } else {
                        t.spmv_qy.start
                    }
                })?;
            }
            HaloSchedule::Overlapped => {
                let (comp, exposed, hidden) = self.try_merged_spmv(multi, 0, |i| {
                    let t = &self.tiles[i];
                    let spmv = if ps { t.spmv_ps.start } else { t.spmv_qy.start };
                    let halo = match &t.seam {
                        SeamComm::Overlap(pair) => {
                            let o = if ps { &pair.ps } else { &pair.qy };
                            Some((o.send, o.recv))
                        }
                        _ => None,
                    };
                    (spmv, None, halo)
                })?;
                c.compute.spmv += comp;
                c.halo += exposed;
                c.halo_hidden += hidden;
            }
        }
        Ok(())
    }

    /// The hierarchical AllReduce: on-wafer reduce trees (concurrent, per
    /// wafer), host-level fp32 combine of the `k` root partial sums (in
    /// wafer order, charged `2⌈log₂ k⌉` link latencies), then the on-wafer
    /// broadcasts. Returns `(on_wafer_cycles, host_cycles)`.
    fn try_allreduce(&self, multi: &mut MultiFabric) -> Result<(u64, u64), Box<StallReport>> {
        let budget = 100 * (self.mapping.fabric_w + self.mapping.fabric_h) as u64 + 50_000;
        for (m, red) in self.reductions.iter().enumerate() {
            let (lw, h) = red.dims();
            let shard = multi.shard_mut(m);
            for y in 0..h {
                for x in 0..lw {
                    shard.tile_mut(x, y).core.activate(red.reduce_task(x, y));
                }
            }
        }
        multi.phase_begin("allreduce");
        let on_wafer = multi.run_each(budget, recovery::STALL_WINDOW);
        multi.phase_end();
        let on_wafer = on_wafer?;

        multi.phase_begin("host_allreduce");
        // Host-side fp32 combine over the binomial wafer tree — the
        // summation order the modeled `2⌈log₂ k⌉` hop cycles actually buy
        // (for k = 2 it coincides with a serial left-to-right sum).
        let partials: Vec<f32> = self
            .reductions
            .iter()
            .enumerate()
            .map(|(m, red)| {
                let (rx, ry) = red.root();
                multi.shard(m).tile(rx, ry).core.regs[red.r_acc]
            })
            .collect();
        let sum = binomial_combine(partials);
        for (m, red) in self.reductions.iter().enumerate() {
            let (rx, ry) = red.root();
            multi.shard_mut(m).tile_mut(rx, ry).core.regs[red.r_acc] = sum;
        }
        if self.host_hop_cycles > 0 {
            multi.advance_idle(self.host_hop_cycles);
        }
        for (m, red) in self.reductions.iter().enumerate() {
            let (lw, h) = red.dims();
            let shard = multi.shard_mut(m);
            for y in 0..h {
                for x in 0..lw {
                    shard.tile_mut(x, y).core.activate(red.bcast_task(x, y));
                }
            }
        }
        let bcast = multi.run_each(budget, recovery::STALL_WINDOW);
        multi.phase_end();
        // The broadcast half runs on-wafer; only the hop latency is host time.
        Ok((on_wafer + bcast?, self.host_hop_cycles))
    }

    /// Activates one fused-iteration task on every tile and runs all
    /// wafers independently to quiescence (core-local phases only).
    fn try_fused_phase(
        &self,
        multi: &mut MultiFabric,
        name: &'static str,
        pick: impl Fn(&FusedTile) -> TaskId,
    ) -> Result<u64, Box<StallReport>> {
        let f = self.fused.as_ref().expect("fused driver");
        let m = self.mapping;
        for y in 0..m.fabric_h {
            for x in 0..m.fabric_w {
                multi.activate(x, y, pick(&f.tiles[self.idx(x, y)]));
            }
        }
        let budget = 200 * m.z as u64 + 200 * (m.fabric_w + m.fabric_h) as u64 + 50_000;
        multi.phase_begin(name);
        let r = multi.run_each(budget, recovery::STALL_WINDOW);
        multi.phase_end();
        r
    }

    /// Runs the per-wafer 14-lane chain reduce (trace phase
    /// `"allreduce"`); afterwards every wafer root's payload holds its
    /// wafer's lane-wise partial sums.
    fn try_chain_reduce(&self, multi: &mut MultiFabric) -> Result<u64, Box<StallReport>> {
        let f = self.fused.as_ref().expect("fused driver");
        let budget =
            400 * (self.mapping.fabric_w + self.mapping.fabric_h) as u64 * PAY_LANES as u64
                + 50_000;
        for (m, chain) in f.chains.iter().enumerate() {
            let (lw, h) = chain.dims();
            let shard = multi.shard_mut(m);
            for y in 0..h {
                for x in 0..lw {
                    shard.tile_mut(x, y).core.activate(chain.reduce_task(x, y));
                }
            }
        }
        multi.phase_begin("allreduce");
        let r = multi.run_each(budget, recovery::STALL_WINDOW);
        multi.phase_end();
        r
    }

    /// Reads each wafer root's reduced payload and combines the `k`
    /// copies lane-wise over the binomial host tree.
    fn combine_payload(&self, multi: &MultiFabric) -> Vec<f32> {
        let f = self.fused.as_ref().expect("fused driver");
        let per_wafer: Vec<Vec<f32>> = f
            .chains
            .iter()
            .enumerate()
            .map(|(m, chain)| {
                let (rx, ry) = chain.root();
                let tile = multi.shard(m).tile(rx, ry);
                (0..PAY_LANES).map(|j| tile.mem.read_f32(f.pay + 4 * j)).collect()
            })
            .collect();
        (0..PAY_LANES as usize)
            .map(|j| binomial_combine(per_wafer.iter().map(|w| w[j]).collect()))
            .collect()
    }

    /// The fused single-reduction AllReduce: chain reduce on every wafer,
    /// binomial host combine of all fourteen lanes, host-side derivation
    /// of every scalar the rest of the iteration needs, and the broadcast
    /// loading the 7-word reply `[α, −α, ω, −ω, αω, β, ‖r‖²]` into tile
    /// registers. One host round-trip. Returns
    /// `(on_wafer, host, ‖r_new‖²)`.
    fn try_fused_allreduce(
        &self,
        multi: &mut MultiFabric,
    ) -> Result<(u64, u64, f32), Box<StallReport>> {
        let f = self.fused.as_ref().expect("fused driver");
        let on_wafer = self.try_chain_reduce(multi)?;

        multi.phase_begin("host_allreduce");
        let g = self.combine_payload(multi);
        // The classic scalars as polynomials in the pre-α dots: with
        // q = r − α s and y = v − α·zv, every inner product expands over
        // the measured g's (see DESIGN.md §12 for the derivation).
        const EPS: f32 = 1e-30;
        let rho = g[0];
        let alpha = g[0] / (g[1] + EPS);
        let qy = g[4] - alpha * (g[5] + g[6]) + alpha * alpha * g[7];
        let yy = g[8] - 2.0 * alpha * g[9] + alpha * alpha * g[10];
        let omega = qy / (yy + EPS);
        let rho_next = (g[0] - alpha * g[1]) - omega * (g[2] - alpha * g[3]);
        let beta = (rho_next / (rho + EPS)) * (alpha / (omega + EPS));
        let qq = g[11] - 2.0 * alpha * g[12] + alpha * alpha * g[13];
        let rr_new = qq - 2.0 * omega * qy + omega * omega * yy;
        let reply = [alpha, -alpha, omega, -omega, alpha * omega, beta, rr_new];
        for (m, chain) in f.chains.iter().enumerate() {
            let (rx, ry) = chain.root();
            let tile = multi.shard_mut(m).tile_mut(rx, ry);
            for (i, &val) in reply.iter().enumerate() {
                tile.mem.write_f32(f.bc_src + 4 * i as u32, val);
            }
        }
        if f.hop_cycles > 0 {
            multi.advance_idle(f.hop_cycles);
        }
        let budget =
            400 * (self.mapping.fabric_w + self.mapping.fabric_h) as u64 * PAY_LANES as u64
                + 50_000;
        for (m, chain) in f.chains.iter().enumerate() {
            let (lw, h) = chain.dims();
            let shard = multi.shard_mut(m);
            for y in 0..h {
                for x in 0..lw {
                    shard.tile_mut(x, y).core.activate(chain.bcast_task(x, y));
                }
            }
        }
        let bcast = multi.run_each(budget, recovery::STALL_WINDOW);
        multi.phase_end();
        Ok((on_wafer + bcast?, f.hop_cycles, rr_new))
    }

    /// One fused single-reduction iteration (see
    /// [`WaferBicgstabMulti::build_fused`]).
    fn try_iterate_fused(
        &self,
        multi: &mut MultiFabric,
    ) -> Result<MultiIterCycles, Box<StallReport>> {
        let f = self.fused.as_ref().expect("fused driver");
        let mut c = MultiIterCycles::default();
        // Window A: p := r + β (p − ω s) co-scheduled with v := A r and
        // the halo of r. The p-update is independent of the SpMV (it
        // touches p/s, the SpMV reads r and writes v), so it widens the
        // compute window the halo latency hides behind; its cycles are
        // part of the calibrated window and land in the `spmv` bucket.
        let (comp, exposed, hidden) = self.try_merged_spmv(multi, 0, |i| {
            let t = &f.tiles[i];
            (t.spmv_rv.start, Some(t.upd_p), t.halo_r.as_ref().map(|o| (o.send, o.recv)))
        })?;
        c.compute.spmv += comp;
        c.halo += exposed;
        c.halo_hidden += hidden;
        // s := v + β t  (≡ A p by the recurrence t = s_prev − ω·zv_prev).
        c.compute.update += self.try_fused_phase(multi, "update", |t| t.upd_s)?;
        // Window B: zv := A s, halo of s overlapped behind it.
        let (comp, exposed, hidden) = self.try_merged_spmv(multi, 1, |i| {
            let t = &f.tiles[i];
            (t.spmv_szv.start, None, t.halo_s.as_ref().map(|o| (o.send, o.recv)))
        })?;
        c.compute.spmv += comp;
        c.halo += exposed;
        c.halo_hidden += hidden;
        // All fourteen dots of the iteration, one task, one payload.
        c.compute.dot += self.try_fused_phase(multi, "dot", |t| t.dots)?;
        // The single hierarchical reduction + host scalar derivation.
        let (on_wafer, host, _rr) = self.try_fused_allreduce(multi)?;
        c.compute.allreduce += on_wafer;
        c.host_allreduce += host;
        // q := r − α s;  x += α p + ω q.
        c.compute.update += self.try_fused_phase(multi, "update", |t| t.upd_xq)?;
        // r := q − ω v + αω zv;  t := s − ω zv.
        c.compute.update += self.try_fused_phase(multi, "update", |t| t.upd_rt)?;
        Ok(c)
    }

    /// Fused [`WaferBicgstabMulti::try_load_rhs`]: `r = r̂₀ = b`, all
    /// recurrence vectors and scalar registers zeroed (the first
    /// iteration's `upd_p` then sets `p := r`, and ρ is re-derived from
    /// the payload every iteration — no warm-up reduction needed).
    fn try_load_rhs_fused(
        &self,
        multi: &mut MultiFabric,
        b: &[F16],
    ) -> Result<(), Box<StallReport>> {
        let f = self.fused.as_ref().expect("fused driver");
        let m = self.mapping;
        assert_eq!(b.len(), m.cores() * m.z, "rhs length mismatch");
        let zero = vec![F16::ZERO; m.z];
        for y in 0..m.fabric_h {
            for x in 0..m.fabric_w {
                let t = &f.tiles[self.idx(x, y)];
                let rows = m.core_rows(x, y);
                let local = &b[rows];
                multi.store_f16(x, y, t.r_pad + 2, local);
                multi.store_f16(x, y, t.r0, local);
                for addr in [t.s_pad + 2, t.v, t.zv, t.p, t.q, t.x] {
                    multi.store_f16(x, y, addr, &zero);
                }
                for reg in BC_REGS {
                    multi.set_reg(x, y, reg, 0.0);
                }
            }
        }
        self.calibrate_spmv(multi)
    }

    /// Loads the right-hand side and zeroes the iterate (`r = r̂₀ = p = b`,
    /// `x = 0`), then computes ρ₀ = (r̂₀, r) hierarchically.
    ///
    /// # Panics
    /// Panics on a fabric stall.
    pub fn load_rhs(&self, multi: &mut MultiFabric, b: &[F16]) {
        self.try_load_rhs(multi, b).unwrap_or_else(|e| panic!("bicgstab load stalled: {e}"))
    }

    /// Fallible [`WaferBicgstabMulti::load_rhs`].
    ///
    /// # Errors
    /// Returns the watchdog's [`StallReport`] on a stall.
    pub fn try_load_rhs(&self, multi: &mut MultiFabric, b: &[F16]) -> Result<(), Box<StallReport>> {
        if self.fused.is_some() {
            return self.try_load_rhs_fused(multi, b);
        }
        let m = self.mapping;
        assert_eq!(b.len(), m.cores() * m.z, "rhs length mismatch");
        for y in 0..m.fabric_h {
            for x in 0..m.fabric_w {
                let vecs = &self.tiles[self.idx(x, y)].vecs;
                let rows = m.core_rows(x, y);
                let local = &b[rows];
                multi.store_f16(x, y, vecs.r, local);
                multi.store_f16(x, y, vecs.r0, local);
                multi.store_f16(x, y, vecs.p_pad + 2, local);
                multi.store_f16(x, y, vecs.x, &vec![F16::ZERO; m.z]);
                multi.set_reg(x, y, regs::EPS, 1e-30);
            }
        }
        self.try_compute_phase(multi, "dot", |t| t.scalar.dot_rho)?;
        self.try_allreduce(multi)?;
        self.try_compute_phase(multi, "scalar", |t| t.scalar.init_rho)?;
        self.calibrate_spmv(multi)
    }

    /// Runs one distributed BiCGStab iteration.
    ///
    /// # Panics
    /// Panics on a fabric stall.
    pub fn iterate(&self, multi: &mut MultiFabric) -> MultiIterCycles {
        self.try_iterate(multi).unwrap_or_else(|e| panic!("bicgstab iteration stalled: {e}"))
    }

    /// Fallible [`WaferBicgstabMulti::iterate`]. The sequence is the
    /// single-wafer iteration with a halo exchange before each SpMV and
    /// every AllReduce replaced by the hierarchical form.
    ///
    /// # Errors
    /// Returns the watchdog's [`StallReport`] on a stall.
    pub fn try_iterate(
        &self,
        multi: &mut MultiFabric,
    ) -> Result<MultiIterCycles, Box<StallReport>> {
        if self.fused.is_some() {
            return self.try_iterate_fused(multi);
        }
        let mut c = MultiIterCycles::default();
        let ar = |c: &mut MultiIterCycles, multi: &mut MultiFabric| {
            self.try_allreduce(multi).map(|(on_wafer, host)| {
                c.compute.allreduce += on_wafer;
                c.host_allreduce += host;
            })
        };
        // s := A p (seam halo of p, serial before or overlapped behind)
        self.try_classic_spmv(multi, &mut c, true)?;
        // α := ρ / (r̂₀, s)
        c.compute.dot += self.try_compute_phase(multi, "dot", |t| t.scalar.dot_r0s)?;
        ar(&mut c, multi)?;
        c.compute.scalar += self.try_compute_phase(multi, "scalar", |t| t.scalar.post_r0s)?;
        // q := r − α s
        c.compute.update += self.try_compute_phase(multi, "update", |t| t.scalar.upd_q)?;
        // y := A q (seam halo of q likewise)
        self.try_classic_spmv(multi, &mut c, false)?;
        // ω := (q,y) / (y,y)
        c.compute.dot += self.try_compute_phase(multi, "dot", |t| t.scalar.dot_qy)?;
        ar(&mut c, multi)?;
        c.compute.scalar += self.try_compute_phase(multi, "scalar", |t| t.scalar.post_qy)?;
        c.compute.dot += self.try_compute_phase(multi, "dot", |t| t.scalar.dot_yy)?;
        ar(&mut c, multi)?;
        c.compute.scalar += self.try_compute_phase(multi, "scalar", |t| t.scalar.post_yy)?;
        // x := x + α p + ω q
        c.compute.update += self.try_compute_phase(multi, "update", |t| t.scalar.upd_x)?;
        // r := q − ω y
        c.compute.update += self.try_compute_phase(multi, "update", |t| t.scalar.upd_r)?;
        // β and ρ roll-over
        c.compute.dot += self.try_compute_phase(multi, "dot", |t| t.scalar.dot_rho)?;
        ar(&mut c, multi)?;
        c.compute.scalar += self.try_compute_phase(multi, "scalar", |t| t.scalar.post_rho)?;
        // p := r + β (p − ω s)
        c.compute.update += self.try_compute_phase(multi, "update", |t| t.scalar.upd_p1)?;
        c.compute.update += self.try_compute_phase(multi, "update", |t| t.scalar.upd_p2)?;
        Ok(c)
    }

    /// Computes ‖r‖ on the ensemble (hierarchical reduction).
    ///
    /// # Panics
    /// Panics on a fabric stall.
    pub fn residual_norm(&self, multi: &mut MultiFabric) -> f32 {
        self.try_residual_norm(multi)
            .unwrap_or_else(|e| panic!("bicgstab residual phase stalled: {e}"))
    }

    /// Fallible [`WaferBicgstabMulti::residual_norm`].
    ///
    /// # Errors
    /// Returns the watchdog's [`StallReport`] on a stall.
    pub fn try_residual_norm(&self, multi: &mut MultiFabric) -> Result<f32, Box<StallReport>> {
        if let Some(f) = &self.fused {
            // ‖r‖² through payload lane 0: local dot, chain reduce, host
            // combine. No broadcast — the tiles' registers stay untouched
            // (the stale upper lanes are rewritten by the next `dots`).
            self.try_fused_phase(multi, "dot", |t| t.dot_rr)?;
            self.try_chain_reduce(multi)?;
            multi.phase_begin("host_allreduce");
            let rr = self.combine_payload(multi)[0];
            if f.hop_cycles > 0 {
                multi.advance_idle(f.hop_cycles);
            }
            multi.phase_end();
            return Ok(rr.max(0.0).sqrt());
        }
        self.try_compute_phase(multi, "dot", |t| t.scalar.dot_rr)?;
        self.try_allreduce(multi)?;
        self.try_compute_phase(multi, "scalar", |t| t.scalar.post_rr)?;
        Ok(multi.reg(0, 0, regs::RR).max(0.0).sqrt())
    }

    /// Reads the iterate back from tile memories (global mesh order).
    pub fn read_x(&self, multi: &MultiFabric) -> Vec<F16> {
        let m = self.mapping;
        let mut out = vec![F16::ZERO; m.cores() * m.z];
        for y in 0..m.fabric_h {
            for x in 0..m.fabric_w {
                let addr = match &self.fused {
                    Some(f) => f.tiles[self.idx(x, y)].x,
                    None => self.tiles[self.idx(x, y)].vecs.x,
                };
                let rows = m.core_rows(x, y);
                out[rows].copy_from_slice(&multi.load_f16(x, y, addr, m.z));
            }
        }
        out
    }

    /// Loads `b`, runs up to `iters` iterations (with the same host-side
    /// convergence tripwire as the single-wafer solver), and returns the
    /// final iterate plus per-iteration statistics.
    ///
    /// # Panics
    /// Panics on a fabric stall.
    pub fn solve(
        &self,
        multi: &mut MultiFabric,
        b: &[F16],
        iters: usize,
    ) -> (Vec<F16>, MultiSolveStats) {
        let norm_b = {
            let s: f64 = b.iter().map(|v| v.to_f64() * v.to_f64()).sum();
            s.sqrt()
        };
        if norm_b == 0.0 {
            return (vec![F16::ZERO; b.len()], MultiSolveStats::default());
        }
        self.load_rhs(multi, b);
        let mut stats = MultiSolveStats::default();
        let tripwire = ResidualTripwire::default();
        for _ in 0..iters {
            let c = self.iterate(multi);
            let rn = self.residual_norm(multi) as f64;
            stats.iterations.push(c);
            let rel = rn / norm_b;
            stats.residuals.push(rel);
            if tripwire.check(rel).stops() {
                break;
            }
        }
        (self.read_x(multi), stats)
    }

    /// Like [`WaferBicgstabMulti::solve`], but runs under the
    /// checkpoint/rollback recovery engine so the ensemble solve survives
    /// injected faults — including host-link faults armed on the
    /// [`MultiFabric`]: a dropped or corrupted seam frame is usually
    /// masked by the reliable transport's retransmission, a dead link or
    /// a dark stall trips the watchdog and rolls the whole ensemble back
    /// to the last [`crate::recovery::EnsembleCheckpoint`], and
    /// `Converged` claims are verified against `a`'s f64 true residual
    /// before being believed. Any [`wse_multi::LinkDown`] declarations
    /// made along the way are appended to the returned log's event trail,
    /// so exhausted links are reported structurally, never silently.
    pub fn solve_with_recovery(
        &self,
        multi: &mut MultiFabric,
        a: &DiaMatrix<F16>,
        b: &[F16],
        iters: usize,
        policy: &RecoveryPolicy,
    ) -> (Vec<F16>, MultiSolveStats, RecoveryLog) {
        let norm_b = {
            let s: f64 = b.iter().map(|v| v.to_f64() * v.to_f64()).sum();
            s.sqrt()
        };
        let mut stats = MultiSolveStats::default();
        if norm_b == 0.0 {
            let log = RecoveryLog { outcome: RecoveryOutcome::Converged, ..RecoveryLog::default() };
            return (vec![F16::ZERO; b.len()], stats, log);
        }
        let mut log = run_with_recovery(
            multi,
            iters,
            policy,
            |m| self.try_load_rhs(m, b),
            |m, i| {
                // Re-entered with a rolled-back index after recovery: drop
                // the records of the discarded iterations.
                stats.iterations.truncate(i);
                stats.residuals.truncate(i);
                let c = self.try_iterate(m)?;
                let rel = self.try_residual_norm(m)? as f64 / norm_b;
                stats.iterations.push(c);
                stats.residuals.push(rel);
                Ok(rel)
            },
            |m| recovery::true_rel_residual(a, &self.read_x(m), b),
        );
        for down in multi.link_down_records() {
            log.events.push(down.describe());
        }
        stats.iterations.truncate(log.iterations);
        stats.residuals.truncate(log.iterations);
        (self.read_x(multi), stats, log)
    }
}

/// Builds one seam tile's halo-exchange task: launch the outbound column
/// on a background thread (stream `z` fp16 words from `src` onto the
/// `send` channel toward the seam), then block the main thread receiving
/// the inbound column from the `recv` channel into the halo buffer. Send
/// and receive overlap, so the two sides of a seam cannot deadlock on
/// each other's backpressure.
fn build_halo_task(
    tile: &mut wse_arch::Tile,
    name: &'static str,
    src: u32,
    buf: u32,
    send: Color,
    recv: Color,
    z: u32,
) -> TaskId {
    let core = &mut tile.core;
    let d_src = core.add_dsr(mk::tensor16(src, z));
    let d_buf = core.add_dsr(mk::tensor16(buf, z));
    let d_tx = core.add_dsr(mk::tx16(send, z));
    let d_rx = core.add_dsr(mk::rx16(recv, z));
    let body = vec![
        Stmt::InitDsr { dsr: d_tx, desc: mk::tx16(send, z) },
        Stmt::InitDsr { dsr: d_rx, desc: mk::rx16(recv, z) },
        Stmt::Launch {
            slot: 5,
            instr: TensorInstr { op: Op::Copy, dst: Some(d_tx), a: Some(d_src), b: None },
            on_complete: None,
        },
        Stmt::Exec(TensorInstr { op: Op::Copy, dst: Some(d_buf), a: Some(d_rx), b: None }),
    ];
    let id = core.add_task(Task::new(name, body));
    core.mark_entry(id);
    id
}

/// Combines fp32 partials over a binomial tree in deterministic pair
/// order — the summation shape the modeled `2⌈log₂ k⌉` host hops pay for.
fn binomial_combine(mut partials: Vec<f32>) -> f32 {
    assert!(!partials.is_empty(), "combine needs at least one wafer");
    let mut gap = 1;
    while gap < partials.len() {
        let mut i = 0;
        while i + gap < partials.len() {
            let add = partials[i + gap];
            partials[i] += add;
            i += 2 * gap;
        }
        gap *= 2;
    }
    partials[0]
}

/// Modeled one-way wire cycles of one seam halo exchange: link latency
/// plus the boundary plane (`fabric_h` tiles × `z` fp16 words per seam
/// direction) crossing the link. Used only to attribute hidden-vs-exposed
/// cycles inside the merged overlapped window — wall-clock exposure is
/// always measured, never modeled.
fn halo_wire_cycles(multi: &MultiFabric, z: u32) -> u64 {
    let link = multi.link();
    let plane_bytes = 2.0 * multi.height() as f64 * z as f64;
    let xfer = if link.bytes_per_cycle.is_finite() {
        (plane_bytes / link.bytes_per_cycle).ceil() as u64
    } else {
        0
    };
    link.latency_cycles + xfer
}

/// Byte addresses of one fused tile's vectors (live parts) and payload.
struct FusedAddrs {
    r: u32,
    s: u32,
    v: u32,
    zv: u32,
    p: u32,
    /// Doubles as `t` (see [`FusedTile::q`]).
    q: u32,
    r0: u32,
    x: u32,
    pay: u32,
}

/// The fused iteration's core-local task ids.
struct FusedTaskIds {
    upd_p: TaskId,
    upd_s: TaskId,
    dots: TaskId,
    upd_xq: TaskId,
    upd_rt: TaskId,
    dot_rr: TaskId,
}

/// Statements computing the local dot `Σ a·b` (fp16 MAC, fp32 accumulate)
/// and storing it to the fp32 payload lane at byte address `lane`.
fn fused_dot_stmts(core: &mut wse_arch::Core, a: u32, b: u32, lane: u32, z: u32) -> Vec<Stmt> {
    let da = core.add_dsr(mk::tensor16(a, z));
    let db = core.add_dsr(mk::tensor16(b, z));
    let dp = core.add_dsr(mk::tensor32(lane, 1));
    vec![
        Stmt::SetReg { reg: regs::DOT_ACC, value: 0.0 },
        Stmt::Exec(TensorInstr {
            op: Op::MacReg { acc: regs::DOT_ACC },
            dst: None,
            a: Some(da),
            b: Some(db),
        }),
        Stmt::Exec(TensorInstr {
            op: Op::StoreReg { reg: regs::DOT_ACC },
            dst: Some(dp),
            a: None,
            b: None,
        }),
    ]
}

/// Builds one tile's core-local tasks of the fused single-reduction
/// iteration: the two register-driven vector-update pairs, the fourteen
/// batched dots, and the residual-only dot. Every task is a host-activated
/// entry point.
fn build_fused_tasks(core: &mut wse_arch::Core, at: FusedAddrs, z: u32) -> FusedTaskIds {
    // p := p − ω_prev s;  p := r + β_prev p.
    let upd_p = {
        let mut body = xpay_stmts(core, regs::NEG_OMEGA, at.p, at.p, at.s, z);
        body.extend(xpay_stmts(core, regs::BETA, at.p, at.r, at.p, z));
        core.add_task(Task::new("upd_p", body))
    };
    // s := v + β_prev t   (t lives in q's storage).
    let upd_s = {
        let body = xpay_stmts(core, regs::BETA, at.s, at.v, at.q, z);
        core.add_task(Task::new("upd_s", body))
    };
    // The fourteen dots of the iteration. Lane order is the host-side
    // contract in `try_fused_allreduce`:
    //   g0 (r̂₀,r)  g1 (r̂₀,s)  g2 (r̂₀,v)  g3 (r̂₀,zv)
    //   g4 (r,v)   g5 (r,zv)  g6 (s,v)   g7 (s,zv)
    //   g8 (v,v)   g9 (v,zv)  g10 (zv,zv)
    //   g11 (r,r)  g12 (r,s)  g13 (s,s)
    let dots = {
        let pairs: [(u32, u32); PAY_LANES as usize] = [
            (at.r0, at.r),
            (at.r0, at.s),
            (at.r0, at.v),
            (at.r0, at.zv),
            (at.r, at.v),
            (at.r, at.zv),
            (at.s, at.v),
            (at.s, at.zv),
            (at.v, at.v),
            (at.v, at.zv),
            (at.zv, at.zv),
            (at.r, at.r),
            (at.r, at.s),
            (at.s, at.s),
        ];
        let mut body = Vec::new();
        for (j, &(a, b)) in pairs.iter().enumerate() {
            body.extend(fused_dot_stmts(core, a, b, at.pay + 4 * j as u32, z));
        }
        core.add_task(Task::new("fused_dots", body))
    };
    // q := r − α s;  x += α p;  x += ω q.
    let upd_xq = {
        let mut body = xpay_stmts(core, regs::NEG_ALPHA, at.q, at.r, at.s, z);
        let dp = core.add_dsr(mk::tensor16(at.p, z));
        let dq = core.add_dsr(mk::tensor16(at.q, z));
        let dx1 = core.add_dsr(mk::tensor16(at.x, z));
        let dx2 = core.add_dsr(mk::tensor16(at.x, z));
        body.push(Stmt::Exec(TensorInstr {
            op: Op::Axpy { scalar: regs::ALPHA },
            dst: Some(dx1),
            a: Some(dp),
            b: None,
        }));
        body.push(Stmt::Exec(TensorInstr {
            op: Op::Axpy { scalar: regs::OMEGA },
            dst: Some(dx2),
            a: Some(dq),
            b: None,
        }));
        core.add_task(Task::new("upd_xq", body))
    };
    // r := q − ω v;  r += αω zv  (⟹ r = q − ω y);  t := s − ω zv.
    // q's storage is rewritten as t only after its last read.
    let upd_rt = {
        let mut body = xpay_stmts(core, regs::NEG_OMEGA, at.r, at.q, at.v, z);
        let dzv = core.add_dsr(mk::tensor16(at.zv, z));
        let dr = core.add_dsr(mk::tensor16(at.r, z));
        body.push(Stmt::Exec(TensorInstr {
            op: Op::Axpy { scalar: regs::ALPHA_OMEGA },
            dst: Some(dr),
            a: Some(dzv),
            b: None,
        }));
        body.extend(xpay_stmts(core, regs::NEG_OMEGA, at.q, at.s, at.zv, z));
        core.add_task(Task::new("upd_rt", body))
    };
    // (r, r) into payload lane 0, for the residual-norm round.
    let dot_rr = {
        let body = fused_dot_stmts(core, at.r, at.r, at.pay, z);
        core.add_task(Task::new("dot_rr", body))
    };
    for t in [upd_p, upd_s, dots, upd_xq, upd_rt, dot_rr] {
        core.mark_entry(t);
    }
    FusedTaskIds { upd_p, upd_s, dots, upd_xq, upd_rt, dot_rr }
}

/// Convenience for the bit-exact **transparent** mode: builds the
/// single-wafer [`WaferBicgstab`] program on a fused fabric sized for the
/// matrix, splits it into `k` X-slab wafers, and returns the solver with
/// the linked ensemble. Under [`wse_multi::HostLink::ideal`] every phase
/// of the returned pair steps bit-for-bit like the unsplit fabric, so the
/// residual trajectory is *exactly* the single-wafer one.
pub fn build_transparent(
    a: &DiaMatrix<F16>,
    k: usize,
    link: wse_multi::HostLink,
) -> (WaferBicgstab, MultiFabric) {
    let mesh = a.mesh();
    let mut fabric = wse_arch::Fabric::new(mesh.nx, mesh.ny);
    let solver = WaferBicgstab::build(&mut fabric, a);
    let multi = MultiFabric::split_x(&fabric, k, link);
    (solver, multi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil::mesh::Mesh3D;
    use stencil::precond::jacobi_scale;
    use stencil::stencil7::poisson;
    use wse_arch::Fabric;
    use wse_multi::HostLink;

    /// A diagonally preconditioned Poisson system with a deterministic
    /// non-trivial right-hand side.
    fn test_system(nx: usize, ny: usize, nz: usize) -> (DiaMatrix<F16>, Vec<F16>) {
        let mesh = Mesh3D::new(nx, ny, nz);
        let a64 = poisson(mesh);
        let b64: Vec<f64> =
            (0..mesh.len()).map(|i| ((i * 29 % 101) as f64 / 101.0) - 0.4).collect();
        let sys = jacobi_scale(&a64, &b64);
        let a: DiaMatrix<F16> = sys.matrix.convert();
        let b: Vec<F16> = sys.rhs.iter().map(|&v| F16::from_f64(v)).collect();
        (a, b)
    }

    #[test]
    fn transparent_split_matches_single_wafer_bit_for_bit() {
        let (a, b) = test_system(6, 4, 8);
        let iters = 4;

        // Reference: the ordinary single-wafer solve.
        let mut fabric = Fabric::new(6, 4);
        let solver = WaferBicgstab::build(&mut fabric, &a);
        let (x_ref, stats_ref) = solver.solve(&mut fabric, &b, iters);

        // Transparent mode: same program, split across 2 wafers, ideal link.
        let (solver2, mut multi) = build_transparent(&a, 2, HostLink::ideal());
        let (x_split, stats_split) = solver2.solve(&mut multi, &b, iters);

        assert_eq!(stats_ref.residuals, stats_split.residuals, "residual trajectory diverged");
        assert_eq!(
            x_ref.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            x_split.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "iterate bits diverged"
        );
    }

    #[test]
    fn hierarchical_two_wafer_solve_tracks_single_wafer_trajectory() {
        let (a, b) = test_system(6, 4, 8);
        let iters = 5;

        let mut fabric = Fabric::new(6, 4);
        let solver = WaferBicgstab::build(&mut fabric, &a);
        let (_, stats_ref) = solver.solve(&mut fabric, &b, iters);

        let mut multi = MultiFabric::new(6, 4, 2, HostLink::paper_default());
        let dist = WaferBicgstabMulti::build(&mut multi, &a);
        let (_, stats) = dist.solve(&mut multi, &b, iters);

        assert_eq!(stats.residuals.len(), stats_ref.residuals.len());
        for (i, (got, want)) in stats.residuals.iter().zip(&stats_ref.residuals).enumerate() {
            // Same algorithm, different fp16/fp32 summation orders: the
            // trajectories agree to a modest ratio with an absolute floor.
            let close = (got - want).abs() < 5e-4 || got / want < 5.0 && want / got < 5.0;
            assert!(close, "iteration {i}: distributed {got} vs single {want}");
        }
        // Halo and host-AllReduce time was actually accounted. Under the
        // overlapped default the wire time may be fully hidden, so the
        // exposed part can legitimately be zero — but the exchange itself
        // must have been attributed somewhere.
        let c = &stats.iterations[0];
        assert!(c.halo + c.halo_hidden > 0, "two wafers must exchange halos");
        assert!(c.host_allreduce > 0, "host combine must cost time");
        assert!(c.compute.spmv > 0 && c.compute.allreduce > 0);
    }

    #[test]
    fn hierarchical_matches_host_solution() {
        // The distributed iterate must approximately solve the system.
        let (a, b) = test_system(4, 4, 6);
        let mut multi = MultiFabric::new(4, 4, 2, HostLink::paper_default());
        let dist = WaferBicgstabMulti::build(&mut multi, &a);
        let (x, stats) = dist.solve(&mut multi, &b, 12);
        let rel = recovery::true_rel_residual(&a, &x, &b);
        assert!(rel < 0.15, "true relative residual {rel} (residuals {:?})", stats.residuals);
        assert!(stats.residuals.last().unwrap() < &0.2);
    }

    #[test]
    fn k1_runs_through_the_multi_driver() {
        // One wafer: no seams, no halo phases, host combine degenerates to
        // a copy — the driver must still work (uniform bench code path).
        let (a, b) = test_system(4, 3, 6);
        let mut multi = MultiFabric::new(4, 3, 1, HostLink::paper_default());
        let dist = WaferBicgstabMulti::build(&mut multi, &a);
        let (_, stats) = dist.solve(&mut multi, &b, 3);
        assert_eq!(stats.iterations.len(), 3);
        assert_eq!(stats.iterations[0].halo, 0, "k=1 has no seams");
        assert!(stats.residuals[2] < stats.residuals[0]);
    }

    #[test]
    fn overlapped_interior_program_is_bit_identical_to_serial_at_k1() {
        // A seamless ensemble must not pay for the overlap machinery: the
        // two schedules build byte-identical programs, so the solves agree
        // bit for bit.
        let (a, b) = test_system(4, 3, 6);
        let mut m1 = MultiFabric::new(4, 3, 1, HostLink::paper_default());
        let s1 = WaferBicgstabMulti::build_serial(&mut m1, &a);
        let (x1, st1) = s1.solve(&mut m1, &b, 4);
        let mut m2 = MultiFabric::new(4, 3, 1, HostLink::paper_default());
        let s2 = WaferBicgstabMulti::build(&mut m2, &a);
        let (x2, st2) = s2.solve(&mut m2, &b, 4);
        assert_eq!(st1.residuals, st2.residuals, "residual trajectory diverged");
        assert_eq!(
            x1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            x2.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "iterate bits diverged"
        );
    }

    #[test]
    fn overlapped_two_wafer_solve_tracks_serial_schedule() {
        // Same algorithm, same arithmetic, different halo-fold interleave:
        // the overlapped schedule must stay numerically on the serial
        // trajectory while accounting some halo time as hidden.
        let (a, b) = test_system(6, 4, 8);
        let iters = 5;
        let mut ms = MultiFabric::new(6, 4, 2, HostLink::paper_default());
        let ss = WaferBicgstabMulti::build_serial(&mut ms, &a);
        let (_, sts) = ss.solve(&mut ms, &b, iters);
        let mut mo = MultiFabric::new(6, 4, 2, HostLink::paper_default());
        let so = WaferBicgstabMulti::build(&mut mo, &a);
        let (_, sto) = so.solve(&mut mo, &b, iters);
        assert_eq!(sts.residuals.len(), sto.residuals.len());
        for (i, (got, want)) in sto.residuals.iter().zip(&sts.residuals).enumerate() {
            let close = (got - want).abs() < 5e-4 || got / want < 5.0 && want / got < 5.0;
            assert!(close, "iteration {i}: overlapped {got} vs serial {want}");
        }
        let cs = &sts.iterations[0];
        let co = &sto.iterations[0];
        assert_eq!(cs.halo_hidden, 0, "serial schedule hides nothing");
        assert!(co.halo_hidden > 0, "overlap must hide some wire time");
        assert!(
            co.halo < cs.halo,
            "overlap must expose less halo time than serial ({} vs {})",
            co.halo,
            cs.halo
        );
    }

    #[test]
    fn fused_solver_tracks_classic_trajectory_and_solution() {
        let (a, b) = test_system(6, 4, 8);
        let iters = 6;
        let mut mc = MultiFabric::new(6, 4, 2, HostLink::paper_default());
        let sc = WaferBicgstabMulti::build(&mut mc, &a);
        let (_, stc) = sc.solve(&mut mc, &b, iters);
        let mut mf = MultiFabric::new(6, 4, 2, HostLink::paper_default());
        let sf = WaferBicgstabMulti::build_fused(&mut mf, &a);
        let (xf, stf) = sf.solve(&mut mf, &b, iters);
        assert_eq!(stf.residuals.len(), stc.residuals.len());
        for (i, (got, want)) in stf.residuals.iter().zip(&stc.residuals).enumerate() {
            // Rearranged recurrences in fp16/fp32: same trajectory to a
            // modest ratio with an absolute floor.
            let close = (got - want).abs() < 5e-4 || got / want < 5.0 && want / got < 5.0;
            assert!(close, "iteration {i}: fused {got} vs classic {want}");
        }
        // Never a silent wrong answer: the converged iterate must satisfy
        // the system in f64.
        let rel = recovery::true_rel_residual(&a, &xf, &b);
        assert!(rel < 0.15, "fused true relative residual {rel} ({:?})", stf.residuals);
        // One host round-trip per iteration: the fused host time must be
        // well below the classic three-round-trip budget.
        let cf = &stf.iterations[0];
        let cc = &stc.iterations[0];
        assert!(
            cf.host_allreduce < cc.host_allreduce,
            "fused host reduction time {} must undercut classic {}",
            cf.host_allreduce,
            cc.host_allreduce
        );
        assert_eq!(cf.compute.scalar, 0, "fused iterations have no scalar phase");
    }

    #[test]
    fn fused_solver_runs_at_k1() {
        // The weak-scaling baseline: the fused driver on one wafer (no
        // seams, chain reduce only).
        let (a, b) = test_system(4, 4, 6);
        let mut multi = MultiFabric::new(4, 4, 1, HostLink::paper_default());
        let dist = WaferBicgstabMulti::build_fused(&mut multi, &a);
        let (x, stats) = dist.solve(&mut multi, &b, 8);
        assert_eq!(stats.iterations[0].halo, 0, "k=1 has no seams");
        assert_eq!(stats.iterations[0].halo_hidden, 0);
        let rel = recovery::true_rel_residual(&a, &x, &b);
        assert!(rel < 0.2, "true relative residual {rel} ({:?})", stats.residuals);
    }

    #[test]
    fn traced_run_records_halo_and_host_allreduce_phases() {
        use wse_arch::trace::TraceConfig;
        use wse_trace::PhaseReport;
        let (a, b) = test_system(6, 4, 6);
        let mut multi = MultiFabric::new(6, 4, 2, HostLink::paper_default());
        let dist = WaferBicgstabMulti::build_serial(&mut multi, &a);
        dist.load_rhs(&mut multi, &b);
        multi.shard_mut(0).arm_trace(TraceConfig::default());
        dist.iterate(&mut multi);
        let trace = multi.shard_mut(0).take_trace().expect("trace was armed");
        let report = PhaseReport::from_trace(&trace);
        assert!(report.spans("halo") > 0, "halo phase must be traced");
        assert!(report.spans("host_allreduce") > 0, "host_allreduce phase must be traced");
        assert!(report.cycles("spmv") > 0);
    }

    #[test]
    fn traced_overlapped_run_attributes_halo_cycles() {
        use wse_arch::trace::TraceConfig;
        use wse_trace::PhaseReport;
        let (a, b) = test_system(6, 4, 6);
        let mut multi = MultiFabric::new(6, 4, 2, HostLink::paper_default());
        let dist = WaferBicgstabMulti::build(&mut multi, &a);
        dist.load_rhs(&mut multi, &b);
        multi.shard_mut(0).arm_trace(TraceConfig::default());
        let c = dist.iterate(&mut multi);
        let trace = multi.shard_mut(0).take_trace().expect("trace was armed");
        let report = PhaseReport::from_trace(&trace);
        // The merged window replaces the dedicated halo phase...
        assert!(report.spans("spmv+halo") > 0, "merged windows must be traced");
        assert_eq!(report.spans("halo"), 0, "no blocking halo phase may remain");
        // ...and its halo share is attributed as overlap and/or exposure,
        // consistent with the iteration's cycle accounting.
        let attributed = report.cycles("halo_overlap") + report.cycles("halo_exposed");
        assert!(attributed > 0, "halo cycles must be attributed inside the window");
        assert_eq!(c.halo_hidden, report.cycles("halo_overlap"), "hidden cycles match the spans");
        assert_eq!(c.halo, report.cycles("halo_exposed"), "exposed cycles match the spans");
        assert!(c.compute.spmv > 0);
    }

    #[test]
    fn rollback_recovers_from_a_stall_inside_an_overlap_window() {
        use wse_arch::fault::{FaultKind, FaultPlan};

        // A seam that goes dark *while a merged spmv+halo window is in
        // flight* must trip the stall watchdog mid-overlap and roll the
        // fused ensemble back to the last checkpoint — the checkpoint
        // machinery may only run at quiescent iteration boundaries, so a
        // window torn down halfway must replay cleanly.
        let (a, b) = test_system(6, 4, 8);
        let iters = 6;
        let pol = RecoveryPolicy {
            checkpoint_every: 2,
            max_retries: 5,
            verify_rel: 0.1,
            tripwire: recovery::ResidualTripwire { converged: 2e-2, diverged: 1e6 },
            label: String::new(),
        };

        // Fault-free fused baseline fixes the horizon (calibration plus a
        // few committed iterations), so the stall can be aimed at the
        // middle of the solve — deep inside the windows, which dominate
        // every iteration's cycles.
        let mut base = MultiFabric::new(6, 4, 2, HostLink::paper_default());
        let solver = WaferBicgstabMulti::build_fused(&mut base, &a);
        let (_, _, log0) = solver.solve_with_recovery(&mut base, &a, &b, iters, &pol);
        assert_eq!(log0.outcome, recovery::RecoveryOutcome::Converged, "baseline must converge");
        let horizon = base.cycle();

        let mut multi = MultiFabric::new(6, 4, 2, HostLink::paper_default());
        let solver = WaferBicgstabMulti::build_fused(&mut multi, &a);
        // Dark for two watchdog windows: the first replay may hit the
        // still-dark seam and retry again, the next one must get through.
        multi.arm_faults(
            &FaultPlan::new().with(horizon / 2, FaultKind::HostLinkStall { seam: 0, cycles: 4096 }),
        );
        let (x, _, log) = solver.solve_with_recovery(&mut multi, &a, &b, iters, &pol);
        assert_eq!(
            log.outcome,
            recovery::RecoveryOutcome::Converged,
            "recovery must outlast a mid-window seam stall (events: {:?})",
            log.events
        );
        assert!(log.rollbacks >= 1, "a dark seam must trip the watchdog and roll back");
        let rel = recovery::true_rel_residual(&a, &x, &b);
        assert!(rel < 0.1, "recovered iterate must still solve the system ({rel})");
    }
}
