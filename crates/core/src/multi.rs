//! Distributed BiCGStab across a multi-wafer ensemble (§VIII.B).
//!
//! The global `nx × ny × nz` mesh is sharded along X into `k` slabs, one
//! per wafer ([`wse_multi::MultiFabric`]). Each wafer runs the same
//! per-tile programs as the single-wafer solver ([`crate::bicgstab`])
//! over its slab, with two additions at the wafer seams:
//!
//! * **Halo exchange** — a seam tile's ±x mesh neighbor lives on another
//!   wafer, so no broadcast stream arrives for it. Before each SpMV the
//!   driver runs an explicit halo phase: every seam tile streams its
//!   iterate column across the seam on a dedicated pair of virtual
//!   channels, through the declared edge ports and the host interconnect
//!   ([`wse_multi::HostLink`]), into a halo buffer the SpMV folds in with
//!   one extra fused multiply-add ([`crate::spmv3d::HaloBuffers`]). Two
//!   halo phases per iteration (one per SpMV source vector), each moving
//!   one fp16 plane per seam per direction — exactly the traffic
//!   `perf-model::multiwafer` prices.
//! * **Hierarchical AllReduce** — each wafer reduces its scalar on the
//!   on-wafer fp32 tree ([`crate::allreduce::AllReduceSplit`]); the host
//!   reads the `k` partial sums, combines them in fp32 (deterministic
//!   wafer order), charges `2·⌈log₂ k⌉` link latencies for the host-level
//!   tree, writes the global sum back, and triggers the on-wafer
//!   broadcast.
//!
//! Compute phases run **concurrently, one thread per wafer**
//! ([`MultiFabric::run_each`]); the ensemble synchronizes only at the
//! halo and AllReduce boundaries ([`MultiFabric::run_linked`] /
//! host combine), mirroring how a real host runtime would drive k
//! machines. The halo and host-combine windows are bracketed as trace
//! phases `"halo"` and `"host_allreduce"` for `wse-trace`.
//!
//! This hierarchical mode is numerically equivalent — but not bit-equal —
//! to the single-wafer solve (reduction and halo summation orders
//! differ). The bit-exact cross-validation path is *transparent* mode:
//! build the ordinary [`WaferBicgstab`] on one fused fabric, split it
//! with [`MultiFabric::split_x`], and drive it through the
//! [`crate::exec::WaferExec`] impl for `MultiFabric` — under
//! [`wse_multi::HostLink::ideal`] that reproduces the single-wafer
//! residual trajectory bit for bit.

use crate::allreduce::AllReduceSplit;
use crate::bicgstab::{
    alloc_solver_vecs, build_scalar_tasks, regs, IterCycles, ScalarTasks, TileVecs,
};
use crate::exec::WaferExec;
use crate::recovery::{
    self, run_with_recovery, RecoveryLog, RecoveryOutcome, RecoveryPolicy, ResidualTripwire,
};
use crate::routing::configure_spmv_routes;
use crate::spmv3d::{
    build_spmv_tile_halo, load_coefficients, tile_coefficients, HaloBuffers, SpmvLayout, SpmvTasks,
};
use crate::WaferBicgstab;
use stencil::decomp::Mapping3D;
use stencil::dia::DiaMatrix;
use stencil::precond::has_unit_diagonal;
use wse_arch::dsr::mk;
use wse_arch::fabric::StallReport;
use wse_arch::instr::{Op, Stmt, Task, TensorInstr};
use wse_arch::types::{Color, Dtype, Port, TaskId};
use wse_float::F16;
use wse_multi::MultiFabric;

/// Virtual channel carrying halo planes eastward across wafer seams.
/// Clear of the SpMV tessellation (0..5) and both AllReduce instances
/// (10..22).
pub const HALO_EAST: Color = 22;
/// Virtual channel carrying halo planes westward across wafer seams.
pub const HALO_WEST: Color = 23;

/// Per-tile halo-exchange tasks (seam tiles only): one per SpMV source
/// vector.
#[derive(Copy, Clone, Debug)]
struct HaloTasks {
    /// Exchanges the live part of `p` (before `s := A p`).
    p: TaskId,
    /// Exchanges the live part of `q` (before `y := A q`).
    q: TaskId,
}

/// One tile's full program in the distributed solver.
struct TileProgram {
    vecs: TileVecs,
    spmv_ps: SpmvTasks,
    spmv_qy: SpmvTasks,
    scalar: ScalarTasks,
    halo: Option<HaloTasks>,
}

/// Cycle counts of one distributed iteration.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct MultiIterCycles {
    /// The wafer-local phases (SpMVs, dots, on-wafer reduce+broadcast,
    /// updates, scalar arithmetic).
    pub compute: IterCycles,
    /// The two seam halo exchanges.
    pub halo: u64,
    /// The host-level AllReduce hops (combine latency + broadcast).
    pub host_allreduce: u64,
}

impl MultiIterCycles {
    /// Total ensemble cycles of the iteration.
    pub fn total(&self) -> u64 {
        self.compute.total() + self.halo + self.host_allreduce
    }
}

/// Statistics of a distributed solve.
#[derive(Clone, Debug, Default)]
pub struct MultiSolveStats {
    /// Per-iteration cycle breakdowns.
    pub iterations: Vec<MultiIterCycles>,
    /// Relative residual ‖r‖/‖b‖ per iteration (from the on-wafer dot).
    pub residuals: Vec<f64>,
}

impl MultiSolveStats {
    /// Mean cycles per iteration.
    pub fn mean_cycles(&self) -> f64 {
        if self.iterations.is_empty() {
            return 0.0;
        }
        self.iterations.iter().map(|i| i.total() as f64).sum::<f64>() / self.iterations.len() as f64
    }
}

/// The distributed BiCGStab driver: per-wafer subdomain programs plus the
/// host-side orchestration of halo exchanges and the hierarchical
/// AllReduce.
pub struct WaferBicgstabMulti {
    mapping: Mapping3D,
    tiles: Vec<TileProgram>,
    /// Per-wafer split reduction (local coordinates).
    reductions: Vec<AllReduceSplit>,
    /// Modeled cycles of the host-level combine tree: `2·⌈log₂ k⌉` one-way
    /// link latencies (up and down).
    host_hop_cycles: u64,
}

impl WaferBicgstabMulti {
    /// Distributes the system matrix across the ensemble's slabs and
    /// builds every wafer's subdomain program. `multi` must be freshly
    /// created by [`MultiFabric::new`] (this builder declares the seam
    /// channels and pairs them).
    ///
    /// # Panics
    /// Panics if the matrix is not a unit-diagonal 7-point operator, the
    /// mesh does not exactly fill the ensemble grid, any slab is narrower
    /// than 2 tiles (the on-wafer AllReduce needs a 2×2 region), or a
    /// tile runs out of SRAM.
    pub fn build(multi: &mut MultiFabric, a: &DiaMatrix<F16>) -> WaferBicgstabMulti {
        assert!(has_unit_diagonal(a), "matrix must be diagonally preconditioned");
        assert_eq!(a.offsets().len(), 7, "7-point stencil required");
        let mesh = a.mesh();
        let mapping = Mapping3D::new(mesh, multi.global_width(), multi.height());
        assert_eq!(
            (mapping.fabric_w, mapping.fabric_h),
            (multi.global_width(), multi.height()),
            "mesh X×Y must exactly fill the ensemble grid (slab bookkeeping)"
        );
        let (gw, h) = (mapping.fabric_w, mapping.fabric_h);
        let z = mapping.z as u32;
        let k = multi.k();

        // Per-wafer fabric programs: tessellation routes + split AllReduce.
        let mut reductions = Vec::with_capacity(k);
        for m in 0..k {
            let lw = multi.slab(m).len();
            assert!(lw >= 2 && h >= 2, "each wafer slab needs at least 2×2 tiles, got {lw}×{h}");
            let shard = multi.shard_mut(m);
            configure_spmv_routes(shard, lw, h);
            reductions.push(AllReduceSplit::build(
                shard,
                lw,
                h,
                regs::AR_IN,
                regs::AR_OUT,
                regs::AR_ACC,
            ));
            // Seam halo routes and edge declarations.
            if m + 1 < k {
                for y in 0..h {
                    shard.open_edge(lw - 1, y, Port::East, HALO_EAST);
                    shard.open_edge(lw - 1, y, Port::East, HALO_WEST);
                    shard.set_route(lw - 1, y, Port::Ramp, HALO_EAST, &[Port::East]);
                    shard.set_route(lw - 1, y, Port::East, HALO_WEST, &[Port::Ramp]);
                }
            }
            if m > 0 {
                for y in 0..h {
                    shard.open_edge(0, y, Port::West, HALO_WEST);
                    shard.open_edge(0, y, Port::West, HALO_EAST);
                    shard.set_route(0, y, Port::Ramp, HALO_WEST, &[Port::West]);
                    shard.set_route(0, y, Port::West, HALO_EAST, &[Port::Ramp]);
                }
            }
        }

        // Per-tile programs, addressed by global coordinates.
        let mut tiles = Vec::with_capacity(gw * h);
        for y in 0..h {
            for gx in 0..gw {
                let (m, lx) = multi.to_local(gx);
                let lw = multi.slab(m).len();
                let east_seam = lx == lw - 1 && gx + 1 < gw;
                let west_seam = lx == 0 && gx > 0;
                let tile = multi.shard_mut(m).tile_mut(lx, y);

                let (diag, vecs) = alloc_solver_vecs(tile, z);
                let coeffs = tile_coefficients(a, gx, y);
                let lay_ps = SpmvLayout { z, diag, vpad: vecs.p_pad, u: vecs.s };
                let lay_qy = SpmvLayout { z, diag, vpad: vecs.q_pad, u: vecs.y };
                load_coefficients(tile, &lay_ps, &coeffs);
                tile.mem.write_f16(vecs.p_pad, F16::ZERO);
                tile.mem.write_f16(vecs.p_pad + 2 * (z + 1), F16::ZERO);
                tile.mem.write_f16(vecs.q_pad, F16::ZERO);
                tile.mem.write_f16(vecs.q_pad + 2 * (z + 1), F16::ZERO);

                let halo_bufs = HaloBuffers {
                    xp: east_seam
                        .then(|| tile.mem.alloc_vec(z, Dtype::F16).expect("SRAM: halo xp")),
                    xm: west_seam
                        .then(|| tile.mem.alloc_vec(z, Dtype::F16).expect("SRAM: halo xm")),
                };
                let spmv_ps = build_spmv_tile_halo(tile, lx, y, lw, h, lay_ps, halo_bufs, None);
                let spmv_qy = build_spmv_tile_halo(tile, lx, y, lw, h, lay_qy, halo_bufs, None);
                let scalar = build_scalar_tasks(&mut tile.core, &vecs, z);

                let halo = if east_seam || west_seam {
                    // A slab is ≥ 2 wide, so a tile sits on at most one seam.
                    let (send, recv_color, buf) = if east_seam {
                        (HALO_EAST, HALO_WEST, halo_bufs.xp.unwrap())
                    } else {
                        (HALO_WEST, HALO_EAST, halo_bufs.xm.unwrap())
                    };
                    let p =
                        build_halo_task(tile, "halo-p", vecs.p_pad + 2, buf, send, recv_color, z);
                    let q =
                        build_halo_task(tile, "halo-q", vecs.q_pad + 2, buf, send, recv_color, z);
                    Some(HaloTasks { p, q })
                } else {
                    None
                };
                tiles.push(TileProgram { vecs, spmv_ps, spmv_qy, scalar, halo });
            }
        }
        multi.pair_seams();
        for m in 0..k {
            crate::debug_lint(multi.shard(m));
        }

        let levels = (k as f64).log2().ceil() as u64;
        let host_hop_cycles = 2 * levels * multi.link().latency_cycles;
        WaferBicgstabMulti { mapping, tiles, reductions, host_hop_cycles }
    }

    /// The global mesh→grid mapping.
    pub fn mapping(&self) -> Mapping3D {
        self.mapping
    }

    fn idx(&self, x: usize, y: usize) -> usize {
        y * self.mapping.fabric_w + x
    }

    /// Activates one wafer-local phase task on every tile and runs all
    /// wafers **independently to quiescence**, one thread per wafer (no
    /// seam traffic exists in these phases). Returns max per-wafer cycles.
    fn try_compute_phase(
        &self,
        multi: &mut MultiFabric,
        name: &'static str,
        pick: impl Fn(&TileProgram) -> TaskId,
    ) -> Result<u64, Box<StallReport>> {
        let m = self.mapping;
        for y in 0..m.fabric_h {
            for x in 0..m.fabric_w {
                multi.activate(x, y, pick(&self.tiles[self.idx(x, y)]));
            }
        }
        let budget = 200 * m.z as u64 + 200 * (m.fabric_w + m.fabric_h) as u64 + 50_000;
        multi.phase_begin(name);
        let r = multi.run_each(budget, recovery::STALL_WINDOW);
        multi.phase_end();
        r
    }

    /// One seam halo exchange: every seam tile streams its column across
    /// the host link while blocking on the opposite stream into its halo
    /// buffer. Runs the ensemble in linked lockstep (traffic crosses
    /// seams), bracketed as trace phase `"halo"`.
    fn try_halo_phase(
        &self,
        multi: &mut MultiFabric,
        pick: impl Fn(&HaloTasks) -> TaskId,
    ) -> Result<u64, Box<StallReport>> {
        let m = self.mapping;
        let mut any = false;
        for y in 0..m.fabric_h {
            for x in 0..m.fabric_w {
                if let Some(halo) = &self.tiles[self.idx(x, y)].halo {
                    multi.activate(x, y, pick(halo));
                    any = true;
                }
            }
        }
        if !any {
            return Ok(0); // k = 1: no seams, no phase
        }
        let budget =
            16 * m.z as u64 + 2 * multi.link().latency_cycles + 200 * m.fabric_h as u64 + 50_000;
        multi.phase_begin("halo");
        let r = multi.run_linked(budget, recovery::STALL_WINDOW);
        multi.phase_end();
        if r.is_err() {
            // The exchange wedged (link down, or a stall outlasting the
            // watchdog): stamp the timeline so the recovery engine's
            // re-run of this halo is visible in traces.
            multi.phase_marker("halo_retry");
        }
        r
    }

    /// The hierarchical AllReduce: on-wafer reduce trees (concurrent, per
    /// wafer), host-level fp32 combine of the `k` root partial sums (in
    /// wafer order, charged `2⌈log₂ k⌉` link latencies), then the on-wafer
    /// broadcasts. Returns `(on_wafer_cycles, host_cycles)`.
    fn try_allreduce(&self, multi: &mut MultiFabric) -> Result<(u64, u64), Box<StallReport>> {
        let budget = 100 * (self.mapping.fabric_w + self.mapping.fabric_h) as u64 + 50_000;
        for (m, red) in self.reductions.iter().enumerate() {
            let (lw, h) = red.dims();
            let shard = multi.shard_mut(m);
            for y in 0..h {
                for x in 0..lw {
                    shard.tile_mut(x, y).core.activate(red.reduce_task(x, y));
                }
            }
        }
        multi.phase_begin("allreduce");
        let on_wafer = multi.run_each(budget, recovery::STALL_WINDOW);
        multi.phase_end();
        let on_wafer = on_wafer?;

        multi.phase_begin("host_allreduce");
        // Host-side fp32 combine, deterministic wafer order.
        let mut sum = 0.0f32;
        for (m, red) in self.reductions.iter().enumerate() {
            let (rx, ry) = red.root();
            sum += multi.shard(m).tile(rx, ry).core.regs[red.r_acc];
        }
        for (m, red) in self.reductions.iter().enumerate() {
            let (rx, ry) = red.root();
            multi.shard_mut(m).tile_mut(rx, ry).core.regs[red.r_acc] = sum;
        }
        if self.host_hop_cycles > 0 {
            multi.advance_idle(self.host_hop_cycles);
        }
        for (m, red) in self.reductions.iter().enumerate() {
            let (lw, h) = red.dims();
            let shard = multi.shard_mut(m);
            for y in 0..h {
                for x in 0..lw {
                    shard.tile_mut(x, y).core.activate(red.bcast_task(x, y));
                }
            }
        }
        let bcast = multi.run_each(budget, recovery::STALL_WINDOW);
        multi.phase_end();
        // The broadcast half runs on-wafer; only the hop latency is host time.
        Ok((on_wafer + bcast?, self.host_hop_cycles))
    }

    /// Loads the right-hand side and zeroes the iterate (`r = r̂₀ = p = b`,
    /// `x = 0`), then computes ρ₀ = (r̂₀, r) hierarchically.
    ///
    /// # Panics
    /// Panics on a fabric stall.
    pub fn load_rhs(&self, multi: &mut MultiFabric, b: &[F16]) {
        self.try_load_rhs(multi, b).unwrap_or_else(|e| panic!("bicgstab load stalled: {e}"))
    }

    /// Fallible [`WaferBicgstabMulti::load_rhs`].
    ///
    /// # Errors
    /// Returns the watchdog's [`StallReport`] on a stall.
    pub fn try_load_rhs(&self, multi: &mut MultiFabric, b: &[F16]) -> Result<(), Box<StallReport>> {
        let m = self.mapping;
        assert_eq!(b.len(), m.cores() * m.z, "rhs length mismatch");
        for y in 0..m.fabric_h {
            for x in 0..m.fabric_w {
                let vecs = &self.tiles[self.idx(x, y)].vecs;
                let rows = m.core_rows(x, y);
                let local = &b[rows];
                multi.store_f16(x, y, vecs.r, local);
                multi.store_f16(x, y, vecs.r0, local);
                multi.store_f16(x, y, vecs.p_pad + 2, local);
                multi.store_f16(x, y, vecs.x, &vec![F16::ZERO; m.z]);
                multi.set_reg(x, y, regs::EPS, 1e-30);
            }
        }
        self.try_compute_phase(multi, "dot", |t| t.scalar.dot_rho)?;
        self.try_allreduce(multi)?;
        self.try_compute_phase(multi, "scalar", |t| t.scalar.init_rho)?;
        Ok(())
    }

    /// Runs one distributed BiCGStab iteration.
    ///
    /// # Panics
    /// Panics on a fabric stall.
    pub fn iterate(&self, multi: &mut MultiFabric) -> MultiIterCycles {
        self.try_iterate(multi).unwrap_or_else(|e| panic!("bicgstab iteration stalled: {e}"))
    }

    /// Fallible [`WaferBicgstabMulti::iterate`]. The sequence is the
    /// single-wafer iteration with a halo exchange before each SpMV and
    /// every AllReduce replaced by the hierarchical form.
    ///
    /// # Errors
    /// Returns the watchdog's [`StallReport`] on a stall.
    pub fn try_iterate(
        &self,
        multi: &mut MultiFabric,
    ) -> Result<MultiIterCycles, Box<StallReport>> {
        let mut c = MultiIterCycles::default();
        let ar = |c: &mut MultiIterCycles, multi: &mut MultiFabric| {
            self.try_allreduce(multi).map(|(on_wafer, host)| {
                c.compute.allreduce += on_wafer;
                c.host_allreduce += host;
            })
        };
        // s := A p (seam halo of p first)
        c.halo += self.try_halo_phase(multi, |h| h.p)?;
        c.compute.spmv += self.try_compute_phase(multi, "spmv", |t| t.spmv_ps.start)?;
        // α := ρ / (r̂₀, s)
        c.compute.dot += self.try_compute_phase(multi, "dot", |t| t.scalar.dot_r0s)?;
        ar(&mut c, multi)?;
        c.compute.scalar += self.try_compute_phase(multi, "scalar", |t| t.scalar.post_r0s)?;
        // q := r − α s
        c.compute.update += self.try_compute_phase(multi, "update", |t| t.scalar.upd_q)?;
        // y := A q (seam halo of q first)
        c.halo += self.try_halo_phase(multi, |h| h.q)?;
        c.compute.spmv += self.try_compute_phase(multi, "spmv", |t| t.spmv_qy.start)?;
        // ω := (q,y) / (y,y)
        c.compute.dot += self.try_compute_phase(multi, "dot", |t| t.scalar.dot_qy)?;
        ar(&mut c, multi)?;
        c.compute.scalar += self.try_compute_phase(multi, "scalar", |t| t.scalar.post_qy)?;
        c.compute.dot += self.try_compute_phase(multi, "dot", |t| t.scalar.dot_yy)?;
        ar(&mut c, multi)?;
        c.compute.scalar += self.try_compute_phase(multi, "scalar", |t| t.scalar.post_yy)?;
        // x := x + α p + ω q
        c.compute.update += self.try_compute_phase(multi, "update", |t| t.scalar.upd_x)?;
        // r := q − ω y
        c.compute.update += self.try_compute_phase(multi, "update", |t| t.scalar.upd_r)?;
        // β and ρ roll-over
        c.compute.dot += self.try_compute_phase(multi, "dot", |t| t.scalar.dot_rho)?;
        ar(&mut c, multi)?;
        c.compute.scalar += self.try_compute_phase(multi, "scalar", |t| t.scalar.post_rho)?;
        // p := r + β (p − ω s)
        c.compute.update += self.try_compute_phase(multi, "update", |t| t.scalar.upd_p1)?;
        c.compute.update += self.try_compute_phase(multi, "update", |t| t.scalar.upd_p2)?;
        Ok(c)
    }

    /// Computes ‖r‖ on the ensemble (hierarchical reduction).
    ///
    /// # Panics
    /// Panics on a fabric stall.
    pub fn residual_norm(&self, multi: &mut MultiFabric) -> f32 {
        self.try_residual_norm(multi)
            .unwrap_or_else(|e| panic!("bicgstab residual phase stalled: {e}"))
    }

    /// Fallible [`WaferBicgstabMulti::residual_norm`].
    ///
    /// # Errors
    /// Returns the watchdog's [`StallReport`] on a stall.
    pub fn try_residual_norm(&self, multi: &mut MultiFabric) -> Result<f32, Box<StallReport>> {
        self.try_compute_phase(multi, "dot", |t| t.scalar.dot_rr)?;
        self.try_allreduce(multi)?;
        self.try_compute_phase(multi, "scalar", |t| t.scalar.post_rr)?;
        Ok(multi.reg(0, 0, regs::RR).max(0.0).sqrt())
    }

    /// Reads the iterate back from tile memories (global mesh order).
    pub fn read_x(&self, multi: &MultiFabric) -> Vec<F16> {
        let m = self.mapping;
        let mut out = vec![F16::ZERO; m.cores() * m.z];
        for y in 0..m.fabric_h {
            for x in 0..m.fabric_w {
                let vecs = &self.tiles[self.idx(x, y)].vecs;
                let rows = m.core_rows(x, y);
                out[rows].copy_from_slice(&multi.load_f16(x, y, vecs.x, m.z));
            }
        }
        out
    }

    /// Loads `b`, runs up to `iters` iterations (with the same host-side
    /// convergence tripwire as the single-wafer solver), and returns the
    /// final iterate plus per-iteration statistics.
    ///
    /// # Panics
    /// Panics on a fabric stall.
    pub fn solve(
        &self,
        multi: &mut MultiFabric,
        b: &[F16],
        iters: usize,
    ) -> (Vec<F16>, MultiSolveStats) {
        let norm_b = {
            let s: f64 = b.iter().map(|v| v.to_f64() * v.to_f64()).sum();
            s.sqrt()
        };
        if norm_b == 0.0 {
            return (vec![F16::ZERO; b.len()], MultiSolveStats::default());
        }
        self.load_rhs(multi, b);
        let mut stats = MultiSolveStats::default();
        let tripwire = ResidualTripwire::default();
        for _ in 0..iters {
            let c = self.iterate(multi);
            let rn = self.residual_norm(multi) as f64;
            stats.iterations.push(c);
            let rel = rn / norm_b;
            stats.residuals.push(rel);
            if tripwire.check(rel).stops() {
                break;
            }
        }
        (self.read_x(multi), stats)
    }

    /// Like [`WaferBicgstabMulti::solve`], but runs under the
    /// checkpoint/rollback recovery engine so the ensemble solve survives
    /// injected faults — including host-link faults armed on the
    /// [`MultiFabric`]: a dropped or corrupted seam frame is usually
    /// masked by the reliable transport's retransmission, a dead link or
    /// a dark stall trips the watchdog and rolls the whole ensemble back
    /// to the last [`crate::recovery::EnsembleCheckpoint`], and
    /// `Converged` claims are verified against `a`'s f64 true residual
    /// before being believed. Any [`wse_multi::LinkDown`] declarations
    /// made along the way are appended to the returned log's event trail,
    /// so exhausted links are reported structurally, never silently.
    pub fn solve_with_recovery(
        &self,
        multi: &mut MultiFabric,
        a: &DiaMatrix<F16>,
        b: &[F16],
        iters: usize,
        policy: &RecoveryPolicy,
    ) -> (Vec<F16>, MultiSolveStats, RecoveryLog) {
        let norm_b = {
            let s: f64 = b.iter().map(|v| v.to_f64() * v.to_f64()).sum();
            s.sqrt()
        };
        let mut stats = MultiSolveStats::default();
        if norm_b == 0.0 {
            let log = RecoveryLog { outcome: RecoveryOutcome::Converged, ..RecoveryLog::default() };
            return (vec![F16::ZERO; b.len()], stats, log);
        }
        let mut log = run_with_recovery(
            multi,
            iters,
            policy,
            |m| self.try_load_rhs(m, b),
            |m, i| {
                // Re-entered with a rolled-back index after recovery: drop
                // the records of the discarded iterations.
                stats.iterations.truncate(i);
                stats.residuals.truncate(i);
                let c = self.try_iterate(m)?;
                let rel = self.try_residual_norm(m)? as f64 / norm_b;
                stats.iterations.push(c);
                stats.residuals.push(rel);
                Ok(rel)
            },
            |m| recovery::true_rel_residual(a, &self.read_x(m), b),
        );
        for down in multi.link_down_records() {
            log.events.push(down.describe());
        }
        stats.iterations.truncate(log.iterations);
        stats.residuals.truncate(log.iterations);
        (self.read_x(multi), stats, log)
    }
}

/// Builds one seam tile's halo-exchange task: launch the outbound column
/// on a background thread (stream `z` fp16 words from `src` onto the
/// `send` channel toward the seam), then block the main thread receiving
/// the inbound column from the `recv` channel into the halo buffer. Send
/// and receive overlap, so the two sides of a seam cannot deadlock on
/// each other's backpressure.
fn build_halo_task(
    tile: &mut wse_arch::Tile,
    name: &'static str,
    src: u32,
    buf: u32,
    send: Color,
    recv: Color,
    z: u32,
) -> TaskId {
    let core = &mut tile.core;
    let d_src = core.add_dsr(mk::tensor16(src, z));
    let d_buf = core.add_dsr(mk::tensor16(buf, z));
    let d_tx = core.add_dsr(mk::tx16(send, z));
    let d_rx = core.add_dsr(mk::rx16(recv, z));
    let body = vec![
        Stmt::InitDsr { dsr: d_tx, desc: mk::tx16(send, z) },
        Stmt::InitDsr { dsr: d_rx, desc: mk::rx16(recv, z) },
        Stmt::Launch {
            slot: 5,
            instr: TensorInstr { op: Op::Copy, dst: Some(d_tx), a: Some(d_src), b: None },
            on_complete: None,
        },
        Stmt::Exec(TensorInstr { op: Op::Copy, dst: Some(d_buf), a: Some(d_rx), b: None }),
    ];
    let id = core.add_task(Task::new(name, body));
    core.mark_entry(id);
    id
}

/// Convenience for the bit-exact **transparent** mode: builds the
/// single-wafer [`WaferBicgstab`] program on a fused fabric sized for the
/// matrix, splits it into `k` X-slab wafers, and returns the solver with
/// the linked ensemble. Under [`wse_multi::HostLink::ideal`] every phase
/// of the returned pair steps bit-for-bit like the unsplit fabric, so the
/// residual trajectory is *exactly* the single-wafer one.
pub fn build_transparent(
    a: &DiaMatrix<F16>,
    k: usize,
    link: wse_multi::HostLink,
) -> (WaferBicgstab, MultiFabric) {
    let mesh = a.mesh();
    let mut fabric = wse_arch::Fabric::new(mesh.nx, mesh.ny);
    let solver = WaferBicgstab::build(&mut fabric, a);
    let multi = MultiFabric::split_x(&fabric, k, link);
    (solver, multi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil::mesh::Mesh3D;
    use stencil::precond::jacobi_scale;
    use stencil::stencil7::poisson;
    use wse_arch::Fabric;
    use wse_multi::HostLink;

    /// A diagonally preconditioned Poisson system with a deterministic
    /// non-trivial right-hand side.
    fn test_system(nx: usize, ny: usize, nz: usize) -> (DiaMatrix<F16>, Vec<F16>) {
        let mesh = Mesh3D::new(nx, ny, nz);
        let a64 = poisson(mesh);
        let b64: Vec<f64> =
            (0..mesh.len()).map(|i| ((i * 29 % 101) as f64 / 101.0) - 0.4).collect();
        let sys = jacobi_scale(&a64, &b64);
        let a: DiaMatrix<F16> = sys.matrix.convert();
        let b: Vec<F16> = sys.rhs.iter().map(|&v| F16::from_f64(v)).collect();
        (a, b)
    }

    #[test]
    fn transparent_split_matches_single_wafer_bit_for_bit() {
        let (a, b) = test_system(6, 4, 8);
        let iters = 4;

        // Reference: the ordinary single-wafer solve.
        let mut fabric = Fabric::new(6, 4);
        let solver = WaferBicgstab::build(&mut fabric, &a);
        let (x_ref, stats_ref) = solver.solve(&mut fabric, &b, iters);

        // Transparent mode: same program, split across 2 wafers, ideal link.
        let (solver2, mut multi) = build_transparent(&a, 2, HostLink::ideal());
        let (x_split, stats_split) = solver2.solve(&mut multi, &b, iters);

        assert_eq!(stats_ref.residuals, stats_split.residuals, "residual trajectory diverged");
        assert_eq!(
            x_ref.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            x_split.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "iterate bits diverged"
        );
    }

    #[test]
    fn hierarchical_two_wafer_solve_tracks_single_wafer_trajectory() {
        let (a, b) = test_system(6, 4, 8);
        let iters = 5;

        let mut fabric = Fabric::new(6, 4);
        let solver = WaferBicgstab::build(&mut fabric, &a);
        let (_, stats_ref) = solver.solve(&mut fabric, &b, iters);

        let mut multi = MultiFabric::new(6, 4, 2, HostLink::paper_default());
        let dist = WaferBicgstabMulti::build(&mut multi, &a);
        let (_, stats) = dist.solve(&mut multi, &b, iters);

        assert_eq!(stats.residuals.len(), stats_ref.residuals.len());
        for (i, (got, want)) in stats.residuals.iter().zip(&stats_ref.residuals).enumerate() {
            // Same algorithm, different fp16/fp32 summation orders: the
            // trajectories agree to a modest ratio with an absolute floor.
            let close = (got - want).abs() < 5e-4 || got / want < 5.0 && want / got < 5.0;
            assert!(close, "iteration {i}: distributed {got} vs single {want}");
        }
        // Halo and host-AllReduce time was actually accounted.
        let c = &stats.iterations[0];
        assert!(c.halo > 0, "two wafers must exchange halos");
        assert!(c.host_allreduce > 0, "host combine must cost time");
        assert!(c.compute.spmv > 0 && c.compute.allreduce > 0);
    }

    #[test]
    fn hierarchical_matches_host_solution() {
        // The distributed iterate must approximately solve the system.
        let (a, b) = test_system(4, 4, 6);
        let mut multi = MultiFabric::new(4, 4, 2, HostLink::paper_default());
        let dist = WaferBicgstabMulti::build(&mut multi, &a);
        let (x, stats) = dist.solve(&mut multi, &b, 12);
        let rel = recovery::true_rel_residual(&a, &x, &b);
        assert!(rel < 0.15, "true relative residual {rel} (residuals {:?})", stats.residuals);
        assert!(stats.residuals.last().unwrap() < &0.2);
    }

    #[test]
    fn k1_runs_through_the_multi_driver() {
        // One wafer: no seams, no halo phases, host combine degenerates to
        // a copy — the driver must still work (uniform bench code path).
        let (a, b) = test_system(4, 3, 6);
        let mut multi = MultiFabric::new(4, 3, 1, HostLink::paper_default());
        let dist = WaferBicgstabMulti::build(&mut multi, &a);
        let (_, stats) = dist.solve(&mut multi, &b, 3);
        assert_eq!(stats.iterations.len(), 3);
        assert_eq!(stats.iterations[0].halo, 0, "k=1 has no seams");
        assert!(stats.residuals[2] < stats.residuals[0]);
    }

    #[test]
    fn traced_run_records_halo_and_host_allreduce_phases() {
        use wse_arch::trace::TraceConfig;
        use wse_trace::PhaseReport;
        let (a, b) = test_system(6, 4, 6);
        let mut multi = MultiFabric::new(6, 4, 2, HostLink::paper_default());
        let dist = WaferBicgstabMulti::build(&mut multi, &a);
        dist.load_rhs(&mut multi, &b);
        multi.shard_mut(0).arm_trace(TraceConfig::default());
        dist.iterate(&mut multi);
        let trace = multi.shard_mut(0).take_trace().expect("trace was armed");
        let report = PhaseReport::from_trace(&trace);
        assert!(report.spans("halo") > 0, "halo phase must be traced");
        assert!(report.spans("host_allreduce") > 0, "host_allreduce phase must be traced");
        assert!(report.cycles("spmv") > 0);
    }
}
