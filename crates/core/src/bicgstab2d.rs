//! BiCGStab on the **2D block mapping** of §IV.2.
//!
//! The paper sketches the 9-point 2D SpMV and asserts "the efficiency of
//! this approach is approximately the same as for the 3D mapping". This
//! module completes the sketch into a full solver so that claim can be
//! *measured*: the two SpMVs use the output-halo-exchange kernel (sharing
//! one copy of the nine coefficient arrays), the dots run row-wise with the
//! mixed-precision MAC, the AXPY/XPAY updates sweep the block row by row,
//! and the scalar coefficients use the same Fig. 6 AllReduce as the 3D
//! solver.
//!
//! The result vectors `s = A p` and `y = A q` are *not copied out* of the
//! extended output buffers: dot products and updates address their interior
//! rows directly (each interior row `(i+1, 1..=by)` is a contiguous slice).

use crate::allreduce::AllReduce;
use crate::recovery::{
    self, run_with_recovery, RecoveryLog, RecoveryOutcome, RecoveryPolicy, ResidualTripwire,
};
use crate::spmv2d::{Spmv2dLayout, WaferSpmv2d};
use stencil::decomp::Block2D;
use stencil::dia::DiaMatrix;
use stencil::mesh::Mesh2D;
use wse_arch::dsr::mk;
use wse_arch::fabric::StallReport;
use wse_arch::instr::{Op, RegOp, Stmt, Task, TensorInstr};
use wse_arch::types::{Dtype, TaskId};
use wse_arch::{Fabric, Tile};
use wse_float::F16;

use crate::bicgstab::regs;

/// Per-tile vector addresses (all `bx·by` contiguous block arrays except
/// the SpMV sources/outputs, which live in the kernel layouts).
#[derive(Copy, Clone, Debug)]
struct Tile2dVecs {
    /// Residual.
    r: u32,
    /// Shadow residual.
    r0: u32,
    /// Iterate.
    x: u32,
}

#[derive(Clone, Debug)]
struct Tile2dTasks {
    spmv_ps: TaskId,
    spmv_qy: TaskId,
    dot_r0s: TaskId,
    dot_qy: TaskId,
    dot_yy: TaskId,
    dot_rho: TaskId,
    dot_rr: TaskId,
    post_r0s: TaskId,
    post_qy: TaskId,
    post_yy: TaskId,
    post_rho: TaskId,
    init_rho: TaskId,
    post_rr: TaskId,
    upd_q: TaskId,
    upd_x: TaskId,
    upd_r: TaskId,
    upd_p: TaskId,
}

/// The 2D-mapped wafer BiCGStab solver.
///
/// The program occupies the `fabric_w × fabric_h` tile region whose
/// top-left tile sits at `origin` (`(0, 0)` unless built with
/// [`WaferBicgstab2d::build_at`]). The handle is `Clone`: because routing
/// is per-tile state, a built program is translation-invariant, and a
/// region blitted elsewhere is driven through [`WaferBicgstab2d::rebased`]
/// — this is what lets the multi-tenant service compile once on a scratch
/// fabric and place the cached image into any tenant region.
#[derive(Clone)]
pub struct WaferBicgstab2d {
    fabric_w: usize,
    fabric_h: usize,
    origin: (usize, usize),
    block: Block2D,
    lay_p: Vec<Spmv2dLayout>,
    #[allow(dead_code)] // kept for symmetric diagnostics/readback
    lay_q: Vec<Spmv2dLayout>,
    vecs: Vec<Tile2dVecs>,
    tasks: Vec<Tile2dTasks>,
    allreduce: AllReduce,
}

/// Emits `bx` row-wise statements applying `f(row_dst, row_a, row_b)` over
/// contiguous row slices of length `by`.
fn rowwise(
    tile: &mut Tile,
    bx: usize,
    by: usize,
    mut row_addrs: impl FnMut(usize) -> (u32, u32, Option<u32>),
    op: Op,
) -> Vec<Stmt> {
    let mut body = Vec::with_capacity(bx);
    for i in 0..bx {
        let (dst, a, b) = row_addrs(i);
        let dd = tile.core.add_dsr(mk::tensor16(dst, by as u32));
        let da = tile.core.add_dsr(mk::tensor16(a, by as u32));
        let db = b.map(|addr| tile.core.add_dsr(mk::tensor16(addr, by as u32)));
        body.push(Stmt::Exec(TensorInstr { op, dst: Some(dd), a: Some(da), b: db }));
    }
    body
}

/// Emits a row-wise mixed-precision dot of two block-shaped operands into
/// `AR_IN`-style registers.
fn rowwise_dot(
    tile: &mut Tile,
    bx: usize,
    by: usize,
    mut row_addrs: impl FnMut(usize) -> (u32, u32),
    move_to: usize,
) -> Vec<Stmt> {
    let mut body = vec![Stmt::SetReg { reg: regs::DOT_ACC, value: 0.0 }];
    for i in 0..bx {
        let (a, b) = row_addrs(i);
        let da = tile.core.add_dsr(mk::tensor16(a, by as u32));
        let db = tile.core.add_dsr(mk::tensor16(b, by as u32));
        body.push(Stmt::Exec(TensorInstr {
            op: Op::MacReg { acc: regs::DOT_ACC },
            dst: None,
            a: Some(da),
            b: Some(db),
        }));
    }
    body.push(Stmt::RegArith { op: RegOp::Mov, dst: move_to, a: regs::DOT_ACC, b: regs::DOT_ACC });
    body
}

impl WaferBicgstab2d {
    /// Distributes a unit-diagonal 9-point system (mesh = `block` ×
    /// fabric) and builds all per-tile programs.
    ///
    /// # Panics
    /// Panics on geometry mismatch, non-unit diagonal, or SRAM exhaustion.
    pub fn build(fabric: &mut Fabric, a: &DiaMatrix<F16>, block: Block2D) -> WaferBicgstab2d {
        Self::build_at(fabric, a, block, (0, 0))
    }

    /// Like [`WaferBicgstab2d::build`], with the program's `w × h` tile
    /// region placed so its top-left tile sits at `origin` — the
    /// origin-parameterized builder tenant regions are populated with. All
    /// routes and tasks stay strictly inside the region, so co-resident
    /// programs in disjoint regions cannot interact.
    ///
    /// # Panics
    /// Panics on geometry mismatch, non-unit diagonal, SRAM exhaustion, or
    /// a region reaching past the fabric.
    pub fn build_at(
        fabric: &mut Fabric,
        a: &DiaMatrix<F16>,
        block: Block2D,
        origin: (usize, usize),
    ) -> WaferBicgstab2d {
        assert!(stencil::precond::has_unit_diagonal(a), "matrix must be diagonally preconditioned");
        let mesh3 = a.mesh();
        assert_eq!(mesh3.nz, 1, "2D mapping requires nz == 1");
        let (w, h) = (mesh3.nx / block.bx, mesh3.ny / block.by);
        assert_eq!(w * block.bx, mesh3.nx, "mesh x must tile evenly");
        assert_eq!(h * block.by, mesh3.ny, "mesh y must tile evenly");

        assert!(w >= 2 && h >= 2, "2D solver needs at least a 2x2 tile region");
        let (ox, oy) = origin;
        assert!(ox + w <= fabric.width() && oy + h <= fabric.height(), "region exceeds fabric");
        WaferSpmv2d::configure_routes_at(fabric, ox, oy, w, h);
        let allreduce = AllReduce::build_at(
            fabric,
            ox,
            oy,
            w,
            h,
            regs::AR_IN,
            regs::AR_OUT,
            regs::AR_ACC,
            crate::allreduce::colors::DEFAULT_BASE,
        );

        let (bx, by) = (block.bx, block.by);
        let n = (bx * by) as u32;
        let mut lay_p = Vec::new();
        let mut lay_q = Vec::new();
        let mut vecs = Vec::new();
        let mut tasks = Vec::new();

        for ty in 0..h {
            for tx in 0..w {
                let tile = fabric.tile_mut(ox + tx, oy + ty);
                // One copy of the nine coefficient arrays, shared by both
                // SpMV instances (as the paper's memory accounting assumes).
                let mut coef = [0u32; 9];
                for c in &mut coef {
                    *c = tile.mem.alloc_vec(n, Dtype::F16).expect("SRAM: coefficients");
                }
                let ub = ((bx + 2) * (by + 2)) as u32;
                let lp = Spmv2dLayout {
                    block,
                    coef,
                    v: tile.mem.alloc_vec(n, Dtype::F16).expect("SRAM: p"),
                    ubuf: tile.mem.alloc_vec(ub, Dtype::F16).expect("SRAM: s"),
                };
                let lq = Spmv2dLayout {
                    block,
                    coef,
                    v: tile.mem.alloc_vec(n, Dtype::F16).expect("SRAM: q"),
                    ubuf: tile.mem.alloc_vec(ub, Dtype::F16).expect("SRAM: y"),
                };
                WaferSpmv2d::load_tile_coefficients(tile, &lp, a, tx, ty);
                let tv = Tile2dVecs {
                    r: tile.mem.alloc_vec(n, Dtype::F16).expect("SRAM: r"),
                    r0: tile.mem.alloc_vec(n, Dtype::F16).expect("SRAM: r0"),
                    x: tile.mem.alloc_vec(n, Dtype::F16).expect("SRAM: x"),
                };

                let spmv_ps = WaferSpmv2d::build_tile_task(tile, &lp, tx, ty, w, h);
                let spmv_qy = WaferSpmv2d::build_tile_task(tile, &lq, tx, ty, w, h);

                let row = |base: u32, i: usize| base + 2 * (i * by) as u32;
                let s_row = |i: usize| lp.u_addr(i + 1, 1);
                let y_row = |i: usize| lq.u_addr(i + 1, 1);

                // --- Dots. ---
                let dot_r0s = {
                    let body =
                        rowwise_dot(tile, bx, by, |i| (row(tv.r0, i), s_row(i)), regs::AR_IN);
                    tile.core.add_task(Task::new("2d_dot_r0s", body))
                };
                let dot_qy = {
                    let body = rowwise_dot(tile, bx, by, |i| (row(lq.v, i), y_row(i)), regs::AR_IN);
                    tile.core.add_task(Task::new("2d_dot_qy", body))
                };
                let dot_yy = {
                    let body = rowwise_dot(tile, bx, by, |i| (y_row(i), y_row(i)), regs::AR_IN);
                    tile.core.add_task(Task::new("2d_dot_yy", body))
                };
                let dot_rho = {
                    let body =
                        rowwise_dot(tile, bx, by, |i| (row(tv.r0, i), row(tv.r, i)), regs::AR_IN);
                    tile.core.add_task(Task::new("2d_dot_rho", body))
                };
                let dot_rr = {
                    let body =
                        rowwise_dot(tile, bx, by, |i| (row(tv.r, i), row(tv.r, i)), regs::AR_IN);
                    tile.core.add_task(Task::new("2d_dot_rr", body))
                };

                // --- Scalar phases (same algebra as the 3D solver). ---
                let post_r0s = tile.core.add_task(Task::new(
                    "2d_post_r0s",
                    vec![
                        Stmt::RegArith {
                            op: RegOp::Mov,
                            dst: regs::R0S,
                            a: regs::AR_OUT,
                            b: regs::AR_OUT,
                        },
                        Stmt::RegArith {
                            op: RegOp::Add,
                            dst: regs::R0S,
                            a: regs::R0S,
                            b: regs::EPS,
                        },
                        Stmt::RegArith {
                            op: RegOp::Div,
                            dst: regs::ALPHA,
                            a: regs::RHO,
                            b: regs::R0S,
                        },
                        Stmt::RegArith {
                            op: RegOp::Neg,
                            dst: regs::NEG_ALPHA,
                            a: regs::ALPHA,
                            b: regs::ALPHA,
                        },
                    ],
                ));
                let post_qy = tile.core.add_task(Task::new(
                    "2d_post_qy",
                    vec![Stmt::RegArith {
                        op: RegOp::Mov,
                        dst: regs::QY,
                        a: regs::AR_OUT,
                        b: regs::AR_OUT,
                    }],
                ));
                let post_yy = tile.core.add_task(Task::new(
                    "2d_post_yy",
                    vec![
                        Stmt::RegArith {
                            op: RegOp::Mov,
                            dst: regs::YY,
                            a: regs::AR_OUT,
                            b: regs::AR_OUT,
                        },
                        Stmt::RegArith { op: RegOp::Add, dst: regs::YY, a: regs::YY, b: regs::EPS },
                        Stmt::RegArith {
                            op: RegOp::Div,
                            dst: regs::OMEGA,
                            a: regs::QY,
                            b: regs::YY,
                        },
                        Stmt::RegArith {
                            op: RegOp::Neg,
                            dst: regs::NEG_OMEGA,
                            a: regs::OMEGA,
                            b: regs::OMEGA,
                        },
                    ],
                ));
                let post_rho = tile.core.add_task(Task::new(
                    "2d_post_rho",
                    vec![
                        Stmt::RegArith {
                            op: RegOp::Mov,
                            dst: regs::RHO_NEXT,
                            a: regs::AR_OUT,
                            b: regs::AR_OUT,
                        },
                        Stmt::RegArith {
                            op: RegOp::Add,
                            dst: regs::TMP,
                            a: regs::OMEGA,
                            b: regs::EPS,
                        },
                        Stmt::RegArith {
                            op: RegOp::Div,
                            dst: regs::TMP,
                            a: regs::ALPHA,
                            b: regs::TMP,
                        },
                        Stmt::RegArith {
                            op: RegOp::Add,
                            dst: regs::BETA,
                            a: regs::RHO,
                            b: regs::EPS,
                        },
                        Stmt::RegArith {
                            op: RegOp::Div,
                            dst: regs::BETA,
                            a: regs::RHO_NEXT,
                            b: regs::BETA,
                        },
                        Stmt::RegArith {
                            op: RegOp::Mul,
                            dst: regs::BETA,
                            a: regs::TMP,
                            b: regs::BETA,
                        },
                        Stmt::RegArith {
                            op: RegOp::Mov,
                            dst: regs::RHO,
                            a: regs::RHO_NEXT,
                            b: regs::RHO_NEXT,
                        },
                    ],
                ));
                let init_rho = tile.core.add_task(Task::new(
                    "2d_init_rho",
                    vec![Stmt::RegArith {
                        op: RegOp::Mov,
                        dst: regs::RHO,
                        a: regs::AR_OUT,
                        b: regs::AR_OUT,
                    }],
                ));
                let post_rr = tile.core.add_task(Task::new(
                    "2d_post_rr",
                    vec![Stmt::RegArith {
                        op: RegOp::Mov,
                        dst: regs::RR,
                        a: regs::AR_OUT,
                        b: regs::AR_OUT,
                    }],
                ));

                // --- Vector updates (row-wise). ---
                // q := r − α s  (q is the second SpMV's input block).
                let upd_q = {
                    let body = rowwise(
                        tile,
                        bx,
                        by,
                        |i| (row(lq.v, i), row(tv.r, i), Some(s_row(i))),
                        Op::Xpay { scalar: regs::NEG_ALPHA },
                    );
                    tile.core.add_task(Task::new("2d_upd_q", body))
                };
                // x += α p; x += ω q.
                let upd_x = {
                    let mut body = rowwise(
                        tile,
                        bx,
                        by,
                        |i| (row(tv.x, i), row(lp.v, i), None),
                        Op::Axpy { scalar: regs::ALPHA },
                    );
                    body.extend(rowwise(
                        tile,
                        bx,
                        by,
                        |i| (row(tv.x, i), row(lq.v, i), None),
                        Op::Axpy { scalar: regs::OMEGA },
                    ));
                    tile.core.add_task(Task::new("2d_upd_x", body))
                };
                // r := q − ω y.
                let upd_r = {
                    let body = rowwise(
                        tile,
                        bx,
                        by,
                        |i| (row(tv.r, i), row(lq.v, i), Some(y_row(i))),
                        Op::Xpay { scalar: regs::NEG_OMEGA },
                    );
                    tile.core.add_task(Task::new("2d_upd_r", body))
                };
                // p := r + β (p − ω s): tilt then XPAY, row-wise.
                let upd_p = {
                    let mut body = rowwise(
                        tile,
                        bx,
                        by,
                        |i| (row(lp.v, i), row(lp.v, i), Some(s_row(i))),
                        Op::Xpay { scalar: regs::NEG_OMEGA },
                    );
                    body.extend(rowwise(
                        tile,
                        bx,
                        by,
                        |i| (row(lp.v, i), row(tv.r, i), Some(row(lp.v, i))),
                        Op::Xpay { scalar: regs::BETA },
                    ));
                    tile.core.add_task(Task::new("2d_upd_p", body))
                };

                lay_p.push(lp);
                lay_q.push(lq);
                vecs.push(tv);
                // Every phase task is a host-activated entry point.
                for t in [
                    spmv_ps, spmv_qy, dot_r0s, dot_qy, dot_yy, dot_rho, dot_rr, post_r0s, post_qy,
                    post_yy, post_rho, init_rho, post_rr, upd_q, upd_x, upd_r, upd_p,
                ] {
                    tile.core.mark_entry(t);
                }
                tasks.push(Tile2dTasks {
                    spmv_ps,
                    spmv_qy,
                    dot_r0s,
                    dot_qy,
                    dot_yy,
                    dot_rho,
                    dot_rr,
                    post_r0s,
                    post_qy,
                    post_yy,
                    post_rho,
                    init_rho,
                    post_rr,
                    upd_q,
                    upd_x,
                    upd_r,
                    upd_p,
                });
            }
        }
        crate::debug_lint(fabric);
        WaferBicgstab2d {
            fabric_w: w,
            fabric_h: h,
            origin,
            block,
            lay_p,
            lay_q,
            vecs,
            tasks,
            allreduce,
        }
    }

    /// A handle for the **same program** resident at another origin — used
    /// after blitting the built region (e.g. a cached compiled image) to a
    /// different place on a possibly different fabric. Task ids, SRAM
    /// addresses, and layouts are all per-tile state that the blit copied
    /// verbatim; only the origin changes.
    pub fn rebased(&self, origin: (usize, usize)) -> WaferBicgstab2d {
        let mut s = self.clone();
        s.origin = origin;
        s.allreduce = self.allreduce.rebased(origin.0, origin.1);
        s
    }

    /// The `(w, h)` tile extent of the program's region.
    pub fn region_dims(&self) -> (usize, usize) {
        (self.fabric_w, self.fabric_h)
    }

    /// The fabric coordinates of the region's top-left tile.
    pub fn origin(&self) -> (usize, usize) {
        self.origin
    }

    fn idx(&self, x: usize, y: usize) -> usize {
        y * self.fabric_w + x
    }

    /// Phase runner under the stall watchdog; a wedged fabric surfaces as a
    /// [`StallReport`] the recovery layer can act on. The run is bracketed
    /// as trace phase `name` (inert unless tracing is armed). The 2D SpMV's
    /// halo exchange happens inside its task chain, so it is attributed to
    /// the "spmv" phase, matching how the paper accounts the broadcast.
    fn try_phase(
        &self,
        fabric: &mut Fabric,
        name: &'static str,
        pick: impl Fn(&Tile2dTasks) -> TaskId,
    ) -> Result<u64, Box<StallReport>> {
        let (ox, oy) = self.origin;
        for y in 0..self.fabric_h {
            for x in 0..self.fabric_w {
                let t = pick(&self.tasks[self.idx(x, y)]);
                fabric.tile_mut(ox + x, oy + y).core.activate(t);
            }
        }
        let budget = 2_000 * (self.block.points() as u64) + 100_000;
        fabric.phase_begin(name);
        let r = fabric.run_watched(budget, recovery::STALL_WINDOW);
        fabric.phase_end();
        r
    }

    fn try_reduce(&self, fabric: &mut Fabric) -> Result<u64, Box<StallReport>> {
        let (ox, oy) = self.origin;
        for y in 0..self.fabric_h {
            for x in 0..self.fabric_w {
                fabric.tile_mut(ox + x, oy + y).core.activate(self.allreduce.task(x, y));
            }
        }
        fabric.phase_begin("allreduce");
        let r = fabric.run_watched(
            100 * (self.fabric_w + self.fabric_h) as u64 + 50_000,
            recovery::STALL_WINDOW,
        );
        fabric.phase_end();
        r
    }

    /// Scatters `b` (global 2D mesh order), zeroes `x`, seeds ρ and ε.
    pub fn load_rhs(&self, fabric: &mut Fabric, b: &[F16]) {
        self.try_load_rhs(fabric, b).unwrap_or_else(|e| panic!("2D bicgstab load stalled: {e}"))
    }

    /// Fallible [`WaferBicgstab2d::load_rhs`] (see
    /// [`WaferBicgstab2d::try_iterate`]).
    pub fn try_load_rhs(&self, fabric: &mut Fabric, b: &[F16]) -> Result<(), Box<StallReport>> {
        let (bx, by) = (self.block.bx, self.block.by);
        let mesh = Mesh2D::new(self.fabric_w * bx, self.fabric_h * by);
        assert_eq!(b.len(), mesh.len(), "rhs length mismatch");
        for ty in 0..self.fabric_h {
            for tx in 0..self.fabric_w {
                let k = self.idx(tx, ty);
                let mut local = vec![F16::ZERO; bx * by];
                for i in 0..bx {
                    for j in 0..by {
                        local[i * by + j] = b[mesh.idx(tx * bx + i, ty * by + j)];
                    }
                }
                let (r, r0, x, p) =
                    (self.vecs[k].r, self.vecs[k].r0, self.vecs[k].x, self.lay_p[k].v);
                let tile = fabric.tile_mut(self.origin.0 + tx, self.origin.1 + ty);
                tile.mem.store_f16_slice(r, &local);
                tile.mem.store_f16_slice(r0, &local);
                tile.mem.store_f16_slice(p, &local);
                tile.mem.store_f16_slice(x, &vec![F16::ZERO; bx * by]);
                tile.core.regs[regs::EPS] = 1e-30;
            }
        }
        self.try_phase(fabric, "dot", |t| t.dot_rho)?;
        self.try_reduce(fabric)?;
        self.try_phase(fabric, "scalar", |t| t.init_rho)?;
        Ok(())
    }

    /// Runs one iteration; returns total cycles.
    pub fn iterate(&self, fabric: &mut Fabric) -> u64 {
        self.try_iterate(fabric).unwrap_or_else(|e| panic!("2D bicgstab iteration stalled: {e}"))
    }

    /// Fallible [`WaferBicgstab2d::iterate`]: runs under the fabric stall
    /// watchdog and returns the [`StallReport`] instead of panicking.
    pub fn try_iterate(&self, fabric: &mut Fabric) -> Result<u64, Box<StallReport>> {
        let mut total = 0;
        total += self.try_phase(fabric, "spmv", |t| t.spmv_ps)?;
        total += self.try_phase(fabric, "dot", |t| t.dot_r0s)?;
        total += self.try_reduce(fabric)?;
        total += self.try_phase(fabric, "scalar", |t| t.post_r0s)?;
        total += self.try_phase(fabric, "update", |t| t.upd_q)?;
        total += self.try_phase(fabric, "spmv", |t| t.spmv_qy)?;
        total += self.try_phase(fabric, "dot", |t| t.dot_qy)?;
        total += self.try_reduce(fabric)?;
        total += self.try_phase(fabric, "scalar", |t| t.post_qy)?;
        total += self.try_phase(fabric, "dot", |t| t.dot_yy)?;
        total += self.try_reduce(fabric)?;
        total += self.try_phase(fabric, "scalar", |t| t.post_yy)?;
        total += self.try_phase(fabric, "update", |t| t.upd_x)?;
        total += self.try_phase(fabric, "update", |t| t.upd_r)?;
        total += self.try_phase(fabric, "dot", |t| t.dot_rho)?;
        total += self.try_reduce(fabric)?;
        total += self.try_phase(fabric, "scalar", |t| t.post_rho)?;
        total += self.try_phase(fabric, "update", |t| t.upd_p)?;
        Ok(total)
    }

    /// Relative on-wafer residual norm.
    pub fn residual_norm(&self, fabric: &mut Fabric) -> f32 {
        self.try_residual_norm(fabric)
            .unwrap_or_else(|e| panic!("2D bicgstab residual phase stalled: {e}"))
    }

    /// Fallible [`WaferBicgstab2d::residual_norm`].
    pub fn try_residual_norm(&self, fabric: &mut Fabric) -> Result<f32, Box<StallReport>> {
        self.try_phase(fabric, "dot", |t| t.dot_rr)?;
        self.try_reduce(fabric)?;
        self.try_phase(fabric, "scalar", |t| t.post_rr)?;
        Ok(fabric.tile(self.origin.0, self.origin.1).core.regs[regs::RR].max(0.0).sqrt())
    }

    /// Gathers the iterate (global 2D mesh order).
    pub fn read_x(&self, fabric: &Fabric) -> Vec<F16> {
        let (bx, by) = (self.block.bx, self.block.by);
        let mesh = Mesh2D::new(self.fabric_w * bx, self.fabric_h * by);
        let mut out = vec![F16::ZERO; mesh.len()];
        for ty in 0..self.fabric_h {
            for tx in 0..self.fabric_w {
                let k = self.idx(tx, ty);
                let tile = fabric.tile(self.origin.0 + tx, self.origin.1 + ty);
                let local = tile.mem.load_f16_slice(self.vecs[k].x, bx * by);
                for i in 0..bx {
                    for j in 0..by {
                        out[mesh.idx(tx * bx + i, ty * by + j)] = local[i * by + j];
                    }
                }
            }
        }
        out
    }

    /// Loads `b`, iterates, returns `(x, cycles/iter, residuals)`.
    pub fn solve(
        &self,
        fabric: &mut Fabric,
        b: &[F16],
        iters: usize,
    ) -> (Vec<F16>, Vec<u64>, Vec<f64>) {
        let norm_b: f64 = b.iter().map(|v| v.to_f64() * v.to_f64()).sum::<f64>().sqrt();
        if norm_b == 0.0 {
            return (vec![F16::ZERO; b.len()], Vec::new(), Vec::new());
        }
        self.load_rhs(fabric, b);
        let mut cycles = Vec::new();
        let mut residuals = Vec::new();
        let tripwire = ResidualTripwire::default();
        for _ in 0..iters {
            cycles.push(self.iterate(fabric));
            let rel = self.residual_norm(fabric) as f64 / norm_b;
            residuals.push(rel);
            if tripwire.check(rel).stops() {
                break; // see ResidualTripwire for the thresholds
            }
        }
        (self.read_x(fabric), cycles, residuals)
    }

    /// Like [`WaferBicgstab2d::solve`], but under the checkpoint/rollback
    /// recovery engine (see [`crate::recovery`]): stalls are caught by the
    /// watchdog, residual anomalies by the tripwire, and convergence claims
    /// are verified against `a`'s f64 true residual. `a` must be the
    /// matrix on the same global 2D mesh order as `b` and `read_x`.
    pub fn solve_with_recovery(
        &self,
        fabric: &mut Fabric,
        a: &DiaMatrix<F16>,
        b: &[F16],
        iters: usize,
        policy: &RecoveryPolicy,
    ) -> (Vec<F16>, Vec<f64>, RecoveryLog) {
        let norm_b: f64 = b.iter().map(|v| v.to_f64() * v.to_f64()).sum::<f64>().sqrt();
        let mut residuals = Vec::new();
        if norm_b == 0.0 {
            let log = RecoveryLog { outcome: RecoveryOutcome::Converged, ..RecoveryLog::default() };
            return (vec![F16::ZERO; b.len()], residuals, log);
        }
        let log = run_with_recovery(
            fabric,
            iters,
            policy,
            |f| self.try_load_rhs(f, b),
            |f, i| {
                residuals.truncate(i);
                self.try_iterate(f)?;
                let rel = self.try_residual_norm(f)? as f64 / norm_b;
                residuals.push(rel);
                Ok(rel)
            },
            |f| recovery::true_rel_residual(a, &self.read_x(f), b),
        );
        residuals.truncate(log.iterations);
        (self.read_x(fabric), residuals, log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use solver::policy::MixedF16;
    use solver::{bicgstab as host_bicgstab, SolveOptions};
    use stencil::precond::jacobi_scale;
    use stencil::stencil9::convection_diffusion9;

    fn system(w: usize, h: usize, block: Block2D) -> (DiaMatrix<F16>, Vec<F16>) {
        let mesh = block.covered_mesh(w, h);
        let a = convection_diffusion9(mesh, (1.5, -0.5));
        let exact: Vec<f64> = (0..mesh.len()).map(|i| ((i % 9) as f64) * 0.125 - 0.5).collect();
        let mut b = vec![0.0; mesh.len()];
        a.matvec_f64(&exact, &mut b);
        let sys = jacobi_scale(&a, &b);
        let a16: DiaMatrix<F16> = sys.matrix.convert();
        let b16: Vec<F16> = sys.rhs.iter().map(|&v| F16::from_f64(v)).collect();
        (a16, b16)
    }

    #[test]
    fn two_d_bicgstab_converges() {
        let block = Block2D::new(4, 4);
        let (a, b) = system(3, 3, block);
        let mut fabric = Fabric::new(3, 3);
        let solver = WaferBicgstab2d::build(&mut fabric, &a, block);
        let (_, _, residuals) = solver.solve(&mut fabric, &b, 20);
        let best = residuals.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(best < 0.02, "best residual {best} ({residuals:?})");
    }

    #[test]
    fn two_d_matches_host_mixed_policy() {
        let block = Block2D::new(3, 3);
        let (a, b) = system(3, 3, block);
        let mut fabric = Fabric::new(3, 3);
        let solver = WaferBicgstab2d::build(&mut fabric, &a, block);
        let iters = 6;
        let (_, _, wafer_res) = solver.solve(&mut fabric, &b, iters);
        let host = host_bicgstab::<MixedF16>(
            &a,
            &b,
            &SolveOptions { max_iters: iters, rtol: 0.0, record_true_residual: false },
        );
        for (wr, hr) in wafer_res.iter().zip(&host.history.records).take(4) {
            let ratio = (wr / hr.recursive_rel.max(1e-12)).max(hr.recursive_rel / wr.max(1e-12));
            assert!(ratio < 5.0, "wafer {wr:.3e} vs host {:.3e}", hr.recursive_rel);
        }
    }

    #[test]
    fn efficiency_comparable_to_3d_mapping() {
        // The paper's §IV.2 claim. Compare cycles per meshpoint per
        // iteration: 3D with z = 16 on 4x4 (256 points) vs 2D with 4x4
        // blocks on 4x4 (256 points).
        use crate::bicgstab::WaferBicgstab;
        use stencil::mesh::Mesh3D;
        use stencil::problem::manufactured;

        let mesh3 = Mesh3D::new(4, 4, 16);
        let p3 = manufactured(mesh3, (1.0, -0.5, 0.5), 3).preconditioned();
        let a3: DiaMatrix<F16> = p3.matrix.convert();
        let b3: Vec<F16> = p3.rhs.iter().map(|&v| F16::from_f64(v)).collect();
        let mut f3 = Fabric::new(4, 4);
        let s3 = WaferBicgstab::build(&mut f3, &a3);
        s3.load_rhs(&mut f3, &b3);
        let c3 = s3.iterate(&mut f3).total() as f64 / 256.0;

        let block = Block2D::new(4, 4);
        let (a2, b2) = system(4, 4, block);
        let mut f2 = Fabric::new(4, 4);
        let s2 = WaferBicgstab2d::build(&mut f2, &a2, block);
        s2.load_rhs(&mut f2, &b2);
        let c2 = s2.iterate(&mut f2) as f64 / 256.0;

        let ratio = (c2 / c3).max(c3 / c2);
        assert!(
            ratio < 4.0,
            "2D and 3D mappings should be within a small factor: {c3:.1} vs {c2:.1} cycles/point"
        );
    }
}
