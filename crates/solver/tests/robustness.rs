//! Solver robustness: breakdown-prone, singular, and extreme systems must
//! produce *reported outcomes*, never panics or silent garbage.

use solver::policy::{Fp64, MixedF16};
use solver::refinement::{iterative_refinement, RefinementOptions};
use solver::{bicgstab, BiCgStabOutcome, SolveOptions};
use stencil::dia::{DiaMatrix, Offset3};
use stencil::mesh::Mesh3D;
use stencil::problem::manufactured;
use stencil::Scalar;
use wse_float::F16;

/// The identity: converges in one iteration.
#[test]
fn identity_converges_immediately() {
    let mesh = Mesh3D::new(3, 3, 3);
    let mut a = DiaMatrix::<f64>::new(mesh, &Offset3::seven_point());
    for (x, y, z) in mesh.iter() {
        a.set(x, y, z, Offset3::CENTER, 1.0);
    }
    let b: Vec<f64> = (0..27).map(|i| i as f64 * 0.1).collect();
    let res = bicgstab::<Fp64>(&a, &b, &SolveOptions::default());
    assert_eq!(res.outcome, BiCgStabOutcome::Converged);
    assert_eq!(res.iters, 1);
    for (xi, bi) in res.x.iter().zip(&b) {
        assert!((xi - bi).abs() < 1e-12);
    }
}

/// A singular (all-zero-row-sums, pure Neumann) operator: BiCGStab must
/// terminate with a reported outcome rather than looping or panicking.
#[test]
fn singular_system_reports_an_outcome() {
    let mesh = Mesh3D::new(3, 3, 3);
    let mut a = DiaMatrix::<f64>::new(mesh, &Offset3::seven_point());
    for (x, y, z) in mesh.iter() {
        let mut nb = 0.0;
        for off in &Offset3::seven_point()[1..] {
            if mesh.neighbor(x, y, z, off.dx, off.dy, off.dz).is_some() {
                a.set(x, y, z, *off, -1.0);
                nb += 1.0;
            }
        }
        a.set(x, y, z, Offset3::CENTER, nb); // zero row sums: singular
    }
    // b with a component in the null space (constants).
    let b = vec![1.0; 27];
    let opts = SolveOptions { max_iters: 50, rtol: 1e-12, record_true_residual: false };
    let res = bicgstab::<Fp64>(&a, &b, &opts);
    // Must finish, whatever the outcome.
    assert!(matches!(
        res.outcome,
        BiCgStabOutcome::MaxIterations
            | BiCgStabOutcome::BreakdownRho
            | BiCgStabOutcome::BreakdownOmega
            | BiCgStabOutcome::NonFinite
            | BiCgStabOutcome::Converged
    ));
    assert!(res.iters <= 50);
}

/// fp16 overflow (coefficients near 65504) is detected as NonFinite or
/// survives with finite output — never silent NaN in a "Converged" result.
#[test]
fn fp16_overflow_is_detected() {
    let mesh = Mesh3D::new(3, 3, 3);
    let mut a = DiaMatrix::<F16>::new(mesh, &Offset3::seven_point());
    for (x, y, z) in mesh.iter() {
        a.set(x, y, z, Offset3::CENTER, F16::from_f64(1.0));
        for off in &Offset3::seven_point()[1..] {
            if mesh.neighbor(x, y, z, off.dx, off.dy, off.dz).is_some() {
                a.set(x, y, z, *off, F16::from_f64(-30000.0));
            }
        }
    }
    let b: Vec<F16> = (0..27).map(|i| F16::from_f64(1000.0 + i as f64)).collect();
    let opts = SolveOptions { max_iters: 30, rtol: 1e-10, record_true_residual: false };
    let res = bicgstab::<MixedF16>(&a, &b, &opts);
    if res.outcome == BiCgStabOutcome::Converged {
        assert!(res.x.iter().all(|v| !v.is_non_finite()), "converged must mean finite");
    }
}

/// Refinement with an inner solver that cannot converge (1 iteration on a
/// hard problem) still respects its outer budget and reports non-convergence.
#[test]
fn refinement_never_spins() {
    let p = manufactured(Mesh3D::new(6, 6, 6), (8.0, -8.0, 8.0), 3).preconditioned();
    let opts = RefinementOptions { max_outer: 5, inner_iters: 1, rtol: 1e-14 };
    let res = iterative_refinement::<MixedF16>(&p.matrix, &p.rhs, &opts);
    assert!(res.outer_iters <= 5);
    assert_eq!(res.inner_total, 5);
    assert!(res.history.records.len() <= 7);
}

/// Tiny 2-cell problem (minimum mesh) solves correctly end to end.
#[test]
fn minimum_mesh_works() {
    let p = manufactured(Mesh3D::new(2, 2, 2), (0.5, 0.5, 0.5), 1).preconditioned();
    let res = bicgstab::<Fp64>(&p.matrix, &p.rhs, &SolveOptions::default());
    assert_eq!(res.outcome, BiCgStabOutcome::Converged);
    let exact = p.exact.unwrap();
    for (xi, e) in res.x.iter().zip(&exact) {
        assert!((xi - e).abs() < 1e-8);
    }
}

/// Huge right-hand sides that overflow fp16 storage are caught by the
/// non-finite check instead of propagating junk.
#[test]
fn oversized_rhs_in_fp16() {
    let p = manufactured(Mesh3D::new(3, 3, 3), (0.0, 0.0, 0.0), 2).preconditioned();
    let a16: DiaMatrix<F16> = p.matrix.convert();
    let b16: Vec<F16> = p.rhs.iter().map(|&v| F16::from_f64(v * 1e9)).collect();
    // The rhs itself saturates to ±inf in fp16; the solver must not panic.
    let opts = SolveOptions { max_iters: 10, rtol: 1e-8, record_true_residual: false };
    let res = bicgstab::<MixedF16>(&a16, &b16, &opts);
    assert!(matches!(
        res.outcome,
        BiCgStabOutcome::NonFinite
            | BiCgStabOutcome::BreakdownRho
            | BiCgStabOutcome::BreakdownOmega
            | BiCgStabOutcome::MaxIterations
            | BiCgStabOutcome::Converged
    ));
}
